#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ipsec/des.hpp"
#include "ipsec/esp.hpp"
#include "ipsec/hmac.hpp"
#include "ipsec/ike.hpp"
#include "ipsec/sha1.hpp"
#include "net/topology.hpp"
#include "vpn/router.hpp"

namespace mvpn::ipsec {
namespace {

TEST(Des, Fips46TestVector) {
  // The classic worked example from FIPS 46 / Stallings.
  const Des des(0x133457799BBCDFF1ULL);
  EXPECT_EQ(des.encrypt_block(0x0123456789ABCDEFULL), 0x85E813540F0AB405ULL);
  EXPECT_EQ(des.decrypt_block(0x85E813540F0AB405ULL), 0x0123456789ABCDEFULL);
}

TEST(Des, AdditionalKnownVector) {
  // NBS/SP 500-20 style vector: all-zero plaintext under a known key.
  const Des des(0x0101010101010101ULL);
  const std::uint64_t ct = des.encrypt_block(0x0000000000000000ULL);
  EXPECT_EQ(des.decrypt_block(ct), 0x0000000000000000ULL);
}

TEST(Des, RoundTripRandomBlocks) {
  const Des des(0xA1B2C3D4E5F60718ULL);
  std::uint64_t x = 0x1122334455667788ULL;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t ct = des.encrypt_block(x);
    EXPECT_EQ(des.decrypt_block(ct), x);
    EXPECT_NE(ct, x);
    x = ct ^ (x << 1);
  }
}

TEST(Des, KeyFromBytes) {
  const std::array<std::uint8_t, 8> key = {0x13, 0x34, 0x57, 0x79,
                                           0x9B, 0xBC, 0xDF, 0xF1};
  const Des des{std::span<const std::uint8_t, 8>(key)};
  EXPECT_EQ(des.encrypt_block(0x0123456789ABCDEFULL), 0x85E813540F0AB405ULL);
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys) {
  const std::uint64_t k = 0x133457799BBCDFF1ULL;
  const TripleDes tdes(k, k, k);
  const Des des(k);
  const std::uint64_t pt = 0x0123456789ABCDEFULL;
  EXPECT_EQ(tdes.encrypt_block(pt), des.encrypt_block(pt));
  EXPECT_EQ(tdes.decrypt_block(des.encrypt_block(pt)), pt);
}

TEST(TripleDes, ThreeKeyRoundTrip) {
  const TripleDes tdes(0x0123456789ABCDEFULL, 0x23456789ABCDEF01ULL,
                       0x456789ABCDEF0123ULL);
  const std::uint64_t pt = 0x5468652071756663ULL;
  const std::uint64_t ct = tdes.encrypt_block(pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(tdes.decrypt_block(ct), pt);
}

TEST(CbcMode, RoundTripAndChaining) {
  CbcMode<Des> cbc{Des(0x133457799BBCDFF1ULL)};
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const std::vector<std::uint8_t> original = data;
  cbc.encrypt(std::span<std::uint8_t>(data), 0xAABBCCDDEEFF0011ULL);
  EXPECT_NE(data, original);
  // Identical plaintext blocks must encrypt differently under CBC.
  std::vector<std::uint8_t> twin(16, 0x42);
  cbc.encrypt(std::span<std::uint8_t>(twin), 1);
  EXPECT_NE(std::vector<std::uint8_t>(twin.begin(), twin.begin() + 8),
            std::vector<std::uint8_t>(twin.begin() + 8, twin.end()));
  cbc.decrypt(std::span<std::uint8_t>(data), 0xAABBCCDDEEFF0011ULL);
  EXPECT_EQ(data, original);
}

TEST(Sha1, Rfc3174Vectors) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hex(Sha1::hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::hex(Sha1::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(Sha1::hex(s.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingEqualsOneShot) {
  Sha1 s;
  s.update("hello ");
  s.update("world");
  EXPECT_EQ(Sha1::hex(s.finish()), Sha1::hex(Sha1::hash("hello world")));
}

TEST(HmacSha1, Rfc2202Vectors) {
  {
    std::vector<std::uint8_t> key(20, 0x0b);
    HmacSha1 h({key.data(), key.size()});
    const auto d = h.compute(
        {reinterpret_cast<const std::uint8_t*>("Hi There"), 8});
    EXPECT_EQ(Sha1::hex(d), "b617318655057264e28bc0b6fb378c8ef146be00");
  }
  {
    const char* key = "Jefe";
    HmacSha1 h({reinterpret_cast<const std::uint8_t*>(key), 4});
    const char* msg = "what do ya want for nothing?";
    const auto d = h.compute(
        {reinterpret_cast<const std::uint8_t*>(msg), 28});
    EXPECT_EQ(Sha1::hex(d), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  }
  {
    // Key longer than the block size (forces the pre-hash path).
    std::vector<std::uint8_t> key(80, 0xaa);
    HmacSha1 h({key.data(), key.size()});
    const char* msg = "Test Using Larger Than Block-Size Key - Hash Key First";
    const auto d = h.compute(
        {reinterpret_cast<const std::uint8_t*>(msg), 54});
    EXPECT_EQ(Sha1::hex(d), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
  }
}

TEST(HmacSha1, IcvAndVerify) {
  std::vector<std::uint8_t> key(20, 0x0b);
  HmacSha1 h({key.data(), key.size()});
  std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const auto tag = h.icv({data.data(), data.size()});
  EXPECT_TRUE(h.verify({data.data(), data.size()},
                       std::span<const std::uint8_t, 12>(tag)));
  auto bad = tag;
  bad[0] ^= 1;
  EXPECT_FALSE(h.verify({data.data(), data.size()},
                        std::span<const std::uint8_t, 12>(bad)));
}

TEST(ReplayWindow, AcceptsFreshRejectsReplayAndAncient) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.check_and_update(1));
  EXPECT_TRUE(w.check_and_update(2));
  EXPECT_FALSE(w.check_and_update(2));  // replay
  EXPECT_TRUE(w.check_and_update(100));
  EXPECT_TRUE(w.check_and_update(99));   // late but inside window
  EXPECT_FALSE(w.check_and_update(99));  // replay of late packet
  EXPECT_FALSE(w.check_and_update(36));  // 100-36=64 ≥ window → too old
  EXPECT_TRUE(w.check_and_update(37));   // just inside
  EXPECT_FALSE(w.check_and_update(0));   // seq 0 invalid
  EXPECT_EQ(w.highest_seen(), 100u);
  EXPECT_EQ(w.replays_blocked().value(), 4u);
}

TEST(ReplayWindow, LargeJumpClearsBitmap) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.check_and_update(1));
  EXPECT_TRUE(w.check_and_update(1000));
  EXPECT_TRUE(w.check_and_update(999));
  EXPECT_FALSE(w.check_and_update(1));  // far below window
}

TEST(ReplayWindow, RejectsBadSize) {
  EXPECT_THROW(ReplayWindow(0), std::invalid_argument);
  EXPECT_THROW(ReplayWindow(65), std::invalid_argument);
}

SaConfig test_sa(CipherSuite suite = CipherSuite::kTripleDesCbc) {
  SaConfig sa;
  sa.spi = 0xBEEF;
  sa.cipher = suite;
  sa.cipher_keys = {0x0123456789ABCDEFULL, 0x23456789ABCDEF01ULL,
                    0x456789ABCDEF0123ULL};
  sa.auth_key.assign(20, 0x0B);
  sa.local = ip::Ipv4Address::must_parse("1.1.1.1");
  sa.peer = ip::Ipv4Address::must_parse("2.2.2.2");
  return sa;
}

TEST(EspSa, EncapsulateSetsByteAccurateOverhead) {
  EspSa sa(test_sa());
  net::Packet p;
  p.ip.dscp = 46;
  p.payload_bytes = 100;  // inner 128 B; +2 trailer = 130 → pad to 136
  const std::size_t plain = p.wire_size();
  sa.encapsulate(p);
  ASSERT_TRUE(p.esp.has_value());
  EXPECT_EQ(p.esp->sequence, 1u);
  EXPECT_EQ(p.esp->spi, 0xBEEFu);
  EXPECT_EQ(p.esp->pad_bytes, 6);
  EXPECT_EQ(p.esp->outer.protocol, net::kProtocolEsp);
  EXPECT_EQ(p.esp->outer.dscp, 0);  // default: ToS hidden (paper §3)
  // overhead = 20 + 8 + 8 + 6 + 2 + 12 = 56.
  EXPECT_EQ(p.wire_size(), plain + 56);
  EXPECT_THROW(sa.encapsulate(p), std::logic_error);
}

TEST(EspSa, CopyDscpKnob) {
  SaConfig cfg = test_sa();
  cfg.copy_dscp_to_outer = true;
  EspSa sa(cfg);
  net::Packet p;
  p.ip.dscp = 46;
  p.payload_bytes = 64;
  sa.encapsulate(p);
  EXPECT_EQ(p.esp->outer.dscp, 46);
}

TEST(EspSa, DecapsulateChecksSpiAndReplay) {
  EspSa out(test_sa());
  EspSa in(test_sa());
  net::Packet p;
  p.payload_bytes = 64;
  out.encapsulate(p);
  net::Packet replayed = p;  // attacker copies the datagram
  EXPECT_TRUE(in.decapsulate(p));
  EXPECT_FALSE(p.esp.has_value());
  EXPECT_FALSE(in.decapsulate(replayed));  // replay blocked
  EXPECT_EQ(in.replay().replays_blocked().value(), 1u);

  net::Packet wrong_spi;
  wrong_spi.payload_bytes = 64;
  out.encapsulate(wrong_spi);
  wrong_spi.esp->spi = 0x9999;
  EXPECT_FALSE(in.decapsulate(wrong_spi));
}

TEST(EspSa, SequenceIncrementsPerPacket) {
  EspSa sa(test_sa());
  for (std::uint32_t i = 1; i <= 5; ++i) {
    net::Packet p;
    p.payload_bytes = 64;
    sa.encapsulate(p);
    EXPECT_EQ(p.esp->sequence, i);
  }
  EXPECT_EQ(sa.protected_traffic().packets.value(), 5u);
}

TEST(EspSa, ProtectBufferRunsRealCrypto) {
  EspSa sa(test_sa(CipherSuite::kDesCbc));
  std::vector<std::uint8_t> buf(64, 0x7E);
  const auto original = buf;
  sa.protect_buffer(std::span<std::uint8_t>(buf), 0x1234);
  EXPECT_NE(buf, original);
  EXPECT_THROW(sa.protect_buffer(std::span<std::uint8_t>(buf.data(), 63), 0),
               std::invalid_argument);
}

TEST(CryptoCostModel, CalibratesPositiveCosts) {
  // Wall-clock measurement is noisy under load; interleave the two suites
  // and take each one's best of several calibrations, so a descheduling
  // spike (e.g. parallel ctest) cannot inflate only one side of the
  // comparison.
  double des = 1e18, tdes = 1e18;
  for (int i = 0; i < 7; ++i) {
    des = std::min(des, CryptoCostModel::calibrate(CipherSuite::kDesCbc,
                                                   1 << 12)
                            .ns_per_byte);
    tdes = std::min(tdes,
                    CryptoCostModel::calibrate(CipherSuite::kTripleDesCbc,
                                               1 << 12)
                        .ns_per_byte);
  }
  EXPECT_GT(des, 0.0);
  const CryptoCostModel m{des, des * 64};
  EXPECT_GT(m.packet_cost_ns(500), m.packet_cost_ns(64));
  // 3DES costs roughly 3x DES; at least it must cost more.
  EXPECT_GT(tdes, des);
}

TEST(EspSa, NullCipherSkipsIvAndPadStillAligns) {
  EspSa sa(test_sa(CipherSuite::kNull));
  net::Packet p;
  p.payload_bytes = 100;
  const std::size_t plain = p.wire_size();
  sa.encapsulate(p);
  EXPECT_EQ(p.esp->iv_bytes, 0);
  // overhead = 20 + 8 + 0 + pad(6) + 2 + 12 = 48.
  EXPECT_EQ(p.wire_size(), plain + 48);
}

TEST(EspSa, AlignedInnerNeedsNoPad) {
  EspSa sa(test_sa());
  net::Packet p;
  p.payload_bytes = 102;  // inner 130, +2 = 132 → pad 4? 132%8=4 → pad 4
  sa.encapsulate(p);
  EXPECT_EQ(p.esp->pad_bytes, 4);
  net::Packet q;
  q.payload_bytes = 106;  // inner 134, +2 = 136 → multiple of 8 → pad 0
  sa.encapsulate(q);
  EXPECT_EQ(q.esp->pad_bytes, 0);
}

TEST(ReplayWindow, SmallerWindowIsStricter) {
  ReplayWindow w(32);
  EXPECT_TRUE(w.check_and_update(100));
  EXPECT_TRUE(w.check_and_update(69));   // 100-69=31 < 32
  EXPECT_FALSE(w.check_and_update(68));  // 100-68=32 ≥ 32
}

TEST(CbcMode, WrongIvCorruptsFirstBlockOnly) {
  CbcMode<Des> cbc{Des(0x133457799BBCDFF1ULL)};
  std::vector<std::uint8_t> data(24, 0x11);
  const auto original = data;
  cbc.encrypt(std::span<std::uint8_t>(data), 42);
  cbc.decrypt(std::span<std::uint8_t>(data), 43);  // wrong IV
  // First block garbled, later blocks chain from ciphertext → intact.
  EXPECT_NE(std::vector<std::uint8_t>(data.begin(), data.begin() + 8),
            std::vector<std::uint8_t>(original.begin(), original.begin() + 8));
  EXPECT_EQ(std::vector<std::uint8_t>(data.begin() + 8, data.end()),
            std::vector<std::uint8_t>(original.begin() + 8, original.end()));
}

TEST(Sha1, DigestHexLength) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("x")).size(), 40u);
}

TEST(Ike, HandshakeCompletesWithSharedKeys) {
  net::Topology topo;
  auto& a = topo.add_node<vpn::Router>("gwA", vpn::Role::kCe);
  auto& b = topo.add_node<vpn::Router>("gwB", vpn::Role::kCe);
  topo.connect(a.id(), b.id());
  routing::ControlPlane cp(topo);

  IkeNegotiation ike(cp, a.id(), b.id(), a.loopback(), b.loopback(),
                     CipherSuite::kTripleDesCbc, 77);
  SaConfig out_sa;
  SaConfig in_sa;
  bool done = false;
  ike.start([&](const SaConfig& o, const SaConfig& i) {
    out_sa = o;
    in_sa = i;
    done = true;
  });
  EXPECT_EQ(ike.state(), IkeNegotiation::State::kPhase1);
  topo.scheduler().run();

  ASSERT_TRUE(done);
  EXPECT_EQ(ike.state(), IkeNegotiation::State::kEstablished);
  EXPECT_EQ(ike.messages_exchanged(), IkeNegotiation::kHandshakeMessages);
  EXPECT_GT(ike.established_at(), 0);
  // Directional SAs: distinct SPIs, opposite endpoints, same suite.
  EXPECT_NE(out_sa.spi, in_sa.spi);
  EXPECT_EQ(out_sa.local, a.loopback());
  EXPECT_EQ(out_sa.peer, b.loopback());
  EXPECT_EQ(in_sa.local, b.loopback());
  EXPECT_NE(out_sa.cipher_keys[0], 0u);
  EXPECT_EQ(out_sa.auth_key.size(), 20u);

  // The derived SA must actually work end to end.
  EspSa sender(out_sa);
  EspSa receiver(out_sa);
  net::Packet p;
  p.payload_bytes = 64;
  sender.encapsulate(p);
  EXPECT_TRUE(receiver.decapsulate(p));
}

TEST(Ike, DeterministicForSeed) {
  net::Topology topo;
  auto& a = topo.add_node<vpn::Router>("gwA", vpn::Role::kCe);
  auto& b = topo.add_node<vpn::Router>("gwB", vpn::Role::kCe);
  topo.connect(a.id(), b.id());
  routing::ControlPlane cp(topo);

  std::uint64_t key1 = 0;
  std::uint64_t key2 = 0;
  IkeNegotiation ike1(cp, a.id(), b.id(), a.loopback(), b.loopback(),
                      CipherSuite::kDesCbc, 123);
  ike1.start([&](const SaConfig& o, const SaConfig&) {
    key1 = o.cipher_keys[0];
  });
  IkeNegotiation ike2(cp, a.id(), b.id(), a.loopback(), b.loopback(),
                      CipherSuite::kDesCbc, 123);
  ike2.start([&](const SaConfig& o, const SaConfig&) {
    key2 = o.cipher_keys[0];
  });
  topo.scheduler().run();
  EXPECT_EQ(key1, key2);
  EXPECT_NE(key1, 0u);
}

}  // namespace
}  // namespace mvpn::ipsec
