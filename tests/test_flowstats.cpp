#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backbone/fixtures.hpp"
#include "backbone/partition.hpp"
#include "backbone/scenario_config.hpp"
#include "obs/flow_stats.hpp"
#include "obs/sinks.hpp"
#include "obs/sync_profiler.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mvpn {
namespace {

using obs::FlowExporter;
using obs::FlowStatsTable;

using Key = FlowStatsTable::Key;

Key key_of(std::uint32_t flow) {
  // Distinct src address per flow id -> distinct keys.
  return FlowStatsTable::make_key(0x0A000000u + flow, 0x0A010001u, 10000,
                                  20000, 17);
}

// ---------------------------------------------------------------------------
// FlowStatsTable units

TEST(FlowStats, TableAccountsOfferedDeliveredDropsColor) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 64);
  const Key k = key_of(1);
  t.record_offered(k, 1, 500, /*ingress_pe=*/7, /*vpn=*/3, /*phb=*/2);
  t.record_offered(k, 1, 500, 7, 3, 2);
  clock.run_until(10 * sim::kMillisecond);
  t.record_delivered(k, 1, 500, 2 * sim::kMillisecond);
  t.record_delivered(k, 1, 500, 4 * sim::kMillisecond);
  t.record_drop(k, 1, 500, /*reason=*/5);
  t.record_color(k, 1, 0);
  t.record_color(k, 1, 2);

  std::vector<FlowStatsTable::Slot> out;
  t.drain([&](const FlowStatsTable::Slot& s) { out.push_back(s); });
  ASSERT_EQ(out.size(), 1u);
  const auto& s = out[0];
  EXPECT_EQ(s.flow_id, 1u);
  EXPECT_EQ(s.offered_packets, 2u);
  EXPECT_EQ(s.offered_bytes, 1000u);
  EXPECT_EQ(s.delivered_packets, 2u);
  EXPECT_EQ(s.ingress_pe, 7u);
  EXPECT_EQ(s.vpn, 3u);
  EXPECT_EQ(s.phb, 2u);
  EXPECT_EQ(s.dropped_packets(), 1u);
  EXPECT_EQ(s.drops[5], 1u);
  EXPECT_EQ(s.dropped_bytes, 500u);
  EXPECT_EQ(s.color[0], 1u);
  EXPECT_EQ(s.color[2], 1u);
  EXPECT_EQ(s.delay_min, 2 * sim::kMillisecond);
  EXPECT_EQ(s.delay_max, 4 * sim::kMillisecond);
  EXPECT_EQ(s.first_seen, 0);
  EXPECT_EQ(s.last_seen, 10 * sim::kMillisecond);
}

/// A table sized at the minimum (2 slots) forces collisions: the displaced
/// incumbent folds into the spill map and nothing is ever lost.
TEST(FlowStats, SlotEvictionFoldsExactly) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 1);  // rounds up to the 2-slot minimum
  EXPECT_EQ(t.capacity(), 2u);
  constexpr std::uint32_t kFlows = 64;
  constexpr int kPackets = 10;
  for (int p = 0; p < kPackets; ++p) {
    for (std::uint32_t f = 1; f <= kFlows; ++f) {
      t.record_offered(key_of(f), f, 100, 1, 1, 0);
    }
  }
  EXPECT_GT(t.evictions(), 0u);
  EXPECT_GT(t.spilled(), 0u);

  std::uint64_t packets = 0, bytes = 0, flows = 0;
  t.drain([&](const FlowStatsTable::Slot& s) {
    ++flows;
    packets += s.offered_packets;
    bytes += s.offered_bytes;
  });
  EXPECT_EQ(flows, kFlows);
  EXPECT_EQ(packets, std::uint64_t{kFlows} * kPackets);
  EXPECT_EQ(bytes, std::uint64_t{kFlows} * kPackets * 100);
  EXPECT_EQ(t.spilled(), 0u);  // drain clears the spill map
}

/// drain() is an O(1) logical clear: a second round starts from zero, and
/// an undrained table keeps accumulating.
TEST(FlowStats, GenerationClearOnDrain) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 16);
  t.record_offered(key_of(1), 1, 100, 1, 1, 0);
  std::size_t n = 0;
  t.drain([&](const FlowStatsTable::Slot&) { ++n; });
  EXPECT_EQ(n, 1u);
  n = 0;
  t.drain([&](const FlowStatsTable::Slot&) { ++n; });
  EXPECT_EQ(n, 0u);  // logically empty after the first drain
  t.record_offered(key_of(1), 1, 100, 1, 1, 0);
  std::vector<FlowStatsTable::Slot> out;
  t.drain([&](const FlowStatsTable::Slot& s) { out.push_back(s); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offered_packets, 1u);  // no residue from round one
  EXPECT_EQ(t.drains(), 3u);
}

/// merge_into is commutative — fold order across shards never shows.
TEST(FlowStats, MergeIntoCommutes) {
  sim::Scheduler clock;
  FlowStatsTable ta(&clock, 16), tb(&clock, 16);
  const Key k = key_of(9);
  // Shard A saw the ingress side; shard B the egress side.
  ta.record_offered(k, 9, 700, 4, 2, 1);
  ta.record_drop(k, 9, 700, 3);
  clock.run_until(5 * sim::kMillisecond);
  tb.record_delivered(k, 9, 700, 3 * sim::kMillisecond);
  tb.record_delivered(k, 9, 700, 1 * sim::kMillisecond);

  FlowStatsTable::Slot a, b;
  ta.drain([&](const FlowStatsTable::Slot& s) { a = s; });
  tb.drain([&](const FlowStatsTable::Slot& s) { b = s; });

  FlowStatsTable::Slot ab = a, ba = b;
  FlowStatsTable::merge_into(ab, b);
  FlowStatsTable::merge_into(ba, a);
  EXPECT_EQ(ab.offered_packets, ba.offered_packets);
  EXPECT_EQ(ab.delivered_packets, ba.delivered_packets);
  EXPECT_EQ(ab.dropped_packets(), ba.dropped_packets());
  EXPECT_EQ(ab.flow_id, ba.flow_id);
  EXPECT_EQ(ab.ingress_pe, ba.ingress_pe);
  EXPECT_EQ(ab.vpn, ba.vpn);
  EXPECT_EQ(ab.phb, ba.phb);
  EXPECT_EQ(ab.first_seen, ba.first_seen);
  EXPECT_EQ(ab.last_seen, ba.last_seen);
  EXPECT_EQ(ab.delay_min, ba.delay_min);
  EXPECT_EQ(ab.delay_max, ba.delay_max);
  EXPECT_EQ(ab.delay_min, 1 * sim::kMillisecond);
  EXPECT_EQ(ab.ingress_pe, 4u);  // known side wins over unknown
}

// ---------------------------------------------------------------------------
// FlowExporter units

TEST(FlowStats, ExporterCutsIdleActiveAndFinal) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 64);
  FlowExporter::Options opt;
  opt.idle_timeout = 10 * sim::kMillisecond;
  opt.active_timeout = 100 * sim::kMillisecond;
  FlowExporter ex(opt);

  // Flow 1 sends one packet then goes silent; flow 2 keeps sending.
  t.record_offered(key_of(1), 1, 100, 1, 1, 0);
  t.record_offered(key_of(2), 2, 100, 1, 1, 0);
  ex.merge_table(t);
  ex.scan(5 * sim::kMillisecond);
  EXPECT_TRUE(ex.records().empty());  // nothing expired yet
  EXPECT_EQ(ex.active_flows(), 2u);

  clock.run_until(20 * sim::kMillisecond);
  t.record_offered(key_of(2), 2, 100, 1, 1, 0);
  ex.merge_table(t);
  ex.scan(20 * sim::kMillisecond);  // flow 1 idle >= 10 ms, flow 2 refreshed
  ASSERT_EQ(ex.records().size(), 1u);
  EXPECT_EQ(ex.records()[0].acc.flow_id, 1u);
  EXPECT_EQ(ex.records()[0].cause, FlowExporter::Cause::kIdle);

  // Keep flow 2 refreshed past the active timeout: cut cause=active.
  for (int i = 3; i <= 12; ++i) {
    clock.run_until(i * 10 * sim::kMillisecond);
    t.record_offered(key_of(2), 2, 100, 1, 1, 0);
    ex.merge_table(t);
    ex.scan(clock.now());
  }
  ASSERT_GE(ex.records().size(), 2u);
  EXPECT_EQ(ex.records()[1].acc.flow_id, 2u);
  EXPECT_EQ(ex.records()[1].cause, FlowExporter::Cause::kActive);

  // Whatever is still open exports at flush with cause=final.
  clock.run_until(121 * 10 * sim::kMillisecond);
  t.record_offered(key_of(3), 3, 100, 1, 1, 0);
  ex.merge_table(t);
  ex.flush();
  EXPECT_EQ(ex.active_flows(), 0u);
  EXPECT_EQ(ex.records().back().cause, FlowExporter::Cause::kFinal);
  EXPECT_EQ(ex.records().back().acc.flow_id, 3u);
}

/// Eight distinct keys in an eight-slot table: some inevitably share a
/// home slot, and linear probing parks the newcomer nearby instead of
/// displacing the incumbent — the spill path stays untouched, and a
/// second round of touches finds every parked slot again.
TEST(FlowStats, ProbingKeepsCollidingKeysResident) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 8);
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t f = 1; f <= 8; ++f) {
      t.record_offered(key_of(f), f, 100, 1, 1, 0);
    }
  }
  EXPECT_EQ(t.evictions(), 0u);
  EXPECT_TRUE(t.spill_free());
  std::uint64_t flows = 0;
  t.drain([&](const FlowStatsTable::Slot& s) {
    ++flows;
    EXPECT_EQ(s.offered_packets, 2u);  // both rounds hit the same slot
  });
  EXPECT_EQ(flows, 8u);
}

/// The serial table-resident fastpath (scan_table/flush_table) must emit
/// a byte-identical record stream to the drain-and-merge path it
/// shortcuts — across idle cuts, active cuts, slot reclaim through a
/// tombstone, and shared-5-tuple folding.
TEST(FlowStats, ScanTableMatchesMergeScanByteForByte) {
  sim::Scheduler clock;
  FlowStatsTable fast(&clock, 64);
  FlowStatsTable slow(&clock, 64);
  FlowExporter::Options opt;
  opt.idle_timeout = 10 * sim::kMillisecond;
  opt.active_timeout = 100 * sim::kMillisecond;
  FlowExporter ex_fast(opt);
  FlowExporter ex_slow(opt);
  auto touch_both = [&](const Key& k, std::uint32_t f, std::uint32_t bytes) {
    fast.record_offered(k, f, bytes, 1, 1, 0);
    slow.record_offered(k, f, bytes, 1, 1, 0);
  };
  for (int ms = 0; ms <= 300; ms += 5) {
    clock.run_until(ms * sim::kMillisecond);
    if (ms == 0) touch_both(key_of(1), 1, 100);  // idle-cut early
    touch_both(key_of(2), 2, 100);  // active-cut, then reclaims its slot
    if (ms % 20 == 0) touch_both(key_of(3), 3, 50);
    // Two flow ids sharing a 5-tuple fold into one accumulation.
    touch_both(key_of(9), 7, 70);
    touch_both(key_of(9), 8, 70);
    if (ms > 0 && ms % 25 == 0) {
      ex_fast.scan_table(fast, clock.now());
      ex_slow.merge_table(slow);
      ex_slow.scan(clock.now());
    }
  }
  ex_fast.flush_table(fast);
  ex_slow.merge_table(slow);
  ex_slow.flush();
  EXPECT_TRUE(fast.spill_free());  // the fastpath actually ran
  std::ostringstream a;
  std::ostringstream b;
  ex_fast.write_binary(a);
  ex_slow.write_binary(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_GT(ex_fast.records().size(), 3u);
}

/// A deliberately overloaded table (16 keys, 2 slots) spills immediately;
/// scan_table must then fall back to drain-and-merge for the rest of the
/// run and still match it byte for byte.
TEST(FlowStats, ScanTableFallbackOnSpillMatchesMergeScan) {
  sim::Scheduler clock;
  FlowStatsTable fast(&clock, 1);  // rounds up to the 2-slot minimum
  FlowStatsTable slow(&clock, 1);
  FlowExporter::Options opt;
  opt.idle_timeout = 10 * sim::kMillisecond;
  opt.active_timeout = 100 * sim::kMillisecond;
  FlowExporter ex_fast(opt);
  FlowExporter ex_slow(opt);
  for (int ms = 0; ms <= 120; ms += 5) {
    clock.run_until(ms * sim::kMillisecond);
    for (std::uint32_t f = 1; f <= 16; ++f) {
      fast.record_offered(key_of(f), f, 100, 1, 1, 0);
      slow.record_offered(key_of(f), f, 100, 1, 1, 0);
    }
    if (ms > 0 && ms % 25 == 0) {
      ex_fast.scan_table(fast, clock.now());
      ex_slow.merge_table(slow);
      ex_slow.scan(clock.now());
    }
  }
  EXPECT_GT(fast.evictions(), 0u);
  EXPECT_FALSE(fast.spill_free());
  ex_fast.flush_table(fast);
  ex_slow.merge_table(slow);
  ex_slow.flush();
  std::ostringstream a;
  std::ostringstream b;
  ex_fast.write_binary(a);
  ex_slow.write_binary(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(FlowStats, RollupAggregatesPerVpnAndClass) {
  sim::Scheduler clock;
  FlowStatsTable t(&clock, 64);
  FlowExporter ex;
  t.record_offered(key_of(1), 1, 100, 1, /*vpn=*/1, /*phb=*/0);
  t.record_delivered(key_of(1), 1, 100, sim::kMillisecond);
  t.record_offered(key_of(2), 2, 100, 1, /*vpn=*/1, /*phb=*/5);
  t.record_offered(key_of(3), 3, 100, 1, /*vpn=*/2, /*phb=*/0);
  ex.merge_table(t);
  ex.flush();
  const auto rows = ex.rollup();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by (vpn, phb).
  EXPECT_EQ(rows[0].vpn, 1u);
  EXPECT_EQ(rows[0].phb, 0u);
  EXPECT_EQ(rows[0].offered_packets, 1u);
  EXPECT_EQ(rows[0].delivered_packets, 1u);
  EXPECT_DOUBLE_EQ(rows[0].loss_fraction(), 0.0);
  EXPECT_EQ(rows[1].vpn, 1u);
  EXPECT_EQ(rows[1].phb, 5u);
  EXPECT_DOUBLE_EQ(rows[1].loss_fraction(), 1.0);
  EXPECT_EQ(rows[2].vpn, 2u);
}

// ---------------------------------------------------------------------------
// Scenario integration: determinism across engine configurations

constexpr const char* kScenario = R"(
backbone p=2 pe=2 core_bw=4e6 edge_bw=20e6 seed=7 core_queue=wfq:8,3,1
vpn corp
vpn eng
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
site eng  pe=0 prefix=10.3.0.0/16
site eng  pe=1 prefix=10.4.0.0/16
classify site=0 dstport=16384-16484 class=EF
police  site=0 class=EF cir=62500 cbs=4000 ebs=4000
flow cbr     vpn=corp from=0 to=1 rate=400e3 class=EF   port=16400 size=172
flow onoff   vpn=corp from=0 to=1 rate=2e6   class=AF21 port=5004  size=1172 on=0.3 off=0.2
flow poisson vpn=eng  from=2 to=3 rate=4e6   class=BE   port=80    size=1472
run for=1
)";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ScenarioRun {
  std::string report;
  std::string jsonl;
  std::string binary;
};

ScenarioRun run_scenario(std::uint32_t shards, bool flow_on) {
  backbone::ScenarioError err;
  auto scenario = backbone::Scenario::parse(kScenario, &err);
  EXPECT_TRUE(scenario.has_value()) << err.message;
  scenario->set_shards(shards);
  ScenarioRun r;
  const std::string base = ::testing::TempDir() + "flowstats_" +
                           std::to_string(shards) + "_" +
                           std::to_string(::getpid());
  if (flow_on) {
    backbone::ObsOptions obs;
    obs.flow_records_path = base + ".jsonl";
    obs.flow_records_bin_path = base + ".bin";
    scenario->set_obs(obs);
  }
  std::ostringstream out;
  EXPECT_TRUE(scenario->run(out));
  r.report = out.str();
  if (flow_on) {
    r.jsonl = slurp(base + ".jsonl");
    r.binary = slurp(base + ".bin");
    std::remove((base + ".jsonl").c_str());
    std::remove((base + ".bin").c_str());
  }
  return r;
}

/// Everything below the engine-description header (SLA table, isolation
/// accounting) — the engine line legitimately differs across shard counts
/// and gains window boundaries from the scan actions.
std::string body(const std::string& report) {
  return report.substr(report.find("\n\n"));
}

/// Arming flow accounting must not change a single result byte: the SLA
/// table and delivery accounting are identical with the tables on and off,
/// serially and sharded.
TEST(FlowStats, ScenarioReportByteIdenticalFlowOnOff) {
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const ScenarioRun off = run_scenario(shards, false);
    const ScenarioRun on = run_scenario(shards, true);
    EXPECT_EQ(body(off.report), body(on.report)) << "shards=" << shards;
    EXPECT_FALSE(on.jsonl.empty());
  }
}

/// The record stream is a pure function of the scenario: byte-identical
/// JSONL and binary exports across serial, 2-shard and 4-shard runs.
TEST(FlowStats, RecordStreamByteIdenticalAcrossShardCounts) {
  const ScenarioRun s1 = run_scenario(1, true);
  const ScenarioRun s2 = run_scenario(2, true);
  const ScenarioRun s4 = run_scenario(4, true);
  EXPECT_FALSE(s1.jsonl.empty());
  EXPECT_EQ(s1.jsonl, s2.jsonl);
  EXPECT_EQ(s1.jsonl, s4.jsonl);
  EXPECT_EQ(s1.binary, s2.binary);
  EXPECT_EQ(s1.binary, s4.binary);
  EXPECT_EQ(s1.binary.substr(0, 4), "MVFR");
  // The SLA body is also engine-invariant, flow accounting on.
  EXPECT_EQ(body(s1.report), body(s2.report));
  EXPECT_EQ(body(s1.report), body(s4.report));
}

// ---------------------------------------------------------------------------
// Flow-weighted partitioning

TEST(FlowStats, WeightedPartitionAllOnesMatchesNodeCountPlan) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 4;
  cfg.pe_count = 8;
  cfg.seed = 7;
  backbone::MplsBackbone bb(cfg);
  const auto base = backbone::compute_shard_plan(bb.topo, 4);
  const auto empty_w = backbone::compute_shard_plan(bb.topo, 4, {});
  const auto ones = backbone::compute_shard_plan(
      bb.topo, 4, std::vector<std::uint64_t>(bb.topo.node_count(), 1));
  EXPECT_EQ(base.node_shard, empty_w.node_shard);
  EXPECT_EQ(base.node_shard, ones.node_shard);
  EXPECT_EQ(base.cut_links, ones.cut_links);
  EXPECT_EQ(base.lookahead, ones.lookahead);
}

TEST(FlowStats, WeightedPartitionIsValidAndDeterministic) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 4;
  cfg.pe_count = 8;
  cfg.seed = 7;
  backbone::MplsBackbone bb(cfg);
  std::vector<std::uint64_t> w(bb.topo.node_count(), 1);
  // Skew the load heavily onto a few nodes.
  for (std::size_t v = 0; v < w.size(); ++v) {
    w[v] = (v % 5 == 0) ? 1000 : 1 + v;
  }
  const auto plan = backbone::compute_shard_plan(bb.topo, 4, w);
  const auto again = backbone::compute_shard_plan(bb.topo, 4, w);
  EXPECT_EQ(plan.node_shard, again.node_shard);
  ASSERT_EQ(plan.node_shard.size(), bb.topo.node_count());
  for (const std::uint32_t s : plan.node_shard) {
    EXPECT_LT(s, plan.shard_count);
  }
  for (const net::LinkId l : plan.cut_links) {
    const net::Link& link = bb.topo.link(l);
    EXPECT_NE(plan.node_shard[link.end_a().node],
              plan.node_shard[link.end_b().node]);
  }
}

TEST(FlowStats, FlowProfileRoundTripsThroughText) {
  backbone::FlowProfile p;
  p.node_weight = {10, 0, 33, 7};
  p.link_weight = {5, 12};
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.seed = 3;
  backbone::MplsBackbone bb(cfg);
  std::ostringstream out;
  backbone::write_flow_profile(p, bb.topo, out);

  backbone::FlowProfile q;
  std::string err;
  std::istringstream in(out.str());
  ASSERT_TRUE(backbone::load_flow_profile(in, &q, &err)) << err;
  EXPECT_EQ(p.node_weight, q.node_weight);
  EXPECT_EQ(p.link_weight, q.link_weight);

  std::istringstream bad_header("notaprofile v9\n");
  EXPECT_FALSE(backbone::load_flow_profile(bad_header, &q, &err));
  std::istringstream bad_kind("flowprofile v1\nbogus 0 1\n");
  EXPECT_FALSE(backbone::load_flow_profile(bad_kind, &q, &err));
}

/// A run's measured profile is itself deterministic across shard counts
/// (link transmit counters are result state, not engine state).
TEST(FlowStats, MeasuredProfileIdenticalAcrossShardCounts) {
  const auto profile_of = [](std::uint32_t shards) {
    backbone::ScenarioError err;
    auto scenario = backbone::Scenario::parse(kScenario, &err);
    EXPECT_TRUE(scenario.has_value()) << err.message;
    scenario->set_shards(shards);
    backbone::ObsOptions obs;
    const std::string path = ::testing::TempDir() + "flowprof_" +
                             std::to_string(shards) + "_" +
                             std::to_string(::getpid()) + ".txt";
    obs.flow_profile_path = path;
    scenario->set_obs(obs);
    std::ostringstream out;
    EXPECT_TRUE(scenario->run(out));
    std::string text = slurp(path);
    std::remove(path.c_str());
    return text;
  };
  const std::string p1 = profile_of(1);
  EXPECT_FALSE(p1.empty());
  EXPECT_EQ(p1.substr(0, 14), "flowprofile v1");
  EXPECT_EQ(p1, profile_of(2));
  EXPECT_EQ(p1, profile_of(4));
}

// ---------------------------------------------------------------------------
// Chrome-trace zero-epoch regression (satellite: write_chrome_trace used to
// emit pid-2 process/thread metadata even when the profiler retained no
// epoch slots, painting an empty "engine" process with orphaned lanes)

TEST(FlowStats, ChromeTraceSkipsEngineLanesWithoutEpochSlots) {
  obs::FlightRecorder rec(nullptr);  // permanently disabled, no events
  obs::SyncProfiler sync(2);         // profiled shape, zero epochs recorded
  std::ostringstream out;
  obs::write_chrome_trace(rec, out, {}, &sync);
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"pid\":2"), std::string::npos);
  EXPECT_EQ(json.find("engine"), std::string::npos);
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

}  // namespace
}  // namespace mvpn
