#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "backbone/fixtures.hpp"
#include "backbone/partition.hpp"
#include "backbone/scenario_config.hpp"
#include "backbone/topogen.hpp"
#include "routing/bgp.hpp"

namespace mvpn {
namespace {

backbone::TopogenParams small_params() {
  backbone::TopogenParams p;
  p.p = 8;
  p.pe = 16;
  p.ce = 2;
  p.pod = 4;
  p.flows = 256;
  p.seed = 5;
  return p;
}

// --- Spec parsing ---------------------------------------------------------

TEST(TopogenSpec, ParsesKeyValuePairs) {
  backbone::TopogenParams p;
  std::string err;
  ASSERT_TRUE(backbone::parse_topogen_spec(
      "p=32 pe=128 ce=4 pod=16 flows=50000 rate=64e3 seed=9", p, &err));
  EXPECT_EQ(p.p, 32U);
  EXPECT_EQ(p.pe, 128U);
  EXPECT_EQ(p.ce, 4U);
  EXPECT_EQ(p.pod, 16U);
  EXPECT_EQ(p.flows, 50000U);
  EXPECT_DOUBLE_EQ(p.rate_bps, 64e3);
  EXPECT_EQ(p.seed, 9U);
}

TEST(TopogenSpec, RejectsUnknownKeyAndNamesIt) {
  backbone::TopogenParams p;
  std::string err;
  EXPECT_FALSE(backbone::parse_topogen_spec("p=8 bogus=1", p, &err));
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(TopogenSpec, RejectsShapesWithoutTwoSitesPerPod) {
  backbone::TopogenParams p = small_params();
  p.pod = 1;
  p.ce = 1;  // one site per pod: no intra-pod flow possible
  EXPECT_THROW(backbone::generate_plan(p), std::invalid_argument);
}

// --- Plan determinism -----------------------------------------------------

TEST(TopogenPlan, SameParamsSamePlanHash) {
  const backbone::GeneratedPlan a = backbone::generate_plan(small_params());
  const backbone::GeneratedPlan b = backbone::generate_plan(small_params());
  EXPECT_EQ(a.hash(), b.hash());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].from, b.flows[i].from);
    EXPECT_EQ(a.flows[i].to, b.flows[i].to);
    EXPECT_EQ(a.flows[i].kind, b.flows[i].kind);
    EXPECT_DOUBLE_EQ(a.flows[i].rate_bps, b.flows[i].rate_bps);
    EXPECT_DOUBLE_EQ(a.flows[i].start_s, b.flows[i].start_s);
  }
}

TEST(TopogenPlan, DifferentSeedDifferentPlanHash) {
  backbone::TopogenParams other = small_params();
  other.seed = 6;
  EXPECT_NE(backbone::generate_plan(small_params()).hash(),
            backbone::generate_plan(other).hash());
}

TEST(TopogenPlan, ShapeMatchesParams) {
  const backbone::TopogenParams p = small_params();
  const backbone::GeneratedPlan plan = backbone::generate_plan(p);
  EXPECT_EQ(plan.backbone.p_count, p.p);
  EXPECT_EQ(plan.backbone.pe_count, p.pe);
  EXPECT_EQ(plan.backbone.core_chord_stride, p.p / 2);  // chorded ring
  EXPECT_EQ(plan.vpns.size(), (p.pe + p.pod - 1) / p.pod);
  EXPECT_EQ(plan.sites.size(), p.pe * p.ce);
  EXPECT_EQ(plan.flows.size(), p.flows);

  // Site prefixes are unique /24s; each site hangs off its declared PE.
  std::set<std::uint32_t> prefixes;
  for (const backbone::PlanSite& s : plan.sites) {
    EXPECT_TRUE(prefixes.insert(s.prefix.address().value()).second);
    EXPECT_EQ(s.prefix.length(), 24);
    EXPECT_LT(s.pe, p.pe);
  }
}

TEST(TopogenPlan, FlowsStayIntraPodAndAreDesynchronized) {
  const backbone::TopogenParams p = small_params();
  const backbone::GeneratedPlan plan = backbone::generate_plan(p);
  std::set<std::pair<double, double>> phases;
  for (const backbone::PlanFlow& f : plan.flows) {
    EXPECT_NE(f.from, f.to);
    // Intra-pod: both endpoints belong to the same VPN.
    EXPECT_EQ(plan.sites[f.from].vpn, plan.sites[f.to].vpn);
    // De-synchronization: rate within +-10% of nominal, start within the
    // first 100 ms, and no two flows share the exact (rate, start) phase —
    // lockstep emission is what breaks serial-vs-sharded byte identity.
    EXPECT_GE(f.rate_bps, p.rate_bps * 0.9);
    EXPECT_LE(f.rate_bps, p.rate_bps * 1.1);
    EXPECT_GE(f.start_s, 0.0);
    EXPECT_LT(f.start_s, 0.1);
    EXPECT_TRUE(phases.insert({f.rate_bps, f.start_s}).second);
  }
}

// --- VRF/RT allocation across pods ----------------------------------------

TEST(TopogenBackbone, VrfRdAndRtUniqueAcrossPods) {
  const backbone::GeneratedPlan plan = backbone::generate_plan(small_params());
  backbone::MplsBackbone bb(plan.backbone);
  std::vector<vpn::VpnId> ids;
  for (const std::string& name : plan.vpns) {
    ids.push_back(bb.service.create_vpn(name));
  }
  std::set<routing::RouteDistinguisher> rds;
  std::set<routing::RouteTarget> rts;
  for (vpn::VpnId id : ids) {
    EXPECT_TRUE(rds.insert(bb.service.rd_of(id)).second)
        << "duplicate RD " << bb.service.rd_of(id).to_string();
    EXPECT_TRUE(rts.insert(bb.service.rt_of(id)).second)
        << "duplicate RT " << bb.service.rt_of(id).to_string();
  }
}

// --- Partitioner on generated graphs --------------------------------------

TEST(TopogenPartition, GeneratedGraphSplitsBalancedWithCoreCut) {
  const backbone::GeneratedPlan plan = backbone::generate_plan(small_params());
  backbone::MplsBackbone bb(plan.backbone);
  std::vector<vpn::VpnId> ids;
  for (const std::string& name : plan.vpns) {
    ids.push_back(bb.service.create_vpn(name));
  }
  for (const backbone::PlanSite& s : plan.sites) {
    bb.add_site(ids[s.vpn], s.pe, s.prefix);
  }

  const backbone::ShardPlan shard = backbone::compute_shard_plan(bb.topo, 4);
  ASSERT_TRUE(shard.parallel());
  EXPECT_EQ(shard.shard_count, 4U);
  EXPECT_GT(shard.lookahead, 0);

  std::vector<std::size_t> sizes(shard.shard_count, 0);
  for (std::uint32_t s : shard.node_shard) ++sizes[s];
  // Pod-preserving partitioning trades perfect balance for cut size, so
  // allow 25% headroom over the ideal share.
  const std::size_t ideal = (bb.topo.node_count() + 3) / 4;
  const std::size_t cap = ideal + (ideal + 3) / 4;
  for (std::size_t sz : sizes) {
    EXPECT_GT(sz, 0U);
    EXPECT_LE(sz, cap);
  }
  // Every cut link really crosses shards.
  for (net::LinkId id : shard.cut_links) {
    EXPECT_NE(shard.node_shard[bb.topo.link(id).end_a().node],
              shard.node_shard[bb.topo.link(id).end_b().node]);
  }
}

// --- Scenario directive ---------------------------------------------------

TEST(TopogenScenario, DirectiveExpandsIntoRunnableScenario) {
  backbone::ScenarioError err;
  auto sc = backbone::Scenario::parse(
      "topology generated p=4 pe=4 ce=2 pod=2 flows=16 seed=3\nrun for=0.2\n",
      &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  EXPECT_EQ(sc->flow_count(), 16U);
  std::ostringstream out;
  EXPECT_TRUE(sc->run(out));
  EXPECT_NE(out.str().find("delivered="), std::string::npos);
}

TEST(TopogenScenario, DirectiveRefusesMixedDeclarations) {
  backbone::ScenarioError err;
  EXPECT_FALSE(backbone::Scenario::parse("topology generated p=4 pe=4\n"
                                         "backbone p=2 pe=2\nrun for=1\n",
                                         &err)
                   .has_value());
  EXPECT_FALSE(backbone::Scenario::parse("topology generated p=4 pe=4\n"
                                         "vpn corp\nrun for=1\n",
                                         &err)
                   .has_value());
}

// --- Byte identity: generated scenario, serial vs sharded vs flowcache ----

constexpr const char* kGeneratedScenario =
    "topology generated p=8 pe=16 ce=2 pod=4 flows=192 rate=48e3 seed=5\n"
    "run for=1\n";

struct Outputs {
  std::string report;
  std::string metrics_json;
  std::string latency_json;
  bool ok = false;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Two report lines legitimately differ between engine variants: the
/// converged banner names the engine (shard count, window/handoff stats),
/// and the obs summary counts trace events — the flowcache's cached hits
/// skip per-hop lookup events, so its count depends on cache on/off.
/// Everything else (SLA table, delivered/leaks) must match byte-for-byte.
std::string strip_engine_lines(const std::string& text) {
  std::stringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("converged") == std::string::npos &&
        line.rfind("obs:", 0) != 0) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

/// The per-router fastpath gauges are cache diagnostics, not simulation
/// results: hit/miss/hit-rate counts track the cache itself, so the
/// flowcache-off variants would trivially differ from the cache-on serial
/// baseline. Scrub those entries before the byte-for-byte comparison;
/// every remaining gauge must still match exactly.
std::string strip_fastpath_gauges(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t key = json.find("\"node/", pos);
    if (key == std::string::npos) {
      out.append(json, pos, std::string::npos);
      break;
    }
    const std::size_t key_end = json.find('"', key + 1);
    const std::size_t entry_end = json.find_first_of(",}", key_end);
    const std::string name = json.substr(key, key_end - key);
    if (name.find("/fastpath/") != std::string::npos) {
      out.append(json, pos, key - pos);
      pos = entry_end + (json[entry_end] == ',' ? 1 : 0);
    } else {
      out.append(json, pos, entry_end - pos);
      pos = entry_end;
    }
  }
  return out;
}

Outputs run_generated(std::uint32_t shards, bool flowcache) {
  backbone::ScenarioError err;
  auto sc = backbone::Scenario::parse(kGeneratedScenario, &err);
  EXPECT_TRUE(sc.has_value()) << "line " << err.line << ": " << err.message;
  Outputs out;
  if (!sc) return out;

  const std::string dir = ::testing::TempDir();
  const std::string tag =
      std::to_string(shards) + (flowcache ? "_fc" : "_nofc");
  backbone::ObsOptions obs;
  obs.metrics_json_path = dir + "/topogen_metrics_" + tag + ".json";
  obs.latency_json_path = dir + "/topogen_latency_" + tag + ".json";
  sc->set_obs(obs);
  sc->set_shards(shards);
  sc->set_flowcache(flowcache);

  std::ostringstream report;
  out.ok = sc->run(report);
  out.report = strip_engine_lines(report.str());
  out.metrics_json = strip_fastpath_gauges(slurp(obs.metrics_json_path));
  out.latency_json = slurp(obs.latency_json_path);
  EXPECT_FALSE(out.metrics_json.empty());
  EXPECT_FALSE(out.latency_json.empty());
  return out;
}

TEST(TopogenDeterminism, ShardsAndFlowcacheMatchSerialByteForByte) {
  const Outputs serial = run_generated(1, true);
  ASSERT_TRUE(serial.ok);
  struct Variant {
    std::uint32_t shards;
    bool flowcache;
  };
  for (const Variant v : {Variant{2, true}, Variant{4, true},
                          Variant{1, false}, Variant{4, false}}) {
    SCOPED_TRACE("shards=" + std::to_string(v.shards) +
                 " flowcache=" + (v.flowcache ? "on" : "off"));
    const Outputs par = run_generated(v.shards, v.flowcache);
    ASSERT_TRUE(par.ok);
    EXPECT_EQ(par.report, serial.report);
    EXPECT_EQ(par.metrics_json, serial.metrics_json);
    EXPECT_EQ(par.latency_json, serial.latency_json);
  }
}

}  // namespace
}  // namespace mvpn
