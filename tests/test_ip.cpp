#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ip/address.hpp"
#include "ip/dir24_fib.hpp"
#include "ip/prefix_trie.hpp"
#include "ip/route_table.hpp"
#include "sim/rng.hpp"

namespace mvpn::ip {
namespace {

TEST(Ipv4Address, ParseAndFormat) {
  const auto a = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x0A010203u);
  EXPECT_EQ(a->to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4Address(0, 0, 0, 0).to_string(), "0.0.0.0");
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..2.3").has_value());
  EXPECT_THROW(Ipv4Address::must_parse("bogus"), std::invalid_argument);
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1), Ipv4Address(0x0A000001));
}

TEST(Prefix, ParseCanonicalizesHostBits) {
  const auto p = Prefix::parse("10.1.2.3/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->address().to_string(), "10.1.0.0");
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
}

TEST(Prefix, RejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
}

TEST(Prefix, Containment) {
  const Prefix p = Prefix::must_parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Address::must_parse("10.1.255.255")));
  EXPECT_FALSE(p.contains(Ipv4Address::must_parse("10.2.0.0")));
  EXPECT_TRUE(p.contains(Prefix::must_parse("10.1.2.0/24")));
  EXPECT_FALSE(p.contains(Prefix::must_parse("10.0.0.0/8")));
  const Prefix all = Prefix::must_parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Address::must_parse("192.168.1.1")));
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix::must_parse("0.0.0.0/0").mask(), 0u);
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/8").mask(), 0xFF000000u);
  EXPECT_EQ(Prefix::must_parse("1.2.3.4/32").mask(), 0xFFFFFFFFu);
}

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::must_parse("10.1.0.0/16"), 16);
  trie.insert(Prefix::must_parse("10.1.2.0/24"), 24);

  EXPECT_EQ(*trie.longest_match(Ipv4Address::must_parse("10.1.2.3")), 24);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::must_parse("10.1.9.9")), 16);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::must_parse("10.9.9.9")), 8);
  EXPECT_EQ(trie.longest_match(Ipv4Address::must_parse("11.0.0.1")), nullptr);
  EXPECT_EQ(*trie.exact_match(Prefix::must_parse("10.1.0.0/16")), 16);
  EXPECT_EQ(trie.exact_match(Prefix::must_parse("10.2.0.0/16")), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("0.0.0.0/0"), 1);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::must_parse("200.200.200.200")),
            1);
}

TEST(PrefixTrie, EraseAndReplace) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(Prefix::must_parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Prefix::must_parse("10.0.0.0/8"), 2));  // replace
  EXPECT_EQ(*trie.exact_match(Prefix::must_parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(Prefix::must_parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Prefix::must_parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, ReportsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::must_parse("10.128.0.0/9"), 9);
  const Prefix* matched = nullptr;
  const int* v =
      trie.longest_match(Ipv4Address::must_parse("10.200.0.1"), matched);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 9);
  EXPECT_EQ(matched->to_string(), "10.128.0.0/9");
}

TEST(PrefixTrie, HostRoutesWork) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::host(Ipv4Address::must_parse("1.2.3.4")), 42);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::must_parse("1.2.3.4")), 42);
  EXPECT_EQ(trie.longest_match(Ipv4Address::must_parse("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::must_parse("192.168.0.0/16"), 2);
  int sum = 0;
  trie.for_each([&](const Prefix&, const int& v) { sum += v; });
  EXPECT_EQ(sum, 3);
}

TEST(RouteTable, AdminDistancePreference) {
  RouteTable table;
  RouteEntry igp;
  igp.prefix = Prefix::must_parse("10.0.0.0/8");
  igp.source = RouteSource::kIgp;
  igp.admin_distance = 110;
  igp.next_hop.node = 1;
  igp.next_hop.iface = 0;
  EXPECT_TRUE(table.install(igp));

  RouteEntry bgp = igp;
  bgp.source = RouteSource::kBgp;
  bgp.admin_distance = 200;
  bgp.next_hop.node = 2;
  EXPECT_FALSE(table.install(bgp));  // worse AD loses
  EXPECT_EQ(table.lookup(Ipv4Address::must_parse("10.1.1.1"))->next_hop.node,
            1u);

  RouteEntry connected = igp;
  connected.source = RouteSource::kConnected;
  connected.admin_distance = 0;
  connected.next_hop.node = 3;
  EXPECT_TRUE(table.install(connected));  // better AD wins
  EXPECT_EQ(table.lookup(Ipv4Address::must_parse("10.1.1.1"))->next_hop.node,
            3u);
}

TEST(RouteTable, MetricBreaksTies) {
  RouteTable table;
  RouteEntry a;
  a.prefix = Prefix::must_parse("10.0.0.0/8");
  a.admin_distance = 110;
  a.metric = 20;
  a.next_hop.node = 1;
  a.next_hop.iface = 0;
  table.install(a);
  RouteEntry b = a;
  b.metric = 10;
  b.next_hop.node = 2;
  EXPECT_TRUE(table.install(b));
  EXPECT_EQ(table.lookup(Ipv4Address::must_parse("10.1.1.1"))->next_hop.node,
            2u);
}

TEST(RouteTable, ReplaceAndRemove) {
  RouteTable table;
  RouteEntry e;
  e.prefix = Prefix::must_parse("10.0.0.0/8");
  e.admin_distance = 200;
  table.install(e);
  RouteEntry better = e;
  better.admin_distance = 250;  // would lose under install
  better.metric = 7;
  table.replace(better);
  EXPECT_EQ(table.find(e.prefix)->metric, 7u);
  EXPECT_TRUE(table.remove(e.prefix));
  EXPECT_EQ(table.lookup(Ipv4Address::must_parse("10.1.1.1")), nullptr);
}

// The lookup cache must never serve a stale result: installing a more
// specific route after a lookup has been cached must change the answer.
TEST(RouteTable, LookupCacheInvalidatedByMutation) {
  RouteTable table;
  RouteEntry cover;
  cover.prefix = Prefix::must_parse("10.0.0.0/8");
  cover.next_hop.node = 1;
  cover.next_hop.iface = 0;
  table.install(cover);

  const Ipv4Address addr = Ipv4Address::must_parse("10.1.2.3");
  EXPECT_EQ(table.lookup(addr)->next_hop.node, 1u);  // now cached
  EXPECT_EQ(table.lookup(addr)->next_hop.node, 1u);  // cache hit

  RouteEntry specific;
  specific.prefix = Prefix::must_parse("10.1.0.0/16");
  specific.next_hop.node = 2;
  specific.next_hop.iface = 0;
  const std::uint64_t gen_before = table.generation();
  table.install(specific);
  EXPECT_GT(table.generation(), gen_before);
  EXPECT_EQ(table.lookup(addr)->next_hop.node, 2u);  // longer match wins

  table.remove(specific.prefix);
  EXPECT_EQ(table.lookup(addr)->next_hop.node, 1u);  // back to the cover

  table.clear();
  EXPECT_EQ(table.lookup(addr), nullptr);  // negative result, re-resolved
  table.install(cover);
  EXPECT_EQ(table.lookup(addr)->next_hop.node, 1u);
}

TEST(RouteTable, EntriesSnapshot) {
  RouteTable table;
  for (int i = 0; i < 5; ++i) {
    RouteEntry e;
    e.prefix = Prefix(Ipv4Address(10, std::uint8_t(i), 0, 0), 16);
    table.install(e);
  }
  EXPECT_EQ(table.size(), 5u);
  EXPECT_EQ(table.entries().size(), 5u);
}

TEST(Dir24Fib, BasicLookup) {
  Dir24Fib fib;
  fib.build({{Prefix::must_parse("10.0.0.0/8"), 1},
             {Prefix::must_parse("10.1.0.0/16"), 2},
             {Prefix::must_parse("10.1.2.0/24"), 3}});
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.3")).value(), 3);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.3.3")).value(), 2);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.200.0.1")).value(), 1);
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("11.0.0.1")).has_value());
}

TEST(Dir24Fib, LongPrefixesUseExtensionTable) {
  Dir24Fib fib;
  fib.build({{Prefix::must_parse("10.1.2.0/24"), 1},
             {Prefix::must_parse("10.1.2.128/25"), 2},
             {Prefix::must_parse("10.1.2.4/32"), 3}});
  EXPECT_GE(fib.long_block_count(), 1u);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.4")).value(), 3);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.5")).value(), 1);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.200")).value(), 2);
}

TEST(Dir24Fib, Slash32WithoutCoverMisses) {
  Dir24Fib fib;
  fib.build({{Prefix::must_parse("10.1.2.4/32"), 7}});
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.4")).value(), 7);
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("10.1.2.5")).has_value());
}

TEST(Dir24Fib, AgreesWithTrieOnRandomTables) {
  sim::Rng rng(4242);
  PrefixTrie<std::uint16_t> trie;
  std::vector<std::pair<Prefix, std::uint16_t>> routes;
  for (std::uint16_t i = 0; i < 500; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(8, 28));
    const auto addr = static_cast<std::uint32_t>(rng.next_u64());
    const Prefix p(Ipv4Address(addr), len);
    routes.emplace_back(p, i);
    trie.insert(p, i);  // trie replace mirrors dir24 "later wins for same"
  }
  Dir24Fib fib;
  fib.build(routes);
  for (int i = 0; i < 20000; ++i) {
    const Ipv4Address a(static_cast<std::uint32_t>(rng.next_u64()));
    const std::uint16_t* expect = trie.longest_match(a);
    const auto got = fib.lookup(a);
    if (expect == nullptr) {
      EXPECT_FALSE(got.has_value()) << a.to_string();
    } else {
      ASSERT_TRUE(got.has_value()) << a.to_string();
      EXPECT_EQ(*got, *expect) << a.to_string();
    }
  }
}

TEST(Dir24Fib, RejectsHugeNextHopIndex) {
  Dir24Fib fib;
  EXPECT_THROW(fib.build({{Prefix::must_parse("10.0.0.0/8"), 0x7FFF}}),
               std::invalid_argument);
}

TEST(Dir24Fib, RebuildWithFewerRoutesDropsOldState) {
  Dir24Fib fib;
  fib.build({{Prefix::must_parse("10.0.0.0/8"), 1},
             {Prefix::must_parse("20.1.2.0/24"), 2},
             {Prefix::must_parse("30.1.2.128/25"), 3}});
  EXPECT_GE(fib.long_block_count(), 1u);

  // Rebuild with a strict subset: every route from the first build that is
  // not in the second must miss, including the >/24 extension-table one.
  fib.build({{Prefix::must_parse("10.0.0.0/8"), 4}});
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.9.9.9")).value(), 4);
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("20.1.2.3")).has_value());
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("30.1.2.200")).has_value());
  EXPECT_EQ(fib.long_block_count(), 0u);

  // Rebuild to empty: everything misses.
  fib.build({});
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("10.9.9.9")).has_value());
}

TEST(Dir24Fib, FailedBuildLeavesPreviousTableIntact) {
  Dir24Fib fib;
  fib.build({{Prefix::must_parse("10.0.0.0/8"), 1},
             {Prefix::must_parse("10.1.2.4/32"), 2}});
  // Validation happens before any painting, so a bad dump must not clobber
  // the table built above — even when the bad entry sorts after paintable
  // ones.
  EXPECT_THROW(fib.build({{Prefix::must_parse("40.0.0.0/8"), 5},
                          {Prefix::must_parse("50.0.0.0/8"), 0x7FFF}}),
               std::invalid_argument);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.1.2.4")).value(), 2);
  EXPECT_EQ(fib.lookup(Ipv4Address::must_parse("10.200.0.1")).value(), 1);
  EXPECT_FALSE(fib.lookup(Ipv4Address::must_parse("40.0.0.1")).has_value());
}

TEST(PrefixTrie, ForEachMutableEdits) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::must_parse("11.0.0.0/8"), 2);
  trie.for_each_mutable([](const Prefix&, int& v) { v *= 10; });
  EXPECT_EQ(*trie.exact_match(Prefix::must_parse("10.0.0.0/8")), 10);
  EXPECT_EQ(*trie.exact_match(Prefix::must_parse("11.0.0.0/8")), 20);
}

TEST(Hashing, AddressAndPrefixUsableInUnorderedContainers) {
  std::unordered_map<Ipv4Address, int> by_addr;
  by_addr[Ipv4Address::must_parse("10.0.0.1")] = 7;
  EXPECT_EQ(by_addr.at(Ipv4Address(10, 0, 0, 1)), 7);
  std::unordered_map<Prefix, int> by_prefix;
  by_prefix[Prefix::must_parse("10.0.0.0/8")] = 9;
  EXPECT_EQ(by_prefix.at(Prefix::must_parse("10.1.2.3/8")), 9);  // canonical
}

TEST(NextHop, Validity) {
  NextHop nh;
  EXPECT_FALSE(nh.valid());
  nh.local = true;
  EXPECT_TRUE(nh.valid());
  NextHop via;
  via.node = 1;
  EXPECT_FALSE(via.valid());  // missing interface
  via.iface = 0;
  EXPECT_TRUE(via.valid());
}

TEST(RouteEntry, EcmpNextHopSelection) {
  RouteEntry e;
  e.next_hop = NextHop{1, 10, false};
  EXPECT_EQ(e.next_hop_for(12345).node, 1u);  // no ECMP set → primary
  e.ecmp = {NextHop{1, 10, false}, NextHop{2, 11, false}};
  EXPECT_EQ(e.next_hop_for(0).node, 1u);
  EXPECT_EQ(e.next_hop_for(1).node, 2u);
  EXPECT_EQ(e.next_hop_for(7).node, 2u);  // 7 % 2
}

TEST(RouteSource, Names) {
  EXPECT_EQ(to_string(RouteSource::kConnected), "connected");
  EXPECT_EQ(to_string(RouteSource::kVpn), "vpn");
  EXPECT_EQ(default_admin_distance(RouteSource::kConnected), 0);
  EXPECT_EQ(default_admin_distance(RouteSource::kIgp), 110);
}

}  // namespace
}  // namespace mvpn::ip
