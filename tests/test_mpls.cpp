#include <gtest/gtest.h>

#include "mpls/domain.hpp"
#include "mpls/ldp.hpp"
#include "mpls/lfib.hpp"
#include "mpls/rsvp_te.hpp"
#include "routing/igp.hpp"
#include "vpn/router.hpp"

namespace mvpn::mpls {
namespace {

using vpn::Role;
using vpn::Router;

TEST(LabelAllocator, DenseFromFirstDynamic) {
  LabelAllocator alloc;
  EXPECT_EQ(alloc.allocate(), net::kFirstDynamicLabel);
  EXPECT_EQ(alloc.allocate(), net::kFirstDynamicLabel + 1);
  EXPECT_EQ(alloc.allocated_count(), 2u);
}

TEST(Lfib, InstallLookupRemove) {
  Lfib lfib;
  LfibEntry e;
  e.in_label = 100;
  e.op = LabelOp::kSwap;
  e.out_label = 200;
  e.next_hop = 7;
  e.out_iface = 1;
  lfib.install(e);
  ASSERT_NE(lfib.lookup(100), nullptr);
  EXPECT_EQ(lfib.lookup(100)->out_label, 200u);
  EXPECT_EQ(lfib.lookup(99), nullptr);
  EXPECT_EQ(lfib.lookup(3), nullptr);  // reserved range never matches
  EXPECT_EQ(lfib.size(), 1u);
  EXPECT_TRUE(lfib.remove(100));
  EXPECT_FALSE(lfib.remove(100));
  EXPECT_EQ(lfib.lookup(100), nullptr);
}

TEST(Lfib, ReplaceKeepsSize) {
  Lfib lfib;
  LfibEntry e;
  e.in_label = 50;
  lfib.install(e);
  e.out_label = 9;
  lfib.install(e);
  EXPECT_EQ(lfib.size(), 1u);
  EXPECT_EQ(lfib.entries().size(), 1u);
}

TEST(Lfib, RejectsReservedLabels) {
  Lfib lfib;
  LfibEntry e;
  e.in_label = net::kImplicitNullLabel;
  EXPECT_THROW(lfib.install(e), std::invalid_argument);
}

TEST(MplsDomain, AggregatesState) {
  MplsDomain domain;
  (void)domain.state_of(1).allocator.allocate();
  (void)domain.state_of(2).allocator.allocate();
  LfibEntry e;
  e.in_label = 16;
  domain.state_of(1).lfib.install(e);
  EXPECT_EQ(domain.total_labels(), 2u);
  EXPECT_EQ(domain.total_lfib_entries(), 1u);
  EXPECT_EQ(domain.find(3), nullptr);
  EXPECT_NE(domain.find(1), nullptr);
}

// ---------------------------------------------------------------------------

struct MplsFixture {
  net::Topology topo;
  routing::ControlPlane cp{topo};
  routing::Igp igp{cp};
  MplsDomain domain;
  Ldp ldp{cp, igp, domain};
  RsvpTe rsvp{cp, igp, domain};
  std::vector<Router*> routers;

  Router& add(const std::string& name) {
    auto& r = topo.add_node<Router>(name, Role::kP);
    routers.push_back(&r);
    igp.add_router(r.id());
    ldp.enable_router(r.id());
    r.set_lsr_state(&domain.state_of(r.id()));
    return r;
  }
  net::LinkId link(Router& a, Router& b, std::uint32_t cost = 1,
                   double bw = 10e6) {
    net::LinkConfig cfg;
    cfg.igp_cost = cost;
    cfg.bandwidth_bps = bw;
    return topo.connect(a.id(), b.id(), cfg);
  }
  void converge() {
    igp.start();
    topo.scheduler().run();
  }
};

TEST(Ldp, DistributesLabelsAlongChain) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b);
  f.link(b, c);
  f.converge();

  const ip::Prefix fec = ip::Prefix::host(c.loopback());
  f.ldp.announce_egress(c.id(), fec);
  f.topo.scheduler().run();

  // Ingress a: must have an FTN toward c via b with b's label.
  const auto ftn = f.ldp.ftn(a.id(), fec);
  ASSERT_TRUE(ftn.has_value());
  EXPECT_EQ(ftn->next_hop, b.id());
  EXPECT_FALSE(ftn->implicit_null);

  // Transit b: swap entry exists and pops toward c (PHP — c advertised
  // implicit null).
  const LfibEntry* at_b = f.domain.state_of(b.id()).lfib.lookup(
      ftn->out_label);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->op, LabelOp::kPop);
  EXPECT_EQ(at_b->next_hop, c.id());

  // b itself, adjacent to the egress, sees implicit-null in its FTN.
  const auto ftn_b = f.ldp.ftn(b.id(), fec);
  ASSERT_TRUE(ftn_b.has_value());
  EXPECT_TRUE(ftn_b->implicit_null);

  EXPECT_GT(f.ldp.bindings_at(a.id()), 0u);
  EXPECT_EQ(f.ldp.fec_count(), 1u);
}

TEST(Ldp, LongerChainSwapsInTheMiddle) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  auto& d = f.add("d");
  f.link(a, b);
  f.link(b, c);
  f.link(c, d);
  f.converge();
  const ip::Prefix fec = ip::Prefix::host(d.loopback());
  f.ldp.announce_egress(d.id(), fec);
  f.topo.scheduler().run();

  const auto ftn = f.ldp.ftn(a.id(), fec);
  ASSERT_TRUE(ftn.has_value());
  const LfibEntry* at_b =
      f.domain.state_of(b.id()).lfib.lookup(ftn->out_label);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->op, LabelOp::kSwap);  // b swaps to c's label
  const LfibEntry* at_c =
      f.domain.state_of(c.id()).lfib.lookup(at_b->out_label);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->op, LabelOp::kPop);  // penultimate hop pops
}

TEST(Ldp, RepointsAfterIgpChange) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId ab = f.link(a, b, 1);
  f.link(b, c, 1);
  f.link(a, c, 5);
  f.converge();
  const ip::Prefix fec = ip::Prefix::host(c.loopback());
  f.ldp.announce_egress(c.id(), fec);
  f.topo.scheduler().run();
  ASSERT_EQ(f.ldp.ftn(a.id(), fec)->next_hop, b.id());

  f.topo.link(ab).set_up(false);
  f.igp.notify_link_change(ab);
  f.topo.scheduler().run();
  // Liberal retention: the mapping from c was already in a's LIB, so the
  // new FTN via the direct a-c link is available without new signaling.
  const auto ftn = f.ldp.ftn(a.id(), fec);
  ASSERT_TRUE(ftn.has_value());
  EXPECT_EQ(ftn->next_hop, c.id());
  EXPECT_TRUE(ftn->implicit_null);
}

TEST(RsvpTe, SignalsLspAndInstallsLabels) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1, 10e6);
  f.link(b, c, 1, 10e6);
  f.converge();

  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = c.id();
  cfg.bandwidth_bps = 4e6;
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();

  const RsvpTe::Lsp& lsp = f.rsvp.lsp(id);
  EXPECT_EQ(lsp.state, RsvpTe::LspState::kUp);
  EXPECT_EQ(lsp.path,
            (std::vector<ip::NodeId>{a.id(), b.id(), c.id()}));
  EXPECT_FALSE(lsp.head_implicit_null);
  EXPECT_EQ(lsp.head_next_hop, b.id());
  // Bandwidth is held on both hops.
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(a.id(), 0), 4e6);
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(b.id(), 1), 4e6);
  // b has a pop entry for the LSP label (PHP from the tail).
  const LfibEntry* at_b =
      f.domain.state_of(b.id()).lfib.lookup(lsp.head_label);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->op, LabelOp::kPop);
  EXPECT_GT(f.cp.message_count("rsvp.path"), 0u);
  EXPECT_GT(f.cp.message_count("rsvp.resv"), 0u);
}

TEST(RsvpTe, OneHopLspIsImplicitNull) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  f.link(a, b);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = b.id();
  cfg.bandwidth_bps = 1e6;
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(id).state, RsvpTe::LspState::kUp);
  EXPECT_TRUE(f.rsvp.lsp(id).head_implicit_null);
}

TEST(RsvpTe, AdmissionControlRejectsOverSubscription) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  f.link(a, b, 1, 10e6);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = b.id();
  cfg.bandwidth_bps = 7e6;
  const LspId first = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(first).state, RsvpTe::LspState::kUp);

  const LspId second = f.rsvp.signal(cfg);  // another 7 Mb/s does not fit
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(second).state, RsvpTe::LspState::kFailed);
  // The first LSP's reservation is intact.
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(a.id(), 0), 7e6);
}

TEST(RsvpTe, PicksDetourWhenDirectIsFull) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1, 10e6);  // direct
  f.link(a, c, 1, 10e6);  // detour
  f.link(c, b, 1, 10e6);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = b.id();
  cfg.bandwidth_bps = 6e6;
  const LspId first = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  const LspId second = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(first).state, RsvpTe::LspState::kUp);
  EXPECT_EQ(f.rsvp.lsp(first).path.size(), 2u);
  EXPECT_EQ(f.rsvp.lsp(second).state, RsvpTe::LspState::kUp);
  EXPECT_EQ(f.rsvp.lsp(second).path.size(), 3u);  // via c
}

TEST(RsvpTe, TearDownReleasesEverything) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1, 10e6);
  f.link(b, c, 1, 10e6);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = c.id();
  cfg.bandwidth_bps = 4e6;
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  const std::size_t lfib_before = f.domain.total_lfib_entries();
  EXPECT_GT(lfib_before, 0u);

  f.rsvp.tear_down(id);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(id).state, RsvpTe::LspState::kTornDown);
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(a.id(), 0), 0.0);
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(b.id(), 1), 0.0);
  EXPECT_LT(f.domain.total_lfib_entries(), lfib_before);
}

TEST(RsvpTe, ReroutesAroundFailedLink) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId direct = f.link(a, b, 1, 10e6);
  f.link(a, c, 1, 10e6);
  f.link(c, b, 1, 10e6);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = b.id();
  cfg.bandwidth_bps = 2e6;
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  ASSERT_EQ(f.rsvp.lsp(id).path.size(), 2u);

  f.topo.link(direct).set_up(false);
  f.igp.notify_link_change(direct);
  f.rsvp.notify_link_failure(direct);
  f.topo.scheduler().run();

  const RsvpTe::Lsp& lsp = f.rsvp.lsp(id);
  EXPECT_EQ(lsp.state, RsvpTe::LspState::kUp);
  EXPECT_EQ(lsp.path, (std::vector<ip::NodeId>{a.id(), c.id(), b.id()}));
  EXPECT_EQ(lsp.reroutes, 1u);
  // The failed link holds no stale reservation.
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(a.id(), direct), 0.0);
}

TEST(RsvpTe, ExplicitRouteIshonored) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1, 10e6);
  f.link(a, c, 1, 10e6);
  f.link(c, b, 1, 10e6);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = b.id();
  cfg.bandwidth_bps = 1e6;
  cfg.explicit_route = {a.id(), c.id(), b.id()};  // force the detour
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(id).state, RsvpTe::LspState::kUp);
  EXPECT_EQ(f.rsvp.lsp(id).path.size(), 3u);
}

TEST(Ldp, MultipleFecsIndependentLabels) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b);
  f.link(b, c);
  f.converge();
  const ip::Prefix fec_b = ip::Prefix::host(b.loopback());
  const ip::Prefix fec_c = ip::Prefix::host(c.loopback());
  f.ldp.announce_egress(b.id(), fec_b);
  f.ldp.announce_egress(c.id(), fec_c);
  f.topo.scheduler().run();
  EXPECT_EQ(f.ldp.fec_count(), 2u);
  const auto ftn_b = f.ldp.ftn(a.id(), fec_b);
  const auto ftn_c = f.ldp.ftn(a.id(), fec_c);
  ASSERT_TRUE(ftn_b.has_value());
  ASSERT_TRUE(ftn_c.has_value());
  // b is adjacent (PHP); c needs a real label, distinct per FEC.
  EXPECT_TRUE(ftn_b->implicit_null);
  EXPECT_FALSE(ftn_c->implicit_null);
}

TEST(Ldp, UnknownFecHasNoFtn) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  f.link(a, b);
  f.converge();
  EXPECT_FALSE(
      f.ldp.ftn(a.id(), ip::Prefix::must_parse("9.9.9.9/32")).has_value());
  EXPECT_EQ(f.ldp.bindings_at(a.id()), 0u);
}

TEST(RsvpTe, ExplicitRouteThroughDownLinkFails) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId ab = f.link(a, b);
  f.link(b, c);
  f.converge();
  f.topo.link(ab).set_up(false);
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = c.id();
  cfg.bandwidth_bps = 1e6;
  cfg.explicit_route = {a.id(), b.id(), c.id()};
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  // The PATH message is lost on the dead link; the LSP never comes up and
  // holds only the reservation made before the break (released on
  // teardown).
  EXPECT_NE(f.rsvp.lsp(id).state, RsvpTe::LspState::kUp);
  f.rsvp.tear_down(id);
  f.topo.scheduler().run();
  EXPECT_DOUBLE_EQ(f.igp.te_reserved(a.id(), ab), 0.0);
}

TEST(RsvpTe, NonAdjacentExplicitRouteFails) {
  MplsFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b);
  f.link(b, c);
  f.converge();
  TeLspConfig cfg;
  cfg.head = a.id();
  cfg.tail = c.id();
  cfg.bandwidth_bps = 1e6;
  cfg.explicit_route = {a.id(), c.id()};  // a and c are not adjacent
  const LspId id = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  EXPECT_EQ(f.rsvp.lsp(id).state, RsvpTe::LspState::kFailed);
}

TEST(RsvpTe, UnknownLspThrows) {
  MplsFixture f;
  EXPECT_THROW(f.rsvp.lsp(42), std::out_of_range);
}

}  // namespace
}  // namespace mvpn::mpls
