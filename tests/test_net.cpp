#include <gtest/gtest.h>

#include <utility>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"

namespace mvpn::net {
namespace {

/// Minimal node that records everything it receives.
class SinkNode : public Node {
 public:
  using Node::Node;
  void receive(PacketPtr p, ip::IfIndex in_if) override {
    last_in_if = in_if;
    received.push_back(std::move(p));
  }
  std::vector<PacketPtr> received;
  ip::IfIndex last_in_if = ip::kInvalidIf;
};

PacketPtr make_packet(Topology& topo, std::size_t payload = 472) {
  PacketPtr p = topo.packet_factory().make();
  p->ip.src = ip::Ipv4Address::must_parse("10.0.0.1");
  p->ip.dst = ip::Ipv4Address::must_parse("10.0.0.2");
  p->payload_bytes = payload;
  return p;
}

TEST(Packet, WireSizePlainIp) {
  Packet p;
  p.payload_bytes = 472;
  EXPECT_EQ(p.wire_size(), 20u + 8u + 472u);  // 500 bytes
}

TEST(Packet, WireSizeWithMplsStack) {
  Packet p;
  p.payload_bytes = 100;
  p.push_label(MplsShim{100, 5, 64});
  p.push_label(MplsShim{200, 5, 64});
  EXPECT_EQ(p.wire_size(), 128u + 2 * kMplsShimBytes);
}

TEST(Packet, WireSizeWithEsp) {
  Packet p;
  p.payload_bytes = 100;  // inner = 128, +2 trailer = 130 → pad 6 → 136
  EspEncap esp;
  esp.pad_bytes = 6;
  p.esp = esp;
  // overhead = outer 20 + 8 spi/seq + 8 IV + 6 pad + 2 trailer + 12 ICV = 56
  EXPECT_EQ(p.wire_size(), 128u + 56u);
}

TEST(Packet, WireSizeWithPvc) {
  Packet p;
  p.payload_bytes = 100;
  p.pvc = PvcEncap{9};
  EXPECT_EQ(p.wire_size(), 128u + kPvcEncapBytes);
}

TEST(Packet, LabelStackOps) {
  Packet p;
  p.push_label(MplsShim{100, 3, 64});
  p.push_label(MplsShim{200, 5, 64});
  EXPECT_EQ(p.top_label().label, 200u);
  p.swap_label(300);
  EXPECT_EQ(p.top_label().label, 300u);
  EXPECT_EQ(p.top_label().exp, 5);   // EXP preserved on swap
  EXPECT_EQ(p.top_label().ttl, 63);  // TTL decremented on swap
  const MplsShim popped = p.pop_label();
  EXPECT_EQ(popped.label, 300u);
  EXPECT_EQ(p.top_label().label, 100u);
  p.pop_label();
  EXPECT_FALSE(p.has_labels());
  EXPECT_THROW(p.pop_label(), std::logic_error);
  EXPECT_THROW(p.swap_label(1), std::logic_error);
}

TEST(Packet, VisibleDscpPrefersOuter) {
  Packet p;
  p.ip.dscp = 46;
  EXPECT_EQ(p.visible_dscp(), 46);
  EspEncap esp;
  esp.outer.dscp = 0;
  p.esp = esp;
  EXPECT_EQ(p.visible_dscp(), 0);  // encryption hid the inner marking
}

TEST(PacketFactory, UniqueIds) {
  Topology topo;
  auto a = topo.packet_factory().make();
  auto b = topo.packet_factory().make();
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(topo.packet_factory().issued(), 2u);
}

TEST(DropTailQueue, CapacityAndAccounting) {
  DropTailQueue q(2);
  Topology topo;
  EXPECT_TRUE(q.enqueue(make_packet(topo)));
  EXPECT_TRUE(q.enqueue(make_packet(topo)));
  EXPECT_FALSE(q.enqueue(make_packet(topo)));  // full
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.byte_count(), 1000u);
  EXPECT_EQ(q.dropped().packets.value(), 1u);
  EXPECT_EQ(q.enqueued().packets.value(), 2u);
  auto p = q.dequeue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(q.packet_count(), 1u);
  q.dequeue();
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(Topology, ConnectAssignsInterfacesAndSubnets) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  const LinkId l = topo.connect(a.id(), b.id());
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(a.interfaces().size(), 1u);
  EXPECT_EQ(b.interfaces().size(), 1u);
  EXPECT_EQ(a.interface(0).peer, b.id());
  EXPECT_EQ(a.interface(0).link, l);
  EXPECT_EQ(a.interface(0).subnet, b.interface(0).subnet);
  EXPECT_NE(a.interface(0).address, b.interface(0).address);
  EXPECT_EQ(a.interface_to(b.id()), 0u);
  EXPECT_EQ(a.interface_to(999), ip::kInvalidIf);
  EXPECT_THROW(topo.connect(a.id(), a.id()), std::invalid_argument);
}

TEST(Topology, AdjacenciesSkipDownLinks) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  auto& c = topo.add_node<SinkNode>("c");
  topo.connect(a.id(), b.id());
  const LinkId l2 = topo.connect(a.id(), c.id());
  EXPECT_EQ(topo.adjacencies(a.id()).size(), 2u);
  topo.link(l2).set_up(false);
  EXPECT_EQ(topo.adjacencies(a.id()).size(), 1u);
  EXPECT_EQ(topo.adjacencies(a.id())[0].neighbor, b.id());
}

TEST(Link, DeliveryTimingMatchesSerializationPlusPropagation) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;                  // 1 Mb/s
  cfg.prop_delay = 5 * sim::kMillisecond;   // 5 ms
  topo.connect(a.id(), b.id(), cfg);

  auto p = make_packet(topo, 472);  // 500 B → 4 ms serialization at 1 Mb/s
  a.send(std::move(p), 0);
  topo.scheduler().run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(topo.scheduler().now(), 9 * sim::kMillisecond);
  EXPECT_EQ(b.last_in_if, 0u);
}

TEST(Link, BackToBackPacketsQueue) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;
  cfg.prop_delay = 0;
  topo.connect(a.id(), b.id(), cfg);

  a.send(make_packet(topo), 0);  // 4 ms each
  a.send(make_packet(topo), 0);
  a.send(make_packet(topo), 0);
  topo.scheduler().run();
  EXPECT_EQ(b.received.size(), 3u);
  EXPECT_EQ(topo.scheduler().now(), 12 * sim::kMillisecond);
  EXPECT_EQ(topo.link(0).tx_from(a.id()).packets.value(), 3u);
}

TEST(Link, SameTickDeliveriesCoalesceIntoOneBurstInOrder) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e15;  // tx time rounds to 0: a same-tick train
  cfg.prop_delay = 5 * sim::kMillisecond;
  topo.connect(a.id(), b.id(), cfg);

  std::vector<std::uint64_t> sent_ids;
  std::vector<sim::SimTime> tap_times;
  topo.add_packet_tap([&](ip::NodeId, const Packet&) {
    tap_times.push_back(topo.scheduler().now());
  });
  for (int i = 0; i < 5; ++i) {
    auto p = make_packet(topo);
    sent_ids.push_back(p->id);
    a.send(std::move(p), 0);
  }
  topo.scheduler().run();

  // All five land in one pump firing at the propagation instant, FIFO
  // order preserved, per-packet taps invoked for each.
  ASSERT_EQ(b.received.size(), 5u);
  ASSERT_EQ(tap_times.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(b.received[i]->id, sent_ids[i]);
    EXPECT_EQ(tap_times[i], 5 * sim::kMillisecond);
    EXPECT_EQ(b.received[i]->delay.prop, 5 * sim::kMillisecond);
  }
}

TEST(Link, PumpChainKeepsPerPacketArrivalTimes) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;  // 4 ms per 500 B packet
  cfg.prop_delay = 0;
  topo.connect(a.id(), b.id(), cfg);

  std::vector<sim::SimTime> arrivals;
  topo.add_packet_tap([&](ip::NodeId, const Packet&) {
    arrivals.push_back(topo.scheduler().now());
  });
  a.send(make_packet(topo), 0);
  a.send(make_packet(topo), 0);
  a.send(make_packet(topo), 0);
  topo.scheduler().run();

  // Serialization separates the train: one chained pump event per arrival,
  // timestamps byte-accurate (k * 4 ms each).
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 4 * sim::kMillisecond);
  EXPECT_EQ(arrivals[1], 8 * sim::kMillisecond);
  EXPECT_EQ(arrivals[2], 12 * sim::kMillisecond);
}

TEST(Link, InFlightBurstSurvivesLinkDownAtArrival) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e15;
  cfg.prop_delay = 5 * sim::kMillisecond;
  topo.connect(a.id(), b.id(), cfg);

  a.send(make_packet(topo), 0);
  a.send(make_packet(topo), 0);
  // Store-and-forward rule: serialization completed while the link was up,
  // so packets already propagating are delivered even though the link goes
  // down before they arrive.
  topo.run_until(1 * sim::kMillisecond);
  topo.link(0).set_up(false);
  topo.scheduler().run();
  EXPECT_EQ(b.received.size(), 2u);

  // A packet sent while down is dropped immediately, not queued.
  a.send(make_packet(topo), 0);
  topo.scheduler().run();
  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(topo.link(0).down_drops_from(a.id()).packets.value(), 1u);
}

TEST(Link, UtilizationAccounting) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;
  cfg.prop_delay = 0;
  topo.connect(a.id(), b.id(), cfg);
  a.send(make_packet(topo), 0);  // 4 ms busy
  topo.run_until(8 * sim::kMillisecond);
  EXPECT_NEAR(topo.link(0).utilization_from(a.id(), topo.scheduler().now()),
              0.5, 1e-9);
  EXPECT_EQ(topo.link(0).utilization_from(b.id(), topo.scheduler().now()),
            0.0);
}

TEST(Link, DownLinkDropsTrafficAndQueue) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e5;  // slow: 40 ms per packet
  topo.connect(a.id(), b.id(), cfg);

  a.send(make_packet(topo), 0);
  a.send(make_packet(topo), 0);  // queued behind the first
  topo.run_until(1 * sim::kMillisecond);
  topo.link(0).set_up(false);  // mid-transmission failure
  topo.scheduler().run();
  EXPECT_EQ(b.received.size(), 0u);

  topo.link(0).set_up(true);
  a.send(make_packet(topo), 0);
  topo.scheduler().run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Link, QueueDiscSwapRequiresIdle) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  topo.connect(a.id(), b.id());
  topo.link(0).set_queue_from(a.id(), std::make_unique<DropTailQueue>(5));
  a.send(make_packet(topo), 0);
  EXPECT_THROW(
      topo.link(0).set_queue_from(a.id(), std::make_unique<DropTailQueue>(5)),
      std::logic_error);
}

TEST(Link, PeerOfAndEndpoints) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  topo.connect(a.id(), b.id());
  const Link& l = topo.link(0);
  EXPECT_EQ(l.peer_of(a.id()).node, b.id());
  EXPECT_EQ(l.peer_of(b.id()).node, a.id());
  EXPECT_THROW(l.peer_of(42), std::invalid_argument);
}

TEST(Topology, PacketTapSeesDeliveries) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  topo.connect(a.id(), b.id());
  int taps = 0;
  topo.add_packet_tap([&](ip::NodeId at, const Packet&) {
    EXPECT_EQ(at, b.id());
    ++taps;
  });
  a.send(make_packet(topo), 0);
  topo.scheduler().run();
  EXPECT_EQ(taps, 1);
}

TEST(Node, InterfaceCountersTrackTraffic) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  topo.connect(a.id(), b.id());
  a.send(make_packet(topo, 472), 0);
  topo.scheduler().run();
  EXPECT_EQ(a.interface(0).tx.packets.value(), 1u);
  EXPECT_EQ(a.interface(0).tx.bytes.value(), 500u);
  EXPECT_EQ(b.interface(0).rx.packets.value(), 1u);
  EXPECT_EQ(b.interface(0).rx.bytes.value(), 500u);
  EXPECT_EQ(a.interface(0).rx.packets.value(), 0u);
}

TEST(Packet, SegMetaDoesNotChangeWireSize) {
  Packet p;
  p.payload_bytes = 100;
  const std::size_t before = p.wire_size();
  p.seg = SegMeta{42, true};
  EXPECT_EQ(p.wire_size(), before);
}

TEST(Packet, CombinedEncapsulationsStack) {
  Packet p;
  p.payload_bytes = 100;  // inner 128
  EspEncap esp;
  esp.pad_bytes = 6;
  p.esp = esp;  // +56
  p.push_label(MplsShim{100, 5, 64});  // +4
  p.push_label(MplsShim{200, 5, 64});  // +4
  EXPECT_EQ(p.wire_size(), 128u + 56u + 8u);
}

TEST(PacketPool, ReuseReturnsFullyResetPackets) {
  Topology topo;
  Packet* recycled = nullptr;
  std::uint64_t first_id = 0;
  {
    PacketPtr p = topo.packet_factory().make();
    recycled = p.get();
    first_id = p->id;
    p->flow_id = 9;
    p->true_vpn_id = 3;
    p->created_at = 12345;
    p->hop_count = 4;
    p->payload_bytes = 999;
    p->ip.dscp = 46;
    p->l4.dst_port = 8080;
    p->push_label(MplsShim{100, 5, 64});
    p->push_label(MplsShim{200, 5, 64});
    p->esp = EspEncap{};
    p->pvc = PvcEncap{3};
    p->seg = SegMeta{42, true};
  }  // refcount hits zero: back to the pool

  PacketPtr q = topo.packet_factory().make();
  ASSERT_EQ(q.get(), recycled);  // same storage, recycled
  EXPECT_NE(q->id, first_id);    // but a fresh identity
  EXPECT_EQ(q->flow_id, 0u);
  EXPECT_EQ(q->true_vpn_id, 0u);
  EXPECT_EQ(q->created_at, 0);
  EXPECT_EQ(q->hop_count, 0u);
  EXPECT_EQ(q->payload_bytes, 0u);
  EXPECT_EQ(q->ip.dscp, 0);
  EXPECT_EQ(q->l4.dst_port, 0);
  EXPECT_TRUE(q->labels.empty());
  EXPECT_FALSE(q->esp.has_value());
  EXPECT_FALSE(q->pvc.has_value());
  EXPECT_FALSE(q->seg.has_value());
}

TEST(PacketPool, SteadyStateMakesNoNewAllocations) {
  PacketPool pool;
  for (int i = 0; i < 1000; ++i) {
    PacketPtr p = pool.acquire();
    p->payload_bytes = 100;
  }
  EXPECT_EQ(pool.allocated(), 1u);  // one packet, recycled 999 times
  EXPECT_EQ(pool.reused(), 999u);
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PacketPool, OutstandingTracksLiveness) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  PacketPtr b = pool.acquire();
  EXPECT_EQ(pool.outstanding(), 2u);
  a.reset();
  EXPECT_EQ(pool.outstanding(), 1u);
  PacketPtr c = b;  // sharing does not change liveness
  EXPECT_EQ(pool.outstanding(), 1u);
  b.reset();
  c.reset();
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PacketPtr, RefcountSemantics) {
  PacketPtr p = make_standalone_packet();
  EXPECT_EQ(p.use_count(), 1u);
  PacketPtr q = p;
  EXPECT_EQ(p.use_count(), 2u);
  EXPECT_EQ(p, q);
  PacketPtr moved = std::move(q);
  EXPECT_EQ(q, nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(p.use_count(), 2u);
  moved.reset();
  EXPECT_EQ(p.use_count(), 1u);
  EXPECT_NE(p, nullptr);
}

TEST(InlineVec, StaysInlineUpToCapacityThenSpills) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inline_storage());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);  // fifth element spills to the heap
  EXPECT_FALSE(v.inline_storage());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, ClearRetainsSpilledCapacity) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  EXPECT_FALSE(v.inline_storage());
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // pooled reuse keeps the buffer
  v.push_back(7);
  EXPECT_EQ(v.back(), 7);
}

TEST(InlineVec, CopyAndMoveAndEquality) {
  InlineVec<int, 4> a;
  for (int i = 0; i < 6; ++i) a.push_back(i);
  InlineVec<int, 4> b = a;
  EXPECT_EQ(a, b);
  b.push_back(99);
  EXPECT_NE(a, b);
  InlineVec<int, 4> c = std::move(b);
  ASSERT_EQ(c.size(), 7u);
  EXPECT_EQ(c.back(), 99);
  b = c;  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b, c);
}

TEST(Packet, LabelStackInlineCapacityCoversDeployedStacks) {
  // Deepest stack in the deployment model: [TE tunnel, LDP tunnel, VPN]
  // plus one spare — all inline, no allocation on push.
  Packet p;
  p.push_label(MplsShim{100, 0, 64});
  p.push_label(MplsShim{200, 0, 64});
  p.push_label(MplsShim{300, 0, 64});
  p.push_label(MplsShim{400, 0, 64});
  EXPECT_TRUE(p.labels.inline_storage());
}

// Store-and-forward failure rule with single-event delivery: a packet whose
// serialization completes while the link is down is lost, even though the
// link later comes back up before the delivery event fires.
TEST(Link, MidSerializationFailureDropsPacket) {
  Topology topo;
  auto& a = topo.add_node<SinkNode>("a");
  auto& b = topo.add_node<SinkNode>("b");
  // 1000-byte packet at 1 Mb/s = 8 ms serialization; 1 ms propagation.
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;
  cfg.prop_delay = sim::kMillisecond;
  Link& link = topo.link(topo.connect(a.id(), b.id(), cfg));

  PacketPtr p = topo.packet_factory().make();
  p->payload_bytes = 1000 - kIpv4HeaderBytes - kL4HeaderBytes;
  topo.scheduler().schedule_at(0, [&] { link.transmit(a.id(), std::move(p)); });
  // Down during serialization, up again before the delivery event fires.
  topo.scheduler().schedule_at(4 * sim::kMillisecond,
                               [&] { link.set_up(false); });
  topo.scheduler().schedule_at(8 * sim::kMillisecond + 1,
                               [&] { link.set_up(true); });
  topo.run_until(20 * sim::kMillisecond);
  EXPECT_TRUE(b.received.empty());

  // The next packet goes through normally.
  PacketPtr q = topo.packet_factory().make();
  q->payload_bytes = 100;
  link.transmit(a.id(), std::move(q));
  topo.run_until(40 * sim::kMillisecond);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Packet, DescribeMentionsLayers) {
  Packet p;
  p.id = 7;
  p.ip.src = ip::Ipv4Address::must_parse("10.0.0.1");
  p.ip.dst = ip::Ipv4Address::must_parse("10.0.0.2");
  p.push_label(MplsShim{77, 2, 64});
  const std::string d = p.describe();
  EXPECT_NE(d.find("pkt#7"), std::string::npos);
  EXPECT_NE(d.find("mpls[77"), std::string::npos);
  EXPECT_NE(d.find("10.0.0.2"), std::string::npos);
}

}  // namespace
}  // namespace mvpn::net
