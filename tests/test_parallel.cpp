#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "backbone/fixtures.hpp"
#include "backbone/partition.hpp"
#include "backbone/scenario_config.hpp"
#include "ip/address.hpp"
#include "net/shard_runtime.hpp"
#include "obs/sync_profiler.hpp"
#include "qos/sla.hpp"
#include "sim/epoch_barrier.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/scheduler.hpp"
#include "sim/spsc_channel.hpp"
#include "sim/time.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"
#include "vpn/router.hpp"

namespace mvpn {
namespace {

// --- SPSC channel ---------------------------------------------------------

TEST(SpscChannel, FifoOrderSingleThread) {
  sim::SpscChannel<int> ch(8);
  for (int i = 0; i < 5; ++i) ch.push(i);
  std::vector<int> got;
  ch.drain([&](int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, TryPushRefusesWhenFull) {
  sim::SpscChannel<int> ch(4);  // capacity rounds to 4
  ASSERT_EQ(ch.capacity(), 4U);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.try_push(i));
  EXPECT_FALSE(ch.try_push(99));
  EXPECT_EQ(ch.try_pop().value_or(-1), 0);
  EXPECT_TRUE(ch.try_push(4));  // slot freed by the pop
}

TEST(SpscChannel, SpillPreservesFifoAcrossOverflow) {
  sim::SpscChannel<int> ch(4);
  // 10 pushes into a 4-slot ring with no consumer: 4 in the ring, 6 spilt.
  for (int i = 0; i < 10; ++i) ch.push(i);
  EXPECT_EQ(ch.spilled(), 6U);
  std::vector<int> got;
  ch.drain([&](int v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 10U);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, ThreadedProducerConsumerKeepsOrder) {
  sim::SpscChannel<std::uint32_t> ch(64);
  constexpr std::uint32_t kCount = 100000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kCount; ++i) ch.push(i);
  });
  // Consume with try_pop (ring only) while the producer runs; anything
  // that spilt gets drained after join. Order must still be 0..N-1.
  std::vector<std::uint32_t> got;
  got.reserve(kCount);
  while (got.size() < kCount) {
    if (auto v = ch.try_pop()) {
      got.push_back(*v);
    } else if (!producer.joinable()) {
      break;
    } else if (ch.spilled() > 0) {
      break;  // producer overflowed; finish after join
    }
  }
  producer.join();
  ch.drain([&](std::uint32_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(got[i], i);
}

// --- Epoch barrier --------------------------------------------------------

TEST(EpochBarrier, CoordinatorAndWorkersAgreeOnTargets) {
  constexpr std::uint32_t kWorkers = 3;
  sim::EpochBarrier barrier(kWorkers);
  std::vector<std::vector<sim::SimTime>> seen(kWorkers);
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t epoch = 0;
      sim::SimTime target = 0;
      while (barrier.next(epoch, target)) {
        seen[w].push_back(target);
        barrier.arrive();
      }
    });
  }
  const std::vector<sim::SimTime> targets{10, 20, 35, 36};
  for (sim::SimTime t : targets) {
    barrier.open(t);
    barrier.wait_all_arrived();
  }
  barrier.shutdown();
  for (auto& th : threads) th.join();
  for (std::uint32_t w = 0; w < kWorkers; ++w) EXPECT_EQ(seen[w], targets);
}

TEST(EpochBarrier, SpinPathStaysUnparkedWhenPeerIsAlreadyThere) {
  // Explicit spin budget overrides the hardware-concurrency heuristic (on
  // a small host the default would disable spinning entirely). The epoch
  // is published before the worker looks and the worker has arrived
  // before the coordinator waits, so both waits must resolve inside the
  // spin phase and report parked=false.
  sim::EpochBarrier barrier(1, /*spin_limit=*/1u << 20);
  ASSERT_EQ(barrier.spin_limit(), 1u << 20);
  barrier.open(10);
  bool got = false;
  bool worker_parked = true;
  sim::SimTime target = 0;
  std::thread worker([&] {
    std::uint64_t epoch = 0;
    got = barrier.next(epoch, target, &worker_parked);
    if (got) barrier.arrive();
  });
  worker.join();
  ASSERT_TRUE(got);
  EXPECT_FALSE(worker_parked);
  EXPECT_EQ(target, 10);
  bool coord_parked = true;
  barrier.wait_all_arrived(&coord_parked);
  EXPECT_FALSE(coord_parked);
  barrier.shutdown();
}

TEST(EpochBarrier, ParkPathReportsParkedUnderRealContention) {
  // Spin budget zero forces the condvar path on both sides, and the
  // sleeps make each waiter genuinely park before its wakeup arrives: the
  // worker waits while the coordinator dawdles before open(), and the
  // coordinator waits while the worker dawdles before arrive().
  constexpr int kEpochs = 5;
  sim::EpochBarrier barrier(1, /*spin_limit=*/0);
  std::vector<bool> worker_parked;
  std::vector<sim::SimTime> seen;
  std::thread worker([&] {
    std::uint64_t epoch = 0;
    sim::SimTime target = 0;
    bool parked = false;
    while (barrier.next(epoch, target, &parked)) {
      worker_parked.push_back(parked);
      seen.push_back(target);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      barrier.arrive();
    }
  });
  for (int e = 1; e <= kEpochs; ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    barrier.open(e * 10);
    bool coord_parked = false;
    barrier.wait_all_arrived(&coord_parked);
    EXPECT_TRUE(coord_parked) << "epoch " << e;
  }
  barrier.shutdown();
  worker.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kEpochs));
  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(seen[static_cast<std::size_t>(e)], (e + 1) * 10);
    EXPECT_TRUE(worker_parked[static_cast<std::size_t>(e)]) << "epoch " << e;
  }
}

// --- Scheduler window semantics ------------------------------------------

TEST(Scheduler, NextEventTimeAndInclusiveRunUntil) {
  sim::Scheduler sched;
  EXPECT_EQ(sched.next_event_time(), sim::Scheduler::kNoEventTime);

  int fired = 0;
  sched.schedule_at(100, [&] { ++fired; });
  sched.schedule_at(250, [&] { ++fired; });
  EXPECT_EQ(sched.next_event_time(), 100);

  sched.run_until(100);  // inclusive: the event AT the bound runs
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 100);
  EXPECT_EQ(sched.next_event_time(), 250);

  sched.run_until(200);  // empty window still advances the clock
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 200);

  sched.run_until(300);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 300);
}

// --- Parallel engine ------------------------------------------------------

TEST(ParallelEngine, RunsShardsInWindowsAndExchanges) {
  sim::Scheduler a;
  sim::Scheduler b;
  constexpr sim::SimTime kLookahead = 2 * sim::kMillisecond;
  constexpr sim::SimTime kEnd = 50 * sim::kMillisecond;

  // Each shard ticks every ms; the exchange hook cross-posts one event per
  // barrier at window_end + lookahead (the only safe time).
  std::atomic<int> ticks_a{0};
  std::atomic<int> ticks_b{0};
  std::atomic<int> crossed{0};
  std::function<void(sim::Scheduler&, std::atomic<int>&)> tick =
      [&](sim::Scheduler& s, std::atomic<int>& n) {
        ++n;
        if (s.now() + sim::kMillisecond <= kEnd) {
          s.schedule_in(sim::kMillisecond, [&] { tick(s, n); });
        }
      };
  a.schedule_at(sim::kMillisecond, [&] { tick(a, ticks_a); });
  b.schedule_at(sim::kMillisecond, [&] { tick(b, ticks_b); });

  sim::ParallelEngine engine({{0, &a}, {1, &b}}, kLookahead, nullptr);
  engine.set_exchange([&](sim::SimTime window_end) {
    if (window_end + kLookahead <= kEnd) {
      b.schedule_at(window_end + kLookahead, [&] { ++crossed; });
    }
  });
  engine.run_until(kEnd);

  EXPECT_EQ(a.now(), kEnd);
  EXPECT_EQ(b.now(), kEnd);
  EXPECT_EQ(ticks_a.load(), 50);
  EXPECT_EQ(ticks_b.load(), 50);
  EXPECT_GT(crossed.load(), 0);
  EXPECT_GE(engine.windows(),
            static_cast<std::uint64_t>(kEnd / kLookahead));
}

TEST(ParallelEngine, GlobalActionsFireBetweenWindows) {
  sim::Scheduler shard;
  sim::Scheduler global;
  std::vector<sim::SimTime> stamps;
  sim::ParallelEngine engine({{0, &shard}}, sim::kMillisecond, &global);
  engine.add_periodic_action(5 * sim::kMillisecond, 5 * sim::kMillisecond,
                             [&] { stamps.push_back(global.now()); });
  engine.run_until(20 * sim::kMillisecond);
  ASSERT_EQ(stamps.size(), 4U);
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    EXPECT_EQ(stamps[i], static_cast<sim::SimTime>(i + 1) * 5 *
                             sim::kMillisecond);
  }
  EXPECT_EQ(global.now(), 20 * sim::kMillisecond);
}

// --- Adaptive window sizing -----------------------------------------------

/// Drive a two-shard engine where shard A ticks every `spacing` and shard B
/// is idle; returns the tick count and reports window statistics.
int drive_with_spacing(sim::SimTime spacing, std::uint64_t& windows,
                       std::uint64_t& widened) {
  constexpr sim::SimTime kLookahead = sim::kMillisecond;
  constexpr sim::SimTime kEnd = 100 * sim::kMillisecond;
  sim::Scheduler a;
  sim::Scheduler b;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (a.now() + spacing <= kEnd) a.schedule_in(spacing, tick);
  };
  a.schedule_at(spacing, tick);
  sim::ParallelEngine engine({{0, &a}, {1, &b}}, kLookahead, nullptr);
  engine.run_until(kEnd);
  windows = engine.windows();
  widened = engine.widened_windows();
  EXPECT_EQ(a.now(), kEnd);
  EXPECT_EQ(b.now(), kEnd);
  return ticks;
}

TEST(ParallelEngine, AdaptiveWindowsJumpQuietStretches) {
  // Quiet traffic (events every 10 ms, lookahead 1 ms): the static sizing
  // would take ~100 windows over 100 ms; the adaptive window jumps to the
  // next pending event, so barriers scale with events, not elapsed time.
  std::uint64_t quiet_windows = 0;
  std::uint64_t quiet_widened = 0;
  const int quiet_ticks =
      drive_with_spacing(10 * sim::kMillisecond, quiet_windows, quiet_widened);
  EXPECT_EQ(quiet_ticks, 10);
  EXPECT_LT(quiet_windows, 25U);
  EXPECT_GT(quiet_widened, 0U);

  // Bursty traffic (events every 0.2 ms): the next event is always near
  // the frontier, so windows shrink back toward the static bound — the
  // sizing adapts in both directions, and no event is ever lost either way.
  std::uint64_t bursty_windows = 0;
  std::uint64_t bursty_widened = 0;
  const int bursty_ticks = drive_with_spacing(sim::kMillisecond / 5,
                                              bursty_windows, bursty_widened);
  EXPECT_EQ(bursty_ticks, 500);
  EXPECT_GT(bursty_windows, 3 * quiet_windows);
}

// --- Topology partitioner -------------------------------------------------

backbone::BackboneConfig bench_config() {
  backbone::BackboneConfig cfg;
  cfg.p_count = 8;
  cfg.pe_count = 16;
  cfg.seed = 7;
  return cfg;
}

TEST(Partitioner, BalancedShardsWithCoreDelayCut) {
  backbone::MplsBackbone bb(bench_config());
  const vpn::VpnId v = bb.service.create_vpn("T");
  for (std::size_t i = 0; i < 16; ++i) {
    bb.add_site(v, i,
                ip::Prefix(ip::Ipv4Address(10, std::uint8_t(1 + i), 0, 0), 16));
  }

  const backbone::ShardPlan plan = backbone::compute_shard_plan(bb.topo, 4);
  ASSERT_TRUE(plan.parallel());
  EXPECT_EQ(plan.shard_count, 4U);
  ASSERT_EQ(plan.node_shard.size(), bb.topo.node_count());

  // Strict cap: no shard exceeds ceil(N / 4) nodes.
  std::vector<std::size_t> sizes(plan.shard_count, 0);
  for (std::uint32_t s : plan.node_shard) ++sizes[s];
  const std::size_t cap = (bb.topo.node_count() + 3) / 4;
  for (std::size_t sz : sizes) {
    EXPECT_GT(sz, 0U);
    EXPECT_LE(sz, cap);
  }

  // The greedy absorbs the fast 1 ms edge links; the cut is made of 2 ms
  // core links only, so the lookahead is the full core delay.
  EXPECT_EQ(plan.lookahead, 2 * sim::kMillisecond);
  EXPECT_FALSE(plan.cut_links.empty());
  for (net::LinkId id : plan.cut_links) {
    EXPECT_EQ(bb.topo.link(id).config().prop_delay, 2 * sim::kMillisecond);
    const auto sa = plan.node_shard[bb.topo.link(id).end_a().node];
    const auto sb = plan.node_shard[bb.topo.link(id).end_b().node];
    EXPECT_NE(sa, sb);
  }
}

TEST(Partitioner, DegenerateInputsStaySerial) {
  backbone::MplsBackbone bb(bench_config());
  const backbone::ShardPlan one = backbone::compute_shard_plan(bb.topo, 1);
  EXPECT_FALSE(one.parallel());
  EXPECT_TRUE(one.cut_links.empty());

  // Requesting more shards than nodes clamps instead of failing.
  const backbone::ShardPlan many =
      backbone::compute_shard_plan(bb.topo, 10000);
  EXPECT_LE(many.shard_count, bb.topo.node_count());
}

TEST(Partitioner, PlanIsDeterministic) {
  backbone::MplsBackbone bb1(bench_config());
  backbone::MplsBackbone bb2(bench_config());
  const backbone::ShardPlan p1 = backbone::compute_shard_plan(bb1.topo, 4);
  const backbone::ShardPlan p2 = backbone::compute_shard_plan(bb2.topo, 4);
  EXPECT_EQ(p1.node_shard, p2.node_shard);
  EXPECT_EQ(p1.cut_links, p2.cut_links);
  EXPECT_EQ(p1.lookahead, p2.lookahead);
}

// --- End-to-end determinism: serial vs sharded scenario runs --------------

constexpr const char* kDeterminismScenario = R"(
backbone p=4 pe=8 seed=11 core_queue=prio:3
vpn corp
vpn partner
site corp pe=0 prefix=10.1.0.0/16
site corp pe=2 prefix=10.2.0.0/16
site corp pe=5 prefix=10.3.0.0/16
site partner pe=1 prefix=192.168.0.0/16
site partner pe=6 prefix=192.169.0.0/16
classify site=0 dstport=16384-16484 class=EF
police site=0 class=EF cir=62500 cbs=4000 ebs=4000
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow cbr vpn=corp from=1 to=2 rate=400e3
flow poisson vpn=corp from=2 to=0 rate=300e3
flow onoff vpn=partner from=3 to=4 rate=500e3 on=0.2 off=0.1
flow poisson vpn=partner from=4 to=3 rate=250e3
run for=2
)";

struct ScenarioOutputs {
  std::string report;        ///< run() output minus the converged banner
  std::string metrics_json;
  std::string latency_json;
  std::string sync_json;     ///< only when the run profiled
  bool ok = false;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The converged banner names the engine ("on N shards ..."), which is the
/// one intended textual difference between serial and parallel runs; drop
/// it before comparing.
std::string strip_converged_line(const std::string& text) {
  std::stringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("converged") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

ScenarioOutputs run_scenario_with_shards(std::uint32_t shards,
                                         bool sync_profile = false) {
  backbone::ScenarioError err;
  auto sc = backbone::Scenario::parse(kDeterminismScenario, &err);
  EXPECT_TRUE(sc.has_value()) << "line " << err.line << ": " << err.message;
  ScenarioOutputs out;
  if (!sc) return out;

  const std::string dir = ::testing::TempDir();
  const std::string tag =
      std::to_string(shards) + (sync_profile ? "_sync" : "");
  backbone::ObsOptions obs;
  obs.metrics_json_path = dir + "/par_metrics_" + tag + ".json";
  obs.latency_json_path = dir + "/par_latency_" + tag + ".json";
  if (sync_profile) {
    obs.sync_json_path = dir + "/par_sync_" + tag + ".json";
  }
  sc->set_obs(obs);
  sc->set_shards(shards);

  std::ostringstream report;
  out.ok = sc->run(report);
  out.report = strip_converged_line(report.str());
  out.metrics_json = slurp(obs.metrics_json_path);
  out.latency_json = slurp(obs.latency_json_path);
  EXPECT_FALSE(out.metrics_json.empty());
  EXPECT_FALSE(out.latency_json.empty());
  if (sync_profile) {
    out.sync_json = slurp(obs.sync_json_path);
    EXPECT_FALSE(out.sync_json.empty());
  }
  return out;
}

TEST(ShardedDeterminism, TwoAndFourShardsMatchSerialByteForByte) {
  const ScenarioOutputs serial = run_scenario_with_shards(1);
  ASSERT_TRUE(serial.ok);
  for (std::uint32_t shards : {2U, 4U}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const ScenarioOutputs par = run_scenario_with_shards(shards);
    ASSERT_TRUE(par.ok);
    // SLA tables, isolation accounting, per-class latency decomposition and
    // every metrics snapshot must be bit-identical to the serial engine.
    EXPECT_EQ(par.report, serial.report);
    EXPECT_EQ(par.metrics_json, serial.metrics_json);
    EXPECT_EQ(par.latency_json, serial.latency_json);
  }
}

TEST(ShardedDeterminism, ParallelRunsAreRepeatable) {
  const ScenarioOutputs a = run_scenario_with_shards(4);
  const ScenarioOutputs b = run_scenario_with_shards(4);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.latency_json, b.latency_json);
}

// --- Flow caches across epoch boundaries ----------------------------------

TEST(ShardedFlowcache, HitRatePersistsAcrossEpochBoundaries) {
  backbone::MplsBackbone bb(bench_config());
  const vpn::VpnId v = bb.service.create_vpn("T");
  std::vector<backbone::MplsBackbone::Site> sites;
  for (std::size_t i = 0; i < 16; ++i) {
    sites.push_back(bb.add_site(
        v, i,
        ip::Prefix(ip::Ipv4Address(10, std::uint8_t(1 + i), 0, 0), 16)));
  }
  bb.start_and_converge();

  backbone::ShardPlan plan = backbone::compute_shard_plan(bb.topo, 4);
  ASSERT_TRUE(plan.parallel());
  auto runtime = std::make_unique<net::ShardRuntime>(
      bb.topo, std::move(plan.node_shard), plan.shard_count, plan.lookahead);

  std::vector<std::unique_ptr<qos::SlaProbe>> probes;
  std::vector<std::unique_ptr<traffic::MeasurementSink>> sinks;
  for (std::uint32_t s = 0; s < runtime->shard_count(); ++s) {
    probes.push_back(
        std::make_unique<qos::SlaProbe>("lane" + std::to_string(s)));
    sinks.push_back(std::make_unique<traffic::MeasurementSink>(
        *probes[s], runtime->shard_scheduler(s)));
  }
  auto lane_of = [&](const backbone::MplsBackbone::Site& site) {
    return bb.topo.shard_of(site.ce->id());
  };
  for (auto& site : sites) sinks[lane_of(site)]->bind(*site.ce);

  constexpr std::size_t kFlows = 64;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const std::size_t a = i % sites.size();
    const std::size_t b = (i + 1) % sites.size();
    traffic::FlowSpec f;
    f.src = ip::Ipv4Address(10, std::uint8_t(1 + a), 0,
                            std::uint8_t(1 + i % 200));
    f.dst = ip::Ipv4Address(10, std::uint8_t(1 + b), 0,
                            std::uint8_t(1 + i % 200));
    f.dst_port = static_cast<std::uint16_t>(20000 + i);
    f.vpn = v;
    const auto id = static_cast<std::uint32_t>(1000 + i);
    sinks[lane_of(sites[b])]->expect_flow(id, qos::Phb::kBe, v);
    sources.push_back(std::make_unique<traffic::CbrSource>(
        *sites[a].ce, f, id, probes[lane_of(sites[a])].get(), 1e6));
  }

  const sim::SimTime t0 = bb.topo.base_scheduler().now();
  for (auto& s : sources) s->run(t0, t0 + sim::from_seconds(1.0));
  runtime->run_until(t0 + sim::from_seconds(1.5));

  const std::uint64_t windows = runtime->windows();
  const std::uint64_t batches = runtime->delivery_batches();
  runtime->finish();

  std::uint64_t delivered = 0;
  for (auto& s : sinks) delivered += s->delivered();
  EXPECT_GT(delivered, 0U);

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < bb.topo.node_count(); ++i) {
    if (auto* r = dynamic_cast<vpn::Router*>(
            &bb.topo.node(static_cast<ip::NodeId>(i)))) {
      hits += r->flowcache_stats().hits;
      misses += r->flowcache_stats().misses;
    }
  }
  ASSERT_GT(hits + misses, 0U);

  // The run crosses hundreds of epoch boundaries, and these synchronized
  // same-rate flows hand off in same-instant groups, so the batched
  // delivery path is genuinely exercised.
  EXPECT_GT(windows, 300U);
  EXPECT_GT(batches, 0U);

  // Persistent caches miss once per (flow, router) on the path and then
  // hit for the rest of the run. A per-window reset would instead pay the
  // cold lookups again in every window — with >300 windows the miss count
  // would exceed this bound by orders of magnitude.
  EXPECT_LE(misses, kFlows * 16);
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  EXPECT_GE(hit_rate, 0.98);
}

// --- Epoch profiler against the real engine -------------------------------

TEST(ShardedDeterminism, ProfilerOnRunIsByteIdenticalAndEmitsReport) {
  const ScenarioOutputs plain = run_scenario_with_shards(4);
  const ScenarioOutputs profiled =
      run_scenario_with_shards(4, /*sync_profile=*/true);
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(profiled.ok);
  // Observing the engine must not perturb it: every simulation artefact is
  // bit-identical with the profiler attached.
  EXPECT_EQ(profiled.report, plain.report);
  EXPECT_EQ(profiled.metrics_json, plain.metrics_json);
  EXPECT_EQ(profiled.latency_json, plain.latency_json);
  // ...and the profiled run actually produced a sharded sync report.
  EXPECT_NE(profiled.sync_json.find("\"serial\":false"), std::string::npos)
      << profiled.sync_json;
  EXPECT_NE(profiled.sync_json.find("\"shards\":4"), std::string::npos)
      << profiled.sync_json;
  EXPECT_TRUE(plain.sync_json.empty());
}

TEST(SyncProfiler, WorkerTimestampsMonotoneAndReportCoherent) {
  backbone::MplsBackbone bb(bench_config());
  const vpn::VpnId v = bb.service.create_vpn("T");
  std::vector<backbone::MplsBackbone::Site> sites;
  for (std::size_t i = 0; i < 16; ++i) {
    sites.push_back(bb.add_site(
        v, i,
        ip::Prefix(ip::Ipv4Address(10, std::uint8_t(1 + i), 0, 0), 16)));
  }
  bb.start_and_converge();

  backbone::ShardPlan plan = backbone::compute_shard_plan(bb.topo, 4);
  ASSERT_TRUE(plan.parallel());
  auto runtime = std::make_unique<net::ShardRuntime>(
      bb.topo, std::move(plan.node_shard), plan.shard_count, plan.lookahead);

  obs::SyncProfiler prof(runtime->shard_count());
  std::vector<std::vector<const vpn::Router*>> by_shard(
      runtime->shard_count());
  for (std::size_t i = 0; i < bb.topo.node_count(); ++i) {
    const auto id = static_cast<ip::NodeId>(i);
    if (auto* r = dynamic_cast<vpn::Router*>(&bb.topo.node(id))) {
      by_shard[bb.topo.shard_of(id)].push_back(r);
    }
  }
  prof.set_cache_sampler([&by_shard](std::uint32_t shard,
                                     std::uint64_t& cache_hits,
                                     std::uint64_t& cache_misses) {
    for (const auto* r : by_shard[shard]) {
      cache_hits += r->flowcache_stats().hits;
      cache_misses += r->flowcache_stats().misses;
    }
  });
  runtime->set_profiler(&prof);

  std::vector<std::unique_ptr<qos::SlaProbe>> probes;
  std::vector<std::unique_ptr<traffic::MeasurementSink>> sinks;
  for (std::uint32_t s = 0; s < runtime->shard_count(); ++s) {
    probes.push_back(
        std::make_unique<qos::SlaProbe>("lane" + std::to_string(s)));
    sinks.push_back(std::make_unique<traffic::MeasurementSink>(
        *probes[s], runtime->shard_scheduler(s)));
  }
  auto lane_of = [&](const backbone::MplsBackbone::Site& site) {
    return bb.topo.shard_of(site.ce->id());
  };
  for (auto& site : sites) sinks[lane_of(site)]->bind(*site.ce);

  constexpr std::size_t kFlows = 64;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const std::size_t a = i % sites.size();
    const std::size_t b = (i + 1) % sites.size();
    traffic::FlowSpec f;
    f.src = ip::Ipv4Address(10, std::uint8_t(1 + a), 0,
                            std::uint8_t(1 + i % 200));
    f.dst = ip::Ipv4Address(10, std::uint8_t(1 + b), 0,
                            std::uint8_t(1 + i % 200));
    f.dst_port = static_cast<std::uint16_t>(20000 + i);
    f.vpn = v;
    const auto id = static_cast<std::uint32_t>(1000 + i);
    sinks[lane_of(sites[b])]->expect_flow(id, qos::Phb::kBe, v);
    sources.push_back(std::make_unique<traffic::CbrSource>(
        *sites[a].ce, f, id, probes[lane_of(sites[a])].get(), 1e6));
  }

  const sim::SimTime t0 = bb.topo.base_scheduler().now();
  for (auto& s : sources) s->run(t0, t0 + sim::from_seconds(1.0));
  // Run past the source window so every in-flight packet drains back to its
  // pool before the runtime (which owns the per-shard pools) tears down.
  runtime->run_until(t0 + sim::from_seconds(1.5));

  const std::uint64_t windows = runtime->windows();
  const std::uint64_t handoffs = runtime->handoffs();
  runtime->finish();
  ASSERT_GT(windows, 0U);

  // The coordinator closed every window through the profiler.
  EXPECT_EQ(prof.epochs(), windows);

  for (std::uint32_t s = 0; s < prof.shard_count(); ++s) {
    SCOPED_TRACE("shard=" + std::to_string(s));
    const auto slots = prof.worker_snapshot(s);
    ASSERT_FALSE(slots.empty());
    for (std::size_t i = 1; i < slots.size(); ++i) {
      // Epochs arrive in order and windows tile the sim-time axis.
      EXPECT_EQ(slots[i].epoch, slots[i - 1].epoch + 1);
      EXPECT_EQ(slots[i].window_start, slots[i - 1].window_end);
      // Phase stamps are monotone per worker: an epoch's wait + exec
      // phases complete before the next epoch's wait begins.
      EXPECT_LE(slots[i - 1].begin_ns + slots[i - 1].wait_ns +
                    slots[i - 1].exec_ns,
                slots[i].begin_ns);
    }
  }

  const obs::SyncProfiler::Report rep = prof.report();
  EXPECT_FALSE(rep.serial);
  EXPECT_EQ(rep.shards, 4U);
  EXPECT_EQ(rep.epochs, windows);
  ASSERT_EQ(rep.lanes.size(), 4U);
  std::uint64_t critical = 0;
  std::uint64_t cache_total = 0;
  for (const auto& lane : rep.lanes) {
    EXPECT_EQ(lane.epochs, windows);
    EXPECT_GE(lane.busy_fraction, 0.0);
    EXPECT_LE(lane.busy_fraction, 1.0);
    critical += lane.critical_epochs;
    cache_total += lane.cache_hits + lane.cache_misses;
  }
  // Every epoch is attributed to exactly one slowest shard.
  EXPECT_EQ(critical, windows);
  // The sampler saw the flow caches and the exchange hook saw traffic.
  EXPECT_GT(cache_total, 0U);
  EXPECT_GT(rep.handoffs, 0U);
  EXPECT_EQ(rep.handoffs, handoffs);
  EXPECT_GT(rep.wall_s, 0.0);
}

}  // namespace
}  // namespace mvpn
