#include <gtest/gtest.h>

#include <cmath>

#include "stats/counter.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "stats/table.hpp"
#include "stats/time_series.hpp"

namespace mvpn::stats {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter c("pkts");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.name(), "pkts");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(PacketByteCounter, RecordsBoth) {
  PacketByteCounter pb;
  pb.record(100);
  pb.record(250);
  EXPECT_EQ(pb.packets.value(), 2u);
  EXPECT_EQ(pb.bytes.value(), 350u);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, EmptyPercentileIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1);
  s.add(9);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, PercentileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 49.0);
  EXPECT_LE(p50, 51.0);
  const double p90 = h.percentile(90);
  EXPECT_GE(p90, 89.0);
  EXPECT_LE(p90, 91.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TimeSeries, CsvAndAggregates) {
  TimeSeries ts("util");
  ts.add(0.1, 1.0);
  ts.add(0.2, 3.0);
  ts.add(0.3, 2.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 2.0);
  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("time,util"), std::string::npos);
  EXPECT_NE(csv.find("0.2,3"), std::string::npos);
}

TEST(RateMeter, WindowedRates) {
  RateMeter m(1.0, "bps");
  m.record(0.1, 500);
  m.record(0.9, 500);
  m.record(1.5, 2000);
  m.flush();
  ASSERT_EQ(m.series().size(), 2u);
  EXPECT_DOUBLE_EQ(m.series().value_at(0), 1000.0);  // window [0,1)
  EXPECT_DOUBLE_EQ(m.series().value_at(1), 2000.0);  // window [1,2)
}

TEST(RateMeter, EmptyWindowsEmitZero) {
  RateMeter m(1.0, "bps");
  m.record(0.5, 100);
  m.record(3.5, 100);  // windows [1,2) and [2,3) are silent
  m.flush();
  ASSERT_EQ(m.series().size(), 4u);
  EXPECT_DOUBLE_EQ(m.series().value_at(1), 0.0);
  EXPECT_DOUBLE_EQ(m.series().value_at(2), 0.0);
}

TEST(Table, RendersAligned) {
  Table t{"name", "value"};
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, RejectsWrongArity) {
  Table t{"a", "b"};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace mvpn::stats
