#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mvpn::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_EQ(kSecond, 1'000'000'000);
  EXPECT_EQ(kMillisecond * 1000, kSecond);
}

TEST(Time, TransmissionTime) {
  // 1500 bytes at 12 kb/s = 1 s.
  EXPECT_EQ(transmission_time(1500, 12'000.0), kSecond);
  // 125 bytes at 1 Mb/s = 1 ms.
  EXPECT_EQ(transmission_time(125, 1e6), kMillisecond);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
  EXPECT_EQ(sched.executed_count(), 3u);
}

TEST(Scheduler, SimultaneousEventsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, HandlersCanScheduleMore) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1, [&] {
    ++fired;
    sched.schedule_in(1, [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 2);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule_at(5, [&] { ++fired; });
  sched.schedule_at(3, [&] { ++fired; });
  sched.cancel(id);
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(10, [&] { ++fired; });
  sched.schedule_at(20, [&] { ++fired; });
  sched.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 15);
  sched.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, StopAbortsRun) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1, [&] {
    ++fired;
    sched.stop();
  });
  sched.schedule_at(2, [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, RejectsPastAndNegative) {
  Scheduler sched;
  sched.schedule_at(10, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sched.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1, [] {});
  sched.schedule_at(2, [] {});
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
}

// Regression: cancelling an EventId whose event already fired used to leave
// a stale entry in the cancelled set, making pending() wrap below zero.
TEST(Scheduler, CancelAfterFireIsExactNoop) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule_at(1, [&] { ++fired; });
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  sched.cancel(id);  // stale handle: the event is long gone
  EXPECT_EQ(sched.pending(), 0u);
  sched.schedule_at(2, [&] { ++fired; });
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, DoubleCancelCountsOnce) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1, [] {});
  sched.schedule_at(2, [] {});
  sched.cancel(a);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
}

// A stale handle must not be able to kill a newer event that happens to
// recycle the same node slot.
TEST(Scheduler, StaleCancelCannotKillRecycledSlot) {
  Scheduler sched;
  int fired = 0;
  const EventId a = sched.schedule_at(1, [&] { ++fired; });
  sched.run();
  const EventId b = sched.schedule_at(2, [&] { ++fired; });
  EXPECT_EQ(b.slot, a.slot);  // the pool reuses the freed slot
  EXPECT_NE(b.seq, a.seq);
  sched.cancel(a);  // stale — must not touch b
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, RunUntilSkipsCancelledHeadWithoutAdvancingTime) {
  Scheduler sched;
  int fired = 0;
  const EventId dead = sched.schedule_at(5, [&] { ++fired; });
  sched.schedule_at(30, [&] { ++fired; });
  sched.cancel(dead);
  sched.run_until(20);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), 20);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(40);
  EXPECT_EQ(fired, 1);
}

// The node pool must not grow under the timer churn pattern (schedule,
// cancel, re-arm) — cancelled entries are reclaimed lazily but fully.
TEST(Scheduler, CancelRearmChurnKeepsPoolBounded) {
  Scheduler sched;
  int expired = 0;
  for (int i = 0; i < 10'000; ++i) {
    const EventId timer = sched.schedule_in(1000, [&] { ++expired; });
    sched.cancel(timer);
    sched.schedule_in(1, [] {});
    sched.run_until(sched.now() + 2);
  }
  EXPECT_EQ(expired, 0);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_LE(sched.node_pool_size(), 4u);
}

TEST(Scheduler, ManySimultaneousEventsKeepInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sched.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, RandomTimesFireInNondecreasingOrder) {
  Scheduler sched;
  Rng rng(42);
  std::vector<SimTime> fire_times;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<SimTime>(rng.uniform_int(0, 1'000'000));
    sched.schedule_at(t, [&sched, &fire_times] {
      fire_times.push_back(sched.now());
    });
  }
  sched.run();
  ASSERT_EQ(fire_times.size(), 5000u);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
  EXPECT_EQ(sched.executed_count(), 5000u);
}

TEST(InlineCallable, SmallCaptureStaysInline) {
  struct Small {
    int* counter;
    void operator()() { ++*counter; }
  };
  static_assert(sim::InlineCallable::fits_inline<Small>);
  int n = 0;
  InlineCallable fn = Small{&n};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(n, 1);
}

TEST(InlineCallable, MoveOnlyCaptureWorks) {
  auto owned = std::make_unique<int>(41);
  InlineCallable fn = [p = std::move(owned)] { ++*p; };
  InlineCallable moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
}

TEST(InlineCallable, LargeCaptureFallsBackToHeap) {
  struct Big {
    char padding[128] = {};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  static_assert(!sim::InlineCallable::fits_inline<Big>);
  int n = 0;
  Big big;
  big.counter = &n;
  InlineCallable fn = big;
  InlineCallable moved = std::move(fn);
  moved();
  EXPECT_EQ(n, 1);
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependentButReproducible) {
  Rng s1 = Rng::stream(7, 1);
  Rng s1_again = Rng::stream(7, 1);
  Rng s2 = Rng::stream(7, 2);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(31);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.pareto(1.5, 2.0), 1.5);
  }
}

}  // namespace
}  // namespace mvpn::sim
