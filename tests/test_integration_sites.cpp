#include <gtest/gtest.h>

#include "backbone/fixtures.hpp"
#include "qos/queues.hpp"
#include "routing/hello.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace mvpn {
namespace {

using backbone::BackboneConfig;
using backbone::IpsecBackbone;
using backbone::MplsBackbone;
using backbone::OverlayBackbone;

/// Figure 2 at scale: two interleaved VPNs, four sites each, any-to-any
/// traffic within each VPN, full isolation across them.
TEST(Integration, AnyToAnyAcrossFourSitesTwoVpns) {
  BackboneConfig cfg;
  cfg.p_count = 3;
  cfg.pe_count = 4;
  cfg.seed = 21;
  MplsBackbone bb(cfg);
  const vpn::VpnId v1 = bb.service.create_vpn("V1");
  const vpn::VpnId v2 = bb.service.create_vpn("V2");

  std::vector<MplsBackbone::Site> v1_sites;
  std::vector<MplsBackbone::Site> v2_sites;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto prefix =
        ip::Prefix(ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 0), 16);
    v1_sites.push_back(bb.add_site(v1, i, prefix));
    v2_sites.push_back(bb.add_site(v2, i, prefix));  // same address plan!
  }
  bb.start_and_converge();

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  for (auto& s : v1_sites) sink.bind(*s.ce);
  for (auto& s : v2_sites) sink.bind(*s.ce);

  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  std::uint32_t flow = 1;
  auto wire = [&](std::vector<MplsBackbone::Site>& sites, vpn::VpnId vpn) {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = 0; j < sites.size(); ++j) {
        if (i == j) continue;
        traffic::FlowSpec f;
        f.src = ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 1);
        f.dst = ip::Ipv4Address(10, std::uint8_t(j + 1), 0, 1);
        f.vpn = vpn;
        sources.push_back(std::make_unique<traffic::CbrSource>(
            *sites[i].ce, f, flow, &probe, 100e3));
        sink.expect_flow(flow, qos::Phb::kBe, vpn);
        ++flow;
      }
    }
  };
  wire(v1_sites, v1);
  wire(v2_sites, v2);
  for (auto& s : sources) s->run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  std::uint64_t sent = 0;
  for (auto& s : sources) sent += s->packets_sent();
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sink.delivered(), sent);
  EXPECT_EQ(sink.leaks(), 0u);
  EXPECT_EQ(sink.unknown_flows(), 0u);
}

/// Overlay baseline carries traffic and isolates VPNs, at the cost of
/// N(N-1)/2 circuits.
TEST(Integration, OverlayVpnEndToEnd) {
  OverlayBackbone bb(3, 31);
  const vpn::VpnId v1 = bb.service.create_vpn("V1");
  const vpn::VpnId v2 = bb.service.create_vpn("V2");
  auto& a1 = bb.add_ce(0, "A1");
  auto& a2 = bb.add_ce(1, "A2");
  auto& a3 = bb.add_ce(2, "A3");
  auto& b1 = bb.add_ce(0, "B1");
  auto& b2 = bb.add_ce(2, "B2");
  bb.service.add_site(v1, a1, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.service.add_site(v1, a2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.service.add_site(v1, a3, ip::Prefix::must_parse("10.3.0.0/16"));
  bb.service.add_site(v2, b1, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.service.add_site(v2, b2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.service.provision();
  bb.topo.scheduler().run();

  // 3 sites → 3 circuits; 2 sites → 1 circuit.
  EXPECT_EQ(bb.service.pvc_count(), 4u);
  EXPECT_GT(bb.service.total_switching_entries(), 0u);
  EXPECT_GT(bb.service.provisioning_actions(), 0u);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(a2);
  sink.bind(b2);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v1;
  traffic::CbrSource s1(a1, f, 1, &probe, 200e3);
  sink.expect_flow(1, qos::Phb::kBe, v1);
  traffic::FlowSpec g = f;
  g.vpn = v2;
  traffic::CbrSource s2(b1, g, 2, &probe, 200e3);
  sink.expect_flow(2, qos::Phb::kBe, v2);
  s1.run(0, sim::kSecond);
  s2.run(0, sim::kSecond);
  bb.topo.run_until(2 * sim::kSecond);

  EXPECT_EQ(sink.delivered(), s1.packets_sent() + s2.packets_sent());
  EXPECT_EQ(sink.leaks(), 0u);
}

/// Incremental join on a provisioned overlay builds circuits to every
/// existing site (the operational pain the paper contrasts with §4.1).
TEST(Integration, OverlayIncrementalJoinCost) {
  OverlayBackbone bb(3, 32);
  const vpn::VpnId v = bb.service.create_vpn("V");
  std::vector<vpn::Router*> ces;
  for (int i = 0; i < 4; ++i) {
    auto& ce = bb.add_ce(i % 3, "CE" + std::to_string(i));
    bb.service.add_site(
        v, ce, ip::Prefix(ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 0), 16));
  }
  bb.service.provision();
  EXPECT_EQ(bb.service.pvc_count(), 6u);  // 4*3/2

  auto& late = bb.add_ce(1, "late");
  bb.service.add_site(v, late, ip::Prefix::must_parse("10.9.0.0/16"));
  EXPECT_EQ(bb.service.pvc_count(), 10u);  // 5*4/2
}

/// IPsec baseline: IKE establishes, ESP carries traffic, the core sees
/// only encrypted headers, replay protection works, crypto time is
/// charged.
TEST(Integration, IpsecVpnEndToEnd) {
  IpsecBackbone bb(3, ipsec::CipherSuite::kTripleDesCbc, 41);
  const vpn::VpnId v1 = bb.service.create_vpn("V1");
  auto& gw1 = bb.add_gateway(0, "GW1");
  auto& gw2 = bb.add_gateway(1, "GW2");
  bb.service.add_site(v1, gw1, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.service.add_site(v1, gw2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.service.set_crypto_cost(
      ipsec::CryptoCostModel{50.0, 2000.0});  // synthetic, deterministic
  bb.start_and_converge();

  EXPECT_EQ(bb.service.tunnel_count(), 1u);
  EXPECT_EQ(bb.service.established_count(), 1u);
  EXPECT_GT(bb.service.all_established_at(), 0);
  EXPECT_GT(bb.cp.message_count("ike.main"), 0u);

  // Tap the core: every packet crossing it must be ESP with hidden DSCP.
  std::uint64_t esp_seen = 0;
  std::uint64_t clear_seen = 0;
  bb.topo.add_packet_tap([&](ip::NodeId at, const net::Packet& p) {
    if (at == gw1.id() || at == gw2.id()) return;
    if (p.esp) {
      ++esp_seen;
      EXPECT_EQ(p.visible_dscp(), 0);  // inner EF marking invisible
    } else {
      ++clear_seen;
    }
  });

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(gw2);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v1;
  f.phb = qos::Phb::kEf;
  f.premark = true;
  traffic::CbrSource src(gw1, f, 1, &probe, 200e3);
  sink.expect_flow(1, qos::Phb::kEf, v1);
  src.run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  EXPECT_EQ(sink.delivered(), src.packets_sent());
  EXPECT_EQ(sink.leaks(), 0u);
  EXPECT_GT(esp_seen, 0u);
  EXPECT_EQ(clear_seen, 0u);
  // ESP inflated every packet on the wire by its overhead.
  EXPECT_GT(probe.report(qos::Phb::kEf).latency_s.mean(), 0.0);
}

/// Two IPsec VPNs with identical inner address plans stay isolated: the
/// tunnels differ even though the inner packets look alike.
TEST(Integration, IpsecOverlappingAddressSpaces) {
  IpsecBackbone bb(3, ipsec::CipherSuite::kDesCbc, 43);
  const vpn::VpnId v1 = bb.service.create_vpn("V1");
  const vpn::VpnId v2 = bb.service.create_vpn("V2");
  auto& a1 = bb.add_gateway(0, "A1");
  auto& a2 = bb.add_gateway(1, "A2");
  auto& b1 = bb.add_gateway(2, "B1");
  auto& b2 = bb.add_gateway(0, "B2");
  bb.service.add_site(v1, a1, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.service.add_site(v1, a2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.service.add_site(v2, b1, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.service.add_site(v2, b2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();
  EXPECT_EQ(bb.service.tunnel_count(), 2u);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(a2);
  sink.bind(b2);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v1;
  traffic::CbrSource s1(a1, f, 1, &probe, 100e3);
  sink.expect_flow(1, qos::Phb::kBe, v1);
  traffic::FlowSpec g = f;
  g.vpn = v2;
  traffic::CbrSource s2(b1, g, 2, &probe, 100e3);
  sink.expect_flow(2, qos::Phb::kBe, v2);
  s1.run(0, sim::kSecond);
  s2.run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);
  EXPECT_EQ(sink.delivered(), s1.packets_sent() + s2.packets_sent());
  EXPECT_EQ(sink.leaks(), 0u);
}

/// TE failover (paper §3.1 "disabled links"): an LSP carrying VPN traffic
/// reroutes around a failed core link and delivery resumes.
TEST(Integration, TeLspFailoverKeepsVpnTrafficFlowing) {
  backbone::DiamondScenario d = backbone::make_diamond_scenario(10e6, 51);
  MplsBackbone& bb = *d.backbone;
  const vpn::VpnId v = bb.service.create_vpn("V");
  const auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  const auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  mpls::TeLspConfig lsp_cfg;
  lsp_cfg.head = bb.pe(0).id();
  lsp_cfg.tail = bb.pe(1).id();
  lsp_cfg.bandwidth_bps = 2e6;
  const mpls::LspId lsp = bb.rsvp.signal(lsp_cfg);
  bb.topo.scheduler().run();
  ASSERT_EQ(bb.rsvp.lsp(lsp).state, mpls::RsvpTe::LspState::kUp);
  const auto initial_hops = bb.rsvp.lsp(lsp).path.size();
  bb.pe(0).bind_lsp(bb.pe(1).id(), lsp);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_b.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v;
  traffic::CbrSource src(*site_a.ce, f, 1, &probe, 500e3);
  sink.expect_flow(1, qos::Phb::kBe, v);

  const sim::SimTime t0 = bb.topo.scheduler().now();
  src.run(t0, t0 + 4 * sim::kSecond);

  // Fail the hot link after 1 s of traffic.
  bb.topo.scheduler().schedule_at(t0 + sim::kSecond, [&] {
    bb.topo.link(d.hot_link).set_up(false);
    bb.igp.notify_link_change(d.hot_link);
    bb.rsvp.notify_link_failure(d.hot_link);
  });
  bb.topo.run_until(t0 + 6 * sim::kSecond);

  const mpls::RsvpTe::Lsp& after = bb.rsvp.lsp(lsp);
  EXPECT_EQ(after.state, mpls::RsvpTe::LspState::kUp);
  EXPECT_EQ(after.reroutes, 1u);
  EXPECT_GT(after.path.size(), initial_hops);  // took the detour

  // Most traffic survives: only packets in flight during reconvergence die.
  const double loss = probe.report(qos::Phb::kBe).loss_fraction();
  EXPECT_GT(sink.delivered(), 0u);
  EXPECT_LT(loss, 0.05);
  EXPECT_EQ(sink.leaks(), 0u);
}

/// Inter-provider VPN (paper §5: "building VPNs using multiple carriers"):
/// a VPN spans two providers joined by an option-A ASBR peering; traffic
/// crosses the boundary, isolation holds, and a leave in one provider
/// withdraws reachability in the other.
TEST(Integration, InterAsVpnAcrossTwoProviders) {
  backbone::TwoProviderBackbone bb(71);
  const vpn::VpnId va = bb.service_a.create_vpn("corp");
  const vpn::VpnId vb = bb.service_b.create_vpn("corp");
  bb.peering->stitch(va, vb);
  auto site_a = bb.add_site_a(va, ip::Prefix::must_parse("10.1.0.0/16"));
  auto site_b = bb.add_site_b(vb, ip::Prefix::must_parse("10.2.0.0/16"));
  // A second, unrelated VPN in provider A with overlapping addresses.
  const vpn::VpnId other = bb.service_a.create_vpn("other");
  auto other_site =
      bb.add_site_a(other, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.start_and_converge();

  // Control plane: provider B's PE imported the A-side prefix via the
  // ASBR re-origination, and vice versa.
  vpn::Vrf* vrf_b = bb.pe_b->vrf_by_vpn(vb);
  ASSERT_NE(vrf_b, nullptr);
  const ip::RouteEntry* cross =
      vrf_b->table().lookup(ip::Ipv4Address::must_parse("10.1.0.1"));
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->egress_pe, bb.asbr_b->id());
  EXPECT_GT(bb.peering->updates_sent(), 0u);

  // Data plane across the boundary, both directions.
  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_a.ce);
  sink.bind(*site_b.ce);
  sink.bind(*other_site.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = va;  // ground truth: it is the same corp VPN end to end
  traffic::CbrSource a_to_b(*site_a.ce, f, 1, &probe, 300e3);
  sink.expect_flow(1, qos::Phb::kBe, vb);  // delivered within B's VRF id
  traffic::FlowSpec g;
  g.src = ip::Ipv4Address::must_parse("10.2.0.1");
  g.dst = ip::Ipv4Address::must_parse("10.1.0.1");
  g.vpn = vb;
  traffic::CbrSource b_to_a(*site_b.ce, g, 2, &probe, 300e3);
  sink.expect_flow(2, qos::Phb::kBe, va);
  a_to_b.run(0, sim::kSecond);
  b_to_a.run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  // VPN ids are provider-local; the sink compares against the delivering
  // VRF. Any mismatch beyond that mapping (e.g. delivery into "other")
  // would show up as a leak or unknown flow.
  EXPECT_EQ(sink.delivered(),
            a_to_b.packets_sent() + b_to_a.packets_sent());
  EXPECT_EQ(sink.unknown_flows(), 0u);
  // va and vb are both id 1 in their provider-local spaces, so the
  // ground-truth check is exact; "other" (id 2) must never receive any.
  EXPECT_EQ(sink.leaks(), 0u);

  // Leave in provider A → withdrawn in provider B.
  bb.service_a.remove_site(va, *bb.pe_a,
                           ip::Prefix::must_parse("10.1.0.0/16"));
  bb.topo.scheduler().run();
  EXPECT_EQ(vrf_b->table().lookup(ip::Ipv4Address::must_parse("10.1.0.1")),
            nullptr);
}

/// End-to-end QoS chain (paper §5): CPE classification → DiffServ marking
/// → DSCP→EXP at the PE → EXP scheduling in the core. Under a congested
/// core link, EF keeps low delay while BE suffers.
TEST(Integration, DiffServOverMplsProtectsEfUnderCongestion) {
  BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.core_bw_bps = 2e6;  // tight core
  cfg.edge_bw_bps = 10e6;
  cfg.seed = 61;
  cfg.core_queue = [] {
    return std::make_unique<qos::PriorityQueueDisc>(
        3, 100, qos::ef_af_be_selector());
  };
  MplsBackbone bb(cfg);
  const vpn::VpnId v = bb.service.create_vpn("V");
  auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  // CPE classifier: voice ports → EF, everything else BE.
  auto classifier = std::make_unique<qos::CbqClassifier>();
  qos::MatchRule voice;
  voice.dst_port = qos::PortRange{16384, 16484};
  voice.mark = qos::Phb::kEf;
  classifier->add_rule(voice);
  site_a.ce->set_classifier(std::move(classifier));

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_b.ce);

  traffic::FlowSpec voice_flow;
  voice_flow.src = ip::Ipv4Address::must_parse("10.1.0.1");
  voice_flow.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  voice_flow.dst_port = 16400;
  voice_flow.payload_bytes = 172;  // 200 B voice frames
  voice_flow.vpn = v;
  voice_flow.phb = qos::Phb::kEf;
  traffic::CbrSource voice_src(*site_a.ce, voice_flow, 1, &probe, 200e3);
  sink.expect_flow(1, qos::Phb::kEf, v);

  traffic::FlowSpec bulk;
  bulk.src = ip::Ipv4Address::must_parse("10.1.0.2");
  bulk.dst = ip::Ipv4Address::must_parse("10.2.0.2");
  bulk.dst_port = 80;
  bulk.payload_bytes = 1472;
  bulk.vpn = v;
  bulk.phb = qos::Phb::kBe;
  traffic::PoissonSource bulk_src(*site_a.ce, bulk, 2, &probe, 2.5e6);
  sink.expect_flow(2, qos::Phb::kBe, v);

  voice_src.run(0, 3 * sim::kSecond);
  bulk_src.run(0, 3 * sim::kSecond);
  bb.topo.run_until(6 * sim::kSecond);

  const auto& ef = probe.report(qos::Phb::kEf);
  const auto& be = probe.report(qos::Phb::kBe);
  EXPECT_LT(ef.loss_fraction(), 0.01);
  EXPECT_GT(be.loss_fraction(), 0.05);          // overload lands on BE
  EXPECT_LT(ef.latency_s.percentile(99),
            be.latency_s.percentile(99) / 2.0);  // EF protected
  EXPECT_EQ(sink.leaks(), 0u);
}

/// ECMP: flows with different ports spread over both equal-cost paths of
/// a routed square, while each individual flow sticks to one path (no
/// intra-flow reordering). Also checks the flip side the paper cares
/// about: ESP-encrypted flows all hash alike (ports hidden) and collapse
/// onto one path.
TEST(Integration, EcmpSpreadsFlowsAcrossEqualPaths) {
  net::Topology topo(97);
  routing::ControlPlane cp(topo);
  routing::Igp igp(cp);
  auto& r0 = topo.add_node<vpn::Router>("r0", vpn::Role::kP);
  auto& r1 = topo.add_node<vpn::Router>("r1", vpn::Role::kP);
  auto& r2 = topo.add_node<vpn::Router>("r2", vpn::Role::kP);
  auto& r3 = topo.add_node<vpn::Router>("r3", vpn::Role::kP);
  const net::LinkId l01 = topo.connect(r0.id(), r1.id());
  topo.connect(r1.id(), r2.id());
  const net::LinkId l03 = topo.connect(r0.id(), r3.id());
  topo.connect(r3.id(), r2.id());
  for (auto* r : {&r0, &r1, &r2, &r3}) igp.add_router(r->id());
  igp.start();
  topo.scheduler().run();

  // Destination prefix lives on r2; install the ECMP route at r0 and
  // plain forwarding routes at the transit routers.
  r2.add_local_prefix(ip::Prefix::must_parse("10.2.0.0/16"));
  const auto hops = igp.next_hops_ecmp(r0.id(), r2.id());
  ASSERT_EQ(hops.size(), 2u);
  ip::RouteEntry e;
  e.prefix = ip::Prefix::must_parse("10.2.0.0/16");
  e.next_hop.node = hops[0].via;
  e.next_hop.iface = hops[0].iface;
  for (const auto& h : hops) {
    e.ecmp.push_back(ip::NextHop{h.via, h.iface, false});
  }
  r0.fib().install(e);
  for (auto* transit : {&r1, &r3}) {
    ip::RouteEntry t;
    t.prefix = e.prefix;
    t.next_hop.node = r2.id();
    t.next_hop.iface = transit->interface_to(r2.id());
    transit->fib().install(t);
  }

  int delivered = 0;
  r2.set_local_sink([&](const net::Packet&, vpn::VpnId) { ++delivered; });
  auto send_flows = [&](bool encrypted) {
    for (std::uint32_t i = 0; i < 32; ++i) {
      auto p = topo.packet_factory().make();
      p->ip.src = ip::Ipv4Address(10, 1, 0, std::uint8_t(i + 1));
      p->ip.dst = ip::Ipv4Address(10, 2, 0, std::uint8_t(i + 1));
      p->l4.src_port = static_cast<std::uint16_t>(20000 + i * 13);
      if (encrypted) {
        net::EspEncap esp;
        esp.outer.src = ip::Ipv4Address::must_parse("10.1.0.200");
        esp.outer.dst = ip::Ipv4Address::must_parse("10.2.0.200");
        esp.outer.protocol = net::kProtocolEsp;
        p->esp = esp;
      }
      r0.inject(std::move(p));
    }
    topo.scheduler().run();
  };

  send_flows(false);
  EXPECT_EQ(delivered, 32);
  const auto via_r1 = topo.link(l01).tx_from(r0.id()).packets.value();
  const auto via_r3 = topo.link(l03).tx_from(r0.id()).packets.value();
  EXPECT_EQ(via_r1 + via_r3, 32u);
  EXPECT_GT(via_r1, 8u);  // real spread, not all-on-one
  EXPECT_GT(via_r3, 8u);

  // Encrypted: the hash sees only the outer tunnel header → one path.
  send_flows(true);
  const auto via_r1_after = topo.link(l01).tx_from(r0.id()).packets.value();
  const auto via_r3_after = topo.link(l03).tx_from(r0.id()).packets.value();
  const auto esp_r1 = via_r1_after - via_r1;
  const auto esp_r3 = via_r3_after - via_r3;
  EXPECT_EQ(esp_r1 + esp_r3, 32u);
  EXPECT_TRUE(esp_r1 == 0 || esp_r3 == 0);  // all on a single path
}

/// Site multihoming: a site attached to two PEs with different BGP
/// local preferences survives the primary PE's crash — peers flush the
/// dead speaker's routes and fail over to the standby attachment.
TEST(Integration, MultihomedSiteSurvivesPeFailure) {
  BackboneConfig cfg;
  cfg.p_count = 2;
  cfg.pe_count = 3;
  cfg.seed = 95;
  MplsBackbone bb(cfg);
  const vpn::VpnId v = bb.service.create_vpn("V");

  // Multihomed site: one CE wired to PE0 (preferred) and PE1 (standby).
  auto& mh_ce = bb.topo.add_node<vpn::Router>("CEmh", vpn::Role::kCe);
  net::LinkConfig edge;
  edge.bandwidth_bps = 10e6;
  edge.prop_delay = sim::kMillisecond;
  bb.topo.connect(mh_ce.id(), bb.pe(0).id(), edge);
  bb.topo.connect(mh_ce.id(), bb.pe(1).id(), edge);
  bb.service.add_site(v, bb.pe(0), mh_ce,
                      ip::Prefix::must_parse("10.1.0.0/16"), 200);
  bb.service.add_site(v, bb.pe(1), mh_ce,
                      ip::Prefix::must_parse("10.1.0.0/16"), 100);
  // Remote single-homed site on PE2.
  auto remote = bb.add_site(v, 2, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  // Before the failure, PE2 prefers the PE0 attachment.
  vpn::Vrf* vrf_pe2 = bb.pe(2).vrf_by_vpn(v);
  ASSERT_NE(vrf_pe2, nullptr);
  const ip::RouteEntry* route =
      vrf_pe2->table().lookup(ip::Ipv4Address::must_parse("10.1.0.1"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->egress_pe, bb.pe(0).id());

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(mh_ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.2.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.1.0.1");
  f.vpn = v;
  traffic::CbrSource src(*remote.ce, f, 1, &probe, 400e3);
  sink.expect_flow(1, qos::Phb::kBe, v);
  const sim::SimTime t0 = bb.topo.scheduler().now();
  src.run(t0, t0 + 4 * sim::kSecond);

  bb.topo.scheduler().schedule_at(t0 + sim::kSecond, [&] {
    bb.service.fail_pe(bb.pe(0));  // primary attachment dies
  });
  bb.topo.run_until(t0 + 6 * sim::kSecond);

  // Failover happened: PE2 now reaches the site through PE1...
  route = vrf_pe2->table().lookup(ip::Ipv4Address::must_parse("10.1.0.1"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->egress_pe, bb.pe(1).id());
  // ...and only packets in flight at the instant of failure were lost.
  EXPECT_LT(probe.report(qos::Phb::kBe).loss_fraction(), 0.05);
  EXPECT_EQ(sink.leaks(), 0u);
}

/// Resilience comparison: after a core link failure, the MPLS VPN heals
/// itself (IGP refloods, LDP repoints via liberal retention) while the
/// provisioned overlay's circuits stay dead until re-provisioned — one of
/// the operational arguments for the architecture.
TEST(Integration, MplsSelfHealsWhereOverlayCircuitsDie) {
  // --- MPLS: ring core gives an alternate path ---------------------------
  BackboneConfig cfg;
  cfg.p_count = 3;
  cfg.pe_count = 2;
  cfg.seed = 91;
  MplsBackbone mpls_bb(cfg);
  const vpn::VpnId v = mpls_bb.service.create_vpn("V");
  auto m_a = mpls_bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto m_b = mpls_bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  mpls_bb.start_and_converge();

  qos::SlaProbe m_probe;
  traffic::MeasurementSink m_sink(m_probe, mpls_bb.topo.scheduler());
  m_sink.bind(*m_b.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v;
  traffic::CbrSource m_src(*m_a.ce, f, 1, &m_probe, 200e3);
  m_sink.expect_flow(1, qos::Phb::kBe, v);
  const sim::SimTime t0 = mpls_bb.topo.scheduler().now();
  m_src.run(t0, t0 + 4 * sim::kSecond);

  // Fail the link PE0 currently uses at t0+1s.
  mpls_bb.topo.scheduler().schedule_at(t0 + sim::kSecond, [&] {
    const auto* nh =
        mpls_bb.igp.next_hop(mpls_bb.pe(0).id(), mpls_bb.pe(1).id());
    ASSERT_NE(nh, nullptr);
    const net::LinkId used =
        mpls_bb.pe(0).interface(nh->iface).link;
    mpls_bb.topo.link(used).set_up(false);
    mpls_bb.igp.notify_link_change(used);
  });
  mpls_bb.topo.run_until(t0 + 6 * sim::kSecond);
  // Traffic kept flowing: only the reconvergence window is lost.
  EXPECT_LT(m_probe.report(qos::Phb::kBe).loss_fraction(), 0.10);
  EXPECT_GT(m_sink.delivered(), 0u);

  // --- Overlay: same shape, no alternate behaviour -----------------------
  OverlayBackbone ov(3, 91);
  const vpn::VpnId ovv = ov.service.create_vpn("V");
  auto& o_a = ov.add_ce(0, "A");
  auto& o_b = ov.add_ce(1, "B");
  ov.service.add_site(ovv, o_a, ip::Prefix::must_parse("10.1.0.0/16"));
  ov.service.add_site(ovv, o_b, ip::Prefix::must_parse("10.2.0.0/16"));
  ov.service.provision();

  qos::SlaProbe o_probe;
  traffic::MeasurementSink o_sink(o_probe, ov.topo.scheduler());
  o_sink.bind(o_b);
  traffic::CbrSource o_src(o_a, f, 1, &o_probe, 200e3);
  o_sink.expect_flow(1, qos::Phb::kBe, ovv);
  o_src.run(0, 4 * sim::kSecond);
  // Fail the SW0-SW1 core link the circuit is pinned to.
  ov.topo.scheduler().schedule_at(sim::kSecond, [&] {
    ov.topo.link(0).set_up(false);
  });
  ov.topo.run_until(6 * sim::kSecond);
  // Circuits do not reroute: ~3 of 4 seconds of traffic is gone.
  EXPECT_GT(o_probe.report(qos::Phb::kBe).loss_fraction(), 0.5);
}

/// Fully automated failure recovery: hello-protocol liveness detection
/// drives IGP reconvergence and RSVP-TE reroute with no manual failure
/// notification anywhere — the complete operational chain.
TEST(Integration, HelloDrivenFailureRecoveryEndToEnd) {
  backbone::DiamondScenario d = backbone::make_diamond_scenario(10e6, 53);
  backbone::MplsBackbone& bb = *d.backbone;
  const vpn::VpnId v = bb.service.create_vpn("V");
  auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  mpls::TeLspConfig lsp_cfg;
  lsp_cfg.head = bb.pe(0).id();
  lsp_cfg.tail = bb.pe(1).id();
  lsp_cfg.bandwidth_bps = 2e6;
  const mpls::LspId lsp = bb.rsvp.signal(lsp_cfg);
  bb.topo.scheduler().run();
  bb.pe(0).bind_lsp(bb.pe(1).id(), lsp, v);

  // Liveness detection on every core link, wired to IGP + RSVP.
  routing::HelloProtocol hello(bb.cp);
  for (std::size_t l = 0; l < bb.topo.link_count(); ++l) {
    hello.enroll_link(static_cast<net::LinkId>(l));
  }
  hello.on_link_down([&](net::LinkId l) {
    bb.igp.notify_link_change(l);
    bb.rsvp.notify_link_failure(l);
  });
  hello.start(10 * sim::kMillisecond, 3);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_b.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v;
  traffic::CbrSource src(*site_a.ce, f, 1, &probe, 500e3);
  sink.expect_flow(1, qos::Phb::kBe, v);
  const sim::SimTime t0 = bb.topo.scheduler().now();
  src.run(t0, t0 + 4 * sim::kSecond);

  // ONLY the physical failure — detection and recovery are automatic.
  bb.topo.scheduler().schedule_at(t0 + sim::kSecond, [&] {
    bb.topo.link(d.hot_link).set_up(false);
  });
  bb.topo.run_until(t0 + 6 * sim::kSecond);

  EXPECT_TRUE(hello.is_down(d.hot_link));
  EXPECT_EQ(bb.rsvp.lsp(lsp).state, mpls::RsvpTe::LspState::kUp);
  EXPECT_EQ(bb.rsvp.lsp(lsp).reroutes, 1u);
  // Outage ≈ hello detection (30 ms) + resignal; tiny fraction of 4 s.
  EXPECT_LT(probe.report(qos::Phb::kBe).loss_fraction(), 0.05);
  EXPECT_EQ(sink.leaks(), 0u);
}

/// The full synthesis the paper's title promises: *secure* VPN traffic
/// (real ESP between customer gateways) with *end-to-end QoS* across the
/// MPLS backbone. The deciding knob is whether the gateway copies the
/// DSCP to the outer header: with it, the PE can still map class → EXP
/// and the encrypted voice survives congestion; without it (the deployed
/// default the paper complains about), encrypted voice is treated as
/// best effort and drowns.
TEST(Integration, EncryptedVoiceKeepsQosOnlyWithDscpCopy) {
  auto run = [](bool copy_dscp) {
    BackboneConfig cfg;
    cfg.p_count = 1;
    cfg.pe_count = 2;
    cfg.core_bw_bps = 2e6;
    cfg.edge_bw_bps = 20e6;
    cfg.seed = 81;
    cfg.core_queue = [] {
      return std::make_unique<qos::PriorityQueueDisc>(
          3, 100, qos::ef_af_be_selector());
    };
    MplsBackbone bb(cfg);
    const vpn::VpnId v = bb.service.create_vpn("V");
    auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
    auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
    bb.start_and_converge();

    // CPE classification: voice → EF (marked on the inner header before
    // encryption).
    auto classifier = std::make_unique<qos::CbqClassifier>();
    qos::MatchRule voice;
    voice.dst_port = qos::PortRange{16384, 16484};
    voice.mark = qos::Phb::kEf;
    classifier->add_rule(voice);
    site_a.ce->set_classifier(std::move(classifier));

    // ESP between gateway addresses living inside the site prefixes, so
    // the tunnel rides the MPLS VPN itself.
    ipsec::SaConfig sa;
    sa.spi = 0x77;
    sa.cipher = ipsec::CipherSuite::kTripleDesCbc;
    sa.cipher_keys = {1, 2, 3};
    sa.auth_key.assign(20, 7);
    sa.local = ip::Ipv4Address::must_parse("10.1.255.1");
    sa.peer = ip::Ipv4Address::must_parse("10.2.255.1");
    sa.copy_dscp_to_outer = copy_dscp;
    site_a.ce->add_outbound_sa(ip::Prefix::must_parse("10.2.0.0/16"),
                               std::make_shared<ipsec::EspSa>(sa));
    site_b.ce->add_inbound_sa(std::make_shared<ipsec::EspSa>(sa));

    qos::SlaProbe probe;
    traffic::MeasurementSink sink(probe, bb.topo.scheduler());
    sink.bind(*site_b.ce);

    traffic::FlowSpec voice_flow;
    voice_flow.src = ip::Ipv4Address::must_parse("10.1.0.1");
    voice_flow.dst = ip::Ipv4Address::must_parse("10.2.0.1");
    voice_flow.dst_port = 16400;
    voice_flow.payload_bytes = 172;
    voice_flow.vpn = v;
    voice_flow.phb = qos::Phb::kEf;
    traffic::CbrSource voice_src(*site_a.ce, voice_flow, 1, &probe, 200e3);
    sink.expect_flow(1, qos::Phb::kEf, v);

    // Unencrypted bulk congests the core.
    traffic::FlowSpec bulk;
    bulk.src = ip::Ipv4Address::must_parse("10.1.0.2");
    bulk.dst = ip::Ipv4Address::must_parse("10.2.0.2");
    bulk.dst_port = 80;
    bulk.payload_bytes = 1472;
    bulk.vpn = v;
    bulk.phb = qos::Phb::kBe;
    traffic::PoissonSource bulk_src(*site_a.ce, bulk, 2, &probe, 2.5e6);
    sink.expect_flow(2, qos::Phb::kBe, v);

    // Bulk matches the SA policy too (a site-to-site tunnel carries all
    // inter-site traffic), so both flows are encrypted — which is exactly
    // the regime the paper discusses.
    voice_src.run(0, 3 * sim::kSecond);
    bulk_src.run(0, 3 * sim::kSecond);
    bb.topo.run_until(6 * sim::kSecond);

    EXPECT_EQ(sink.leaks(), 0u);
    return probe.report(qos::Phb::kEf).latency_s.percentile(99);
  };

  const double with_copy_p99 = run(true);
  const double without_copy_p99 = run(false);
  // With ToS copy the encrypted voice keeps its priority end to end;
  // without it (the paper's complaint) it queues with the bulk.
  EXPECT_LT(with_copy_p99, 0.030);
  EXPECT_GT(without_copy_p99, with_copy_p99 * 3.0);
}

}  // namespace
}  // namespace mvpn
