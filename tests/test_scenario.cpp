#include <gtest/gtest.h>

#include <sstream>

#include "backbone/scenario_config.hpp"

namespace mvpn::backbone {
namespace {

const char* kMinimal = R"(
backbone p=1 pe=2 seed=3
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
flow cbr vpn=corp from=0 to=1 rate=200e3
run for=1
)";

TEST(ScenarioParse, MinimalScenario) {
  ScenarioError err;
  auto sc = Scenario::parse(kMinimal, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  EXPECT_EQ(sc->vpn_count(), 1u);
  EXPECT_EQ(sc->site_count(), 2u);
  EXPECT_EQ(sc->flow_count(), 1u);
  EXPECT_DOUBLE_EQ(sc->run_seconds(), 1.0);
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
  const std::string text = std::string("# leading comment\n\n") + kMinimal +
                           "# trailing comment\n";
  ScenarioError err;
  EXPECT_TRUE(Scenario::parse(text, &err).has_value()) << err.message;
}

TEST(ScenarioParse, AllDirectivesAccepted) {
  const char* text = R"(
backbone p=2 pe=2 core_bw=4e6 edge_bw=20e6 seed=7 bgp=rr rr=2 core_queue=drr:4,2,1
vpn corp
vpn partner
extranet corp partner
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16 pref=200
site partner pe=1 prefix=192.168.0.0/16
classify site=0 dstport=16384-16484 class=EF
classify site=0 dstport=5004 class=AF21
police site=0 class=EF cir=62500 cbs=4000 ebs=4000
shape site=0 class=AF11 rate=125000 burst=3000
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow poisson vpn=corp from=0 to=1 rate=1e6 size=1472
flow onoff vpn=corp from=0 to=1 rate=2e6 on=0.3 off=0.2 class=AF21
run for=2
)";
  ScenarioError err;
  auto sc = Scenario::parse(text, &err);
  ASSERT_TRUE(sc.has_value()) << "line " << err.line << ": " << err.message;
  EXPECT_EQ(sc->vpn_count(), 2u);
  EXPECT_EQ(sc->site_count(), 3u);
  EXPECT_EQ(sc->flow_count(), 3u);
}

struct BadCase {
  const char* name;
  const char* text;
  const char* expect_substr;
};

class ScenarioParseErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioParseErrors, ReportsUsefulError) {
  const BadCase& c = GetParam();
  ScenarioError err;
  auto sc = Scenario::parse(c.text, &err);
  EXPECT_FALSE(sc.has_value()) << c.name;
  EXPECT_NE(err.message.find(c.expect_substr), std::string::npos)
      << c.name << ": got '" << err.message << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioParseErrors,
    ::testing::Values(
        BadCase{"no_backbone", "vpn corp\nsite corp pe=0 prefix=10.0.0.0/8\n",
                "needs a backbone"},
        BadCase{"no_sites", "backbone p=1 pe=1\nvpn corp\n",
                "at least one site"},
        BadCase{"bad_prefix",
                "backbone p=1 pe=1\nvpn corp\nsite corp pe=0 prefix=10.0.0/8\n",
                "bad prefix"},
        BadCase{"unknown_vpn",
                "backbone p=1 pe=1\nvpn corp\nsite other pe=0 "
                "prefix=10.0.0.0/8\n",
                "unknown vpn"},
        BadCase{"pe_range",
                "backbone p=1 pe=1\nvpn corp\nsite corp pe=5 "
                "prefix=10.0.0.0/8\n",
                "out of range"},
        BadCase{"bad_class",
                "backbone p=1 pe=1\nvpn corp\nsite corp pe=0 "
                "prefix=10.0.0.0/8\nclassify site=0 class=PLATINUM\n",
                "unknown class"},
        BadCase{"unknown_directive",
                "backbone p=1 pe=1\nfrobnicate all the things\nvpn v\nsite v "
                "pe=0 prefix=10.0.0.0/8\n",
                "unknown directive"},
        BadCase{"bad_flow_kind",
                "backbone p=1 pe=1\nvpn v\nsite v pe=0 "
                "prefix=10.0.0.0/8\nflow warp vpn=v from=0 to=0\n",
                "unknown flow kind"},
        BadCase{"flow_site_range",
                "backbone p=1 pe=1\nvpn v\nsite v pe=0 "
                "prefix=10.0.0.0/8\nflow cbr vpn=v from=0 to=9\n",
                "out of range"},
        BadCase{"bad_bgp",
                "backbone p=1 pe=1 bgp=mush\nvpn v\nsite v pe=0 "
                "prefix=10.0.0.0/8\n",
                "mesh or rr"},
        BadCase{"police_missing_rates",
                "backbone p=1 pe=1\nvpn v\nsite v pe=0 "
                "prefix=10.0.0.0/8\npolice site=0 class=EF\n",
                "cir="}));

TEST(ScenarioParse, ErrorCarriesLineNumber) {
  ScenarioError err;
  const char* text =
      "backbone p=1 pe=1\n"
      "vpn corp\n"
      "site corp pe=0 prefix=BOGUS\n";
  EXPECT_FALSE(Scenario::parse(text, &err).has_value());
  EXPECT_EQ(err.line, 3u);
}

TEST(ScenarioParse, RunSourcesDirective) {
  const std::string legacy =
      std::string(kMinimal) + "run for=1 sources=legacy\n";
  const std::string flowset =
      std::string(kMinimal) + "run for=1 sources=flowset\n";
  ScenarioError err;
  auto sl = Scenario::parse(legacy, &err);
  ASSERT_TRUE(sl.has_value()) << err.message;
  EXPECT_TRUE(sl->legacy_sources());
  auto sf = Scenario::parse(flowset, &err);
  ASSERT_TRUE(sf.has_value()) << err.message;
  EXPECT_FALSE(sf->legacy_sources());
  const std::string bad = std::string(kMinimal) + "run for=1 sources=magic\n";
  EXPECT_FALSE(Scenario::parse(bad, &err).has_value());
  EXPECT_NE(err.message.find("sources="), std::string::npos) << err.message;
}

TEST(ScenarioParse, RunUpdatesAndSpfDirectives) {
  ScenarioError err;
  auto packed = Scenario::parse(
      std::string(kMinimal) + "run for=1 updates=packed spf=incremental\n",
      &err);
  ASSERT_TRUE(packed.has_value()) << err.message;
  EXPECT_FALSE(packed->legacy_updates());
  EXPECT_FALSE(packed->full_spf());
  auto legacy = Scenario::parse(
      std::string(kMinimal) + "run for=1 updates=legacy spf=full\n", &err);
  ASSERT_TRUE(legacy.has_value()) << err.message;
  EXPECT_TRUE(legacy->legacy_updates());
  EXPECT_TRUE(legacy->full_spf());
  EXPECT_FALSE(Scenario::parse(
                   std::string(kMinimal) + "run for=1 updates=turbo\n", &err)
                   .has_value());
  EXPECT_NE(err.message.find("updates="), std::string::npos) << err.message;
  EXPECT_FALSE(
      Scenario::parse(std::string(kMinimal) + "run for=1 spf=psychic\n", &err)
          .has_value());
  EXPECT_NE(err.message.find("spf="), std::string::npos) << err.message;
}

TEST(ScenarioRun, EndToEndDeliversWithoutLeaks) {
  ScenarioError err;
  auto sc = Scenario::parse(kMinimal, &err);
  ASSERT_TRUE(sc.has_value());
  std::ostringstream out;
  EXPECT_TRUE(sc->run(out));
  const std::string text = out.str();
  EXPECT_NE(text.find("leaks=0"), std::string::npos);
  EXPECT_NE(text.find("BE"), std::string::npos);
  EXPECT_NE(text.find("converged in"), std::string::npos);
}

TEST(ScenarioRun, QosChainFromConfigProtectsEf) {
  const char* text = R"(
backbone p=1 pe=2 core_bw=2e6 edge_bw=20e6 seed=9 core_queue=prio
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
classify site=0 dstport=16400 class=EF
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow poisson vpn=corp from=0 to=1 rate=2.5e6 class=BE port=80 size=1472
run for=3
)";
  ScenarioError err;
  auto sc = Scenario::parse(text, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  std::ostringstream out;
  EXPECT_TRUE(sc->run(out));
  // EF row shows zero loss while BE shows substantial loss.
  const std::string report = out.str();
  const auto ef_pos = report.find("| EF");
  ASSERT_NE(ef_pos, std::string::npos);
  EXPECT_NE(report.substr(ef_pos).find("| 0.00"), std::string::npos);
}

TEST(ScenarioRun, TcpFlowFromConfigMovesData) {
  const char* text = R"(
backbone p=1 pe=2 core_bw=4e6 edge_bw=20e6 seed=13 core_queue=prio
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
classify site=0 dstport=16400 class=EF
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow tcp vpn=corp from=0 to=1 class=BE port=80
run for=3
)";
  ScenarioError err;
  auto sc = Scenario::parse(text, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  std::ostringstream out;
  EXPECT_TRUE(sc->run(out));
  const std::string report = out.str();
  // The elastic flow shows up with nonzero goodput.
  const auto pos = report.find("tcp flow 2: goodput ");
  ASSERT_NE(pos, std::string::npos) << report;
  EXPECT_EQ(report.find("goodput 0.00", pos), std::string::npos) << report;
}

TEST(ScenarioRun, LegacyAndFlowSetSourcesProduceIdenticalReports) {
  // The megaflow A/B contract at scenario level: the full run() output —
  // SLA tables, per-class rows, delivery accounting — must be byte-equal
  // between per-flow Source objects and the FlowSet engine.
  const char* text = R"(
backbone p=2 pe=2 core_bw=4e6 edge_bw=20e6 seed=21 core_queue=prio
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
classify site=0 dstport=16400 class=EF
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow poisson vpn=corp from=0 to=1 rate=1e6 size=1472
flow onoff vpn=corp from=0 to=1 rate=2e6 on=0.3 off=0.2 class=AF21 port=5004 start=0.01
run for=2
)";
  ScenarioError err;
  auto sc = Scenario::parse(text, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  std::ostringstream with_flowset;
  EXPECT_TRUE(sc->run(with_flowset));
  sc->set_legacy_sources(true);
  std::ostringstream with_legacy;
  EXPECT_TRUE(sc->run(with_legacy));
  EXPECT_EQ(with_flowset.str(), with_legacy.str());
  EXPECT_NE(with_flowset.str().find("delivered="), std::string::npos);
}

TEST(ScenarioRun, MixedTcpRunAccountsPlainFlows) {
  // Regression: cbr+tcp runs used to leave the sink unbound as the default
  // dispatcher handler, silently discarding all accounting for the plain
  // flows. The accounting line must appear and report zero leaks/unknowns.
  const char* text = R"(
backbone p=1 pe=2 core_bw=4e6 edge_bw=20e6 seed=13 core_queue=prio
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
classify site=0 dstport=16400 class=EF
flow cbr vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
flow tcp vpn=corp from=0 to=1 class=BE port=80
run for=3
)";
  ScenarioError err;
  auto sc = Scenario::parse(text, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  std::ostringstream out;
  EXPECT_TRUE(sc->run(out));
  const std::string report = out.str();
  const auto pos = report.find("delivered=");
  ASSERT_NE(pos, std::string::npos) << report;
  EXPECT_NE(report.find("leaks=0", pos), std::string::npos) << report;
  EXPECT_NE(report.find("unknown=0", pos), std::string::npos) << report;
}

TEST(ScenarioFile, MissingFileIsUsageError) {
  std::ostringstream out;
  EXPECT_EQ(run_scenario_file("/nonexistent/path.scn", out), 2);
  EXPECT_NE(out.str().find("cannot open"), std::string::npos);
}

TEST(ScenarioFile, ShippedDemoSceneParsesAndRuns) {
  std::ostringstream out;
  const int rc = run_scenario_file(
      std::string(MVPN_SOURCE_DIR) + "/examples/scenarios/branch_office.scn",
      out);
  EXPECT_EQ(rc, 0) << out.str();
}

}  // namespace
}  // namespace mvpn::backbone
