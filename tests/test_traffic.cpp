#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "backbone/fixtures.hpp"
#include "qos/queues.hpp"
#include "traffic/dispatcher.hpp"
#include "traffic/flowset.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"
#include "traffic/tcp_lite.hpp"

namespace mvpn::traffic {
namespace {

using backbone::Figure2Scenario;
using backbone::make_figure2_scenario;

TEST(CbrSource, RateIsExact) {
  Figure2Scenario s = make_figure2_scenario(101);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  f.payload_bytes = 472;  // 500 B at IP level
  CbrSource src(*s.v1_site1.ce, f, 1, &probe, 1e6);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);
  const sim::SimTime t0 = s.backbone->topo.scheduler().now();
  src.run(t0, t0 + 2 * sim::kSecond);
  s.backbone->topo.run_until(t0 + 4 * sim::kSecond);
  // 1 Mb/s at 4000 bits per packet = 250 pps for 2 s.
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 500.0, 2.0);
  EXPECT_EQ(sink.delivered(), src.packets_sent());
}

TEST(PoissonSource, MeanRateApproximates) {
  Figure2Scenario s = make_figure2_scenario(102);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  PoissonSource src(*s.v1_site1.ce, f, 1, &probe, 1e6);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);
  src.run(0, 4 * sim::kSecond);
  s.backbone->topo.run_until(6 * sim::kSecond);
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 1000.0, 100.0);
}

TEST(OnOffSource, DutyCycleScalesThroughput) {
  Figure2Scenario s = make_figure2_scenario(103);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  // 2 Mb/s peak, 50% duty → ~1 Mb/s mean.
  OnOffSource src(*s.v1_site1.ce, f, 1, &probe, 2e6, 0.1, 0.1);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);
  src.run(0, 4 * sim::kSecond);
  s.backbone->topo.run_until(6 * sim::kSecond);
  const double mean_bps =
      static_cast<double>(src.packets_sent()) * 500 * 8 / 4.0;
  EXPECT_GT(mean_bps, 0.6e6);
  EXPECT_LT(mean_bps, 1.4e6);
}

TEST(FlowDispatcher, RoutesByFlowIdWithDefault) {
  net::Topology topo;
  auto& r = topo.add_node<vpn::Router>("r", vpn::Role::kCe);
  r.add_local_prefix(ip::Prefix::must_parse("10.0.0.0/8"));
  FlowDispatcher dispatch;
  dispatch.attach(r);
  int flow_7 = 0;
  int fallback = 0;
  dispatch.register_flow(7, [&](const net::Packet&, vpn::VpnId) { ++flow_7; });
  dispatch.set_default([&](const net::Packet&, vpn::VpnId) { ++fallback; });
  for (std::uint32_t id : {7u, 8u, 7u}) {
    auto p = topo.packet_factory().make();
    p->flow_id = id;
    p->ip.dst = ip::Ipv4Address::must_parse("10.0.0.1");
    r.inject(std::move(p));
  }
  EXPECT_EQ(flow_7, 2);
  EXPECT_EQ(fallback, 1);
  dispatch.unregister_flow(7);
  auto p = topo.packet_factory().make();
  p->flow_id = 7;
  p->ip.dst = ip::Ipv4Address::must_parse("10.0.0.1");
  r.inject(std::move(p));
  EXPECT_EQ(fallback, 2);
}

/// (packet id, emission instant) pairs observed at the destination CE, plus
/// per-flow sent counts — everything a byte-identity comparison between the
/// legacy Source path and the FlowSet engine needs. The packet id encodes
/// (flow_id << 32) | seq, so equal logs mean equal flows, sequence numbers,
/// emission instants and delivery order.
struct MixResult {
  std::vector<std::pair<std::uint64_t, sim::SimTime>> log;
  std::vector<std::uint64_t> sent;
};

/// Run `defs` (with `start` interpreted relative to convergence) on a fresh
/// Figure-2 fixture for `run_s` seconds, via per-flow legacy sources or one
/// FlowSet. All flows go site1 → site2 of VPN 1.
MixResult run_mix(std::uint64_t seed,
                  const std::vector<FlowSet::FlowDef>& defs, double run_s,
                  bool legacy) {
  Figure2Scenario s = make_figure2_scenario(seed);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  MixResult r;
  s.v1_site2.ce->add_delivery_tap([&](const net::Packet& p, vpn::VpnId) {
    r.log.emplace_back(p.id, p.created_at);
  });
  sim::Scheduler& sched = s.backbone->topo.scheduler();
  const sim::SimTime t0 = sched.now();
  const sim::SimTime stop = t0 + sim::from_seconds(run_s);
  const auto src_host = ip::Ipv4Address::must_parse("10.1.0.1");
  const auto dst_host = ip::Ipv4Address::must_parse("10.2.0.1");
  if (legacy) {
    std::vector<std::unique_ptr<Source>> srcs;
    for (const FlowSet::FlowDef& d : defs) {
      FlowSpec f;
      f.src = src_host;
      f.dst = dst_host;
      f.src_port = d.src_port;
      f.dst_port = d.dst_port;
      f.protocol = d.protocol;
      f.payload_bytes = d.payload_bytes;
      f.vpn = s.vpn1;
      f.phb = d.phb;
      f.premark = d.premark;
      switch (d.kind) {
        case FlowSet::Kind::kCbr:
          srcs.push_back(std::make_unique<CbrSource>(
              *s.v1_site1.ce, f, d.flow_id, &probe, d.rate_bps));
          break;
        case FlowSet::Kind::kPoisson:
          srcs.push_back(std::make_unique<PoissonSource>(
              *s.v1_site1.ce, f, d.flow_id, &probe, d.rate_bps));
          break;
        case FlowSet::Kind::kOnOff:
          srcs.push_back(std::make_unique<OnOffSource>(
              *s.v1_site1.ce, f, d.flow_id, &probe, d.rate_bps, d.on_s,
              d.off_s));
          break;
      }
      srcs.back()->run(t0 + d.start, stop);
    }
    s.backbone->topo.run_until(stop + sim::kSecond);
    for (const auto& src : srcs) r.sent.push_back(src->packets_sent());
  } else {
    FlowSet fs(sched, &probe, s.backbone->topo.seed());
    const std::uint32_t from = fs.add_site(*s.v1_site1.ce, src_host);
    const std::uint32_t to = fs.add_site(*s.v1_site2.ce, dst_host);
    for (FlowSet::FlowDef d : defs) {
      d.from_site = from;
      d.to_site = to;
      d.vpn = s.vpn1;
      d.start = t0 + d.start;
      fs.add_flow(d);
    }
    fs.run(stop);
    s.backbone->topo.run_until(stop + sim::kSecond);
    for (std::uint32_t row = 0; row < defs.size(); ++row) {
      r.sent.push_back(fs.packets_sent(row));
    }
  }
  return r;
}

TEST(FlowSet, ByteIdenticalToLegacySourcesAcrossKinds) {
  std::vector<FlowSet::FlowDef> defs(3);
  defs[0].flow_id = 1;
  defs[0].kind = FlowSet::Kind::kCbr;
  defs[0].rate_bps = 200e3;
  defs[0].phb = qos::Phb::kEf;
  defs[0].premark = true;
  defs[0].dst_port = 16400;
  defs[0].payload_bytes = 172;
  defs[1].flow_id = 2;
  defs[1].kind = FlowSet::Kind::kPoisson;
  defs[1].rate_bps = 1e6;
  defs[1].start = sim::from_seconds(0.01);
  defs[2].flow_id = 3;
  defs[2].kind = FlowSet::Kind::kOnOff;
  defs[2].rate_bps = 2e6;
  defs[2].on_s = 0.05;
  defs[2].off_s = 0.02;
  defs[2].phb = qos::Phb::kAf21;
  defs[2].dst_port = 5004;
  defs[2].start = sim::from_seconds(0.02);

  const MixResult legacy = run_mix(7101, defs, 2.0, true);
  const MixResult flowset = run_mix(7101, defs, 2.0, false);
  EXPECT_EQ(legacy.sent, flowset.sent);
  ASSERT_EQ(legacy.log.size(), flowset.log.size());
  EXPECT_TRUE(legacy.log == flowset.log);
  // Sanity: the comparison covered real traffic from every source kind.
  EXPECT_GT(legacy.log.size(), 500u);
  for (std::uint64_t sent : legacy.sent) EXPECT_GT(sent, 50u);
}

TEST(FlowSet, OnOffResidueMatchesLegacyBurstBookkeeping) {
  // One on/off flow over enough sim time for hundreds of burst cycles: the
  // SoA packets-remaining residue must reproduce the legacy
  // `burst_remaining_` time-residue arithmetic draw for draw — same RNG
  // consumption, same emission instants, same per-burst packet counts.
  std::vector<FlowSet::FlowDef> defs(1);
  defs[0].flow_id = 11;
  defs[0].kind = FlowSet::Kind::kOnOff;
  defs[0].rate_bps = 2e6;
  defs[0].on_s = 0.03;
  defs[0].off_s = 0.01;

  const MixResult legacy = run_mix(7102, defs, 30.0, true);
  const MixResult flowset = run_mix(7102, defs, 30.0, false);
  EXPECT_EQ(legacy.sent, flowset.sent);
  EXPECT_GT(legacy.sent.at(0), 5000u);  // many bursts, many residue cycles
  ASSERT_EQ(legacy.log.size(), flowset.log.size());
  EXPECT_TRUE(legacy.log == flowset.log);
}

TEST(FlowSet, StateStaysUnder64BytesPerFlow) {
  Figure2Scenario s = make_figure2_scenario(7103);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  sim::Scheduler& sched = s.backbone->topo.scheduler();
  FlowSet fs(sched, &probe, s.backbone->topo.seed());
  const std::uint32_t a =
      fs.add_site(*s.v1_site1.ce, ip::Ipv4Address::must_parse("10.1.0.1"));
  const std::uint32_t b =
      fs.add_site(*s.v1_site2.ce, ip::Ipv4Address::must_parse("10.2.0.1"));
  constexpr std::uint32_t kFlows = 10'000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    FlowSet::FlowDef d;
    d.flow_id = i + 1;
    d.from_site = a;
    d.to_site = b;
    d.kind = i % 3 == 0   ? FlowSet::Kind::kCbr
             : i % 3 == 1 ? FlowSet::Kind::kPoisson
                          : FlowSet::Kind::kOnOff;
    d.rate_bps = 1e4 + i;  // distinct intervals, shared template
    d.vpn = s.vpn1;
    fs.add_flow(d);
  }
  fs.run(sched.now() + sim::kSecond);
  EXPECT_EQ(fs.flow_count(), kFlows);
  // The tentpole budget: ≤64 B of SoA state per flow, 16 B per calendar
  // entry, regardless of how the build-time vectors grew.
  EXPECT_LE(fs.state_bytes_per_flow(), 64.0);
  EXPECT_EQ(fs.calendar_bytes(), kFlows * 16u);
}

TEST(MeasurementSink, DenseTableHandlesSparseAndUnknownFlowIds) {
  net::Topology topo;
  qos::SlaProbe probe;
  MeasurementSink sink(probe, topo.scheduler());
  sink.expect_flow(5, qos::Phb::kEf, 3);
  auto deliver = [&](std::uint32_t fid, vpn::VpnId truth, vpn::VpnId ctx) {
    auto p = topo.packet_factory().make();
    p->flow_id = fid;
    p->true_vpn_id = truth;
    sink.on_delivery(*p, ctx);
  };
  deliver(5, 3, 3);     // expected flow, right VPN
  deliver(3, 3, 3);     // gap inside the table → unknown
  deliver(9999, 3, 3);  // far past the table → unknown, no resize, no crash
  deliver(5, 3, 4);     // wrong VPN context → leak, counted before flows
  EXPECT_EQ(sink.delivered(), 4u);
  EXPECT_EQ(sink.unknown_flows(), 2u);
  EXPECT_EQ(sink.leaks(), 1u);
}

TEST(FlowDispatcher, DefaultRoutesUnclaimedDeliveriesToSink) {
  // Regression for the mixed cbr+tcp accounting hole: packets whose flow has
  // no dispatcher registration must still reach the MeasurementSink via the
  // default handler instead of being silently dropped.
  net::Topology topo;
  auto& r = topo.add_node<vpn::Router>("r", vpn::Role::kCe);
  r.add_local_prefix(ip::Prefix::must_parse("10.0.0.0/8"));
  qos::SlaProbe probe;
  MeasurementSink sink(probe, topo.scheduler());
  sink.expect_flow(8, qos::Phb::kBe, vpn::kGlobalVpn);
  FlowDispatcher dispatch;
  dispatch.attach(r);
  int claimed = 0;
  dispatch.register_flow(7, [&](const net::Packet&, vpn::VpnId) { ++claimed; });
  dispatch.set_default([&sink](const net::Packet& p, vpn::VpnId vpn) {
    sink.on_delivery(p, vpn);
  });
  for (std::uint32_t id : {7u, 8u, 9u}) {
    auto p = topo.packet_factory().make();
    p->flow_id = id;
    p->ip.dst = ip::Ipv4Address::must_parse("10.0.0.1");
    r.inject(std::move(p));
  }
  EXPECT_EQ(claimed, 1);
  EXPECT_EQ(sink.delivered(), 2u);      // flows 8 and 9 fell through
  EXPECT_EQ(sink.unknown_flows(), 1u);  // 9 had no expectation
  EXPECT_EQ(sink.leaks(), 0u);
}

struct TcpFixture {
  Figure2Scenario s;
  FlowDispatcher at_site1;
  FlowDispatcher at_site2;

  explicit TcpFixture(std::uint64_t seed) : s(make_figure2_scenario(seed)) {
    s.backbone->start_and_converge();
    at_site1.attach(*s.v1_site1.ce);
    at_site2.attach(*s.v1_site2.ce);
  }

  TcpLiteFlow::Config config() const {
    TcpLiteFlow::Config c;
    c.src = ip::Ipv4Address::must_parse("10.1.0.1");
    c.dst = ip::Ipv4Address::must_parse("10.2.0.1");
    c.vpn = s.vpn1;
    return c;
  }
};

TEST(TcpLite, CompletesCleanTransferWithoutRetransmits) {
  TcpFixture f(104);
  TcpLiteFlow::Config cfg = f.config();
  cfg.total_segments = 200;
  TcpLiteFlow flow(*f.s.v1_site1.ce, f.at_site1, *f.s.v1_site2.ce,
                   f.at_site2, 1, cfg);
  flow.start(0);
  f.s.backbone->topo.run_until(20 * sim::kSecond);
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.bytes_acked(), 200u * cfg.mss_payload);
  EXPECT_EQ(flow.retransmits(), 0u);
  EXPECT_EQ(flow.timeouts(), 0u);
  EXPECT_GT(flow.completed_at(), 0);
}

TEST(TcpLite, SlowStartGrowsWindow) {
  TcpFixture f(105);
  TcpLiteFlow::Config cfg = f.config();
  cfg.total_segments = 100;
  cfg.initial_cwnd = 2.0;
  TcpLiteFlow flow(*f.s.v1_site1.ce, f.at_site1, *f.s.v1_site2.ce,
                   f.at_site2, 1, cfg);
  flow.start(0);
  f.s.backbone->topo.run_until(20 * sim::kSecond);
  EXPECT_TRUE(flow.complete());
  EXPECT_GT(flow.cwnd(), 10.0);  // grew far beyond the initial window
}

TEST(TcpLite, AdaptsToBottleneckAndRecovers) {
  // Congest a 2 Mb/s core with two competing elastic flows.
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.core_bw_bps = 2e6;
  cfg.edge_bw_bps = 20e6;
  cfg.seed = 106;
  backbone::MplsBackbone bb(cfg);
  // RED on the core links: drop-tail would phase-lock the two identical
  // flows into lockout (the very pathology RED was designed to break).
  for (std::size_t l = 0; l < bb.topo.link_count(); ++l) {
    net::Link& link = bb.topo.link(l);
    qos::RedParams red;
    red.capacity_packets = 100;
    red.min_th = 15;
    red.max_th = 60;
    red.bandwidth_bps = cfg.core_bw_bps;
    link.set_queue_from(link.end_a().node,
                        std::make_unique<qos::RedQueueDisc>(
                            red, bb.topo.scheduler(), sim::Rng(l + 1)));
    link.set_queue_from(link.end_b().node,
                        std::make_unique<qos::RedQueueDisc>(
                            red, bb.topo.scheduler(), sim::Rng(l + 100)));
  }
  const vpn::VpnId v = bb.service.create_vpn("V");
  auto a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();
  FlowDispatcher at_a;
  FlowDispatcher at_b;
  at_a.attach(*a.ce);
  at_b.attach(*b.ce);

  TcpLiteFlow::Config c1;
  c1.src = ip::Ipv4Address::must_parse("10.1.0.1");
  c1.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  c1.vpn = v;
  TcpLiteFlow::Config c2 = c1;
  c2.src = ip::Ipv4Address::must_parse("10.1.0.2");
  c2.dst = ip::Ipv4Address::must_parse("10.2.0.2");
  c2.src_port = 30001;

  TcpLiteFlow f1(*a.ce, at_a, *b.ce, at_b, 1, c1);
  TcpLiteFlow f2(*a.ce, at_a, *b.ce, at_b, 2, c2);
  const sim::SimTime t0 = bb.topo.scheduler().now();
  f1.start(t0);
  f2.start(t0 + 37 * sim::kMillisecond);  // decorrelate the slow starts
  const double duration = 10.0;
  bb.topo.scheduler().schedule_at(t0 + sim::from_seconds(duration), [&] {
    f1.stop();
    f2.stop();
  });
  bb.topo.run_until(t0 + sim::from_seconds(duration + 2.0));

  const double g1 = f1.goodput_bps(duration);
  const double g2 = f2.goodput_bps(duration);
  // Combined goodput ≈ bottleneck (headers cost a few %); congestion was
  // real (losses → retransmits), and the split is roughly fair.
  EXPECT_GT(g1 + g2, 1.4e6);
  EXPECT_LT(g1 + g2, 2.05e6);
  EXPECT_GT(f1.retransmits() + f2.retransmits(), 0u);
  // Short-run Reno fairness is noisy; require same order of magnitude.
  EXPECT_LT(std::max(g1, g2) / std::min(g1, g2), 6.0);
}

TEST(TcpLite, ElasticYieldsToPriorityVoice) {
  // EF voice + greedy TCP on a priority-queued core: voice is untouched,
  // TCP soaks up the rest.
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.core_bw_bps = 2e6;
  cfg.edge_bw_bps = 20e6;
  cfg.seed = 107;
  cfg.core_queue = [] {
    return std::make_unique<qos::PriorityQueueDisc>(
        3, 100, qos::ef_af_be_selector());
  };
  backbone::MplsBackbone bb(cfg);
  const vpn::VpnId v = bb.service.create_vpn("V");
  auto a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  auto classifier = std::make_unique<qos::CbqClassifier>();
  qos::MatchRule voice_rule;
  voice_rule.dst_port = qos::PortRange::exactly(16400);
  voice_rule.mark = qos::Phb::kEf;
  classifier->add_rule(voice_rule);
  a.ce->set_classifier(std::move(classifier));

  FlowDispatcher at_a;
  FlowDispatcher at_b;
  at_a.attach(*a.ce);
  at_b.attach(*b.ce);

  qos::SlaProbe voice_probe;
  traffic::FlowSpec voice;
  voice.src = ip::Ipv4Address::must_parse("10.1.0.1");
  voice.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  voice.dst_port = 16400;
  voice.payload_bytes = 172;
  voice.vpn = v;
  voice.phb = qos::Phb::kEf;
  CbrSource voice_src(*a.ce, voice, 9, &voice_probe, 200e3);
  at_b.register_flow(9, [&](const net::Packet& p, vpn::VpnId) {
    voice_probe.record_delivered(qos::Phb::kEf, 9,
                                 bb.topo.scheduler().now() - p.created_at,
                                 p.payload_bytes + 28);
  });

  TcpLiteFlow::Config c;
  c.src = ip::Ipv4Address::must_parse("10.1.0.2");
  c.dst = ip::Ipv4Address::must_parse("10.2.0.2");
  c.vpn = v;
  TcpLiteFlow bulk(*a.ce, at_a, *b.ce, at_b, 1, c);

  const sim::SimTime t0 = bb.topo.scheduler().now();
  voice_src.run(t0, t0 + 5 * sim::kSecond);
  bulk.start(t0);
  bb.topo.scheduler().schedule_at(t0 + 5 * sim::kSecond,
                                  [&] { bulk.stop(); });
  bb.topo.run_until(t0 + 7 * sim::kSecond);

  const auto& ef = voice_probe.report(qos::Phb::kEf);
  EXPECT_LT(ef.loss_fraction(), 0.01);
  EXPECT_LT(ef.latency_s.percentile(99), 0.030);
  // The elastic flow still moved real data through the leftover capacity.
  EXPECT_GT(bulk.goodput_bps(5.0), 1e6);
}

}  // namespace
}  // namespace mvpn::traffic
