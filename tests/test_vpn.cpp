#include <gtest/gtest.h>

#include "backbone/fixtures.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"
#include "vpn/diagnostics.hpp"
#include "vpn/directory.hpp"
#include "vpn/oam.hpp"

namespace mvpn::vpn {
namespace {

using backbone::Figure2Scenario;
using backbone::make_figure2_scenario;

TEST(Vrf, ImportPolicyByRouteTarget) {
  VrfConfig cfg;
  cfg.vpn_id = 1;
  cfg.rd = routing::RouteDistinguisher{65000, 1};
  cfg.import_targets = {routing::RouteTarget{65000, 1},
                        routing::RouteTarget{65000, 7}};
  Vrf vrf(cfg);
  routing::VpnRoute r;
  r.route_targets = {routing::RouteTarget{65000, 7}};
  EXPECT_TRUE(vrf.imports(r));
  r.route_targets = {routing::RouteTarget{65000, 2}};
  EXPECT_FALSE(vrf.imports(r));
  EXPECT_EQ(vrf.vpn_id(), 1u);
}

TEST(Router, RolesAndVrfRestrictions) {
  net::Topology topo;
  auto& ce = topo.add_node<Router>("ce", Role::kCe);
  auto& pe = topo.add_node<Router>("pe", Role::kPe);
  EXPECT_EQ(ce.role(), Role::kCe);
  EXPECT_STREQ(to_string(Role::kPe), "PE");
  VrfConfig cfg;
  cfg.vpn_id = 1;
  EXPECT_THROW(ce.add_vrf(cfg), std::logic_error);
  Vrf& v = pe.add_vrf(cfg);
  EXPECT_EQ(pe.vrf_count(), 1u);
  EXPECT_EQ(pe.vrf_by_vpn(1), &v);
  EXPECT_EQ(pe.vrf_by_vpn(9), nullptr);
  EXPECT_THROW(pe.bind_interface_to_vrf(0, 9), std::invalid_argument);
}

TEST(Router, LocalPrefixDeliversToSink) {
  net::Topology topo;
  auto& r = topo.add_node<Router>("r", Role::kCe);
  r.add_local_prefix(ip::Prefix::must_parse("10.1.0.0/16"), 5);
  int delivered = 0;
  VpnId seen_vpn = 0;
  r.set_local_sink([&](const net::Packet&, VpnId vpn) {
    ++delivered;
    seen_vpn = vpn;
  });
  auto p = topo.packet_factory().make();
  p->ip.dst = ip::Ipv4Address::must_parse("10.1.2.3");
  r.inject(std::move(p));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(seen_vpn, 5u);
  EXPECT_EQ(r.counters().delivered.value(), 1u);
}

TEST(Router, NoRouteCountsDrop) {
  net::Topology topo;
  auto& r = topo.add_node<Router>("r", Role::kCe);
  auto p = topo.packet_factory().make();
  p->ip.dst = ip::Ipv4Address::must_parse("99.99.99.99");
  r.inject(std::move(p));
  EXPECT_EQ(r.counters().no_route.value(), 1u);
}

TEST(Router, TtlExpiryDrops) {
  net::Topology topo;
  auto& a = topo.add_node<Router>("a", Role::kCe);
  auto& b = topo.add_node<Router>("b", Role::kCe);
  topo.connect(a.id(), b.id());
  ip::RouteEntry e;
  e.prefix = ip::Prefix::must_parse("0.0.0.0/0");
  e.next_hop.node = b.id();
  e.next_hop.iface = 0;
  a.fib().install(e);
  auto p = topo.packet_factory().make();
  p->ip.dst = ip::Ipv4Address::must_parse("99.0.0.1");
  p->ip.ttl = 1;
  a.inject(std::move(p));
  EXPECT_EQ(a.counters().ttl_expired.value(), 1u);
}

TEST(Router, ShaperSmoothsEdgeTraffic) {
  Figure2Scenario s = make_figure2_scenario(19);
  s.backbone->start_and_converge();
  // Premarked AF11 flow offered at 2 Mb/s, shaped to 1 Mb/s at the CE.
  s.v1_site1.ce->add_shaper(qos::Phb::kAf11, 1e6 / 8, 1500);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  f.phb = qos::Phb::kAf11;
  f.premark = true;
  traffic::CbrSource src(*s.v1_site1.ce, f, 1, &probe, 2e6);
  sink.expect_flow(1, qos::Phb::kAf11, s.vpn1);
  const sim::SimTime t0 = s.backbone->topo.scheduler().now();
  src.run(t0, t0 + 2 * sim::kSecond);
  s.backbone->topo.run_until(t0 + 6 * sim::kSecond);

  const auto& r = probe.report(qos::Phb::kAf11);
  // Nothing is dropped (shaping, not policing)...
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.0);
  // ...but delivery is paced at the shaped rate: the 2 s of offered
  // traffic takes ~4 s to drain, so goodput over the drain interval is
  // ~1 Mb/s and the tail packets waited ~2 s.
  EXPECT_NEAR(r.goodput_bps(4.0), 1e6, 0.1e6);
  EXPECT_GT(r.latency_s.max(), 1.5);
}

TEST(Router, LabelTtlExpiryDrops) {
  net::Topology topo;
  auto& a = topo.add_node<Router>("a", Role::kP);
  auto& b = topo.add_node<Router>("b", Role::kP);
  topo.connect(a.id(), b.id());
  mpls::MplsDomain domain;
  a.set_lsr_state(&domain.state_of(a.id()));
  mpls::LfibEntry e;
  e.in_label = 16;
  e.op = mpls::LabelOp::kSwap;
  e.out_label = 17;
  e.next_hop = b.id();
  e.out_iface = 0;
  domain.state_of(a.id()).lfib.install(e);

  auto p = topo.packet_factory().make();
  p->push_label(net::MplsShim{16, 0, 1});  // TTL 1: dies at the swap
  a.receive(std::move(p), 0);
  EXPECT_EQ(a.counters().ttl_expired.value(), 1u);

  auto p2 = topo.packet_factory().make();
  p2->push_label(net::MplsShim{99, 0, 64});  // unknown label
  a.receive(std::move(p2), 0);
  EXPECT_EQ(a.counters().label_miss.value(), 1u);
}

TEST(Router, ClassifierAndPolicerAtEdge) {
  net::Topology topo;
  auto& ce = topo.add_node<Router>("ce", Role::kCe);
  ce.add_local_prefix(ip::Prefix::must_parse("10.0.0.0/8"));

  auto classifier = std::make_unique<qos::CbqClassifier>();
  qos::MatchRule rule;
  rule.dst_port = qos::PortRange::exactly(4000);
  rule.mark = qos::Phb::kAf11;
  classifier->add_rule(rule);
  ce.set_classifier(std::move(classifier));
  // CIR 1 kB/s, CBS 600 B, EBS 600 B: second packet yellow, third red.
  ce.add_policer(qos::Phb::kAf11, 1000.0, 600.0, 600.0);

  std::vector<std::uint8_t> dscps;
  ce.set_local_sink([&](const net::Packet& p, VpnId) {
    dscps.push_back(p.ip.dscp);
  });
  for (int i = 0; i < 3; ++i) {
    auto p = topo.packet_factory().make();
    p->ip.dst = ip::Ipv4Address::must_parse("10.0.0.1");
    p->l4.dst_port = 4000;
    p->payload_bytes = 472;  // 500 B on the wire
    ce.inject(std::move(p));
  }
  ASSERT_EQ(dscps.size(), 2u);  // red packet dropped at the edge
  EXPECT_EQ(dscps[0], qos::dscp_of(qos::Phb::kAf11));
  EXPECT_EQ(dscps[1], qos::dscp_of(qos::Phb::kAf12));  // yellow remarked
  EXPECT_EQ(ce.counters().policed.value(), 1u);
}

// --- Figure-level behaviour (paper Figs. 2-4) -------------------------------

TEST(Figure2, AnyToAnyWithinVpnAndIsolationAcross) {
  Figure2Scenario s = make_figure2_scenario(11);
  s.backbone->start_and_converge();

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  sink.bind(*s.v2_site2.ce);

  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  f.phb = qos::Phb::kBe;
  traffic::CbrSource v1(*s.v1_site1.ce, f, 1, &probe, 500e3);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);

  traffic::FlowSpec g = f;
  g.vpn = s.vpn2;
  traffic::CbrSource v2(*s.v2_site1.ce, g, 2, &probe, 500e3);
  sink.expect_flow(2, qos::Phb::kBe, s.vpn2);

  v1.run(0, sim::kSecond);
  v2.run(0, sim::kSecond);
  s.backbone->topo.run_until(3 * sim::kSecond);

  EXPECT_GT(sink.delivered(), 0u);
  EXPECT_EQ(sink.leaks(), 0u);
  EXPECT_EQ(sink.unknown_flows(), 0u);
  EXPECT_EQ(v1.packets_sent() + v2.packets_sent(), sink.delivered());
}

TEST(Figure3, CeRoutersNeedNoVpnState) {
  Figure2Scenario s = make_figure2_scenario(12);
  s.backbone->start_and_converge();
  // The paper's edge-simplicity claim: CEs carry no VRFs, no LFIB, no BGP
  // state — a default route is all they hold beyond their site prefix.
  for (Router* ce : s.backbone->ces()) {
    EXPECT_EQ(ce->vrf_count(), 0u);
    EXPECT_EQ(ce->lsr_state(), nullptr);
    EXPECT_LE(ce->fib().size(), 2u);  // site prefix + default
  }
  // PEs, by contrast, hold the VPN intelligence.
  EXPECT_GT(s.backbone->pe(0).vrf_count(), 0u);
}

TEST(Figure4, LabeledInCoreUnlabeledAtEdgesWithPhp) {
  Figure2Scenario s = make_figure2_scenario(13);
  s.backbone->start_and_converge();

  // Trace the label stack hop by hop (Fig. 4: labeled path inside the
  // backbone, unlabeled outside).
  std::map<ip::NodeId, std::size_t> labels_seen;
  s.backbone->topo.add_packet_tap(
      [&](ip::NodeId at, const net::Packet& p) {
        if (p.flow_id == 42) labels_seen[at] = p.labels.size();
      });

  auto p = s.backbone->topo.packet_factory().make();
  p->flow_id = 42;
  p->true_vpn_id = s.vpn1;
  p->ip.src = ip::Ipv4Address::must_parse("10.1.0.1");
  p->ip.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  p->payload_bytes = 100;
  int delivered = 0;
  s.v1_site2.ce->set_local_sink(
      [&](const net::Packet&, VpnId) { ++delivered; });
  s.v1_site1.ce->inject(std::move(p));
  s.backbone->topo.scheduler().run();

  ASSERT_EQ(delivered, 1);
  const ip::NodeId pe0 = s.backbone->pe(0).id();
  const ip::NodeId p0 = s.backbone->p(0).id();
  const ip::NodeId pe1 = s.backbone->pe(1).id();
  const ip::NodeId ce_dst = s.v1_site2.ce->id();
  // CE→PE0 unlabeled; PE0→P0 has [tunnel, vpn]; P0 pops (PHP) so PE1 sees
  // only the VPN label; PE1→CE unlabeled again.
  EXPECT_EQ(labels_seen.at(pe0), 0u);
  EXPECT_EQ(labels_seen.at(p0), 2u);
  EXPECT_EQ(labels_seen.at(pe1), 1u);
  EXPECT_EQ(labels_seen.at(ce_dst), 0u);
}

TEST(Router, CustomExpMapShowsInImposedLabels) {
  Figure2Scenario s = make_figure2_scenario(23);
  s.backbone->start_and_converge();
  // Non-default edge policy: EF rides EXP 7 instead of 5.
  qos::DscpExpMap custom;
  custom.set(qos::Phb::kEf, 7);
  s.backbone->pe(0).set_dscp_exp_map(custom);

  std::uint8_t seen_exp = 0xFF;
  s.backbone->topo.add_packet_tap(
      [&](ip::NodeId at, const net::Packet& p) {
        if (at == s.backbone->p(0).id() && p.has_labels()) {
          seen_exp = p.top_label().exp;
        }
      });
  auto p = s.backbone->topo.packet_factory().make();
  p->true_vpn_id = s.vpn1;
  p->ip.src = ip::Ipv4Address::must_parse("10.1.0.1");
  p->ip.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  p->ip.dscp = qos::dscp_of(qos::Phb::kEf);
  s.v1_site1.ce->inject(std::move(p));
  s.backbone->topo.scheduler().run();
  EXPECT_EQ(seen_exp, 7);
}

TEST(Diagnostics, TraceRouteShowsLabelJourney) {
  Figure2Scenario s = make_figure2_scenario(16);
  s.backbone->start_and_converge();
  const TraceResult trace = trace_route(
      s.backbone->topo, *s.v1_site1.ce,
      ip::Ipv4Address::must_parse("10.1.0.1"),
      ip::Ipv4Address::must_parse("10.2.0.1"));
  ASSERT_TRUE(trace.delivered);
  EXPECT_EQ(trace.delivered_vpn, s.vpn1);
  EXPECT_GT(trace.latency, 0);
  // CE0 → PE0 → P0 → PE1 → CE (5 observation points incl. ingress).
  ASSERT_EQ(trace.hops.size(), 5u);
  EXPECT_EQ(trace.hops[2].labels.size(), 2u);  // core: [tunnel, vpn]
  EXPECT_EQ(trace.hops[3].labels.size(), 1u);  // after PHP: [vpn]
  EXPECT_TRUE(trace.hops[4].labels.empty());
  const std::string text = trace.to_string();
  EXPECT_NE(text.find("delivered"), std::string::npos);
  EXPECT_NE(text.find("P0["), std::string::npos);
}

TEST(Diagnostics, TraceRouteReportsLostProbe) {
  Figure2Scenario s = make_figure2_scenario(17);
  s.backbone->start_and_converge();
  const TraceResult trace = trace_route(
      s.backbone->topo, *s.v1_site1.ce,
      ip::Ipv4Address::must_parse("10.1.0.1"),
      ip::Ipv4Address::must_parse("99.99.99.99"),  // no such destination
      0, 100 * sim::kMillisecond);
  EXPECT_FALSE(trace.delivered);
  EXPECT_NE(trace.to_string().find("LOST"), std::string::npos);
}

TEST(Diagnostics, DescribeTablesShowsOperationalState) {
  Figure2Scenario s = make_figure2_scenario(18);
  s.backbone->start_and_converge();
  const std::string pe = describe_tables(s.backbone->pe(0));
  EXPECT_NE(pe.find("vrf \"V1\""), std::string::npos);
  EXPECT_NE(pe.find("lfib"), std::string::npos);
  EXPECT_NE(pe.find("rd 65000:1"), std::string::npos);
  const std::string ce = describe_tables(*s.v1_site1.ce);
  EXPECT_NE(ce.find("global table"), std::string::npos);
  EXPECT_EQ(ce.find("vrf"), std::string::npos);  // CE has no VRFs
}

TEST(Service, StateAccountingAndMetrics) {
  Figure2Scenario s = make_figure2_scenario(14);
  s.backbone->start_and_converge();
  auto& svc = s.backbone->service;
  EXPECT_EQ(svc.vpn_count(), 2u);
  EXPECT_EQ(svc.site_count(s.vpn1), 2u);
  EXPECT_EQ(svc.total_vrf_count(), 4u);   // 2 VPNs × 2 PEs
  // Each VRF: its connected site + the imported remote site.
  EXPECT_EQ(svc.total_vrf_routes(), 8u);
  EXPECT_EQ(svc.total_bgp_loc_rib(), 8u);  // 4 routes × 2 PEs
  EXPECT_EQ(svc.rd_of(s.vpn1).to_string(), "65000:1");
  EXPECT_EQ(svc.name_of(s.vpn1), "V1");
}

TEST(Service, RemoveSiteWithdrawsReachability) {
  Figure2Scenario s = make_figure2_scenario(15);
  s.backbone->start_and_converge();
  auto& svc = s.backbone->service;
  Router& pe1 = s.backbone->pe(1);

  // PE0's V1 VRF currently has the remote 10.2/16 route.
  Vrf* vrf_at_pe0 = s.backbone->pe(0).vrf_by_vpn(s.vpn1);
  ASSERT_NE(vrf_at_pe0, nullptr);
  ASSERT_NE(vrf_at_pe0->table().lookup(
                ip::Ipv4Address::must_parse("10.2.0.1")),
            nullptr);

  svc.remove_site(s.vpn1, pe1, ip::Prefix::must_parse("10.2.0.0/16"));
  svc.converge();
  EXPECT_EQ(
      vrf_at_pe0->table().lookup(ip::Ipv4Address::must_parse("10.2.0.1")),
      nullptr);
  EXPECT_EQ(svc.site_count(s.vpn1), 1u);
}

TEST(Service, ExtranetImportCrossesVpns) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  backbone::MplsBackbone bb(cfg);
  const VpnId v1 = bb.service.create_vpn("corp");
  const VpnId v2 = bb.service.create_vpn("partner");
  // corp imports partner's exports (one-way extranet).
  bb.service.add_extranet_import(v1, v2);
  bb.add_site(v1, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.add_site(v2, 1, ip::Prefix::must_parse("192.168.0.0/16"));
  bb.start_and_converge();

  Vrf* corp = bb.pe(0).vrf_by_vpn(v1);
  ASSERT_NE(corp, nullptr);
  // The partner site is visible inside corp's VRF...
  EXPECT_NE(
      corp->table().lookup(ip::Ipv4Address::must_parse("192.168.1.1")),
      nullptr);
  // ...but not vice versa (one-way policy).
  Vrf* partner = bb.pe(1).vrf_by_vpn(v2);
  ASSERT_NE(partner, nullptr);
  EXPECT_EQ(partner->table().lookup(ip::Ipv4Address::must_parse("10.1.0.1")),
            nullptr);
}

TEST(Service, SiteJoinAfterStartPropagates) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  backbone::MplsBackbone bb(cfg);
  const VpnId v = bb.service.create_vpn("dyn");
  bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.start_and_converge();

  // Discovery (§4.1): a site joining later becomes known to all members.
  bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.service.converge();
  Vrf* at_pe0 = bb.pe(0).vrf_by_vpn(v);
  ASSERT_NE(at_pe0, nullptr);
  EXPECT_NE(at_pe0->table().lookup(ip::Ipv4Address::must_parse("10.2.0.1")),
            nullptr);
}

TEST(MembershipDirectory, NotifiesMembersScopedPerVpn) {
  net::Topology topo(5);
  // Server + 4 PEs (plain nodes; the directory is control-plane only).
  std::vector<Router*> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(&topo.add_node<Router>("n" + std::to_string(i),
                                           Role::kPe));
  }
  routing::ControlPlane cp(topo);
  MembershipDirectory dir(cp, nodes[0]->id());

  struct Event {
    ip::NodeId at;
    VpnId vpn;
    ip::NodeId who;
    bool joined;
  };
  std::vector<Event> events;
  dir.on_notify([&](ip::NodeId at, VpnId vpn,
                    const MembershipDirectory::Attachment& who, bool joined) {
    events.push_back(Event{at, vpn, who.pe, joined});
  });

  dir.register_site(1, nodes[1]->id(), ip::Prefix::must_parse("10.1.0.0/16"));
  topo.scheduler().run();
  EXPECT_TRUE(events.empty());  // first member: nobody to notify
  EXPECT_EQ(dir.member_count(1), 1u);

  dir.register_site(1, nodes[2]->id(), ip::Prefix::must_parse("10.2.0.0/16"));
  dir.register_site(2, nodes[3]->id(), ip::Prefix::must_parse("10.1.0.0/16"));
  topo.scheduler().run();
  // VPN 1's join produced exactly two notifications (existing member and
  // newcomer replay); VPN 2's first member produced none — and crucially,
  // no event about VPN 1 ever reached the VPN-2-only PE.
  ASSERT_EQ(events.size(), 2u);
  for (const Event& e : events) {
    EXPECT_EQ(e.vpn, 1u);
    EXPECT_NE(e.at, nodes[3]->id());
    EXPECT_TRUE(e.joined);
  }
  EXPECT_EQ(dir.member_count(2), 1u);

  events.clear();
  dir.deregister_site(1, nodes[1]->id(),
                      ip::Prefix::must_parse("10.1.0.0/16"));
  topo.scheduler().run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].joined);
  EXPECT_EQ(events[0].at, nodes[2]->id());
  EXPECT_EQ(dir.member_count(1), 1u);
  EXPECT_GT(dir.notifications_sent(), 0u);
  EXPECT_EQ(dir.registrations(), 4u);
}

/// Minimal LSR chain for OAM: a — b — c with a TE LSP a→c.
struct OamFixture {
  net::Topology topo{7};
  routing::ControlPlane cp{topo};
  routing::Igp igp{cp};
  mpls::MplsDomain domain;
  mpls::RsvpTe rsvp{cp, igp, domain};
  Router* a;
  Router* b;
  Router* c;
  net::LinkId ab = net::kInvalidLink;
  net::LinkId bc = net::kInvalidLink;
  mpls::LspId lsp = 0;

  OamFixture() {
    a = &topo.add_node<Router>("a", Role::kP);
    b = &topo.add_node<Router>("b", Role::kP);
    c = &topo.add_node<Router>("c", Role::kP);
    for (Router* r : {a, b, c}) {
      igp.add_router(r->id());
      r->set_lsr_state(&domain.state_of(r->id()));
    }
    ab = topo.connect(a->id(), b->id());
    bc = topo.connect(b->id(), c->id());
    igp.start();
    topo.scheduler().run();
    mpls::TeLspConfig cfg;
    cfg.head = a->id();
    cfg.tail = c->id();
    cfg.bandwidth_bps = 1e6;
    lsp = rsvp.signal(cfg);
    topo.scheduler().run();
  }
};

TEST(LspOam, PingSucceedsOverHealthyLsp) {
  OamFixture f;
  ASSERT_EQ(f.rsvp.lsp(f.lsp).state, mpls::RsvpTe::LspState::kUp);
  LspOam oam(f.topo, f.cp, f.rsvp);
  bool got = false;
  bool ok = false;
  sim::SimTime rtt = 0;
  oam.ping(f.lsp, [&](bool o, sim::SimTime r) {
    got = true;
    ok = o;
    rtt = r;
  });
  f.topo.scheduler().run();
  ASSERT_TRUE(got);
  EXPECT_TRUE(ok);
  EXPECT_GT(rtt, 0);
  EXPECT_EQ(oam.probes_sent(), 1u);
  EXPECT_EQ(oam.replies_received(), 1u);
  EXPECT_EQ(oam.failures_detected(), 0u);
}

TEST(LspOam, PingTimesOutOnSilentDataPlaneBreak) {
  OamFixture f;
  LspOam oam(f.topo, f.cp, f.rsvp);
  // Break the forwarding path WITHOUT telling RSVP — the LSP still claims
  // to be up; only a data-plane probe can notice.
  f.topo.link(f.bc).set_up(false);
  ASSERT_EQ(f.rsvp.lsp(f.lsp).state, mpls::RsvpTe::LspState::kUp);
  bool got = false;
  bool ok = true;
  oam.ping(f.lsp, [&](bool o, sim::SimTime) {
    got = true;
    ok = o;
  });
  f.topo.scheduler().run();
  ASSERT_TRUE(got);
  EXPECT_FALSE(ok);
  EXPECT_EQ(oam.failures_detected(), 1u);
}

TEST(LspOam, MonitorDetectsSilentFailureOnce) {
  OamFixture f;
  LspOam oam(f.topo, f.cp, f.rsvp);
  int down_events = 0;
  oam.monitor(f.lsp, 50 * sim::kMillisecond, 3,
              [&](mpls::LspId) { ++down_events; });
  // Healthy for a while...
  f.topo.run_until(f.topo.scheduler().now() + 300 * sim::kMillisecond);
  EXPECT_EQ(down_events, 0);
  // ...then the silent break.
  f.topo.link(f.bc).set_up(false);
  f.topo.run_until(f.topo.scheduler().now() + 400 * sim::kMillisecond);
  EXPECT_EQ(down_events, 1);
  // Deactivated after the down event: no further callbacks, and stopping
  // again is harmless.
  oam.stop_monitoring(f.lsp);
  f.topo.run_until(f.topo.scheduler().now() + 400 * sim::kMillisecond);
  EXPECT_EQ(down_events, 1);
}

TEST(LspOam, PingOnUnsignaledLspFails) {
  OamFixture f;
  mpls::TeLspConfig cfg;
  cfg.head = f.a->id();
  cfg.tail = f.c->id();
  cfg.bandwidth_bps = 1e12;  // cannot be admitted
  const mpls::LspId dead = f.rsvp.signal(cfg);
  f.topo.scheduler().run();
  ASSERT_EQ(f.rsvp.lsp(dead).state, mpls::RsvpTe::LspState::kFailed);
  LspOam oam(f.topo, f.cp, f.rsvp);
  bool ok = true;
  oam.ping(dead, [&](bool o, sim::SimTime) { ok = o; });
  f.topo.scheduler().run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(oam.probes_sent(), 0u);  // nothing could even be imposed
}

TEST(InterAs, ConstructionValidatesAdjacency) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  backbone::MplsBackbone bb1(cfg);
  backbone::MplsBackbone bb2(cfg);
  // PEs of two *different* topologies can never be adjacent — and within
  // one topology, two non-adjacent PEs must be rejected too.
  EXPECT_THROW(
      InterAsPeering(bb1.cp, bb1.service, bb1.pe(0), bb1.service, bb1.pe(1)),
      std::invalid_argument);
}

TEST(Service, BindVrfInterfaceRequiresAdjacency) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  backbone::MplsBackbone bb(cfg);
  const VpnId v = bb.service.create_vpn("x");
  EXPECT_THROW(bb.service.bind_vrf_interface(v, bb.pe(0), 9999),
               std::invalid_argument);
}

TEST(Service, OriginateExternalBeforeStartIsQueued) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  backbone::MplsBackbone bb(cfg);
  const VpnId v = bb.service.create_vpn("x");
  // Give PE1 a VRF so the import lands somewhere observable.
  auto site = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  (void)site;
  bb.service.originate_external(v, bb.pe(0),
                                ip::Prefix::must_parse("192.168.0.0/16"));
  bb.start_and_converge();
  Vrf* vrf = bb.pe(1).vrf_by_vpn(v);
  ASSERT_NE(vrf, nullptr);
  const ip::RouteEntry* r =
      vrf->table().lookup(ip::Ipv4Address::must_parse("192.168.1.1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->egress_pe, bb.pe(0).id());
}

TEST(Overlay, UnreachableSitePairThrowsOnProvision) {
  net::Topology topo;
  routing::ControlPlane cp(topo);
  OverlayVpnService svc(topo, cp);
  auto& a = topo.add_node<Router>("a", Role::kCe);
  auto& b = topo.add_node<Router>("b", Role::kCe);  // no link at all
  const VpnId v = svc.create_vpn("V");
  svc.add_site(v, a, ip::Prefix::must_parse("10.1.0.0/16"));
  svc.add_site(v, b, ip::Prefix::must_parse("10.2.0.0/16"));
  EXPECT_THROW(svc.provision(), std::runtime_error);
}

TEST(Backbone, RandomBackboneDeterministicForSeed) {
  auto a = backbone::make_random_backbone(4, 3, 0.4, 123);
  auto b = backbone::make_random_backbone(4, 3, 0.4, 123);
  EXPECT_EQ(a->topo.link_count(), b->topo.link_count());
  EXPECT_EQ(a->topo.node_count(), b->topo.node_count());
  auto c = backbone::make_random_backbone(4, 3, 0.4, 124);
  EXPECT_EQ(c->topo.node_count(), a->topo.node_count());  // same shape params
}

TEST(Service, AddSiteValidatesAdjacency) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 1;
  backbone::MplsBackbone bb(cfg);
  const VpnId v = bb.service.create_vpn("x");
  auto& orphan_ce = bb.topo.add_node<Router>("orphan", Role::kCe);
  EXPECT_THROW(bb.service.add_site(v, bb.pe(0), orphan_ce,
                                   ip::Prefix::must_parse("10.1.0.0/16")),
               std::invalid_argument);
}

}  // namespace
}  // namespace mvpn::vpn
