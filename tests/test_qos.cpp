#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "qos/admission.hpp"
#include "qos/classifier.hpp"
#include "qos/dscp.hpp"
#include "qos/meter.hpp"
#include "qos/queues.hpp"
#include "qos/sla.hpp"
#include "qos/token_bucket.hpp"

namespace mvpn::qos {
namespace {

net::PacketPtr make_packet(std::uint8_t dscp = 0, std::size_t payload = 472) {
  auto p = net::make_standalone_packet();
  p->ip.src = ip::Ipv4Address::must_parse("10.1.0.1");
  p->ip.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  p->ip.dscp = dscp;
  p->l4.src_port = 5060;
  p->l4.dst_port = 4000;
  p->payload_bytes = payload;
  return p;
}

TEST(Dscp, CodepointsMatchRfc) {
  EXPECT_EQ(dscp_of(Phb::kEf), 46);
  EXPECT_EQ(dscp_of(Phb::kBe), 0);
  EXPECT_EQ(dscp_of(Phb::kAf11), 10);
  EXPECT_EQ(dscp_of(Phb::kAf43), 38);
  EXPECT_EQ(dscp_of(Phb::kCs6), 48);
}

TEST(Dscp, RoundTripAllPhbs) {
  for (int i = 0; i < static_cast<int>(kPhbCount); ++i) {
    const Phb phb = static_cast<Phb>(i);
    EXPECT_EQ(phb_of_dscp(dscp_of(phb)), phb) << to_string(phb);
  }
  EXPECT_EQ(phb_of_dscp(63), Phb::kBe);  // unknown codepoint → default
}

TEST(Dscp, DropPrecedenceAndClass) {
  EXPECT_EQ(drop_precedence(Phb::kAf11), 1u);
  EXPECT_EQ(drop_precedence(Phb::kAf12), 2u);
  EXPECT_EQ(drop_precedence(Phb::kAf13), 3u);
  EXPECT_EQ(drop_precedence(Phb::kEf), 1u);
  EXPECT_EQ(af_class(Phb::kAf32), 3u);
  EXPECT_EQ(af_class(Phb::kEf), 0u);
}

TEST(DscpExpMap, DefaultMapping) {
  DscpExpMap map;
  EXPECT_EQ(map.exp_for_phb(Phb::kEf), 5);
  EXPECT_EQ(map.exp_for_phb(Phb::kBe), 0);
  EXPECT_EQ(map.exp_for_phb(Phb::kAf21), 2);
  EXPECT_EQ(map.exp_for_phb(Phb::kAf23), 2);  // precedence collapses
  EXPECT_EQ(map.exp_for_dscp(46), 5);
  EXPECT_EQ(map.dscp_for_exp(5), 46);
  EXPECT_EQ(map.dscp_for_exp(0), 0);
}

TEST(DscpExpMap, Customizable) {
  DscpExpMap map;
  map.set(Phb::kEf, 7);
  EXPECT_EQ(map.exp_for_phb(Phb::kEf), 7);
  EXPECT_EQ(map.dscp_for_exp(7), 46);
}

TEST(VisibleClassBits, LabeledUsesExp) {
  auto p = make_packet(46);
  EXPECT_EQ(visible_class_bits(*p), 5);  // DSCP-derived
  p->push_label(net::MplsShim{100, 3, 64});
  EXPECT_EQ(visible_class_bits(*p), 3);  // EXP wins once labeled
}

TEST(TokenBucket, ConformsUpToBurstThenRefills) {
  TokenBucket tb(1000.0, 500.0);  // 1000 B/s, 500 B burst
  EXPECT_TRUE(tb.consume(0, 500));
  EXPECT_FALSE(tb.consume(0, 1));
  // After 100 ms: 100 bytes back.
  EXPECT_TRUE(tb.consume(100 * sim::kMillisecond, 100));
  EXPECT_FALSE(tb.consume(100 * sim::kMillisecond, 1));
  // Never exceeds the burst depth.
  EXPECT_DOUBLE_EQ(tb.available(1000 * sim::kSecond), 500.0);
}

TEST(TokenBucket, RejectsBadParams) {
  EXPECT_THROW(TokenBucket(0, 100), std::invalid_argument);
  EXPECT_THROW(TokenBucket(100, 0), std::invalid_argument);
}

TEST(SrTcm, ColorsGreenYellowRed) {
  SrTcmMeter meter(1000.0, 500.0, 500.0);
  EXPECT_EQ(meter.meter(0, 400), Color::kGreen);
  EXPECT_EQ(meter.meter(0, 400), Color::kYellow);  // CBS gone, EBS takes it
  EXPECT_EQ(meter.meter(0, 400), Color::kRed);     // both exhausted
  EXPECT_EQ(meter.green().value(), 1u);
  EXPECT_EQ(meter.yellow().value(), 1u);
  EXPECT_EQ(meter.red().value(), 1u);
}

TEST(Classifier, MatchesOnPortsAndPrefix) {
  CbqClassifier c;
  MatchRule voice;
  voice.name = "voice";
  voice.dst_port = PortRange{4000, 4999};
  voice.mark = Phb::kEf;
  c.add_rule(voice);
  MatchRule bulk;
  bulk.name = "bulk";
  bulk.src = ip::Prefix::must_parse("10.1.0.0/16");
  bulk.mark = Phb::kAf11;
  c.add_rule(bulk);

  auto p = make_packet();
  EXPECT_EQ(c.classify(*p), Phb::kEf);  // first match wins
  p->l4.dst_port = 80;
  EXPECT_EQ(c.classify(*p), Phb::kAf11);
  p->ip.src = ip::Ipv4Address::must_parse("11.0.0.1");
  EXPECT_EQ(c.classify(*p), Phb::kBe);
  EXPECT_EQ(c.hits(0), 1u);
  EXPECT_EQ(c.hits(1), 1u);
  EXPECT_EQ(c.unmatched().value(), 1u);
}

TEST(Classifier, CompiledIndexKeepsFirstMatchTieBreak) {
  // The compiled index splits rules into exact-dst-port buckets and a
  // fallback list (ranges / any-port / port-blind). This test pins the
  // tie-break: when a bucketed rule and a fallback rule both match, the
  // LOWER rule index must win regardless of which list it lives on.
  CbqClassifier c;
  MatchRule range;  // index 0: fallback list (port range)
  range.name = "range";
  range.dst_port = PortRange{4000, 4999};
  range.mark = Phb::kAf21;
  c.add_rule(range);
  MatchRule exact;  // index 1: port bucket 4000
  exact.name = "exact";
  exact.dst_port = PortRange::exactly(4000);
  exact.mark = Phb::kEf;
  c.add_rule(exact);
  EXPECT_EQ(c.fallback_rule_count(), 1u);

  auto p = make_packet();  // dst_port 4000: both rules match
  EXPECT_EQ(c.classify(*p), Phb::kAf21);  // index 0 wins, not the bucket
  EXPECT_EQ(c.hits(0), 1u);
  EXPECT_EQ(c.hits(1), 0u);

  // Mirror image: exact-port rule first, overlapping range second.
  CbqClassifier c2;
  c2.add_rule(exact);  // index 0: bucket
  c2.add_rule(range);  // index 1: fallback
  EXPECT_EQ(c2.classify(*p), Phb::kEf);
  p->l4.dst_port = 4500;  // bucket misses, fallback still matches
  EXPECT_EQ(c2.classify(*p), Phb::kAf21);

  // Mutation bumps the generation (flow caches key off this).
  const std::uint64_t gen = c2.generation();
  MatchRule blind;  // port-blind: fallback
  blind.src = ip::Prefix::must_parse("10.1.0.0/16");
  blind.mark = Phb::kAf11;
  c2.add_rule(blind);
  EXPECT_GT(c2.generation(), gen);
  EXPECT_EQ(c2.fallback_rule_count(), 2u);
}

TEST(Classifier, DecideReportsRuleAndCountsHit) {
  CbqClassifier c;
  MatchRule voice;
  voice.dst_port = PortRange::exactly(4000);
  voice.mark = Phb::kEf;
  c.add_rule(voice);

  auto p = make_packet();
  const CbqClassifier::Decision d = c.decide(visible_fields(*p));
  EXPECT_EQ(d.phb, Phb::kEf);
  EXPECT_EQ(d.rule, 0);
  EXPECT_EQ(c.hits(0), 1u);
  c.count_hit(d.rule);  // cached-decision replay path
  EXPECT_EQ(c.hits(0), 2u);

  p->l4.dst_port = 80;
  const CbqClassifier::Decision miss = c.decide(visible_fields(*p));
  EXPECT_EQ(miss.phb, Phb::kBe);
  EXPECT_EQ(miss.rule, CbqClassifier::kUnmatched);
  EXPECT_EQ(c.unmatched().value(), 1u);
  c.count_hit(CbqClassifier::kUnmatched);
  EXPECT_EQ(c.unmatched().value(), 2u);
}

TEST(Classifier, MarkWritesDscp) {
  CbqClassifier c;
  MatchRule r;
  r.dst_port = PortRange::exactly(4000);
  r.mark = Phb::kEf;
  c.add_rule(r);
  auto p = make_packet();
  EXPECT_EQ(c.mark(*p), Phb::kEf);
  EXPECT_EQ(p->ip.dscp, 46);
}

TEST(Classifier, EncryptionHidesPorts) {
  // The paper's §3 argument: once ESP encapsulates the packet, port-based
  // rules cannot match — classification collapses to best effort.
  CbqClassifier c;
  MatchRule voice;
  voice.dst_port = PortRange{4000, 4999};
  voice.mark = Phb::kEf;
  c.add_rule(voice);

  auto p = make_packet();
  EXPECT_EQ(c.classify(*p), Phb::kEf);

  net::EspEncap esp;
  esp.outer.src = ip::Ipv4Address::must_parse("1.1.1.1");
  esp.outer.dst = ip::Ipv4Address::must_parse("2.2.2.2");
  esp.outer.protocol = net::kProtocolEsp;
  p->esp = esp;
  EXPECT_EQ(c.classify(*p), Phb::kBe);  // rule can no longer see the port
}

TEST(Classifier, OuterHeaderRulesStillMatchEncrypted) {
  CbqClassifier c;
  MatchRule tunnel;
  tunnel.protocol = net::kProtocolEsp;
  tunnel.mark = Phb::kAf21;
  c.add_rule(tunnel);
  auto p = make_packet();
  net::EspEncap esp;
  esp.outer.protocol = net::kProtocolEsp;
  p->esp = esp;
  EXPECT_EQ(c.classify(*p), Phb::kAf21);
  c.mark(*p);
  EXPECT_EQ(p->esp->outer.dscp, dscp_of(Phb::kAf21));
  EXPECT_EQ(p->ip.dscp, 0);  // inner untouched
}

TEST(PriorityQueue, ServesHighBandFirst) {
  PriorityQueueDisc q(3, 10, ef_af_be_selector());
  auto be = make_packet(0);
  auto ef = make_packet(46);
  auto af = make_packet(10);
  q.enqueue(std::move(be));
  q.enqueue(std::move(af));
  q.enqueue(std::move(ef));
  EXPECT_EQ(q.dequeue()->ip.dscp, 46);
  EXPECT_EQ(q.dequeue()->ip.dscp, 10);
  EXPECT_EQ(q.dequeue()->ip.dscp, 0);
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(PriorityQueue, PerBandCapacity) {
  PriorityQueueDisc q(3, 2, ef_af_be_selector());
  EXPECT_TRUE(q.enqueue(make_packet(0)));
  EXPECT_TRUE(q.enqueue(make_packet(0)));
  EXPECT_FALSE(q.enqueue(make_packet(0)));   // BE band full
  EXPECT_TRUE(q.enqueue(make_packet(46)));   // EF band still open
  EXPECT_EQ(q.band_drops(2).packets.value(), 1u);
  EXPECT_EQ(q.band_depth(2), 2u);
  EXPECT_EQ(q.packet_count(), 3u);
}

TEST(DrrQueue, ApproximatesWeightedShares) {
  // Weights 3:1 between two bands of equal-size packets.
  DrrQueueDisc q({3, 1}, 1000,
                 class_band_selector({1, 0, 0, 0, 0, 0, 0, 0}), 500);
  for (int i = 0; i < 200; ++i) {
    q.enqueue(make_packet(10));  // AF → band 0
    q.enqueue(make_packet(0));   // BE → band 1
  }
  int af = 0;
  for (int i = 0; i < 100; ++i) {
    auto p = q.dequeue();
    ASSERT_NE(p, nullptr);
    if (p->ip.dscp == 10) ++af;
  }
  EXPECT_NEAR(af, 75, 5);  // 3:1 share
}

TEST(WfqQueue, WeightedSharesAndOrder) {
  WfqQueueDisc q({4.0, 1.0}, 1000,
                 class_band_selector({1, 0, 0, 0, 0, 0, 0, 0}));
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(10));
    q.enqueue(make_packet(0));
  }
  int af = 0;
  for (int i = 0; i < 100; ++i) {
    auto p = q.dequeue();
    ASSERT_NE(p, nullptr);
    if (p->ip.dscp == 10) ++af;
  }
  EXPECT_NEAR(af, 80, 5);  // 4:1 share
}

TEST(WfqQueue, RejectsNonPositiveWeight) {
  EXPECT_THROW(WfqQueueDisc({1.0, 0.0}, 10, ef_af_be_selector()),
               std::invalid_argument);
}

TEST(LlqQueue, EfStrictButPoliced) {
  sim::Scheduler clock;
  // EF contract: 2000 B/s, 1000 B burst — two 500 B packets conform.
  LlqQueueDisc q({1.0, 3.0, 1.0}, 100, ef_af_be_selector(), 2000.0, 1000.0,
                 clock);
  EXPECT_TRUE(q.enqueue(make_packet(46)));
  EXPECT_TRUE(q.enqueue(make_packet(46)));
  EXPECT_FALSE(q.enqueue(make_packet(46)));  // out of contract → policed
  EXPECT_EQ(q.ef_policed().value(), 1u);
  q.enqueue(make_packet(0));
  q.enqueue(make_packet(10));
  // Strict priority: both EF packets first, regardless of arrival order.
  EXPECT_EQ(q.dequeue()->ip.dscp, 46);
  EXPECT_EQ(q.dequeue()->ip.dscp, 46);
  auto next = q.dequeue();
  ASSERT_NE(next, nullptr);
  EXPECT_NE(next->ip.dscp, 46);
}

TEST(LlqQueue, WfqSharesAmongNonEfBands) {
  sim::Scheduler clock;
  LlqQueueDisc q({1.0, 3.0, 1.0}, 2000, ef_af_be_selector(), 1e9, 1e9,
                 clock);
  for (int i = 0; i < 400; ++i) {
    q.enqueue(make_packet(10));  // AF band, weight 3
    q.enqueue(make_packet(0));   // BE band, weight 1
  }
  int af = 0;
  for (int i = 0; i < 200; ++i) {
    auto p = q.dequeue();
    ASSERT_NE(p, nullptr);
    if (p->ip.dscp == 10) ++af;
  }
  EXPECT_NEAR(af, 150, 10);  // 3:1
}

TEST(LlqQueue, RejectsBadConfig) {
  sim::Scheduler clock;
  EXPECT_THROW(
      LlqQueueDisc({1.0}, 10, ef_af_be_selector(), 100.0, 100.0, clock),
      std::invalid_argument);
  EXPECT_THROW(LlqQueueDisc({1.0, 0.0}, 10, ef_af_be_selector(), 100.0,
                            100.0, clock),
               std::invalid_argument);
}

TEST(RedQueue, IdlePeriodDecaysAverage) {
  sim::Scheduler clock;
  RedParams params;
  params.min_th = 5;
  params.max_th = 20;
  RedQueueDisc q(params, clock, sim::Rng(2));
  for (int i = 0; i < 200; ++i) q.enqueue(make_packet());
  const double avg_busy = q.average_queue();
  EXPECT_GT(avg_busy, 0.0);
  while (q.dequeue() != nullptr) {
  }
  // A long idle period must decay the average before the next arrival.
  clock.schedule_at(10 * sim::kSecond, [] {});
  clock.run();
  q.enqueue(make_packet());
  EXPECT_LT(q.average_queue(), avg_busy * 0.1);
}

TEST(RedQueue, NoDropsBelowMinThreshold) {
  sim::Scheduler clock;
  RedParams params;
  params.min_th = 50;
  RedQueueDisc q(params, clock, sim::Rng(1));
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_EQ(q.early_drops().value(), 0u);
}

TEST(RedQueue, EarlyDropsUnderSustainedLoad) {
  sim::Scheduler clock;
  RedParams params;
  params.capacity_packets = 500;
  params.min_th = 20;
  params.max_th = 60;
  params.max_p = 0.2;
  RedQueueDisc q(params, clock, sim::Rng(7));
  int accepted = 0;
  for (int i = 0; i < 400; ++i) {
    if (q.enqueue(make_packet())) ++accepted;
  }
  EXPECT_GT(q.early_drops().value(), 0u);
  EXPECT_LT(accepted, 400);
  EXPECT_GT(q.average_queue(), 0.0);
}

TEST(WredQueue, HighPrecedenceDropsFirst) {
  sim::Scheduler clock;
  RedParams green;   // generous thresholds
  green.min_th = 60;
  green.max_th = 120;
  green.capacity_packets = 400;
  RedParams yellow = green;
  yellow.min_th = 30;
  yellow.max_th = 60;
  RedParams red = green;
  red.min_th = 5;
  red.max_th = 20;
  red.max_p = 0.5;
  WredQueueDisc q(green, yellow, red, clock, sim::Rng(3));

  int in_drops = 0;
  int out_drops = 0;
  for (int i = 0; i < 300; ++i) {
    if (!q.enqueue(make_packet(dscp_of(Phb::kAf11)))) ++in_drops;
    if (!q.enqueue(make_packet(dscp_of(Phb::kAf13)))) ++out_drops;
  }
  EXPECT_GT(out_drops, in_drops);  // out-of-profile suffers first
}

TEST(BandSelectors, MapClassesToBands) {
  const BandSelector sel = ef_af_be_selector();
  auto p_ef = make_packet(46);
  auto p_af = make_packet(18);
  auto p_be = make_packet(0);
  EXPECT_EQ(sel(*p_ef), 0u);
  EXPECT_EQ(sel(*p_af), 1u);
  EXPECT_EQ(sel(*p_be), 2u);
  // Labeled packets select on EXP regardless of inner DSCP.
  p_be->push_label(net::MplsShim{5, 5, 64});
  EXPECT_EQ(sel(*p_be), 0u);
}

TEST(MultiBandQueue, OutOfRangeBandClampsToLast) {
  // Selector that returns a band beyond the configured count.
  PriorityQueueDisc q(2, 10, [](const net::Packet&) { return 7u; });
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_EQ(q.band_depth(1), 1u);
  EXPECT_EQ(q.byte_count(), 500u);
}

TEST(Shaper, DelaysBeyondBurst) {
  // 1000 B/s, 500 B burst: the first 500 B pass, then 1 B per ms.
  Shaper sh(1000.0, 500.0);
  EXPECT_EQ(sh.reserve(0, 500), 0);                 // inside the burst
  const sim::SimTime d1 = sh.reserve(0, 500);       // must wait
  EXPECT_GT(d1, 0);
  EXPECT_NEAR(sim::to_seconds(d1), 0.5, 0.01);      // backlog of 500 B
  const sim::SimTime d2 = sh.reserve(0, 500);
  EXPECT_NEAR(sim::to_seconds(d2), 1.0, 0.01);      // queued behind d1
}

TEST(Shaper, IdleRestoresBurstAllowance) {
  Shaper sh(1000.0, 500.0);
  EXPECT_EQ(sh.reserve(0, 500), 0);
  // After 2 s idle the burst allowance is back.
  EXPECT_EQ(sh.reserve(2 * sim::kSecond, 500), 0);
}

TEST(Shaper, RejectsBadRate) {
  EXPECT_THROW(Shaper(0.0, 100.0), std::invalid_argument);
}

TEST(Admission, PoolAccounting) {
  AdmissionController ac;
  ac.set_class_pool(Phb::kEf, 1e6);
  EXPECT_TRUE(ac.admit(1, Phb::kEf, 400e3));
  EXPECT_TRUE(ac.admit(2, Phb::kEf, 600e3));
  EXPECT_FALSE(ac.admit(3, Phb::kEf, 1.0));  // pool exhausted
  EXPECT_EQ(ac.rejections().value(), 1u);
  EXPECT_DOUBLE_EQ(ac.reserved(Phb::kEf), 1e6);
  EXPECT_DOUBLE_EQ(ac.available(Phb::kEf), 0.0);
  ac.release(1);
  EXPECT_TRUE(ac.admit(3, Phb::kEf, 400e3));
  EXPECT_EQ(ac.admitted_flows(), 2u);
}

TEST(Admission, UnconfiguredClassRejects) {
  AdmissionController ac;
  EXPECT_FALSE(ac.admit(1, Phb::kAf11, 1.0));
  EXPECT_EQ(ac.rejections().value(), 1u);
}

TEST(Admission, DuplicateFlowAndUnknownRelease) {
  AdmissionController ac;
  ac.set_class_pool(Phb::kEf, 1e6);
  EXPECT_TRUE(ac.admit(1, Phb::kEf, 100e3));
  EXPECT_FALSE(ac.admit(1, Phb::kEf, 100e3));  // double admit
  ac.release(99);                               // no-op
  EXPECT_DOUBLE_EQ(ac.reserved(Phb::kEf), 100e3);
}

TEST(DrrQueue, QuantumSmallerThanPacketStillServes) {
  // Credit accumulates over visits even when quantum*weight < packet.
  DrrQueueDisc q({1, 1}, 100, ef_af_be_selector(), 100);
  q.enqueue(make_packet(0, 472));  // 500 B, quantum 100
  auto p = q.dequeue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(PriorityQueue, CanStarveLowerBands) {
  // The known strict-priority failure mode the LLQ policer exists for.
  PriorityQueueDisc q(3, 1000, ef_af_be_selector());
  for (int i = 0; i < 50; ++i) q.enqueue(make_packet(46));
  q.enqueue(make_packet(0));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(q.dequeue()->ip.dscp, 46);
  }
  EXPECT_EQ(q.dequeue()->ip.dscp, 0);  // only after EF drains completely
}

TEST(SrTcm, BucketsRefillOverTime) {
  SrTcmMeter meter(1000.0, 500.0, 500.0);
  EXPECT_EQ(meter.meter(0, 500), Color::kGreen);
  EXPECT_EQ(meter.meter(0, 500), Color::kYellow);
  // After one second the committed bucket holds 500 bytes again.
  EXPECT_EQ(meter.meter(sim::kSecond, 500), Color::kGreen);
}

TEST(SlaProbe, TracksPerClassLatencyAndLoss) {
  SlaProbe probe("t");
  probe.record_sent(Phb::kEf, 500);
  probe.record_sent(Phb::kEf, 500);
  probe.record_delivered(Phb::kEf, 1, 10 * sim::kMillisecond, 500);
  const auto& r = probe.report(Phb::kEf);
  EXPECT_EQ(r.sent_packets, 2u);
  EXPECT_EQ(r.delivered_packets, 1u);
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(r.latency_s.mean(), 0.010);
  EXPECT_DOUBLE_EQ(r.goodput_bps(1.0), 4000.0);
  EXPECT_FALSE(probe.has_class(Phb::kBe));
  EXPECT_THROW(probe.report(Phb::kBe), std::out_of_range);
}

TEST(SlaProbe, JitterFromConsecutiveDeltas) {
  SlaProbe probe;
  probe.record_delivered(Phb::kEf, 1, 10 * sim::kMillisecond, 100);
  probe.record_delivered(Phb::kEf, 1, 14 * sim::kMillisecond, 100);
  probe.record_delivered(Phb::kEf, 1, 12 * sim::kMillisecond, 100);
  const stats::RunningStats j = probe.jitter_stats(Phb::kEf);
  EXPECT_EQ(j.count(), 2u);
  EXPECT_NEAR(j.mean(), 0.003, 1e-9);  // (4ms + 2ms) / 2
}

TEST(SlaProbe, CsvExportMatchesData) {
  SlaProbe probe;
  probe.record_sent(Phb::kEf, 500);
  probe.record_delivered(Phb::kEf, 1, 10 * sim::kMillisecond, 500);
  const std::string csv = probe.to_csv(1.0);
  EXPECT_NE(csv.find("class,sent,delivered"), std::string::npos);
  EXPECT_NE(csv.find("EF,1,1,0.0000,10.0000"), std::string::npos);
}

TEST(SlaProbe, TableHasRowPerClass) {
  SlaProbe probe;
  probe.record_sent(Phb::kEf, 100);
  probe.record_sent(Phb::kBe, 100);
  const std::string out = probe.to_table(1.0).render();
  EXPECT_NE(out.find("EF"), std::string::npos);
  EXPECT_NE(out.find("BE"), std::string::npos);
}

}  // namespace
}  // namespace mvpn::qos
