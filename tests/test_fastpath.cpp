#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "backbone/fixtures.hpp"
#include "backbone/scenario_config.hpp"
#include "obs/trace.hpp"
#include "qos/sla.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace mvpn {
namespace {

using backbone::BackboneConfig;
using backbone::MplsBackbone;

/// Count fastpath trace events of `type` at `node` stamped at or after
/// `after`.
std::size_t count_events(const std::vector<obs::TraceEvent>& evs,
                         obs::EventType type, ip::NodeId node,
                         sim::SimTime after = 0) {
  std::size_t n = 0;
  for (const auto& e : evs) {
    if (e.type == type && e.node == node && e.at >= after) ++n;
  }
  return n;
}

/// Small backbone + one CBR flow site0 → site1, flight recorder armed for
/// the fastpath category. The shared setup of the invalidation tests.
struct FlowFixture {
  explicit FlowFixture(const BackboneConfig& cfg, double rate_bps = 400e3)
      : bb(cfg) {
    v = bb.service.create_vpn("V");
    site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
    site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
    bb.start_and_converge();
    bb.topo.recorder().enable(
        static_cast<std::uint32_t>(obs::Category::kFastpath));
    sink.emplace(probe, bb.topo.scheduler());
    sink->bind(*site_b.ce);
    traffic::FlowSpec f;
    f.src = ip::Ipv4Address::must_parse("10.1.0.1");
    f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
    f.vpn = v;
    src.emplace(*site_a.ce, f, 1, &probe, rate_bps);
    sink->expect_flow(1, qos::Phb::kBe, v);
  }

  MplsBackbone bb;
  vpn::VpnId v = 0;
  MplsBackbone::Site site_a, site_b;
  qos::SlaProbe probe;
  std::optional<traffic::MeasurementSink> sink;
  std::optional<traffic::CbrSource> src;
};

BackboneConfig small_backbone(std::uint64_t seed) {
  BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.seed = seed;
  return cfg;
}

/// Steady flow: the first packet populates the caches (kFastpathResolve),
/// every later packet is a hit; nothing invalidates.
TEST(Fastpath, SteadyFlowHitsCacheAfterFirstPacket) {
  FlowFixture fx(small_backbone(11));
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + sim::kSecond);
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  EXPECT_EQ(fx.sink->delivered(), fx.src->packets_sent());
  EXPECT_GT(fx.src->packets_sent(), 10u);

  // CE ingress, PE imposition and P transit caches all served the flow
  // from the second packet onwards.
  const auto& ce = fx.site_a.ce->flowcache_stats();
  EXPECT_GT(ce.hits, ce.misses);
  EXPECT_GE(ce.misses, 1u);
  EXPECT_GT(fx.bb.pe(0).flowcache_stats().hits, 0u);
  EXPECT_GT(fx.bb.p(0).flowcache_stats().hits, 0u);

  const auto evs = fx.bb.topo.recorder().snapshot();
  EXPECT_GT(count_events(evs, obs::EventType::kFastpathResolve,
                         fx.site_a.ce->id()),
            0u);
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathResolve, fx.bb.p(0).id()),
      0u);
  for (const auto& e : evs) {
    EXPECT_NE(e.type, obs::EventType::kFastpathInvalidate);
  }
}

/// Disabled cache: identical delivery, zero cache traffic.
TEST(Fastpath, DisabledCacheStillDeliversWithZeroStats) {
  FlowFixture fx(small_backbone(11));
  for (std::size_t i = 0; i < fx.bb.topo.node_count(); ++i) {
    if (auto* r = dynamic_cast<vpn::Router*>(
            &fx.bb.topo.node(static_cast<ip::NodeId>(i)))) {
      r->set_flowcache_enabled(false);
    }
  }
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + sim::kSecond);
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  EXPECT_EQ(fx.sink->delivered(), fx.src->packets_sent());
  const auto& ce = fx.site_a.ce->flowcache_stats();
  EXPECT_EQ(ce.hits + ce.misses, 0u);
  EXPECT_EQ(fx.bb.p(0).flowcache_stats().hits +
                fx.bb.p(0).flowcache_stats().misses,
            0u);
}

/// An LDP withdrawal — even of a FEC the flow does not ride — bumps the
/// LDP generation; the cached decisions go stale, the next packet traces
/// kFastpathInvalidate and re-resolves successfully with no loss.
TEST(Fastpath, LdpWithdrawInvalidatesAndReResolves) {
  BackboneConfig cfg = small_backbone(13);
  cfg.pe_count = 3;  // PE2 exists only to have an unrelated FEC to withdraw
  FlowFixture fx(cfg);
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + sim::kSecond);

  const sim::SimTime t_mut = t0 + sim::kSecond / 2;
  std::uint64_t gen_before = 0;
  fx.bb.topo.scheduler().schedule_at(t_mut, [&] {
    gen_before = fx.bb.ldp.generation();
    fx.bb.ldp.withdraw_fec(ip::Prefix::host(fx.bb.pe(2).loopback()));
  });
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  EXPECT_GT(fx.bb.ldp.generation(), gen_before);
  // Unrelated FEC: the flow's own path is intact, nothing was lost.
  EXPECT_EQ(fx.sink->delivered(), fx.src->packets_sent());
  EXPECT_GT(fx.bb.pe(0).flowcache_stats().invalidated, 0u);

  const auto evs = fx.bb.topo.recorder().snapshot();
  const ip::NodeId pe0 = fx.bb.pe(0).id();
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathInvalidate, pe0, t_mut),
      0u);
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathResolve, pe0, t_mut), 0u);
}

/// Withdrawing the FEC the flow actually rides kills imposition: the PE
/// invalidates, re-resolves, finds no tunnel, and traffic stops — no
/// packet keeps riding a stale cached label into a dead label table.
TEST(Fastpath, LdpWithdrawOfUsedFecStopsTraffic) {
  FlowFixture fx(small_backbone(17));
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + sim::kSecond);

  const sim::SimTime t_mut = t0 + sim::kSecond / 2;
  std::uint64_t delivered_at_mut = 0;
  fx.bb.topo.scheduler().schedule_at(t_mut, [&] {
    delivered_at_mut = fx.sink->delivered();
    fx.bb.ldp.withdraw_fec(ip::Prefix::host(fx.bb.pe(1).loopback()));
  });
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  EXPECT_GT(delivered_at_mut, 0u);
  EXPECT_LT(fx.sink->delivered(), fx.src->packets_sent());
  // Only packets already in flight at the withdrawal instant may still
  // arrive.
  EXPECT_LE(fx.sink->delivered(), delivered_at_mut + 5);
  const auto evs = fx.bb.topo.recorder().snapshot();
  EXPECT_GT(count_events(evs, obs::EventType::kFastpathInvalidate,
                         fx.bb.pe(0).id(), t_mut),
            0u);
}

/// RSVP-TE reroute: failing the link under a bound LSP bumps the RSVP
/// generation; the head end invalidates its cached tunnel resolution and
/// re-resolves onto the detour.
TEST(Fastpath, RsvpRerouteInvalidatesTunnelResolution) {
  backbone::DiamondScenario d = backbone::make_diamond_scenario(10e6, 19);
  MplsBackbone& bb = *d.backbone;
  const vpn::VpnId v = bb.service.create_vpn("V");
  auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();
  bb.topo.recorder().enable(
      static_cast<std::uint32_t>(obs::Category::kFastpath));

  mpls::TeLspConfig lsp_cfg;
  lsp_cfg.head = bb.pe(0).id();
  lsp_cfg.tail = bb.pe(1).id();
  lsp_cfg.bandwidth_bps = 2e6;
  const mpls::LspId lsp = bb.rsvp.signal(lsp_cfg);
  bb.topo.scheduler().run();
  ASSERT_EQ(bb.rsvp.lsp(lsp).state, mpls::RsvpTe::LspState::kUp);
  bb.pe(0).bind_lsp(bb.pe(1).id(), lsp);

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_b.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v;
  traffic::CbrSource src(*site_a.ce, f, 1, &probe, 500e3);
  sink.expect_flow(1, qos::Phb::kBe, v);

  const sim::SimTime t0 = bb.topo.scheduler().now();
  src.run(t0, t0 + 4 * sim::kSecond);
  const sim::SimTime t_fail = t0 + sim::kSecond;
  std::uint64_t gen_before = 0;
  bb.topo.scheduler().schedule_at(t_fail, [&] {
    gen_before = bb.rsvp.generation();
    bb.topo.link(d.hot_link).set_up(false);
    bb.igp.notify_link_change(d.hot_link);
    bb.rsvp.notify_link_failure(d.hot_link);
  });
  bb.topo.run_until(t0 + 6 * sim::kSecond);

  EXPECT_GT(bb.rsvp.generation(), gen_before);
  EXPECT_EQ(bb.rsvp.lsp(lsp).state, mpls::RsvpTe::LspState::kUp);
  EXPECT_EQ(bb.rsvp.lsp(lsp).reroutes, 1u);
  EXPECT_LT(probe.report(qos::Phb::kBe).loss_fraction(), 0.05);

  const auto evs = bb.topo.recorder().snapshot();
  const ip::NodeId pe0 = bb.pe(0).id();
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathInvalidate, pe0, t_fail),
      0u);
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathResolve, pe0, t_fail),
      0u);
}

/// Replacing a VRF route (same prefix, re-install) bumps the table
/// generation; the next packet re-resolves instead of replaying the old
/// cached decision.
TEST(Fastpath, VrfRouteReplaceInvalidates) {
  FlowFixture fx(small_backbone(23));
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + sim::kSecond);

  const sim::SimTime t_mut = t0 + sim::kSecond / 2;
  std::uint64_t gen_before = 0;
  std::uint64_t gen_after = 0;
  fx.bb.topo.scheduler().schedule_at(t_mut, [&] {
    vpn::Vrf* vrf = fx.bb.pe(0).vrf_by_vpn(fx.v);
    ASSERT_NE(vrf, nullptr);
    const ip::RouteEntry* r =
        vrf->table().lookup(ip::Ipv4Address::must_parse("10.2.0.1"));
    ASSERT_NE(r, nullptr);
    const ip::RouteEntry replacement = *r;  // `r` dies on install
    gen_before = vrf->table().generation();
    vrf->table().install(replacement);
    gen_after = vrf->table().generation();
  });
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  EXPECT_GT(gen_after, gen_before);
  EXPECT_EQ(fx.sink->delivered(), fx.src->packets_sent());
  const auto evs = fx.bb.topo.recorder().snapshot();
  const ip::NodeId pe0 = fx.bb.pe(0).id();
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathInvalidate, pe0, t_mut),
      0u);
  EXPECT_GT(
      count_events(evs, obs::EventType::kFastpathResolve, pe0, t_mut), 0u);
}

/// A core link failure reconverges the IGP; the SPF bumps the LDP
/// generation (next hops changed), stale entries self-invalidate and the
/// flow re-resolves onto the surviving ring path.
TEST(Fastpath, LinkFailureReconvergenceInvalidates) {
  BackboneConfig cfg;
  cfg.p_count = 3;  // ring: an alternate path exists
  cfg.pe_count = 2;
  cfg.seed = 29;
  FlowFixture fx(cfg, 200e3);
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  fx.src->run(t0, t0 + 4 * sim::kSecond);

  const sim::SimTime t_fail = t0 + sim::kSecond;
  std::uint64_t gen_before = 0;
  fx.bb.topo.scheduler().schedule_at(t_fail, [&] {
    const auto* nh =
        fx.bb.igp.next_hop(fx.bb.pe(0).id(), fx.bb.pe(1).id());
    ASSERT_NE(nh, nullptr);
    const net::LinkId used = fx.bb.pe(0).interface(nh->iface).link;
    gen_before = fx.bb.ldp.generation();
    fx.bb.topo.link(used).set_up(false);
    fx.bb.igp.notify_link_change(used);
  });
  fx.bb.topo.run_until(t0 + 6 * sim::kSecond);

  EXPECT_GT(fx.bb.ldp.generation(), gen_before);
  // Self-healing: only the reconvergence window is lost.
  EXPECT_LT(fx.probe.report(qos::Phb::kBe).loss_fraction(), 0.10);
  EXPECT_GT(fx.sink->delivered(), 0u);
  const auto evs = fx.bb.topo.recorder().snapshot();
  EXPECT_GT(count_events(evs, obs::EventType::kFastpathInvalidate,
                         fx.bb.pe(0).id(), t_fail),
            0u);
}

/// A classifier mutation invalidates the CE ingress cache: adding a rule
/// mid-run changes how the very next packet of an established flow is
/// marked — the cache must not replay the stale DSCP.
TEST(Fastpath, ClassifierMutationReclassifiesNextPacket) {
  FlowFixture fx(small_backbone(31));
  auto classifier = std::make_unique<qos::CbqClassifier>();
  qos::MatchRule narrow;  // matches nothing this flow sends
  narrow.dst_port = qos::PortRange::exactly(9);
  narrow.mark = qos::Phb::kAf11;
  classifier->add_rule(narrow);
  fx.site_a.ce->set_classifier(std::move(classifier));

  // Observe the marking as packets arrive at the ingress PE.
  const sim::SimTime t0 = fx.bb.topo.scheduler().now();
  const sim::SimTime t_mut = t0 + sim::kSecond / 2;
  const ip::NodeId pe0 = fx.bb.pe(0).id();
  std::uint64_t unmarked_before = 0, marked_before = 0;
  std::uint64_t unmarked_after = 0, marked_after = 0;
  fx.bb.topo.add_packet_tap([&](ip::NodeId at, const net::Packet& p) {
    if (at != pe0) return;
    const bool before = fx.bb.topo.scheduler().now() < t_mut;
    if (p.visible_dscp() == 0) {
      ++(before ? unmarked_before : unmarked_after);
    } else {
      ++(before ? marked_before : marked_after);
    }
  });

  fx.src->run(t0, t0 + sim::kSecond);
  fx.bb.topo.scheduler().schedule_at(t_mut, [&] {
    qos::MatchRule all;  // port-blind: matches the flow from now on
    all.mark = qos::Phb::kAf21;
    fx.site_a.ce->classifier()->add_rule(all);
  });
  fx.bb.topo.run_until(t0 + 2 * sim::kSecond);

  // Before the mutation every packet crossed the PE unmarked (BE); after
  // it, marked. A stale cached decision would keep producing DSCP 0.
  EXPECT_GT(unmarked_before, 0u);
  EXPECT_EQ(marked_before, 0u);
  EXPECT_GT(marked_after, 0u);
  EXPECT_LE(unmarked_after, 1u);  // at most one packet already in flight
  const auto evs = fx.bb.topo.recorder().snapshot();
  EXPECT_GT(count_events(evs, obs::EventType::kFastpathInvalidate,
                         fx.site_a.ce->id(), t_mut),
            0u);
}

/// End-to-end A/B: the full scenario report (SLA table, isolation
/// accounting) is byte-identical with the flow caches on and off, serial
/// and sharded.
TEST(Fastpath, ScenarioOutputByteIdenticalOnOff) {
  const std::string text = R"(
backbone p=2 pe=2 core_bw=4e6 edge_bw=20e6 seed=7 core_queue=wfq:8,3,1
vpn corp
site corp pe=0 prefix=10.1.0.0/16
site corp pe=1 prefix=10.2.0.0/16
classify site=0 dstport=16384-16484 class=EF
classify site=0 dstport=5004 class=AF21
police  site=0 class=EF cir=62500 cbs=4000 ebs=4000
flow cbr     vpn=corp from=0 to=1 rate=400e3 class=EF   port=16400 size=172
flow onoff   vpn=corp from=0 to=1 rate=2e6   class=AF21 port=5004  size=1172 on=0.3 off=0.2
flow poisson vpn=corp from=0 to=1 rate=4e6   class=BE   port=80    size=1472
run for=1
)";
  backbone::ScenarioError err;
  const auto scenario = backbone::Scenario::parse(text, &err);
  ASSERT_TRUE(scenario.has_value()) << err.message;

  const auto render = [&](bool flowcache, std::uint32_t shards) {
    backbone::Scenario s = *scenario;
    s.set_flowcache(flowcache);
    s.set_shards(shards);
    std::ostringstream out;
    EXPECT_TRUE(s.run(out));
    return out.str();
  };

  const std::string serial_on = render(true, 1);
  EXPECT_EQ(serial_on, render(false, 1));
  EXPECT_EQ(render(true, 2), render(false, 2));
  EXPECT_EQ(render(true, 4), render(false, 4));
  // And across shard counts: everything below the engine-description
  // header (SLA table, delivery accounting) must not depend on the
  // partition.
  const auto body = [](const std::string& report) {
    return report.substr(report.find("\n\n"));
  };
  EXPECT_EQ(body(serial_on), body(render(true, 4)));
}

/// The scenario language's `run flowcache=` directive parses (and rejects
/// junk).
TEST(Fastpath, ScenarioFlowcacheDirectiveParses) {
  const std::string good = R"(
backbone p=1 pe=2 seed=3
vpn v
site v pe=0 prefix=10.1.0.0/16
site v pe=1 prefix=10.2.0.0/16
flow cbr vpn=v from=0 to=1 rate=100e3
run for=1 flowcache=off
)";
  backbone::ScenarioError err;
  const auto scenario = backbone::Scenario::parse(good, &err);
  ASSERT_TRUE(scenario.has_value()) << err.message;
  EXPECT_FALSE(scenario->flowcache());

  std::string bad = good;
  bad.replace(bad.find("flowcache=off"), std::string("flowcache=off").size(),
              "flowcache=maybe");
  backbone::ScenarioError err2;
  EXPECT_FALSE(backbone::Scenario::parse(bad, &err2).has_value());
}

}  // namespace
}  // namespace mvpn
