// Latency-anatomy tests: the LogHistogram quantile sketch against the
// exact SampleSet on adversarial distributions, exactness of the per-hop
// delay decomposition (components must sum to the end-to-end delay for
// every delivered packet), RFC 3550 jitter, flat-cost metric snapshots,
// and the causal span reconstruction from flight-recorder events.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "backbone/fixtures.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "qos/sla.hpp"
#include "stats/histogram.hpp"
#include "stats/log_histogram.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace {

using namespace mvpn;

// ---------------------------------------------------------------------------
// LogHistogram: accuracy against the exact reference.

void expect_percentiles_close(const stats::SampleSet& exact,
                              const stats::LogHistogram& sketch,
                              const char* label) {
  ASSERT_EQ(exact.count(), sketch.count()) << label;
  // Half a sub-bucket of relative error is the design bound; allow a hair
  // of float slack on top.
  const double bound = sketch.relative_error_bound() + 1e-9;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double want = exact.percentile(p);
    const double got = sketch.percentile(p);
    ASSERT_GT(want, 0.0) << label;
    EXPECT_LE(std::abs(got - want) / want, bound)
        << label << " p" << p << ": exact " << want << " sketch " << got;
  }
  // Extremes are clamped to the observed range: never outside [min, max],
  // and within the same relative bound of the true extremes.
  EXPECT_GE(sketch.percentile(0.0), exact.min()) << label;
  EXPECT_LE(sketch.percentile(0.0), exact.min() * (1 + bound)) << label;
  EXPECT_LE(sketch.percentile(100.0), exact.max()) << label;
  EXPECT_GE(sketch.percentile(100.0), exact.max() * (1 - bound)) << label;
  EXPECT_DOUBLE_EQ(sketch.mean(), exact.mean()) << label;
}

TEST(LogHistogram, TracksExactPercentilesOnAdversarialDistributions) {
  std::mt19937_64 rng(42);
  const std::size_t n = 20'000;

  {  // Uniform over three decades.
    stats::SampleSet exact;
    stats::LogHistogram sketch;
    std::uniform_real_distribution<double> d(1e-4, 1e-1);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = d(rng);
      exact.add(x);
      sketch.add(x);
    }
    expect_percentiles_close(exact, sketch, "uniform");
  }
  {  // Heavy-tailed lognormal (latency-like).
    stats::SampleSet exact;
    stats::LogHistogram sketch;
    std::lognormal_distribution<double> d(std::log(5e-3), 1.2);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = d(rng);
      exact.add(x);
      sketch.add(x);
    }
    expect_percentiles_close(exact, sketch, "lognormal");
  }
  {  // Bimodal: a fast mode and a 100x slower mode (failover-like).
    stats::SampleSet exact;
    stats::LogHistogram sketch;
    std::normal_distribution<double> fast(1e-3, 5e-5);
    std::normal_distribution<double> slow(1e-1, 5e-3);
    for (std::size_t i = 0; i < n; ++i) {
      double x = (i % 10 == 0) ? slow(rng) : fast(rng);
      if (x <= 0) x = 1e-6;
      exact.add(x);
      sketch.add(x);
    }
    expect_percentiles_close(exact, sketch, "bimodal");
  }
  {  // Power law spanning six decades.
    stats::SampleSet exact;
    stats::LogHistogram sketch;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = 1e-6 * std::pow(10.0, 6.0 * u(rng));
      exact.add(x);
      sketch.add(x);
    }
    expect_percentiles_close(exact, sketch, "powerlaw");
  }
}

TEST(LogHistogram, BoundedMemoryRegardlessOfSampleCount) {
  stats::LogHistogram h;
  const std::size_t before = h.memory_bytes();
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(1e-6, 1e2);
  for (int i = 0; i < 200'000; ++i) h.add(d(rng));
  EXPECT_EQ(h.memory_bytes(), before);
  EXPECT_EQ(h.count(), 200'000u);
}

TEST(LogHistogram, MergeEqualsSingleSketchOverUnion) {
  stats::LogHistogram a, b, all;
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> d(std::log(2e-3), 0.8);
  for (int i = 0; i < 5'000; ++i) {
    const double x = d(rng);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    // Identical geometry => identical buckets => identical answers.
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << "p" << p;
  }
}

TEST(LogHistogram, MergeRejectsMismatchedGeometry) {
  stats::LogHistogram a;
  stats::LogHistogram narrow(1e-6, 1e0);
  stats::LogHistogram coarse(stats::LogHistogram::kDefaultMin,
                             stats::LogHistogram::kDefaultMax, 3);
  EXPECT_FALSE(a.same_geometry(narrow));
  EXPECT_THROW(a.merge(narrow), std::invalid_argument);
  EXPECT_THROW(a.merge(coarse), std::invalid_argument);
}

TEST(LogHistogram, UnderAndOverflowBins) {
  stats::LogHistogram h(1e-6, 1e0);
  h.add(1e-9);   // below range
  h.add(5e-3);   // in range
  h.add(7.0);    // above range
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
  // Exact extremes survive via the summary accumulator...
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  // ...and out-of-range ranks resolve to them.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 7.0);
  // NaN is quarantined in the underflow bin rather than corrupting buckets.
  h.add(std::nan(""));
  EXPECT_EQ(h.underflow(), 2u);

  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

// ---------------------------------------------------------------------------
// SampleSet: the sketch mirror keeps snapshot paths from sorting.

TEST(SampleSet, ApproxPercentilesNeverSortTheSamples) {
  stats::SampleSet s;
  for (int i = 0; i < 10'000; ++i) s.add(1e-3 + 1e-7 * (i * 37 % 997));
  EXPECT_EQ(s.sort_count(), 0u);
  // Sketch reads: no sort, still accurate.
  const double approx_p50 = s.approx().percentile(50.0);
  EXPECT_EQ(s.sort_count(), 0u);
  const double exact_p50 = s.percentile(50.0);
  EXPECT_EQ(s.sort_count(), 1u);
  EXPECT_LE(std::abs(approx_p50 - exact_p50) / exact_p50,
            s.approx().relative_error_bound() + 1e-9);
}

TEST(SampleSet, RegistrySnapshotsAreSortFree) {
  stats::SampleSet s;
  for (int i = 0; i < 50'000; ++i) s.add(1e-3 + 1e-7 * (i % 491));
  obs::MetricsRegistry registry;
  registry.add_sample_set("sla/latency", &s);
  for (int tick = 0; tick < 5; ++tick) {
    const auto snap = registry.snapshot();
    EXPECT_FALSE(snap.empty());
  }
  EXPECT_EQ(s.sort_count(), 0u)
      << "periodic snapshots must not re-sort the sample vector";
}

// ---------------------------------------------------------------------------
// RFC 3550 inter-arrival jitter.

TEST(SlaProbe, Rfc3550JitterFollowsTheEwmaRecursion) {
  qos::SlaProbe probe;
  // One flow, known one-way delays.
  const std::vector<double> delays_ms = {10.0, 12.0, 11.0, 15.0, 15.0, 9.0};
  double j = 0.0;
  bool first = true;
  double prev = 0.0;
  for (double d : delays_ms) {
    probe.record_delivered(
        qos::Phb::kEf, /*flow=*/1,
        static_cast<sim::SimTime>(d) * sim::kMillisecond, 100);
    if (!first) j += (std::abs(d - prev) * 1e-3 - j) / 16.0;
    first = false;
    prev = d;
  }
  EXPECT_NEAR(probe.rfc3550_jitter_s(qos::Phb::kEf), j, 1e-12);

  // A second, perfectly smooth flow halves the class mean.
  for (int i = 0; i < 4; ++i) {
    probe.record_delivered(qos::Phb::kEf, /*flow=*/2, 20 * sim::kMillisecond,
                           100);
  }
  EXPECT_NEAR(probe.rfc3550_jitter_s(qos::Phb::kEf), j / 2.0, 1e-12);
  // Unknown class: zero, not a throw.
  EXPECT_EQ(probe.rfc3550_jitter_s(qos::Phb::kAf41), 0.0);
}

// ---------------------------------------------------------------------------
// Per-hop decomposition: components sum exactly to end-to-end delay.

TEST(LatencyAnatomy, ComponentsSumExactlyToEndToEndDelay) {
  backbone::BackboneConfig cfg;
  cfg.p_count = 3;
  cfg.pe_count = 2;
  cfg.seed = 7;
  backbone::MplsBackbone bb(cfg);
  obs::LatencyCollector collector;
  bb.topo.set_latency_collector(&collector);

  const vpn::VpnId v = bb.service.create_vpn("V");
  auto site_a = bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  auto site_b = bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*site_b.ce);

  std::uint64_t checked = 0;
  site_b.ce->add_delivery_tap([&](const net::Packet& p, vpn::VpnId) {
    ++checked;
    const sim::SimTime e2e = bb.topo.scheduler().now() - p.created_at;
    // The tentpole invariant: integer-exact attribution, no residue.
    ASSERT_EQ(p.delay.queue + p.delay.tx + p.delay.prop + p.delay.proc, e2e)
        << "packet " << p.id;
    ASSERT_GT(e2e, 0);
    ASSERT_GE(p.delay.queue, 0);
    ASSERT_GE(p.delay.proc, 0);
    ASSERT_GT(p.delay.tx, 0);    // every delivery crossed >= 1 link
    ASSERT_GT(p.delay.prop, 0);
  });

  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = v;
  traffic::CbrSource src(*site_a.ce, f, 1, &probe, 400e3);
  sink.expect_flow(1, qos::Phb::kBe, v);
  src.run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  EXPECT_GT(checked, 0u);
  EXPECT_EQ(sink.delivered(), checked);
}

TEST(LatencyAnatomy, CollectorAggregatesMatchDeliveredTraffic) {
  backbone::Figure2Scenario fig = backbone::make_figure2_scenario(5);
  backbone::MplsBackbone& bb = *fig.backbone;
  obs::LatencyCollector collector;
  bb.topo.set_latency_collector(&collector);
  bb.start_and_converge();

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  sink.bind(*fig.v1_site2.ce);
  fig.v1_site2.ce->add_delivery_tap([&](const net::Packet& p, vpn::VpnId) {
    collector.record_delivery(p.trace_class(), p.delay.queue, p.delay.tx,
                              p.delay.prop, p.delay.proc);
  });

  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = fig.vpn1;
  traffic::CbrSource src(*fig.v1_site1.ce, f, 1, &probe, 300e3);
  sink.expect_flow(1, qos::Phb::kBe, fig.vpn1);
  src.run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  ASSERT_GT(sink.delivered(), 0u);
  EXPECT_EQ(collector.delivered(), sink.delivered());

  const obs::LatencyCollector::ClassDelivery* cd = collector.class_delivery(0);
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->packets, sink.delivered());
  // Aggregate identity mirrors the per-packet one.
  EXPECT_EQ(cd->queue + cd->tx + cd->prop + cd->proc, cd->total);
  EXPECT_EQ(cd->e2e_s.count(), cd->packets);

  // The hop ledger saw traffic and attributes only queue/tx/prop.
  const auto hops = collector.active_hops();
  ASSERT_FALSE(hops.empty());
  sim::SimTime hop_tx = 0, hop_prop = 0;
  for (const auto* h : hops) {
    EXPECT_GT(h->packets, 0u);
    hop_tx += h->tx;
    hop_prop += h->prop;
  }
  // Every delivered packet's tx/prop came from some hop (hops also carry
  // control traffic and in-flight packets, so the ledger is a superset).
  EXPECT_GE(hop_tx, cd->tx);
  EXPECT_GE(hop_prop, cd->prop);

  // Tables render without throwing and carry the class row.
  const std::string cls_tbl = collector.class_table().render();
  EXPECT_NE(cls_tbl.find("cls0"), std::string::npos);
  EXPECT_FALSE(collector.hop_table().render().empty());
}

// ---------------------------------------------------------------------------
// Span reconstruction from raw trace events.

TEST(Spans, PacketLifecycleFoldsIntoHops) {
  using obs::EventType;
  std::vector<obs::TraceEvent> evs;
  // Packet 42: queued at node 1 on link 5, then wire; fast-path at node 2.
  evs.push_back({.at = 100, .packet_id = 42, .node = 1, .a = 5,
                 .type = EventType::kEnqueue, .cls = 5, .aux = 2});
  evs.push_back({.at = 180, .packet_id = 42, .node = 1, .a = 5,
                 .type = EventType::kDequeue});
  evs.push_back({.at = 180, .packet_id = 42, .node = 1, .a = 5,
                 .type = EventType::kLinkTx});
  evs.push_back({.at = 250, .packet_id = 42, .node = 2, .a = 5,
                 .type = EventType::kDeliver});
  evs.push_back({.at = 260, .packet_id = 42, .node = 2, .a = 9,
                 .type = EventType::kLinkTx});
  evs.push_back({.at = 300, .packet_id = 42, .node = 3, .a = 9,
                 .type = EventType::kDeliver});
  evs.push_back({.at = 301, .packet_id = 42, .node = 3, .a = 7,
                 .type = EventType::kLocalDeliver});
  // Packet 43 dies in a queue.
  evs.push_back({.at = 150, .packet_id = 43, .node = 1, .a = 5,
                 .type = EventType::kDrop,
                 .reason = obs::DropReason::kTailDrop});

  const obs::SpanAnalysis out = obs::analyze_spans(evs);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.completed_packets(), 1u);

  const obs::PacketSpan& p = out.packets[0];
  EXPECT_EQ(p.packet_id, 42u);
  EXPECT_EQ(p.cls, 5);
  EXPECT_TRUE(p.completed);
  EXPECT_FALSE(p.dropped);
  ASSERT_EQ(p.hops.size(), 2u);
  EXPECT_TRUE(p.hops[0].queued());
  EXPECT_EQ(p.hops[0].queue_wait(), 80);
  EXPECT_EQ(p.hops[0].band, 2);
  EXPECT_TRUE(p.hops[0].on_wire());
  EXPECT_EQ(p.hops[0].wire_time(), 70);
  EXPECT_FALSE(p.hops[1].queued());  // fast path: tx without enqueue
  EXPECT_TRUE(p.hops[1].on_wire());
  EXPECT_EQ(p.first_at, 100);
  EXPECT_EQ(p.last_at, 301);

  const obs::PacketSpan& q = out.packets[1];
  EXPECT_TRUE(q.dropped);
  EXPECT_EQ(q.drop_reason, obs::DropReason::kTailDrop);
  EXPECT_FALSE(q.completed);
}

TEST(Spans, ControlPlaneTimelines) {
  using obs::EventType;
  std::vector<obs::TraceEvent> evs;
  // LDP: announce by owner 9, three mappings (one predates the announce).
  evs.push_back({.at = 50, .node = 9, .a = 3, .b = 9,
                 .type = EventType::kLdpAnnounce});
  evs.push_back({.at = 40, .node = 4, .a = 17, .b = 7,
                 .type = EventType::kLdpMapping});  // unanchored owner
  evs.push_back({.at = 80, .node = 4, .a = 18, .b = 9,
                 .type = EventType::kLdpMapping});
  evs.push_back({.at = 120, .node = 5, .a = 19, .b = 9,
                 .type = EventType::kLdpMapping});
  // LSP 1: signal -> up, then a reroute episode that restores.
  evs.push_back({.at = 200, .a = 1, .type = EventType::kLspSignal});
  evs.push_back({.at = 260, .a = 1, .type = EventType::kLspUp});
  evs.push_back({.at = 500, .a = 1, .b = 12,
                 .type = EventType::kLspReroute});
  evs.push_back({.at = 590, .a = 1, .type = EventType::kLspUp});
  // LSP 2: reroute that fails (explicit route).
  evs.push_back({.at = 300, .a = 2, .type = EventType::kLspSignal});
  evs.push_back({.at = 350, .a = 2, .type = EventType::kLspUp});
  evs.push_back({.at = 600, .a = 2, .b = 12,
                 .type = EventType::kLspReroute});
  evs.push_back({.at = 640, .a = 2, .type = EventType::kLspDown});

  const obs::SpanAnalysis out = obs::analyze_spans(evs);
  EXPECT_EQ(out.ldp_mappings, 3u);
  EXPECT_EQ(out.ldp_unanchored, 1u);
  EXPECT_EQ(out.ldp_mapping_s.count(), 2u);
  EXPECT_DOUBLE_EQ(out.ldp_mapping_s.min(), sim::to_seconds(30));
  EXPECT_DOUBLE_EQ(out.ldp_mapping_s.max(), sim::to_seconds(70));

  ASSERT_EQ(out.lsps.size(), 2u);
  const obs::LspTimeline& l1 = out.lsps[0];
  EXPECT_EQ(l1.setup_latency(), 60);
  ASSERT_EQ(l1.episodes.size(), 1u);
  EXPECT_EQ(l1.episodes[0].restored_at - l1.episodes[0].reroute_at, 90);
  EXPECT_EQ(l1.episodes[0].failed_link, 12u);

  const obs::LspTimeline& l2 = out.lsps[1];
  ASSERT_EQ(l2.episodes.size(), 1u);
  EXPECT_EQ(l2.episodes[0].failed_at, 640);
  EXPECT_EQ(l2.episodes[0].restored_at, obs::kNoTime);

  EXPECT_EQ(out.reroutes, 2u);
  EXPECT_EQ(out.reroutes_failed, 1u);
  EXPECT_EQ(out.lsp_setup_s.count(), 2u);
  EXPECT_EQ(out.reroute_convergence_s.count(), 1u);
  EXPECT_DOUBLE_EQ(out.reroute_convergence_s.max(), sim::to_seconds(90));

  // Reports render and carry every stage row.
  const std::string tbl = obs::control_plane_table(out).render();
  EXPECT_NE(tbl.find("ldp mapping"), std::string::npos);
  EXPECT_NE(tbl.find("reroute convergence"), std::string::npos);
}

TEST(Spans, EndToEndAgainstLiveSignaling) {
  backbone::DiamondScenario d = backbone::make_diamond_scenario(10e6, 3);
  backbone::MplsBackbone& bb = *d.backbone;
  bb.topo.recorder().set_capacity(1u << 18);
  bb.topo.recorder().enable(
      static_cast<std::uint32_t>(obs::Category::kSignaling));

  const vpn::VpnId v = bb.service.create_vpn("A");
  bb.add_site(v, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  bb.add_site(v, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  bb.start_and_converge();

  mpls::TeLspConfig cfg;
  cfg.head = bb.pe(0).id();
  cfg.tail = bb.pe(1).id();
  cfg.bandwidth_bps = 1e6;
  const mpls::LspId lsp = bb.rsvp.signal(cfg);
  bb.topo.scheduler().run();

  bb.topo.link(d.hot_link).set_up(false);
  bb.igp.notify_link_change(d.hot_link);
  bb.rsvp.notify_link_failure(d.hot_link);
  bb.topo.scheduler().run();

  ASSERT_EQ(bb.rsvp.lsp(lsp).state, mpls::RsvpTe::LspState::kUp);
  const obs::SpanAnalysis out = obs::analyze_spans(bb.topo.recorder());
  // LDP converged with at least one mapping measured from the announce.
  EXPECT_GT(out.ldp_mapping_s.count(), 0u);
  EXPECT_EQ(out.ldp_unanchored, 0u);
  // Exactly our LSP: signaled, set up, rerouted once, restored.
  ASSERT_EQ(out.lsps.size(), 1u);
  EXPECT_GT(out.lsps[0].setup_latency(), 0);
  EXPECT_EQ(out.reroutes, 1u);
  EXPECT_EQ(out.reroutes_failed, 0u);
  ASSERT_EQ(out.reroute_convergence_s.count(), 1u);
  // Re-signaling over the detour costs at least the setup RTT.
  EXPECT_GE(out.reroute_convergence_s.min(),
            sim::to_seconds(out.lsps[0].setup_latency()));
}

}  // namespace
