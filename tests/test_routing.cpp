#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/bgp.hpp"
#include "routing/control_plane.hpp"
#include "routing/hello.hpp"
#include "routing/igp.hpp"
#include "routing/link_state.hpp"
#include "vpn/router.hpp"

namespace mvpn::routing {
namespace {

using vpn::Role;
using vpn::Router;

struct IgpFixture {
  net::Topology topo;
  ControlPlane cp{topo};
  Igp igp{cp};
  std::vector<Router*> routers;

  Router& add(const std::string& name) {
    auto& r = topo.add_node<Router>(name, Role::kP);
    routers.push_back(&r);
    igp.add_router(r.id());
    return r;
  }
  net::LinkId link(Router& a, Router& b, std::uint32_t cost = 1,
                   double bw = 10e6) {
    net::LinkConfig cfg;
    cfg.igp_cost = cost;
    cfg.bandwidth_bps = bw;
    return topo.connect(a.id(), b.id(), cfg);
  }
  void converge() {
    igp.start();
    topo.scheduler().run();
  }
};

TEST(ControlPlane, CountsMessagesByType) {
  net::Topology topo;
  auto& a = topo.add_node<Router>("a", Role::kP);
  auto& b = topo.add_node<Router>("b", Role::kP);
  topo.connect(a.id(), b.id());
  ControlPlane cp(topo);
  int delivered = 0;
  EXPECT_TRUE(cp.send_adjacent(a.id(), b.id(), "x.hello", 40,
                               [&] { ++delivered; }));
  cp.send_session(a.id(), b.id(), "y.update", 60, [&] { ++delivered; });
  topo.scheduler().run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(cp.message_count("x.hello"), 1u);
  EXPECT_EQ(cp.byte_count("y.update"), 60u);
  EXPECT_EQ(cp.total_messages(), 2u);
  EXPECT_EQ(cp.total_bytes(), 100u);
  cp.reset_counters();
  EXPECT_EQ(cp.total_messages(), 0u);
}

TEST(ControlPlane, AdjacentFailsWithoutLinkOrWhenDown) {
  net::Topology topo;
  auto& a = topo.add_node<Router>("a", Role::kP);
  auto& b = topo.add_node<Router>("b", Role::kP);
  auto& c = topo.add_node<Router>("c", Role::kP);
  const net::LinkId l = topo.connect(a.id(), b.id());
  ControlPlane cp(topo);
  EXPECT_FALSE(cp.send_adjacent(a.id(), c.id(), "t", 1, [] {}));
  topo.link(l).set_up(false);
  EXPECT_FALSE(cp.send_adjacent(a.id(), b.id(), "t", 1, [] {}));
}

TEST(LinkStateDb, InstallsOnlyNewer) {
  LinkStateDb db;
  Lsa lsa;
  lsa.origin = 1;
  lsa.sequence = 2;
  EXPECT_TRUE(db.install(lsa));
  EXPECT_FALSE(db.install(lsa));  // same sequence
  lsa.sequence = 1;
  EXPECT_FALSE(db.install(lsa));  // older
  lsa.sequence = 3;
  EXPECT_TRUE(db.install(lsa));
  EXPECT_EQ(db.find(1)->sequence, 3u);
  EXPECT_EQ(db.find(9), nullptr);
  EXPECT_EQ(db.size(), 1u);
}

TEST(ShortestPath, PrefersLowCostThenFewHops) {
  // 0 -1- 1 -1- 2   and   0 -3- 2 direct: cost path wins via 1.
  LinkStateDb db;
  auto mk = [&](ip::NodeId origin, std::vector<LsaLink> links) {
    Lsa lsa;
    lsa.origin = origin;
    lsa.sequence = 1;
    lsa.links = std::move(links);
    db.install(lsa);
  };
  mk(0, {{1, 0, 1, 1e6, 1e6}, {2, 1, 3, 1e6, 1e6}});
  mk(1, {{0, 0, 1, 1e6, 1e6}, {2, 2, 1, 1e6, 1e6}});
  mk(2, {{0, 1, 3, 1e6, 1e6}, {1, 2, 1, 1e6, 1e6}});

  const ComputedPath p = shortest_path(db, 0, 2);
  ASSERT_TRUE(p.found());
  EXPECT_EQ(p.cost, 2u);
  EXPECT_EQ(p.nodes, (std::vector<ip::NodeId>{0, 1, 2}));
  EXPECT_EQ(p.hop_count(), 2u);
}

TEST(ShortestPath, RespectsBandwidthConstraintAndExclusion) {
  LinkStateDb db;
  auto mk = [&](ip::NodeId origin, std::vector<LsaLink> links) {
    Lsa lsa;
    lsa.origin = origin;
    lsa.sequence = 1;
    lsa.links = std::move(links);
    db.install(lsa);
  };
  // Two parallel 0→1 paths: link 0 (skinny 1 Mb/s), links 1+2 via node 2.
  mk(0, {{1, 0, 1, 1e6, 1e6}, {2, 1, 1, 10e6, 10e6}});
  mk(1, {{0, 0, 1, 1e6, 1e6}, {2, 2, 1, 10e6, 10e6}});
  mk(2, {{0, 1, 1, 10e6, 10e6}, {1, 2, 1, 10e6, 10e6}});

  EXPECT_EQ(shortest_path(db, 0, 1).hop_count(), 1u);
  // Demand 5 Mb/s: the direct skinny link is ineligible.
  const ComputedPath constrained = shortest_path(db, 0, 1, 5e6);
  EXPECT_EQ(constrained.hop_count(), 2u);
  // Exclude the detour's first link: nothing qualifies.
  const ComputedPath dead = shortest_path(db, 0, 1, 5e6, {1});
  EXPECT_FALSE(dead.found());
}

TEST(ShortestPath, RequiresTwoWayAdjacency) {
  LinkStateDb db;
  Lsa a;
  a.origin = 0;
  a.sequence = 1;
  a.links = {{1, 0, 1, 1e6, 1e6}};
  db.install(a);
  Lsa b;
  b.origin = 1;
  b.sequence = 1;  // no back-link to 0
  db.install(b);
  EXPECT_FALSE(shortest_path(db, 0, 1).found());
}

TEST(ShortestPath, SourceEqualsDestination) {
  LinkStateDb db;
  Lsa a;
  a.origin = 5;
  a.sequence = 1;
  db.install(a);
  const ComputedPath p = shortest_path(db, 5, 5);
  ASSERT_TRUE(p.found());
  EXPECT_EQ(p.hop_count(), 0u);
}

TEST(Igp, FloodingSynchronizesAllRouters) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  auto& d = f.add("d");
  f.link(a, b);
  f.link(b, c);
  f.link(c, d);
  f.converge();
  EXPECT_TRUE(f.igp.synchronized());
  EXPECT_GT(f.cp.message_count("igp.lsa"), 0u);
  EXPECT_GT(f.igp.spf_runs(), 0u);
}

TEST(Igp, NextHopsFollowShortestPath) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1);
  f.link(b, c, 1);
  f.link(a, c, 5);  // expensive direct
  f.converge();
  const auto* nh = f.igp.next_hop(a.id(), c.id());
  ASSERT_NE(nh, nullptr);
  EXPECT_EQ(nh->via, b.id());
  EXPECT_EQ(nh->cost, 2u);
  const auto path = f.igp.path(a.id(), c.id());
  EXPECT_EQ(path.nodes, (std::vector<ip::NodeId>{a.id(), b.id(), c.id()}));
}

TEST(Igp, ReconvergesAfterLinkFailure) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId ab = f.link(a, b, 1);
  f.link(b, c, 1);
  f.link(a, c, 5);
  f.converge();
  ASSERT_EQ(f.igp.next_hop(a.id(), c.id())->via, b.id());

  f.topo.link(ab).set_up(false);
  f.igp.notify_link_change(ab);
  f.topo.scheduler().run();
  const auto* nh = f.igp.next_hop(a.id(), c.id());
  ASSERT_NE(nh, nullptr);
  EXPECT_EQ(nh->via, c.id());  // fell back to the expensive direct link
}

TEST(Igp, TeReservationsShrinkReservable) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  const net::LinkId l = f.link(a, b, 1, 10e6);
  f.converge();
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(a.id(), l), 10e6);
  EXPECT_TRUE(f.igp.te_reserve(a.id(), l, 6e6));
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(a.id(), l), 4e6);
  EXPECT_FALSE(f.igp.te_reserve(a.id(), l, 5e6));  // admission fails
  EXPECT_TRUE(f.igp.te_reserve(a.id(), l, 4e6));
  f.igp.te_release(a.id(), l, 10e6);
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(a.id(), l), 10e6);
  // Direction independence: b's side is untouched throughout.
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(b.id(), l), 10e6);
}

TEST(Igp, CspfAvoidsReservedLinks) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId direct = f.link(a, b, 1, 10e6);
  f.link(a, c, 1, 10e6);
  f.link(c, b, 1, 10e6);
  f.converge();
  EXPECT_EQ(f.igp.cspf(a.id(), b.id(), 8e6).hop_count(), 1u);
  ASSERT_TRUE(f.igp.te_reserve(a.id(), direct, 5e6));
  f.topo.scheduler().run();  // re-flood updated TE attributes
  const ComputedPath detour = f.igp.cspf(a.id(), b.id(), 8e6);
  ASSERT_TRUE(detour.found());
  EXPECT_EQ(detour.hop_count(), 2u);
}

TEST(Igp, MembershipQueriesThrowForStrangers) {
  IgpFixture f;
  f.add("a");
  EXPECT_FALSE(f.igp.is_member(99));
  EXPECT_THROW(f.igp.lsdb(99), std::invalid_argument);
}

// ---------------------------------------------------------------------------

struct BgpFixture {
  net::Topology topo;
  ControlPlane cp{topo};

  VpnRoute route(std::uint32_t rd_low, const char* prefix,
                 ip::NodeId origin, std::uint32_t label = 100) {
    VpnRoute r;
    r.rd = RouteDistinguisher{65000, rd_low};
    r.prefix = ip::Prefix::must_parse(prefix);
    r.next_hop = ip::Ipv4Address(10, 255, 0, std::uint8_t(origin));
    r.next_hop_node = origin;
    r.vpn_label = label;
    r.route_targets.push_back(RouteTarget{65000, rd_low});
    return r;
  }
};

TEST(Bgp, FullMeshPropagatesToAllSpeakers) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 4; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  EXPECT_EQ(bgp.session_count(), 6u);  // 4*3/2

  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  for (ip::NodeId n = 0; n < 4; ++n) {
    const VpnRoute* best = bgp.best(n, key);
    ASSERT_NE(best, nullptr) << "speaker " << n;
    EXPECT_EQ(best->next_hop_node, 0u);
    EXPECT_EQ(best->vpn_label, 100u);
  }
  EXPECT_EQ(f.cp.message_count("bgp.update"), 3u);  // one per peer
}

TEST(Bgp, RouteReflectorReachesEveryClientWithFewerSessions) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kRouteReflector);
  for (ip::NodeId n = 0; n < 6; ++n) {
    f.topo.add_node<Router>("n" + std::to_string(n), Role::kPe);
  }
  for (ip::NodeId n = 0; n < 5; ++n) bgp.add_speaker(n);
  bgp.add_route_reflector(5);
  bgp.start();
  EXPECT_EQ(bgp.session_count(), 5u);  // clients to one RR
  EXPECT_TRUE(bgp.is_reflector(5));

  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  for (ip::NodeId n = 1; n < 5; ++n) {
    ASSERT_NE(bgp.best(n, key), nullptr) << "client " << n;
  }
}

TEST(Bgp, WithdrawRemovesEverywhere) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  ASSERT_NE(bgp.best(2, key), nullptr);

  bgp.withdraw(0, RouteDistinguisher{65000, 1},
               ip::Prefix::must_parse("10.1.0.0/16"));
  f.topo.scheduler().run();
  EXPECT_EQ(bgp.best(0, key), nullptr);
  EXPECT_EQ(bgp.best(1, key), nullptr);
  EXPECT_EQ(bgp.best(2, key), nullptr);
  EXPECT_GT(f.cp.message_count("bgp.withdraw"), 0u);
}

TEST(Bgp, BestPathPrefersLocalPrefThenLowerOriginator) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  // Same key from two origins (multihomed site).
  VpnRoute from1 = f.route(1, "10.1.0.0/16", 1, 111);
  VpnRoute from2 = f.route(1, "10.1.0.0/16", 2, 222);
  from2.local_pref = 200;
  bgp.originate(1, from1);
  bgp.originate(2, from2);
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  EXPECT_EQ(bgp.best(0, key)->next_hop_node, 2u);  // higher local-pref

  // Tie on local_pref → lower originator id wins.
  VpnRoute tie = f.route(2, "10.9.0.0/16", 1, 11);
  VpnRoute tie2 = f.route(2, "10.9.0.0/16", 2, 22);
  bgp.originate(1, tie);
  bgp.originate(2, tie2);
  f.topo.scheduler().run();
  const VpnRouteKey key2{RouteDistinguisher{65000, 2},
                         ip::Prefix::must_parse("10.9.0.0/16")};
  EXPECT_EQ(bgp.best(0, key2)->next_hop_node, 1u);
}

TEST(Bgp, OverlappingPrefixesDistinctByRd) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 2; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0, 100));
  bgp.originate(0, f.route(2, "10.1.0.0/16", 0, 200));  // same prefix, RD 2
  f.topo.scheduler().run();
  EXPECT_EQ(bgp.loc_rib_size(1), 2u);
  const VpnRouteKey k1{RouteDistinguisher{65000, 1},
                       ip::Prefix::must_parse("10.1.0.0/16")};
  const VpnRouteKey k2{RouteDistinguisher{65000, 2},
                       ip::Prefix::must_parse("10.1.0.0/16")};
  EXPECT_EQ(bgp.best(1, k1)->vpn_label, 100u);
  EXPECT_EQ(bgp.best(1, k2)->vpn_label, 200u);
}

TEST(Bgp, ObserverFiresOnChangeOnly) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 2; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  int events = 0;
  bgp.on_route([&](ip::NodeId, const VpnRoute&, bool) { ++events; });
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  const int after_first = events;
  EXPECT_EQ(after_first, 2);  // once at origin, once at peer
  // Re-originating the identical route changes nothing.
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  EXPECT_EQ(events, after_first);
}

TEST(Bgp, FailSpeakerFlushesItsRoutesEverywhere) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  EXPECT_EQ(bgp.session_count(), 3u);
  // Speaker 0 and 1 both offer the same prefix; 0 wins on originator id.
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0, 100));
  bgp.originate(1, f.route(1, "10.1.0.0/16", 1, 111));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  ASSERT_EQ(bgp.best(2, key)->next_hop_node, 0u);

  bgp.fail_speaker(0);
  f.topo.scheduler().run();
  EXPECT_EQ(bgp.session_count(), 1u);  // only 1-2 remains
  // Speaker 2 fails over to the surviving origin synchronously.
  ASSERT_NE(bgp.best(2, key), nullptr);
  EXPECT_EQ(bgp.best(2, key)->next_hop_node, 1u);
}

TEST(Bgp, ConfigErrors) {
  BgpFixture f;
  Bgp mesh(f.cp, Bgp::Mode::kFullMesh);
  EXPECT_THROW(mesh.add_route_reflector(0), std::logic_error);
  Bgp rr(f.cp, Bgp::Mode::kRouteReflector);
  EXPECT_THROW(rr.start(), std::logic_error);  // no reflectors configured
}

TEST(Igp, EcmpFindsAllEqualCostFirstHops) {
  // Square: a-b-d and a-c-d, all cost 1 → two first hops toward d.
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  auto& d = f.add("d");
  f.link(a, b, 1);
  f.link(a, c, 1);
  f.link(b, d, 1);
  f.link(c, d, 1);
  f.converge();
  const auto hops = f.igp.next_hops_ecmp(a.id(), d.id());
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].via, b.id());  // sorted by neighbor id
  EXPECT_EQ(hops[1].via, c.id());
  EXPECT_EQ(hops[0].cost, 2u);
  // Unequal costs collapse to a single hop.
  const auto to_b = f.igp.next_hops_ecmp(a.id(), b.id());
  EXPECT_EQ(to_b.size(), 1u);
}

TEST(Igp, EcmpThroughSharedUpstream) {
  // a-b, then b-c / b-d / c-e / d-e: two equal paths a→e, both via b.
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  auto& d = f.add("d");
  auto& e = f.add("e");
  f.link(a, b, 1);
  f.link(b, c, 1);
  f.link(b, d, 1);
  f.link(c, e, 1);
  f.link(d, e, 1);
  f.converge();
  // The split happens beyond b; a's first-hop set toward e is just {b}.
  const auto at_a = f.igp.next_hops_ecmp(a.id(), e.id());
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].via, b.id());
  // b itself balances over c and d.
  const auto at_b = f.igp.next_hops_ecmp(b.id(), e.id());
  EXPECT_EQ(at_b.size(), 2u);
}

TEST(Igp, PartitionedGraphHasNoRoute) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  auto& d = f.add("d");
  f.link(a, b);
  f.link(c, d);  // island
  f.converge();
  EXPECT_NE(f.igp.next_hop(a.id(), b.id()), nullptr);
  EXPECT_EQ(f.igp.next_hop(a.id(), c.id()), nullptr);
  EXPECT_FALSE(f.igp.path(a.id(), d.id()).found());
}

TEST(Igp, SubscriptionFactorScalesReservable) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  const net::LinkId l = f.link(a, b, 1, 10e6);
  f.igp.set_te_subscription_factor(0.5);
  f.converge();
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(a.id(), l), 5e6);
  EXPECT_FALSE(f.igp.te_reserve(a.id(), l, 6e6));
  EXPECT_TRUE(f.igp.te_reserve(a.id(), l, 5e6));
}

TEST(Igp, SpfCallbacksFire) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  f.link(a, b);
  int fired = 0;
  f.igp.on_spf([&](ip::NodeId) { ++fired; });
  f.converge();
  EXPECT_GE(fired, 2);  // at least one SPF per router
}

TEST(Bgp, TwoReflectorsGiveRedundantPropagation) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kRouteReflector);
  for (ip::NodeId n = 0; n < 6; ++n) {
    f.topo.add_node<Router>("n" + std::to_string(n), Role::kPe);
  }
  for (ip::NodeId n = 0; n < 4; ++n) bgp.add_speaker(n);
  bgp.add_route_reflector(4);
  bgp.add_route_reflector(5);
  bgp.start();
  // 4 clients x 2 RRs + RR-RR = 9 sessions.
  EXPECT_EQ(bgp.session_count(), 9u);
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  for (ip::NodeId n = 1; n < 4; ++n) {
    ASSERT_NE(bgp.best(n, key), nullptr);
    // Each client holds the route from both reflectors in its Adj-RIB-In.
    EXPECT_EQ(bgp.adj_rib_in_size(n), 2u);
  }
}

TEST(Bgp, LocRibSnapshot) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 2; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  bgp.originate(0, f.route(1, "10.2.0.0/16", 0));
  f.topo.scheduler().run();
  EXPECT_EQ(bgp.loc_rib(1).size(), 2u);
  EXPECT_EQ(bgp.speakers().size(), 2u);
}

TEST(ControlPlane, SessionDelayConfigurable) {
  net::Topology topo;
  topo.add_node<Router>("a", Role::kP);
  topo.add_node<Router>("b", Role::kP);
  ControlPlane cp(topo);
  cp.set_session_delay(50 * sim::kMillisecond);
  cp.set_processing_delay(0);
  sim::SimTime delivered_at = 0;
  cp.send_session(0, 1, "t", 1,
                  [&] { delivered_at = topo.scheduler().now(); });
  topo.scheduler().run();
  EXPECT_EQ(delivered_at, 50 * sim::kMillisecond);
}

TEST(Lsa, WireBytesScaleWithLinks) {
  Lsa lsa;
  EXPECT_EQ(lsa.wire_bytes(), 24u);
  lsa.links.resize(3);
  EXPECT_EQ(lsa.wire_bytes(), 24u + 48u);
}

TEST(ControlPlane, ProcessingDelayAddsToAdjacentDelivery) {
  net::Topology topo;
  auto& a = topo.add_node<Router>("a", Role::kP);
  auto& b = topo.add_node<Router>("b", Role::kP);
  net::LinkConfig cfg;
  cfg.prop_delay = 5 * sim::kMillisecond;
  topo.connect(a.id(), b.id(), cfg);
  ControlPlane cp(topo);
  cp.set_processing_delay(2 * sim::kMillisecond);
  sim::SimTime at = 0;
  cp.send_adjacent(a.id(), b.id(), "t", 1,
                   [&] { at = topo.scheduler().now(); });
  topo.scheduler().run();
  EXPECT_EQ(at, 7 * sim::kMillisecond);
}

TEST(Hello, DetectsLinkFailureWithinIntervalTimesThreshold) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId ab = f.link(a, b, 1);
  f.link(b, c, 1);
  f.link(a, c, 5);
  f.converge();

  HelloProtocol hello(f.cp);
  hello.enroll_link(ab);
  std::vector<net::LinkId> downs;
  hello.on_link_down([&](net::LinkId l) {
    downs.push_back(l);
    f.igp.notify_link_change(l);  // the usual wiring
  });
  hello.start(20 * sim::kMillisecond, 3);

  f.topo.run_until(f.topo.scheduler().now() + 200 * sim::kMillisecond);
  EXPECT_TRUE(downs.empty());
  EXPECT_GT(hello.hellos_sent(), 10u);

  const sim::SimTime break_at = f.topo.scheduler().now();
  f.topo.link(ab).set_up(false);
  f.topo.run_until(break_at + 500 * sim::kMillisecond);
  ASSERT_EQ(downs.size(), 1u);  // declared exactly once
  EXPECT_EQ(downs[0], ab);
  EXPECT_TRUE(hello.is_down(ab));
  // Detection took ~interval x threshold, and the IGP rerouted.
  const auto* nh = f.igp.next_hop(a.id(), c.id());
  ASSERT_NE(nh, nullptr);
  EXPECT_EQ(nh->via, c.id());
}

TEST(Hello, QuietOnHealthyLinks) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  const net::LinkId ab = f.link(a, b);
  f.converge();
  HelloProtocol hello(f.cp);
  hello.enroll_link(ab);
  int downs = 0;
  hello.on_link_down([&](net::LinkId) { ++downs; });
  hello.start(10 * sim::kMillisecond, 2);
  f.topo.run_until(f.topo.scheduler().now() + sim::kSecond);
  EXPECT_EQ(downs, 0);
  EXPECT_EQ(hello.links_declared_down(), 0u);
}

// --- PR10: packed update groups, compact RIB, incremental SPF --------------

TEST(RtSetPool, InternDedupes) {
  RtSetPool pool;
  const std::vector<RouteTarget> a{{65000, 1}, {65000, 2}};
  const std::vector<RouteTarget> b{{65000, 9}};
  const std::uint16_t ia = pool.intern(a);
  EXPECT_EQ(pool.intern(a), ia);  // same set, same id
  const std::uint16_t ib = pool.intern(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.get(ia), a);
  EXPECT_EQ(pool.get(ib), b);
  EXPECT_GT(pool.bytes(), 0u);
}

TEST(AdjRibIn, UpsertEraseAndSenderSweep) {
  AdjRibIn rib;
  auto key = [](std::uint32_t n) {
    return VpnRouteKey{RouteDistinguisher{65000, n},
                       ip::Prefix(ip::Ipv4Address(10, 0, 0, 0), 16)};
  };
  CompactRoute r;
  r.vpn_label = 7;
  // Enough keys to force at least one table growth past the 64-slot start.
  for (std::uint32_t n = 0; n < 200; ++n) rib.upsert(key(n), 1, r);
  EXPECT_EQ(rib.key_count(), 200u);
  EXPECT_EQ(rib.route_count(), 200u);
  // Second sender on one key; replacement is in-place.
  rib.upsert(key(5), 2, r);
  EXPECT_EQ(rib.route_count(), 201u);
  CompactRoute r2 = r;
  r2.vpn_label = 8;
  rib.upsert(key(5), 2, r2);
  EXPECT_EQ(rib.route_count(), 201u);
  int seen = 0;
  std::uint32_t label_from_2 = 0;
  rib.for_each(key(5), [&](ip::NodeId sender, const CompactRoute& rr) {
    ++seen;
    if (sender == 2) label_from_2 = rr.vpn_label;
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(label_from_2, 8u);

  EXPECT_TRUE(rib.erase(key(7), 1));
  EXPECT_FALSE(rib.erase(key(7), 1));  // already gone
  const auto affected = rib.erase_sender(1);
  EXPECT_EQ(affected.size(), 199u);  // all but the erased key(7)
  EXPECT_TRUE(std::is_sorted(affected.begin(), affected.end()));
  EXPECT_EQ(rib.route_count(), 1u);  // only sender 2's offer on key(5)
  EXPECT_EQ(rib.key_count(), 1u);
  EXPECT_GT(rib.bytes(), 0u);
}

TEST(BgpTypes, WithdrawWireBytesDeriveFromPrefix) {
  const VpnRouteKey k16{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  const VpnRouteKey k24{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.1.0/24")};
  // header (19) + MP_UNREACH overhead (8) + RD/label/len (12) + prefix bytes.
  EXPECT_EQ(withdraw_wire_bytes(k16), 19u + 8u + 12u + 2u);
  EXPECT_EQ(withdraw_wire_bytes(k24), 19u + 8u + 12u + 3u);
  EXPECT_LT(withdraw_wire_bytes(k16), withdraw_wire_bytes(k24));
}

TEST(Bgp, LegacyWithdrawBytesMatchDerivedSize) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  bgp.set_packing(false);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  bgp.withdraw(0, RouteDistinguisher{65000, 1},
               ip::Prefix::must_parse("10.1.0.0/16"));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  const auto n = f.cp.message_count("bgp.withdraw");
  ASSERT_GT(n, 0u);
  EXPECT_EQ(f.cp.byte_count("bgp.withdraw"), n * withdraw_wire_bytes(key));
}

namespace {
/// Drive the same announce/withdraw/flap/failover script against a
/// fresh RR fabric and return every speaker's Loc-RIB for comparison.
std::vector<std::vector<VpnRoute>> rr_script_ribs(bool packed,
                                                  std::uint64_t* messages,
                                                  std::uint64_t* events) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kRouteReflector);
  constexpr ip::NodeId kClients = 6;
  for (ip::NodeId n = 0; n < kClients + 2; ++n) {
    f.topo.add_node<Router>("n" + std::to_string(n), Role::kPe);
  }
  for (ip::NodeId n = 0; n < kClients; ++n) bgp.add_speaker(n);
  bgp.add_route_reflector(kClients);
  bgp.add_route_reflector(kClients + 1);
  bgp.set_packing(packed);
  bgp.start();

  // Multihomed prefixes, flaps, a withdraw, and a mid-stream failure.
  for (ip::NodeId n = 0; n < kClients; ++n) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      bgp.originate(n, f.route(p + 1, ("10." + std::to_string(p + 1) +
                                       ".0.0/16").c_str(),
                               n, 100 * n + p));
    }
  }
  f.topo.scheduler().run();
  // Same-tick withdraw + replace (flush-window supersede on the packed path).
  bgp.withdraw(0, RouteDistinguisher{65000, 1},
               ip::Prefix::must_parse("10.1.0.0/16"));
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0, 999));
  f.topo.scheduler().run();
  bgp.fail_speaker(1);
  f.topo.scheduler().run();

  if (messages != nullptr) {
    *messages = f.cp.message_count("bgp.update") +
                f.cp.message_count("bgp.withdraw");
  }
  if (events != nullptr) *events = f.cp.total_messages();
  std::vector<std::vector<VpnRoute>> ribs;
  for (ip::NodeId n = 0; n < kClients + 2; ++n) {
    ribs.push_back(bgp.loc_rib(n));
  }
  return ribs;
}
}  // namespace

TEST(Bgp, PackedAndLegacyConvergeToIdenticalRibs) {
  std::uint64_t packed_msgs = 0, legacy_msgs = 0;
  const auto packed = rr_script_ribs(true, &packed_msgs, nullptr);
  const auto legacy = rr_script_ribs(false, &legacy_msgs, nullptr);
  ASSERT_EQ(packed.size(), legacy.size());
  for (std::size_t n = 0; n < packed.size(); ++n) {
    ASSERT_EQ(packed[n].size(), legacy[n].size()) << "speaker " << n;
    for (std::size_t i = 0; i < packed[n].size(); ++i) {
      const VpnRoute& a = packed[n][i];
      const VpnRoute& b = legacy[n][i];
      EXPECT_EQ(a.rd, b.rd) << "speaker " << n;
      EXPECT_EQ(a.prefix.to_string(), b.prefix.to_string()) << "speaker " << n;
      EXPECT_EQ(a.next_hop_node, b.next_hop_node) << "speaker " << n;
      EXPECT_EQ(a.vpn_label, b.vpn_label) << "speaker " << n;
      EXPECT_EQ(a.local_pref, b.local_pref) << "speaker " << n;
      EXPECT_EQ(a.originator, b.originator) << "speaker " << n;
    }
  }
  // Packing exists to shrink the message count, not just match state.
  EXPECT_LT(packed_msgs, legacy_msgs);
}

TEST(Bgp, WithdrawThenReplaceInOneFlushWindowYieldsReplacement) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0, 100));
  f.topo.scheduler().run();
  // Withdraw and replacement land in the same flush window: the queued
  // withdraw is superseded in place and only the replacement reaches peers.
  bgp.withdraw(0, RouteDistinguisher{65000, 1},
               ip::Prefix::must_parse("10.1.0.0/16"));
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0, 200));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  for (ip::NodeId n = 0; n < 3; ++n) {
    const VpnRoute* best = bgp.best(n, key);
    ASSERT_NE(best, nullptr) << "speaker " << n;
    EXPECT_EQ(best->vpn_label, 200u) << "speaker " << n;
  }
  EXPECT_GT(bgp.rib_out().superseded(), 0u);
}

TEST(Bgp, ReflectionTerminatesUnderPacking) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kRouteReflector);
  for (ip::NodeId n = 0; n < 6; ++n) {
    f.topo.add_node<Router>("n" + std::to_string(n), Role::kPe);
  }
  for (ip::NodeId n = 0; n < 4; ++n) bgp.add_speaker(n);
  bgp.add_route_reflector(4);
  bgp.add_route_reflector(5);
  bgp.start();
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();  // returning at all proves no reflection loop
  const std::uint64_t settled = f.cp.total_messages();
  // Each client holds the route once per RR, never more (no echo back).
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  for (ip::NodeId n = 1; n < 4; ++n) {
    ASSERT_NE(bgp.best(n, key), nullptr);
    EXPECT_EQ(bgp.adj_rib_in_size(n), 2u);
  }
  // Re-announcing the identical route is fully damped: no new messages.
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  f.topo.scheduler().run();
  EXPECT_EQ(f.cp.total_messages(), settled);
}

TEST(Bgp, FailSpeakerKillsItsQueuedUpdates) {
  BgpFixture f;
  Bgp bgp(f.cp, Bgp::Mode::kFullMesh);
  for (ip::NodeId n = 0; n < 3; ++n) {
    f.topo.add_node<Router>("pe" + std::to_string(n), Role::kPe);
    bgp.add_speaker(n);
  }
  bgp.start();
  // Queued at pe0 but the speaker dies before its flush event fires: the
  // update dies with the sessions, exactly like an un-ACKed TCP send.
  bgp.originate(0, f.route(1, "10.1.0.0/16", 0));
  EXPECT_TRUE(bgp.rib_out().armed(0));
  bgp.fail_speaker(0);
  EXPECT_FALSE(bgp.rib_out().armed(0));
  f.topo.scheduler().run();
  const VpnRouteKey key{RouteDistinguisher{65000, 1},
                        ip::Prefix::must_parse("10.1.0.0/16")};
  EXPECT_EQ(bgp.best(1, key), nullptr);
  EXPECT_EQ(bgp.best(2, key), nullptr);
  // A live speaker whose flush targets the dead peer skips it cleanly.
  bgp.originate(1, f.route(2, "10.2.0.0/16", 1));
  f.topo.scheduler().run();
  const VpnRouteKey key2{RouteDistinguisher{65000, 2},
                         ip::Prefix::must_parse("10.2.0.0/16")};
  ASSERT_NE(bgp.best(2, key2), nullptr);
  EXPECT_EQ(bgp.best(0, key2), nullptr);  // dead peer never hears of it
}

TEST(Igp, TeOnlyChangeSkipsSpfEntirely) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  const net::LinkId ab = f.link(a, b, 1, 10e6);
  f.link(b, c, 1, 10e6);
  f.converge();
  const auto runs_before = f.igp.spf_runs();
  const auto te_before = f.igp.te_only_installs();
  // A reservation re-floods TE attributes but cannot move shortest paths:
  // the installs are classified TE-only and never reach the SPF scheduler.
  ASSERT_TRUE(f.igp.te_reserve(a.id(), ab, 4e6));
  f.topo.scheduler().run();
  EXPECT_EQ(f.igp.spf_runs(), runs_before);
  EXPECT_GT(f.igp.te_only_installs(), te_before);
  // The flood itself still happened: CSPF sees the new reservable figure.
  EXPECT_DOUBLE_EQ(f.igp.te_reservable(a.id(), ab), 6e6);
}

TEST(Igp, OffPathCostIncreaseSkipsSpfEverywhere) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1);
  f.link(b, c, 1);
  const net::LinkId ac = f.link(a, c, 5);  // never on a shortest path
  f.converge();
  Igp::SpfCounters before[3];
  for (int i = 0; i < 3; ++i) {
    before[i] = f.igp.router_spf_counters(f.routers[i]->id());
  }
  // 5 → 9: still worse than the 2-hop path, provably affects nothing.
  f.topo.link(ac).set_igp_cost(9);
  f.igp.notify_link_change(ac);
  f.topo.scheduler().run();
  for (int i = 0; i < 3; ++i) {
    const auto after = f.igp.router_spf_counters(f.routers[i]->id());
    EXPECT_EQ(after.full, before[i].full) << "router " << i;
    EXPECT_EQ(after.incremental, before[i].incremental) << "router " << i;
    EXPECT_GT(after.skipped, before[i].skipped) << "router " << i;
  }
  // Routing is untouched.
  EXPECT_EQ(f.igp.next_hop(a.id(), c.id())->via, b.id());
}

TEST(Igp, CostDecreaseRunsIncrementalAndReroutes) {
  IgpFixture f;
  auto& a = f.add("a");
  auto& b = f.add("b");
  auto& c = f.add("c");
  f.link(a, b, 1);
  f.link(b, c, 1);
  const net::LinkId ac = f.link(a, c, 5);
  f.converge();
  ASSERT_EQ(f.igp.next_hop(a.id(), c.id())->via, b.id());
  const auto full_before = f.igp.spf_full_runs();
  const auto incr_before = f.igp.spf_incremental_runs();
  f.topo.link(ac).set_igp_cost(1);
  f.igp.notify_link_change(ac);
  f.topo.scheduler().run();
  // Decrease-only change: seeded partial runs, zero full rebuilds.
  EXPECT_EQ(f.igp.spf_full_runs(), full_before);
  EXPECT_GT(f.igp.spf_incremental_runs(), incr_before);
  const auto* nh = f.igp.next_hop(a.id(), c.id());
  ASSERT_NE(nh, nullptr);
  EXPECT_EQ(nh->via, c.id());
  EXPECT_EQ(nh->cost, 1u);
}

TEST(Igp, IncrementalMatchesFullAcrossFlapSequence) {
  // Run the same flap script in both modes and compare every router's
  // next hop toward every destination — the A/B identity the bench guards
  // at scale, pinned here on a topology with ECMP and a detour.
  auto run_mode = [](bool full) {
    auto f = std::make_unique<IgpFixture>();
    f->igp.set_full_spf(full);
    auto& a = f->add("a");
    auto& b = f->add("b");
    auto& c = f->add("c");
    auto& d = f->add("d");
    auto& e = f->add("e");
    const net::LinkId ab = f->link(a, b, 1);
    f->link(a, c, 1);
    f->link(b, d, 1);
    f->link(c, d, 1);
    const net::LinkId de = f->link(d, e, 2);
    const net::LinkId ae = f->link(a, e, 9);
    f->converge();
    // Decrease onto the shortest path, increase off it, then break a tie.
    f->topo.link(ae).set_igp_cost(2);
    f->igp.notify_link_change(ae);
    f->topo.scheduler().run();
    f->topo.link(de).set_igp_cost(7);
    f->igp.notify_link_change(de);
    f->topo.scheduler().run();
    f->topo.link(ab).set_igp_cost(3);
    f->igp.notify_link_change(ab);
    f->topo.scheduler().run();
    return f;
  };
  const auto incremental = run_mode(false);
  const auto full = run_mode(true);
  for (const auto* src : incremental->routers) {
    for (const auto* dst : incremental->routers) {
      if (src == dst) continue;
      const auto inc = incremental->igp.next_hops_ecmp(src->id(), dst->id());
      const auto ref = full->igp.next_hops_ecmp(src->id(), dst->id());
      ASSERT_EQ(inc.size(), ref.size())
          << src->name() << "->" << dst->name();
      for (std::size_t i = 0; i < inc.size(); ++i) {
        EXPECT_EQ(inc[i].via, ref[i].via)
            << src->name() << "->" << dst->name();
        EXPECT_EQ(inc[i].cost, ref[i].cost)
            << src->name() << "->" << dst->name();
      }
    }
  }
  // The incremental run actually took the fast paths at least once.
  EXPECT_GT(incremental->igp.spf_incremental_runs() +
                incremental->igp.spf_skipped(),
            0u);
  EXPECT_EQ(full->igp.spf_incremental_runs(), 0u);
  EXPECT_EQ(full->igp.spf_skipped(), 0u);
}

TEST(RdRt, Formatting) {
  EXPECT_EQ((RouteDistinguisher{65000, 7}).to_string(), "65000:7");
  EXPECT_EQ((RouteTarget{65000, 9}).to_string(), "65000:9");
  VpnRoute r;
  r.route_targets = {RouteTarget{1, 2}, RouteTarget{3, 4}};
  EXPECT_TRUE(r.has_target(RouteTarget{3, 4}));
  EXPECT_FALSE(r.has_target(RouteTarget{3, 5}));
}

}  // namespace
}  // namespace mvpn::routing
