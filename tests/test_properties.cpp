#include <gtest/gtest.h>

#include <set>

#include "backbone/fixtures.hpp"
#include "ip/dir24_fib.hpp"
#include "ip/prefix_trie.hpp"
#include "ipsec/esp.hpp"
#include "qos/queues.hpp"
#include "qos/token_bucket.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace mvpn {
namespace {

// --- E1 invariant: the paper's N(N-1)/2 formula ----------------------------

class OverlayScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OverlayScaling, VcCountMatchesClosedForm) {
  const std::size_t n = GetParam();
  backbone::OverlayBackbone bb(4, 7);
  const vpn::VpnId v = bb.service.create_vpn("V");
  for (std::size_t i = 0; i < n; ++i) {
    auto& ce = bb.add_ce(i % 4, "CE" + std::to_string(i));
    const auto prefix = ip::Prefix(
        ip::Ipv4Address(10, std::uint8_t(1 + i / 250), std::uint8_t(i % 250),
                        0),
        24);
    bb.service.add_site(v, ce, prefix);
  }
  bb.service.provision();
  EXPECT_EQ(bb.service.pvc_count(), n * (n - 1) / 2);
  // Every circuit consumes switching state at both endpoints at least.
  EXPECT_GE(bb.service.total_switching_entries(), n * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, OverlayScaling,
                         ::testing::Values(2, 4, 10, 20));

class MplsScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MplsScaling, StateGrowsLinearlyInSites) {
  const std::size_t n = GetParam();
  backbone::BackboneConfig cfg;
  cfg.p_count = 3;
  cfg.pe_count = std::min<std::size_t>(n, 6);
  cfg.seed = 7;
  backbone::MplsBackbone bb(cfg);
  const vpn::VpnId v = bb.service.create_vpn("V");
  for (std::size_t i = 0; i < n; ++i) {
    bb.add_site(v, i % cfg.pe_count,
                ip::Prefix(ip::Ipv4Address(10, std::uint8_t(1 + i / 250),
                                           std::uint8_t(i % 250), 0),
                           24));
  }
  bb.start_and_converge();
  // Linear state: every PE holds one route per site in its VRF (its own
  // sites connected, the rest imported), NOT one per site pair.
  EXPECT_EQ(bb.service.total_vrf_routes(), n * cfg.pe_count);
  // BGP carries exactly one NLRI per site to every PE.
  EXPECT_EQ(bb.service.total_bgp_loc_rib(), n * cfg.pe_count);
  // VRF count: one per (PE with attached sites) per VPN.
  EXPECT_LE(bb.service.total_vrf_count(), cfg.pe_count);
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, MplsScaling,
                         ::testing::Values(6, 12, 24));

// --- LPM equivalence over random tables -------------------------------------

class FibEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FibEquivalence, TrieAndDir24AgreeEverywhere) {
  sim::Rng rng(GetParam());
  ip::PrefixTrie<std::uint16_t> trie;
  std::vector<std::pair<ip::Prefix, std::uint16_t>> routes;
  for (std::uint16_t i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(4, 32));
    const ip::Prefix p(ip::Ipv4Address(static_cast<std::uint32_t>(
                           rng.next_u64())),
                       len);
    routes.emplace_back(p, i);
    trie.insert(p, i);
  }
  ip::Dir24Fib fib;
  fib.build(routes);
  for (int i = 0; i < 5000; ++i) {
    const ip::Ipv4Address a(static_cast<std::uint32_t>(rng.next_u64()));
    const std::uint16_t* expect = trie.longest_match(a);
    const auto got = fib.lookup(a);
    ASSERT_EQ(got.has_value(), expect != nullptr) << a.to_string();
    if (expect != nullptr) ASSERT_EQ(*got, *expect) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FibEquivalence,
                         ::testing::Values(1, 17, 99, 2024));

// --- WFQ share property ------------------------------------------------------

class WfqShares
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WfqShares, ServiceMatchesWeights) {
  const auto [w0, w1] = GetParam();
  qos::WfqQueueDisc q({w0, w1}, 4000,
                      qos::class_band_selector({1, 0, 0, 0, 0, 0, 0, 0}));
  auto mk = [&](std::uint8_t dscp) {
    auto p = net::make_standalone_packet();
    p->ip.dscp = dscp;
    p->payload_bytes = 472;
    return p;
  };
  for (int i = 0; i < 1000; ++i) {
    q.enqueue(mk(10));  // AF → band 0
    q.enqueue(mk(0));   // BE → band 1
  }
  int band0 = 0;
  const int draws = 500;
  for (int i = 0; i < draws; ++i) {
    auto p = q.dequeue();
    ASSERT_NE(p, nullptr);
    if (p->ip.dscp == 10) ++band0;
  }
  const double expected = w0 / (w0 + w1);
  EXPECT_NEAR(static_cast<double>(band0) / draws, expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Weights, WfqShares,
                         ::testing::Values(std::make_pair(1.0, 1.0),
                                           std::make_pair(2.0, 1.0),
                                           std::make_pair(3.0, 1.0),
                                           std::make_pair(9.0, 1.0)));

// --- Isolation fuzz ----------------------------------------------------------

class IsolationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsolationFuzz, RandomVpnMeshNeverLeaks) {
  const std::uint64_t seed = GetParam();
  backbone::BackboneConfig cfg;
  cfg.p_count = 2;
  cfg.pe_count = 3;
  cfg.seed = seed;
  backbone::MplsBackbone bb(cfg);
  sim::Rng rng(seed * 31 + 1);

  constexpr std::size_t kVpns = 3;
  constexpr std::size_t kSitesPerVpn = 4;
  std::vector<vpn::VpnId> vpns;
  std::vector<std::vector<backbone::MplsBackbone::Site>> sites(kVpns);
  for (std::size_t v = 0; v < kVpns; ++v) {
    vpns.push_back(bb.service.create_vpn("V" + std::to_string(v)));
    for (std::size_t i = 0; i < kSitesPerVpn; ++i) {
      // Deliberately identical address plans in every VPN.
      const auto prefix =
          ip::Prefix(ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 0), 16);
      const auto pe = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cfg.pe_count) - 1));
      sites[v].push_back(bb.add_site(vpns[v], pe, prefix));
    }
  }
  bb.start_and_converge();

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb.topo.scheduler());
  for (auto& vs : sites) {
    for (auto& s : vs) sink.bind(*s.ce);
  }

  std::vector<std::unique_ptr<traffic::Source>> sources;
  std::uint32_t flow = 1;
  for (std::size_t v = 0; v < kVpns; ++v) {
    for (int k = 0; k < 8; ++k) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, 3));
      auto j = static_cast<std::size_t>(rng.uniform_int(0, 3));
      if (j == i) j = (j + 1) % kSitesPerVpn;
      traffic::FlowSpec f;
      f.src = ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 1);
      f.dst = ip::Ipv4Address(10, std::uint8_t(j + 1), 0,
                              std::uint8_t(rng.uniform_int(1, 200)));
      f.vpn = vpns[v];
      sources.push_back(std::make_unique<traffic::PoissonSource>(
          *sites[v][i].ce, f, flow, &probe, 50e3));
      sink.expect_flow(flow, qos::Phb::kBe, vpns[v]);
      ++flow;
    }
  }
  for (auto& s : sources) s->run(0, sim::kSecond);
  bb.topo.run_until(3 * sim::kSecond);

  EXPECT_GT(sink.delivered(), 0u);
  EXPECT_EQ(sink.leaks(), 0u);
  EXPECT_EQ(sink.unknown_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationFuzz,
                         ::testing::Values(3, 5, 8, 13, 21));

// --- Invariants on random topologies ----------------------------------------

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, AnyToAnyReachabilityAndIsolationHold) {
  const std::uint64_t seed = GetParam();
  sim::Rng shape_rng(seed * 7 + 3);
  const auto p_count =
      static_cast<std::size_t>(shape_rng.uniform_int(2, 6));
  const auto pe_count =
      static_cast<std::size_t>(shape_rng.uniform_int(2, 5));
  auto bb = backbone::make_random_backbone(p_count, pe_count, 0.3, seed);

  constexpr std::size_t kVpns = 2;
  std::vector<vpn::VpnId> vpns;
  std::vector<std::vector<backbone::MplsBackbone::Site>> sites(kVpns);
  for (std::size_t v = 0; v < kVpns; ++v) {
    vpns.push_back(bb->service.create_vpn("V" + std::to_string(v)));
    for (std::size_t i = 0; i < 3; ++i) {
      sites[v].push_back(bb->add_site(
          vpns[v],
          static_cast<std::size_t>(shape_rng.uniform_int(
              0, static_cast<std::int64_t>(pe_count) - 1)),
          ip::Prefix(ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 0), 16)));
    }
  }
  bb->start_and_converge();
  EXPECT_TRUE(bb->igp.synchronized());

  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, bb->topo.scheduler());
  for (auto& vs : sites) {
    for (auto& s : vs) sink.bind(*s.ce);
  }
  std::vector<std::unique_ptr<traffic::Source>> sources;
  std::uint32_t flow = 1;
  for (std::size_t v = 0; v < kVpns; ++v) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (i == j) continue;
        traffic::FlowSpec f;
        f.src = ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 1);
        f.dst = ip::Ipv4Address(10, std::uint8_t(j + 1), 0, 1);
        f.vpn = vpns[v];
        sources.push_back(std::make_unique<traffic::CbrSource>(
            *sites[v][i].ce, f, flow, &probe, 50e3));
        sink.expect_flow(flow, qos::Phb::kBe, vpns[v]);
        ++flow;
      }
    }
  }
  for (auto& s : sources) s->run(0, sim::kSecond);
  bb->topo.run_until(3 * sim::kSecond);

  std::uint64_t sent = 0;
  for (auto& s : sources) {
    sent += static_cast<traffic::CbrSource*>(s.get())->packets_sent();
  }
  EXPECT_EQ(sink.delivered(), sent) << "p=" << p_count << " pe=" << pe_count;
  EXPECT_EQ(sink.leaks(), 0u);
  EXPECT_EQ(sink.unknown_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- BGP mode equivalence: route reflection must not change outcomes --------

class BgpModeEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BgpModeEquivalence, LocRibsIdenticalUnderFullMeshAndRr) {
  const std::size_t sites = GetParam();
  auto build = [&](routing::Bgp::Mode mode) {
    backbone::BackboneConfig cfg;
    cfg.p_count = 2;
    cfg.pe_count = 4;
    cfg.bgp_mode = mode;
    cfg.route_reflector_count =
        mode == routing::Bgp::Mode::kRouteReflector ? 1 : 0;
    cfg.seed = 5;
    auto bb = std::make_unique<backbone::MplsBackbone>(cfg);
    const vpn::VpnId v = bb->service.create_vpn("V");
    for (std::size_t i = 0; i < sites; ++i) {
      bb->add_site(v, i % 4,
                   ip::Prefix(ip::Ipv4Address(10, std::uint8_t(i + 1), 0, 0),
                              16));
    }
    bb->start_and_converge();
    return bb;
  };
  auto fm = build(routing::Bgp::Mode::kFullMesh);
  auto rr = build(routing::Bgp::Mode::kRouteReflector);

  // Same sites → every PE must hold identical best paths either way.
  for (std::size_t pe = 0; pe < 4; ++pe) {
    const auto fm_rib = fm->bgp.loc_rib(fm->pes()[pe]->id());
    const auto rr_rib = rr->bgp.loc_rib(rr->pes()[pe]->id());
    ASSERT_EQ(fm_rib.size(), rr_rib.size());
    for (std::size_t i = 0; i < fm_rib.size(); ++i) {
      EXPECT_EQ(fm_rib[i].prefix, rr_rib[i].prefix);
      EXPECT_EQ(fm_rib[i].vpn_label, rr_rib[i].vpn_label);
      EXPECT_EQ(fm_rib[i].originator, rr_rib[i].originator);
    }
  }
  // And the data-plane state must agree too.
  EXPECT_EQ(fm->service.total_vrf_routes(), rr->service.total_vrf_routes());
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, BgpModeEquivalence,
                         ::testing::Values(4, 8, 16));

// --- Control-plane message growth is linear in sites -------------------------

TEST(ScalingShape, BgpMessagesLinearInSites) {
  auto messages_for = [](std::size_t sites, bool packed) {
    backbone::BackboneConfig cfg;
    cfg.p_count = 2;
    cfg.pe_count = 4;
    cfg.seed = 5;
    backbone::MplsBackbone bb(cfg);
    bb.bgp.set_packing(packed);
    const vpn::VpnId v = bb.service.create_vpn("V");
    for (std::size_t i = 0; i < sites; ++i) {
      bb.add_site(v, i % 4,
                  ip::Prefix(ip::Ipv4Address(10, std::uint8_t(1 + i / 200),
                                             std::uint8_t(i % 200), 0),
                             24));
    }
    bb.start_and_converge();
    return bb.cp.message_count("bgp.update");
  };
  // The per-route baseline is the linearity law: doubling sites doubles
  // updates (within rounding) — linear, not quadratic.
  const auto m8 = messages_for(8, false);
  const auto m16 = messages_for(16, false);
  const auto m32 = messages_for(32, false);
  EXPECT_NEAR(static_cast<double>(m16) / static_cast<double>(m8), 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(m32) / static_cast<double>(m16), 2.0, 0.2);
  // Update packing amortizes same-instant NLRI into shared messages, so it
  // must beat the per-route baseline by a wide margin at equal scale.
  const auto p32 = messages_for(32, true);
  EXPECT_LE(p32 * 2, m32);
}

// --- Determinism --------------------------------------------------------------

struct RunOutcome {
  std::uint64_t delivered = 0;
  std::uint64_t messages = 0;
  sim::SimTime end_time = 0;
  std::uint64_t executed_events = 0;
  bool operator==(const RunOutcome&) const = default;
};

RunOutcome run_once(std::uint64_t seed) {
  backbone::Figure2Scenario s = backbone::make_figure2_scenario(seed);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  traffic::PoissonSource src(*s.v1_site1.ce, f, 1, &probe, 300e3);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);
  src.run(0, sim::kSecond);
  s.backbone->topo.run_until(2 * sim::kSecond);
  return RunOutcome{sink.delivered(), s.backbone->cp.total_messages(),
                    s.backbone->topo.scheduler().now(),
                    s.backbone->topo.scheduler().executed_count()};
}

TEST(Determinism, SameSeedSameOutcome) {
  const RunOutcome a = run_once(77);
  const RunOutcome b = run_once(77);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedDifferentArrivals) {
  const RunOutcome a = run_once(77);
  const RunOutcome c = run_once(78);
  // Control-plane message counts are topology-determined and equal; the
  // Poisson arrival count should differ with overwhelming probability.
  EXPECT_EQ(a.messages, c.messages);
  EXPECT_NE(a.delivered, c.delivered);
}

// --- Zero-allocation steady state ---------------------------------------------

// Once the pools are warm, forwarding traffic must not grow the packet pool
// or the scheduler's event-node pool: every per-packet allocation has been
// replaced by recycling.
TEST(HotPath, SteadyStateZeroAllocation) {
  backbone::Figure2Scenario s = backbone::make_figure2_scenario(11);
  s.backbone->start_and_converge();
  qos::SlaProbe probe;
  traffic::MeasurementSink sink(probe, s.backbone->topo.scheduler());
  sink.bind(*s.v1_site2.ce);
  traffic::FlowSpec f;
  f.src = ip::Ipv4Address::must_parse("10.1.0.1");
  f.dst = ip::Ipv4Address::must_parse("10.2.0.1");
  f.vpn = s.vpn1;
  traffic::CbrSource src(*s.v1_site1.ce, f, 1, &probe, 500e3);
  sink.expect_flow(1, qos::Phb::kBe, s.vpn1);
  src.run(0, 3 * sim::kSecond);

  // Warm-up: first packets grow the pools to working-set size.
  s.backbone->topo.run_until(sim::kSecond / 2);
  const net::PacketPool& pool = s.backbone->topo.packet_factory().pool();
  const std::uint64_t allocated_warm = pool.allocated();
  const std::uint64_t reused_warm = pool.reused();
  const std::size_t nodes_warm =
      s.backbone->topo.scheduler().node_pool_size();
  const std::uint64_t delivered_warm = sink.delivered();

  s.backbone->topo.run_until(3 * sim::kSecond);
  EXPECT_GT(sink.delivered(), delivered_warm);  // traffic kept flowing
  EXPECT_GT(pool.reused(), reused_warm);        // served from the freelist
  EXPECT_EQ(pool.allocated(), allocated_warm);  // ...with zero new packets
  EXPECT_EQ(s.backbone->topo.scheduler().node_pool_size(), nodes_warm);
}

// --- Replay window property ----------------------------------------------------

class ReplayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayFuzz, AcceptsExactlyFreshInWindowSequences) {
  sim::Rng rng(GetParam());
  ipsec::ReplayWindow window(64);
  std::set<std::uint32_t> accepted;
  std::uint32_t top = 0;
  for (int i = 0; i < 5000; ++i) {
    // Random walk biased forward, with frequent duplicates.
    const auto seq = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(top) +
                                      rng.uniform_int(-70, 8)));
    const bool fresh = accepted.insert(seq).second;
    const bool in_window = seq + 64 > top;
    const bool got = window.check_and_update(seq);
    if (got) {
      EXPECT_TRUE(fresh) << "accepted replay of " << seq;
      EXPECT_TRUE(in_window) << "accepted ancient " << seq;
    } else if (fresh && in_window && seq > top) {
      ADD_FAILURE() << "rejected fresh forward seq " << seq;
    }
    top = std::max(top, seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayFuzz, ::testing::Values(1, 2, 3));

// --- Token bucket long-run rate -------------------------------------------------

class BucketRates : public ::testing::TestWithParam<double> {};

TEST_P(BucketRates, LongRunThroughputBoundedByCir) {
  const double cir = GetParam();  // bytes/s
  qos::TokenBucket tb(cir, 3000.0);
  sim::Rng rng(5);
  double accepted_bytes = 0;
  sim::SimTime now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += sim::from_seconds(rng.exponential(0.0005));
    const std::size_t bytes = 200 + static_cast<std::size_t>(
                                        rng.uniform_int(0, 1300));
    if (tb.consume(now, bytes)) accepted_bytes += static_cast<double>(bytes);
  }
  const double duration = sim::to_seconds(now);
  const double rate = accepted_bytes / duration;
  EXPECT_LE(rate, cir * 1.05 + 3000.0 / duration);  // CIR + burst amortized
  EXPECT_GT(rate, cir * 0.5);  // and the bucket is not spuriously starving
}

INSTANTIATE_TEST_SUITE_P(Cirs, BucketRates,
                         ::testing::Values(50e3, 200e3, 1e6));

}  // namespace
}  // namespace mvpn
