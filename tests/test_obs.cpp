#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "mpls/domain.hpp"
#include "mpls/rsvp_te.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/sync_profiler.hpp"
#include "obs/trace.hpp"
#include "sim/engine_observer.hpp"
#include "qos/queues.hpp"
#include "routing/control_plane.hpp"
#include "routing/igp.hpp"
#include "sim/scheduler.hpp"
#include "vpn/diagnostics.hpp"
#include "vpn/oam.hpp"
#include "vpn/router.hpp"

namespace mvpn {
namespace {

using obs::Category;
using obs::DropReason;
using obs::EventType;
using obs::FlightRecorder;
using obs::TraceEvent;

std::size_t count_type(const std::vector<TraceEvent>& events, EventType t) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [t](const TraceEvent& e) { return e.type == t; }));
}

std::size_t count_reason(const std::vector<TraceEvent>& events,
                         DropReason r) {
  return static_cast<std::size_t>(std::count_if(
      events.begin(), events.end(), [r](const TraceEvent& e) {
        return e.type == EventType::kDrop && e.reason == r;
      }));
}

// --- flight recorder ring -------------------------------------------------

TEST(FlightRecorder, WraparoundOverwritesOldest) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched, 8);
  ASSERT_EQ(rec.capacity(), 8u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.record({.a = i, .type = EventType::kEnqueue});
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  EXPECT_EQ(rec.size(), 8u);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the last 8 records survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12u + i);
  }

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched, 6);
  EXPECT_EQ(rec.capacity(), 8u);
  rec.record({.a = 1, .type = EventType::kEnqueue});
  rec.set_capacity(100);
  EXPECT_EQ(rec.capacity(), 128u);
  EXPECT_EQ(rec.size(), 0u);  // resize clears
}

TEST(FlightRecorder, CategoryMaskGatesEnabled) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched);
  // Disabled by default: every category reads false.
  for (auto c : {Category::kQueue, Category::kLink, Category::kMpls,
                 Category::kVpn, Category::kSignaling, Category::kOam}) {
    EXPECT_FALSE(rec.enabled(c));
  }
  rec.enable(static_cast<std::uint32_t>(Category::kQueue) |
             static_cast<std::uint32_t>(Category::kOam));
  EXPECT_TRUE(rec.enabled(Category::kQueue));
  EXPECT_TRUE(rec.enabled(Category::kOam));
  EXPECT_FALSE(rec.enabled(Category::kMpls));
  EXPECT_FALSE(rec.enabled(Category::kSignaling));

  rec.disable();
  EXPECT_EQ(rec.mask(), 0u);
  EXPECT_FALSE(rec.enabled(Category::kQueue));

  // enable() clamps to the compile-time mask: nothing outside it can ever
  // light up.
  rec.enable(obs::kAllCategories);
  EXPECT_EQ(rec.mask(), obs::kAllCategories & obs::kCompiledTraceMask);
}

TEST(FlightRecorder, DisabledRecorderIgnoresEnable) {
  FlightRecorder& rec = obs::disabled_recorder();
  rec.enable(obs::kAllCategories);
  EXPECT_EQ(rec.mask(), 0u);
  EXPECT_FALSE(rec.enabled(Category::kQueue));
}

// --- drop-reason attribution ---------------------------------------------

TEST(TraceEvents, TailDropCarriesReasonAndLocation) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched);
  rec.enable();
  net::PacketFactory factory;

  net::DropTailQueue q(2);
  q.set_trace_context(&rec, /*node=*/7, /*link=*/3);
  for (int i = 0; i < 5; ++i) {
    net::PacketPtr p = factory.make();
    p->payload_bytes = 100;
    q.enqueue(std::move(p));
  }
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.dropped().packets.value(), 3u);

  const auto events = rec.snapshot();
  EXPECT_EQ(count_type(events, EventType::kEnqueue), 2u);
  EXPECT_EQ(count_reason(events, DropReason::kTailDrop), 3u);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.node, 7u);
    EXPECT_EQ(e.a, 3u);
    EXPECT_GT(e.bytes, 0u);
  }
}

TEST(TraceEvents, RedDropsDistinguishEarlyFromForced) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched);
  rec.enable();
  net::PacketFactory factory;

  // Instantaneous averaging with a tight [1, 2] threshold band: the first
  // packets pass, the early-drop region engages almost immediately, and
  // with nothing dequeued the average soon crosses 2*max_th into forced
  // territory.
  qos::RedParams params;
  params.capacity_packets = 100;
  params.min_th = 1;
  params.max_th = 2;
  params.max_p = 0.5;
  params.ewma_weight = 1.0;
  qos::RedQueueDisc q(params, sched, sim::Rng(42));
  q.set_trace_context(&rec, 1, 0);
  for (int i = 0; i < 50; ++i) {
    net::PacketPtr p = factory.make();
    p->payload_bytes = 100;
    q.enqueue(std::move(p));
  }

  const auto events = rec.snapshot();
  EXPECT_EQ(count_reason(events, DropReason::kRedEarly),
            q.early_drops().value());
  EXPECT_EQ(count_reason(events, DropReason::kRedForced),
            q.forced_drops().value());
  EXPECT_GT(q.early_drops().value(), 0u);
  EXPECT_GT(q.forced_drops().value(), 0u);
  EXPECT_EQ(count_type(events, EventType::kEnqueue) +
                count_type(events, EventType::kDrop),
            50u);
}

// --- composable packet taps ----------------------------------------------

/// Minimal node that just absorbs deliveries.
class AbsorbNode : public net::Node {
 public:
  using Node::Node;
  void receive(net::PacketPtr p, ip::IfIndex) override { p.reset(); }
};

TEST(PacketTaps, MultipleTapsCoexistAndRemoveIndividually) {
  net::Topology topo;
  auto& a = topo.add_node<AbsorbNode>("a");
  auto& b = topo.add_node<AbsorbNode>("b");
  const net::LinkId l = topo.connect(a.id(), b.id());
  topo.recorder().enable();

  int first = 0;
  int second = 0;
  const auto t1 =
      topo.add_packet_tap([&](ip::NodeId, const net::Packet&) { ++first; });
  const auto t2 =
      topo.add_packet_tap([&](ip::NodeId, const net::Packet&) { ++second; });
  EXPECT_EQ(topo.packet_tap_count(), 2u);

  auto send = [&] {
    net::PacketPtr p = topo.packet_factory().make();
    p->payload_bytes = 100;
    topo.link(l).transmit(a.id(), std::move(p));
    topo.scheduler().run();
  };
  send();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);

  EXPECT_TRUE(topo.remove_packet_tap(t1));
  send();
  EXPECT_EQ(first, 1);   // removed tap stays silent
  EXPECT_EQ(second, 2);  // the other keeps observing
  EXPECT_EQ(topo.packet_tap_count(), 1u);
  EXPECT_FALSE(topo.remove_packet_tap(t1));  // double-remove is harmless
  EXPECT_TRUE(topo.remove_packet_tap(t2));

  // Both deliveries were traced regardless of tap churn.
  EXPECT_EQ(count_type(topo.recorder().snapshot(), EventType::kDeliver), 2u);
}

// --- metrics registry -----------------------------------------------------

TEST(MetricsRegistry, GaugesAndCountersSnapshotSorted) {
  obs::MetricsRegistry reg;
  double g = 1.5;
  reg.add_gauge("z/gauge", [&g] { return g; });
  stats::Counter c;
  c.add(3);
  reg.add_counter("a/counter", &c);
  ASSERT_EQ(reg.metric_count(), 2u);

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "a/counter");
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].name, "z/gauge");
  EXPECT_DOUBLE_EQ(snap[1].value, 1.5);

  g = 2.5;
  c.add(1);
  snap = reg.snapshot();  // sources are live references
  EXPECT_DOUBLE_EQ(snap[0].value, 4.0);
  EXPECT_DOUBLE_EQ(snap[1].value, 2.5);

  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"a/counter\":4"), std::string::npos);

  reg.remove_prefix("a/");
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(MetricsRegistry, NamedCountersSelfRegisterWhileHookInstalled) {
  obs::MetricsRegistry reg;
  reg.install_counter_hook();
  {
    stats::Counter dup1("dup");
    stats::Counter dup2("dup");  // same name: deduplicated with #1
    stats::Counter anon;         // unnamed: never registers
    dup1.add(1);
    dup2.add(2);
    anon.add(9);
    EXPECT_EQ(reg.metric_count(), 2u);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "counters/dup");
    EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
    EXPECT_EQ(snap[1].name, "counters/dup#1");
    EXPECT_DOUBLE_EQ(snap[1].value, 2.0);

    // Copies never carry the registration: destroying the copy must not
    // unhook the original.
    stats::Counter copy = dup1;
    copy.add(5);
    EXPECT_EQ(reg.metric_count(), 2u);
  }
  EXPECT_EQ(reg.metric_count(), 0u);  // destruction unregisters

  reg.uninstall_counter_hook();
  stats::Counter post("post");
  EXPECT_EQ(reg.metric_count(), 0u);
}

TEST(MetricsRegistry, PeriodicSnapshotsFollowSimClock) {
  sim::Scheduler sched;
  obs::MetricsRegistry reg;
  std::uint64_t ticks = 0;
  reg.add_gauge("ticks", [&ticks] { return static_cast<double>(++ticks); });

  obs::PeriodicSnapshots snaps(reg, sched);
  snaps.start(10 * sim::kMillisecond);
  sched.run_until(55 * sim::kMillisecond);
  EXPECT_EQ(snaps.count(), 5u);
  snaps.stop();
  sched.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(snaps.count(), 5u);

  std::ostringstream os;
  snaps.write_json(os);
  EXPECT_NE(os.str().find("\"t_s\":0.01"), std::string::npos);
  EXPECT_NE(os.str().find("\"ticks\":1"), std::string::npos);
}

// --- sinks ----------------------------------------------------------------

TEST(Sinks, JsonlAndChromeTraceRenderEvents) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched, 16);
  rec.record({.packet_id = 42,
              .node = 1,
              .bytes = 100,
              .type = EventType::kDrop,
              .reason = DropReason::kRedEarly,
              .cls = 2});
  rec.record({.node = 0, .a = 5, .type = EventType::kLspUp});

  std::ostringstream jl;
  obs::write_jsonl(rec, jl);
  const std::string jsonl = jl.str();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"type\":\"drop\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"reason\":\"red_early\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"lsp_up\""), std::string::npos);
  // Default namer falls back to node<N>.
  EXPECT_NE(jsonl.find("\"node\":\"node1\""), std::string::npos);

  std::ostringstream ct;
  obs::write_chrome_trace(
      rec, ct, [](std::uint32_t id) { return "R" + std::to_string(id); });
  const std::string chrome = ct.str();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(chrome.find("\"R1\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);  // instants
}

// --- diagnostics coexistence under tracing --------------------------------

/// LSR chain a — b — c with a TE LSP a→c (mirrors the OAM fixture of
/// test_vpn), recorder armed from the start so signaling is captured too.
struct TracedOamFixture {
  net::Topology topo{7};
  routing::ControlPlane cp{topo};
  routing::Igp igp{cp};
  mpls::MplsDomain domain;
  mpls::RsvpTe rsvp{cp, igp, domain};
  vpn::Router* a;
  vpn::Router* b;
  vpn::Router* c;
  mpls::LspId lsp = 0;

  TracedOamFixture() {
    topo.recorder().enable();
    a = &topo.add_node<vpn::Router>("a", vpn::Role::kP);
    b = &topo.add_node<vpn::Router>("b", vpn::Role::kP);
    c = &topo.add_node<vpn::Router>("c", vpn::Role::kP);
    for (vpn::Router* r : {a, b, c}) {
      igp.add_router(r->id());
      r->set_lsr_state(&domain.state_of(r->id()));
    }
    topo.connect(a->id(), b->id());
    topo.connect(b->id(), c->id());
    igp.start();
    topo.scheduler().run();
    mpls::TeLspConfig cfg;
    cfg.head = a->id();
    cfg.tail = c->id();
    cfg.bandwidth_bps = 1e6;
    lsp = rsvp.signal(cfg);
    topo.scheduler().run();
  }
};

TEST(Coexistence, TraceRouteDoesNotDisturbOamMonitorUnderTracing) {
  TracedOamFixture f;
  ASSERT_EQ(f.rsvp.lsp(f.lsp).state, mpls::RsvpTe::LspState::kUp);

  vpn::LspOam oam(f.topo, f.cp, f.rsvp);
  int down_events = 0;
  oam.monitor(f.lsp, 50 * sim::kMillisecond, 3,
              [&](mpls::LspId) { ++down_events; });
  f.topo.run_until(f.topo.scheduler().now() + 300 * sim::kMillisecond);
  ASSERT_EQ(down_events, 0);
  const std::uint64_t replies_before = oam.replies_received();
  ASSERT_GT(replies_before, 0u);

  // A trace through the same topology: its taps must ride alongside the
  // monitor's OAM tap, and be fully unhooked afterwards.
  const vpn::TraceResult result = vpn::trace_route(
      f.topo, *f.a, ip::Ipv4Address::must_parse("10.0.0.1"),
      ip::Ipv4Address::must_parse("10.99.0.1"), 0,
      120 * sim::kMillisecond);
  EXPECT_FALSE(result.delivered);  // a P router has no route for this
  EXPECT_EQ(f.topo.packet_tap_count(), 0u);

  f.topo.run_until(f.topo.scheduler().now() + 300 * sim::kMillisecond);
  EXPECT_EQ(down_events, 0);  // monitor kept running throughout
  EXPECT_GT(oam.replies_received(), replies_before);

  const auto events = f.topo.recorder().snapshot();
  EXPECT_GT(count_type(events, EventType::kLspUp), 0u);     // signaling
  EXPECT_GT(count_type(events, EventType::kOamProbe), 0u);  // monitor pings
  EXPECT_GT(count_type(events, EventType::kOamReply), 0u);
  // The doomed trace probe shows up as a routed drop, with its reason.
  EXPECT_GT(count_reason(events, DropReason::kNoRoute), 0u);
}

// --- epoch sync profiler --------------------------------------------------

sim::EngineObserver::WorkerEpoch worker_epoch(std::uint32_t shard,
                                              std::uint64_t epoch,
                                              std::uint64_t exec_ns,
                                              std::uint64_t events) {
  sim::EngineObserver::WorkerEpoch we;
  we.shard = shard;
  we.epoch = epoch;
  we.window_start = static_cast<sim::SimTime>((epoch - 1) * 100);
  we.window_end = static_cast<sim::SimTime>(epoch * 100);
  we.begin_ns = epoch * 10000 + shard;
  we.wait_ns = 5;
  we.exec_ns = exec_ns;
  we.events = events;
  return we;
}

TEST(SyncProfiler, LaneRingWrapsKeepingNewestOldestFirst) {
  obs::SyncProfiler prof(1, /*capacity=*/4);
  for (std::uint64_t e = 1; e <= 10; ++e) {
    prof.on_worker_epoch(worker_epoch(0, e, 50, e));
  }
  const auto slots = prof.worker_snapshot(0);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots.front().epoch, 7u);
  EXPECT_EQ(slots.back().epoch, 10u);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].epoch, slots[i - 1].epoch + 1);
  }
  // Aggregates cover all ten epochs, not just the retained tail.
  const auto rep = prof.report();
  ASSERT_EQ(rep.lanes.size(), 1u);
  EXPECT_EQ(rep.lanes[0].epochs, 10u);
  EXPECT_EQ(rep.lanes[0].events, 55u);  // 1 + 2 + ... + 10
  EXPECT_EQ(rep.lanes[0].exec_ns, 500u);
}

TEST(SyncProfiler, SerialModeReportsOneBusyLane) {
  obs::SyncProfiler prof(1);
  prof.record_serial(/*exec_ns=*/2'000'000'000, /*events=*/12345);
  const auto rep = prof.report();
  EXPECT_TRUE(rep.serial);
  EXPECT_EQ(rep.shards, 1u);
  EXPECT_EQ(rep.epochs, 0u);
  ASSERT_EQ(rep.lanes.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.lanes[0].busy_fraction, 1.0);
  EXPECT_EQ(rep.lanes[0].events, 12345u);
  EXPECT_NEAR(rep.wall_s, 2.0, 1e-9);
  EXPECT_NE(rep.to_table().find("serial engine"), std::string::npos);
  std::ostringstream js;
  rep.write_json(js);
  EXPECT_NE(js.str().find("\"serial\":true"), std::string::npos);
  EXPECT_NE(js.str().find("\"busy_fraction\":1"), std::string::npos);
}

TEST(SyncProfiler, CoordinatorAttributesCriticalShardAndFoldsDrain) {
  obs::SyncProfiler prof(2, 8);
  prof.set_cache_sampler(
      [](std::uint32_t shard, std::uint64_t& h, std::uint64_t& m) {
        h = 100 + shard;
        m = shard;
      });
  auto feed = [&](std::uint64_t epoch, std::uint64_t exec0,
                  std::uint64_t exec1) {
    prof.on_worker_epoch(worker_epoch(0, epoch, exec0, 3));
    prof.on_worker_epoch(worker_epoch(1, epoch, exec1, 3));
    const std::uint64_t per_src[2] = {4, 6};
    prof.record_exchange(/*drain_ns=*/77, /*handoffs=*/10, per_src, 2);
    prof.record_batch(2);
    prof.record_batch(8);
    sim::EngineObserver::CoordinatorEpoch ce;
    ce.epoch = epoch;
    ce.window_start = static_cast<sim::SimTime>((epoch - 1) * 100);
    ce.window_end = static_cast<sim::SimTime>(epoch * 100);
    ce.begin_ns = epoch * 10000;
    ce.wait_ns = 9;
    ce.parked = true;
    prof.on_coordinator_epoch(ce);
  };
  feed(1, 100, 200);  // shard 1 slowest
  feed(2, 300, 50);   // shard 0 slowest
  feed(3, 10, 20);    // shard 1 slowest
  EXPECT_EQ(prof.epochs(), 3u);

  const auto rep = prof.report();
  ASSERT_EQ(rep.lanes.size(), 2u);
  EXPECT_EQ(rep.lanes[0].critical_epochs, 1u);
  EXPECT_EQ(rep.lanes[1].critical_epochs, 2u);
  EXPECT_EQ(rep.handoffs, 30u);
  EXPECT_EQ(rep.delivery_batches, 6u);
  EXPECT_EQ(rep.lanes[0].handoffs_out, 12u);  // 3 epochs x per_src[0]
  EXPECT_EQ(rep.lanes[1].handoffs_out, 18u);
  EXPECT_EQ(rep.drain_ns, 231u);
  EXPECT_EQ(rep.coord_wait_ns, 27u);
  EXPECT_EQ(rep.coord_parks, 3u);
  EXPECT_GE(rep.batch_max, 8.0);
  // Cache sampler results land on the coordinator's per-shard state.
  EXPECT_EQ(rep.lanes[1].cache_hits, 101u);
  EXPECT_EQ(rep.lanes[1].cache_misses, 1u);

  const auto coords = prof.coordinator_snapshot();
  ASSERT_EQ(coords.size(), 3u);
  EXPECT_EQ(coords[0].drain_ns, 77u);  // folded from record_exchange
  EXPECT_EQ(coords[0].handoffs, 10u);
  EXPECT_NE(coords[0].parked, 0);

  const auto se = prof.shard_epoch_snapshot(1);
  ASSERT_EQ(se.size(), 3u);
  EXPECT_EQ(se.back().handoffs_out, 18u);  // cumulative
}

TEST(SyncProfiler, RegistersEngineSyncGauges) {
  obs::SyncProfiler prof(2, 8);
  prof.on_worker_epoch(worker_epoch(0, 1, 40, 7));
  prof.on_worker_epoch(worker_epoch(1, 1, 60, 9));
  sim::EngineObserver::CoordinatorEpoch ce;
  ce.epoch = 1;
  prof.on_coordinator_epoch(ce);

  obs::MetricsRegistry registry;
  obs::register_sync_metrics(prof, registry);
  const auto snap = registry.snapshot();
  const auto value = [&](const std::string& name) -> double {
    for (const auto& s : snap) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "gauge missing: " << name;
    return -1.0;
  };
  EXPECT_EQ(value("engine/sync/epochs"), 1.0);
  EXPECT_EQ(value("engine/sync/shard0/events"), 7.0);
  EXPECT_EQ(value("engine/sync/shard1/events"), 9.0);
}

TEST(Sinks, ChromeTraceGrowsEngineLanesWithProfiler) {
  sim::Scheduler sched;
  FlightRecorder rec(&sched, 16);
  rec.record({.node = 0, .a = 5, .type = EventType::kLspUp});

  obs::SyncProfiler prof(2, 8);
  prof.on_worker_epoch(worker_epoch(0, 1, 40, 7));
  prof.on_worker_epoch(worker_epoch(1, 1, 60, 9));
  sim::EngineObserver::CoordinatorEpoch ce;
  ce.epoch = 1;
  ce.window_end = 100;
  ce.wait_ns = 11;
  prof.on_coordinator_epoch(ce);

  std::ostringstream ct;
  obs::write_chrome_trace(rec, ct, {}, &prof);
  const std::string chrome = ct.str();
  // Engine process (pid 2) with one lane per worker plus the coordinator.
  EXPECT_NE(chrome.find("\"engine\""), std::string::npos);
  EXPECT_NE(chrome.find("\"shard0 worker\""), std::string::npos);
  EXPECT_NE(chrome.find("\"shard1 worker\""), std::string::npos);
  EXPECT_NE(chrome.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"barrier\""), std::string::npos);
  // Null profiler keeps the old shape: no engine lanes.
  std::ostringstream plain;
  obs::write_chrome_trace(rec, plain, {}, nullptr);
  EXPECT_EQ(plain.str().find("\"cat\":\"engine\""), std::string::npos);
}

}  // namespace
}  // namespace mvpn
