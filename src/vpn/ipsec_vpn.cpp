#include "vpn/ipsec_vpn.hpp"

#include <stdexcept>

namespace mvpn::vpn {

IpsecVpnService::IpsecVpnService(net::Topology& topo,
                                 routing::ControlPlane& cp,
                                 routing::Igp& igp, ipsec::CipherSuite suite)
    : topo_(topo), cp_(cp), igp_(igp), suite_(suite) {
  igp_.on_spf([this](ip::NodeId router) { sync_fib(router); });
}

void IpsecVpnService::enroll_router(Router& r) {
  members_[r.id()] = &r;
  igp_.add_router(r.id());
}

VpnId IpsecVpnService::create_vpn(const std::string& name) {
  const VpnId id = next_vpn_++;
  names_[id] = name;
  sites_[id] = {};
  return id;
}

void IpsecVpnService::add_site(VpnId vpn, Router& gateway,
                               const ip::Prefix& site_prefix) {
  auto it = sites_.find(vpn);
  if (it == sites_.end()) throw std::invalid_argument("ipsec: unknown VPN");
  if (members_.find(gateway.id()) == members_.end()) {
    throw std::invalid_argument("ipsec: gateway must be enrolled first");
  }
  gateway.add_local_prefix(site_prefix, vpn);
  const Site site{&gateway, site_prefix};
  if (started_) {
    for (const Site& other : it->second) negotiate(vpn, site, other);
  }
  it->second.push_back(site);
}

void IpsecVpnService::sync_fib(ip::NodeId router) {
  auto rit = members_.find(router);
  if (rit == members_.end()) return;
  Router& r = *rit->second;
  for (const auto& [other_id, other] : members_) {
    if (other_id == router) continue;
    const auto hops = igp_.next_hops_ecmp(router, other_id);
    if (hops.empty()) continue;
    ip::RouteEntry e;
    e.prefix = ip::Prefix::host(other->loopback());
    e.next_hop.node = hops.front().via;
    e.next_hop.iface = hops.front().iface;
    for (const auto& h : hops) {
      ip::NextHop alt;
      alt.node = h.via;
      alt.iface = h.iface;
      e.ecmp.push_back(alt);
    }
    e.source = ip::RouteSource::kIgp;
    e.admin_distance = ip::default_admin_distance(ip::RouteSource::kIgp);
    e.metric = hops.front().cost;
    r.fib().replace(e);
  }
}

void IpsecVpnService::negotiate(VpnId vpn, const Site& a, const Site& b) {
  (void)vpn;
  Router* gw_a = a.gateway;
  Router* gw_b = b.gateway;
  const ip::Prefix prefix_a = a.prefix;
  const ip::Prefix prefix_b = b.prefix;

  const std::uint64_t seed =
      topo_.seed() ^ (std::uint64_t{gw_a->id()} << 32) ^ gw_b->id();
  auto neg = std::make_unique<ipsec::IkeNegotiation>(
      cp_, gw_a->id(), gw_b->id(), gw_a->loopback(), gw_b->loopback(), suite_,
      seed);
  auto* neg_raw = neg.get();
  negotiations_.push_back(std::move(neg));

  neg_raw->start([this, gw_a, gw_b, prefix_a, prefix_b](
                     const ipsec::SaConfig& out_sa,
                     const ipsec::SaConfig& in_sa) {
    // a→b direction.
    gw_a->add_outbound_sa(prefix_b, std::make_shared<ipsec::EspSa>(out_sa));
    gw_b->add_inbound_sa(std::make_shared<ipsec::EspSa>(out_sa));
    // b→a direction.
    gw_b->add_outbound_sa(prefix_a, std::make_shared<ipsec::EspSa>(in_sa));
    gw_a->add_inbound_sa(std::make_shared<ipsec::EspSa>(in_sa));
    if (established_count() == negotiations_.size()) {
      all_established_at_ = topo_.scheduler().now();
    }
  });
}

void IpsecVpnService::establish() {
  if (!started_) {
    started_ = true;
    igp_.start();
  }
  for (const auto& [vpn, members] : sites_) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        negotiate(vpn, members[i], members[j]);
      }
    }
  }
}

std::size_t IpsecVpnService::established_count() const {
  std::size_t n = 0;
  for (const auto& neg : negotiations_) {
    if (neg->state() == ipsec::IkeNegotiation::State::kEstablished) ++n;
  }
  return n;
}

void IpsecVpnService::set_crypto_cost(ipsec::CryptoCostModel model) {
  for (auto& [id, r] : members_) r->set_crypto_cost(model);
}

}  // namespace mvpn::vpn
