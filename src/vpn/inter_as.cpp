#include "vpn/inter_as.hpp"

namespace mvpn::vpn {

InterAsPeering::InterAsPeering(routing::ControlPlane& cp,
                               MplsVpnService& service_a, Router& asbr_a,
                               MplsVpnService& service_b, Router& asbr_b)
    : cp_(cp) {
  sides_[0] = Side{&service_a, &asbr_a};
  sides_[1] = Side{&service_b, &asbr_b};
  if (asbr_a.interface_to(asbr_b.id()) == ip::kInvalidIf) {
    throw std::invalid_argument("InterAsPeering: ASBRs are not adjacent");
  }
  service_a.bgp().on_route(
      [this](ip::NodeId at, const routing::VpnRoute& route, bool withdrawn) {
        if (at == sides_[0].asbr->id()) on_local_route(0, route, withdrawn);
      });
  service_b.bgp().on_route(
      [this](ip::NodeId at, const routing::VpnRoute& route, bool withdrawn) {
        if (at == sides_[1].asbr->id()) on_local_route(1, route, withdrawn);
      });
}

void InterAsPeering::stitch(VpnId vpn_a, VpnId vpn_b) {
  // Back-to-back VRFs: bind the inter-AS interface into the VPN's VRF on
  // both ASBRs.
  sides_[0].service->bind_vrf_interface(vpn_a, *sides_[0].asbr,
                                        sides_[1].asbr->id());
  sides_[1].service->bind_vrf_interface(vpn_b, *sides_[1].asbr,
                                        sides_[0].asbr->id());
  Stitch s;
  s.vpn[0] = vpn_a;
  s.vpn[1] = vpn_b;
  stitches_.push_back(s);

  // Replay reachability that already converged before the peering came up
  // (stitching after start() is legal).
  for (int side = 0; side < 2; ++side) {
    for (const routing::VpnRoute& route :
         sides_[side].service->bgp().loc_rib(sides_[side].asbr->id())) {
      on_local_route(side, route, false);
    }
  }
}

void InterAsPeering::on_local_route(int side, const routing::VpnRoute& route,
                                    bool withdrawn) {
  const Side& from = sides_[side];
  // Never re-export what the ASBR itself originated (including our own
  // stitched re-originations) — that is the option-A loop guard.
  if (!withdrawn && route.originator == from.asbr->id()) return;

  for (const Stitch& s : stitches_) {
    const VpnId from_vpn = s.vpn[side];
    const VpnId to_vpn = s.vpn[1 - side];
    // Withdraw events carry no route targets; match on the RD instead.
    const bool matches =
        withdrawn ? route.rd == from.service->rd_of(from_vpn)
                  : route.has_target(from.service->rt_of(from_vpn));
    if (!matches) continue;
    if (peer_installed_[side].count({from_vpn, route.prefix}) != 0) {
      continue;  // came from the peer in the first place
    }

    ++updates_sent_;
    const int to_side = 1 - side;
    const ip::Prefix prefix = route.prefix;
    cp_.send_session(from.asbr->id(), sides_[to_side].asbr->id(),
                     "interas.update", 40 + (withdrawn ? 0 : 12),
                     [this, to_side, to_vpn, prefix, withdrawn] {
                       receive_update(to_side, to_vpn, prefix, withdrawn);
                     });
  }
}

void InterAsPeering::receive_update(int to_side, VpnId to_vpn,
                                    ip::Prefix prefix, bool withdrawn) {
  const Side& to = sides_[to_side];
  const Side& from = sides_[1 - to_side];
  Vrf* vrf = to.asbr->vrf_by_vpn(to_vpn);
  if (vrf == nullptr) return;

  if (withdrawn) {
    const ip::RouteEntry* cur = vrf->table().find(prefix);
    if (cur != nullptr && cur->source == ip::RouteSource::kBgp) {
      vrf->table().remove(prefix);
    }
    peer_installed_[to_side].erase({to_vpn, prefix});
    to.service->withdraw_external(to_vpn, *to.asbr, prefix);
    return;
  }

  // Data plane: plain IP next hop across the attachment circuit toward
  // the peer ASBR (like a CE route), eBGP-grade admin distance.
  ip::RouteEntry entry;
  entry.prefix = prefix;
  entry.next_hop.node = from.asbr->id();
  entry.next_hop.iface = to.asbr->interface_to(from.asbr->id());
  entry.source = ip::RouteSource::kBgp;
  entry.admin_distance = 20;
  vrf->table().install(entry);
  peer_installed_[to_side].insert({to_vpn, prefix});

  // Control plane: re-originate into this provider's MP-BGP so its PEs
  // import the prefix with this ASBR as the egress.
  to.service->originate_external(to_vpn, *to.asbr, prefix);
}

}  // namespace mvpn::vpn
