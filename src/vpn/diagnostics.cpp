#include "vpn/diagnostics.hpp"

#include <sstream>

#include "mpls/lfib.hpp"

namespace mvpn::vpn {

std::string TraceResult::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) os << " -> ";
    const TraceHop& h = hops[i];
    os << h.node_name;
    if (!h.labels.empty() || h.encrypted) {
      os << "[";
      for (auto it = h.labels.rbegin(); it != h.labels.rend(); ++it) {
        if (it != h.labels.rbegin()) os << "/";
        os << it->label;
      }
      if (h.encrypted) os << (h.labels.empty() ? "esp" : "+esp");
      os << "]";
    }
  }
  if (delivered) {
    os << " => delivered (vpn " << delivered_vpn << ", "
       << sim::to_seconds(latency) * 1e3 << " ms)";
  } else {
    os << " => LOST";
  }
  return os.str();
}

TraceResult trace_route(net::Topology& topo, Router& ingress,
                        ip::Ipv4Address src, ip::Ipv4Address dst,
                        std::uint16_t dst_port, sim::SimTime timeout) {
  TraceResult result;

  net::PacketPtr probe = topo.packet_factory().make();
  const std::uint64_t probe_id = probe->id;
  probe->ip.src = src;
  probe->ip.dst = dst;
  probe->l4.dst_port = dst_port;
  probe->payload_bytes = 36;
  probe->created_at = topo.scheduler().now();
  const sim::SimTime sent_at = probe->created_at;

  // Record the ingress itself, then every subsequent delivery.
  TraceHop first;
  first.node = ingress.id();
  first.node_name = ingress.name();
  first.wire_bytes = probe->wire_size();
  result.hops.push_back(first);

  // Everything registers through removable hooks, so a trace can run while
  // measurement sinks, OAM monitors or other taps stay installed.
  std::vector<std::pair<Router*, Router::DeliveryTapId>> hooked;
  auto on_delivery = [&](const net::Packet& dp, VpnId vpn) {
    if (dp.id != probe_id) return;
    result.delivered = true;
    result.delivered_vpn = vpn;
    result.latency = topo.scheduler().now() - sent_at;
  };
  const net::Topology::TapId tap_id =
      topo.add_packet_tap([&](ip::NodeId at, const net::Packet& p) {
        if (p.id != probe_id) return;
        TraceHop hop;
        hop.node = at;
        hop.node_name = topo.node(at).name();
        hop.labels.assign(p.labels.begin(), p.labels.end());
        hop.encrypted = p.esp.has_value();
        hop.visible_dscp = p.visible_dscp();
        hop.wire_bytes = p.wire_size();
        result.hops.push_back(hop);

        // If this node terminates the probe locally, capture the delivery.
        auto* router = dynamic_cast<Router*>(&topo.node(at));
        if (router != nullptr) {
          hooked.emplace_back(router, router->add_delivery_tap(on_delivery));
        }
      });
  // The ingress might deliver locally without any wire hop.
  hooked.emplace_back(&ingress, ingress.add_delivery_tap(on_delivery));

  ingress.inject(std::move(probe));
  topo.scheduler().run_until(topo.scheduler().now() + timeout);

  topo.remove_packet_tap(tap_id);
  for (auto& [r, id] : hooked) r->remove_delivery_tap(id);
  return result;
}

std::string describe_tables(Router& router) {
  std::ostringstream os;
  os << to_string(router.role()) << " " << router.name() << " (loopback "
     << router.loopback().to_string() << ")\n";

  os << "  global table (" << router.fib().size() << " routes):\n";
  for (const auto& e : router.fib().entries()) {
    os << "    " << e.prefix.to_string() << " [" << ip::to_string(e.source)
       << "]";
    if (e.next_hop.local) os << " local";
    os << "\n";
  }
  for (Vrf* vrf : router.vrfs()) {
    os << "  vrf \"" << vrf->config().name << "\" rd "
       << vrf->config().rd.to_string() << " label " << vrf->vpn_label()
       << " (" << vrf->table().size() << " routes):\n";
    for (const auto& e : vrf->table().entries()) {
      os << "    " << e.prefix.to_string() << " ["
         << ip::to_string(e.source) << "]";
      if (e.vpn_label != ip::kNoLabel) {
        os << " label " << e.vpn_label << " via "
           << router.topology().node(e.egress_pe).name();
      }
      os << "\n";
    }
  }
  if (mpls::LsrState* lsr = router.lsr_state()) {
    os << "  lfib (" << lsr->lfib.size() << " entries):\n";
    for (const auto& e : lsr->lfib.entries()) {
      os << "    " << e.in_label << " -> " << mpls::to_string(e.op);
      if (e.op == mpls::LabelOp::kSwap) os << " " << e.out_label;
      if (e.op == mpls::LabelOp::kPopDeliver) os << " vrf " << e.vrf_id;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace mvpn::vpn
