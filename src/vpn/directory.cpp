#include "vpn/directory.hpp"

namespace mvpn::vpn {

MembershipDirectory::MembershipDirectory(routing::ControlPlane& cp,
                                         ip::NodeId server)
    : cp_(cp), server_(server) {}

void MembershipDirectory::register_site(VpnId vpn, ip::NodeId pe,
                                        const ip::Prefix& prefix) {
  ++registrations_;
  const Attachment who{pe, prefix};
  cp_.send_session(pe, server_, "dir.register", 48,
                   [this, vpn, who] { server_handle(vpn, who, true); });
}

void MembershipDirectory::deregister_site(VpnId vpn, ip::NodeId pe,
                                          const ip::Prefix& prefix) {
  ++registrations_;
  const Attachment who{pe, prefix};
  cp_.send_session(pe, server_, "dir.deregister", 48,
                   [this, vpn, who] { server_handle(vpn, who, false); });
}

void MembershipDirectory::server_handle(VpnId vpn, Attachment who,
                                        bool joined) {
  auto& members = members_[vpn];
  if (joined) {
    // Notify existing members about the newcomer, and replay existing
    // membership to the newcomer — scoped strictly to this VPN (§4.1's
    // separation requirement).
    for (const Attachment& existing : members) {
      if (existing.pe != who.pe) {
        notify(existing.pe, vpn, who, true);
        notify(who.pe, vpn, existing, true);
      }
    }
    members.insert(who);
  } else {
    members.erase(who);
    for (const Attachment& existing : members) {
      if (existing.pe != who.pe) notify(existing.pe, vpn, who, false);
    }
  }
}

void MembershipDirectory::notify(ip::NodeId member, VpnId vpn,
                                 const Attachment& who, bool joined) {
  ++notifications_;
  cp_.send_session(server_, member, "dir.notify", 56,
                   [this, member, vpn, who, joined] {
                     for (const auto& cb : callbacks_) {
                       cb(member, vpn, who, joined);
                     }
                   });
}

std::size_t MembershipDirectory::member_count(VpnId vpn) const {
  auto it = members_.find(vpn);
  return it == members_.end() ? 0 : it->second.size();
}

}  // namespace mvpn::vpn
