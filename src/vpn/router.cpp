#include "vpn/router.hpp"

#include <functional>
#include <stdexcept>

#include "obs/flow_stats.hpp"
#include "obs/latency.hpp"

namespace mvpn::vpn {

namespace {
/// Flow-accounting key: bit-identical to the fastpath FlowKey packing, so
/// the telemetry plane and the flow caches agree on flow identity.
[[nodiscard]] obs::FlowStatsTable::Key flow_acct_key(
    const net::Packet& p) noexcept {
  return obs::FlowStatsTable::make_key(p.ip.src.value(), p.ip.dst.value(),
                                       p.l4.src_port, p.l4.dst_port,
                                       p.ip.protocol);
}
}  // namespace

const char* to_string(Role r) noexcept {
  switch (r) {
    case Role::kCe: return "CE";
    case Role::kPe: return "PE";
    case Role::kP: return "P";
  }
  return "?";
}

Router::Router(net::Topology& topo, ip::NodeId id, std::string name, Role role)
    : net::Node(topo, id, std::move(name)), role_(role) {}

void Router::trace_drop(const net::Packet& p, obs::DropReason reason) noexcept {
#if MVPN_FLOWSTATS_COMPILED
  // Every router-level drop (TTL, no-route, label miss, police, ESP
  // reject) funnels through here before the trace gate, so the flow table
  // sees drops even when tracing is off.
  if (obs::FlowStatsTable* fs = topology().flow_stats()) [[unlikely]] {
    fs->record_drop(flow_acct_key(p), p.flow_id,
                    static_cast<std::uint32_t>(p.wire_size()),
                    static_cast<std::uint8_t>(reason));
  }
#endif
  obs::FlightRecorder& r = rec();
  if (!r.enabled(obs::Category::kVpn)) return;
  r.record({.packet_id = p.id,
            .node = id(),
            .bytes = static_cast<std::uint32_t>(p.wire_size()),
            .type = obs::EventType::kDrop,
            .reason = reason,
            .cls = p.trace_class()});
}

Vrf& Router::add_vrf(VrfConfig config) {
  if (role_ != Role::kPe) {
    throw std::logic_error("Router::add_vrf: VRFs exist on PE routers only");
  }
  vrfs_.push_back(std::make_unique<Vrf>(std::move(config)));
  bump_config_gen();
  return *vrfs_.back();
}

Vrf* Router::vrf_by_vpn(VpnId id) {
  for (auto& v : vrfs_) {
    if (v->vpn_id() == id) return v.get();
  }
  return nullptr;
}

const Vrf* Router::vrf_by_vpn(VpnId id) const {
  for (const auto& v : vrfs_) {
    if (v->vpn_id() == id) return v.get();
  }
  return nullptr;
}

Vrf* Router::vrf_of_interface(ip::IfIndex iface) {
  auto it = iface_vrf_.find(iface);
  if (it == iface_vrf_.end()) return nullptr;
  return vrf_by_vpn(it->second);
}

void Router::bind_interface_to_vrf(ip::IfIndex iface, VpnId id) {
  Vrf* vrf = vrf_by_vpn(id);
  if (vrf == nullptr) {
    throw std::invalid_argument("Router: no VRF for that VPN id");
  }
  iface_vrf_[iface] = id;
  vrf->attach_interface(iface);
  bump_config_gen();
}

std::vector<Vrf*> Router::vrfs() {
  std::vector<Vrf*> out;
  out.reserve(vrfs_.size());
  for (auto& v : vrfs_) out.push_back(v.get());
  return out;
}

void Router::add_policer(qos::Phb phb, double cir_bytes_s, double cbs,
                         double ebs) {
  policers_[phb] = std::make_unique<qos::Policer>(cir_bytes_s, cbs, ebs);
  bump_config_gen();
}

void Router::add_shaper(qos::Phb phb, double rate_bytes_s,
                        double burst_bytes) {
  shapers_[phb] = std::make_unique<qos::Shaper>(rate_bytes_s, burst_bytes);
  bump_config_gen();
}

void Router::add_outbound_sa(const ip::Prefix& dst_prefix,
                             std::shared_ptr<ipsec::EspSa> sa) {
  outbound_sas_.emplace_back(dst_prefix, std::move(sa));
  bump_config_gen();
}

void Router::add_inbound_sa(std::shared_ptr<ipsec::EspSa> sa) {
  inbound_sas_[sa->config().spi] = std::move(sa);
  bump_config_gen();
}

void Router::add_local_prefix(const ip::Prefix& prefix, VpnId vpn) {
  local_vpn_.insert(prefix, vpn);
  ip::RouteEntry entry;
  entry.prefix = prefix;
  entry.next_hop.local = true;
  entry.source = ip::RouteSource::kConnected;
  entry.admin_distance = 0;
  fib_.install(entry);
  // local_vpn_ feeds the delivery-context override, which cached kLocal
  // decisions bake in.
  bump_config_gen();
}

void Router::after_crypto(std::size_t bytes, sim::Scheduler::Handler then) {
  if (!crypto_cost_) {
    then();
    return;
  }
  // The crypto engine is a serial resource: packets queue for it, so a
  // gateway's throughput is genuinely bounded by cipher speed (the paper's
  // "security gear ... create bottlenecks" concern), not merely delayed.
  const auto cost =
      static_cast<sim::SimTime>(crypto_cost_->packet_cost_ns(bytes));
  sim::Scheduler& sched = topology().scheduler();
  const sim::SimTime start = std::max(sched.now(), crypto_busy_until_);
  crypto_busy_until_ = start + cost;
  sched.schedule_at(crypto_busy_until_, std::move(then));
}

bool Router::maybe_esp_encap(net::Packet& p) {
  if (p.esp) return false;
  for (auto& [prefix, sa] : outbound_sas_) {
    if (prefix.contains(p.ip.dst)) {
      sa->encapsulate(p);
      return true;
    }
  }
  return false;
}

void Router::inject(net::PacketPtr p) {
  qos::Phb phb = qos::Phb::kBe;
  qos::Policer* policer = nullptr;
  qos::Shaper* shaper = nullptr;

  // Flow fastpath: replay the flow's cached classification + meter binding
  // instead of re-running the rule match. The meters themselves stay in
  // the per-packet path — they are stateful token buckets.
  IngressEntry* e = nullptr;
  FlowKey key;
  if (flowcache_enabled_ && p->flow_id != 0 && !p->esp) {
    if (ingress_cache_.empty()) ingress_cache_.resize(kFlowSlots);
    e = &ingress_cache_[flow_slot_of(p->flow_id)];
    key = flow_key_of(*p);
  }
  bool replayed = false;
  if (e != nullptr && e->gen_sum != 0 && e->key == key) {
    if (e->gen_sum == ingress_gen_sum()) {
      ++fc_stats_.hits;
      phb = e->phb;
      if (e->marked) {
        classifier_->count_hit(e->rule);
        p->ip.dscp = e->dscp;
      }
      policer = e->policer;
      shaper = e->shaper;
      replayed = true;
    } else {
      ++fc_stats_.invalidated;
      trace_fastpath(obs::EventType::kFastpathInvalidate, *p, p->flow_id, 0);
      e->gen_sum = 0;
    }
  }

  if (!replayed) {
    phb = qos::phb_of_dscp(p->visible_dscp());
    bool marked = false;
    std::int32_t rule = qos::CbqClassifier::kUnmatched;
    if (classifier_) {
      const qos::CbqClassifier::Decision d =
          classifier_->decide(qos::visible_fields(*p));
      phb = d.phb;
      rule = d.rule;
      marked = true;
      const std::uint8_t dscp = qos::dscp_of(phb);
      if (p->esp) {
        p->esp->outer.dscp = dscp;
      } else {
        p->ip.dscp = dscp;
      }
      auto pol = policers_.find(phb);
      if (pol != policers_.end()) policer = pol->second.get();
    }
    auto sh = shapers_.find(phb);
    if (sh != shapers_.end()) shaper = sh->second.get();
    if (e != nullptr) {
      ++fc_stats_.misses;
      e->key = key;
      e->phb = phb;
      e->rule = rule;
      e->marked = marked;
      e->dscp = p->ip.dscp;
      e->policer = policer;
      e->shaper = shaper;
      e->gen_sum = ingress_gen_sum();
      trace_fastpath(obs::EventType::kFastpathResolve, *p, p->flow_id, 0);
    }
  }

  if (policer != nullptr) {
    const qos::Color color =
        policer->check(topology().scheduler().now(), p->wire_size());
#if MVPN_FLOWSTATS_COMPILED
    if (obs::FlowStatsTable* fs = topology().flow_stats()) [[unlikely]] {
      fs->record_color(flow_acct_key(*p), p->flow_id,
                       static_cast<std::uint8_t>(color));
    }
#endif
    if (color == qos::Color::kRed) {
      counters_.policed.add();
      trace_drop(*p, obs::DropReason::kPoliced);
      return;  // drop out-of-contract traffic at the edge
    }
    if (color == qos::Color::kYellow) {
      // Remark to the next drop precedence within the AF class.
      const unsigned cls = qos::af_class(phb);
      if (cls >= 1 && cls <= 4 && qos::drop_precedence(phb) == 1) {
        static constexpr qos::Phb kAf2[] = {qos::Phb::kAf12, qos::Phb::kAf22,
                                            qos::Phb::kAf32, qos::Phb::kAf42};
        p->ip.dscp = qos::dscp_of(kAf2[cls - 1]);
      }
    }
  }
  // Edge shaping: hold out-of-contract packets until they conform.
  if (shaper != nullptr) {
    const sim::SimTime delay =
        shaper->reserve(topology().scheduler().now(), p->wire_size());
    if (delay > 0) {
      topology().scheduler().schedule_in(
          delay, [self = this, pkt = std::move(p)]() mutable {
            self->forward_ip(std::move(pkt), nullptr);
          });
      return;
    }
  }
  forward_ip(std::move(p), nullptr);
}

void Router::install_pvc(std::uint32_t vc_id, PvcSwitchEntry entry) {
  pvc_table_[vc_id] = entry;
  bump_config_gen();
}

void Router::add_pvc_route(const ip::Prefix& prefix, std::uint32_t vc_id) {
  pvc_routes_.insert(prefix, vc_id);
  has_pvc_ingress_ = true;
  bump_config_gen();
}

void Router::forward_pvc(net::PacketPtr p) {
  auto it = pvc_table_.find(p->pvc->vc_id);
  if (it == pvc_table_.end()) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  if (it->second.terminate) {
    p->pvc.reset();
    forward_ip(std::move(p), nullptr);
    return;
  }
  counters_.forwarded.add();
  send(std::move(p), it->second.out_iface);
}

void Router::receive(net::PacketPtr p, ip::IfIndex in_if) {
  ++p->hop_count;
  if (p->has_labels()) {
    forward_labeled(std::move(p));
    return;
  }
  if (p->pvc) {
    forward_pvc(std::move(p));
    return;
  }
  // ESP tunnel termination: the outer destination is one of our addresses
  // (the loopback, or an address inside a locally attached site — the
  // latter lets IPsec tunnels terminate on gateways reached *through* an
  // MPLS VPN, the combined security+QoS deployment).
  const bool esp_terminates_here =
      p->esp &&
      (p->esp->outer.dst == loopback() ||
       (inbound_sas_.count(p->esp->spi) != 0 &&
        local_vpn_.longest_match(p->esp->outer.dst) != nullptr));
  if (esp_terminates_here) {
    auto it = inbound_sas_.find(p->esp->spi);
    if (it == inbound_sas_.end() || !it->second->decapsulate(*p)) {
      counters_.esp_rejected.add();
      trace_drop(*p, obs::DropReason::kEspRejected);
      return;
    }
    const std::size_t bytes = p->wire_size();
    after_crypto(bytes, [self = this, pkt = std::move(p)]() mutable {
      self->forward_ip(std::move(pkt), nullptr);
    });
    return;
  }
  Vrf* vrf = vrf_of_interface(in_if);
#if MVPN_FLOWSTATS_COMPILED
  // A packet arriving on a VRF-bound (customer-facing) interface is the
  // VPN's offered load: exactly once per packet, at the ingress PE, with
  // full attribution. (The egress PE's pop-and-deliver path reaches
  // forward_ip via the transit path, never through here.)
  if (vrf != nullptr) {
    if (obs::FlowStatsTable* fs = topology().flow_stats()) [[unlikely]] {
      fs->record_offered(
          flow_acct_key(*p), p->flow_id,
          static_cast<std::uint32_t>(p->wire_size()), id(), vrf->vpn_id(),
          static_cast<std::uint8_t>(qos::phb_of_dscp(p->visible_dscp())));
    }
  }
#endif
  forward_ip(std::move(p), vrf);
}

void Router::forward_ip(net::PacketPtr p, Vrf* vrf) {
  // Outbound IPsec policy (CPE security gateway): encrypt, charge crypto
  // time, then route on the outer header.
  if (!p->esp && vrf == nullptr && !outbound_sas_.empty()) {
    // Local destinations are never tunneled.
    const ip::RouteEntry* direct = fib_.lookup(p->ip.dst);
    const bool local_dst = direct != nullptr && direct->next_hop.local;
    if (!local_dst && maybe_esp_encap(*p)) {
      const std::size_t bytes = p->wire_size();
      after_crypto(bytes, [self = this, pkt = std::move(p)]() mutable {
        self->forward_ip(std::move(pkt), nullptr);
      });
      return;
    }
  }

  // Overlay-VPN ingress: destinations mapped to a PVC are encapsulated and
  // circuit-switched instead of routed.
  if (!p->pvc && vrf == nullptr) {
    if (const std::uint32_t* vc = pvc_routes_.longest_match(p->ip.dst)) {
      p->pvc = net::PvcEncap{*vc};
      forward_pvc(std::move(p));
      return;
    }
  }

  // Flow fastpath: a valid entry replays the flow's terminal forwarding
  // decision without the LPM lookup or tunnel resolution. Security
  // gateways (outbound SAs) and overlay ingress (PVC routes) route
  // per-packet through stateful detours above, so they opt out wholesale.
  ForwardEntry* slot = nullptr;
  if (flowcache_enabled_ && p->flow_id != 0 && !p->esp && !p->pvc &&
      outbound_sas_.empty() && !has_pvc_ingress_) {
    if (forward_cache_.empty()) forward_cache_.resize(kFlowSlots);
    slot = &forward_cache_[flow_slot_of(p->flow_id)];
    const FlowKey key = flow_key_of(*p);
    const VpnId ctx = vrf != nullptr ? vrf->vpn_id() : kGlobalVpn;
    if (slot->gen_sum != 0 && slot->key == key && slot->ctx == ctx) {
      if (slot->gen_sum == forward_gen_sum(vrf)) {
        ++fc_stats_.hits;
        replay_forward(*slot, std::move(p));
        return;
      }
      ++fc_stats_.invalidated;
      trace_fastpath(obs::EventType::kFastpathInvalidate, *p, p->flow_id,
                     static_cast<std::uint8_t>(slot->act));
      slot->gen_sum = 0;
    }
    slot->key = key;
    slot->ctx = ctx;
    slot->gen_sum = 0;  // armed for recording; valid only once resolved
  }

  // Core routers see only the outer header of encrypted traffic.
  const ip::Ipv4Address dst = p->esp ? p->esp->outer.dst : p->ip.dst;
  const ip::RouteTable& table = vrf != nullptr ? vrf->table() : fib_;
  const ip::RouteEntry* route = table.lookup(dst);
  if (route == nullptr) {
    counters_.no_route.add();
    trace_drop(*p, obs::DropReason::kNoRoute);
    return;
  }

  if (route->next_hop.local) {
    VpnId vpn = vrf != nullptr ? vrf->vpn_id() : kGlobalVpn;
    if (const VpnId* reg = local_vpn_.longest_match(dst)) vpn = *reg;
    record_forward(slot, *p, FlowAction::kLocal, vpn, 0, 0, false,
                   ip::kInvalidIf, vrf);
    deliver_local(std::move(p), vpn);
    return;
  }

  // TTL handling on the visible header.
  std::uint8_t& ttl = p->esp ? p->esp->outer.ttl : p->ip.ttl;
  if (ttl <= 1) {
    counters_.ttl_expired.add();
    trace_drop(*p, obs::DropReason::kTtlExpired);
    return;
  }
  --ttl;

  if (route->vpn_label != ip::kNoLabel &&
      route->egress_pe != ip::kInvalidNode) {
    impose_and_tunnel(std::move(p), *route,
                      vrf != nullptr ? vrf->vpn_id() : kGlobalVpn, slot, vrf);
    return;
  }

  counters_.forwarded.add();
  // ECMP: choose among equal-cost next hops by flow hash (5-tuple of the
  // visible headers) so one flow never straddles two paths.
  const qos::VisibleFields vf = qos::visible_fields(*p);
  const std::size_t flow_hash =
      std::hash<std::uint64_t>{}((std::uint64_t{vf.src.value()} << 32) ^
                                 vf.dst.value()) ^
      std::hash<std::uint32_t>{}((std::uint32_t{vf.src_port.value_or(0)}
                                  << 16) |
                                 vf.dst_port.value_or(0));
  const ip::IfIndex out = route->next_hop_for(flow_hash).iface;
  record_forward(slot, *p, FlowAction::kForward, kGlobalVpn, 0, 0, false,
                 out, vrf);
  send(std::move(p), out);
}

void Router::replay_forward(const ForwardEntry& e, net::PacketPtr p) {
  switch (e.act) {
    case FlowAction::kLocal:
      deliver_local(std::move(p), e.deliver_vpn);
      return;
    case FlowAction::kForward:
    case FlowAction::kImpose: {
      // Fastpath packets are never ESP, so the visible header is p->ip.
      std::uint8_t& ttl = p->ip.ttl;
      if (ttl <= 1) {
        counters_.ttl_expired.add();
        trace_drop(*p, obs::DropReason::kTtlExpired);
        return;
      }
      --ttl;
      if (e.act == FlowAction::kForward) {
        counters_.forwarded.add();
        send(std::move(p), e.out_iface);
        return;
      }
      // kImpose. EXP is re-derived per packet: the edge meter may have
      // remarked this packet's DSCP to a higher drop precedence.
      const std::uint8_t exp = exp_map_.exp_for_dscp(p->ip.dscp);
      p->push_label(net::MplsShim{e.vpn_label, exp, 64});
      if (e.push_tunnel) {
        p->push_label(net::MplsShim{e.tunnel_label, exp, 64});
      }
      if (rec().enabled(obs::Category::kMpls)) {
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = e.vpn_label,
                      .b = e.push_tunnel ? e.tunnel_label : 0,
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kLabelPush,
                      .cls = exp});
      }
      counters_.forwarded.add();
      send(std::move(p), e.out_iface);
      return;
    }
  }
}

void Router::record_forward(ForwardEntry* slot, const net::Packet& p,
                            FlowAction act, VpnId deliver_vpn,
                            std::uint32_t vpn_label,
                            std::uint32_t tunnel_label, bool push_tunnel,
                            ip::IfIndex out_iface, const Vrf* vrf) {
  if (slot == nullptr) return;
  ++fc_stats_.misses;
  slot->act = act;
  slot->deliver_vpn = deliver_vpn;
  slot->vpn_label = vpn_label;
  slot->tunnel_label = tunnel_label;
  slot->push_tunnel = push_tunnel;
  slot->out_iface = out_iface;
  slot->gen_sum = forward_gen_sum(vrf);
  trace_fastpath(obs::EventType::kFastpathResolve, p, p.flow_id,
                 static_cast<std::uint8_t>(act));
}

void Router::trace_fastpath(obs::EventType type, const net::Packet& p,
                            std::uint32_t a, std::uint8_t action) noexcept {
  obs::FlightRecorder& r = rec();
  if (!r.enabled(obs::Category::kFastpath)) return;
  r.record({.packet_id = p.id,
            .node = id(),
            .a = a,
            .bytes = static_cast<std::uint32_t>(p.wire_size()),
            .type = type,
            .cls = p.trace_class(),
            .aux = action});
}

void Router::impose_and_tunnel(net::PacketPtr p, const ip::RouteEntry& route,
                               VpnId vpn, ForwardEntry* cache_slot,
                               const Vrf* vrf) {
  const std::uint8_t exp = exp_map_.exp_for_dscp(p->visible_dscp());
  const TunnelBinding tb = tunnel_to(route.egress_pe, vpn);
  if (!tb.found) {
    counters_.no_tunnel.add();
    trace_drop(*p, obs::DropReason::kNoTunnel);
    return;
  }
  record_forward(cache_slot, *p, FlowAction::kImpose, kGlobalVpn,
                 route.vpn_label, tb.label, tb.push_label, tb.out_iface, vrf);
  p->push_label(net::MplsShim{route.vpn_label, exp, 64});
  if (tb.push_label) {
    p->push_label(net::MplsShim{tb.label, exp, 64});
  }
  if (rec().enabled(obs::Category::kMpls)) {
    rec().record({.packet_id = p->id,
                  .node = id(),
                  .a = route.vpn_label,
                  .b = tb.push_label ? tb.label : 0,
                  .bytes = static_cast<std::uint32_t>(p->wire_size()),
                  .type = obs::EventType::kLabelPush,
                  .cls = exp});
  }
  counters_.forwarded.add();
  send(std::move(p), tb.out_iface);
}

Router::TunnelBinding Router::tunnel_to(ip::NodeId egress_pe,
                                        VpnId vpn) const {
  TunnelBinding tb;
  // Prefer a bound traffic-engineered LSP: VPN-scoped first, then global.
  if (rsvp_ != nullptr) {
    for (const VpnId scope : {vpn, kGlobalVpn}) {
      auto it = te_bindings_.find({egress_pe, scope});
      if (it == te_bindings_.end()) continue;
      const mpls::RsvpTe::Lsp& lsp = rsvp_->lsp(it->second);
      if (lsp.state == mpls::RsvpTe::LspState::kUp) {
        tb.found = true;
        tb.push_label = !lsp.head_implicit_null;
        tb.label = lsp.head_label;
        tb.out_iface = lsp.head_iface;
        return tb;
      }
    }
  }
  // Fall back to the LDP LSP toward the egress PE loopback.
  if (ldp_ != nullptr) {
    const ip::Prefix fec =
        ip::Prefix::host(topology().node(egress_pe).loopback());
    if (auto ftn = ldp_->ftn(id(), fec)) {
      tb.found = true;
      tb.push_label = !ftn->implicit_null;
      tb.label = ftn->out_label;
      tb.out_iface = ftn->out_iface;
      return tb;
    }
  }
  return tb;
}

void Router::forward_labeled(net::PacketPtr p) {
  if (lsr_ == nullptr) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  const std::uint32_t in_label = p->top_label().label;

  // Transit fastpath: keyed by incoming label, validated against the LFIB
  // generation. Mostly saves the egress vrf_by_vpn scan — the LFIB itself
  // is already a flat array — but keeps the invalidation story uniform
  // across ingress and transit.
  TransitEntry* t = nullptr;
  if (flowcache_enabled_) {
    if (transit_cache_.empty()) transit_cache_.resize(kTransitSlots);
    t = &transit_cache_[(in_label * 0x9E3779B1u) >> 24];
    if (t->gen_sum != 0 && t->in_label == in_label) {
      if (t->gen_sum == transit_gen_sum()) {
        ++fc_stats_.hits;
        execute_transit(std::move(p), in_label, t->op, t->out_label,
                        t->out_iface, t->vrf);
        return;
      }
      ++fc_stats_.invalidated;
      trace_fastpath(obs::EventType::kFastpathInvalidate, *p, in_label,
                     static_cast<std::uint8_t>(t->op));
      t->gen_sum = 0;
    }
  }

  const mpls::LfibEntry* entry = lsr_->lfib.lookup(in_label);
  if (entry == nullptr) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  Vrf* vrf = nullptr;
  if (entry->op == mpls::LabelOp::kPopDeliver) {
    vrf = vrf_by_vpn(entry->vrf_id);
    if (vrf == nullptr) {
      p->pop_label();
      counters_.label_miss.add();
      trace_drop(*p, obs::DropReason::kLabelMiss);
      return;
    }
  }
  if (t != nullptr) {
    ++fc_stats_.misses;
    t->in_label = in_label;
    t->op = entry->op;
    t->out_label = entry->out_label;
    t->out_iface = entry->out_iface;
    t->vrf = vrf;
    t->gen_sum = transit_gen_sum();
    trace_fastpath(obs::EventType::kFastpathResolve, *p, in_label,
                   static_cast<std::uint8_t>(entry->op));
  }
  execute_transit(std::move(p), in_label, entry->op, entry->out_label,
                  entry->out_iface, vrf);
}

void Router::execute_transit(net::PacketPtr p, std::uint32_t in_label,
                             mpls::LabelOp op, std::uint32_t out_label,
                             ip::IfIndex out_iface, Vrf* vrf) {
  const bool trace_mpls = rec().enabled(obs::Category::kMpls);
  switch (op) {
    case mpls::LabelOp::kSwap:
      p->swap_label(out_label);
      if (p->top_label().ttl == 0) {
        counters_.ttl_expired.add();
        trace_drop(*p, obs::DropReason::kTtlExpired);
        return;
      }
      if (trace_mpls) {
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .b = out_label,
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kLabelSwap,
                      .cls = p->trace_class()});
      }
      counters_.forwarded.add();
      send(std::move(p), out_iface);
      return;
    case mpls::LabelOp::kPop:
      p->pop_label();
      if (trace_mpls) {
        // Penultimate-hop pop: the label is stripped one hop early.
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kLabelPop,
                      .cls = p->trace_class()});
      }
      counters_.forwarded.add();
      send(std::move(p), out_iface);
      return;
    case mpls::LabelOp::kPopDeliver: {
      p->pop_label();
      if (rec().enabled(obs::Category::kVpn)) {
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .b = vrf->vpn_id(),
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kVrfDeliver,
                      .cls = p->trace_class()});
      }
      forward_ip(std::move(p), vrf);
      return;
    }
  }
}

void Router::deliver_local(net::PacketPtr p, VpnId vpn) {
  counters_.delivered.add();
  // Close the delay anatomy: everything since the last link stamp (ESP
  // decrypt charge, VRF lookup time) is egress processing. After this,
  // queue + tx + prop + proc == now - created_at, exactly.
  const sim::SimTime deliver_now = topology().scheduler().now();
  const sim::SimTime tail = deliver_now - p->delay.anchor(p->created_at);
  if (tail > 0) {
    p->delay.proc += tail;
    if (obs::LatencyCollector* lc = topology().latency_collector()) {
      lc->record_processing(id(), tail);
    }
  }
  p->delay.last = deliver_now;
  // OAM probes (127/8 destinations) go to the OAM hooks, not the sink.
  if (!oam_taps_.empty() && (p->ip.dst.value() >> 24) == 127) {
    oam_taps_.invoke(*p);
    return;
  }
#if MVPN_FLOWSTATS_COMPILED
  if (obs::FlowStatsTable* fs = topology().flow_stats()) [[unlikely]] {
    fs->record_delivered(flow_acct_key(*p), p->flow_id,
                         static_cast<std::uint32_t>(p->wire_size()),
                         deliver_now - p->created_at);
  }
#endif
  if (rec().enabled(obs::Category::kVpn)) {
    rec().record({.packet_id = p->id,
                  .node = id(),
                  .a = vpn,
                  .bytes = static_cast<std::uint32_t>(p->wire_size()),
                  .type = obs::EventType::kLocalDeliver,
                  .cls = p->trace_class()});
  }
  if (!delivery_taps_.empty()) delivery_taps_.invoke(*p, vpn);
  if (sink_) sink_(*p, vpn);
}

}  // namespace mvpn::vpn
