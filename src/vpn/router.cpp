#include "vpn/router.hpp"

#include <functional>
#include <stdexcept>

#include "obs/latency.hpp"

namespace mvpn::vpn {

const char* to_string(Role r) noexcept {
  switch (r) {
    case Role::kCe: return "CE";
    case Role::kPe: return "PE";
    case Role::kP: return "P";
  }
  return "?";
}

Router::Router(net::Topology& topo, ip::NodeId id, std::string name, Role role)
    : net::Node(topo, id, std::move(name)), role_(role) {}

void Router::trace_drop(const net::Packet& p, obs::DropReason reason) noexcept {
  obs::FlightRecorder& r = rec();
  if (!r.enabled(obs::Category::kVpn)) return;
  r.record({.packet_id = p.id,
            .node = id(),
            .bytes = static_cast<std::uint32_t>(p.wire_size()),
            .type = obs::EventType::kDrop,
            .reason = reason,
            .cls = p.trace_class()});
}

Vrf& Router::add_vrf(VrfConfig config) {
  if (role_ != Role::kPe) {
    throw std::logic_error("Router::add_vrf: VRFs exist on PE routers only");
  }
  vrfs_.push_back(std::make_unique<Vrf>(std::move(config)));
  return *vrfs_.back();
}

Vrf* Router::vrf_by_vpn(VpnId id) {
  for (auto& v : vrfs_) {
    if (v->vpn_id() == id) return v.get();
  }
  return nullptr;
}

const Vrf* Router::vrf_by_vpn(VpnId id) const {
  for (const auto& v : vrfs_) {
    if (v->vpn_id() == id) return v.get();
  }
  return nullptr;
}

Vrf* Router::vrf_of_interface(ip::IfIndex iface) {
  auto it = iface_vrf_.find(iface);
  if (it == iface_vrf_.end()) return nullptr;
  return vrf_by_vpn(it->second);
}

void Router::bind_interface_to_vrf(ip::IfIndex iface, VpnId id) {
  Vrf* vrf = vrf_by_vpn(id);
  if (vrf == nullptr) {
    throw std::invalid_argument("Router: no VRF for that VPN id");
  }
  iface_vrf_[iface] = id;
  vrf->attach_interface(iface);
}

std::vector<Vrf*> Router::vrfs() {
  std::vector<Vrf*> out;
  out.reserve(vrfs_.size());
  for (auto& v : vrfs_) out.push_back(v.get());
  return out;
}

void Router::add_policer(qos::Phb phb, double cir_bytes_s, double cbs,
                         double ebs) {
  policers_[phb] = std::make_unique<qos::Policer>(cir_bytes_s, cbs, ebs);
}

void Router::add_shaper(qos::Phb phb, double rate_bytes_s,
                        double burst_bytes) {
  shapers_[phb] = std::make_unique<qos::Shaper>(rate_bytes_s, burst_bytes);
}

void Router::add_outbound_sa(const ip::Prefix& dst_prefix,
                             std::shared_ptr<ipsec::EspSa> sa) {
  outbound_sas_.emplace_back(dst_prefix, std::move(sa));
}

void Router::add_inbound_sa(std::shared_ptr<ipsec::EspSa> sa) {
  inbound_sas_[sa->config().spi] = std::move(sa);
}

void Router::add_local_prefix(const ip::Prefix& prefix, VpnId vpn) {
  local_vpn_.insert(prefix, vpn);
  ip::RouteEntry entry;
  entry.prefix = prefix;
  entry.next_hop.local = true;
  entry.source = ip::RouteSource::kConnected;
  entry.admin_distance = 0;
  fib_.install(entry);
}

void Router::after_crypto(std::size_t bytes, sim::Scheduler::Handler then) {
  if (!crypto_cost_) {
    then();
    return;
  }
  // The crypto engine is a serial resource: packets queue for it, so a
  // gateway's throughput is genuinely bounded by cipher speed (the paper's
  // "security gear ... create bottlenecks" concern), not merely delayed.
  const auto cost =
      static_cast<sim::SimTime>(crypto_cost_->packet_cost_ns(bytes));
  sim::Scheduler& sched = topology().scheduler();
  const sim::SimTime start = std::max(sched.now(), crypto_busy_until_);
  crypto_busy_until_ = start + cost;
  sched.schedule_at(crypto_busy_until_, std::move(then));
}

bool Router::maybe_esp_encap(net::Packet& p) {
  if (p.esp) return false;
  for (auto& [prefix, sa] : outbound_sas_) {
    if (prefix.contains(p.ip.dst)) {
      sa->encapsulate(p);
      return true;
    }
  }
  return false;
}

void Router::inject(net::PacketPtr p) {
  qos::Phb phb = qos::phb_of_dscp(p->visible_dscp());
  if (classifier_) {
    phb = classifier_->mark(*p);
    auto pol = policers_.find(phb);
    if (pol != policers_.end()) {
      const qos::Color color = pol->second->check(
          topology().scheduler().now(), p->wire_size());
      if (color == qos::Color::kRed) {
        counters_.policed.add();
        trace_drop(*p, obs::DropReason::kPoliced);
        return;  // drop out-of-contract traffic at the edge
      }
      if (color == qos::Color::kYellow) {
        // Remark to the next drop precedence within the AF class.
        const unsigned cls = qos::af_class(phb);
        if (cls >= 1 && cls <= 4 && qos::drop_precedence(phb) == 1) {
          static constexpr qos::Phb kAf2[] = {qos::Phb::kAf12, qos::Phb::kAf22,
                                              qos::Phb::kAf32,
                                              qos::Phb::kAf42};
          p->ip.dscp = qos::dscp_of(kAf2[cls - 1]);
        }
      }
    }
  }
  // Edge shaping: hold out-of-contract packets until they conform.
  auto shaper = shapers_.find(phb);
  if (shaper != shapers_.end()) {
    const sim::SimTime delay = shaper->second->reserve(
        topology().scheduler().now(), p->wire_size());
    if (delay > 0) {
      topology().scheduler().schedule_in(
          delay, [self = this, pkt = std::move(p)]() mutable {
            self->forward_ip(std::move(pkt), nullptr);
          });
      return;
    }
  }
  forward_ip(std::move(p), nullptr);
}

void Router::install_pvc(std::uint32_t vc_id, PvcSwitchEntry entry) {
  pvc_table_[vc_id] = entry;
}

void Router::add_pvc_route(const ip::Prefix& prefix, std::uint32_t vc_id) {
  pvc_routes_.insert(prefix, vc_id);
}

void Router::forward_pvc(net::PacketPtr p) {
  auto it = pvc_table_.find(p->pvc->vc_id);
  if (it == pvc_table_.end()) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  if (it->second.terminate) {
    p->pvc.reset();
    forward_ip(std::move(p), nullptr);
    return;
  }
  counters_.forwarded.add();
  send(std::move(p), it->second.out_iface);
}

void Router::receive(net::PacketPtr p, ip::IfIndex in_if) {
  ++p->hop_count;
  if (p->has_labels()) {
    forward_labeled(std::move(p));
    return;
  }
  if (p->pvc) {
    forward_pvc(std::move(p));
    return;
  }
  // ESP tunnel termination: the outer destination is one of our addresses
  // (the loopback, or an address inside a locally attached site — the
  // latter lets IPsec tunnels terminate on gateways reached *through* an
  // MPLS VPN, the combined security+QoS deployment).
  const bool esp_terminates_here =
      p->esp &&
      (p->esp->outer.dst == loopback() ||
       (inbound_sas_.count(p->esp->spi) != 0 &&
        local_vpn_.longest_match(p->esp->outer.dst) != nullptr));
  if (esp_terminates_here) {
    auto it = inbound_sas_.find(p->esp->spi);
    if (it == inbound_sas_.end() || !it->second->decapsulate(*p)) {
      counters_.esp_rejected.add();
      trace_drop(*p, obs::DropReason::kEspRejected);
      return;
    }
    const std::size_t bytes = p->wire_size();
    after_crypto(bytes, [self = this, pkt = std::move(p)]() mutable {
      self->forward_ip(std::move(pkt), nullptr);
    });
    return;
  }
  forward_ip(std::move(p), vrf_of_interface(in_if));
}

void Router::forward_ip(net::PacketPtr p, Vrf* vrf) {
  // Outbound IPsec policy (CPE security gateway): encrypt, charge crypto
  // time, then route on the outer header.
  if (!p->esp && vrf == nullptr && !outbound_sas_.empty()) {
    // Local destinations are never tunneled.
    const ip::RouteEntry* direct = fib_.lookup(p->ip.dst);
    const bool local_dst = direct != nullptr && direct->next_hop.local;
    if (!local_dst && maybe_esp_encap(*p)) {
      const std::size_t bytes = p->wire_size();
      after_crypto(bytes, [self = this, pkt = std::move(p)]() mutable {
        self->forward_ip(std::move(pkt), nullptr);
      });
      return;
    }
  }

  // Overlay-VPN ingress: destinations mapped to a PVC are encapsulated and
  // circuit-switched instead of routed.
  if (!p->pvc && vrf == nullptr) {
    if (const std::uint32_t* vc = pvc_routes_.longest_match(p->ip.dst)) {
      p->pvc = net::PvcEncap{*vc};
      forward_pvc(std::move(p));
      return;
    }
  }

  // Core routers see only the outer header of encrypted traffic.
  const ip::Ipv4Address dst = p->esp ? p->esp->outer.dst : p->ip.dst;
  const ip::RouteTable& table = vrf != nullptr ? vrf->table() : fib_;
  const ip::RouteEntry* route = table.lookup(dst);
  if (route == nullptr) {
    counters_.no_route.add();
    trace_drop(*p, obs::DropReason::kNoRoute);
    return;
  }

  if (route->next_hop.local) {
    VpnId vpn = vrf != nullptr ? vrf->vpn_id() : kGlobalVpn;
    if (const VpnId* reg = local_vpn_.longest_match(dst)) vpn = *reg;
    deliver_local(std::move(p), vpn);
    return;
  }

  // TTL handling on the visible header.
  std::uint8_t& ttl = p->esp ? p->esp->outer.ttl : p->ip.ttl;
  if (ttl <= 1) {
    counters_.ttl_expired.add();
    trace_drop(*p, obs::DropReason::kTtlExpired);
    return;
  }
  --ttl;

  if (route->vpn_label != ip::kNoLabel &&
      route->egress_pe != ip::kInvalidNode) {
    impose_and_tunnel(std::move(p), *route,
                      vrf != nullptr ? vrf->vpn_id() : kGlobalVpn);
    return;
  }

  counters_.forwarded.add();
  // ECMP: choose among equal-cost next hops by flow hash (5-tuple of the
  // visible headers) so one flow never straddles two paths.
  const qos::VisibleFields vf = qos::visible_fields(*p);
  const std::size_t flow_hash =
      std::hash<std::uint64_t>{}((std::uint64_t{vf.src.value()} << 32) ^
                                 vf.dst.value()) ^
      std::hash<std::uint32_t>{}((std::uint32_t{vf.src_port.value_or(0)}
                                  << 16) |
                                 vf.dst_port.value_or(0));
  send(std::move(p), route->next_hop_for(flow_hash).iface);
}

void Router::impose_and_tunnel(net::PacketPtr p, const ip::RouteEntry& route,
                               VpnId vpn) {
  const std::uint8_t exp = exp_map_.exp_for_dscp(p->visible_dscp());
  const TunnelBinding tb = tunnel_to(route.egress_pe, vpn);
  if (!tb.found) {
    counters_.no_tunnel.add();
    trace_drop(*p, obs::DropReason::kNoTunnel);
    return;
  }
  p->push_label(net::MplsShim{route.vpn_label, exp, 64});
  if (tb.push_label) {
    p->push_label(net::MplsShim{tb.label, exp, 64});
  }
  if (rec().enabled(obs::Category::kMpls)) {
    rec().record({.packet_id = p->id,
                  .node = id(),
                  .a = route.vpn_label,
                  .b = tb.push_label ? tb.label : 0,
                  .bytes = static_cast<std::uint32_t>(p->wire_size()),
                  .type = obs::EventType::kLabelPush,
                  .cls = exp});
  }
  counters_.forwarded.add();
  send(std::move(p), tb.out_iface);
}

Router::TunnelBinding Router::tunnel_to(ip::NodeId egress_pe,
                                        VpnId vpn) const {
  TunnelBinding tb;
  // Prefer a bound traffic-engineered LSP: VPN-scoped first, then global.
  if (rsvp_ != nullptr) {
    for (const VpnId scope : {vpn, kGlobalVpn}) {
      auto it = te_bindings_.find({egress_pe, scope});
      if (it == te_bindings_.end()) continue;
      const mpls::RsvpTe::Lsp& lsp = rsvp_->lsp(it->second);
      if (lsp.state == mpls::RsvpTe::LspState::kUp) {
        tb.found = true;
        tb.push_label = !lsp.head_implicit_null;
        tb.label = lsp.head_label;
        tb.out_iface = lsp.head_iface;
        return tb;
      }
    }
  }
  // Fall back to the LDP LSP toward the egress PE loopback.
  if (ldp_ != nullptr) {
    const ip::Prefix fec =
        ip::Prefix::host(topology().node(egress_pe).loopback());
    if (auto ftn = ldp_->ftn(id(), fec)) {
      tb.found = true;
      tb.push_label = !ftn->implicit_null;
      tb.label = ftn->out_label;
      tb.out_iface = ftn->out_iface;
      return tb;
    }
  }
  return tb;
}

void Router::forward_labeled(net::PacketPtr p) {
  if (lsr_ == nullptr) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  const std::uint32_t in_label = p->top_label().label;
  const mpls::LfibEntry* entry = lsr_->lfib.lookup(in_label);
  if (entry == nullptr) {
    counters_.label_miss.add();
    trace_drop(*p, obs::DropReason::kLabelMiss);
    return;
  }
  const bool trace_mpls = rec().enabled(obs::Category::kMpls);
  switch (entry->op) {
    case mpls::LabelOp::kSwap:
      p->swap_label(entry->out_label);
      if (p->top_label().ttl == 0) {
        counters_.ttl_expired.add();
        trace_drop(*p, obs::DropReason::kTtlExpired);
        return;
      }
      if (trace_mpls) {
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .b = entry->out_label,
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kLabelSwap,
                      .cls = p->trace_class()});
      }
      counters_.forwarded.add();
      send(std::move(p), entry->out_iface);
      return;
    case mpls::LabelOp::kPop:
      p->pop_label();
      if (trace_mpls) {
        // Penultimate-hop pop: the label is stripped one hop early.
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kLabelPop,
                      .cls = p->trace_class()});
      }
      counters_.forwarded.add();
      send(std::move(p), entry->out_iface);
      return;
    case mpls::LabelOp::kPopDeliver: {
      p->pop_label();
      Vrf* vrf = vrf_by_vpn(entry->vrf_id);
      if (vrf == nullptr) {
        counters_.label_miss.add();
        trace_drop(*p, obs::DropReason::kLabelMiss);
        return;
      }
      if (rec().enabled(obs::Category::kVpn)) {
        rec().record({.packet_id = p->id,
                      .node = id(),
                      .a = in_label,
                      .b = vrf->vpn_id(),
                      .bytes = static_cast<std::uint32_t>(p->wire_size()),
                      .type = obs::EventType::kVrfDeliver,
                      .cls = p->trace_class()});
      }
      forward_ip(std::move(p), vrf);
      return;
    }
  }
}

void Router::deliver_local(net::PacketPtr p, VpnId vpn) {
  counters_.delivered.add();
  // Close the delay anatomy: everything since the last link stamp (ESP
  // decrypt charge, VRF lookup time) is egress processing. After this,
  // queue + tx + prop + proc == now - created_at, exactly.
  const sim::SimTime deliver_now = topology().scheduler().now();
  const sim::SimTime tail = deliver_now - p->delay.anchor(p->created_at);
  if (tail > 0) {
    p->delay.proc += tail;
    if (obs::LatencyCollector* lc = topology().latency_collector()) {
      lc->record_processing(id(), tail);
    }
  }
  p->delay.last = deliver_now;
  // OAM probes (127/8 destinations) go to the OAM hooks, not the sink.
  if (!oam_taps_.empty() && (p->ip.dst.value() >> 24) == 127) {
    oam_taps_.invoke(*p);
    return;
  }
  if (rec().enabled(obs::Category::kVpn)) {
    rec().record({.packet_id = p->id,
                  .node = id(),
                  .a = vpn,
                  .bytes = static_cast<std::uint32_t>(p->wire_size()),
                  .type = obs::EventType::kLocalDeliver,
                  .cls = p->trace_class()});
  }
  if (!delivery_taps_.empty()) delivery_taps_.invoke(*p, vpn);
  if (sink_) sink_(*p, vpn);
}

}  // namespace mvpn::vpn
