#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ip/prefix_trie.hpp"
#include "ipsec/esp.hpp"
#include "mpls/domain.hpp"
#include "mpls/ldp.hpp"
#include "mpls/rsvp_te.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "qos/classifier.hpp"
#include "qos/dscp.hpp"
#include "qos/meter.hpp"
#include "vpn/vrf.hpp"

namespace mvpn::vpn {

/// Device role in the paper's deployment picture (Fig. 4): customer edge,
/// provider edge, provider core.
enum class Role : std::uint8_t { kCe, kPe, kP };

[[nodiscard]] const char* to_string(Role r) noexcept;

/// The integrated data plane: one router class whose behaviour depends on
/// configured state, exactly like a real LSR.
///
///  * labeled packets hit the LFIB: swap (core), pop (penultimate hop) or
///    pop-deliver into a VRF (egress PE VPN label);
///  * unlabeled packets from a VRF-attached interface are looked up in the
///    VRF; routes imported from MP-BGP carry a VPN label and egress PE, so
///    the ingress PE pushes [tunnel-label, vpn-label] and forwards into
///    the LSP (paper §4.3, Fig. 4);
///  * other IP packets use the global table;
///  * the CE edge applies CBQ classification, DiffServ marking and
///    policing; the PE edge maps DSCP to MPLS EXP (paper §5);
///  * ESP tunnel endpoints encapsulate/decapsulate with real replay
///    protection and charge crypto processing time.
class Router : public net::Node {
 public:
  Router(net::Topology& topo, ip::NodeId id, std::string name, Role role);

  [[nodiscard]] Role role() const noexcept { return role_; }

  /// --- tables -----------------------------------------------------------
  [[nodiscard]] ip::RouteTable& fib() noexcept { return fib_; }
  [[nodiscard]] const ip::RouteTable& fib() const noexcept { return fib_; }

  /// Attach the router's MPLS state (PE/P only; owned by the MplsDomain).
  void set_lsr_state(mpls::LsrState* lsr) noexcept {
    lsr_ = lsr;
    bump_config_gen();
  }
  [[nodiscard]] mpls::LsrState* lsr_state() noexcept { return lsr_; }

  /// Wire the label-distribution views used for tunnel imposition.
  void set_ldp(const mpls::Ldp* ldp) noexcept {
    ldp_ = ldp;
    bump_config_gen();
  }
  void set_rsvp(const mpls::RsvpTe* rsvp) noexcept {
    rsvp_ = rsvp;
    bump_config_gen();
  }
  /// Prefer this TE LSP for traffic tunneled toward `egress_pe`. With
  /// `scope` = kGlobalVpn the binding applies to every VRF; otherwise only
  /// that VPN's traffic rides the LSP (per-VRF TE pinning).
  void bind_lsp(ip::NodeId egress_pe, mpls::LspId lsp,
                VpnId scope = kGlobalVpn) {
    te_bindings_[{egress_pe, scope}] = lsp;
    bump_config_gen();
  }
  void unbind_lsp(ip::NodeId egress_pe, VpnId scope = kGlobalVpn) {
    te_bindings_.erase({egress_pe, scope});
    bump_config_gen();
  }

  /// --- VRFs (PE only) -----------------------------------------------------
  Vrf& add_vrf(VrfConfig config);
  [[nodiscard]] Vrf* vrf_by_vpn(VpnId id);
  [[nodiscard]] const Vrf* vrf_by_vpn(VpnId id) const;
  [[nodiscard]] Vrf* vrf_of_interface(ip::IfIndex iface);
  void bind_interface_to_vrf(ip::IfIndex iface, VpnId id);
  [[nodiscard]] std::size_t vrf_count() const noexcept { return vrfs_.size(); }
  [[nodiscard]] std::vector<Vrf*> vrfs();

  /// --- edge QoS (CE/CPE role, paper §5) ----------------------------------
  void set_classifier(std::unique_ptr<qos::CbqClassifier> c) {
    classifier_ = std::move(c);
    bump_config_gen();
  }
  [[nodiscard]] qos::CbqClassifier* classifier() noexcept {
    return classifier_.get();
  }
  /// Police a PHB with CIR/CBS/EBS; yellow remarks to higher drop
  /// precedence, red drops.
  void add_policer(qos::Phb phb, double cir_bytes_s, double cbs, double ebs);
  /// Shape a PHB to `rate_bytes_s`: out-of-contract packets are *held*
  /// at the edge until they conform instead of being dropped.
  void add_shaper(qos::Phb phb, double rate_bytes_s, double burst_bytes);
  void set_dscp_exp_map(qos::DscpExpMap map) {
    exp_map_ = map;
    bump_config_gen();
  }
  [[nodiscard]] const qos::DscpExpMap& dscp_exp_map() const noexcept {
    return exp_map_;
  }

  /// --- IPsec endpoints -----------------------------------------------------
  /// Outbound SA for traffic destined into `dst_prefix` (encrypt-before-
  /// route at a CPE security gateway).
  void add_outbound_sa(const ip::Prefix& dst_prefix,
                       std::shared_ptr<ipsec::EspSa> sa);
  /// Inbound SA by SPI (decapsulation at the tunnel endpoint).
  void add_inbound_sa(std::shared_ptr<ipsec::EspSa> sa);
  void set_crypto_cost(ipsec::CryptoCostModel model) noexcept {
    crypto_cost_ = model;
  }

  /// --- overlay PVC switching (the baseline of experiment E1) --------------
  /// Virtual-circuit switching entry: packets carrying `vc_id` leave via
  /// `out_iface`; terminating entries strip the encapsulation instead.
  struct PvcSwitchEntry {
    ip::IfIndex out_iface = ip::kInvalidIf;
    bool terminate = false;
  };
  void install_pvc(std::uint32_t vc_id, PvcSwitchEntry entry);
  /// Map a destination prefix to a PVC at the ingress CE.
  void add_pvc_route(const ip::Prefix& prefix, std::uint32_t vc_id);
  [[nodiscard]] std::size_t pvc_switch_entries() const noexcept {
    return pvc_table_.size();
  }

  /// --- local delivery ------------------------------------------------------
  /// Sink for packets that terminate here. `vpn` is the VRF context the
  /// packet was delivered through (kGlobalVpn when none). The sink is the
  /// terminal consumer (one per router — the measurement sink); passive
  /// observers belong on the delivery-tap hook list below.
  using LocalSink =
      std::function<void(const net::Packet& p, VpnId vpn)>;
  void set_local_sink(LocalSink sink) { sink_ = std::move(sink); }

  /// Passive observers of local delivery, invoked before the sink. Each
  /// registration gets its own removal handle, so diagnostics (trace_route)
  /// and user taps coexist without stealing the sink from each other.
  using DeliveryTap = std::function<void(const net::Packet& p, VpnId vpn)>;
  using DeliveryTapId = obs::HookList<const net::Packet&, VpnId>::Id;
  DeliveryTapId add_delivery_tap(DeliveryTap tap) {
    return delivery_taps_.add(std::move(tap));
  }
  bool remove_delivery_tap(DeliveryTapId id) {
    return delivery_taps_.remove(id);
  }

  /// Delivery hooks for OAM probes (destinations in 127.0.0.0/8, as MPLS
  /// LSP ping uses): keeps operational traffic out of the measurement
  /// sinks. Hook-list based so several LspOam monitors can share one tail
  /// router. When no OAM tap is registered, 127/8 traffic falls through to
  /// the local sink (legacy behaviour).
  using OamTap = std::function<void(const net::Packet& p)>;
  using OamTapId = obs::HookList<const net::Packet&>::Id;
  OamTapId add_oam_tap(OamTap tap) { return oam_taps_.add(std::move(tap)); }
  bool remove_oam_tap(OamTapId id) { return oam_taps_.remove(id); }

  /// Declare a locally attached site prefix (delivered to the sink).
  void add_local_prefix(const ip::Prefix& prefix, VpnId vpn = kGlobalVpn);

  /// Entry point for attached traffic sources: applies the CE edge policy
  /// (classify/mark/police) and forwards.
  void inject(net::PacketPtr p);

  /// net::Node data plane.
  void receive(net::PacketPtr p, ip::IfIndex in_if) override;

  /// --- flow fastpath cache (VPP-style, generation-stamped) ----------------
  /// The first packet of a flow runs the full resolution (classifier scan,
  /// meter binding, VRF LPM, tunnel selection / LFIB switch) and records
  /// the outcome; later packets of the flow replay it from a direct-mapped
  /// slot. Validity is a sum of monotonic generation counters (router
  /// config + the tables the decision read), so any control-plane mutation
  /// makes stale entries self-invalidate on next touch — the same protocol
  /// as the PR-1 LPM cache. Forwarding behaviour is byte-identical with
  /// the cache on or off; only kFastpath trace events differ.
  void set_flowcache_enabled(bool on) noexcept { flowcache_enabled_ = on; }
  [[nodiscard]] bool flowcache_enabled() const noexcept {
    return flowcache_enabled_;
  }
  struct FlowCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< resolutions recorded into a slot
    std::uint64_t invalidated = 0;  ///< stale-generation entries re-resolved
  };
  [[nodiscard]] const FlowCacheStats& flowcache_stats() const noexcept {
    return fc_stats_;
  }

  /// --- counters ------------------------------------------------------------
  struct Counters {
    stats::Counter forwarded{"forwarded"};
    stats::Counter delivered{"delivered"};
    stats::Counter no_route{"no_route"};
    stats::Counter ttl_expired{"ttl_expired"};
    stats::Counter label_miss{"label_miss"};
    stats::Counter no_tunnel{"no_tunnel"};
    stats::Counter policed{"policed"};
    stats::Counter esp_rejected{"esp_rejected"};
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  /// --- flow fastpath cache internals --------------------------------------
  /// Full 5-tuple key. The slot is picked by flow id, but the stored key is
  /// the visible 5-tuple: bidirectional flows (TCP data vs. ACKs) share a
  /// flow id with swapped addresses/ports, and must never replay each
  /// other's decision. meta's low bit marks the key as populated so an
  /// empty slot can never match.
  struct FlowKey {
    std::uint64_t addrs = 0;  ///< src << 32 | dst
    std::uint64_t meta = 0;   ///< sport<<48 | dport<<32 | proto<<8 | 1
    [[nodiscard]] bool operator==(const FlowKey& o) const noexcept {
      return addrs == o.addrs && meta == o.meta;
    }
  };
  [[nodiscard]] static FlowKey flow_key_of(const net::Packet& p) noexcept {
    return FlowKey{
        (std::uint64_t{p.ip.src.value()} << 32) | p.ip.dst.value(),
        (std::uint64_t{p.l4.src_port} << 48) |
            (std::uint64_t{p.l4.dst_port} << 32) |
            (std::uint64_t{p.ip.protocol} << 8) | 1u};
  }
  static constexpr std::size_t kFlowSlots = 1024;     // power of two
  static constexpr std::size_t kTransitSlots = 256;   // power of two
  [[nodiscard]] static std::size_t flow_slot_of(std::uint32_t flow_id) noexcept {
    return (flow_id * 0x9E3779B1u) >> 22;  // Fibonacci hash, top 10 bits
  }

  /// Ingress-edge decision (inject): classification outcome + meter binding.
  struct IngressEntry {
    FlowKey key;
    std::uint64_t gen_sum = 0;  ///< 0 = empty
    qos::Phb phb = qos::Phb::kBe;
    std::int32_t rule = qos::CbqClassifier::kUnmatched;
    bool marked = false;  ///< a classifier ran: replay the DSCP write
    std::uint8_t dscp = 0;
    qos::Policer* policer = nullptr;  ///< still exercised per packet
    qos::Shaper* shaper = nullptr;    ///< still exercised per packet
  };

  enum class FlowAction : std::uint8_t { kLocal, kForward, kImpose };

  /// Forwarding decision (forward_ip): terminal action for the flow.
  struct ForwardEntry {
    FlowKey key;
    VpnId ctx = kGlobalVpn;  ///< VRF context the lookup ran in
    std::uint64_t gen_sum = 0;
    FlowAction act = FlowAction::kForward;
    VpnId deliver_vpn = kGlobalVpn;  ///< kLocal
    std::uint32_t vpn_label = 0;     ///< kImpose
    std::uint32_t tunnel_label = 0;  ///< kImpose
    bool push_tunnel = false;        ///< kImpose
    ip::IfIndex out_iface = ip::kInvalidIf;
  };

  /// LSR transit decision, keyed by incoming label. The LFIB op is
  /// EXP-invariant (EXP rides the shim untouched through swap/pop), so the
  /// (in-label, exp) key of the design degenerates to the label alone.
  struct TransitEntry {
    std::uint32_t in_label = 0;
    std::uint64_t gen_sum = 0;  ///< 0 = empty
    mpls::LabelOp op = mpls::LabelOp::kSwap;
    std::uint32_t out_label = 0;
    ip::IfIndex out_iface = ip::kInvalidIf;
    Vrf* vrf = nullptr;  ///< kPopDeliver target (stable: VRFs never die)
  };

  /// Generation sums: every table a decision read, plus the router-local
  /// config generation. All addends are monotonic, so a sum can never
  /// repeat a past value (no ABA).
  [[nodiscard]] std::uint64_t ingress_gen_sum() const noexcept {
    return local_gen_ + (classifier_ ? classifier_->generation() : 0);
  }
  [[nodiscard]] std::uint64_t forward_gen_sum(const Vrf* vrf) const noexcept {
    return local_gen_ +
           (vrf != nullptr ? vrf->table().generation() : fib_.generation()) +
           (ldp_ != nullptr ? ldp_->generation() : 0) +
           (rsvp_ != nullptr ? rsvp_->generation() : 0);
  }
  [[nodiscard]] std::uint64_t transit_gen_sum() const noexcept {
    return local_gen_ + lsr_->lfib.generation();
  }
  void bump_config_gen() noexcept { ++local_gen_; }

  void replay_forward(const ForwardEntry& e, net::PacketPtr p);
  void record_forward(ForwardEntry* slot, const net::Packet& p,
                      FlowAction act, VpnId deliver_vpn,
                      std::uint32_t vpn_label, std::uint32_t tunnel_label,
                      bool push_tunnel, ip::IfIndex out_iface,
                      const Vrf* vrf);
  void execute_transit(net::PacketPtr p, std::uint32_t in_label,
                       mpls::LabelOp op, std::uint32_t out_label,
                       ip::IfIndex out_iface, Vrf* vrf);
  void trace_fastpath(obs::EventType type, const net::Packet& p,
                      std::uint32_t a, std::uint8_t action) noexcept;

  void forward_ip(net::PacketPtr p, Vrf* vrf);
  void forward_labeled(net::PacketPtr p);
  void forward_pvc(net::PacketPtr p);
  void impose_and_tunnel(net::PacketPtr p, const ip::RouteEntry& route,
                         VpnId vpn, ForwardEntry* cache_slot, const Vrf* vrf);
  /// Resolve the tunnel toward an egress PE: scoped TE binding first, then
  /// the global TE binding, then LDP.
  struct TunnelBinding {
    bool found = false;
    bool push_label = false;
    std::uint32_t label = 0;
    ip::IfIndex out_iface = ip::kInvalidIf;
  };
  [[nodiscard]] TunnelBinding tunnel_to(ip::NodeId egress_pe, VpnId vpn) const;
  void deliver_local(net::PacketPtr p, VpnId vpn);
  bool maybe_esp_encap(net::Packet& p);
  /// Charge crypto time then run `then`.
  void after_crypto(std::size_t bytes, sim::Scheduler::Handler then);

  Role role_;
  ip::RouteTable fib_;
  mpls::LsrState* lsr_ = nullptr;
  const mpls::Ldp* ldp_ = nullptr;
  const mpls::RsvpTe* rsvp_ = nullptr;
  std::map<std::pair<ip::NodeId, VpnId>, mpls::LspId> te_bindings_;

  std::vector<std::unique_ptr<Vrf>> vrfs_;
  std::map<ip::IfIndex, VpnId> iface_vrf_;

  std::unique_ptr<qos::CbqClassifier> classifier_;
  std::map<qos::Phb, std::unique_ptr<qos::Policer>> policers_;
  std::map<qos::Phb, std::unique_ptr<qos::Shaper>> shapers_;
  qos::DscpExpMap exp_map_;

  std::vector<std::pair<ip::Prefix, std::shared_ptr<ipsec::EspSa>>>
      outbound_sas_;
  std::map<std::uint32_t, std::shared_ptr<ipsec::EspSa>> inbound_sas_;
  std::optional<ipsec::CryptoCostModel> crypto_cost_;
  sim::SimTime crypto_busy_until_ = 0;

  /// Trace shorthand: the topology's flight recorder.
  [[nodiscard]] obs::FlightRecorder& rec() noexcept {
    return topology().recorder();
  }
  void trace_drop(const net::Packet& p, obs::DropReason reason) noexcept;

  LocalSink sink_;
  obs::HookList<const net::Packet&, VpnId> delivery_taps_;
  obs::HookList<const net::Packet&> oam_taps_;
  ip::PrefixTrie<VpnId> local_vpn_;
  std::map<std::uint32_t, PvcSwitchEntry> pvc_table_;
  ip::PrefixTrie<std::uint32_t> pvc_routes_;
  Counters counters_;

  bool flowcache_enabled_ = true;
  bool has_pvc_ingress_ = false;  ///< PVC ingress routes disable the cache
  std::uint64_t local_gen_ = 1;   ///< bumped by every config mutator
  FlowCacheStats fc_stats_;
  /// Direct-mapped caches, sized lazily on first eligible packet so idle
  /// routers (and cache-off runs) pay nothing.
  std::vector<IngressEntry> ingress_cache_;
  std::vector<ForwardEntry> forward_cache_;
  std::vector<TransitEntry> transit_cache_;
};

}  // namespace mvpn::vpn
