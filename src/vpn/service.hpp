#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpls/domain.hpp"
#include "mpls/ldp.hpp"
#include "routing/bgp.hpp"
#include "routing/control_plane.hpp"
#include "routing/igp.hpp"
#include "vpn/router.hpp"

namespace mvpn::vpn {

/// The paper's core contribution as an executable service: RFC-2547-style
/// BGP/MPLS VPNs over a provider backbone.
///
/// Implements the three §4 functions:
///  * 4.1 membership discovery — VPN ids map to RD/RT values; PE VRFs are
///    configured per attachment and discovered through MP-BGP route
///    targets (no per-site manual mesh);
///  * 4.2 reachability exchange — each PE originates VPN-IPv4 routes
///    (RD + prefix + label + RT) for its attached sites; importing PEs
///    install them into matching VRFs only;
///  * 4.3 data traffic — ingress PEs push [tunnel label, VPN label]; LDP
///    LSPs carry traffic between PE loopbacks; egress PEs pop and deliver
///    into the owning VRF.
///
/// Sites may join and leave after start (experiment E6 exercises this).
class MplsVpnService {
 public:
  MplsVpnService(net::Topology& topo, routing::ControlPlane& cp,
                 routing::Igp& igp, mpls::MplsDomain& domain, mpls::Ldp& ldp,
                 routing::Bgp& bgp, std::uint32_t asn = 65000);

  /// Register a provider router (PE or P): joins the IGP and LDP; PEs also
  /// become BGP speakers.
  void add_provider_router(Router& r);

  /// Create a VPN; RD/RT are derived from the service ASN and the id.
  VpnId create_vpn(const std::string& name);
  [[nodiscard]] routing::RouteDistinguisher rd_of(VpnId id) const;
  [[nodiscard]] routing::RouteTarget rt_of(VpnId id) const;
  [[nodiscard]] const std::string& name_of(VpnId id) const;
  [[nodiscard]] std::size_t vpn_count() const noexcept { return vpns_.size(); }

  /// Grant `importer` import of `exported`'s routes (extranet policy, one
  /// direction; call twice for mutual extranet). Must precede the sites'
  /// attachment to take effect for their VRFs.
  void add_extranet_import(VpnId importer, VpnId exported);

  /// Attach a CE (and its site prefix) to a PE for the given VPN. The
  /// CE–PE link must already exist in the topology. `local_pref` orders
  /// multiple attachments of the same prefix (multihoming): the highest
  /// preference wins backbone-wide and the others serve as hot standbys.
  void add_site(VpnId vpn, Router& pe, Router& ce,
                const ip::Prefix& site_prefix,
                std::uint32_t local_pref = 100);

  /// Simulate a PE failure: its BGP sessions drop, peers flush and
  /// re-decide (multihomed prefixes fail over to their backup PE) and its
  /// CE attachment links go down.
  void fail_pe(Router& pe);

  /// Bind the PE interface facing `neighbor` into the VPN's VRF without
  /// declaring a site — an attachment circuit for inter-AS option-A
  /// peering (the far side is another provider's ASBR, not a CE).
  Vrf& bind_vrf_interface(VpnId vpn, Router& pe, ip::NodeId neighbor);

  /// Originate an externally-learned route (e.g. from an inter-AS
  /// peering) into this provider's MP-BGP at `pe`, labeled with the
  /// VPN's local VRF label.
  void originate_external(VpnId vpn, Router& pe, const ip::Prefix& prefix);
  void withdraw_external(VpnId vpn, Router& pe, const ip::Prefix& prefix);
  /// Detach a site: withdraws its reachability everywhere.
  void remove_site(VpnId vpn, Router& pe, const ip::Prefix& site_prefix);

  /// Bring up the control plane (IGP flooding, LDP label distribution, BGP
  /// sessions) and originate all queued site routes. Run the scheduler
  /// afterwards (e.g. converge()) to let it settle.
  void start();
  /// Drain all pending control-plane events (no traffic running).
  void converge();

  /// --- state metrics for the scalability experiments ---------------------
  [[nodiscard]] std::size_t total_vrf_count() const;
  [[nodiscard]] std::size_t total_vrf_routes() const;
  [[nodiscard]] std::size_t total_bgp_loc_rib() const;
  [[nodiscard]] std::size_t site_count(VpnId vpn) const;

  [[nodiscard]] routing::Bgp& bgp() noexcept { return bgp_; }
  [[nodiscard]] routing::Igp& igp() noexcept { return igp_; }
  [[nodiscard]] mpls::Ldp& ldp() noexcept { return ldp_; }

  /// Simulated instant the most recent VRF import/withdraw was applied —
  /// the "reachability converged" timestamp of the last change.
  [[nodiscard]] sim::SimTime last_route_change_at() const noexcept {
    return last_route_change_at_;
  }

 private:
  struct VpnInfo {
    std::string name;
    std::vector<routing::RouteTarget> extra_imports;
    std::vector<ip::Prefix> sites;
  };
  struct PendingRoute {
    ip::NodeId pe;
    routing::VpnRoute route;
  };

  Vrf& ensure_vrf(Router& pe, VpnId vpn);
  void import_route(ip::NodeId at, const routing::VpnRoute& route,
                    bool withdrawn);

  net::Topology& topo_;
  routing::ControlPlane& cp_;
  routing::Igp& igp_;
  mpls::MplsDomain& domain_;
  mpls::Ldp& ldp_;
  routing::Bgp& bgp_;
  std::uint32_t asn_;

  std::map<VpnId, VpnInfo> vpns_;
  VpnId next_vpn_ = 1;
  std::map<ip::NodeId, Router*> providers_;
  std::vector<ip::NodeId> pes_;
  std::vector<PendingRoute> pending_;
  /// Which VPN ids imported each (pe, key) — needed to undo on withdraw.
  std::map<ip::NodeId, std::map<routing::VpnRouteKey, std::vector<VpnId>>>
      imported_;
  sim::SimTime last_route_change_at_ = 0;
  bool started_ = false;
};

}  // namespace mvpn::vpn
