#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"
#include "vpn/router.hpp"

namespace mvpn::vpn {

/// One observation point along a traced packet's journey.
struct TraceHop {
  ip::NodeId node = ip::kInvalidNode;
  std::string node_name;
  std::vector<net::MplsShim> labels;  ///< label stack on arrival
  bool encrypted = false;             ///< ESP encapsulated on arrival
  std::uint8_t visible_dscp = 0;
  std::size_t wire_bytes = 0;
};

/// Result of tracing a probe packet from an ingress CE toward `dst`.
struct TraceResult {
  std::vector<TraceHop> hops;
  bool delivered = false;
  VpnId delivered_vpn = kGlobalVpn;
  sim::SimTime latency = 0;

  /// "CE0 -> PE0[mpls 17/16] -> P0[mpls 16] -> ..." rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Inject a single probe at `ingress` and record every delivery point it
/// crosses — the simulator's equivalent of an LSP-aware traceroute.
///
/// Drives the real data plane (classification, imposition, PHP, VRF
/// delivery), so the result shows exactly what the architecture does to a
/// packet. Registers its observers through the removable hook lists
/// (packet taps / delivery taps) and unhooks on return, so it coexists
/// with measurement sinks, OAM monitors and other taps.
[[nodiscard]] TraceResult trace_route(net::Topology& topo, Router& ingress,
                                      ip::Ipv4Address src,
                                      ip::Ipv4Address dst,
                                      std::uint16_t dst_port = 0,
                                      sim::SimTime timeout =
                                          sim::kSecond);

/// Operational dump of one router's tables (FIB, VRFs, LFIB) — what an
/// operator's "show" commands would print.
[[nodiscard]] std::string describe_tables(Router& router);

}  // namespace mvpn::vpn
