#include "vpn/oam.hpp"

namespace mvpn::vpn {

LspOam::LspOam(net::Topology& topo, routing::ControlPlane& cp,
               const mpls::RsvpTe& rsvp)
    : topo_(topo), cp_(cp), rsvp_(rsvp) {}

void LspOam::ensure_tail_hooked(Router& tail) {
  if (hooked_tails_[tail.id()]) return;
  hooked_tails_[tail.id()] = true;
  // OAM probes target 127/8 (RFC 4379 convention): deliver locally at the
  // LSP tail and hand them to us. Registered as a hook-list tap, so other
  // LspOam instances (or diagnostics) sharing this tail keep their hooks.
  tail.add_local_prefix(ip::Prefix::must_parse("127.0.0.0/8"));
  const ip::NodeId tail_id = tail.id();
  tail.add_oam_tap([this, tail_id](const net::Packet& p) {
    on_probe_arrival(p, tail_id);
  });
}

void LspOam::trace(obs::EventType type, mpls::LspId lsp, ip::NodeId at,
                   std::uint32_t probe_id) {
  obs::FlightRecorder& rec = topo_.recorder();
  if (!rec.enabled(obs::Category::kOam)) return;
  rec.record({.node = at, .a = lsp, .b = probe_id, .type = type});
}

void LspOam::ping(mpls::LspId lsp_id, PingCallback cb, sim::SimTime timeout) {
  const mpls::RsvpTe::Lsp& lsp = rsvp_.lsp(lsp_id);
  auto& head = dynamic_cast<Router&>(topo_.node(lsp.config.head));
  auto& tail = dynamic_cast<Router&>(topo_.node(lsp.config.tail));
  ensure_tail_hooked(tail);

  const std::uint32_t probe_id = next_probe_++;
  Pending pending;
  pending.lsp = lsp_id;
  pending.cb = std::move(cb);
  pending.sent_at = topo_.scheduler().now();
  pending.timeout =
      topo_.scheduler().schedule_in(timeout, [this, probe_id] {
        auto it = pending_.find(probe_id);
        if (it == pending_.end()) return;
        PingCallback cb = std::move(it->second.cb);
        const mpls::LspId lsp = it->second.lsp;
        pending_.erase(it);
        ++failures_;
        trace(obs::EventType::kOamTimeout, lsp,
              rsvp_.lsp(lsp).config.head, probe_id);
        cb(false, 0);
      });
  pending_[probe_id] = std::move(pending);

  if (lsp.state != mpls::RsvpTe::LspState::kUp) {
    // Not signaled: the probe cannot even be imposed — let it time out,
    // which is exactly what an operator would observe.
    return;
  }

  net::PacketPtr probe = topo_.packet_factory().make();
  probe->flow_id = probe_id;
  probe->created_at = topo_.scheduler().now();
  probe->ip.src = head.loopback();
  probe->ip.dst = ip::Ipv4Address(127, 0, 0, 1);
  probe->l4.dst_port = 3503;  // LSP ping port
  probe->payload_bytes = 32;
  if (!lsp.head_implicit_null) {
    probe->push_label(net::MplsShim{lsp.head_label, 6, 64});
  }
  ++probes_sent_;
  trace(obs::EventType::kOamProbe, lsp_id, lsp.config.head, probe_id);
  head.send(std::move(probe), lsp.head_iface);
}

void LspOam::on_probe_arrival(const net::Packet& p, ip::NodeId tail) {
  const std::uint32_t probe_id = p.flow_id;
  auto it = pending_.find(probe_id);
  if (it == pending_.end()) return;  // late duplicate / unknown
  const ip::NodeId head = rsvp_.lsp(it->second.lsp).config.head;
  // The echo reply returns over the control plane (as RFC 4379 replies
  // return over plain IP).
  cp_.send_session(tail, head, "oam.reply", 32,
                   [this, probe_id] { on_reply(probe_id); });
}

void LspOam::on_reply(std::uint32_t probe_id) {
  auto it = pending_.find(probe_id);
  if (it == pending_.end()) return;  // already timed out
  topo_.scheduler().cancel(it->second.timeout);
  PingCallback cb = std::move(it->second.cb);
  const sim::SimTime rtt = topo_.scheduler().now() - it->second.sent_at;
  const mpls::LspId lsp = it->second.lsp;
  pending_.erase(it);
  ++replies_;
  trace(obs::EventType::kOamReply, lsp, rsvp_.lsp(lsp).config.head, probe_id);
  cb(true, rtt);
}

void LspOam::monitor(mpls::LspId lsp, sim::SimTime interval,
                     std::uint32_t miss_threshold, DownCallback on_down) {
  Monitor mon;
  mon.interval = interval;
  mon.threshold = miss_threshold;
  mon.on_down = std::move(on_down);
  mon.active = true;
  monitors_[lsp] = std::move(mon);
  monitor_tick(lsp);
}

void LspOam::stop_monitoring(mpls::LspId lsp) {
  auto it = monitors_.find(lsp);
  if (it != monitors_.end()) it->second.active = false;
}

void LspOam::monitor_tick(mpls::LspId lsp) {
  auto it = monitors_.find(lsp);
  if (it == monitors_.end() || !it->second.active) return;
  // Timeout slightly under the interval so misses are counted before the
  // next probe goes out.
  const sim::SimTime timeout = it->second.interval * 9 / 10;
  ping(
      lsp,
      [this, lsp](bool ok, sim::SimTime) {
        auto mit = monitors_.find(lsp);
        if (mit == monitors_.end() || !mit->second.active) return;
        Monitor& mon = mit->second;
        if (ok) {
          mon.misses = 0;
          return;
        }
        if (++mon.misses >= mon.threshold) {
          mon.active = false;
          if (mon.on_down) mon.on_down(lsp);
        }
      },
      timeout);
  topo_.scheduler().schedule_in(it->second.interval,
                                [this, lsp] { monitor_tick(lsp); });
}

}  // namespace mvpn::vpn
