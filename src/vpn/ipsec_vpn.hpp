#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ipsec/esp.hpp"
#include "ipsec/ike.hpp"
#include "routing/control_plane.hpp"
#include "routing/igp.hpp"
#include "vpn/router.hpp"

namespace mvpn::vpn {

/// The paper's §2.3 security baseline: CPE-to-CPE IPsec tunnels over a
/// plain routed IP backbone. Gateways negotiate SA pairs through IKE, then
/// ESP-tunnel site traffic; the provider core routes only the outer
/// headers (and therefore — the paper's point — cannot see the inner
/// 5-tuple for QoS, and pays crypto cost at every gateway).
class IpsecVpnService {
 public:
  IpsecVpnService(net::Topology& topo, routing::ControlPlane& cp,
                  routing::Igp& igp,
                  ipsec::CipherSuite suite = ipsec::CipherSuite::kTripleDesCbc);

  /// Register any router participating in the routed backbone (core
  /// routers and gateways). Joins the IGP; host routes to every member
  /// loopback are installed into its FIB after SPF.
  void enroll_router(Router& r);

  VpnId create_vpn(const std::string& name);

  /// Attach a security gateway (CE) and its site prefix to a VPN.
  void add_site(VpnId vpn, Router& gateway, const ip::Prefix& site_prefix);

  /// Start the IGP and run IKE for the full site mesh of every VPN.
  void establish();

  /// --- metrics -------------------------------------------------------------
  [[nodiscard]] std::size_t tunnel_count() const noexcept {
    return negotiations_.size();
  }
  [[nodiscard]] std::size_t established_count() const;
  [[nodiscard]] sim::SimTime all_established_at() const noexcept {
    return all_established_at_;
  }
  [[nodiscard]] std::size_t site_count(VpnId vpn) const {
    return sites_.at(vpn).size();
  }

  /// Crypto processing-time model charged at the gateways.
  void set_crypto_cost(ipsec::CryptoCostModel model);

 private:
  struct Site {
    Router* gateway = nullptr;
    ip::Prefix prefix;
  };

  void sync_fib(ip::NodeId router);
  void negotiate(VpnId vpn, const Site& a, const Site& b);

  net::Topology& topo_;
  routing::ControlPlane& cp_;
  routing::Igp& igp_;
  ipsec::CipherSuite suite_;
  std::map<ip::NodeId, Router*> members_;
  std::map<VpnId, std::vector<Site>> sites_;
  std::map<VpnId, std::string> names_;
  VpnId next_vpn_ = 1;
  std::vector<std::unique_ptr<ipsec::IkeNegotiation>> negotiations_;
  sim::SimTime all_established_at_ = 0;
  bool started_ = false;
};

}  // namespace mvpn::vpn
