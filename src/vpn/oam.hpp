#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "mpls/rsvp_te.hpp"
#include "routing/control_plane.hpp"
#include "vpn/router.hpp"

namespace mvpn::vpn {

/// MPLS OAM: LSP ping and continuity monitoring (what RFC 4379 / BFD later
/// standardized). A probe packet rides the *data plane* of the LSP — same
/// labels, same queues — to the tail, which answers over the control
/// plane; so a ping failure means the forwarding path itself is broken,
/// not just that routing thinks it is. The continuity monitor pings
/// periodically and declares the LSP down after consecutive misses, which
/// is how a head end detects failures RSVP signaling alone would miss.
class LspOam {
 public:
  LspOam(net::Topology& topo, routing::ControlPlane& cp,
         const mpls::RsvpTe& rsvp);

  /// One-shot ping. `cb(ok, rtt)`: ok=false on timeout (rtt undefined).
  using PingCallback = std::function<void(bool ok, sim::SimTime rtt)>;
  void ping(mpls::LspId lsp, PingCallback cb,
            sim::SimTime timeout = 100 * sim::kMillisecond);

  /// Periodic continuity check; `on_down` fires once when
  /// `miss_threshold` consecutive pings time out.
  using DownCallback = std::function<void(mpls::LspId)>;
  void monitor(mpls::LspId lsp, sim::SimTime interval,
               std::uint32_t miss_threshold, DownCallback on_down);
  void stop_monitoring(mpls::LspId lsp);

  [[nodiscard]] std::uint64_t probes_sent() const noexcept {
    return probes_sent_;
  }
  [[nodiscard]] std::uint64_t replies_received() const noexcept {
    return replies_;
  }
  [[nodiscard]] std::uint64_t failures_detected() const noexcept {
    return failures_;
  }

 private:
  struct Pending {
    mpls::LspId lsp = 0;
    PingCallback cb;
    sim::SimTime sent_at = 0;
    sim::EventId timeout{};
  };
  struct Monitor {
    sim::SimTime interval = 0;
    std::uint32_t threshold = 0;
    std::uint32_t misses = 0;
    DownCallback on_down;
    bool active = false;
  };

  void ensure_tail_hooked(Router& tail);
  void trace(obs::EventType type, mpls::LspId lsp, ip::NodeId at,
             std::uint32_t probe_id);
  void on_probe_arrival(const net::Packet& p, ip::NodeId tail);
  void on_reply(std::uint32_t probe_id);
  void monitor_tick(mpls::LspId lsp);

  net::Topology& topo_;
  routing::ControlPlane& cp_;
  const mpls::RsvpTe& rsvp_;
  std::map<std::uint32_t, Pending> pending_;
  std::map<mpls::LspId, Monitor> monitors_;
  std::map<ip::NodeId, bool> hooked_tails_;
  std::uint32_t next_probe_ = 0x0A000000;  // distinct flow-id space
  std::uint64_t probes_sent_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace mvpn::vpn
