#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ip/route_table.hpp"
#include "routing/bgp.hpp"

namespace mvpn::vpn {

/// Identifier of a VPN within the provider (the paper's "VPN-id" used by
/// the discovery mechanism, §4). Also used as ground truth for isolation
/// checks. 0 means "global / no VPN".
using VpnId = std::uint32_t;
inline constexpr VpnId kGlobalVpn = 0;

/// Configuration of one VPN routing/forwarding instance on a PE.
struct VrfConfig {
  VpnId vpn_id = 0;
  std::string name;
  routing::RouteDistinguisher rd;
  std::vector<routing::RouteTarget> import_targets;
  std::vector<routing::RouteTarget> export_targets;
};

/// VRF: the per-VPN routing table a PE keeps for each attached VPN, the
/// structure that lets "a single routing system support multiple VPNs
/// whose internal address spaces overlap" (paper §4). Data packets from an
/// attached site are looked up here, never in the global table.
class Vrf {
 public:
  explicit Vrf(VrfConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const VrfConfig& config() const noexcept { return config_; }
  [[nodiscard]] VpnId vpn_id() const noexcept { return config_.vpn_id; }

  [[nodiscard]] ip::RouteTable& table() noexcept { return table_; }
  [[nodiscard]] const ip::RouteTable& table() const noexcept { return table_; }

  /// The per-VRF aggregate MPLS label: remote PEs push it; we pop it and
  /// look the packet up in this VRF (kPopDeliver).
  void set_vpn_label(std::uint32_t label) noexcept { vpn_label_ = label; }
  [[nodiscard]] std::uint32_t vpn_label() const noexcept { return vpn_label_; }

  /// Interfaces on the owning PE bound to this VRF (CE attachment ports).
  void attach_interface(ip::IfIndex iface) { attachments_.push_back(iface); }
  [[nodiscard]] const std::vector<ip::IfIndex>& attachments() const noexcept {
    return attachments_;
  }

  [[nodiscard]] bool imports(const routing::VpnRoute& route) const noexcept {
    for (const auto& rt : config_.import_targets) {
      if (route.has_target(rt)) return true;
    }
    return false;
  }

 private:
  VrfConfig config_;
  ip::RouteTable table_;
  std::uint32_t vpn_label_ = ip::kNoLabel;
  std::vector<ip::IfIndex> attachments_;
};

}  // namespace mvpn::vpn
