#include "vpn/service.hpp"

#include <stdexcept>

namespace mvpn::vpn {

MplsVpnService::MplsVpnService(net::Topology& topo, routing::ControlPlane& cp,
                               routing::Igp& igp, mpls::MplsDomain& domain,
                               mpls::Ldp& ldp, routing::Bgp& bgp,
                               std::uint32_t asn)
    : topo_(topo),
      cp_(cp),
      igp_(igp),
      domain_(domain),
      ldp_(ldp),
      bgp_(bgp),
      asn_(asn) {
  bgp_.on_route([this](ip::NodeId at, const routing::VpnRoute& route,
                       bool withdrawn) { import_route(at, route, withdrawn); });
}

void MplsVpnService::add_provider_router(Router& r) {
  if (r.role() == Role::kCe) {
    throw std::invalid_argument("add_provider_router: CE is not a provider");
  }
  providers_[r.id()] = &r;
  igp_.add_router(r.id());
  ldp_.enable_router(r.id());
  r.set_lsr_state(&domain_.state_of(r.id()));
  r.set_ldp(&ldp_);
  if (r.role() == Role::kPe) {
    bgp_.add_speaker(r.id());
    pes_.push_back(r.id());
  }
}

VpnId MplsVpnService::create_vpn(const std::string& name) {
  const VpnId id = next_vpn_++;
  vpns_[id].name = name;
  return id;
}

routing::RouteDistinguisher MplsVpnService::rd_of(VpnId id) const {
  return routing::RouteDistinguisher{asn_, id};
}

routing::RouteTarget MplsVpnService::rt_of(VpnId id) const {
  return routing::RouteTarget{asn_, id};
}

const std::string& MplsVpnService::name_of(VpnId id) const {
  return vpns_.at(id).name;
}

void MplsVpnService::add_extranet_import(VpnId importer, VpnId exported) {
  vpns_.at(importer).extra_imports.push_back(rt_of(exported));
}

Vrf& MplsVpnService::ensure_vrf(Router& pe, VpnId vpn) {
  if (Vrf* existing = pe.vrf_by_vpn(vpn)) return *existing;

  const VpnInfo& info = vpns_.at(vpn);
  VrfConfig cfg;
  cfg.vpn_id = vpn;
  cfg.name = info.name;
  cfg.rd = rd_of(vpn);
  cfg.import_targets.push_back(rt_of(vpn));
  for (const auto& rt : info.extra_imports) cfg.import_targets.push_back(rt);
  cfg.export_targets.push_back(rt_of(vpn));

  Vrf& vrf = pe.add_vrf(std::move(cfg));
  // Per-VRF aggregate label: remote PEs push it; we pop-and-deliver.
  mpls::LsrState& lsr = domain_.state_of(pe.id());
  const std::uint32_t label = lsr.allocator.allocate();
  vrf.set_vpn_label(label);
  mpls::LfibEntry entry;
  entry.in_label = label;
  entry.op = mpls::LabelOp::kPopDeliver;
  entry.vrf_id = vpn;
  lsr.lfib.install(entry);
  return vrf;
}

void MplsVpnService::add_site(VpnId vpn, Router& pe, Router& ce,
                              const ip::Prefix& site_prefix,
                              std::uint32_t local_pref) {
  if (providers_.find(pe.id()) == providers_.end()) {
    throw std::invalid_argument("add_site: PE is not a registered provider");
  }
  const ip::IfIndex pe_if = pe.interface_to(ce.id());
  const ip::IfIndex ce_if = ce.interface_to(pe.id());
  if (pe_if == ip::kInvalidIf || ce_if == ip::kInvalidIf) {
    throw std::invalid_argument("add_site: CE and PE are not adjacent");
  }

  // CE side: the site prefix terminates here; everything else goes to the
  // PE (the paper's point that CEs need no VPN/MPLS intelligence).
  ce.add_local_prefix(site_prefix, vpn);
  ip::RouteEntry def;
  def.prefix = ip::Prefix(ip::Ipv4Address(0), 0);
  def.next_hop.node = pe.id();
  def.next_hop.iface = ce_if;
  def.source = ip::RouteSource::kStatic;
  ce.fib().install(def);

  // PE side: VRF, attachment, connected route toward the CE.
  Vrf& vrf = ensure_vrf(pe, vpn);
  pe.bind_interface_to_vrf(pe_if, vpn);
  ip::RouteEntry site;
  site.prefix = site_prefix;
  site.next_hop.node = ce.id();
  site.next_hop.iface = pe_if;
  site.source = ip::RouteSource::kConnected;
  site.admin_distance = 0;
  vrf.table().install(site);

  vpns_.at(vpn).sites.push_back(site_prefix);

  // Reachability exchange (§4.2): originate the VPN-IPv4 route.
  routing::VpnRoute route;
  route.rd = rd_of(vpn);
  route.prefix = site_prefix;
  route.next_hop = pe.loopback();
  route.next_hop_node = pe.id();
  route.vpn_label = vrf.vpn_label();
  route.route_targets.push_back(rt_of(vpn));
  route.local_pref = local_pref;
  if (started_) {
    bgp_.originate(pe.id(), route);
  } else {
    pending_.push_back(PendingRoute{pe.id(), std::move(route)});
  }
}

void MplsVpnService::fail_pe(Router& pe) {
  bgp_.fail_speaker(pe.id());
  for (const net::Interface& intf : pe.interfaces()) {
    if (intf.link == net::kInvalidLink) continue;
    net::Link& link = topo_.link(intf.link);
    if (link.up()) {
      link.set_up(false);
      igp_.notify_link_change(intf.link);
    }
  }
}

Vrf& MplsVpnService::bind_vrf_interface(VpnId vpn, Router& pe,
                                        ip::NodeId neighbor) {
  const ip::IfIndex iface = pe.interface_to(neighbor);
  if (iface == ip::kInvalidIf) {
    throw std::invalid_argument("bind_vrf_interface: not adjacent");
  }
  Vrf& vrf = ensure_vrf(pe, vpn);
  pe.bind_interface_to_vrf(iface, vpn);
  return vrf;
}

void MplsVpnService::originate_external(VpnId vpn, Router& pe,
                                        const ip::Prefix& prefix) {
  Vrf& vrf = ensure_vrf(pe, vpn);
  routing::VpnRoute route;
  route.rd = rd_of(vpn);
  route.prefix = prefix;
  route.next_hop = pe.loopback();
  route.next_hop_node = pe.id();
  route.vpn_label = vrf.vpn_label();
  route.route_targets.push_back(rt_of(vpn));
  if (started_) {
    bgp_.originate(pe.id(), route);
  } else {
    pending_.push_back(PendingRoute{pe.id(), std::move(route)});
  }
}

void MplsVpnService::withdraw_external(VpnId vpn, Router& pe,
                                       const ip::Prefix& prefix) {
  if (started_) bgp_.withdraw(pe.id(), rd_of(vpn), prefix);
}

void MplsVpnService::remove_site(VpnId vpn, Router& pe,
                                 const ip::Prefix& site_prefix) {
  if (Vrf* vrf = pe.vrf_by_vpn(vpn)) vrf->table().remove(site_prefix);
  auto& sites = vpns_.at(vpn).sites;
  for (auto it = sites.begin(); it != sites.end(); ++it) {
    if (*it == site_prefix) {
      sites.erase(it);
      break;
    }
  }
  if (started_) {
    bgp_.withdraw(pe.id(), rd_of(vpn), site_prefix);
  }
}

void MplsVpnService::start() {
  if (started_) return;
  started_ = true;
  igp_.start();
  for (ip::NodeId pe : pes_) {
    ldp_.announce_egress(pe,
                         ip::Prefix::host(topo_.node(pe).loopback()));
  }
  bgp_.start();
  for (PendingRoute& p : pending_) bgp_.originate(p.pe, std::move(p.route));
  pending_.clear();
}

void MplsVpnService::converge() { topo_.scheduler().run(); }

void MplsVpnService::import_route(ip::NodeId at,
                                  const routing::VpnRoute& route,
                                  bool withdrawn) {
  auto prov = providers_.find(at);
  if (prov == providers_.end()) return;  // a dedicated RR holds no VRFs
  Router& pe = *prov->second;
  last_route_change_at_ = cp_.now();
  const routing::VpnRouteKey key{route.rd, route.prefix};

  if (withdrawn) {
    auto node_it = imported_.find(at);
    if (node_it == imported_.end()) return;
    auto key_it = node_it->second.find(key);
    if (key_it == node_it->second.end()) return;
    for (VpnId vpn : key_it->second) {
      if (Vrf* vrf = pe.vrf_by_vpn(vpn)) {
        const ip::RouteEntry* cur = vrf->table().find(route.prefix);
        // Never remove a locally connected site route.
        if (cur != nullptr && cur->source == ip::RouteSource::kVpn) {
          vrf->table().remove(route.prefix);
        }
      }
    }
    node_it->second.erase(key_it);
    return;
  }

  if (route.next_hop_node == at) return;  // our own origination
  std::vector<VpnId>& importers = imported_[at][key];
  importers.clear();
  for (Vrf* vrf : pe.vrfs()) {
    if (!vrf->imports(route)) continue;
    ip::RouteEntry entry;
    entry.prefix = route.prefix;
    entry.source = ip::RouteSource::kVpn;
    entry.admin_distance = ip::default_admin_distance(ip::RouteSource::kVpn);
    entry.vpn_label = route.vpn_label;
    entry.egress_pe = route.next_hop_node;
    vrf->table().install(entry);
    importers.push_back(vrf->vpn_id());
  }
}

std::size_t MplsVpnService::total_vrf_count() const {
  std::size_t n = 0;
  for (const auto& [id, r] : providers_) {
    n += static_cast<std::size_t>(r->vrf_count());
  }
  return n;
}

std::size_t MplsVpnService::total_vrf_routes() const {
  std::size_t n = 0;
  for (const auto& [id, r] : providers_) {
    for (const Vrf* v :
         const_cast<Router*>(r)->vrfs()) {  // vrfs() is logically const
      n += v->table().size();
    }
  }
  return n;
}

std::size_t MplsVpnService::total_bgp_loc_rib() const {
  std::size_t n = 0;
  for (ip::NodeId pe : pes_) n += bgp_.loc_rib_size(pe);
  return n;
}

std::size_t MplsVpnService::site_count(VpnId vpn) const {
  return vpns_.at(vpn).sites.size();
}

}  // namespace mvpn::vpn
