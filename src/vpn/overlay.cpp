#include "vpn/overlay.hpp"

#include <stdexcept>

namespace mvpn::vpn {

OverlayVpnService::OverlayVpnService(net::Topology& topo,
                                     routing::ControlPlane& cp)
    : topo_(topo), cp_(cp) {}

VpnId OverlayVpnService::create_vpn(const std::string& name) {
  const VpnId id = next_vpn_++;
  names_[id] = name;
  sites_[id] = {};
  return id;
}

void OverlayVpnService::rebuild_graph() {
  graph_ = routing::LinkStateDb{};
  for (ip::NodeId n = 0; n < topo_.node_count(); ++n) {
    routing::Lsa lsa;
    lsa.origin = n;
    lsa.sequence = 1;
    for (const net::Adjacency& adj : topo_.adjacencies(n)) {
      routing::LsaLink l;
      l.neighbor = adj.neighbor;
      l.link = adj.link;
      l.cost = topo_.link(adj.link).config().igp_cost;
      l.reservable_bps = topo_.link(adj.link).config().bandwidth_bps;
      lsa.links.push_back(l);
    }
    graph_.install(lsa);
  }
}

std::vector<ip::NodeId> OverlayVpnService::route_between(ip::NodeId a,
                                                         ip::NodeId b) const {
  return routing::shortest_path(graph_, a, b).nodes;
}

void OverlayVpnService::add_site(VpnId vpn, Router& ce,
                                 const ip::Prefix& site_prefix) {
  auto it = sites_.find(vpn);
  if (it == sites_.end()) throw std::invalid_argument("overlay: unknown VPN");
  ce.add_local_prefix(site_prefix, vpn);
  const Site site{&ce, site_prefix};
  if (provisioned_) {
    rebuild_graph();
    for (const Site& other : it->second) build_circuit(vpn, site, other);
  }
  it->second.push_back(site);
}

void OverlayVpnService::provision() {
  rebuild_graph();
  for (const auto& [vpn, members] : sites_) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        build_circuit(vpn, members[i], members[j]);
      }
    }
  }
  provisioned_ = true;
}

void OverlayVpnService::build_circuit(VpnId vpn, const Site& a,
                                      const Site& b) {
  (void)vpn;
  install_direction(a, b);
  install_direction(b, a);
  ++pvc_pairs_;
}

void OverlayVpnService::install_direction(const Site& from, const Site& to) {
  const std::vector<ip::NodeId> path =
      route_between(from.ce->id(), to.ce->id());
  if (path.size() < 2) {
    throw std::runtime_error("overlay: no path between sites");
  }
  const std::uint32_t vc = next_vc_++;

  // Ingress mapping: destination prefix → circuit.
  from.ce->add_pvc_route(to.prefix, vc);

  for (std::size_t i = 0; i < path.size(); ++i) {
    auto* node = dynamic_cast<Router*>(&topo_.node(path[i]));
    if (node == nullptr) {
      throw std::runtime_error("overlay: non-router on circuit path");
    }
    Router::PvcSwitchEntry entry;
    if (i + 1 == path.size()) {
      entry.terminate = true;
    } else {
      entry.out_iface = node->interface_to(path[i + 1]);
    }
    node->install_pvc(vc, entry);
    touched_.push_back(node);
    // One NMS provisioning action per hop per direction.
    ++provisioning_actions_;
    cp_.send_session(path.front(), path[i], "pvc.provision", 64, [] {});
  }
}

std::size_t OverlayVpnService::total_switching_entries() const {
  std::size_t n = 0;
  std::vector<const Router*> seen;
  for (const Router* r : touched_) {
    bool dup = false;
    for (const Router* s : seen) {
      if (s == r) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.push_back(r);
      n += r->pvc_switch_entries();
    }
  }
  return n;
}

std::size_t OverlayVpnService::site_count(VpnId vpn) const {
  return sites_.at(vpn).size();
}

}  // namespace mvpn::vpn
