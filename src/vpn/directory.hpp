#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ip/address.hpp"
#include "routing/control_plane.hpp"
#include "vpn/vrf.hpp"

namespace mvpn::vpn {

/// The "client-server approach" to VPN membership discovery that paper
/// §4.1 lists next to manual configuration and BGP-based notification:
/// a directory server that PEs register their VPN attachments with, and
/// which notifies exactly the *current members* of that VPN about joins
/// and leaves.
///
/// Contrast (measured in bench_membership): the RFC-2547 mechanism
/// piggybacks membership on BGP, which floods every update to every
/// session peer whether or not that PE serves the VPN; the directory
/// sends only |members| notifications, at the price of a central server
/// and an extra round trip. The discovery-separation requirement ("the
/// discovery of membership in one VPN must not allow members of other
/// VPNs to be discovered") maps to notifications being scoped per VPN.
class MembershipDirectory {
 public:
  MembershipDirectory(routing::ControlPlane& cp, ip::NodeId server);

  struct Attachment {
    ip::NodeId pe = ip::kInvalidNode;
    ip::Prefix prefix;
    friend auto operator<=>(const Attachment&, const Attachment&) = default;
  };

  /// Fired at a member PE when another attachment joins/leaves its VPN.
  using Notification = std::function<void(
      ip::NodeId at_pe, VpnId vpn, const Attachment& who, bool joined)>;
  void on_notify(Notification cb) { callbacks_.push_back(std::move(cb)); }

  /// A PE registers one of its VPN attachments (client → server message;
  /// the server then notifies current members, and replays the existing
  /// membership back to the newcomer).
  void register_site(VpnId vpn, ip::NodeId pe, const ip::Prefix& prefix);
  void deregister_site(VpnId vpn, ip::NodeId pe, const ip::Prefix& prefix);

  [[nodiscard]] std::size_t member_count(VpnId vpn) const;
  [[nodiscard]] std::uint64_t registrations() const noexcept {
    return registrations_;
  }
  [[nodiscard]] std::uint64_t notifications_sent() const noexcept {
    return notifications_;
  }

 private:
  void server_handle(VpnId vpn, Attachment who, bool joined);
  void notify(ip::NodeId member, VpnId vpn, const Attachment& who,
              bool joined);

  routing::ControlPlane& cp_;
  ip::NodeId server_;
  std::map<VpnId, std::set<Attachment>> members_;
  std::vector<Notification> callbacks_;
  std::uint64_t registrations_ = 0;
  std::uint64_t notifications_ = 0;
};

}  // namespace mvpn::vpn
