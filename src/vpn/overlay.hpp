#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "routing/control_plane.hpp"
#include "routing/link_state.hpp"
#include "vpn/router.hpp"

namespace mvpn::vpn {

/// The pre-MPLS baseline of the paper's §2.1: an overlay VPN built from a
/// full mesh of provisioned virtual circuits (frame-relay/ATM-style PVCs).
/// Each site pair needs its own circuit — N sites per VPN cost N(N−1)/2
/// bidirectional PVCs, each of which consumes switching state on every hop
/// it crosses and a provisioning action per hop. Experiment E1 counts all
/// of that against the MPLS/BGP VPN's state.
class OverlayVpnService {
 public:
  OverlayVpnService(net::Topology& topo, routing::ControlPlane& cp);

  VpnId create_vpn(const std::string& name);

  /// Attach a CE gateway with its site prefix. If the service is already
  /// provisioned, circuits to all existing sites of the VPN are built
  /// immediately (incremental join, experiment E7).
  void add_site(VpnId vpn, Router& ce, const ip::Prefix& site_prefix);

  /// Build every missing circuit (call once after initial sites).
  void provision();

  /// --- state metrics ------------------------------------------------------
  /// Bidirectional PVC count (the paper's N(N−1)/2 quantity).
  [[nodiscard]] std::size_t pvc_count() const noexcept { return pvc_pairs_; }
  /// Sum of VC switching-table entries across all nodes.
  [[nodiscard]] std::size_t total_switching_entries() const;
  /// Provisioning actions performed (one per hop per direction).
  [[nodiscard]] std::uint64_t provisioning_actions() const noexcept {
    return provisioning_actions_;
  }
  [[nodiscard]] std::size_t site_count(VpnId vpn) const;

 private:
  struct Site {
    Router* ce = nullptr;
    ip::Prefix prefix;
  };

  /// Build the bidirectional circuit between two sites of a VPN.
  void build_circuit(VpnId vpn, const Site& a, const Site& b);
  void install_direction(const Site& from, const Site& to);
  [[nodiscard]] std::vector<ip::NodeId> route_between(ip::NodeId a,
                                                      ip::NodeId b) const;
  void rebuild_graph();

  net::Topology& topo_;
  routing::ControlPlane& cp_;
  std::map<VpnId, std::vector<Site>> sites_;
  std::map<VpnId, std::string> names_;
  VpnId next_vpn_ = 1;
  std::uint32_t next_vc_ = 1;
  std::size_t pvc_pairs_ = 0;
  std::uint64_t provisioning_actions_ = 0;
  bool provisioned_ = false;
  routing::LinkStateDb graph_;  ///< provisioning-time view of the topology
  std::vector<Router*> touched_;
};

}  // namespace mvpn::vpn
