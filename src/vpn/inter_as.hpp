#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "vpn/service.hpp"

namespace mvpn::vpn {

/// Inter-provider VPN peering — the paper's §5 goal of extending SLAs
/// "across cooperative service provider boundaries", which "allows the
/// building of VPNs using multiple carriers".
///
/// Implements the back-to-back-VRF arrangement (what RFC 4364 later
/// standardized as inter-AS "option A"): each provider's ASBR holds a VRF
/// for the shared VPN and treats the peer ASBR as if it were a CE on a
/// VRF-attached interface. Reachability learned inside one provider is
/// re-advertised to the peer over a per-VRF exterior session and
/// re-originated into the peer's MP-BGP with the peer's own RD/RT/label.
/// Data packets cross the boundary as plain IP on the attachment circuit:
/// pop-and-deliver at one ASBR, re-imposition at the other.
class InterAsPeering {
 public:
  /// The ASBRs must be registered PEs of their services and be adjacent
  /// in the topology.
  InterAsPeering(routing::ControlPlane& cp, MplsVpnService& service_a,
                 Router& asbr_a, MplsVpnService& service_b, Router& asbr_b);

  /// Stitch one VPN across the boundary. `vpn_a`/`vpn_b` are the VPN's
  /// ids within each provider (RDs and RTs stay provider-local).
  void stitch(VpnId vpn_a, VpnId vpn_b);

  [[nodiscard]] std::uint64_t updates_sent() const noexcept {
    return updates_sent_;
  }
  [[nodiscard]] std::size_t stitched_count() const noexcept {
    return stitches_.size();
  }

 private:
  struct Side {
    MplsVpnService* service = nullptr;
    Router* asbr = nullptr;
  };
  struct Stitch {
    VpnId vpn[2] = {0, 0};  // indexed by side
  };

  /// side = 0 (A) or 1 (B); handles a loc-rib change in that provider.
  void on_local_route(int side, const routing::VpnRoute& route,
                      bool withdrawn);
  /// Install + re-originate at the receiving side.
  void receive_update(int to_side, VpnId to_vpn, ip::Prefix prefix,
                      bool withdrawn);

  routing::ControlPlane& cp_;
  Side sides_[2];
  std::vector<Stitch> stitches_;
  /// Prefixes installed from the peer, per side — never echoed back.
  std::set<std::pair<VpnId, ip::Prefix>> peer_installed_[2];
  std::uint64_t updates_sent_ = 0;
};

}  // namespace mvpn::vpn
