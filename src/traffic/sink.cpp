#include "traffic/sink.hpp"

namespace mvpn::traffic {

void MeasurementSink::expect_flow(std::uint32_t flow_id, qos::Phb cls,
                                  vpn::VpnId expected_vpn) {
  if (flow_id >= flows_.size()) flows_.resize(flow_id + 1);
  flows_[flow_id] = Expected{cls, expected_vpn, true};
}

void MeasurementSink::bind(vpn::Router& ce) {
  ce.set_local_sink([this](const net::Packet& p, vpn::VpnId vpn) {
    on_delivery(p, vpn);
  });
}

void MeasurementSink::on_delivery(const net::Packet& p, vpn::VpnId vpn) {
  delivered_.add();
  // Isolation first: a packet delivered into a VPN context that does not
  // match its origin is a leak regardless of flow bookkeeping.
  if (p.true_vpn_id != vpn) {
    leaks_.add();
    return;
  }
  if (p.flow_id >= flows_.size() || !flows_[p.flow_id].known) {
    unknown_.add();
    return;
  }
  const sim::SimTime latency = clock_.now() - p.created_at;
  const std::size_t bytes =
      net::kIpv4HeaderBytes + net::kL4HeaderBytes + p.payload_bytes;
  probe_.record_delivered(flows_[p.flow_id].cls, p.flow_id, latency, bytes);
}

}  // namespace mvpn::traffic
