#include "traffic/sink.hpp"

namespace mvpn::traffic {

void MeasurementSink::expect_flow(std::uint32_t flow_id, qos::Phb cls,
                                  vpn::VpnId expected_vpn) {
  flows_[flow_id] = Expected{cls, expected_vpn};
}

void MeasurementSink::bind(vpn::Router& ce) {
  ce.set_local_sink([this](const net::Packet& p, vpn::VpnId vpn) {
    on_delivery(p, vpn);
  });
}

void MeasurementSink::on_delivery(const net::Packet& p, vpn::VpnId vpn) {
  delivered_.add();
  // Isolation first: a packet delivered into a VPN context that does not
  // match its origin is a leak regardless of flow bookkeeping.
  if (p.true_vpn_id != vpn) {
    leaks_.add();
    return;
  }
  auto it = flows_.find(p.flow_id);
  if (it == flows_.end()) {
    unknown_.add();
    return;
  }
  const sim::SimTime latency = clock_.now() - p.created_at;
  const std::size_t bytes =
      net::kIpv4HeaderBytes + net::kL4HeaderBytes + p.payload_bytes;
  probe_.record_delivered(it->second.cls, p.flow_id, latency, bytes);
}

}  // namespace mvpn::traffic
