#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "qos/dscp.hpp"
#include "qos/sla.hpp"
#include "sim/rng.hpp"
#include "vpn/router.hpp"

namespace mvpn::traffic {

/// Compact structure-of-arrays traffic engine for the 10^5–10^6 flow
/// regime. One FlowSet replaces thousands of per-flow Source objects on a
/// scheduler lane (the serial scheduler, or one shard's scheduler): flow
/// state lives in parallel vectors at 62 bytes per flow, and emission is
/// driven by a per-set calendar — a 4-ary (tick, seq) min-heap of 16-byte
/// entries — that keeps exactly ONE scheduler event armed at the earliest
/// due instant and batch-emits every flow due at that tick, instead of one
/// InlineCallable closure per packet.
///
/// Byte identity with the legacy Source path is the design constraint, not
/// an aspiration: packet ids are the same pure function
/// `(flow_id << 32) | seq`, per-flow RNG streams are the same
/// `Rng::stream(topology seed, flow_id)` states advanced by the same draws,
/// and emission instants come from the same interval arithmetic
/// (`interval_for_rate`, `from_seconds` truncation included). Same-tick
/// emissions replay the legacy order because the calendar orders entries by
/// (tick, monotone insertion seq) exactly like the scheduler's
/// (time, insertion-seq) heap, and a batch re-inserts each flow only after
/// emitting it — see INTERNALS.md §14 for the full argument.
class FlowSet {
 public:
  enum class Kind : std::uint8_t { kCbr, kPoisson, kOnOff };

  /// Build-time description of one flow. Sites are pre-registered router
  /// attachments (add_site); `start` is an absolute instant, clamped to
  /// the scheduler's now at run() like Source::run does.
  struct FlowDef {
    std::uint32_t flow_id = 0;
    std::uint32_t from_site = 0;
    std::uint32_t to_site = 0;
    Kind kind = Kind::kCbr;
    double rate_bps = 1e6;  ///< CBR/mean/peak rate depending on kind
    double on_s = 0.2;      ///< mean burst length (kOnOff)
    double off_s = 0.2;     ///< mean silence length (kOnOff)
    vpn::VpnId vpn = vpn::kGlobalVpn;
    qos::Phb phb = qos::Phb::kBe;
    bool premark = false;
    std::uint8_t protocol = 17;
    std::uint16_t src_port = 10000;
    std::uint16_t dst_port = 20000;
    std::uint32_t payload_bytes = 472;
    sim::SimTime start = 0;
  };

  /// `sched` must be the scheduler that owns every attachment router's
  /// events (the shard scheduler under a parallel run); `probe` gets the
  /// sent-side SLA accounting (may be null); `master_seed` is the topology
  /// seed the legacy path derives per-flow streams from.
  FlowSet(sim::Scheduler& sched, qos::SlaProbe* probe,
          std::uint64_t master_seed);
  ~FlowSet();

  FlowSet(const FlowSet&) = delete;
  FlowSet& operator=(const FlowSet&) = delete;

  /// Register an attachment site: the router packets inject at, and the
  /// host address used as ip.src when a flow originates here and as ip.dst
  /// when a flow terminates here. Returns the site index for FlowDef.
  std::uint32_t add_site(vpn::Router& attach, ip::Ipv4Address host);

  void add_flow(const FlowDef& def);

  /// Arm the calendar: every flow is inserted at max(start, now) in
  /// declaration order (the order legacy sources schedule their first
  /// events), flows whose clamped start falls at or past `stop` are
  /// dropped (legacy emits nothing for them either), and one scheduler
  /// event is armed at the earliest tick. Also trims build-time slack:
  /// after run() the SoA vectors are shrunk to size.
  void run(sim::SimTime stop);

  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flow_id_.size();
  }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return total_sent_;
  }
  /// Packets sent by one flow (row index == add_flow order).
  [[nodiscard]] std::uint32_t packets_sent(std::uint32_t row) const noexcept {
    return sent_[row];
  }

  /// Bytes held by the per-flow SoA arrays (capacity, so growth slack
  /// counts until run() shrinks it). The ≤64 B/flow budget is on these.
  [[nodiscard]] std::size_t state_bytes() const noexcept;
  /// Bytes held by the emission calendar (16 B per pending entry).
  [[nodiscard]] std::size_t calendar_bytes() const noexcept;
  [[nodiscard]] double state_bytes_per_flow() const noexcept {
    return flow_count() == 0
               ? 0.0
               : static_cast<double>(state_bytes()) /
                     static_cast<double>(flow_count());
  }

 private:
  /// Per-kind emission parameter, 8 bytes. CBR and on/off store an exact
  /// tick interval; Poisson stores the mean gap in seconds because that is
  /// what the legacy source feeds to exponential().
  union Param {
    sim::SimTime interval;
    double mean_s;
  };

  /// Deduplicated static fields shared by many flows (topogen emits ~4
  /// flavours per pod, scenarios a handful total), so per-flow state
  /// carries a 2-byte index instead of ~30 bytes of spec.
  struct Template {
    Kind kind = Kind::kCbr;
    qos::Phb phb = qos::Phb::kBe;
    std::uint8_t dscp = 0;  ///< pre-resolved premark ? dscp_of(phb) : 0
    std::uint8_t protocol = 17;
    std::uint16_t src_port = 10000;
    std::uint16_t dst_port = 20000;
    std::uint32_t payload_bytes = 472;
    std::uint32_t wire_bytes = 0;  ///< IP + L4 headers + payload
    vpn::VpnId vpn = vpn::kGlobalVpn;
    double mean_on_s = 0.2;
    double mean_off_s = 0.2;
  };

  struct Site {
    vpn::Router* attach = nullptr;
    ip::Ipv4Address host;
  };

  /// Calendar entry: flow `flow` is due at `tick`; `seq` is the monotone
  /// insertion counter that replays the scheduler's same-tick FIFO order.
  struct CalEntry {
    sim::SimTime tick = 0;
    std::uint32_t seq = 0;
    std::uint32_t flow = 0;
  };

  [[nodiscard]] static bool cal_earlier(const CalEntry& a,
                                        const CalEntry& b) noexcept {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.seq < b.seq;
  }

  std::uint16_t intern_template(const FlowDef& def);
  std::uint32_t next_seq();

  void cal_push(CalEntry e);
  void cal_pop_min();

  /// Arm the single scheduler event at the calendar head (no-op when armed
  /// or empty).
  void arm();
  /// The batch handler: emit every flow due now, in seq order.
  void on_tick();
  void emit(std::uint32_t row, sim::SimTime now);
  [[nodiscard]] sim::SimTime next_interval(std::uint32_t row);

  sim::Scheduler& sched_;
  qos::SlaProbe* probe_;
  std::uint64_t master_seed_;
  sim::SimTime stop_at_ = 0;
  std::uint64_t total_sent_ = 0;
  bool armed_ = false;
  sim::EventId armed_event_{};

  std::vector<Site> sites_;
  std::vector<Template> templates_;

  // --- per-flow SoA state: 4+4+4+2+8+4+4+32 = 62 bytes per flow ---
  std::vector<std::uint32_t> flow_id_;
  std::vector<std::uint32_t> from_site_;
  std::vector<std::uint32_t> to_site_;
  std::vector<std::uint16_t> tmpl_;
  std::vector<Param> param_;
  std::vector<std::uint32_t> sent_;
  std::vector<std::uint32_t> burst_pkts_;  ///< on/off residue, in packets
  std::vector<sim::Rng::State> rng_;

  /// Build-only: absolute start instants, released by run().
  std::vector<sim::SimTime> start_;

  std::vector<CalEntry> heap_;  ///< implicit 4-ary min-heap
  std::uint32_t next_seq_ = 0;
};

}  // namespace mvpn::traffic
