#include "traffic/source.hpp"
#include <algorithm>

namespace mvpn::traffic {

Source::Source(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
               qos::SlaProbe* probe)
    : attach_(attach),
      spec_(spec),
      flow_id_(flow_id),
      probe_(probe),
      rng_(sim::Rng::stream(attach.topology().seed(), flow_id)) {}

void Source::run(sim::SimTime start, sim::SimTime stop) {
  stop_at_ = stop;
  // run() executes on the coordinator, so the ambient scheduler() would be
  // the serial one; address the scheduler that owns the attachment node's
  // events explicitly (its shard's under a parallel run). emit() then runs
  // on that shard's thread, where the ambient accessors resolve correctly.
  sim::Scheduler& sched = attach_.topology().scheduler_for(attach_.id());
  // Clamp: scenarios often say "start at 0" after convergence already
  // consumed some simulated time.
  sched.schedule_at(std::max(start, sched.now()), [this] { emit(); });
}

void Source::emit() {
  sim::Scheduler& sched = attach_.topology().scheduler();
  if (sched.now() >= stop_at_) return;

  net::PacketPtr p = attach_.topology().packet_factory().make();
  // Re-stamp the factory id with (flow, sequence): a pure function of the
  // flow, so traces carry the same packet identities no matter how many
  // other sources allocate concurrently — or which shard's pool the packet
  // came from. Control-plane packets keep factory ids (all < 2^32).
  p->id = (std::uint64_t{flow_id_} << 32) | (sent_ + 1);
  p->flow_id = flow_id_;
  p->created_at = sched.now();
  p->true_vpn_id = spec_.vpn;
  p->ip.src = spec_.src;
  p->ip.dst = spec_.dst;
  p->ip.protocol = spec_.protocol;
  p->ip.dscp = spec_.premark ? qos::dscp_of(spec_.phb) : 0;
  p->l4.src_port = spec_.src_port;
  p->l4.dst_port = spec_.dst_port;
  p->payload_bytes = spec_.payload_bytes;

  ++sent_;
  if (probe_ != nullptr) {
    probe_->record_sent(spec_.phb, net::kIpv4HeaderBytes +
                                       net::kL4HeaderBytes +
                                       spec_.payload_bytes);
  }
  attach_.inject(std::move(p));

  const sim::SimTime gap = next_interval();
  if (sched.now() + gap < stop_at_) {
    sched.schedule_in(gap, [this] { emit(); });
  }
}

CbrSource::CbrSource(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
                     qos::SlaProbe* probe, double rate_bps)
    : Source(attach, spec, flow_id, probe),
      interval_(interval_for_rate(rate_bps, spec.payload_bytes)) {}

PoissonSource::PoissonSource(vpn::Router& attach, FlowSpec spec,
                             std::uint32_t flow_id, qos::SlaProbe* probe,
                             double mean_rate_bps)
    : Source(attach, spec, flow_id, probe),
      mean_interval_s_(sim::to_seconds(
          interval_for_rate(mean_rate_bps, spec.payload_bytes))) {}

sim::SimTime PoissonSource::next_interval() {
  return sim::from_seconds(rng().exponential(mean_interval_s_));
}

OnOffSource::OnOffSource(vpn::Router& attach, FlowSpec spec,
                         std::uint32_t flow_id, qos::SlaProbe* probe,
                         double peak_bps, double mean_on_s, double mean_off_s)
    : Source(attach, spec, flow_id, probe),
      on_interval_(interval_for_rate(peak_bps, spec.payload_bytes)),
      mean_on_s_(mean_on_s),
      mean_off_s_(mean_off_s) {}

sim::SimTime OnOffSource::next_interval() {
  if (burst_remaining_ > 0) {
    burst_remaining_ -= on_interval_;
    return on_interval_;
  }
  // Burst over: draw the off gap and the next burst length.
  const sim::SimTime off = sim::from_seconds(rng().exponential(mean_off_s_));
  burst_remaining_ = sim::from_seconds(rng().exponential(mean_on_s_));
  return off + on_interval_;
}

}  // namespace mvpn::traffic
