#pragma once

#include <cstdint>
#include <set>

#include "qos/dscp.hpp"
#include "qos/sla.hpp"
#include "sim/scheduler.hpp"
#include "traffic/dispatcher.hpp"
#include "vpn/router.hpp"

namespace mvpn::traffic {

/// Elastic, congestion-responsive transfer: a compact TCP Reno-style
/// sender (slow start, AIMD congestion avoidance, triple-duplicate-ack
/// fast retransmit, retransmission timeout) with a cumulative-ack
/// receiver. Gives the QoS experiments workloads that *react* to the
/// network — the adaptive "data applications" the paper's converged-
/// network story assumes — instead of open-loop sources.
///
/// Both endpoints must have a FlowDispatcher attached; the flow registers
/// itself on construction. Segments ride the normal VPN data plane (CE
/// classification, label imposition, queueing all apply).
class TcpLiteFlow {
 public:
  struct Config {
    ip::Ipv4Address src;
    ip::Ipv4Address dst;
    std::uint16_t src_port = 30000;
    std::uint16_t dst_port = 80;
    vpn::VpnId vpn = vpn::kGlobalVpn;
    qos::Phb phb = qos::Phb::kBe;   ///< accounting class (+ premark)
    bool premark = false;
    std::size_t mss_payload = 1432;  ///< payload bytes per segment
    /// Transfer length in segments; 0 = unbounded (runs until stop()).
    std::uint32_t total_segments = 0;
    double initial_cwnd = 2.0;
    double initial_ssthresh = 64.0;
    sim::SimTime rto = 200 * sim::kMillisecond;
  };

  TcpLiteFlow(vpn::Router& sender, FlowDispatcher& sender_dispatch,
              vpn::Router& receiver, FlowDispatcher& receiver_dispatch,
              std::uint32_t flow_id, Config config,
              qos::SlaProbe* probe = nullptr);

  /// Begin transmitting at absolute time `at` (clamped to now).
  void start(sim::SimTime at);
  /// Stop sending new data (in-flight data may still be acked).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint32_t flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] bool complete() const noexcept {
    return config_.total_segments != 0 &&
           highest_acked_ >= config_.total_segments;
  }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept {
    return std::uint64_t{highest_acked_} * config_.mss_payload;
  }
  [[nodiscard]] double goodput_bps(double interval_s) const noexcept {
    return interval_s > 0.0
               ? static_cast<double>(bytes_acked()) * 8.0 / interval_s
               : 0.0;
  }
  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint32_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::uint32_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] sim::SimTime completed_at() const noexcept {
    return completed_at_;
  }

 private:
  void maybe_send();
  void send_segment(std::uint32_t seq, bool retransmission);
  void on_ack(std::uint32_t cum_ack);
  void on_data(const net::Packet& p);
  void send_ack();
  void arm_rto();
  void on_rto();

  vpn::Router& sender_;
  vpn::Router& receiver_;
  std::uint32_t flow_id_;
  Config config_;
  qos::SlaProbe* probe_;
  sim::Scheduler& sched_;

  // Sender state.
  bool started_ = false;
  bool stopped_ = false;
  std::uint32_t next_seq_ = 0;
  std::uint32_t highest_acked_ = 0;
  double cwnd_;
  double ssthresh_;
  std::uint32_t dup_acks_ = 0;
  std::uint32_t retransmits_ = 0;
  std::uint32_t timeouts_ = 0;
  sim::EventId rto_timer_{};
  sim::SimTime completed_at_ = 0;

  // Receiver state.
  std::uint32_t rcv_next_ = 0;          ///< next in-order seq expected
  std::set<std::uint32_t> out_of_order_;
};

}  // namespace mvpn::traffic
