#include "traffic/flowset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "traffic/source.hpp"

namespace mvpn::traffic {

FlowSet::FlowSet(sim::Scheduler& sched, qos::SlaProbe* probe,
                 std::uint64_t master_seed)
    : sched_(sched), probe_(probe), master_seed_(master_seed) {}

FlowSet::~FlowSet() {
  if (armed_) sched_.cancel(armed_event_);
}

std::uint32_t FlowSet::add_site(vpn::Router& attach, ip::Ipv4Address host) {
  sites_.push_back(Site{&attach, host});
  return static_cast<std::uint32_t>(sites_.size() - 1);
}

std::uint16_t FlowSet::intern_template(const FlowDef& def) {
  Template t;
  t.kind = def.kind;
  t.phb = def.phb;
  t.dscp = def.premark ? qos::dscp_of(def.phb) : 0;
  t.protocol = def.protocol;
  t.src_port = def.src_port;
  t.dst_port = def.dst_port;
  t.payload_bytes = def.payload_bytes;
  t.wire_bytes = static_cast<std::uint32_t>(
      net::kIpv4HeaderBytes + net::kL4HeaderBytes + def.payload_bytes);
  t.vpn = def.vpn;
  t.mean_on_s = def.on_s;
  t.mean_off_s = def.off_s;
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    const Template& o = templates_[i];
    if (o.kind == t.kind && o.phb == t.phb && o.dscp == t.dscp &&
        o.protocol == t.protocol && o.src_port == t.src_port &&
        o.dst_port == t.dst_port && o.payload_bytes == t.payload_bytes &&
        o.vpn == t.vpn && o.mean_on_s == t.mean_on_s &&
        o.mean_off_s == t.mean_off_s) {
      return static_cast<std::uint16_t>(i);
    }
  }
  assert(templates_.size() < 0xFFFF && "FlowSet: too many distinct templates");
  templates_.push_back(t);
  return static_cast<std::uint16_t>(templates_.size() - 1);
}

void FlowSet::add_flow(const FlowDef& def) {
  assert(def.from_site < sites_.size() && def.to_site < sites_.size());
  flow_id_.push_back(def.flow_id);
  from_site_.push_back(def.from_site);
  to_site_.push_back(def.to_site);
  tmpl_.push_back(intern_template(def));
  Param p;
  // Same arithmetic as the legacy constructors: CBR stores its exact tick
  // interval, Poisson the mean gap in seconds (what exponential() takes),
  // on/off the peak-rate tick interval.
  if (def.kind == Kind::kPoisson) {
    p.mean_s =
        sim::to_seconds(interval_for_rate(def.rate_bps, def.payload_bytes));
  } else {
    p.interval = interval_for_rate(def.rate_bps, def.payload_bytes);
  }
  param_.push_back(p);
  sent_.push_back(0);
  burst_pkts_.push_back(0);
  // Materialize the exact stream state the legacy Source constructor builds.
  rng_.push_back(sim::Rng::stream(master_seed_, def.flow_id).state());
  start_.push_back(def.start);
}

std::uint32_t FlowSet::next_seq() {
  if (next_seq_ == 0xFFFFFFFFu) {
    // Seq wrap (needs ~4.3e9 insertions): renumber the pending entries in
    // their total (tick, seq) order. A sorted array satisfies the heap
    // property, so it drops back in place verbatim.
    std::sort(heap_.begin(), heap_.end(), cal_earlier);
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      heap_[i].seq = static_cast<std::uint32_t>(i);
    }
    next_seq_ = static_cast<std::uint32_t>(heap_.size());
  }
  return next_seq_++;
}

void FlowSet::cal_push(CalEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!cal_earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void FlowSet::cal_pop_min() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (cal_earlier(heap_[c], heap_[best])) best = c;
    }
    if (!cal_earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void FlowSet::run(sim::SimTime stop) {
  stop_at_ = stop;
  const sim::SimTime now = sched_.now();
  // Trim build-time growth slack so state_bytes() reports the steady-state
  // footprint.
  flow_id_.shrink_to_fit();
  from_site_.shrink_to_fit();
  to_site_.shrink_to_fit();
  tmpl_.shrink_to_fit();
  param_.shrink_to_fit();
  sent_.shrink_to_fit();
  burst_pkts_.shrink_to_fit();
  rng_.shrink_to_fit();
  heap_.reserve(flow_count());
  for (std::uint32_t row = 0; row < flow_count(); ++row) {
    // Clamp like Source::run; a flow that would first fire at or past stop
    // never enters the calendar (legacy schedules the event and emit()
    // returns without output — same observable behaviour, one less event).
    const sim::SimTime at = std::max(start_[row], now);
    if (at < stop) cal_push(CalEntry{at, next_seq(), row});
  }
  start_ = std::vector<sim::SimTime>();  // build-only; release
  arm();
}

void FlowSet::arm() {
  if (armed_ || heap_.empty()) return;
  armed_ = true;
  armed_event_ = sched_.schedule_at(heap_.front().tick, [this] { on_tick(); });
}

void FlowSet::on_tick() {
  armed_ = false;
  const sim::SimTime now = sched_.now();
  // Emit every flow due at this tick in (tick, seq) order. A reschedule
  // landing back on `now` (degenerate zero gaps) joins the tail of this
  // batch with a fresh seq — exactly where the scheduler would have run it.
  while (!heap_.empty() && heap_.front().tick == now) {
    const std::uint32_t row = heap_.front().flow;
    cal_pop_min();
    emit(row, now);
  }
  arm();
}

void FlowSet::emit(std::uint32_t row, sim::SimTime now) {
  const Template& t = templates_[tmpl_[row]];
  const Site& from = sites_[from_site_[row]];
  vpn::Router& attach = *from.attach;

  net::PacketPtr p = attach.topology().packet_factory().make();
  // Identical id scheme to Source::emit: a pure function of the flow, so
  // packet identities match the legacy engine bit for bit.
  p->id = (std::uint64_t{flow_id_[row]} << 32) | (sent_[row] + 1);
  p->flow_id = flow_id_[row];
  p->created_at = now;
  p->true_vpn_id = t.vpn;
  p->ip.src = from.host;
  p->ip.dst = sites_[to_site_[row]].host;
  p->ip.protocol = t.protocol;
  p->ip.dscp = t.dscp;
  p->l4.src_port = t.src_port;
  p->l4.dst_port = t.dst_port;
  p->payload_bytes = t.payload_bytes;

  ++sent_[row];
  ++total_sent_;
  if (probe_ != nullptr) probe_->record_sent(t.phb, t.wire_bytes);
  attach.inject(std::move(p));

  const sim::SimTime gap = next_interval(row);
  if (now + gap < stop_at_) cal_push(CalEntry{now + gap, next_seq(), row});
}

sim::SimTime FlowSet::next_interval(std::uint32_t row) {
  const Template& t = templates_[tmpl_[row]];
  switch (t.kind) {
    case Kind::kCbr:
      return param_[row].interval;
    case Kind::kPoisson: {
      sim::Rng r;
      r.set_state(rng_[row]);
      const double gap_s = r.exponential(param_[row].mean_s);
      rng_[row] = r.state();
      return sim::from_seconds(gap_s);
    }
    case Kind::kOnOff: {
      const sim::SimTime on = param_[row].interval;
      if (burst_pkts_[row] > 0) {
        // Mid-burst: legacy decrements burst_remaining_ by one on-interval
        // and returns it; the packet count was fixed at draw time below.
        --burst_pkts_[row];
        return on;
      }
      // Burst over: same two draws in the same order as OnOffSource.
      sim::Rng r;
      r.set_state(rng_[row]);
      const sim::SimTime off = sim::from_seconds(r.exponential(t.mean_off_s));
      const sim::SimTime burst = sim::from_seconds(r.exponential(t.mean_on_s));
      rng_[row] = r.state();
      // Legacy keeps the burst as a tick budget decremented by on-interval
      // per packet, which yields exactly ceil(burst / on) on-gap returns
      // before the next draw. Store that count: u32 instead of i64.
      burst_pkts_[row] =
          (burst > 0 && on > 0)
              ? static_cast<std::uint32_t>((burst + on - 1) / on)
              : 0;
      return off + on;
    }
  }
  return param_[row].interval;  // unreachable
}

std::size_t FlowSet::state_bytes() const noexcept {
  return flow_id_.capacity() * sizeof(std::uint32_t) +
         from_site_.capacity() * sizeof(std::uint32_t) +
         to_site_.capacity() * sizeof(std::uint32_t) +
         tmpl_.capacity() * sizeof(std::uint16_t) +
         param_.capacity() * sizeof(Param) +
         sent_.capacity() * sizeof(std::uint32_t) +
         burst_pkts_.capacity() * sizeof(std::uint32_t) +
         rng_.capacity() * sizeof(sim::Rng::State) +
         start_.capacity() * sizeof(sim::SimTime);
}

std::size_t FlowSet::calendar_bytes() const noexcept {
  return heap_.capacity() * sizeof(CalEntry);
}

}  // namespace mvpn::traffic
