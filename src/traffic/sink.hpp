#pragma once

#include <cstdint>
#include <vector>

#include "qos/dscp.hpp"
#include "qos/sla.hpp"
#include "stats/counter.hpp"
#include "vpn/router.hpp"

namespace mvpn::traffic {

/// Receives locally-delivered packets at one or more CE routers, checks
/// VPN isolation (ground-truth `true_vpn_id` vs the VPN context that
/// delivered the packet — any mismatch is a leak, experiment E6) and feeds
/// per-class latency/loss into an SlaProbe.
///
/// Flow expectations live in a flat vector indexed by flow_id: scenario
/// flow ids are a dense counter from 1, so at 10^5–10^6 flows this is an
/// 8-byte-per-flow direct lookup instead of an unordered_map probe on
/// every delivery.
class MeasurementSink {
 public:
  MeasurementSink(qos::SlaProbe& probe, sim::Scheduler& clock)
      : probe_(probe), clock_(clock) {}

  /// Register a flow we expect to terminate at a bound router.
  void expect_flow(std::uint32_t flow_id, qos::Phb cls,
                   vpn::VpnId expected_vpn);

  /// Install this sink as `ce`'s local-delivery hook.
  void bind(vpn::Router& ce);

  /// Account one delivery. Public so a FlowDispatcher default handler can
  /// route otherwise-unclaimed packets here (mixed cbr+tcp runs) instead of
  /// silently dropping their SLA accounting.
  void on_delivery(const net::Packet& p, vpn::VpnId vpn);

  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.value();
  }
  /// Packets delivered into a VPN context other than the sender's — the
  /// isolation property requires this to be zero, always.
  [[nodiscard]] std::uint64_t leaks() const noexcept { return leaks_.value(); }
  [[nodiscard]] std::uint64_t unknown_flows() const noexcept {
    return unknown_.value();
  }
  [[nodiscard]] qos::SlaProbe& probe() noexcept { return probe_; }

 private:
  struct Expected {
    qos::Phb cls = qos::Phb::kBe;
    vpn::VpnId vpn = vpn::kGlobalVpn;
    bool known = false;
  };

  qos::SlaProbe& probe_;
  sim::Scheduler& clock_;
  std::vector<Expected> flows_;  ///< indexed by flow_id
  stats::Counter delivered_;
  stats::Counter leaks_;
  stats::Counter unknown_;
};

}  // namespace mvpn::traffic
