#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "qos/dscp.hpp"
#include "qos/sla.hpp"
#include "sim/rng.hpp"
#include "vpn/router.hpp"

namespace mvpn::traffic {

/// Emission interval for an IP-level rate: one header+payload packet every
/// `pkt_bits / rate_bps` seconds. Shared by the legacy Source subclasses and
/// the FlowSet engine so both compute byte-identical gaps (same doubles,
/// same from_seconds truncation).
[[nodiscard]] inline sim::SimTime interval_for_rate(
    double rate_bps, std::size_t payload_bytes) noexcept {
  const double pkt_bits = static_cast<double>(net::kIpv4HeaderBytes +
                                              net::kL4HeaderBytes +
                                              payload_bytes) *
                          8.0;
  return sim::from_seconds(pkt_bits / rate_bps);
}

/// Static description of one generated flow.
struct FlowSpec {
  ip::Ipv4Address src;
  ip::Ipv4Address dst;
  std::uint16_t src_port = 10000;
  std::uint16_t dst_port = 20000;
  std::uint8_t protocol = 17;
  std::size_t payload_bytes = 472;  ///< 500B IP packets by default
  vpn::VpnId vpn = vpn::kGlobalVpn;  ///< ground truth stamped on packets
  /// Class this flow is accounted under in the SLA probe, and (when
  /// `premark` is true) the DSCP written by the host itself.
  qos::Phb phb = qos::Phb::kBe;
  bool premark = false;
};

/// Base class for packet generators. Subclasses define the interarrival
/// process; the base handles scheduling, packet construction, injection at
/// the attachment router (which applies the CE edge policy) and sent-side
/// SLA accounting.
class Source {
 public:
  Source(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
         qos::SlaProbe* probe);
  virtual ~Source() = default;

  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  /// Generate packets during [start, stop).
  void run(sim::SimTime start, sim::SimTime stop);

  [[nodiscard]] std::uint32_t flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }

 protected:
  /// Time until the next packet emission.
  [[nodiscard]] virtual sim::SimTime next_interval() = 0;
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }

 private:
  void emit();

  vpn::Router& attach_;
  FlowSpec spec_;
  std::uint32_t flow_id_;
  qos::SlaProbe* probe_;
  sim::Rng rng_;
  sim::SimTime stop_at_ = 0;
  std::uint64_t sent_ = 0;
};

/// Constant-bit-rate source (the voice-like workload of the QoS
/// experiments): fixed-size packets at fixed intervals.
class CbrSource final : public Source {
 public:
  /// `rate_bps` of IP-level goodput (header+payload).
  CbrSource(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
            qos::SlaProbe* probe, double rate_bps);

 protected:
  sim::SimTime next_interval() override { return interval_; }

 private:
  sim::SimTime interval_;
};

/// Poisson arrivals at a mean rate (classic data traffic model).
class PoissonSource final : public Source {
 public:
  PoissonSource(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
                qos::SlaProbe* probe, double mean_rate_bps);

 protected:
  sim::SimTime next_interval() override;

 private:
  double mean_interval_s_;
};

/// Exponential on/off source (bursty video-like traffic): CBR at
/// `peak_bps` during on periods, silent during off periods.
class OnOffSource final : public Source {
 public:
  OnOffSource(vpn::Router& attach, FlowSpec spec, std::uint32_t flow_id,
              qos::SlaProbe* probe, double peak_bps, double mean_on_s,
              double mean_off_s);

 protected:
  sim::SimTime next_interval() override;

 private:
  sim::SimTime on_interval_;
  double mean_on_s_;
  double mean_off_s_;
  sim::SimTime burst_remaining_ = 0;
};

}  // namespace mvpn::traffic
