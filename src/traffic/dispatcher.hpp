#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "vpn/router.hpp"

namespace mvpn::traffic {

/// Demultiplexes a router's local deliveries to per-flow handlers, so
/// several endpoints (e.g. TCP-like flows and a measurement sink) can
/// share one CE. Install with attach(); unregistered flows go to the
/// default handler if set.
class FlowDispatcher {
 public:
  using Handler = std::function<void(const net::Packet&, vpn::VpnId)>;

  /// Become `router`'s local sink.
  void attach(vpn::Router& router) {
    router.set_local_sink([this](const net::Packet& p, vpn::VpnId vpn) {
      dispatch(p, vpn);
    });
  }

  void register_flow(std::uint32_t flow_id, Handler h) {
    handlers_[flow_id] = std::move(h);
  }
  void unregister_flow(std::uint32_t flow_id) { handlers_.erase(flow_id); }
  void set_default(Handler h) { default_ = std::move(h); }

 private:
  void dispatch(const net::Packet& p, vpn::VpnId vpn) {
    auto it = handlers_.find(p.flow_id);
    if (it != handlers_.end()) {
      it->second(p, vpn);
    } else if (default_) {
      default_(p, vpn);
    }
  }

  std::unordered_map<std::uint32_t, Handler> handlers_;
  Handler default_;
};

}  // namespace mvpn::traffic
