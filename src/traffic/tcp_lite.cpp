#include "traffic/tcp_lite.hpp"

#include <algorithm>

namespace mvpn::traffic {

TcpLiteFlow::TcpLiteFlow(vpn::Router& sender, FlowDispatcher& sender_dispatch,
                         vpn::Router& receiver,
                         FlowDispatcher& receiver_dispatch,
                         std::uint32_t flow_id, Config config,
                         qos::SlaProbe* probe)
    : sender_(sender),
      receiver_(receiver),
      flow_id_(flow_id),
      config_(config),
      probe_(probe),
      sched_(sender.topology().scheduler()),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {
  // ACKs come back to the sender; data arrives at the receiver.
  sender_dispatch.register_flow(flow_id_,
                                [this](const net::Packet& p, vpn::VpnId) {
                                  if (p.seg && p.seg->is_ack) {
                                    on_ack(p.seg->seq);
                                  }
                                });
  receiver_dispatch.register_flow(flow_id_,
                                  [this](const net::Packet& p, vpn::VpnId) {
                                    if (p.seg && !p.seg->is_ack) {
                                      on_data(p);
                                    }
                                  });
}

void TcpLiteFlow::start(sim::SimTime at) {
  started_ = true;
  sched_.schedule_at(std::max(at, sched_.now()), [this] {
    maybe_send();
    arm_rto();
  });
}

void TcpLiteFlow::maybe_send() {
  if (stopped_) return;
  const auto in_flight = next_seq_ - highest_acked_;
  const auto window = static_cast<std::uint32_t>(cwnd_);
  while (next_seq_ - highest_acked_ < std::max<std::uint32_t>(window, 1) &&
         (config_.total_segments == 0 ||
          next_seq_ < config_.total_segments)) {
    send_segment(next_seq_, false);
    ++next_seq_;
  }
  (void)in_flight;
}

void TcpLiteFlow::send_segment(std::uint32_t seq, bool retransmission) {
  net::PacketPtr p = sender_.topology().packet_factory().make();
  p->flow_id = flow_id_;
  p->created_at = sched_.now();
  p->true_vpn_id = config_.vpn;
  p->ip.src = config_.src;
  p->ip.dst = config_.dst;
  p->ip.protocol = 6;  // TCP-like
  p->ip.dscp = config_.premark ? qos::dscp_of(config_.phb) : 0;
  p->l4.src_port = config_.src_port;
  p->l4.dst_port = config_.dst_port;
  p->payload_bytes = config_.mss_payload;
  p->seg = net::SegMeta{seq, false};
  if (retransmission) ++retransmits_;
  if (probe_ != nullptr && !retransmission) {
    probe_->record_sent(config_.phb, net::kIpv4HeaderBytes +
                                         net::kL4HeaderBytes +
                                         config_.mss_payload);
  }
  sender_.inject(std::move(p));
}

void TcpLiteFlow::arm_rto() {
  sched_.cancel(rto_timer_);
  if (stopped_ || complete()) return;
  rto_timer_ = sched_.schedule_in(config_.rto, [this] { on_rto(); });
}

void TcpLiteFlow::on_rto() {
  if (stopped_ || complete()) return;
  if (next_seq_ == highest_acked_) {
    // Nothing in flight (idle unbounded flow): just re-arm.
    arm_rto();
    return;
  }
  // Timeout: multiplicative decrease to a window of 1, retransmit the
  // first unacked segment (go-back-N-ish on the cheap).
  ++timeouts_;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  next_seq_ = highest_acked_;  // resend from the hole
  maybe_send();
  arm_rto();
}

void TcpLiteFlow::on_ack(std::uint32_t cum_ack) {
  if (cum_ack > highest_acked_) {
    const std::uint32_t newly = cum_ack - highest_acked_;
    highest_acked_ = cum_ack;
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly);  // slow start
    } else {
      cwnd_ += static_cast<double>(newly) / cwnd_;  // congestion avoidance
    }
    if (complete() && completed_at_ == 0) {
      completed_at_ = sched_.now();
      sched_.cancel(rto_timer_);
      return;
    }
    arm_rto();
    maybe_send();
    return;
  }
  // Duplicate cumulative ack → a hole at `cum_ack`.
  if (++dup_acks_ == 3) {
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_;
    send_segment(cum_ack, true);  // fast retransmit
    arm_rto();
  }
}

void TcpLiteFlow::on_data(const net::Packet& p) {
  const std::uint32_t seq = p.seg->seq;
  if (seq == rcv_next_) {
    ++rcv_next_;
    // Drain any buffered in-order continuation.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == rcv_next_) {
      ++rcv_next_;
      it = out_of_order_.erase(it);
    }
    if (probe_ != nullptr) {
      probe_->record_delivered(config_.phb, flow_id_,
                               sched_.now() - p.created_at,
                               net::kIpv4HeaderBytes + net::kL4HeaderBytes +
                                   p.payload_bytes);
    }
  } else if (seq > rcv_next_) {
    out_of_order_.insert(seq);
  }
  send_ack();
}

void TcpLiteFlow::send_ack() {
  net::PacketPtr ack = receiver_.topology().packet_factory().make();
  ack->flow_id = flow_id_;
  ack->created_at = sched_.now();
  ack->true_vpn_id = config_.vpn;
  ack->ip.src = config_.dst;
  ack->ip.dst = config_.src;
  ack->ip.protocol = 6;
  ack->l4.src_port = config_.dst_port;
  ack->l4.dst_port = config_.src_port;
  ack->payload_bytes = 0;
  ack->seg = net::SegMeta{rcv_next_, true};
  receiver_.inject(std::move(ack));
}

}  // namespace mvpn::traffic
