#pragma once

#include <cstdint>
#include <string>

namespace mvpn::stats {

class Counter;

/// Registration interface for named counters. The observability layer
/// (obs::MetricsRegistry) implements it; stats stays dependency-free.
/// Installing a hook is strictly opt-in — with none installed (the
/// default), counter construction does nothing extra and the increment
/// path is identical either way.
class CounterHook {
 public:
  virtual void counter_created(Counter& c) = 0;
  virtual void counter_destroyed(Counter& c) = 0;

 protected:
  ~CounterHook() = default;
};

namespace detail {
inline CounterHook*& counter_hook_slot() noexcept {
  static CounterHook* hook = nullptr;
  return hook;
}
}  // namespace detail

/// Install (or clear, with nullptr) the process-wide counter hook. Named
/// counters constructed while a hook is installed register with it and
/// unregister on destruction.
inline void set_counter_hook(CounterHook* hook) noexcept {
  detail::counter_hook_slot() = hook;
}
[[nodiscard]] inline CounterHook* counter_hook() noexcept {
  return detail::counter_hook_slot();
}

/// Monotonic event counter. Used throughout the simulator for packet,
/// byte, drop and protocol-message accounting.
///
/// Counters constructed *with a name* self-register with the installed
/// CounterHook (if any) so the metrics registry can enumerate them; the
/// hot path (add) never touches the hook. Copies and moves never carry a
/// registration — the original stays registered until it is destroyed,
/// so hook bookkeeping is strictly per-object.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string name) : name_(std::move(name)) {
    if (!name_.empty()) {
      hook_ = counter_hook();
      if (hook_ != nullptr) hook_->counter_created(*this);
    }
  }
  ~Counter() {
    if (hook_ != nullptr) hook_->counter_destroyed(*this);
  }

  Counter(const Counter& other) : name_(other.name_), value_(other.value_) {}
  Counter& operator=(const Counter& other) {
    name_ = other.name_;
    value_ = other.value_;
    return *this;  // registration (hook_) stays per-object
  }
  Counter(Counter&& other) noexcept
      : name_(std::move(other.name_)), value_(other.value_) {}
  Counter& operator=(Counter&& other) noexcept {
    name_ = std::move(other.name_);
    value_ = other.value_;
    return *this;
  }

  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void reset() noexcept { value_ = 0; }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
  CounterHook* hook_ = nullptr;  ///< set only when registered at creation
};

/// Pair of packet/byte counters — the ubiquitous unit of data-plane
/// accounting (per queue, per interface, per VRF, ...).
struct PacketByteCounter {
  Counter packets;
  Counter bytes;

  void record(std::size_t byte_count) noexcept {
    packets.add(1);
    bytes.add(byte_count);
  }
  void reset() noexcept {
    packets.reset();
    bytes.reset();
  }
};

}  // namespace mvpn::stats
