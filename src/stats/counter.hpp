#pragma once

#include <cstdint>
#include <string>

namespace mvpn::stats {

/// Monotonic event counter. Used throughout the simulator for packet,
/// byte, drop and protocol-message accounting.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void reset() noexcept { value_ = 0; }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

/// Pair of packet/byte counters — the ubiquitous unit of data-plane
/// accounting (per queue, per interface, per VRF, ...).
struct PacketByteCounter {
  Counter packets;
  Counter bytes;

  void record(std::size_t byte_count) noexcept {
    packets.add(1);
    bytes.add(byte_count);
  }
  void reset() noexcept {
    packets.reset();
    bytes.reset();
  }
};

}  // namespace mvpn::stats
