#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/log_histogram.hpp"
#include "stats/running_stats.hpp"

namespace mvpn::stats {

/// Exact-percentile sample store.
///
/// Keeps every sample; percentile queries sort lazily. Appropriate where an
/// exact reference is wanted (tests, one-shot reports); long-lived
/// accounting at millions of samples should use LogHistogram instead. A
/// bounded-memory sketch mirror (`approx()`) serves repeated percentile
/// reads — e.g. periodic metrics snapshots — without re-sorting.
/// `percentile(p)` uses nearest-rank on the sorted data.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }

  /// Nearest-rank percentile, p in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const RunningStats& summary() const noexcept { return stats_; }

  /// Bounded-memory mirror of the sample stream. Percentile reads on the
  /// sketch never touch (or sort) the sample vector, so periodic snapshot
  /// paths (MetricsRegistry) stay flat-cost in the sample count.
  [[nodiscard]] const LogHistogram& approx() const noexcept { return sketch_; }

  /// How many lazy sorts percentile() has performed — lets tests assert
  /// that snapshot reads go through the sketch instead of re-sorting.
  [[nodiscard]] std::uint64_t sort_count() const noexcept {
    return sort_count_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  mutable std::uint64_t sort_count_ = 0;
  RunningStats stats_;
  LogHistogram sketch_;
};

/// Fixed-width binned histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow bins. Used for latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Percentile estimated by linear interpolation within the owning bin.
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mvpn::stats
