#include "stats/log_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mvpn::stats {

LogHistogram::LogHistogram(double min_value, double max_value,
                           unsigned sub_bucket_bits)
    : min_value_(min_value),
      max_value_(max_value),
      sub_bucket_bits_(sub_bucket_bits),
      sub_buckets_(1u << sub_bucket_bits) {
  if (!(min_value > 0.0) || !(max_value > min_value) || sub_bucket_bits > 16) {
    throw std::invalid_argument(
        "LogHistogram: require 0 < min < max and sub_bucket_bits <= 16");
  }
  octaves_ = static_cast<std::uint32_t>(
      std::ceil(std::log2(max_value / min_value)));
  if (octaves_ == 0) octaves_ = 1;
  counts_.assign(static_cast<std::size_t>(octaves_) * sub_buckets_, 0);
}

std::size_t LogHistogram::index_of(double x) const noexcept {
  // x = min_value * mant * 2^exp with mant in [0.5, 1), so the value sits in
  // octave exp-1 (covering [min*2^(exp-1), min*2^exp)) at linear sub-bucket
  // floor((2*mant - 1) * sub_buckets).
  const double r = x / min_value_;
  int exp = 0;
  const double mant = std::frexp(r, &exp);
  const int octave = exp - 1;
  if (octave < 0 || static_cast<std::uint32_t>(octave) >= octaves_) {
    return std::numeric_limits<std::size_t>::max();
  }
  auto sub = static_cast<std::uint32_t>(
      (mant * 2.0 - 1.0) * static_cast<double>(sub_buckets_));
  if (sub >= sub_buckets_) sub = sub_buckets_ - 1;  // fp edge at mant -> 1
  return static_cast<std::size_t>(octave) * sub_buckets_ + sub;
}

double LogHistogram::bucket_lo(std::size_t idx) const noexcept {
  const auto octave = static_cast<std::uint32_t>(idx / sub_buckets_);
  const auto sub = static_cast<std::uint32_t>(idx % sub_buckets_);
  const double base = min_value_ * std::ldexp(1.0, static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) /
                           static_cast<double>(sub_buckets_));
}

double LogHistogram::bucket_hi(std::size_t idx) const noexcept {
  const auto octave = static_cast<std::uint32_t>(idx / sub_buckets_);
  const auto sub = static_cast<std::uint32_t>(idx % sub_buckets_);
  const double base = min_value_ * std::ldexp(1.0, static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub + 1) /
                           static_cast<double>(sub_buckets_));
}

void LogHistogram::add(double x) {
  stats_.add(x);
  if (!(x >= min_value_)) {  // also catches NaN
    ++underflow_;
    return;
  }
  const std::size_t idx = index_of(x);
  if (idx == std::numeric_limits<std::size_t>::max()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!same_geometry(other)) {
    throw std::invalid_argument("LogHistogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  stats_.merge(other.stats_);
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  stats_.reset();
}

double LogHistogram::percentile(double p) const {
  const std::uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-indexed — same convention as SampleSet.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = underflow_;
  if (rank <= cum) return stats_.min();  // below-range samples: best bound
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (rank <= cum) {
      const double mid = 0.5 * (bucket_lo(i) + bucket_hi(i));
      return std::clamp(mid, stats_.min(), stats_.max());
    }
  }
  return stats_.max();  // rank lands in the overflow bin
}

}  // namespace mvpn::stats
