#include "stats/time_series.hpp"

#include <algorithm>
#include <sstream>

namespace mvpn::stats {

void TimeSeries::add(double time_s, double value) {
  points_.push_back(Point{time_s, value});
}

double TimeSeries::max_value() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.v);
  return m;
}

double TimeSeries::mean_value() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : points_) s += p.v;
  return s / static_cast<double>(points_.size());
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  os << "time," << (name_.empty() ? "value" : name_) << "\n";
  for (const auto& p : points_) os << p.t << "," << p.v << "\n";
  return os.str();
}

RateMeter::RateMeter(double window_s, std::string name)
    : window_s_(window_s), series_(std::move(name)) {}

void RateMeter::record(double t, double amount) {
  if (!started_) {
    started_ = true;
    window_start_ = 0.0;
  }
  while (t >= window_start_ + window_s_) {
    series_.add(window_start_ + window_s_, accum_ / window_s_);
    window_start_ += window_s_;
    accum_ = 0.0;
  }
  accum_ += amount;
}

void RateMeter::flush() {
  if (!started_) return;
  series_.add(window_start_ + window_s_, accum_ / window_s_);
  accum_ = 0.0;
}

}  // namespace mvpn::stats
