#include "stats/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mvpn::stats {

Table::Table(std::initializer_list<std::string> headers)
    : headers_(headers) {}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != header count");
  }
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  hline();
  emit(headers_);
  hline();
  for (const auto& row : rows_) {
    if (row.separator) {
      hline();
    } else {
      emit(row.cells);
    }
  }
  hline();
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

}  // namespace mvpn::stats
