#pragma once

#include <cstdint>

namespace mvpn::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) memory. Used for latency and
/// jitter accounting where we do not need exact percentiles.
class RunningStats {
 public:
  /// Fold one sample into the accumulator.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel-reduction friendly).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mvpn::stats
