#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace mvpn::stats {

/// ASCII table renderer used by every benchmark harness so paper-claim vs
/// measured rows come out aligned and diffable.
///
///   Table t{"N sites", "overlay VCs", "MPLS LSPs"};
///   t.add_row({"10", "45", "20"});
///   std::cout << t.render();
class Table {
 public:
  Table(std::initializer_list<std::string> headers);
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);
  /// Append a horizontal separator row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  /// Convenience numeric formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace mvpn::stats
