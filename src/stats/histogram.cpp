#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvpn::stats {

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stats_.add(x);
  sketch_.add(x);
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
    ++sort_count_;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  const auto n = samples_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace mvpn::stats
