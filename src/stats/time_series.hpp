#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mvpn::stats {

/// A (time, value) series with CSV export; `time` is in seconds.
/// Used by benches for utilization/throughput-over-time traces.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double time_s, double value);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] double time_at(std::size_t i) const { return points_.at(i).t; }
  [[nodiscard]] double value_at(std::size_t i) const { return points_.at(i).v; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean_value() const;

  /// Render "time,value" lines (with a header) for offline plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Point {
    double t;
    double v;
  };
  std::string name_;
  std::vector<Point> points_;
};

/// Windowed rate meter: feed event sizes (e.g. bytes) with timestamps and
/// it emits a per-window rate series (e.g. bits/s per 100 ms window).
class RateMeter {
 public:
  RateMeter(double window_s, std::string name);

  /// Record `amount` units at time `t` (seconds, nondecreasing).
  void record(double t, double amount);
  /// Close the current window (call once at end of run).
  void flush();

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] double window_seconds() const noexcept { return window_s_; }

 private:
  double window_s_;
  double window_start_ = 0.0;
  double accum_ = 0.0;
  bool started_ = false;
  TimeSeries series_;
};

}  // namespace mvpn::stats
