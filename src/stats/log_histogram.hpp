#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/running_stats.hpp"

namespace mvpn::stats {

/// HDR-style log-linear quantile sketch with bounded memory.
///
/// Values are bucketed into exponential octaves, each split into
/// `sub_buckets` linear sub-buckets, so the relative width of every bucket
/// is at most 1/sub_buckets and a percentile read off the bucket midpoint is
/// within 1/(2*sub_buckets) relative error of the exact nearest-rank sample
/// (0.78% at the default 64 sub-buckets). Memory is O(octaves * sub_buckets),
/// independent of how many samples are folded in — unlike SampleSet, which
/// keeps every sample and is untenable at millions of packets.
///
/// The read API mirrors SampleSet (count/empty/mean/stddev/min/max/
/// percentile/median/summary) so the two are drop-in interchangeable in
/// report plumbing. mean/stddev/min/max are exact (kept in an embedded
/// RunningStats); only percentile() is approximate. Sketches with identical
/// geometry merge losslessly, which makes per-shard accounting reducible.
class LogHistogram {
 public:
  /// Default range covers 1 ns .. 10,000 s expressed in seconds — wide
  /// enough for every latency-like quantity in the simulator.
  static constexpr double kDefaultMin = 1e-9;
  static constexpr double kDefaultMax = 1e4;
  static constexpr unsigned kDefaultSubBucketBits = 6;  // 64 sub-buckets

  explicit LogHistogram(double min_value = kDefaultMin,
                        double max_value = kDefaultMax,
                        unsigned sub_bucket_bits = kDefaultSubBucketBits);

  /// Fold one sample. Values below min_value land in the underflow bin,
  /// values at/above max_value in the overflow bin; both still contribute
  /// their exact value to mean/min/max via the summary accumulator.
  void add(double x);

  /// Fold another sketch into this one. Throws std::invalid_argument when
  /// the bucket geometries differ (merging would silently misbin).
  void merge(const LogHistogram& other);

  void reset();

  [[nodiscard]] std::uint64_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] bool empty() const noexcept { return stats_.count() == 0; }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }

  /// Nearest-rank percentile, p in [0, 100]. Returns the midpoint of the
  /// bucket holding the rank-th sample, clamped to the observed [min, max]
  /// so p=0 and p=100 are exact. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const RunningStats& summary() const noexcept { return stats_; }

  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  /// Footprint of the bucket array — constant in the number of samples.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return counts_.size() * sizeof(std::uint64_t);
  }
  /// Guaranteed relative-error bound for in-range percentile queries.
  [[nodiscard]] double relative_error_bound() const noexcept {
    return 0.5 / static_cast<double>(sub_buckets_);
  }

  [[nodiscard]] bool same_geometry(const LogHistogram& other) const noexcept {
    return min_value_ == other.min_value_ &&
           octaves_ == other.octaves_ && sub_buckets_ == other.sub_buckets_;
  }

 private:
  /// Bucket index for an in-range value, or SIZE_MAX for out-of-range.
  [[nodiscard]] std::size_t index_of(double x) const noexcept;
  [[nodiscard]] double bucket_lo(std::size_t idx) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t idx) const noexcept;

  double min_value_;
  double max_value_;
  unsigned sub_bucket_bits_;
  std::uint32_t sub_buckets_;
  std::uint32_t octaves_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  RunningStats stats_;
};

}  // namespace mvpn::stats
