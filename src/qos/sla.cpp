#include "qos/sla.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mvpn::qos {

SlaProbe::SlaProbe(std::string name) : name_(std::move(name)) {}

void SlaProbe::record_sent(Phb cls, std::size_t bytes) {
  ClassReport& r = by_class_[cls];
  ++r.sent_packets;
  r.sent_bytes += bytes;
}

void SlaProbe::record_delivered(Phb cls, std::uint32_t flow_id,
                                sim::SimTime latency, std::size_t bytes) {
  ClassReport& r = by_class_[cls];
  ++r.delivered_packets;
  r.delivered_bytes += bytes;
  r.latency_s.add(sim::to_seconds(latency));

  auto [it, inserted] = jitter_by_flow_.try_emplace(flow_id);
  FlowJitter& f = it->second;
  if (!inserted) {
    const sim::SimTime delta = latency > f.last_latency
                                   ? latency - f.last_latency
                                   : f.last_latency - latency;
    const double d_s = sim::to_seconds(delta);
    f.jitter.add(d_s);
    f.j_s += (d_s - f.j_s) / 16.0;  // RFC 3550 §6.4.1
    f.has_delta = true;
  }
  f.last_latency = latency;
  f.cls = cls;
}

void SlaProbe::merge_from(const SlaProbe& other) {
  for (const auto& [cls, or_] : other.by_class_) {
    ClassReport& r = by_class_[cls];
    r.sent_packets += or_.sent_packets;
    r.sent_bytes += or_.sent_bytes;
    r.delivered_packets += or_.delivered_packets;
    r.delivered_bytes += or_.delivered_bytes;
    r.latency_s.merge(or_.latency_s);
  }
  for (const auto& [flow_id, f] : other.jitter_by_flow_) {
    [[maybe_unused]] const auto [it, inserted] =
        jitter_by_flow_.insert({flow_id, f});
    assert(inserted &&
           "SlaProbe::merge_from: flow delivered through two probes — the "
           "partition split one flow's sink across shards");
  }
}

// Both jitter aggregates fold floating-point per-flow state, so the fold
// happens in ascending flow-id order — never hash-map iteration order,
// which differs between a serially filled probe and one merged from
// per-shard probes.

double SlaProbe::rfc3550_jitter_s(Phb cls) const {
  std::vector<std::pair<std::uint32_t, double>> flows;
  for (const auto& [id, f] : jitter_by_flow_) {
    if (f.cls == cls && f.has_delta) flows.emplace_back(id, f.j_s);
  }
  std::sort(flows.begin(), flows.end());
  double sum = 0.0;
  for (const auto& [id, j] : flows) sum += j;
  return flows.empty() ? 0.0 : sum / static_cast<double>(flows.size());
}

stats::RunningStats SlaProbe::jitter_stats(Phb cls) const {
  std::vector<std::pair<std::uint32_t, const FlowJitter*>> flows;
  for (const auto& [id, f] : jitter_by_flow_) {
    if (f.cls == cls && f.has_delta) flows.emplace_back(id, &f);
  }
  std::sort(flows.begin(), flows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  stats::RunningStats out;
  for (const auto& [id, f] : flows) out.merge(f->jitter);
  return out;
}

const SlaProbe::ClassReport& SlaProbe::report(Phb cls) const {
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) {
    throw std::out_of_range("SlaProbe: no data for class " + to_string(cls));
  }
  return it->second;
}

bool SlaProbe::has_class(Phb cls) const {
  return by_class_.find(cls) != by_class_.end();
}

stats::Table SlaProbe::to_table(double interval_s) const {
  stats::Table t{"class",      "sent",      "delivered", "loss %",
                 "mean ms",    "p50 ms",    "p99 ms",    "jitter ms",
                 "j3550 ms",   "goodput Mb/s"};
  for (const auto& [cls, r] : by_class_) {
    t.add_row({to_string(cls), stats::Table::num(r.sent_packets),
               stats::Table::num(r.delivered_packets),
               stats::Table::num(100.0 * r.loss_fraction(), 2),
               stats::Table::num(r.latency_s.mean() * 1e3, 3),
               stats::Table::num(r.latency_s.percentile(50) * 1e3, 3),
               stats::Table::num(r.latency_s.percentile(99) * 1e3, 3),
               stats::Table::num(jitter_stats(cls).mean() * 1e3, 3),
               stats::Table::num(rfc3550_jitter_s(cls) * 1e3, 3),
               stats::Table::num(r.goodput_bps(interval_s) / 1e6, 3)});
  }
  return t;
}

std::string SlaProbe::to_csv(double interval_s) const {
  std::string out =
      "class,sent,delivered,loss_pct,mean_ms,p50_ms,p99_ms,jitter_ms,"
      "jitter_rfc3550_ms,goodput_mbps\n";
  for (const auto& [cls, r] : by_class_) {
    out += to_string(cls) + ',' + std::to_string(r.sent_packets) + ',' +
           std::to_string(r.delivered_packets) + ',' +
           stats::Table::num(100.0 * r.loss_fraction(), 4) + ',' +
           stats::Table::num(r.latency_s.mean() * 1e3, 4) + ',' +
           stats::Table::num(r.latency_s.percentile(50) * 1e3, 4) + ',' +
           stats::Table::num(r.latency_s.percentile(99) * 1e3, 4) + ',' +
           stats::Table::num(jitter_stats(cls).mean() * 1e3, 4) + ',' +
           stats::Table::num(rfc3550_jitter_s(cls) * 1e3, 4) + ',' +
           stats::Table::num(r.goodput_bps(interval_s) / 1e6, 4) + '\n';
  }
  return out;
}

}  // namespace mvpn::qos
