#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mvpn::qos {

/// Classic token bucket: `rate` bytes/s sustained, `burst` bytes depth.
/// Time is supplied by the caller (simulation clock), so the bucket is a
/// pure function of its inputs — trivially testable.
class TokenBucket {
 public:
  /// rate_bytes_per_s > 0; burst_bytes >= largest packet you expect.
  TokenBucket(double rate_bytes_per_s, double burst_bytes);

  /// True (and consumes tokens) when `bytes` conform at time `now`.
  bool consume(sim::SimTime now, std::size_t bytes);

  /// Tokens available at `now` without consuming.
  [[nodiscard]] double available(sim::SimTime now) const;

  [[nodiscard]] double rate_bytes_per_s() const noexcept { return rate_; }
  [[nodiscard]] double burst_bytes() const noexcept { return burst_; }

  /// Refill to full (e.g. when (re)starting an interval).
  void reset(sim::SimTime now);

 private:
  void refill(sim::SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_refill_ = 0;
};

/// Traffic shaper: where the policer *drops* out-of-contract packets, the
/// shaper *delays* them until they conform (leaky-bucket smoothing at the
/// CPE). Modeled as a serialized resource: each packet reserves the next
/// transmission slot at the shaped rate; the returned delay tells the
/// caller when to release the packet.
class Shaper {
 public:
  /// rate in bytes/s; burst in bytes (how much may pass unshaped).
  Shaper(double rate_bytes_per_s, double burst_bytes);

  /// Reserve a slot for `bytes` at time `now`; returns how long the
  /// packet must be held before transmission (0 = conformant now).
  [[nodiscard]] sim::SimTime reserve(sim::SimTime now, std::size_t bytes);

  [[nodiscard]] double rate_bytes_per_s() const noexcept { return rate_; }

 private:
  double rate_;
  double burst_;
  sim::SimTime bucket_empty_at_ = 0;  ///< virtual time the backlog clears
};

}  // namespace mvpn::qos
