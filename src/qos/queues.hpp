#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/queue_disc.hpp"
#include "qos/dscp.hpp"
#include "qos/token_bucket.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "stats/counter.hpp"

namespace mvpn::qos {

/// Maps a packet to a scheduling band. Band 0 is the highest priority by
/// convention of PriorityQueueDisc.
using BandSelector = std::function<unsigned(const net::Packet&)>;

/// Band selector that reads the packet's visible 3-bit class (MPLS EXP when
/// labeled, DSCP-derived class otherwise) through `exp_to_band`.
[[nodiscard]] BandSelector class_band_selector(
    std::array<std::uint8_t, 8> exp_to_band);

/// Convenience 3-band mapping used throughout the experiments:
/// band 0 = EF + control (EXP 5-7), band 1 = AF (EXP 1-4), band 2 = BE.
[[nodiscard]] BandSelector ef_af_be_selector();

/// Common machinery for multi-band queue disciplines: per-band FIFOs with
/// packet-count caps and per-band drop/enqueue accounting.
class MultiBandQueue : public net::QueueDisc {
 public:
  MultiBandQueue(unsigned bands, std::size_t per_band_capacity,
                 BandSelector selector);

  bool enqueue(net::PacketPtr p) override;

  [[nodiscard]] std::size_t packet_count() const noexcept final;
  [[nodiscard]] std::size_t byte_count() const noexcept final;
  [[nodiscard]] unsigned band_count() const noexcept {
    return static_cast<unsigned>(bands_.size());
  }
  [[nodiscard]] const stats::PacketByteCounter& band_drops(unsigned b) const {
    return bands_.at(b).drops;
  }
  [[nodiscard]] std::size_t band_depth(unsigned b) const {
    return bands_.at(b).fifo.size();
  }

 protected:
  struct Band {
    std::deque<net::PacketPtr> fifo;
    std::size_t capacity = 0;
    std::size_t bytes = 0;
    stats::PacketByteCounter drops;
  };

  /// Hook: called after a packet was accepted into `band` (schedulers
  /// update their tags here).
  virtual void on_enqueued(unsigned band, const net::Packet& p);

  net::PacketPtr pop_band(unsigned b);
  [[nodiscard]] std::vector<Band>& bands() noexcept { return bands_; }
  [[nodiscard]] const std::vector<Band>& bands() const noexcept {
    return bands_;
  }

 private:
  std::vector<Band> bands_;
  BandSelector selector_;
};

/// Strict-priority scheduler: always serves the lowest-numbered non-empty
/// band. Gives EF the hardest latency bound; can starve lower bands (the
/// ablation in the QoS bench shows exactly that).
class PriorityQueueDisc final : public MultiBandQueue {
 public:
  PriorityQueueDisc(unsigned bands, std::size_t per_band_capacity,
                    BandSelector selector);
  net::PacketPtr dequeue() override;

  static net::QueueDiscFactory factory(unsigned bands,
                                       std::size_t per_band_capacity,
                                       BandSelector selector);
};

/// Deficit-round-robin (byte-fair WRR): each band gets `weight x quantum`
/// bytes of credit per round.
class DrrQueueDisc final : public MultiBandQueue {
 public:
  DrrQueueDisc(std::vector<std::uint32_t> weights,
               std::size_t per_band_capacity, BandSelector selector,
               std::size_t quantum_bytes = 1500);
  net::PacketPtr dequeue() override;

  static net::QueueDiscFactory factory(std::vector<std::uint32_t> weights,
                                       std::size_t per_band_capacity,
                                       BandSelector selector,
                                       std::size_t quantum_bytes = 1500);

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<double> deficit_;
  std::size_t quantum_;
  unsigned round_ptr_ = 0;
  bool fresh_visit_ = true;
};

/// Weighted fair queueing via self-clocked fair queueing (SCFQ): each
/// arriving packet gets a virtual finish tag max(V, band's last tag) +
/// bytes/weight; service order is by minimum tag. Approximates GPS closely
/// enough for per-class bandwidth shares without a fluid reference clock.
class WfqQueueDisc final : public MultiBandQueue {
 public:
  WfqQueueDisc(std::vector<double> weights, std::size_t per_band_capacity,
               BandSelector selector);
  net::PacketPtr dequeue() override;

  static net::QueueDiscFactory factory(std::vector<double> weights,
                                       std::size_t per_band_capacity,
                                       BandSelector selector);

 protected:
  void on_enqueued(unsigned band, const net::Packet& p) override;

 private:
  std::vector<double> weights_;
  std::vector<std::deque<double>> tags_;       // parallel to band FIFOs
  std::vector<double> band_last_finish_;
  double virtual_time_ = 0.0;
};

/// Low-latency queueing (LLQ): strict priority for band 0 (EF), with the
/// EF band policed by a token bucket so a misbehaving priority class
/// cannot starve the rest, and WFQ among the remaining bands. This is the
/// scheduler that carrier deployments of the paper's architecture
/// converged on (CBWFQ + priority queue).
class LlqQueueDisc final : public MultiBandQueue {
 public:
  /// `weights[0]` is ignored for scheduling (band 0 is strict) but its
  /// entry keeps band indexing uniform. `ef_rate_bytes_s`/`ef_burst` bound
  /// the priority band; EF arrivals beyond the contract are dropped.
  LlqQueueDisc(std::vector<double> weights, std::size_t per_band_capacity,
               BandSelector selector, double ef_rate_bytes_s,
               double ef_burst_bytes, const sim::Scheduler& clock);

  bool enqueue(net::PacketPtr p) override;
  net::PacketPtr dequeue() override;

  [[nodiscard]] const stats::Counter& ef_policed() const noexcept {
    return ef_policed_;
  }

  static net::QueueDiscFactory factory(std::vector<double> weights,
                                       std::size_t per_band_capacity,
                                       BandSelector selector,
                                       double ef_rate_bytes_s,
                                       double ef_burst_bytes,
                                       const sim::Scheduler& clock);

 protected:
  void on_enqueued(unsigned band, const net::Packet& p) override;

 private:
  BandSelector selector_copy_;
  std::vector<double> weights_;
  std::vector<std::deque<double>> tags_;
  std::vector<double> band_last_finish_;
  double virtual_time_ = 0.0;
  TokenBucket ef_bucket_;
  const sim::Scheduler& clock_;
  stats::Counter ef_policed_;
};

/// Random Early Detection (Floyd/Jacobson '93), gentle variant. Single
/// FIFO; drop probability ramps from 0 at `min_th` to `max_p` at `max_th`
/// and to 1 at `2*max_th`. Needs a clock for the idle-period adjustment.
struct RedParams {
  std::size_t capacity_packets = 200;
  double min_th = 30;            ///< packets
  double max_th = 90;            ///< packets
  double max_p = 0.1;
  double ewma_weight = 0.002;
  double mean_pkt_bytes = 500;   ///< for idle-time averaging
  double bandwidth_bps = 10e6;   ///< for idle-time averaging
};

/// Time source for queue disciplines that need a clock but must not bind
/// to one particular Scheduler object. Under a sharded run "the" scheduler
/// depends on which shard's thread is asking — a topology-aware factory
/// passes `[&topo] { return topo.scheduler().now(); }` and the queue reads
/// the right clock from whichever thread services it.
using ClockFn = std::function<sim::SimTime()>;

class RedQueueDisc : public net::QueueDisc {
 public:
  RedQueueDisc(const RedParams& params, ClockFn clock, sim::Rng rng);
  /// Convenience: bind to a specific scheduler (serial code and tests).
  RedQueueDisc(const RedParams& params, const sim::Scheduler& clock,
               sim::Rng rng);

  bool enqueue(net::PacketPtr p) override;
  net::PacketPtr dequeue() override;
  [[nodiscard]] std::size_t packet_count() const noexcept override {
    return fifo_.size();
  }
  [[nodiscard]] std::size_t byte_count() const noexcept override {
    return bytes_;
  }
  [[nodiscard]] double average_queue() const noexcept { return avg_; }
  [[nodiscard]] const stats::Counter& early_drops() const noexcept {
    return early_drops_;
  }
  [[nodiscard]] const stats::Counter& forced_drops() const noexcept {
    return forced_drops_;
  }

 protected:
  /// Per-packet RED profile; WRED overrides this to pick thresholds by
  /// drop precedence.
  [[nodiscard]] virtual const RedParams& profile_for(const net::Packet& p) const;

  /// RED admission verdict: kNone admits; kRedEarly / kRedForced name the
  /// drop (and feed the trace event's reason field).
  obs::DropReason red_admit(const net::Packet& p);

  RedParams params_;

 private:
  void update_average();

  ClockFn clock_;
  sim::Rng rng_;
  std::deque<net::PacketPtr> fifo_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;
  std::uint64_t count_since_drop_ = 0;
  sim::SimTime idle_since_ = 0;
  bool idle_ = true;
  stats::Counter early_drops_;
  stats::Counter forced_drops_;
};

/// Weighted RED: three RED profiles selected by the packet's AF drop
/// precedence (green/yellow/red marking from the edge meter), sharing one
/// FIFO and one average — in-profile traffic survives congestion that
/// kills out-of-profile traffic.
class WredQueueDisc final : public RedQueueDisc {
 public:
  WredQueueDisc(const RedParams& low_prec, const RedParams& mid_prec,
                const RedParams& high_prec, ClockFn clock, sim::Rng rng);
  WredQueueDisc(const RedParams& low_prec, const RedParams& mid_prec,
                const RedParams& high_prec, const sim::Scheduler& clock,
                sim::Rng rng);

 protected:
  [[nodiscard]] const RedParams& profile_for(
      const net::Packet& p) const override;

 private:
  RedParams mid_;
  RedParams high_;
};

}  // namespace mvpn::qos
