#include "qos/dscp.hpp"

namespace mvpn::qos {

std::uint8_t dscp_of(Phb phb) noexcept {
  switch (phb) {
    case Phb::kBe: return 0;
    case Phb::kAf11: return 10;
    case Phb::kAf12: return 12;
    case Phb::kAf13: return 14;
    case Phb::kAf21: return 18;
    case Phb::kAf22: return 20;
    case Phb::kAf23: return 22;
    case Phb::kAf31: return 26;
    case Phb::kAf32: return 28;
    case Phb::kAf33: return 30;
    case Phb::kAf41: return 34;
    case Phb::kAf42: return 36;
    case Phb::kAf43: return 38;
    case Phb::kEf: return 46;
    case Phb::kCs6: return 48;
    case Phb::kCs7: return 56;
  }
  return 0;
}

Phb phb_of_dscp(std::uint8_t dscp) noexcept {
  switch (dscp) {
    case 10: return Phb::kAf11;
    case 12: return Phb::kAf12;
    case 14: return Phb::kAf13;
    case 18: return Phb::kAf21;
    case 20: return Phb::kAf22;
    case 22: return Phb::kAf23;
    case 26: return Phb::kAf31;
    case 28: return Phb::kAf32;
    case 30: return Phb::kAf33;
    case 34: return Phb::kAf41;
    case 36: return Phb::kAf42;
    case 38: return Phb::kAf43;
    case 46: return Phb::kEf;
    case 48: return Phb::kCs6;
    case 56: return Phb::kCs7;
    default: return Phb::kBe;
  }
}

std::string to_string(Phb phb) {
  switch (phb) {
    case Phb::kBe: return "BE";
    case Phb::kAf11: return "AF11";
    case Phb::kAf12: return "AF12";
    case Phb::kAf13: return "AF13";
    case Phb::kAf21: return "AF21";
    case Phb::kAf22: return "AF22";
    case Phb::kAf23: return "AF23";
    case Phb::kAf31: return "AF31";
    case Phb::kAf32: return "AF32";
    case Phb::kAf33: return "AF33";
    case Phb::kAf41: return "AF41";
    case Phb::kAf42: return "AF42";
    case Phb::kAf43: return "AF43";
    case Phb::kEf: return "EF";
    case Phb::kCs6: return "CS6";
    case Phb::kCs7: return "CS7";
  }
  return "?";
}

unsigned drop_precedence(Phb phb) noexcept {
  switch (phb) {
    case Phb::kAf12:
    case Phb::kAf22:
    case Phb::kAf32:
    case Phb::kAf42:
      return 2;
    case Phb::kAf13:
    case Phb::kAf23:
    case Phb::kAf33:
    case Phb::kAf43:
      return 3;
    default:
      return 1;
  }
}

unsigned af_class(Phb phb) noexcept {
  switch (phb) {
    case Phb::kAf11:
    case Phb::kAf12:
    case Phb::kAf13:
      return 1;
    case Phb::kAf21:
    case Phb::kAf22:
    case Phb::kAf23:
      return 2;
    case Phb::kAf31:
    case Phb::kAf32:
    case Phb::kAf33:
      return 3;
    case Phb::kAf41:
    case Phb::kAf42:
    case Phb::kAf43:
      return 4;
    default:
      return 0;
  }
}

DscpExpMap::DscpExpMap() {
  auto assign = [this](Phb phb, std::uint8_t exp) {
    exp_by_phb_[static_cast<std::size_t>(phb)] = exp;
  };
  assign(Phb::kBe, 0);
  assign(Phb::kAf11, 1);
  assign(Phb::kAf12, 1);
  assign(Phb::kAf13, 1);
  assign(Phb::kAf21, 2);
  assign(Phb::kAf22, 2);
  assign(Phb::kAf23, 2);
  assign(Phb::kAf31, 3);
  assign(Phb::kAf32, 3);
  assign(Phb::kAf33, 3);
  assign(Phb::kAf41, 4);
  assign(Phb::kAf42, 4);
  assign(Phb::kAf43, 4);
  assign(Phb::kEf, 5);
  assign(Phb::kCs6, 6);
  assign(Phb::kCs7, 7);

  dscp_by_exp_ = {dscp_of(Phb::kBe),   dscp_of(Phb::kAf11),
                  dscp_of(Phb::kAf21), dscp_of(Phb::kAf31),
                  dscp_of(Phb::kAf41), dscp_of(Phb::kEf),
                  dscp_of(Phb::kCs6),  dscp_of(Phb::kCs7)};
}

std::uint8_t DscpExpMap::exp_for_dscp(std::uint8_t dscp) const noexcept {
  return exp_for_phb(phb_of_dscp(dscp));
}

std::uint8_t DscpExpMap::exp_for_phb(Phb phb) const noexcept {
  return exp_by_phb_[static_cast<std::size_t>(phb)];
}

std::uint8_t DscpExpMap::dscp_for_exp(std::uint8_t exp) const noexcept {
  return dscp_by_exp_[exp & 0x7];
}

void DscpExpMap::set(Phb phb, std::uint8_t exp) noexcept {
  exp_by_phb_[static_cast<std::size_t>(phb)] = exp & 0x7;
  dscp_by_exp_[exp & 0x7] = dscp_of(phb);
}

std::uint8_t visible_class_bits(const net::Packet& p) noexcept {
  if (p.has_labels()) return p.top_label().exp;
  // Collapse the visible DSCP to its EXP-style 3-bit class so schedulers
  // can use one band map for labeled and unlabeled traffic.
  static const DscpExpMap kDefaultMap;
  return kDefaultMap.exp_for_dscp(p.visible_dscp());
}

}  // namespace mvpn::qos
