#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ip/address.hpp"
#include "net/packet.hpp"
#include "qos/dscp.hpp"
#include "stats/counter.hpp"

namespace mvpn::qos {

/// The header fields a classifier can actually see on a packet. When the
/// packet is ESP-encapsulated the inner IP/L4 headers are encrypted, so
/// only the outer tunnel header is visible and ports are absent — this is
/// the mechanical core of the paper's "encryption erases any hope to
/// control QoS" argument (§3), exercised by experiment E5.
struct VisibleFields {
  ip::Ipv4Address src;
  ip::Ipv4Address dst;
  std::uint8_t protocol = 0;
  std::uint8_t dscp = 0;
  std::optional<std::uint16_t> src_port;  ///< absent when encrypted
  std::optional<std::uint16_t> dst_port;  ///< absent when encrypted
};

[[nodiscard]] VisibleFields visible_fields(const net::Packet& p) noexcept;

/// Inclusive port range; defaults match any port.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  [[nodiscard]] bool matches(std::uint16_t port) const noexcept {
    return port >= lo && port <= hi;
  }
  [[nodiscard]] bool is_any() const noexcept { return lo == 0 && hi == 65535; }
  static PortRange exactly(std::uint16_t p) { return PortRange{p, p}; }
};

/// One CBQ-style classification rule: all present fields must match.
/// Rules that require port visibility cannot match encrypted packets.
struct MatchRule {
  std::string name;
  std::optional<ip::Prefix> src;
  std::optional<ip::Prefix> dst;
  std::optional<std::uint8_t> protocol;
  PortRange src_port;
  PortRange dst_port;
  Phb mark = Phb::kBe;

  [[nodiscard]] bool matches(const VisibleFields& f) const noexcept;
};

/// CPE-side class-based classifier (paper §5: "the customer premises device
/// could use technologies such as CBQ to classify traffic and
/// DiffServ/ToS to mark it"). First-match semantics; unmatched packets get
/// the default PHB.
class CbqClassifier {
 public:
  explicit CbqClassifier(Phb default_phb = Phb::kBe)
      : default_phb_(default_phb) {}

  /// Append a rule (evaluated in insertion order). Returns its index.
  std::size_t add_rule(MatchRule rule);

  /// PHB for `p` without modifying it.
  [[nodiscard]] Phb classify(const net::Packet& p) const;

  /// Classify and write the resulting DSCP into the packet's (outermost
  /// writable) IP header. Returns the PHB applied.
  Phb mark(net::Packet& p);

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] const MatchRule& rule(std::size_t i) const {
    return rules_.at(i);
  }
  [[nodiscard]] std::uint64_t hits(std::size_t i) const {
    return hit_counts_.at(i).value();
  }
  [[nodiscard]] const stats::Counter& unmatched() const noexcept {
    return unmatched_;
  }

 private:
  Phb default_phb_;
  std::vector<MatchRule> rules_;
  mutable std::vector<stats::Counter> hit_counts_;
  mutable stats::Counter unmatched_;
};

}  // namespace mvpn::qos
