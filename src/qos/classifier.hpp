#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ip/address.hpp"
#include "net/packet.hpp"
#include "qos/dscp.hpp"
#include "stats/counter.hpp"

namespace mvpn::qos {

/// The header fields a classifier can actually see on a packet. When the
/// packet is ESP-encapsulated the inner IP/L4 headers are encrypted, so
/// only the outer tunnel header is visible and ports are absent — this is
/// the mechanical core of the paper's "encryption erases any hope to
/// control QoS" argument (§3), exercised by experiment E5.
struct VisibleFields {
  ip::Ipv4Address src;
  ip::Ipv4Address dst;
  std::uint8_t protocol = 0;
  std::uint8_t dscp = 0;
  std::optional<std::uint16_t> src_port;  ///< absent when encrypted
  std::optional<std::uint16_t> dst_port;  ///< absent when encrypted
};

[[nodiscard]] VisibleFields visible_fields(const net::Packet& p) noexcept;

/// Inclusive port range; defaults match any port.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  [[nodiscard]] bool matches(std::uint16_t port) const noexcept {
    return port >= lo && port <= hi;
  }
  [[nodiscard]] bool is_any() const noexcept { return lo == 0 && hi == 65535; }
  [[nodiscard]] bool is_exact() const noexcept { return lo == hi; }
  static PortRange exactly(std::uint16_t p) { return PortRange{p, p}; }
};

/// One CBQ-style classification rule: all present fields must match.
/// Rules that require port visibility cannot match encrypted packets.
struct MatchRule {
  std::string name;
  std::optional<ip::Prefix> src;
  std::optional<ip::Prefix> dst;
  std::optional<std::uint8_t> protocol;
  PortRange src_port;
  PortRange dst_port;
  Phb mark = Phb::kBe;

  [[nodiscard]] bool matches(const VisibleFields& f) const noexcept;
};

/// CPE-side class-based classifier (paper §5: "the customer premises device
/// could use technologies such as CBQ to classify traffic and
/// DiffServ/ToS to mark it"). First-match semantics; unmatched packets get
/// the default PHB.
///
/// Rule lists are compiled into a match index on mutation: rules pinned to
/// an exact destination port hash into per-port buckets, everything else
/// (ranges, any-port, port-blind rules) stays on a short fallback list.
/// Lookup walks the packet's port bucket and the fallback list as a merge
/// on ascending rule index, so first-match semantics are preserved exactly
/// while the common "one service = one well-known port" rule shape skips
/// the linear scan entirely.
class CbqClassifier {
 public:
  explicit CbqClassifier(Phb default_phb = Phb::kBe)
      : default_phb_(default_phb) {}

  /// Rule index used for "no rule matched" in Decision / count_hit().
  static constexpr std::int32_t kUnmatched = -1;

  /// A classification outcome plus which rule produced it, so callers
  /// (the router flow cache) can replay the accounting via count_hit()
  /// without re-matching.
  struct Decision {
    Phb phb = Phb::kBe;
    std::int32_t rule = kUnmatched;
  };

  /// Append a rule (evaluated in insertion order). Returns its index.
  std::size_t add_rule(MatchRule rule);

  /// PHB for `p` without modifying it.
  [[nodiscard]] Phb classify(const net::Packet& p) const;

  /// Classify already-extracted fields, counting the hit.
  [[nodiscard]] Decision decide(const VisibleFields& f) const;

  /// Classify and write the resulting DSCP into the packet's (outermost
  /// writable) IP header. Returns the PHB applied.
  Phb mark(net::Packet& p);

  /// Replay the per-rule hit accounting for a cached decision.
  void count_hit(std::int32_t rule) const;

  /// Bumped on every mutation; flow caches validate against it.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] const MatchRule& rule(std::size_t i) const {
    return rules_.at(i);
  }
  [[nodiscard]] std::uint64_t hits(std::size_t i) const {
    return hit_counts_.at(i).value();
  }
  [[nodiscard]] const stats::Counter& unmatched() const noexcept {
    return unmatched_;
  }
  [[nodiscard]] Phb default_phb() const noexcept { return default_phb_; }

  /// Introspection for tests: rules evaluated by the scan fallback (ranges,
  /// any-port and port-blind rules) vs. total.
  [[nodiscard]] std::size_t fallback_rule_count() const noexcept {
    return fallback_.size();
  }

 private:
  void rebuild_index();
  [[nodiscard]] std::int32_t match_index(const VisibleFields& f) const;

  Phb default_phb_;
  std::vector<MatchRule> rules_;
  mutable std::vector<stats::Counter> hit_counts_;
  mutable stats::Counter unmatched_;
  std::uint64_t generation_ = 1;

  /// Compiled index: exact-dst-port rules bucketed by port, the rest on a
  /// fallback list; both hold ascending rule indices.
  std::unordered_map<std::uint16_t, std::vector<std::uint32_t>> by_dst_port_;
  std::vector<std::uint32_t> fallback_;
};

}  // namespace mvpn::qos
