#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "qos/dscp.hpp"
#include "stats/counter.hpp"

namespace mvpn::qos {

/// IntServ-style per-flow admission control at the network edge — one of
/// the complementary initiatives the paper lists next to DiffServ/MPLS
/// ("additional initiatives include IntServ (Integrated Services) and
/// Constraint Based Routing", §5).
///
/// Each class owns a bandwidth pool (a share of the access link); flows
/// request a rate and are admitted only while the pool has room. This is
/// the control-plane complement to the data-plane policer: admission
/// keeps the *sum* of contracts feasible, the policer enforces each one.
class AdmissionController {
 public:
  explicit AdmissionController(std::string name = "admission")
      : name_(std::move(name)) {}

  /// Configure a class pool of `rate_bps`.
  void set_class_pool(Phb phb, double rate_bps);

  /// Request admission for a flow. Returns true and reserves on success.
  bool admit(std::uint32_t flow_id, Phb phb, double rate_bps);
  /// Release a flow's reservation (teardown).
  void release(std::uint32_t flow_id);

  [[nodiscard]] double reserved(Phb phb) const;
  [[nodiscard]] double pool(Phb phb) const;
  [[nodiscard]] double available(Phb phb) const {
    return pool(phb) - reserved(phb);
  }
  [[nodiscard]] std::size_t admitted_flows() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] const stats::Counter& rejections() const noexcept {
    return rejections_;
  }

 private:
  struct Flow {
    Phb phb = Phb::kBe;
    double rate_bps = 0.0;
  };

  std::string name_;
  std::map<Phb, double> pools_;
  std::map<Phb, double> reserved_;
  std::map<std::uint32_t, Flow> flows_;
  stats::Counter rejections_;
};

}  // namespace mvpn::qos
