#include "qos/admission.hpp"

namespace mvpn::qos {

void AdmissionController::set_class_pool(Phb phb, double rate_bps) {
  pools_[phb] = rate_bps;
}

bool AdmissionController::admit(std::uint32_t flow_id, Phb phb,
                                double rate_bps) {
  if (flows_.count(flow_id) != 0) return false;  // already admitted
  auto pool_it = pools_.find(phb);
  if (pool_it == pools_.end()) {
    rejections_.add();
    return false;  // class accepts no reservations
  }
  double& used = reserved_[phb];
  if (used + rate_bps > pool_it->second + 1e-9) {
    rejections_.add();
    return false;
  }
  used += rate_bps;
  flows_[flow_id] = Flow{phb, rate_bps};
  return true;
}

void AdmissionController::release(std::uint32_t flow_id) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  reserved_[it->second.phb] -= it->second.rate_bps;
  if (reserved_[it->second.phb] < 0.0) reserved_[it->second.phb] = 0.0;
  flows_.erase(it);
}

double AdmissionController::reserved(Phb phb) const {
  auto it = reserved_.find(phb);
  return it == reserved_.end() ? 0.0 : it->second;
}

double AdmissionController::pool(Phb phb) const {
  auto it = pools_.find(phb);
  return it == pools_.end() ? 0.0 : it->second;
}

}  // namespace mvpn::qos
