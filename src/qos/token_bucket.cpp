#include "qos/token_bucket.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvpn::qos {

TokenBucket::TokenBucket(double rate_bytes_per_s, double burst_bytes)
    : rate_(rate_bytes_per_s), burst_(burst_bytes), tokens_(burst_bytes) {
  if (rate_ <= 0.0 || burst_ <= 0.0) {
    throw std::invalid_argument("TokenBucket: rate and burst must be > 0");
  }
}

void TokenBucket::refill(sim::SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed_s = sim::to_seconds(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_refill_ = now;
}

bool TokenBucket::consume(sim::SimTime now, std::size_t bytes) {
  refill(now);
  const auto need = static_cast<double>(bytes);
  if (tokens_ + 1e-9 < need) return false;
  tokens_ -= need;
  return true;
}

double TokenBucket::available(sim::SimTime now) const {
  // const-friendly view: compute without mutating.
  if (now <= last_refill_) return tokens_;
  const double elapsed_s = sim::to_seconds(now - last_refill_);
  return std::min(burst_, tokens_ + elapsed_s * rate_);
}

void TokenBucket::reset(sim::SimTime now) {
  tokens_ = burst_;
  last_refill_ = now;
}

Shaper::Shaper(double rate_bytes_per_s, double burst_bytes)
    : rate_(rate_bytes_per_s), burst_(burst_bytes) {
  if (rate_ <= 0.0 || burst_ < 0.0) {
    throw std::invalid_argument("Shaper: rate must be > 0, burst >= 0");
  }
}

sim::SimTime Shaper::reserve(sim::SimTime now, std::size_t bytes) {
  // Virtual-scheduling (leaky bucket as a meter): the backlog clears at
  // `bucket_empty_at_`; a packet is conformant while the backlog stays
  // within the burst allowance.
  const auto burst_time =
      static_cast<sim::SimTime>(burst_ / rate_ * 1e9);
  const auto tx_time =
      static_cast<sim::SimTime>(static_cast<double>(bytes) / rate_ * 1e9);
  const sim::SimTime start = std::max(now - burst_time, bucket_empty_at_);
  bucket_empty_at_ = start + tx_time;
  return start > now ? start - now : 0;
}

}  // namespace mvpn::qos
