#include "qos/meter.hpp"

namespace mvpn::qos {

const char* to_string(Color c) noexcept {
  switch (c) {
    case Color::kGreen: return "green";
    case Color::kYellow: return "yellow";
    case Color::kRed: return "red";
  }
  return "?";
}

SrTcmMeter::SrTcmMeter(double cir_bytes_per_s, double cbs_bytes,
                       double ebs_bytes)
    : committed_(cir_bytes_per_s, cbs_bytes),
      excess_(cir_bytes_per_s, ebs_bytes) {}

Color SrTcmMeter::meter(sim::SimTime now, std::size_t bytes) {
  if (committed_.consume(now, bytes)) {
    green_.add();
    return Color::kGreen;
  }
  if (excess_.consume(now, bytes)) {
    yellow_.add();
    return Color::kYellow;
  }
  red_.add();
  return Color::kRed;
}

}  // namespace mvpn::qos
