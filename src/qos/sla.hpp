#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "qos/dscp.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "stats/table.hpp"

namespace mvpn::qos {

/// Per-class service-level measurement: sinks feed it deliveries, sources
/// feed it departures, and it produces the delay/jitter/loss/goodput rows
/// the paper's SLA discussion is about (§3.1, §5).
///
/// Jitter is RFC 3550-style: mean absolute difference of consecutive
/// one-way delays within each flow, aggregated per class.
class SlaProbe {
 public:
  explicit SlaProbe(std::string name = "sla");

  void record_sent(Phb cls, std::size_t bytes);
  void record_delivered(Phb cls, std::uint32_t flow_id, sim::SimTime latency,
                        std::size_t bytes);

  struct ClassReport {
    std::uint64_t sent_packets = 0;
    std::uint64_t sent_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    stats::SampleSet latency_s;       ///< one-way delay samples (seconds)
    stats::RunningStats jitter_s;     ///< |delta delay| samples (seconds)

    [[nodiscard]] double loss_fraction() const noexcept {
      if (sent_packets == 0) return 0.0;
      const auto lost = sent_packets > delivered_packets
                            ? sent_packets - delivered_packets
                            : 0;
      return static_cast<double>(lost) / static_cast<double>(sent_packets);
    }
    /// Goodput in bits/s given the measurement interval.
    [[nodiscard]] double goodput_bps(double interval_s) const noexcept {
      if (interval_s <= 0.0) return 0.0;
      return static_cast<double>(delivered_bytes) * 8.0 / interval_s;
    }
  };

  [[nodiscard]] const ClassReport& report(Phb cls) const;
  [[nodiscard]] bool has_class(Phb cls) const;
  [[nodiscard]] const std::map<Phb, ClassReport>& all() const noexcept {
    return by_class_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Render the standard SLA table (one row per class) for an interval of
  /// `interval_s` seconds.
  [[nodiscard]] stats::Table to_table(double interval_s) const;

  /// Same rows as machine-readable CSV (for offline plotting).
  [[nodiscard]] std::string to_csv(double interval_s) const;

 private:
  std::string name_;
  std::map<Phb, ClassReport> by_class_;
  std::unordered_map<std::uint32_t, sim::SimTime> last_latency_by_flow_;
};

}  // namespace mvpn::qos
