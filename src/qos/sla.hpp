#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "qos/dscp.hpp"
#include "sim/time.hpp"
#include "stats/log_histogram.hpp"
#include "stats/running_stats.hpp"
#include "stats/table.hpp"

namespace mvpn::qos {

/// Per-class service-level measurement: sinks feed it deliveries, sources
/// feed it departures, and it produces the delay/jitter/loss/goodput rows
/// the paper's SLA discussion is about (§3.1, §5).
///
/// Two jitter figures are kept per class: the mean absolute difference of
/// consecutive one-way delays within each flow (the historical column), and
/// true RFC 3550 §6.4.1 inter-arrival jitter — the per-flow EWMA
/// J += (|D| - J)/16 — averaged across the class's flows, so the
/// packet-delay-variation comparison is apples-to-apples with the DiffServ
/// PDV literature. Both accumulate *per flow* and aggregate per class only
/// at query time, folding flows in ascending flow-id order: a flow's
/// deliveries all pass through one sink (one shard), so the figures are
/// bit-identical whether the run was serial or sharded — class-level
/// online accumulation would instead depend on how flows interleave,
/// which the partition changes. Latency percentiles come from a
/// bounded-memory LogHistogram sketch (exact mean/min/max, ~0.8% relative
/// error on percentiles), so the probe survives million-packet runs in
/// O(1) memory.
class SlaProbe {
 public:
  explicit SlaProbe(std::string name = "sla");

  void record_sent(Phb cls, std::size_t bytes);
  void record_delivered(Phb cls, std::uint32_t flow_id, sim::SimTime latency,
                        std::size_t bytes);

  struct ClassReport {
    std::uint64_t sent_packets = 0;
    std::uint64_t sent_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    stats::LogHistogram latency_s;    ///< one-way delay sketch (seconds)

    [[nodiscard]] double loss_fraction() const noexcept {
      if (sent_packets == 0) return 0.0;
      const auto lost = sent_packets > delivered_packets
                            ? sent_packets - delivered_packets
                            : 0;
      return static_cast<double>(lost) / static_cast<double>(sent_packets);
    }
    /// Goodput in bits/s given the measurement interval.
    [[nodiscard]] double goodput_bps(double interval_s) const noexcept {
      if (interval_s <= 0.0) return 0.0;
      return static_cast<double>(delivered_bytes) * 8.0 / interval_s;
    }
  };

  [[nodiscard]] const ClassReport& report(Phb cls) const;
  [[nodiscard]] bool has_class(Phb cls) const;

  /// Fold another probe's accounting into this one (sharded runs: the
  /// master probe is rebuilt from per-shard probes before each snapshot).
  /// Counters are integers and merge exactly. Each flow delivers through
  /// exactly one sink/shard, so per-flow jitter state never needs to be
  /// combined — flow entries are copied over wholesale; a flow id present
  /// in both probes is a partitioning bug and asserts in debug builds.
  void merge_from(const SlaProbe& other);

  /// RFC 3550 §6.4.1 inter-arrival jitter for `cls` in seconds: each flow
  /// runs J += (|D| - J)/16 over consecutive one-way delay deltas; the
  /// class figure is the mean of its flows' current J. 0 until some flow
  /// of the class has delivered at least two packets.
  [[nodiscard]] double rfc3550_jitter_s(Phb cls) const;

  /// |delta one-way delay| statistics for `cls`: per-flow accumulators
  /// merged in ascending flow-id order (see the class comment for why that
  /// order makes the figure partition-independent).
  [[nodiscard]] stats::RunningStats jitter_stats(Phb cls) const;

  [[nodiscard]] const std::map<Phb, ClassReport>& all() const noexcept {
    return by_class_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Render the standard SLA table (one row per class) for an interval of
  /// `interval_s` seconds.
  [[nodiscard]] stats::Table to_table(double interval_s) const;

  /// Same rows as machine-readable CSV (for offline plotting).
  [[nodiscard]] std::string to_csv(double interval_s) const;

 private:
  struct FlowJitter {
    sim::SimTime last_latency = 0;
    double j_s = 0.0;            ///< RFC 3550 running jitter estimate
    stats::RunningStats jitter;  ///< |delta delay| samples (seconds)
    bool has_delta = false;
    Phb cls{};
  };

  std::string name_;
  std::map<Phb, ClassReport> by_class_;
  std::unordered_map<std::uint32_t, FlowJitter> jitter_by_flow_;
};

}  // namespace mvpn::qos
