#include "qos/queues.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mvpn::qos {

BandSelector class_band_selector(std::array<std::uint8_t, 8> exp_to_band) {
  return [exp_to_band](const net::Packet& p) -> unsigned {
    return exp_to_band[visible_class_bits(p) & 0x7];
  };
}

BandSelector ef_af_be_selector() {
  // EXP: 0=BE -> band 2; 1..4=AF -> band 1; 5..7=EF/control -> band 0.
  return class_band_selector({2, 1, 1, 1, 1, 0, 0, 0});
}

MultiBandQueue::MultiBandQueue(unsigned bands, std::size_t per_band_capacity,
                               BandSelector selector)
    : selector_(std::move(selector)) {
  if (bands == 0) throw std::invalid_argument("MultiBandQueue: 0 bands");
  bands_.resize(bands);
  for (Band& b : bands_) b.capacity = per_band_capacity;
}

bool MultiBandQueue::enqueue(net::PacketPtr p) {
  unsigned band = selector_(*p);
  if (band >= bands_.size()) band = static_cast<unsigned>(bands_.size()) - 1;
  Band& b = bands_[band];
  if (b.fifo.size() >= b.capacity) {
    b.drops.record(p->wire_size());
    count_drop(*p, obs::DropReason::kTailDrop,
               static_cast<std::uint8_t>(band));
    return false;
  }
  count_enqueue(*p, static_cast<std::uint8_t>(band));
  b.bytes += p->wire_size();
  b.fifo.push_back(std::move(p));
  on_enqueued(band, *b.fifo.back());
  return true;
}

void MultiBandQueue::on_enqueued(unsigned, const net::Packet&) {}

net::PacketPtr MultiBandQueue::pop_band(unsigned band) {
  Band& b = bands_.at(band);
  if (b.fifo.empty()) return nullptr;
  net::PacketPtr p = std::move(b.fifo.front());
  b.fifo.pop_front();
  b.bytes -= p->wire_size();
  return p;
}

std::size_t MultiBandQueue::packet_count() const noexcept {
  std::size_t n = 0;
  for (const Band& b : bands_) n += b.fifo.size();
  return n;
}

std::size_t MultiBandQueue::byte_count() const noexcept {
  std::size_t n = 0;
  for (const Band& b : bands_) n += b.bytes;
  return n;
}

PriorityQueueDisc::PriorityQueueDisc(unsigned bands,
                                     std::size_t per_band_capacity,
                                     BandSelector selector)
    : MultiBandQueue(bands, per_band_capacity, std::move(selector)) {}

net::PacketPtr PriorityQueueDisc::dequeue() {
  for (unsigned b = 0; b < band_count(); ++b) {
    if (net::PacketPtr p = pop_band(b)) return p;
  }
  return nullptr;
}

net::QueueDiscFactory PriorityQueueDisc::factory(unsigned bands,
                                                 std::size_t per_band_capacity,
                                                 BandSelector selector) {
  return [=] {
    return std::make_unique<PriorityQueueDisc>(bands, per_band_capacity,
                                               selector);
  };
}

DrrQueueDisc::DrrQueueDisc(std::vector<std::uint32_t> weights,
                           std::size_t per_band_capacity,
                           BandSelector selector, std::size_t quantum_bytes)
    : MultiBandQueue(static_cast<unsigned>(weights.size()), per_band_capacity,
                     std::move(selector)),
      weights_(std::move(weights)),
      deficit_(weights_.size(), 0.0),
      quantum_(quantum_bytes) {}

net::PacketPtr DrrQueueDisc::dequeue() {
  if (packet_count() == 0) return nullptr;
  // Classic DRR: each *visit* to a band grants one quantum of credit, the
  // band is served while its head packet fits, then the pointer advances.
  // Between dequeue() calls we stay on the current band until its credit
  // runs out, which is what makes the shares byte-accurate.
  const unsigned max_rounds = 1024;  // quantum*weight >= 1 byte guards this
  for (unsigned scanned = 0; scanned < max_rounds * band_count(); ++scanned) {
    const unsigned b = round_ptr_;
    Band& band = bands()[b];
    if (band.fifo.empty()) {
      deficit_[b] = 0.0;  // empty band forfeits credit (standard DRR)
      round_ptr_ = (round_ptr_ + 1) % band_count();
      fresh_visit_ = true;
      continue;
    }
    if (fresh_visit_) {
      deficit_[b] += static_cast<double>(quantum_ * weights_[b]);
      fresh_visit_ = false;
    }
    const auto head_size = static_cast<double>(band.fifo.front()->wire_size());
    if (head_size <= deficit_[b]) {
      deficit_[b] -= head_size;
      return pop_band(b);
    }
    // Head does not fit this round: keep the credit, move on.
    round_ptr_ = (round_ptr_ + 1) % band_count();
    fresh_visit_ = true;
  }
  // Defensive fallback: serve any non-empty band.
  for (unsigned b = 0; b < band_count(); ++b) {
    if (net::PacketPtr p = pop_band(b)) return p;
  }
  return nullptr;
}

net::QueueDiscFactory DrrQueueDisc::factory(std::vector<std::uint32_t> weights,
                                            std::size_t per_band_capacity,
                                            BandSelector selector,
                                            std::size_t quantum_bytes) {
  return [=] {
    return std::make_unique<DrrQueueDisc>(weights, per_band_capacity, selector,
                                          quantum_bytes);
  };
}

WfqQueueDisc::WfqQueueDisc(std::vector<double> weights,
                           std::size_t per_band_capacity,
                           BandSelector selector)
    : MultiBandQueue(static_cast<unsigned>(weights.size()), per_band_capacity,
                     std::move(selector)),
      weights_(std::move(weights)),
      tags_(weights_.size()),
      band_last_finish_(weights_.size(), 0.0) {
  for (double w : weights_) {
    if (w <= 0.0) throw std::invalid_argument("WfqQueueDisc: weight <= 0");
  }
}

void WfqQueueDisc::on_enqueued(unsigned band, const net::Packet& p) {
  const double start = std::max(virtual_time_, band_last_finish_[band]);
  const double finish =
      start + static_cast<double>(p.wire_size()) / weights_[band];
  band_last_finish_[band] = finish;
  tags_[band].push_back(finish);
}

net::PacketPtr WfqQueueDisc::dequeue() {
  unsigned best_band = 0;
  double best_tag = std::numeric_limits<double>::infinity();
  bool found = false;
  for (unsigned b = 0; b < band_count(); ++b) {
    if (tags_[b].empty()) continue;
    if (tags_[b].front() < best_tag) {
      best_tag = tags_[b].front();
      best_band = b;
      found = true;
    }
  }
  if (!found) return nullptr;
  tags_[best_band].pop_front();
  virtual_time_ = best_tag;  // SCFQ: system virtual time = tag in service
  if (packet_count() == 1) {
    // Queue will go idle after this packet; reset tags so a long idle
    // period does not starve newly active bands.
    virtual_time_ = 0.0;
    std::fill(band_last_finish_.begin(), band_last_finish_.end(), 0.0);
  }
  return pop_band(best_band);
}

net::QueueDiscFactory WfqQueueDisc::factory(std::vector<double> weights,
                                            std::size_t per_band_capacity,
                                            BandSelector selector) {
  return [=] {
    return std::make_unique<WfqQueueDisc>(weights, per_band_capacity,
                                          selector);
  };
}

LlqQueueDisc::LlqQueueDisc(std::vector<double> weights,
                           std::size_t per_band_capacity,
                           BandSelector selector, double ef_rate_bytes_s,
                           double ef_burst_bytes, const sim::Scheduler& clock)
    : MultiBandQueue(static_cast<unsigned>(weights.size()), per_band_capacity,
                     selector),
      selector_copy_(std::move(selector)),
      weights_(std::move(weights)),
      tags_(weights_.size()),
      band_last_finish_(weights_.size(), 0.0),
      ef_bucket_(ef_rate_bytes_s, ef_burst_bytes),
      clock_(clock) {
  if (weights_.size() < 2) {
    throw std::invalid_argument("LlqQueueDisc: need >= 2 bands");
  }
  for (std::size_t b = 1; b < weights_.size(); ++b) {
    if (weights_[b] <= 0.0) {
      throw std::invalid_argument("LlqQueueDisc: weight <= 0");
    }
  }
}

bool LlqQueueDisc::enqueue(net::PacketPtr p) {
  // Police the priority band before admitting: out-of-contract EF is
  // dropped so strict priority cannot starve the WFQ bands.
  unsigned band = selector_copy_(*p);
  if (band >= band_count()) band = band_count() - 1;
  if (band == 0 && !ef_bucket_.consume(clock_.now(), p->wire_size())) {
    ef_policed_.add();
    count_drop(*p, obs::DropReason::kEfPoliced, 0);
    return false;
  }
  return MultiBandQueue::enqueue(std::move(p));
}

void LlqQueueDisc::on_enqueued(unsigned band, const net::Packet& p) {
  if (band == 0) return;  // strict band carries no WFQ tag
  const double start = std::max(virtual_time_, band_last_finish_[band]);
  const double finish =
      start + static_cast<double>(p.wire_size()) / weights_[band];
  band_last_finish_[band] = finish;
  tags_[band].push_back(finish);
}

net::PacketPtr LlqQueueDisc::dequeue() {
  if (net::PacketPtr p = pop_band(0)) return p;  // strict priority first
  unsigned best_band = 0;
  double best_tag = std::numeric_limits<double>::infinity();
  bool found = false;
  for (unsigned b = 1; b < band_count(); ++b) {
    if (tags_[b].empty()) continue;
    if (tags_[b].front() < best_tag) {
      best_tag = tags_[b].front();
      best_band = b;
      found = true;
    }
  }
  if (!found) return nullptr;
  tags_[best_band].pop_front();
  virtual_time_ = best_tag;
  if (packet_count() == 1) {
    virtual_time_ = 0.0;
    std::fill(band_last_finish_.begin(), band_last_finish_.end(), 0.0);
  }
  return pop_band(best_band);
}

net::QueueDiscFactory LlqQueueDisc::factory(std::vector<double> weights,
                                            std::size_t per_band_capacity,
                                            BandSelector selector,
                                            double ef_rate_bytes_s,
                                            double ef_burst_bytes,
                                            const sim::Scheduler& clock) {
  return [=, &clock] {
    return std::make_unique<LlqQueueDisc>(weights, per_band_capacity,
                                          selector, ef_rate_bytes_s,
                                          ef_burst_bytes, clock);
  };
}

RedQueueDisc::RedQueueDisc(const RedParams& params, ClockFn clock,
                           sim::Rng rng)
    : params_(params), clock_(std::move(clock)), rng_(rng) {}

RedQueueDisc::RedQueueDisc(const RedParams& params,
                           const sim::Scheduler& clock, sim::Rng rng)
    : RedQueueDisc(params, [&clock] { return clock.now(); }, rng) {}

const RedParams& RedQueueDisc::profile_for(const net::Packet&) const {
  return params_;
}

void RedQueueDisc::update_average() {
  if (idle_) {
    // Estimate how many small packets could have been sent while idle and
    // decay the average accordingly (Floyd/Jacobson idle handling).
    const double idle_s = sim::to_seconds(clock_() - idle_since_);
    const double pkt_time =
        params_.mean_pkt_bytes * 8.0 / params_.bandwidth_bps;
    const double m = pkt_time > 0 ? idle_s / pkt_time : 0.0;
    avg_ *= std::pow(1.0 - params_.ewma_weight, m);
    idle_ = false;
  } else {
    avg_ = (1.0 - params_.ewma_weight) * avg_ +
           params_.ewma_weight * static_cast<double>(fifo_.size());
  }
}

obs::DropReason RedQueueDisc::red_admit(const net::Packet& p) {
  const RedParams& prof = profile_for(p);
  update_average();

  if (fifo_.size() >= prof.capacity_packets) {
    forced_drops_.add();
    return obs::DropReason::kRedForced;
  }
  if (avg_ < prof.min_th) {
    ++count_since_drop_;
    return obs::DropReason::kNone;
  }
  double p_drop;
  if (avg_ < prof.max_th) {
    p_drop = prof.max_p * (avg_ - prof.min_th) / (prof.max_th - prof.min_th);
  } else if (avg_ < 2.0 * prof.max_th) {
    // Gentle RED: ramp from max_p to 1 between max_th and 2*max_th.
    p_drop = prof.max_p +
             (1.0 - prof.max_p) * (avg_ - prof.max_th) / prof.max_th;
  } else {
    forced_drops_.add();
    return obs::DropReason::kRedForced;
  }
  // Spread drops uniformly between drops (Floyd/Jacobson count correction).
  const double denom = 1.0 - static_cast<double>(count_since_drop_) * p_drop;
  const double pa = denom > 0.0 ? std::min(1.0, p_drop / denom) : 1.0;
  if (rng_.bernoulli(pa)) {
    early_drops_.add();
    count_since_drop_ = 0;
    return obs::DropReason::kRedEarly;
  }
  ++count_since_drop_;
  return obs::DropReason::kNone;
}

bool RedQueueDisc::enqueue(net::PacketPtr p) {
  if (const obs::DropReason verdict = red_admit(*p);
      verdict != obs::DropReason::kNone) {
    count_drop(*p, verdict);
    return false;
  }
  count_enqueue(*p);
  bytes_ += p->wire_size();
  fifo_.push_back(std::move(p));
  return true;
}

net::PacketPtr RedQueueDisc::dequeue() {
  if (fifo_.empty()) return nullptr;
  net::PacketPtr p = std::move(fifo_.front());
  fifo_.pop_front();
  bytes_ -= p->wire_size();
  if (fifo_.empty()) {
    idle_ = true;
    idle_since_ = clock_();
  }
  return p;
}

WredQueueDisc::WredQueueDisc(const RedParams& low_prec,
                             const RedParams& mid_prec,
                             const RedParams& high_prec, ClockFn clock,
                             sim::Rng rng)
    : RedQueueDisc(low_prec, std::move(clock), rng),
      mid_(mid_prec),
      high_(high_prec) {}

WredQueueDisc::WredQueueDisc(const RedParams& low_prec,
                             const RedParams& mid_prec,
                             const RedParams& high_prec,
                             const sim::Scheduler& clock, sim::Rng rng)
    : WredQueueDisc(low_prec, mid_prec, high_prec,
                    [&clock] { return clock.now(); }, rng) {}

const RedParams& WredQueueDisc::profile_for(const net::Packet& p) const {
  const Phb phb = phb_of_dscp(p.visible_dscp());
  switch (drop_precedence(phb)) {
    case 3: return high_;
    case 2: return mid_;
    default: return params_;
  }
}

}  // namespace mvpn::qos
