#include "qos/classifier.hpp"

namespace mvpn::qos {

VisibleFields visible_fields(const net::Packet& p) noexcept {
  VisibleFields f;
  if (p.esp) {
    f.src = p.esp->outer.src;
    f.dst = p.esp->outer.dst;
    f.protocol = p.esp->outer.protocol;
    f.dscp = p.esp->outer.dscp;
    // Ports live inside the encrypted payload: invisible.
  } else {
    f.src = p.ip.src;
    f.dst = p.ip.dst;
    f.protocol = p.ip.protocol;
    f.dscp = p.ip.dscp;
    f.src_port = p.l4.src_port;
    f.dst_port = p.l4.dst_port;
  }
  return f;
}

bool MatchRule::matches(const VisibleFields& f) const noexcept {
  if (src && !src->contains(f.src)) return false;
  if (dst && !dst->contains(f.dst)) return false;
  if (protocol && *protocol != f.protocol) return false;
  if (!src_port.is_any()) {
    if (!f.src_port || !src_port.matches(*f.src_port)) return false;
  }
  if (!dst_port.is_any()) {
    if (!f.dst_port || !dst_port.matches(*f.dst_port)) return false;
  }
  return true;
}

std::size_t CbqClassifier::add_rule(MatchRule rule) {
  rules_.push_back(std::move(rule));
  hit_counts_.emplace_back();
  return rules_.size() - 1;
}

Phb CbqClassifier::classify(const net::Packet& p) const {
  const VisibleFields f = visible_fields(p);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].matches(f)) {
      hit_counts_[i].add();
      return rules_[i].mark;
    }
  }
  unmatched_.add();
  return default_phb_;
}

Phb CbqClassifier::mark(net::Packet& p) {
  const Phb phb = classify(p);
  const std::uint8_t dscp = dscp_of(phb);
  if (p.esp) {
    p.esp->outer.dscp = dscp;
  } else {
    p.ip.dscp = dscp;
  }
  return phb;
}

}  // namespace mvpn::qos
