#include "qos/classifier.hpp"

namespace mvpn::qos {

VisibleFields visible_fields(const net::Packet& p) noexcept {
  VisibleFields f;
  if (p.esp) {
    f.src = p.esp->outer.src;
    f.dst = p.esp->outer.dst;
    f.protocol = p.esp->outer.protocol;
    f.dscp = p.esp->outer.dscp;
    // Ports live inside the encrypted payload: invisible.
  } else {
    f.src = p.ip.src;
    f.dst = p.ip.dst;
    f.protocol = p.ip.protocol;
    f.dscp = p.ip.dscp;
    f.src_port = p.l4.src_port;
    f.dst_port = p.l4.dst_port;
  }
  return f;
}

bool MatchRule::matches(const VisibleFields& f) const noexcept {
  if (src && !src->contains(f.src)) return false;
  if (dst && !dst->contains(f.dst)) return false;
  if (protocol && *protocol != f.protocol) return false;
  if (!src_port.is_any()) {
    if (!f.src_port || !src_port.matches(*f.src_port)) return false;
  }
  if (!dst_port.is_any()) {
    if (!f.dst_port || !dst_port.matches(*f.dst_port)) return false;
  }
  return true;
}

std::size_t CbqClassifier::add_rule(MatchRule rule) {
  rules_.push_back(std::move(rule));
  hit_counts_.emplace_back();
  ++generation_;
  rebuild_index();
  return rules_.size() - 1;
}

void CbqClassifier::rebuild_index() {
  by_dst_port_.clear();
  fallback_.clear();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const MatchRule& r = rules_[i];
    if (!r.dst_port.is_any() && r.dst_port.is_exact()) {
      by_dst_port_[r.dst_port.lo].push_back(static_cast<std::uint32_t>(i));
    } else {
      fallback_.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

std::int32_t CbqClassifier::match_index(const VisibleFields& f) const {
  // Merge the packet's exact-port bucket with the fallback list on
  // ascending rule index: the first rule that matches wins, exactly as the
  // historical linear scan decided. Encrypted packets carry no ports, so
  // exact-port rules cannot match them and only the fallback list runs.
  const std::vector<std::uint32_t>* bucket = nullptr;
  if (f.dst_port) {
    auto it = by_dst_port_.find(*f.dst_port);
    if (it != by_dst_port_.end()) bucket = &it->second;
  }
  std::size_t bi = 0;
  std::size_t fi = 0;
  const std::size_t bn = bucket != nullptr ? bucket->size() : 0;
  while (bi < bn || fi < fallback_.size()) {
    std::uint32_t next;
    if (bi < bn &&
        (fi >= fallback_.size() || (*bucket)[bi] < fallback_[fi])) {
      next = (*bucket)[bi++];
    } else {
      next = fallback_[fi++];
    }
    if (rules_[next].matches(f)) return static_cast<std::int32_t>(next);
  }
  return kUnmatched;
}

CbqClassifier::Decision CbqClassifier::decide(const VisibleFields& f) const {
  const std::int32_t idx = match_index(f);
  count_hit(idx);
  if (idx == kUnmatched) return Decision{default_phb_, kUnmatched};
  return Decision{rules_[static_cast<std::size_t>(idx)].mark, idx};
}

void CbqClassifier::count_hit(std::int32_t rule) const {
  if (rule == kUnmatched) {
    unmatched_.add();
  } else {
    hit_counts_[static_cast<std::size_t>(rule)].add();
  }
}

Phb CbqClassifier::classify(const net::Packet& p) const {
  return decide(visible_fields(p)).phb;
}

Phb CbqClassifier::mark(net::Packet& p) {
  const Phb phb = classify(p);
  const std::uint8_t dscp = dscp_of(phb);
  if (p.esp) {
    p.esp->outer.dscp = dscp;
  } else {
    p.ip.dscp = dscp;
  }
  return phb;
}

}  // namespace mvpn::qos
