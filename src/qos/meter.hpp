#pragma once

#include <cstdint>

#include "qos/token_bucket.hpp"
#include "sim/time.hpp"
#include "stats/counter.hpp"

namespace mvpn::qos {

/// Metering color (RFC 2697 terminology).
enum class Color : std::uint8_t { kGreen, kYellow, kRed };

[[nodiscard]] const char* to_string(Color c) noexcept;

/// Single-rate three-color marker (RFC 2697): CIR with committed (CBS) and
/// excess (EBS) buckets. Green = within CBS, yellow = within EBS, red =
/// beyond both. Edge devices use it to mark AF drop precedence; policers
/// use it to drop red traffic.
class SrTcmMeter {
 public:
  SrTcmMeter(double cir_bytes_per_s, double cbs_bytes, double ebs_bytes);

  Color meter(sim::SimTime now, std::size_t bytes);

  [[nodiscard]] const stats::Counter& green() const noexcept { return green_; }
  [[nodiscard]] const stats::Counter& yellow() const noexcept { return yellow_; }
  [[nodiscard]] const stats::Counter& red() const noexcept { return red_; }

 private:
  TokenBucket committed_;
  TokenBucket excess_;
  stats::Counter green_;
  stats::Counter yellow_;
  stats::Counter red_;
};

/// Policer: drop-on-red wrapper over the meter, with the option to remark
/// yellow traffic to a higher drop precedence instead of dropping it.
class Policer {
 public:
  Policer(double cir_bytes_per_s, double cbs_bytes, double ebs_bytes)
      : meter_(cir_bytes_per_s, cbs_bytes, ebs_bytes) {}

  /// Returns the color; callers drop on kRed and may remark on kYellow.
  Color check(sim::SimTime now, std::size_t bytes) {
    return meter_.meter(now, bytes);
  }

  [[nodiscard]] const SrTcmMeter& meter() const noexcept { return meter_; }

 private:
  SrTcmMeter meter_;
};

}  // namespace mvpn::qos
