#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace mvpn::qos {

/// Per-hop behaviours from the DiffServ architecture the paper layers onto
/// MPLS (§5): EF for low-latency traffic, four AF classes with three drop
/// precedences each, class selectors for control traffic, and best effort.
enum class Phb : std::uint8_t {
  kBe,    // default / best effort (DSCP 0)
  kAf11, kAf12, kAf13,
  kAf21, kAf22, kAf23,
  kAf31, kAf32, kAf33,
  kAf41, kAf42, kAf43,
  kEf,    // expedited forwarding (DSCP 46)
  kCs6,   // network control (DSCP 48)
  kCs7,   // reserved control (DSCP 56)
};

inline constexpr std::size_t kPhbCount = 16;

/// The 6-bit DSCP value for a PHB (RFC 2474/2597/3246 codepoints).
[[nodiscard]] std::uint8_t dscp_of(Phb phb) noexcept;

/// Reverse mapping; unknown codepoints map to kBe per RFC 2474 §4.
[[nodiscard]] Phb phb_of_dscp(std::uint8_t dscp) noexcept;

[[nodiscard]] std::string to_string(Phb phb);

/// AF drop precedence (1 = low, 3 = high); EF/BE/CS return 1.
[[nodiscard]] unsigned drop_precedence(Phb phb) noexcept;

/// AF class number (1-4); 0 for non-AF PHBs.
[[nodiscard]] unsigned af_class(Phb phb) noexcept;

/// DSCP→EXP mapping applied at the MPLS network edge (paper §5: "map the
/// CPE-specified DiffServ/ToS service level into the QoS field of the MPLS
/// header"). 3 EXP bits carry the class; AF drop precedence collapses.
class DscpExpMap {
 public:
  /// Default mapping: BE→0, AF1x→1, AF2x→2, AF3x→3, AF4x→4, EF→5, CS6→6,
  /// CS7→7.
  DscpExpMap();

  [[nodiscard]] std::uint8_t exp_for_dscp(std::uint8_t dscp) const noexcept;
  [[nodiscard]] std::uint8_t exp_for_phb(Phb phb) const noexcept;
  /// Reverse map used at egress when the shim is removed; returns the
  /// representative DSCP for an EXP class.
  [[nodiscard]] std::uint8_t dscp_for_exp(std::uint8_t exp) const noexcept;

  void set(Phb phb, std::uint8_t exp) noexcept;

 private:
  std::array<std::uint8_t, kPhbCount> exp_by_phb_{};
  std::array<std::uint8_t, 8> dscp_by_exp_{};
};

/// Class a packet belongs to as seen by a core LSR scheduler: from the EXP
/// bits when labeled, else from the outermost visible DSCP.
[[nodiscard]] std::uint8_t visible_class_bits(const net::Packet& p) noexcept;

}  // namespace mvpn::qos
