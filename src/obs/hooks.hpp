#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace mvpn::obs {

/// Ordered list of observation callbacks with stable removal handles.
///
/// Replaces the single-slot hook pattern (set_x(fn) / set_x(nullptr))
/// that let one observer silently clobber another: every observer gets
/// its own id and removes only itself. invoke() tolerates hooks being
/// added during a callback (they run from the next invoke) and hooks
/// being removed during a callback (a removed hook simply stops firing).
template <typename... Args>
class HookList {
 public:
  using Fn = std::function<void(Args...)>;
  using Id = std::uint32_t;

  Id add(Fn fn) {
    entries_.push_back(Entry{++last_id_, std::move(fn)});
    return last_id_;
  }

  /// Remove by handle; no-op (returns false) if already removed.
  bool remove(Id id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  void invoke(Args... args) const {
    // Index-based so hooks may append during iteration; snapshot the count
    // so newly-added hooks first fire on the *next* event.
    const std::size_t n = entries_.size();
    for (std::size_t i = 0; i < n && i < entries_.size(); ++i) {
      entries_[i].fn(args...);
    }
  }

 private:
  struct Entry {
    Id id;
    Fn fn;
  };
  std::vector<Entry> entries_;
  Id last_id_ = 0;
};

}  // namespace mvpn::obs
