#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "stats/counter.hpp"
#include "stats/histogram.hpp"

namespace mvpn::obs {

/// Hierarchical on-demand metrics catalogue.
///
/// Holds *references* to live stats objects (counters, packet/byte pairs,
/// histograms, sample sets) plus arbitrary gauge closures, keyed by
/// slash-separated names ("node/PE0/vrf/corp/routes"). snapshot() reads
/// every source at call time — registration costs nothing on the paths
/// that update the underlying stats.
///
/// Also implements stats::CounterHook: while installed via
/// install_counter_hook(), every stats::Counter constructed *with a name*
/// self-registers under "counters/<name>" (deduplicated with #n suffixes)
/// and unregisters when destroyed. Registered sources added manually must
/// outlive the registry or be removed with remove_prefix().
class MetricsRegistry : public stats::CounterHook {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// --- manual registration ---------------------------------------------
  void add_counter(std::string name, const stats::Counter* c);
  void add_gauge(std::string name, std::function<double()> fn);
  /// Expands to <name>/packets and <name>/bytes.
  void add_packet_byte(std::string name, const stats::PacketByteCounter* c);
  /// Expands to count/mean/p50/p99/max at snapshot time. p50/p99 read the
  /// set's LogHistogram mirror so a snapshot never re-sorts the samples —
  /// snapshot cost stays flat no matter how many samples accumulate.
  void add_sample_set(std::string name, const stats::SampleSet* s);
  /// Expands to count/mean/p50/p99/max; all reads are flat-cost.
  void add_log_histogram(std::string name, const stats::LogHistogram* h);
  /// Expands to total/underflow/overflow/p50/p99.
  void add_histogram(std::string name, const stats::Histogram* h);

  /// Drop every metric whose name starts with `prefix`.
  void remove_prefix(const std::string& prefix);

  [[nodiscard]] std::size_t metric_count() const noexcept {
    return sources_.size();
  }

  /// --- snapshots ---------------------------------------------------------
  struct Sample {
    std::string name;
    double value = 0.0;
  };
  /// Read every source now; sorted by name.
  [[nodiscard]] std::vector<Sample> snapshot() const;
  /// One flat JSON object {"name": value, ...}.
  void write_json(std::ostream& out) const;

  /// --- counter self-registration (stats::CounterHook) --------------------
  /// Install this registry as the process-wide hook; restores the previous
  /// hook on uninstall/destruction.
  void install_counter_hook();
  void uninstall_counter_hook();
  void counter_created(stats::Counter& c) override;
  void counter_destroyed(stats::Counter& c) override;

 private:
  std::map<std::string, std::function<double()>> sources_;
  std::map<const stats::Counter*, std::vector<std::string>> hooked_;
  std::map<std::string, std::uint32_t> name_uses_;
  stats::CounterHook* previous_hook_ = nullptr;
  bool hook_installed_ = false;
};

/// Periodic metrics capture driven by the simulation clock: every
/// `period`, reads the registry and appends a timestamped snapshot.
/// write_json() emits the whole series as a JSON array of
/// {"t_s": <sim seconds>, "metrics": {...}} objects.
class PeriodicSnapshots {
 public:
  PeriodicSnapshots(const MetricsRegistry& registry, sim::Scheduler& sched)
      : registry_(registry), sched_(sched) {}

  /// Begin capturing every `period` (first capture after one period).
  void start(sim::SimTime period);
  void stop() noexcept { running_ = false; }
  /// Capture one snapshot immediately.
  void capture();

  [[nodiscard]] std::size_t count() const noexcept {
    return snapshots_.size();
  }
  void write_json(std::ostream& out) const;

 private:
  void tick();

  struct Timed {
    sim::SimTime at = 0;
    std::vector<MetricsRegistry::Sample> samples;
  };

  const MetricsRegistry& registry_;
  sim::Scheduler& sched_;
  sim::SimTime period_ = 0;
  bool running_ = false;
  std::vector<Timed> snapshots_;
};

}  // namespace mvpn::obs
