#include "obs/sync_profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"

namespace mvpn::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

}  // namespace

SyncProfiler::SyncProfiler(std::uint32_t shards, std::size_t capacity)
    : mask_(round_up_pow2(capacity == 0 ? 1 : capacity) - 1),
      lanes_(shards == 0 ? 1 : shards),
      coord_shards_(lanes_.size()),
      // Delivery runs span 1..a few thousand envelopes; a unit-anchored
      // geometry keeps small sizes out of the underflow bin.
      batch_sizes_(1.0, 1e6) {
  for (Lane& lane : lanes_) lane.ring.resize(mask_ + 1);
  for (CoordShard& cs : coord_shards_) cs.ring.resize(mask_ + 1);
  coord_ring_.resize(mask_ + 1);
  pending_per_src_.assign(lanes_.size(), 0);
}

void SyncProfiler::on_worker_epoch(const WorkerEpoch& e) noexcept {
  Lane& lane = lanes_[e.shard];
  WorkerSlot& slot = lane.ring[lane.recorded & mask_];
  slot.epoch = e.epoch;
  slot.window_start = e.window_start;
  slot.window_end = e.window_end;
  slot.begin_ns = e.begin_ns;
  slot.wait_ns = e.wait_ns;
  slot.exec_ns = e.exec_ns;
  slot.events = e.events;
  slot.parked = e.parked ? 1 : 0;
  if (lane.recorded == 0) lane.first_ns = e.begin_ns;
  lane.last_ns = e.begin_ns + e.wait_ns + e.exec_ns;
  ++lane.recorded;
  lane.wait_ns += e.wait_ns;
  lane.exec_ns += e.exec_ns;
  lane.events += e.events;
  if (e.parked) ++lane.parks;
  lane.wait_s.add(static_cast<double>(e.wait_ns) * 1e-9);
}

void SyncProfiler::on_coordinator_epoch(const CoordinatorEpoch& e) noexcept {
  CoordSlot& slot = coord_ring_[coord_count_ & mask_];
  slot.epoch = e.epoch;
  slot.window_start = e.window_start;
  slot.window_end = e.window_end;
  slot.wait_ns = e.wait_ns;
  slot.drain_ns = pending_drain_ns_;
  slot.handoffs = pending_handoffs_;
  slot.parked = e.parked ? 1 : 0;
  slot.widened = e.widened ? 1 : 0;
  slot.idle_jump = e.idle_jump ? 1 : 0;
  ++coord_count_;
  coord_wait_ns_ += e.wait_ns;
  if (e.parked) ++coord_parks_;
  drain_ns_ += pending_drain_ns_;
  handoffs_ += pending_handoffs_;
  if (e.widened) ++widened_;
  if (e.idle_jump) ++idle_jumps_;
  coord_wait_s_.add(static_cast<double>(e.wait_ns) * 1e-9);

  // Critical-shard attribution: every worker appended its slot for this
  // epoch before arrive(), so the freshest slot of each lane is readable
  // here (release/acquire via the barrier) and identifies the shard the
  // rendezvous was effectively waiting on.
  std::uint32_t critical = 0;
  std::uint64_t critical_exec = 0;
  bool have_epoch = false;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    const Lane& lane = lanes_[s];
    if (lane.recorded == 0) continue;
    const WorkerSlot& w = lane.ring[(lane.recorded - 1) & mask_];
    if (w.epoch != e.epoch) continue;
    if (!have_epoch || w.exec_ns > critical_exec) {
      critical = s;
      critical_exec = w.exec_ns;
      have_epoch = true;
    }
  }
  if (have_epoch) ++coord_shards_[critical].critical_epochs;

  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    CoordShard& cs = coord_shards_[s];
    cs.handoffs_out += pending_per_src_[s];
    if (cache_sampler_) {
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      cache_sampler_(s, hits, misses);
      cs.cache_hits = hits;
      cs.cache_misses = misses;
    }
    ShardEpochSlot& ss = cs.ring[cs.recorded & mask_];
    ss.epoch = e.epoch;
    ss.handoffs_out = cs.handoffs_out;
    ss.cache_hits = cs.cache_hits;
    ss.cache_misses = cs.cache_misses;
    ++cs.recorded;
    pending_per_src_[s] = 0;
  }
  pending_drain_ns_ = 0;
  pending_handoffs_ = 0;
}

void SyncProfiler::record_exchange(std::uint64_t drain_ns,
                                   std::uint64_t handoffs,
                                   const std::uint64_t* per_src,
                                   std::uint32_t n) noexcept {
  pending_drain_ns_ = drain_ns;
  pending_handoffs_ = handoffs;
  const std::uint32_t k =
      std::min(n, static_cast<std::uint32_t>(pending_per_src_.size()));
  for (std::uint32_t s = 0; s < k; ++s) pending_per_src_[s] = per_src[s];
}

void SyncProfiler::record_batch(std::size_t envelopes) noexcept {
  ++batches_;
  batch_sizes_.add(static_cast<double>(envelopes));
}

void SyncProfiler::record_serial(std::uint64_t exec_ns,
                                 std::uint64_t events) noexcept {
  serial_exec_ns_ += exec_ns;
  serial_events_ += events;
}

std::vector<SyncProfiler::WorkerSlot> SyncProfiler::worker_snapshot(
    std::uint32_t shard) const {
  const Lane& lane = lanes_[shard];
  std::vector<WorkerSlot> out;
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = lane.recorded > cap ? lane.recorded - cap : 0;
  out.reserve(static_cast<std::size_t>(lane.recorded - start));
  for (std::uint64_t i = start; i < lane.recorded; ++i) {
    out.push_back(lane.ring[i & mask_]);
  }
  return out;
}

std::vector<SyncProfiler::CoordSlot> SyncProfiler::coordinator_snapshot()
    const {
  std::vector<CoordSlot> out;
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = coord_count_ > cap ? coord_count_ - cap : 0;
  out.reserve(static_cast<std::size_t>(coord_count_ - start));
  for (std::uint64_t i = start; i < coord_count_; ++i) {
    out.push_back(coord_ring_[i & mask_]);
  }
  return out;
}

std::vector<SyncProfiler::ShardEpochSlot> SyncProfiler::shard_epoch_snapshot(
    std::uint32_t shard) const {
  const CoordShard& cs = coord_shards_[shard];
  std::vector<ShardEpochSlot> out;
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = cs.recorded > cap ? cs.recorded - cap : 0;
  out.reserve(static_cast<std::size_t>(cs.recorded - start));
  for (std::uint64_t i = start; i < cs.recorded; ++i) {
    out.push_back(cs.ring[i & mask_]);
  }
  return out;
}

SyncProfiler::Report SyncProfiler::report() const {
  Report rep;
  rep.shards = shard_count();
  if (coord_count_ == 0 && (serial_exec_ns_ > 0 || serial_events_ > 0)) {
    // Serial lane: one shard, one execution phase, busy by construction.
    rep.serial = true;
    rep.shards = 1;
    rep.epochs = 0;
    rep.wall_s = static_cast<double>(serial_exec_ns_) * 1e-9;
    Report::Lane lane;
    lane.shard = 0;
    lane.events = serial_events_;
    lane.exec_ns = serial_exec_ns_;
    lane.busy_fraction = 1.0;
    rep.lanes.push_back(lane);
    return rep;
  }
  rep.epochs = coord_count_;
  rep.widened = widened_;
  rep.idle_jumps = idle_jumps_;
  rep.handoffs = handoffs_;
  rep.delivery_batches = batches_;
  rep.coord_wait_ns = coord_wait_ns_;
  rep.coord_parks = coord_parks_;
  rep.drain_ns = drain_ns_;
  rep.coord_wait_p50_us = coord_wait_s_.percentile(50.0) * 1e6;
  rep.coord_wait_p99_us = coord_wait_s_.percentile(99.0) * 1e6;
  if (!batch_sizes_.empty()) {
    rep.batch_p50 = batch_sizes_.percentile(50.0);
    rep.batch_max = batch_sizes_.max();
  }
  std::uint64_t first_ns = 0;
  std::uint64_t last_ns = 0;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    const Lane& lane = lanes_[s];
    const CoordShard& cs = coord_shards_[s];
    Report::Lane out;
    out.shard = s;
    out.epochs = lane.recorded;
    out.events = lane.events;
    out.exec_ns = lane.exec_ns;
    out.wait_ns = lane.wait_ns;
    out.parks = lane.parks;
    out.critical_epochs = cs.critical_epochs;
    out.handoffs_out = cs.handoffs_out;
    out.cache_hits = cs.cache_hits;
    out.cache_misses = cs.cache_misses;
    const std::uint64_t span = lane.last_ns - lane.first_ns;
    out.busy_fraction = span > 0 ? static_cast<double>(lane.exec_ns) /
                                       static_cast<double>(span)
                                 : 0.0;
    out.wait_p50_us = lane.wait_s.percentile(50.0) * 1e6;
    out.wait_p99_us = lane.wait_s.percentile(99.0) * 1e6;
    rep.lanes.push_back(out);
    if (lane.recorded > 0) {
      if (first_ns == 0 || lane.first_ns < first_ns) first_ns = lane.first_ns;
      if (lane.last_ns > last_ns) last_ns = lane.last_ns;
    }
  }
  if (last_ns > first_ns) {
    rep.wall_s = static_cast<double>(last_ns - first_ns) * 1e-9;
  }
  return rep;
}

std::string SyncProfiler::Report::to_table() const {
  std::ostringstream out;
  out << std::fixed;
  if (serial) {
    const Lane& lane = lanes.front();
    out << "sync profile: serial engine, " << lane.events << " events in "
        << std::setprecision(3) << wall_s << " s (no epochs, busy 1.000)\n";
    return out.str();
  }
  out << "sync profile: " << shards << " shards, " << epochs << " epochs in "
      << std::setprecision(3) << wall_s << " s wall — " << widened
      << " widened, " << idle_jumps << " idle jumps, " << handoffs
      << " handoffs in " << delivery_batches << " delivery runs (p50 "
      << std::setprecision(1) << batch_p50 << ", max " << std::setprecision(0)
      << batch_max << ")\n";
  out << "  coordinator: wait " << std::setprecision(3)
      << static_cast<double>(coord_wait_ns) * 1e-9 << " s (p50/p99 "
      << std::setprecision(1) << coord_wait_p50_us << "/" << coord_wait_p99_us
      << " us, " << coord_parks << " parks), drain " << std::setprecision(3)
      << static_cast<double>(drain_ns) * 1e-9 << " s\n";
  out << "  shard   busy    events      exec_s    wait_s  wait_p99_us   "
         "parks  critical  handoffs  cache_hit\n";
  for (const Lane& lane : lanes) {
    out << "  " << std::setw(5) << lane.shard << std::setw(7)
        << std::setprecision(3) << lane.busy_fraction << std::setw(10)
        << lane.events << std::setw(12) << std::setprecision(3)
        << static_cast<double>(lane.exec_ns) * 1e-9 << std::setw(10)
        << static_cast<double>(lane.wait_ns) * 1e-9 << std::setw(13)
        << std::setprecision(1) << lane.wait_p99_us << std::setw(8)
        << lane.parks << std::setw(10) << lane.critical_epochs << std::setw(10)
        << lane.handoffs_out << std::setw(11) << std::setprecision(4)
        << lane.cache_hit_rate() << "\n";
  }
  return out.str();
}

void SyncProfiler::Report::write_json(std::ostream& out) const {
  out << "{\"serial\":" << (serial ? "true" : "false")
      << ",\"shards\":" << shards << ",\"epochs\":" << epochs
      << ",\"widened\":" << widened << ",\"idle_jumps\":" << idle_jumps
      << ",\"handoffs\":" << handoffs
      << ",\"delivery_batches\":" << delivery_batches
      << ",\"wall_s\":" << wall_s << ",\"coordinator\":{\"wait_ns\":"
      << coord_wait_ns << ",\"parks\":" << coord_parks
      << ",\"drain_ns\":" << drain_ns
      << ",\"wait_p50_us\":" << coord_wait_p50_us
      << ",\"wait_p99_us\":" << coord_wait_p99_us
      << "},\"batch_size\":{\"p50\":" << batch_p50 << ",\"max\":" << batch_max
      << "},\"lanes\":[";
  bool first = true;
  for (const Lane& lane : lanes) {
    if (!first) out << ',';
    first = false;
    out << "{\"shard\":" << lane.shard << ",\"epochs\":" << lane.epochs
        << ",\"events\":" << lane.events << ",\"exec_ns\":" << lane.exec_ns
        << ",\"wait_ns\":" << lane.wait_ns << ",\"parks\":" << lane.parks
        << ",\"critical_epochs\":" << lane.critical_epochs
        << ",\"handoffs_out\":" << lane.handoffs_out
        << ",\"cache_hits\":" << lane.cache_hits
        << ",\"cache_misses\":" << lane.cache_misses
        << ",\"cache_hit_rate\":" << lane.cache_hit_rate()
        << ",\"busy_fraction\":" << lane.busy_fraction
        << ",\"wait_p50_us\":" << lane.wait_p50_us
        << ",\"wait_p99_us\":" << lane.wait_p99_us << "}";
  }
  out << "]}";
}

void register_sync_metrics(const SyncProfiler& profiler,
                           MetricsRegistry& registry) {
  auto gauge = [&registry, &profiler](const std::string& name,
                                      auto getter) {
    registry.add_gauge("engine/sync/" + name, [&profiler, getter] {
      return static_cast<double>(getter(profiler.report()));
    });
  };
  // The report is rebuilt per read — snapshot cadence, not packet cadence.
  gauge("epochs", [](const SyncProfiler::Report& r) { return r.epochs; });
  gauge("widened", [](const SyncProfiler::Report& r) { return r.widened; });
  gauge("idle_jumps",
        [](const SyncProfiler::Report& r) { return r.idle_jumps; });
  gauge("handoffs", [](const SyncProfiler::Report& r) { return r.handoffs; });
  gauge("delivery_batches",
        [](const SyncProfiler::Report& r) { return r.delivery_batches; });
  for (std::uint32_t s = 0; s < profiler.shard_count(); ++s) {
    const std::string prefix =
        "engine/sync/shard" + std::to_string(s) + "/";
    registry.add_gauge(prefix + "busy_fraction", [&profiler, s] {
      const auto rep = profiler.report();
      return s < rep.lanes.size() ? rep.lanes[s].busy_fraction : 0.0;
    });
    registry.add_gauge(prefix + "events", [&profiler, s] {
      const auto rep = profiler.report();
      return s < rep.lanes.size()
                 ? static_cast<double>(rep.lanes[s].events)
                 : 0.0;
    });
    registry.add_gauge(prefix + "wait_ns", [&profiler, s] {
      const auto rep = profiler.report();
      return s < rep.lanes.size()
                 ? static_cast<double>(rep.lanes[s].wait_ns)
                 : 0.0;
    });
  }
}

}  // namespace mvpn::obs
