#include "obs/sinks.hpp"

#include <ostream>
#include <set>
#include <string>

#include "obs/sync_profiler.hpp"
#include "sim/time.hpp"

namespace mvpn::obs {

namespace {

std::string node_name(const NodeNamer& namer, std::uint32_t id) {
  if (namer) {
    std::string n = namer(id);
    if (!n.empty()) return n;
  }
  return "node" + std::to_string(id);
}

/// The category a given event type belongs to (for export labeling).
Category category_of(EventType t) noexcept {
  switch (t) {
    case EventType::kEnqueue:
    case EventType::kDequeue:
    case EventType::kDrop:
      return Category::kQueue;
    case EventType::kLinkTx:
    case EventType::kDeliver:
      return Category::kLink;
    case EventType::kLabelPush:
    case EventType::kLabelSwap:
    case EventType::kLabelPop:
      return Category::kMpls;
    case EventType::kVrfDeliver:
    case EventType::kLocalDeliver:
      return Category::kVpn;
    case EventType::kLspUp:
    case EventType::kLspDown:
    case EventType::kLspReroute:
    case EventType::kLdpMapping:
    case EventType::kLdpAnnounce:
    case EventType::kLspSignal:
      return Category::kSignaling;
    case EventType::kOamProbe:
    case EventType::kOamReply:
    case EventType::kOamTimeout:
      return Category::kOam;
    case EventType::kFastpathResolve:
    case EventType::kFastpathInvalidate:
      return Category::kFastpath;
  }
  return Category::kQueue;
}

void write_common_fields(std::ostream& out, const TraceEvent& ev) {
  if (ev.packet_id != 0) out << ",\"packet\":" << ev.packet_id;
  if (ev.bytes != 0) out << ",\"bytes\":" << ev.bytes;
  if (ev.a != 0) out << ",\"a\":" << ev.a;
  if (ev.b != 0) out << ",\"b\":" << ev.b;
  out << ",\"cls\":" << static_cast<unsigned>(ev.cls);
  if (ev.aux != 0) out << ",\"band\":" << static_cast<unsigned>(ev.aux);
}

}  // namespace

void write_jsonl(const FlightRecorder& rec, std::ostream& out,
                 const NodeNamer& namer) {
  for (const TraceEvent& ev : rec.snapshot()) {
    out << "{\"t_s\":" << sim::to_seconds(ev.at) << ",\"type\":\""
        << to_string(ev.type) << "\",\"node\":\""
        << node_name(namer, ev.node) << '"';
    if (ev.type == EventType::kDrop) {
      out << ",\"reason\":\"" << to_string(ev.reason) << '"';
    }
    write_common_fields(out, ev);
    out << "}\n";
  }
}

void write_chrome_trace(const FlightRecorder& rec, std::ostream& out,
                        const NodeNamer& namer) {
  write_chrome_trace(rec, out, namer, nullptr);
}

void write_chrome_trace(const FlightRecorder& rec, std::ostream& out,
                        const NodeNamer& namer, const SyncProfiler* sync) {
  const auto events = rec.snapshot();
  out << "{\"traceEvents\":[\n";

  // Thread-name metadata so the timeline shows router names, not raw tids.
  std::set<std::uint32_t> nodes;
  for (const TraceEvent& ev : events) nodes.insert(ev.node);
  bool first = true;
  for (std::uint32_t id : nodes) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
        << ",\"args\":{\"name\":\"" << node_name(namer, id) << "\"}}";
  }

  for (const TraceEvent& ev : events) {
    if (!first) out << ",\n";
    first = false;
    // Instant event, thread scope; ts is microseconds in trace_event.
    out << "{\"name\":\"" << to_string(ev.type) << "\",\"ph\":\"i\",\"s\":\"t\""
        << ",\"pid\":1,\"tid\":" << ev.node
        << ",\"ts\":" << static_cast<double>(ev.at) / 1e3 << ",\"cat\":\""
        << to_string(category_of(ev.type)) << "\",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* k, auto v) {
      if (!first_arg) out << ',';
      first_arg = false;
      out << '"' << k << "\":" << v;
    };
    if (ev.type == EventType::kDrop) {
      if (!first_arg) out << ',';
      first_arg = false;
      out << "\"reason\":\"" << to_string(ev.reason) << '"';
    }
    if (ev.packet_id != 0) arg("packet", ev.packet_id);
    if (ev.bytes != 0) arg("bytes", ev.bytes);
    if (ev.a != 0) arg("a", ev.a);
    if (ev.b != 0) arg("b", ev.b);
    arg("cls", static_cast<unsigned>(ev.cls));
    if (ev.aux != 0) arg("band", static_cast<unsigned>(ev.aux));
    out << "}}";
  }

  // Engine lanes (pid 2): per-worker epoch durations + coordinator
  // instants, on the same sim-time axis as the packet events above.
  // A profiled run that completed in zero windows (or a serial run's
  // shape-compatible profile) has no epoch slots at all — emitting the
  // pid-2 process/thread metadata anyway would paint an empty "engine"
  // process with orphaned lane names, so the whole block is skipped
  // unless at least one worker or coordinator slot was retained.
  if (sync != nullptr) {
    const std::uint32_t shards = sync->shard_count();
    bool any_slots = !sync->coordinator_snapshot().empty();
    for (std::uint32_t s = 0; !any_slots && s < shards; ++s) {
      any_slots = !sync->worker_snapshot(s).empty();
    }
    if (!any_slots) {
      out << "\n]}\n";
      return;
    }
    auto emit = [&](const std::string& json) {
      if (!first) out << ",\n";
      first = false;
      out << json;
    };
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
         "\"args\":{\"name\":\"engine\"}}");
    for (std::uint32_t s = 0; s < shards; ++s) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" +
           std::to_string(s) + ",\"args\":{\"name\":\"shard" +
           std::to_string(s) + " worker\"}}");
    }
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" +
         std::to_string(shards) + ",\"args\":{\"name\":\"coordinator\"}}");

    for (std::uint32_t s = 0; s < shards; ++s) {
      for (const SyncProfiler::WorkerSlot& w : sync->worker_snapshot(s)) {
        if (!first) out << ",\n";
        first = false;
        out << "{\"name\":\"epoch\",\"ph\":\"X\",\"pid\":2,\"tid\":" << s
            << ",\"ts\":" << static_cast<double>(w.window_start) / 1e3
            << ",\"dur\":"
            << static_cast<double>(w.window_end - w.window_start) / 1e3
            << ",\"cat\":\"engine\",\"args\":{\"epoch\":" << w.epoch
            << ",\"events\":" << w.events << ",\"wait_ns\":" << w.wait_ns
            << ",\"exec_ns\":" << w.exec_ns
            << ",\"parked\":" << static_cast<unsigned>(w.parked) << "}}";
      }
    }
    for (const SyncProfiler::CoordSlot& c : sync->coordinator_snapshot()) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"name\":\"barrier\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,"
             "\"tid\":"
          << shards << ",\"ts\":" << static_cast<double>(c.window_end) / 1e3
          << ",\"cat\":\"engine\",\"args\":{\"epoch\":" << c.epoch
          << ",\"wait_ns\":" << c.wait_ns << ",\"drain_ns\":" << c.drain_ns
          << ",\"handoffs\":" << c.handoffs
          << ",\"parked\":" << static_cast<unsigned>(c.parked)
          << ",\"widened\":" << static_cast<unsigned>(c.widened)
          << ",\"idle_jump\":" << static_cast<unsigned>(c.idle_jump) << "}}";
    }
  }
  out << "\n]}\n";
}

}  // namespace mvpn::obs
