#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "stats/log_histogram.hpp"
#include "stats/table.hpp"

namespace mvpn::obs {

/// Sentinel for "this instant was never observed".
inline constexpr sim::SimTime kNoTime = -1;

/// One hop of a packet's life: the egress queue + wire of a single link
/// direction. Times come straight from the flight-recorder events; a field
/// stays kNoTime when the corresponding event was not captured (category
/// masked, or lost to ring wraparound).
struct HopSpan {
  std::uint32_t node = 0;  ///< transmitting node
  std::uint32_t link = 0;
  std::uint8_t band = 0;   ///< egress queue band (from the enqueue event)
  sim::SimTime enqueue_at = kNoTime;
  sim::SimTime dequeue_at = kNoTime;
  sim::SimTime tx_at = kNoTime;
  sim::SimTime deliver_at = kNoTime;

  [[nodiscard]] bool queued() const noexcept {
    return enqueue_at != kNoTime && dequeue_at != kNoTime;
  }
  [[nodiscard]] sim::SimTime queue_wait() const noexcept {
    return queued() ? dequeue_at - enqueue_at : 0;
  }
  [[nodiscard]] bool on_wire() const noexcept {
    return tx_at != kNoTime && deliver_at != kNoTime;
  }
  [[nodiscard]] sim::SimTime wire_time() const noexcept {
    return on_wire() ? deliver_at - tx_at : 0;
  }
};

/// A packet's reconstructed lifecycle: ordered hops plus terminal fate.
struct PacketSpan {
  std::uint64_t packet_id = 0;
  std::uint8_t cls = 0;
  bool dropped = false;
  bool completed = false;  ///< saw a VRF/local delivery
  DropReason drop_reason = DropReason::kNone;
  sim::SimTime first_at = kNoTime;
  sim::SimTime last_at = kNoTime;
  std::vector<HopSpan> hops;
};

/// Control-plane timeline of one RSVP-TE LSP: signaling, first up, and
/// every reroute episode (reroute trigger -> re-signaled up or failure).
struct LspTimeline {
  std::uint32_t lsp = 0;
  sim::SimTime signaled_at = kNoTime;
  sim::SimTime first_up_at = kNoTime;

  struct Episode {
    sim::SimTime reroute_at = kNoTime;   ///< head end reacted to the failure
    sim::SimTime restored_at = kNoTime;  ///< re-signaled kLspUp
    sim::SimTime failed_at = kNoTime;    ///< kLspDown instead (gave up)
    std::uint32_t failed_link = 0;
  };
  std::vector<Episode> episodes;

  [[nodiscard]] sim::SimTime setup_latency() const noexcept {
    return (signaled_at != kNoTime && first_up_at != kNoTime)
               ? first_up_at - signaled_at
               : kNoTime;
  }
};

/// Everything analyze_spans() folds out of one event stream.
struct SpanAnalysis {
  std::vector<PacketSpan> packets;
  std::vector<LspTimeline> lsps;

  /// LDP: kLdpAnnounce (FEC owner) -> each kLdpMapping for that owner.
  stats::LogHistogram ldp_mapping_s;
  std::uint64_t ldp_mappings = 0;
  std::uint64_t ldp_unanchored = 0;  ///< mappings with no announce seen

  /// RSVP-TE: kLspSignal -> first kLspUp per LSP.
  stats::LogHistogram lsp_setup_s;
  /// Link-failure convergence: kLspReroute -> re-signaled kLspUp.
  stats::LogHistogram reroute_convergence_s;
  std::uint64_t reroutes = 0;
  std::uint64_t reroutes_failed = 0;

  [[nodiscard]] std::uint64_t completed_packets() const noexcept {
    std::uint64_t n = 0;
    for (const auto& p : packets) n += p.completed ? 1 : 0;
    return n;
  }
};

/// Fold a flight-recorder event stream (oldest first, as produced by
/// FlightRecorder::snapshot()) into per-packet spans and per-LSP timelines.
[[nodiscard]] SpanAnalysis analyze_spans(const std::vector<TraceEvent>& events);
[[nodiscard]] SpanAnalysis analyze_spans(const FlightRecorder& recorder);

/// Chrome trace_event JSON with duration ("X") spans: per packet-hop a
/// "queued" span (enqueue -> dequeue) and a "wire" span (tx -> deliver) on
/// the transmitting node's track, plus per-LSP "setup" / "outage" spans on
/// a control-plane track. Complements write_chrome_trace()'s instant view.
void write_span_chrome_trace(const SpanAnalysis& analysis, std::ostream& out,
                             const NodeNamer& namer = {});

/// Control-plane latency summary (LDP mapping, LSP setup, reroute
/// convergence), one row per signaling stage.
[[nodiscard]] stats::Table control_plane_table(const SpanAnalysis& analysis);

/// Machine-readable summary (one JSON object) for bench reports.
void write_span_summary_json(const SpanAnalysis& analysis, std::ostream& out);

}  // namespace mvpn::obs
