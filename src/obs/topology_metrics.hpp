#pragma once

#include "net/shard_runtime.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace mvpn::obs {

/// Walk a built topology and register every interesting stats source with
/// the registry under hierarchical names:
///
///   node/<name>/router/<counter>          Router data-plane counters
///   node/<name>/if<idx>/{rx,tx}/...       per-interface packet/byte pairs
///   node/<name>/vrf/<vrf>/routes          per-VRF route-table size
///   link/<id>/<from>-><to>/tx/...         per-direction wire transmissions
///   link/<id>/<from>-><to>/down_drops/... drops while the link was down
///   link/<id>/<from>-><to>/queue/...      egress-queue drops/enqueues/depth
///                                         (+ band<b>/drops for multi-band
///                                          queues, red early/forced drops)
///
/// Queue metrics are registered as gauges that re-resolve the queue object
/// every snapshot, so set_queue_from() after registration stays safe.
/// Call once the topology shape is final; node/link lifetimes must cover
/// every later snapshot.
void register_topology_metrics(net::Topology& topo, MetricsRegistry& registry);

/// NodeNamer (for the trace sinks) backed by the topology's node names.
[[nodiscard]] NodeNamer topology_node_namer(const net::Topology& topo);

/// Register the parallel engine's counters so --metrics snapshots carry
/// engine state next to topology state:
///
///   engine/shards, engine/lookahead_us
///   engine/windows, engine/widened_windows, engine/idle_jumps
///   engine/handoffs, engine/delivery_batches
///
/// Gauges read the runtime live; snapshots taken as engine global actions
/// (PeriodicSnapshots via add_periodic_action) run between windows, which
/// is the safe instant. The runtime must outlive every later snapshot.
void register_engine_metrics(const net::ShardRuntime& runtime,
                             MetricsRegistry& registry);

}  // namespace mvpn::obs
