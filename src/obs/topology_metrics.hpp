#pragma once

#include "net/shard_runtime.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "routing/bgp.hpp"
#include "routing/igp.hpp"

namespace mvpn::obs {

/// Walk a built topology and register every interesting stats source with
/// the registry under hierarchical names:
///
///   node/<name>/router/<counter>          Router data-plane counters
///   node/<name>/if<idx>/{rx,tx}/...       per-interface packet/byte pairs
///   node/<name>/vrf/<vrf>/routes          per-VRF route-table size
///   link/<id>/<from>-><to>/tx/...         per-direction wire transmissions
///   link/<id>/<from>-><to>/down_drops/... drops while the link was down
///   link/<id>/<from>-><to>/queue/...      egress-queue drops/enqueues/depth
///                                         (+ band<b>/drops for multi-band
///                                          queues, red early/forced drops)
///
/// Queue metrics are registered as gauges that re-resolve the queue object
/// every snapshot, so set_queue_from() after registration stays safe.
/// Call once the topology shape is final; node/link lifetimes must cover
/// every later snapshot.
void register_topology_metrics(net::Topology& topo, MetricsRegistry& registry);

/// NodeNamer (for the trace sinks) backed by the topology's node names.
[[nodiscard]] NodeNamer topology_node_namer(const net::Topology& topo);

/// Register the parallel engine's counters so --metrics snapshots carry
/// engine state next to topology state:
///
///   engine/shards, engine/lookahead_us
///   engine/windows, engine/widened_windows, engine/idle_jumps
///   engine/handoffs, engine/delivery_batches
///
/// Gauges read the runtime live; snapshots taken as engine global actions
/// (PeriodicSnapshots via add_periodic_action) run between windows, which
/// is the safe instant. The runtime must outlive every later snapshot.
void register_engine_metrics(const net::ShardRuntime& runtime,
                             MetricsRegistry& registry);

/// Register the control-plane fastpath counters (opt-in via
/// ObsOptions::control_metrics, same contract as engine_metrics):
///
///   control/messages, control/bytes         all control-plane traffic
///   control/bgp/sessions                    live iBGP sessions
///   control/bgp/{updates,withdraws}         wire messages by type
///   control/bgp/{nlri_enqueued,nlri_packed,superseded,messages_packed,
///                wire_bytes_packed,flushes,update_groups}
///                                           RibOut staging counters
///   control/bgp/{adj_rib_routes,adj_rib_bytes,rt_pool_sets}
///                                           compact RIB occupancy
///   control/spf/{runs,full,incremental,skipped,te_only_installs,
///                edges_relaxed}             SPF work accounting
///
/// Gauges read the protocol objects live; they must outlive every later
/// snapshot.
void register_control_metrics(const routing::ControlPlane& cp,
                              const routing::Bgp& bgp,
                              const routing::Igp& igp,
                              MetricsRegistry& registry);

}  // namespace mvpn::obs
