#pragma once

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace mvpn::obs {

/// Walk a built topology and register every interesting stats source with
/// the registry under hierarchical names:
///
///   node/<name>/router/<counter>          Router data-plane counters
///   node/<name>/if<idx>/{rx,tx}/...       per-interface packet/byte pairs
///   node/<name>/vrf/<vrf>/routes          per-VRF route-table size
///   link/<id>/<from>-><to>/tx/...         per-direction wire transmissions
///   link/<id>/<from>-><to>/down_drops/... drops while the link was down
///   link/<id>/<from>-><to>/queue/...      egress-queue drops/enqueues/depth
///                                         (+ band<b>/drops for multi-band
///                                          queues, red early/forced drops)
///
/// Queue metrics are registered as gauges that re-resolve the queue object
/// every snapshot, so set_queue_from() after registration stays safe.
/// Call once the topology shape is final; node/link lifetimes must cover
/// every later snapshot.
void register_topology_metrics(net::Topology& topo, MetricsRegistry& registry);

/// NodeNamer (for the trace sinks) backed by the topology's node names.
[[nodiscard]] NodeNamer topology_node_namer(const net::Topology& topo);

}  // namespace mvpn::obs
