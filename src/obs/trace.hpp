#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mvpn::obs {

/// Trace categories. Each call site guards its emission with one
/// `enabled(category)` test, so whole subsystems can be silenced at run
/// time (mask) or removed at compile time (MVPN_TRACE_COMPILED_MASK).
enum class Category : std::uint32_t {
  kQueue = 1u << 0,      ///< egress-queue enqueue / dequeue / drop
  kLink = 1u << 1,       ///< wire transmissions and deliveries
  kMpls = 1u << 2,       ///< label push / pop / swap / PHP
  kVpn = 1u << 3,        ///< VRF and local delivery, data-plane drops
  kSignaling = 1u << 4,  ///< LDP mappings, RSVP-TE LSP state
  kOam = 1u << 5,        ///< LSP ping probes / replies / timeouts
  kFastpath = 1u << 6,   ///< flow-cache resolve / stale-entry invalidation
};

inline constexpr std::uint32_t kAllCategories = 0x7Fu;

/// Compile-time category mask: categories absent from it fold every
/// `enabled()` check to constant false, letting the optimizer delete the
/// emission code entirely. Default keeps everything compiled in (runtime
/// mask still gates emission and defaults to off).
#ifndef MVPN_TRACE_COMPILED_MASK
#define MVPN_TRACE_COMPILED_MASK 0xFFFFFFFFu
#endif
inline constexpr std::uint32_t kCompiledTraceMask = MVPN_TRACE_COMPILED_MASK;

[[nodiscard]] const char* to_string(Category c) noexcept;

enum class EventType : std::uint8_t {
  kEnqueue,       ///< packet accepted into an egress queue
  kDequeue,       ///< packet pulled from an egress queue for transmission
  kDrop,          ///< packet lost; `reason` says why, `node`/`a` say where
  kLinkTx,        ///< serialization started on a link direction
  kDeliver,       ///< packet handed to a node's receive()
  kLabelPush,     ///< MPLS imposition (a = VPN label, b = tunnel label or 0)
  kLabelSwap,     ///< LSR swap (a = in label, b = out label)
  kLabelPop,      ///< pop without delivery — penultimate-hop popping
  kVrfDeliver,    ///< VPN label popped into a VRF (a = label, b = VRF id)
  kLocalDeliver,  ///< packet terminated at a router sink (a = VPN id)
  kLspUp,         ///< RSVP-TE LSP signaled up at the head end (a = LSP id)
  kLspDown,       ///< RSVP-TE LSP failed / torn down (a = LSP id)
  kLspReroute,    ///< head-end reroute triggered (a = LSP id, b = link id)
  kLdpMapping,    ///< LDP label mapping accepted (a = label, b = FEC owner)
  kLdpAnnounce,   ///< egress FEC announced into LDP (a = label, b = owner)
  kLspSignal,     ///< RSVP-TE Path signaling started (a = LSP id)
  kOamProbe,      ///< LSP ping probe sent (a = LSP id)
  kOamReply,      ///< LSP ping reply received at the head (a = LSP id)
  kOamTimeout,    ///< LSP ping timed out (a = LSP id)
  kFastpathResolve,     ///< slow-path decision cached (a = flow/label, aux = action)
  kFastpathInvalidate,  ///< stale entry hit, re-resolving (a = flow/label)
};

[[nodiscard]] const char* to_string(EventType t) noexcept;

/// Why a packet died. Shared by queue disciplines (tail/RED/WRED/LLQ),
/// links (down) and the router data plane (lookup misses, TTL, policing).
enum class DropReason : std::uint8_t {
  kNone,
  kTailDrop,     ///< queue at capacity
  kRedEarly,     ///< RED probabilistic early drop
  kRedForced,    ///< RED average beyond 2*max_th or FIFO full
  kEfPoliced,    ///< LLQ priority-band token bucket exceeded
  kLinkDown,     ///< link administratively/failure down
  kTtlExpired,   ///< IP TTL or MPLS TTL hit zero
  kNoRoute,      ///< FIB/VRF lookup miss
  kLabelMiss,    ///< no LFIB entry (or PVC switch miss)
  kNoTunnel,     ///< no LSP toward the egress PE
  kPoliced,      ///< edge policer red verdict
  kEspRejected,  ///< ESP decapsulation / replay failure
};

[[nodiscard]] const char* to_string(DropReason r) noexcept;

/// One structured trace record. Fixed-size POD — no strings, no heap —
/// so recording is a bounds-masked array store. Field meaning varies per
/// EventType (see the enum comments); unused fields stay zero.
struct TraceEvent {
  sim::SimTime at = 0;          ///< stamped by FlightRecorder::record()
  std::uint64_t packet_id = 0;  ///< 0 for non-packet (signaling) events
  std::uint32_t node = 0;       ///< where it happened
  std::uint32_t a = 0;          ///< type-specific (label / LSP id / ...)
  std::uint32_t b = 0;          ///< type-specific (label / VRF / link id)
  std::uint32_t bytes = 0;      ///< wire size for packet events
  EventType type = EventType::kDrop;
  DropReason reason = DropReason::kNone;
  std::uint8_t cls = 0;  ///< visible 3-bit class (EXP if labeled, DSCP>>3)
  std::uint8_t aux = 0;  ///< queue band or other small discriminator
};

/// Simulator-wide flight recorder: a fixed-capacity ring of TraceEvents.
///
/// The contract every hot path relies on:
///  * disabled (the default) costs one mask load + predictable branch per
///    call site — `enabled()` is inline and the mask is 0;
///  * enabled costs one clock read and one array store per event — the
///    ring never allocates after set_capacity();
///  * when the ring wraps, the oldest events are overwritten and counted
///    in overwritten() — recording never fails and never grows memory.
class FlightRecorder {
 public:
  /// `clock` stamps event times. Pass nullptr for a permanently-disabled
  /// recorder (enable() becomes a no-op).
  explicit FlightRecorder(const sim::Scheduler* clock,
                          std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  /// Turn on the given categories (ANDed with the compile-time mask).
  void enable(std::uint32_t categories = kAllCategories) noexcept {
    if (clock_ != nullptr) mask_ = categories & kCompiledTraceMask;
  }
  void disable() noexcept { mask_ = 0; }

  [[nodiscard]] bool enabled(Category c) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(c) & kCompiledTraceMask) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const noexcept { return mask_; }

  /// Resize the ring (rounded up to a power of two) and clear it.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Append `ev` (timestamped now). Callers are expected to have checked
  /// enabled() — record() itself never re-checks, keeping the hot path to
  /// exactly one branch when tracing is off.
  void record(TraceEvent ev) noexcept {
    ev.at = clock_->now();
    ring_[static_cast<std::size_t>(head_) & index_mask_] = ev;
    ++head_;
  }

  /// Append a pre-stamped event, keeping `ev.at` as-is. This is the merge
  /// path: per-shard recorders stamp with their own shard clocks, and the
  /// coordinator folds their snapshots into the master recorder in global
  /// (at, shard) order — re-stamping with the master clock would collapse
  /// every merged event onto the merge instant.
  void append_stamped(const TraceEvent& ev) noexcept {
    ring_[static_cast<std::size_t>(head_) & index_mask_] = ev;
    ++head_;
  }

  /// Events ever recorded (monotonic, includes overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return head_; }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear() noexcept { head_ = 0; }

 private:
  const sim::Scheduler* clock_;
  std::uint32_t mask_ = 0;  ///< 0 = disabled (the default)
  std::uint64_t head_ = 0;  ///< next write position (monotonic)
  std::size_t index_mask_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Process-wide permanently-disabled recorder (clock-less, so enable() is
/// a no-op). Lets components hold a never-null recorder pointer before
/// they are wired to a topology — the disabled-path cost is identical.
[[nodiscard]] FlightRecorder& disabled_recorder() noexcept;

}  // namespace mvpn::obs
