#include "obs/trace.hpp"

namespace mvpn::obs {

const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kQueue: return "queue";
    case Category::kLink: return "link";
    case Category::kMpls: return "mpls";
    case Category::kVpn: return "vpn";
    case Category::kSignaling: return "signaling";
    case Category::kOam: return "oam";
    case Category::kFastpath: return "fastpath";
  }
  return "?";
}

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kEnqueue: return "enqueue";
    case EventType::kDequeue: return "dequeue";
    case EventType::kDrop: return "drop";
    case EventType::kLinkTx: return "link_tx";
    case EventType::kDeliver: return "deliver";
    case EventType::kLabelPush: return "label_push";
    case EventType::kLabelSwap: return "label_swap";
    case EventType::kLabelPop: return "label_pop";
    case EventType::kVrfDeliver: return "vrf_deliver";
    case EventType::kLocalDeliver: return "local_deliver";
    case EventType::kLspUp: return "lsp_up";
    case EventType::kLspDown: return "lsp_down";
    case EventType::kLspReroute: return "lsp_reroute";
    case EventType::kLdpMapping: return "ldp_mapping";
    case EventType::kLdpAnnounce: return "ldp_announce";
    case EventType::kLspSignal: return "lsp_signal";
    case EventType::kOamProbe: return "oam_probe";
    case EventType::kOamReply: return "oam_reply";
    case EventType::kOamTimeout: return "oam_timeout";
    case EventType::kFastpathResolve: return "fastpath_resolve";
    case EventType::kFastpathInvalidate: return "fastpath_invalidate";
  }
  return "?";
}

const char* to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kTailDrop: return "taildrop";
    case DropReason::kRedEarly: return "red_early";
    case DropReason::kRedForced: return "red_forced";
    case DropReason::kEfPoliced: return "ef_policed";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kLabelMiss: return "label_miss";
    case DropReason::kNoTunnel: return "no_tunnel";
    case DropReason::kPoliced: return "policed";
    case DropReason::kEspRejected: return "esp_rejected";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(const sim::Scheduler* clock,
                               std::size_t capacity)
    : clock_(clock) {
  set_capacity(capacity);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  ring_.assign(cap, TraceEvent{});
  index_mask_ = cap - 1;
  head_ = 0;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(first + i) & index_mask_]);
  }
  return out;
}

FlightRecorder& disabled_recorder() noexcept {
  static FlightRecorder rec(nullptr, 1);
  return rec;
}

}  // namespace mvpn::obs
