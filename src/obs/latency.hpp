#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/sinks.hpp"
#include "sim/time.hpp"
#include "stats/log_histogram.hpp"
#include "stats/table.hpp"

namespace mvpn::obs {

class MetricsRegistry;

/// Names a 3-bit traffic class (EXP / class-selector bits) for reports.
using ClassNamer = std::function<std::string(std::uint8_t)>;

/// Aggregates the per-packet delay anatomy the data plane stamps
/// (net::DelayAnatomy) into per-hop, per-band and per-class accounting:
/// where, along the path, does each class's end-to-end delay come from?
///
/// Lives in the obs layer, so it speaks raw ids (node / link / direction /
/// band / class) and never includes net headers; net::Link and vpn::Router
/// feed it through the pointer installed with
/// net::Topology::set_latency_collector(). All distributions are
/// bounded-memory LogHistograms — attaching the collector never makes
/// memory grow with packet count.
///
/// A "hop" is one link direction (link id + 0/1 for the A->B / B->A side),
/// i.e. one egress queue + transmitter, attributed to the sending node.
class LatencyCollector {
 public:
  static constexpr std::size_t kClassCount = 8;  // 3-bit EXP / CS space
  static constexpr std::size_t kBandCount = 8;

  struct BandWait {
    std::uint64_t packets = 0;      ///< dequeues that had waited
    sim::SimTime wait = 0;          ///< total queueing time in the band
  };

  /// One link direction, attributed to the transmitting node.
  struct Hop {
    std::uint32_t node = 0;         ///< sender
    std::uint32_t link = 0;
    std::uint8_t dir = 0;           ///< 0: A->B, 1: B->A
    bool seen = false;
    std::uint64_t packets = 0;      ///< transmissions started here
    std::uint64_t queued = 0;       ///< of which waited in the egress queue
    sim::SimTime queue = 0;         ///< total queueing time
    sim::SimTime tx = 0;            ///< total serialization time
    sim::SimTime prop = 0;          ///< total propagation time
    std::array<BandWait, kBandCount> bands{};         ///< queue wait by band
    std::array<sim::SimTime, kClassCount> queue_by_class{};

    [[nodiscard]] sim::SimTime total() const noexcept {
      return queue + tx + prop;
    }
  };

  /// Time a node spent holding packets outside link queues (shapers,
  /// crypto, lookup charges), attributed per sojourn interval.
  struct NodeProcessing {
    std::uint32_t node = 0;
    bool seen = false;
    std::uint64_t intervals = 0;
    sim::SimTime proc = 0;
  };

  /// End-to-end decomposition for one delivered traffic class.
  struct ClassDelivery {
    std::uint64_t packets = 0;
    sim::SimTime queue = 0;
    sim::SimTime tx = 0;
    sim::SimTime prop = 0;
    sim::SimTime proc = 0;
    sim::SimTime total = 0;
    stats::LogHistogram e2e_s;      ///< end-to-end delay (seconds)
    stats::LogHistogram queue_s;    ///< per-packet total queueing (seconds)
  };

  /// --- feeding (called from the data plane) ------------------------------
  void record_queue(std::uint32_t node, std::uint32_t link, std::uint8_t dir,
                    std::uint8_t band, std::uint8_t cls, sim::SimTime wait);
  void record_tx(std::uint32_t node, std::uint32_t link, std::uint8_t dir,
                 sim::SimTime tx, sim::SimTime prop);
  void record_processing(std::uint32_t node, sim::SimTime dt);
  void record_delivery(std::uint8_t cls, sim::SimTime queue, sim::SimTime tx,
                       sim::SimTime prop, sim::SimTime proc);

  /// --- sharded runs -------------------------------------------------------
  /// Fold another collector's accounting into this one. All sums and
  /// counters are integers (SimTime / packet counts), so merging K
  /// per-shard collectors in shard order reproduces the serial totals
  /// exactly; only the embedded LogHistogram float moment sums can differ
  /// in final ulps (never in bucket counts). Histogram geometries must
  /// match (both default-constructed here).
  void merge_from(const LatencyCollector& other);
  /// Drop all accounting (the master collector rebuilds from per-shard
  /// collectors before every snapshot).
  void reset();

  /// --- reading -----------------------------------------------------------
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Hops that carried at least one packet, ordered by (link, dir).
  [[nodiscard]] std::vector<const Hop*> active_hops() const;
  [[nodiscard]] std::vector<const NodeProcessing*> active_nodes() const;
  /// Per-class decomposition; null until the class delivers a packet.
  [[nodiscard]] const ClassDelivery* class_delivery(std::uint8_t cls) const {
    return cls < kClassCount ? classes_[cls].get() : nullptr;
  }

  /// Per-hop table: where queueing/serialization/propagation time is spent,
  /// with per-band queue-wait sub-rows for multi-band hops.
  [[nodiscard]] stats::Table hop_table(const NodeNamer& node_namer = {},
                                       const ClassNamer& cls_namer = {}) const;
  /// Per-class delay-budget table: component shares of end-to-end delay.
  [[nodiscard]] stats::Table class_table(
      const ClassNamer& cls_namer = {}) const;

  /// Machine-readable dump of everything above (one JSON object).
  void write_json(std::ostream& out, const NodeNamer& node_namer = {},
                  const ClassNamer& cls_namer = {}) const;

 private:
  Hop& hop_slot(std::uint32_t node, std::uint32_t link, std::uint8_t dir);
  NodeProcessing& node_slot(std::uint32_t node);
  ClassDelivery& class_slot(std::uint8_t cls);

  std::vector<Hop> hops_;             // indexed link*2 + dir, grown lazily
  std::vector<NodeProcessing> proc_;  // indexed by node id, grown lazily
  std::array<std::unique_ptr<ClassDelivery>, kClassCount> classes_{};
  std::uint64_t delivered_ = 0;
};

/// Register the collector's per-class figures as registry gauges under
/// "latency/class/<name>/..." plus aggregate component shares under
/// "latency/total/...". Safe to call before traffic runs: gauges read live.
void register_latency_metrics(const LatencyCollector& collector,
                              MetricsRegistry& registry,
                              const ClassNamer& cls_namer = {});

}  // namespace mvpn::obs
