#include "obs/latency.hpp"

#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace mvpn::obs {

namespace {

std::string default_node_name(std::uint32_t node) {
  return "node" + std::to_string(node);
}

std::string default_class_name(std::uint8_t cls) {
  return "cls" + std::to_string(cls);
}

std::string name_node(const NodeNamer& namer, std::uint32_t node) {
  return namer ? namer(node) : default_node_name(node);
}

std::string name_class(const ClassNamer& namer, std::uint8_t cls) {
  return namer ? namer(cls) : default_class_name(cls);
}

double ms(sim::SimTime t) { return sim::to_seconds(t) * 1e3; }

double share(sim::SimTime part, sim::SimTime total) {
  return total > 0 ? static_cast<double>(part) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

LatencyCollector::Hop& LatencyCollector::hop_slot(std::uint32_t node,
                                                  std::uint32_t link,
                                                  std::uint8_t dir) {
  const std::size_t idx = static_cast<std::size_t>(link) * 2 + (dir & 1);
  if (idx >= hops_.size()) hops_.resize(idx + 1);
  Hop& h = hops_[idx];
  if (!h.seen) {
    h.node = node;
    h.link = link;
    h.dir = dir & 1;
    h.seen = true;
  }
  return h;
}

LatencyCollector::NodeProcessing& LatencyCollector::node_slot(
    std::uint32_t node) {
  if (node >= proc_.size()) proc_.resize(node + 1);
  NodeProcessing& n = proc_[node];
  if (!n.seen) {
    n.node = node;
    n.seen = true;
  }
  return n;
}

LatencyCollector::ClassDelivery& LatencyCollector::class_slot(
    std::uint8_t cls) {
  auto& slot = classes_[cls & (kClassCount - 1)];
  if (!slot) slot = std::make_unique<ClassDelivery>();
  return *slot;
}

void LatencyCollector::merge_from(const LatencyCollector& other) {
  for (const Hop& oh : other.hops_) {
    if (!oh.seen) continue;
    Hop& h = hop_slot(oh.node, oh.link, oh.dir);
    h.packets += oh.packets;
    h.queued += oh.queued;
    h.queue += oh.queue;
    h.tx += oh.tx;
    h.prop += oh.prop;
    for (std::size_t b = 0; b < kBandCount; ++b) {
      h.bands[b].packets += oh.bands[b].packets;
      h.bands[b].wait += oh.bands[b].wait;
    }
    for (std::size_t c = 0; c < kClassCount; ++c) {
      h.queue_by_class[c] += oh.queue_by_class[c];
    }
  }
  for (const NodeProcessing& on : other.proc_) {
    if (!on.seen) continue;
    NodeProcessing& n = node_slot(on.node);
    n.intervals += on.intervals;
    n.proc += on.proc;
  }
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto& slot = other.classes_[c];
    if (!slot) continue;
    ClassDelivery& d = class_slot(static_cast<std::uint8_t>(c));
    d.packets += slot->packets;
    d.queue += slot->queue;
    d.tx += slot->tx;
    d.prop += slot->prop;
    d.proc += slot->proc;
    d.total += slot->total;
    d.e2e_s.merge(slot->e2e_s);
    d.queue_s.merge(slot->queue_s);
  }
  delivered_ += other.delivered_;
}

void LatencyCollector::reset() {
  hops_.clear();
  proc_.clear();
  for (auto& slot : classes_) slot.reset();
  delivered_ = 0;
}

void LatencyCollector::record_queue(std::uint32_t node, std::uint32_t link,
                                    std::uint8_t dir, std::uint8_t band,
                                    std::uint8_t cls, sim::SimTime wait) {
  Hop& h = hop_slot(node, link, dir);
  ++h.queued;
  h.queue += wait;
  BandWait& b = h.bands[band & (kBandCount - 1)];
  ++b.packets;
  b.wait += wait;
  h.queue_by_class[cls & (kClassCount - 1)] += wait;
}

void LatencyCollector::record_tx(std::uint32_t node, std::uint32_t link,
                                 std::uint8_t dir, sim::SimTime tx,
                                 sim::SimTime prop) {
  Hop& h = hop_slot(node, link, dir);
  ++h.packets;
  h.tx += tx;
  h.prop += prop;
}

void LatencyCollector::record_processing(std::uint32_t node, sim::SimTime dt) {
  NodeProcessing& n = node_slot(node);
  ++n.intervals;
  n.proc += dt;
}

void LatencyCollector::record_delivery(std::uint8_t cls, sim::SimTime queue,
                                       sim::SimTime tx, sim::SimTime prop,
                                       sim::SimTime proc) {
  ++delivered_;
  ClassDelivery& c = class_slot(cls);
  ++c.packets;
  c.queue += queue;
  c.tx += tx;
  c.prop += prop;
  c.proc += proc;
  const sim::SimTime total = queue + tx + prop + proc;
  c.total += total;
  c.e2e_s.add(sim::to_seconds(total));
  c.queue_s.add(sim::to_seconds(queue));
}

std::vector<const LatencyCollector::Hop*> LatencyCollector::active_hops()
    const {
  std::vector<const Hop*> out;
  for (const Hop& h : hops_) {
    if (h.seen && (h.packets > 0 || h.queued > 0)) out.push_back(&h);
  }
  return out;
}

std::vector<const LatencyCollector::NodeProcessing*>
LatencyCollector::active_nodes() const {
  std::vector<const NodeProcessing*> out;
  for (const NodeProcessing& n : proc_) {
    if (n.seen && n.intervals > 0) out.push_back(&n);
  }
  return out;
}

stats::Table LatencyCollector::hop_table(const NodeNamer& node_namer,
                                         const ClassNamer& cls_namer) const {
  stats::Table t{"hop",        "pkts",      "queued %", "queue ms/pkt",
                 "tx ms/pkt",  "prop ms/pkt", "hop share %"};
  sim::SimTime grand_total = 0;
  for (const Hop* h : active_hops()) grand_total += h->total();
  for (const Hop* h : active_hops()) {
    const double pkts = h->packets > 0 ? static_cast<double>(h->packets) : 1.0;
    t.add_row({name_node(node_namer, h->node) + "->link" +
                   std::to_string(h->link) + (h->dir == 0 ? "a" : "b"),
               stats::Table::num(h->packets),
               stats::Table::num(100.0 * static_cast<double>(h->queued) / pkts,
                                 1),
               stats::Table::num(ms(h->queue) / pkts, 4),
               stats::Table::num(ms(h->tx) / pkts, 4),
               stats::Table::num(ms(h->prop) / pkts, 4),
               stats::Table::num(100.0 * share(h->total(), grand_total), 1)});
    // Per-band queue-wait sub-rows, only where a band actually queued.
    std::size_t active_bands = 0;
    for (const BandWait& b : h->bands) {
      if (b.packets > 0) ++active_bands;
    }
    if (active_bands > 1 || (active_bands == 1 && h->bands[0].packets == 0)) {
      for (std::size_t band = 0; band < h->bands.size(); ++band) {
        const BandWait& b = h->bands[band];
        if (b.packets == 0) continue;
        t.add_row({"  band" + std::to_string(band),
                   stats::Table::num(b.packets), "",
                   stats::Table::num(ms(b.wait) /
                                         static_cast<double>(b.packets),
                                     4),
                   "", "", ""});
      }
    }
  }
  (void)cls_namer;  // classes appear in class_table / JSON, not per hop
  return t;
}

stats::Table LatencyCollector::class_table(const ClassNamer& cls_namer) const {
  stats::Table t{"class",     "pkts",     "e2e p50 ms", "e2e p99 ms",
                 "queue %",   "tx %",     "prop %",     "proc %",
                 "queue p99 ms"};
  for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
    const ClassDelivery* c = classes_[cls].get();
    if (c == nullptr || c->packets == 0) continue;
    t.add_row({name_class(cls_namer, static_cast<std::uint8_t>(cls)),
               stats::Table::num(c->packets),
               stats::Table::num(c->e2e_s.percentile(50) * 1e3, 3),
               stats::Table::num(c->e2e_s.percentile(99) * 1e3, 3),
               stats::Table::num(100.0 * share(c->queue, c->total), 1),
               stats::Table::num(100.0 * share(c->tx, c->total), 1),
               stats::Table::num(100.0 * share(c->prop, c->total), 1),
               stats::Table::num(100.0 * share(c->proc, c->total), 1),
               stats::Table::num(c->queue_s.percentile(99) * 1e3, 3)});
  }
  return t;
}

void LatencyCollector::write_json(std::ostream& out,
                                  const NodeNamer& node_namer,
                                  const ClassNamer& cls_namer) const {
  out << "{\"delivered\":" << delivered_ << ",\"hops\":[";
  bool first = true;
  for (const Hop* h : active_hops()) {
    if (!first) out << ',';
    first = false;
    out << "{\"node\":\"" << name_node(node_namer, h->node) << "\",\"link\":"
        << h->link << ",\"dir\":" << int(h->dir)
        << ",\"packets\":" << h->packets << ",\"queued\":" << h->queued
        << ",\"queue_ms\":" << ms(h->queue) << ",\"tx_ms\":" << ms(h->tx)
        << ",\"prop_ms\":" << ms(h->prop) << ",\"bands\":[";
    bool bfirst = true;
    for (std::size_t band = 0; band < h->bands.size(); ++band) {
      const BandWait& b = h->bands[band];
      if (b.packets == 0) continue;
      if (!bfirst) out << ',';
      bfirst = false;
      out << "{\"band\":" << band << ",\"packets\":" << b.packets
          << ",\"wait_ms\":" << ms(b.wait) << '}';
    }
    out << "],\"queue_ms_by_class\":{";
    bool cfirst = true;
    for (std::size_t cls = 0; cls < h->queue_by_class.size(); ++cls) {
      if (h->queue_by_class[cls] == 0) continue;
      if (!cfirst) out << ',';
      cfirst = false;
      out << '"' << name_class(cls_namer, static_cast<std::uint8_t>(cls))
          << "\":" << ms(h->queue_by_class[cls]);
    }
    out << "}}";
  }
  out << "],\"node_processing\":[";
  first = true;
  for (const NodeProcessing* n : active_nodes()) {
    if (!first) out << ',';
    first = false;
    out << "{\"node\":\"" << name_node(node_namer, n->node)
        << "\",\"intervals\":" << n->intervals
        << ",\"proc_ms\":" << ms(n->proc) << '}';
  }
  out << "],\"classes\":[";
  first = true;
  for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
    const ClassDelivery* c = classes_[cls].get();
    if (c == nullptr || c->packets == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"class\":\""
        << name_class(cls_namer, static_cast<std::uint8_t>(cls))
        << "\",\"packets\":" << c->packets << ",\"e2e_ms\":{\"mean\":"
        << c->e2e_s.mean() * 1e3 << ",\"p50\":" << c->e2e_s.percentile(50) * 1e3
        << ",\"p99\":" << c->e2e_s.percentile(99) * 1e3
        << ",\"max\":" << c->e2e_s.max() * 1e3 << "},\"queue_ms\":{\"p50\":"
        << c->queue_s.percentile(50) * 1e3
        << ",\"p99\":" << c->queue_s.percentile(99) * 1e3
        << "},\"share\":{\"queue\":" << share(c->queue, c->total)
        << ",\"tx\":" << share(c->tx, c->total)
        << ",\"prop\":" << share(c->prop, c->total)
        << ",\"proc\":" << share(c->proc, c->total) << "}}";
  }
  out << "]}\n";
}

void register_latency_metrics(const LatencyCollector& collector,
                              MetricsRegistry& registry,
                              const ClassNamer& cls_namer) {
  const LatencyCollector* c = &collector;
  registry.add_gauge("latency/total/delivered",
                     [c] { return static_cast<double>(c->delivered()); });
  for (std::uint8_t cls = 0; cls < LatencyCollector::kClassCount; ++cls) {
    const std::string prefix =
        "latency/class/" + name_class(cls_namer, cls) + '/';
    auto get = [c, cls]() { return c->class_delivery(cls); };
    registry.add_gauge(prefix + "packets", [get] {
      const auto* d = get();
      return d != nullptr ? static_cast<double>(d->packets) : 0.0;
    });
    registry.add_gauge(prefix + "e2e_ms_p50", [get] {
      const auto* d = get();
      return d != nullptr ? d->e2e_s.percentile(50) * 1e3 : 0.0;
    });
    registry.add_gauge(prefix + "e2e_ms_p99", [get] {
      const auto* d = get();
      return d != nullptr ? d->e2e_s.percentile(99) * 1e3 : 0.0;
    });
    registry.add_gauge(prefix + "queue_share", [get] {
      const auto* d = get();
      return d != nullptr ? share(d->queue, d->total) : 0.0;
    });
    registry.add_gauge(prefix + "proc_share", [get] {
      const auto* d = get();
      return d != nullptr ? share(d->proc, d->total) : 0.0;
    });
  }
}

}  // namespace mvpn::obs
