#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>
#include <utility>

namespace mvpn::obs {

namespace {

/// JSON-safe number: NaN/inf have no JSON spelling, map them to 0.
double clean(double v) noexcept { return std::isfinite(v) ? v : 0.0; }

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << ch;
    }
  }
  out << '"';
}

void write_samples_json(std::ostream& out,
                        const std::vector<MetricsRegistry::Sample>& samples) {
  out << '{';
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, s.name);
    out << ':' << clean(s.value);
  }
  out << '}';
}

}  // namespace

MetricsRegistry::~MetricsRegistry() { uninstall_counter_hook(); }

void MetricsRegistry::add_counter(std::string name, const stats::Counter* c) {
  sources_[std::move(name)] = [c] {
    return static_cast<double>(c->value());
  };
}

void MetricsRegistry::add_gauge(std::string name, std::function<double()> fn) {
  sources_[std::move(name)] = std::move(fn);
}

void MetricsRegistry::add_packet_byte(std::string name,
                                      const stats::PacketByteCounter* c) {
  add_counter(name + "/packets", &c->packets);
  add_counter(name + "/bytes", &c->bytes);
}

void MetricsRegistry::add_sample_set(std::string name,
                                     const stats::SampleSet* s) {
  sources_[name + "/count"] = [s] { return static_cast<double>(s->count()); };
  sources_[name + "/mean"] = [s] { return s->mean(); };
  // Percentiles read the bounded-memory sketch mirror: an exact read would
  // re-sort the whole sample vector on every PeriodicSnapshots tick, making
  // snapshot cost grow with sample count.
  sources_[name + "/p50"] = [s] { return s->approx().percentile(50.0); };
  sources_[name + "/p99"] = [s] { return s->approx().percentile(99.0); };
  sources_[std::move(name) + "/max"] = [s] { return s->max(); };
}

void MetricsRegistry::add_log_histogram(std::string name,
                                        const stats::LogHistogram* h) {
  sources_[name + "/count"] = [h] { return static_cast<double>(h->count()); };
  sources_[name + "/mean"] = [h] { return h->mean(); };
  sources_[name + "/p50"] = [h] { return h->percentile(50.0); };
  sources_[name + "/p99"] = [h] { return h->percentile(99.0); };
  sources_[std::move(name) + "/max"] = [h] { return h->max(); };
}

void MetricsRegistry::add_histogram(std::string name,
                                    const stats::Histogram* h) {
  sources_[name + "/total"] = [h] { return static_cast<double>(h->total()); };
  sources_[name + "/underflow"] = [h] {
    return static_cast<double>(h->underflow());
  };
  sources_[name + "/overflow"] = [h] {
    return static_cast<double>(h->overflow());
  };
  sources_[name + "/p50"] = [h] { return h->percentile(50.0); };
  sources_[std::move(name) + "/p99"] = [h] { return h->percentile(99.0); };
}

void MetricsRegistry::remove_prefix(const std::string& prefix) {
  for (auto it = sources_.lower_bound(prefix); it != sources_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = sources_.erase(it);
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(sources_.size());
  for (const auto& [name, fn] : sources_) {
    out.push_back(Sample{name, fn ? fn() : 0.0});
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  write_samples_json(out, snapshot());
  out << '\n';
}

void MetricsRegistry::install_counter_hook() {
  if (hook_installed_) return;
  previous_hook_ = stats::counter_hook();
  stats::set_counter_hook(this);
  hook_installed_ = true;
}

void MetricsRegistry::uninstall_counter_hook() {
  if (!hook_installed_) return;
  if (stats::counter_hook() == this) stats::set_counter_hook(previous_hook_);
  hook_installed_ = false;
}

void MetricsRegistry::counter_created(stats::Counter& c) {
  std::string base = "counters/" + c.name();
  const std::uint32_t uses = name_uses_[base]++;
  std::string name = uses == 0 ? base : base + '#' + std::to_string(uses);
  hooked_[&c].push_back(name);
  add_counter(std::move(name), &c);
}

void MetricsRegistry::counter_destroyed(stats::Counter& c) {
  auto it = hooked_.find(&c);
  if (it == hooked_.end()) return;
  for (const auto& name : it->second) sources_.erase(name);
  hooked_.erase(it);
}

void PeriodicSnapshots::start(sim::SimTime period) {
  period_ = period;
  if (running_ || period_ <= 0) return;
  running_ = true;
  sched_.schedule_in(period_, [this] { tick(); });
}

void PeriodicSnapshots::tick() {
  if (!running_) return;
  capture();
  sched_.schedule_in(period_, [this] { tick(); });
}

void PeriodicSnapshots::capture() {
  snapshots_.push_back(Timed{sched_.now(), registry_.snapshot()});
}

void PeriodicSnapshots::write_json(std::ostream& out) const {
  out << "[\n";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    const auto& s = snapshots_[i];
    out << "  {\"t_s\":" << sim::to_seconds(s.at) << ",\"metrics\":";
    write_samples_json(out, s.samples);
    out << '}' << (i + 1 < snapshots_.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

}  // namespace mvpn::obs
