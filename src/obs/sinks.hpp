#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace mvpn::obs {

class SyncProfiler;

/// Maps a node id to a display name for export; defaults to "node<N>".
using NodeNamer = std::function<std::string(std::uint32_t)>;

/// Export the recorder's retained events as JSON Lines: one self-contained
/// object per line ({"t_s":..., "type":"drop", "reason":"red_early", ...}),
/// oldest first. Greppable and streamable — the developer-facing format.
void write_jsonl(const FlightRecorder& rec, std::ostream& out,
                 const NodeNamer& namer = {});

/// Export as Chrome trace_event JSON ({"traceEvents":[...]}) loadable in
/// about://tracing or https://ui.perfetto.dev. Each simulator node becomes
/// a "thread" (tid = node id, named via metadata events); every trace
/// record becomes an instant event with the structured fields under args.
/// Timestamps are sim-time microseconds.
void write_chrome_trace(const FlightRecorder& rec, std::ostream& out,
                        const NodeNamer& namer = {});

/// Same, plus the engine's epoch lanes from a SyncProfiler: a second
/// "engine" process (pid 2) with one thread per shard worker and one for
/// the coordinator. Each retained worker epoch renders as a duration
/// event spanning its window on the shared sim-time axis — directly next
/// to the packet instants it produced — with the wall-clock phase split
/// (wait/exec ns, events, parked) under args; coordinator epochs render
/// as instants at the window close carrying barrier-wait/drain costs.
/// `sync` may be null (plain packet trace).
void write_chrome_trace(const FlightRecorder& rec, std::ostream& out,
                        const NodeNamer& namer, const SyncProfiler* sync);

}  // namespace mvpn::obs
