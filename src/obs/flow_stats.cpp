#include "obs/flow_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>

#include "ip/address.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"

namespace mvpn::obs {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) noexcept {
  if (n < 2) return 2;
  return std::size_t{1} << std::bit_width(n - 1);
}

/// Bucket index for a delay: bit_width of the nanosecond count, i.e.
/// bucket b covers [2^(b-1), 2^b) ns. One instruction on the hot path.
[[nodiscard]] std::size_t delay_bucket(sim::SimTime delay) noexcept {
  const auto ns = static_cast<std::uint64_t>(delay < 0 ? 0 : delay);
  const std::size_t b = static_cast<std::size_t>(std::bit_width(ns));
  return b < FlowStatsTable::kDelayBuckets
             ? b
             : FlowStatsTable::kDelayBuckets - 1;
}

/// Representative delay for a bucket: the geometric midpoint 1.5 * 2^(b-1).
[[nodiscard]] double bucket_delay_ns(std::size_t b) noexcept {
  if (b == 0) return 0.5;
  return 1.5 * std::ldexp(1.0, static_cast<int>(b) - 1);
}

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

[[nodiscard]] const char* cause_name(FlowExporter::Cause c) noexcept {
  switch (c) {
    case FlowExporter::Cause::kIdle: return "idle";
    case FlowExporter::Cause::kActive: return "active";
    case FlowExporter::Cause::kFinal: return "final";
  }
  return "?";
}

template <typename T>
void put_raw(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Stable emission order: flow id first (the human-meaningful handle),
/// then the packed key as the total-order tiebreak.
[[nodiscard]] bool key_less(const FlowStatsTable::Slot& a,
                            const FlowStatsTable::Slot& b) noexcept {
  if (a.flow_id != b.flow_id) return a.flow_id < b.flow_id;
  if (a.key.addrs != b.key.addrs) return a.key.addrs < b.key.addrs;
  return a.key.meta < b.key.meta;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowStatsTable

FlowStatsTable::FlowStatsTable(const sim::Scheduler* clock, std::size_t slots)
    : clock_(clock) {
  const std::size_t n = round_up_pow2(slots);
  index_shift_ =
      64u - static_cast<unsigned>(std::countr_zero(static_cast<std::uint64_t>(n)));
  slots_.resize(n);
}

void FlowStatsTable::claim(Slot& s, const Key& k, std::uint32_t flow_id,
                           sim::SimTime now) noexcept {
  s = Slot{};
  s.key = k;
  s.flow_id = flow_id;
  s.gen = gen_;
  s.first_seen = now;
  s.last_seen = now;
  ++claims_;
}

FlowStatsTable::Slot& FlowStatsTable::touch(const Key& k,
                                            std::uint32_t flow_id) noexcept {
  const sim::SimTime now = clock_->now();
  // Index by the 5-tuple, not the flow id: distinct flows sharing a key
  // (port reuse between the same site pair) then share a slot, so their
  // accounting folds at touch time exactly as the exporter folds drained
  // slots by key — the record stream is invariant to which path ran.
  // Colliding keys probe linearly up to kProbeLimit slots before anything
  // is displaced, so the spill path stays exceptional even though the key
  // hash (unlike sequential flow ids) collides at birthday rates.
  const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size() - 1);
  constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  std::uint32_t idx = home(k);
  std::uint32_t claim_at = kNoSlot;
  for (std::uint32_t probe = 0; probe < kProbeLimit;
       ++probe, idx = (idx + 1) & mask) {
    Slot& s = slots_[idx];
    if (s.gen != gen_ || s.key.meta == 0) {
      // Never claimed this generation: the key cannot be parked further
      // along (claims always take the first reusable slot), stop here.
      if (claim_at == kNoSlot) claim_at = idx;
      break;
    }
    if (s.key == k) {  // hot path: one hash, one compare, home hit
      s.last_seen = now;
      // Keep the smallest id of the 5-tuple's flows so the accumulation's
      // handle is a pure function of the flow set, not of touch order.
      if (flow_id < s.flow_id) s.flow_id = flow_id;
      return s;
    }
    if (s.key.meta == kTombstoneMeta && claim_at == kNoSlot) claim_at = idx;
  }
  if (claim_at == kNoSlot) {
    // Window full of live strangers: displace the home incumbent into the
    // spill map (exact accounting — eviction folds, never loses). The slot
    // stays occupied, so other keys' probe chains never break.
    claim_at = home(k);
    Slot& victim = slots_[claim_at];
    auto [it, inserted] = spill_.try_emplace(victim.key, victim);
    if (!inserted) merge_into(it->second, victim);
    ++evictions_;
  }
  Slot& s = slots_[claim_at];
  claim(s, k, flow_id, now);
  live_.push_back(claim_at);
  return s;
}

void FlowStatsTable::record_offered(const Key& k, std::uint32_t flow_id,
                                    std::uint32_t bytes,
                                    std::uint32_t ingress_pe, std::uint32_t vpn,
                                    std::uint8_t phb) noexcept {
#if MVPN_FLOWSTATS_COMPILED
  Slot& s = touch(k, flow_id);
  ++s.offered_packets;
  s.offered_bytes += bytes;
  if (s.ingress_pe == kUnknownAttr) s.ingress_pe = ingress_pe;
  if (s.vpn == kUnknownAttr) s.vpn = vpn;
  if (s.phb == kUnknownPhb) s.phb = phb;
#else
  (void)k; (void)flow_id; (void)bytes; (void)ingress_pe; (void)vpn; (void)phb;
#endif
}

void FlowStatsTable::record_delivered(const Key& k, std::uint32_t flow_id,
                                      std::uint32_t bytes,
                                      sim::SimTime delay) noexcept {
#if MVPN_FLOWSTATS_COMPILED
  Slot& s = touch(k, flow_id);
  ++s.delivered_packets;
  s.delivered_bytes += bytes;
  if (s.delivered_packets == 1 || delay < s.delay_min) s.delay_min = delay;
  if (delay > s.delay_max) s.delay_max = delay;
  s.delay_sum_ns += static_cast<std::uint64_t>(delay < 0 ? 0 : delay);
  ++s.delay_log2[delay_bucket(delay)];
#else
  (void)k; (void)flow_id; (void)bytes; (void)delay;
#endif
}

void FlowStatsTable::record_drop(const Key& k, std::uint32_t flow_id,
                                 std::uint32_t bytes,
                                 std::uint8_t reason) noexcept {
#if MVPN_FLOWSTATS_COMPILED
  Slot& s = touch(k, flow_id);
  s.dropped_bytes += bytes;
  ++s.drops[reason < kDropReasons ? reason : kDropReasons - 1];
#else
  (void)k; (void)flow_id; (void)bytes; (void)reason;
#endif
}

void FlowStatsTable::record_color(const Key& k, std::uint32_t flow_id,
                                  std::uint8_t color) noexcept {
#if MVPN_FLOWSTATS_COMPILED
  Slot& s = touch(k, flow_id);
  ++s.color[color < 3 ? color : 2];
#else
  (void)k; (void)flow_id; (void)color;
#endif
}

void FlowStatsTable::drain(const std::function<void(const Slot&)>& fn) {
  for (const std::uint32_t idx : live_) {
    Slot& s = slots_[idx];
    // A duplicate live entry (slot re-claimed after an eviction) was
    // emptied when its first entry drained; stale generations and
    // tombstones (slots released by a scan_table() cut) likewise skip.
    if (!is_live(s)) continue;
    if (!spill_.empty()) {
      // A flow that spilled and later re-claimed its slot exists in both
      // structures; fold the resident half in so each key drains once.
      const auto it = spill_.find(s.key);
      if (it != spill_.end()) {
        merge_into(it->second, s);
        s.key.meta = 0;
        continue;
      }
    }
    fn(s);
    s.key.meta = 0;
  }
  live_.clear();
  for (const auto& [key, slot] : spill_) fn(slot);
  spill_.clear();
  ++gen_;  // generation bump keeps any straggler slot logically empty
  ++drains_;
}

void FlowStatsTable::for_each_live(const std::function<void(Slot&)>& fn) {
  // Compact the claim log first: duplicates (re-claimed indices) collapse
  // and released or stale slots drop out, so repeated walks stay O(live).
  std::sort(live_.begin(), live_.end());
  live_.erase(std::unique(live_.begin(), live_.end()), live_.end());
  std::size_t keep = 0;
  for (const std::uint32_t idx : live_) {
    if (!is_live(slots_[idx])) continue;
    live_[keep++] = idx;
  }
  live_.resize(keep);
  for (const std::uint32_t idx : live_) fn(slots_[idx]);
}

void FlowStatsTable::merge_into(Slot& dst, const Slot& src) noexcept {
  if (src.first_seen < dst.first_seen) dst.first_seen = src.first_seen;
  if (src.last_seen > dst.last_seen) dst.last_seen = src.last_seen;
  if (src.flow_id < dst.flow_id) dst.flow_id = src.flow_id;
  // Attribution: known beats unknown; two known values (can only differ if
  // callers disagree) resolve by min so merge order never shows.
  if (dst.ingress_pe == kUnknownAttr ||
      (src.ingress_pe != kUnknownAttr && src.ingress_pe < dst.ingress_pe)) {
    dst.ingress_pe = src.ingress_pe != kUnknownAttr ? src.ingress_pe
                                                    : dst.ingress_pe;
  }
  if (dst.vpn == kUnknownAttr ||
      (src.vpn != kUnknownAttr && src.vpn < dst.vpn)) {
    dst.vpn = src.vpn != kUnknownAttr ? src.vpn : dst.vpn;
  }
  if (dst.phb == kUnknownPhb || (src.phb != kUnknownPhb && src.phb < dst.phb)) {
    dst.phb = src.phb != kUnknownPhb ? src.phb : dst.phb;
  }
  dst.offered_packets += src.offered_packets;
  dst.offered_bytes += src.offered_bytes;
  dst.delivered_packets += src.delivered_packets;
  dst.delivered_bytes += src.delivered_bytes;
  dst.dropped_bytes += src.dropped_bytes;
  for (std::size_t i = 0; i < kDropReasons; ++i) dst.drops[i] += src.drops[i];
  for (std::size_t i = 0; i < 3; ++i) dst.color[i] += src.color[i];
  if (src.delivered_packets != 0) {
    if (dst.delay_min == 0 && dst.delay_max == 0 && dst.delay_sum_ns == 0) {
      dst.delay_min = src.delay_min;
    } else if (src.delay_min < dst.delay_min) {
      dst.delay_min = src.delay_min;
    }
    if (src.delay_max > dst.delay_max) dst.delay_max = src.delay_max;
  }
  dst.delay_sum_ns += src.delay_sum_ns;
  for (std::size_t i = 0; i < kDelayBuckets; ++i) {
    dst.delay_log2[i] += src.delay_log2[i];
  }
}

// ---------------------------------------------------------------------------
// FlowExporter

void FlowExporter::merge_table(FlowStatsTable& table) {
  table.drain([this](const FlowStatsTable::Slot& s) {
    ++merged_slots_;
    auto [it, inserted] = flows_.try_emplace(s.key, s);
    if (!inserted) FlowStatsTable::merge_into(it->second, s);
  });
}

void FlowExporter::cut(std::vector<FlowMap::iterator>& due, Cause cause) {
  // Sort by (flow id, key) so the record stream is a pure function of flow
  // history, not map order. Map erase only invalidates the erased element,
  // so the other due iterators stay valid throughout.
  std::sort(due.begin(), due.end(),
            [](const FlowMap::iterator& a, const FlowMap::iterator& b) {
              return key_less(a->second, b->second);
            });
  for (const FlowMap::iterator& it : due) {
    records_.push_back(Record{it->second, cause});
    flows_.erase(it);
  }
}

void FlowExporter::scan(sim::SimTime now) {
  std::vector<FlowMap::iterator> idle;
  std::vector<FlowMap::iterator> active;
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    const FlowStatsTable::Slot& slot = it->second;
    if (now - slot.last_seen >= opt_.idle_timeout) {
      idle.push_back(it);
    } else if (now - slot.first_seen >= opt_.active_timeout) {
      active.push_back(it);
    }
  }
  cut(idle, Cause::kIdle);
  cut(active, Cause::kActive);
}

void FlowExporter::flush() {
  std::vector<FlowMap::iterator> rest;
  rest.reserve(flows_.size());
  for (auto it = flows_.begin(); it != flows_.end(); ++it) rest.push_back(it);
  cut(rest, Cause::kFinal);
}

void FlowExporter::cut_slots(std::vector<FlowStatsTable::Slot*>& due,
                             Cause cause) {
  std::sort(due.begin(), due.end(),
            [](const FlowStatsTable::Slot* a, const FlowStatsTable::Slot* b) {
              return key_less(*a, *b);
            });
  for (FlowStatsTable::Slot* s : due) {
    ++merged_slots_;
    records_.push_back(Record{*s, cause});
    FlowStatsTable::release(*s);
  }
}

void FlowExporter::scan_table(FlowStatsTable& table, sim::SimTime now) {
  // flows_ can only be populated by a previous fallback merge, and
  // spill_free() is sticky, so this branch chooses the same path for the
  // rest of the run once a spill has ever happened.
  if (!flows_.empty() || !table.spill_free()) {
    merge_table(table);
    scan(now);
    return;
  }
  std::vector<FlowStatsTable::Slot*> idle;
  std::vector<FlowStatsTable::Slot*> active;
  table.for_each_live([&](FlowStatsTable::Slot& s) {
    if (now - s.last_seen >= opt_.idle_timeout) {
      idle.push_back(&s);
    } else if (now - s.first_seen >= opt_.active_timeout) {
      active.push_back(&s);
    }
  });
  cut_slots(idle, Cause::kIdle);
  cut_slots(active, Cause::kActive);
}

void FlowExporter::flush_table(FlowStatsTable& table) {
  if (!flows_.empty() || !table.spill_free()) {
    merge_table(table);
    flush();
    return;
  }
  std::vector<FlowStatsTable::Slot*> rest;
  table.for_each_live(
      [&](FlowStatsTable::Slot& s) { rest.push_back(&s); });
  cut_slots(rest, Cause::kFinal);
}

void FlowExporter::write_jsonl(
    std::ostream& out,
    const std::function<std::string(std::uint32_t)>& node_namer,
    const VpnNamer& vpn_namer, const PhbNamer& phb_namer) const {
  for (const Record& r : records_) {
    const FlowStatsTable::Slot& s = r.acc;
    const ip::Ipv4Address src{static_cast<std::uint32_t>(s.key.addrs >> 32)};
    const ip::Ipv4Address dst{static_cast<std::uint32_t>(s.key.addrs)};
    out << "{\"flow\":" << s.flow_id << ",\"src\":\"" << src.to_string()
        << "\",\"dst\":\"" << dst.to_string()
        << "\",\"sport\":" << ((s.key.meta >> 48) & 0xFFFF)
        << ",\"dport\":" << ((s.key.meta >> 32) & 0xFFFF)
        << ",\"proto\":" << ((s.key.meta >> 8) & 0xFF) << ",\"ingress_pe\":\"";
    if (s.ingress_pe == FlowStatsTable::kUnknownAttr) {
      out << "?";
    } else if (node_namer) {
      json_escape(out, node_namer(s.ingress_pe));
    } else {
      out << s.ingress_pe;
    }
    out << "\",\"vpn\":\"";
    if (s.vpn == FlowStatsTable::kUnknownAttr) {
      out << "?";
    } else if (vpn_namer) {
      json_escape(out, vpn_namer(s.vpn));
    } else {
      out << s.vpn;
    }
    out << "\",\"class\":\"";
    if (s.phb == FlowStatsTable::kUnknownPhb) {
      out << "?";
    } else if (phb_namer) {
      json_escape(out, phb_namer(s.phb));
    } else {
      out << static_cast<unsigned>(s.phb);
    }
    out << "\",\"cause\":\"" << cause_name(r.cause) << "\""
        << ",\"first_s\":" << sim::to_seconds(s.first_seen)
        << ",\"last_s\":" << sim::to_seconds(s.last_seen)
        << ",\"offered_pkts\":" << s.offered_packets
        << ",\"offered_bytes\":" << s.offered_bytes
        << ",\"delivered_pkts\":" << s.delivered_packets
        << ",\"delivered_bytes\":" << s.delivered_bytes
        << ",\"dropped_pkts\":" << s.dropped_packets()
        << ",\"dropped_bytes\":" << s.dropped_bytes;
    bool any_drop = false;
    for (std::size_t i = 0; i < FlowStatsTable::kDropReasons; ++i) {
      if (s.drops[i] == 0) continue;
      out << (any_drop ? "," : ",\"drops\":{");
      any_drop = true;
      out << "\"" << to_string(static_cast<DropReason>(i))
          << "\":" << s.drops[i];
    }
    if (any_drop) out << "}";
    if (s.color[0] + s.color[1] + s.color[2] != 0) {
      out << ",\"color\":{\"green\":" << s.color[0]
          << ",\"yellow\":" << s.color[1] << ",\"red\":" << s.color[2] << "}";
    }
    if (s.delivered_packets != 0) {
      out << ",\"delay_ms\":{\"min\":" << sim::to_seconds(s.delay_min) * 1e3
          << ",\"mean\":"
          << static_cast<double>(s.delay_sum_ns) /
                 static_cast<double>(s.delivered_packets) / 1e6
          << ",\"max\":" << sim::to_seconds(s.delay_max) * 1e3 << "}";
    }
    out << "}\n";
  }
}

void FlowExporter::write_binary(std::ostream& out) const {
  // "MVFR" magic, u32 version, u32 record count, then fixed-size
  // native-endian records (field-by-field, no struct padding).
  out.write("MVFR", 4);
  put_raw(out, std::uint32_t{1});
  put_raw(out, static_cast<std::uint32_t>(records_.size()));
  for (const Record& r : records_) {
    const FlowStatsTable::Slot& s = r.acc;
    put_raw(out, s.key.addrs);
    put_raw(out, s.key.meta);
    put_raw(out, s.flow_id);
    put_raw(out, s.ingress_pe);
    put_raw(out, s.vpn);
    put_raw(out, s.phb);
    put_raw(out, static_cast<std::uint8_t>(r.cause));
    put_raw(out, std::uint16_t{0});  // pad to 8-byte alignment of times
    put_raw(out, s.first_seen);
    put_raw(out, s.last_seen);
    put_raw(out, s.offered_packets);
    put_raw(out, s.offered_bytes);
    put_raw(out, s.delivered_packets);
    put_raw(out, s.delivered_bytes);
    put_raw(out, s.dropped_bytes);
    for (const std::uint32_t d : s.drops) put_raw(out, d);
    for (const std::uint64_t c : s.color) put_raw(out, c);
    put_raw(out, s.delay_min);
    put_raw(out, s.delay_max);
    put_raw(out, s.delay_sum_ns);
    for (const std::uint32_t b : s.delay_log2) put_raw(out, b);
  }
}

double FlowExporter::RollupRow::delay_quantile_ms(double q) const noexcept {
  if (delay_count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(delay_count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < FlowStatsTable::kDelayBuckets; ++b) {
    seen += delay_log2[b];
    if (seen >= target && target != 0) return bucket_delay_ns(b) / 1e6;
  }
  return static_cast<double>(delay_max) / 1e6;
}

std::vector<FlowExporter::RollupRow> FlowExporter::rollup() const {
  std::vector<RollupRow> rows;
  auto find_row = [&rows](std::uint32_t vpn, std::uint8_t phb) -> RollupRow& {
    for (RollupRow& r : rows) {
      if (r.vpn == vpn && r.phb == phb) return r;
    }
    rows.push_back(RollupRow{});
    rows.back().vpn = vpn;
    rows.back().phb = phb;
    return rows.back();
  };
  for (const Record& rec : records_) {
    const FlowStatsTable::Slot& s = rec.acc;
    RollupRow& r = find_row(s.vpn, s.phb);
    ++r.flows;
    r.offered_packets += s.offered_packets;
    r.offered_bytes += s.offered_bytes;
    r.delivered_packets += s.delivered_packets;
    r.delivered_bytes += s.delivered_bytes;
    r.dropped_packets += s.dropped_packets();
    for (std::size_t i = 0; i < FlowStatsTable::kDropReasons; ++i) {
      r.drops[i] += s.drops[i];
    }
    for (std::size_t i = 0; i < 3; ++i) r.color[i] += s.color[i];
    if (s.delivered_packets != 0) {
      if (r.delay_count == 0 || s.delay_min < r.delay_min) {
        r.delay_min = s.delay_min;
      }
      if (s.delay_max > r.delay_max) r.delay_max = s.delay_max;
    }
    r.delay_sum_ns += s.delay_sum_ns;
    r.delay_count += s.delivered_packets;
    for (std::size_t i = 0; i < FlowStatsTable::kDelayBuckets; ++i) {
      r.delay_log2[i] += s.delay_log2[i];
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const RollupRow& a, const RollupRow& b) {
              if (a.vpn != b.vpn) return a.vpn < b.vpn;
              return a.phb < b.phb;
            });
  return rows;
}

stats::Table FlowExporter::rollup_table(const VpnNamer& vpn_namer,
                                        const PhbNamer& phb_namer) const {
  stats::Table t{"VPN",        "class",     "records",   "offered pkts",
                 "delivered",  "loss %",    "drop pkts", "mean ms",
                 "p50 ms",     "p99 ms",    "max ms"};
  std::uint32_t last_vpn = FlowStatsTable::kUnknownAttr;
  bool first = true;
  for (const RollupRow& r : rollup()) {
    if (!first && r.vpn != last_vpn) t.add_separator();
    first = false;
    last_vpn = r.vpn;
    std::string vpn_name =
        r.vpn == FlowStatsTable::kUnknownAttr
            ? std::string{"?"}
            : (vpn_namer ? vpn_namer(r.vpn) : std::to_string(r.vpn));
    std::string phb_name =
        r.phb == FlowStatsTable::kUnknownPhb
            ? std::string{"?"}
            : (phb_namer ? phb_namer(r.phb)
                         : std::to_string(static_cast<unsigned>(r.phb)));
    t.add_row({std::move(vpn_name), std::move(phb_name),
               stats::Table::num(r.flows),
               stats::Table::num(r.offered_packets),
               stats::Table::num(r.delivered_packets),
               stats::Table::num(r.loss_fraction() * 100.0, 3),
               stats::Table::num(r.dropped_packets),
               stats::Table::num(r.delay_mean_ms(), 3),
               stats::Table::num(r.delay_quantile_ms(0.50), 3),
               stats::Table::num(r.delay_quantile_ms(0.99), 3),
               stats::Table::num(static_cast<double>(r.delay_max) / 1e6, 3)});
  }
  return t;
}

// ---------------------------------------------------------------------------

void register_flow_metrics(const FlowExporter& exporter,
                           const std::vector<FlowStatsTable*>& tables,
                           MetricsRegistry& registry) {
  const FlowExporter* e = &exporter;
  registry.add_gauge("engine/flow/records", [e] {
    return static_cast<double>(e->records().size());
  });
  registry.add_gauge("engine/flow/active", [e] {
    return static_cast<double>(e->active_flows());
  });
  registry.add_gauge("engine/flow/merged_slots", [e] {
    return static_cast<double>(e->merged_slots());
  });
  for (std::size_t i = 0; i < tables.size(); ++i) {
    FlowStatsTable* t = tables[i];
    if (t == nullptr) continue;
    const std::string prefix = "engine/flow/shard" + std::to_string(i) + "/";
    registry.add_gauge(prefix + "evictions",
                       [t] { return static_cast<double>(t->evictions()); });
    registry.add_gauge(prefix + "claims",
                       [t] { return static_cast<double>(t->claims()); });
    registry.add_gauge(prefix + "spilled",
                       [t] { return static_cast<double>(t->spilled()); });
  }
}

}  // namespace mvpn::obs
