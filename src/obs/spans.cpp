#include "obs/spans.hpp"

#include <ostream>
#include <string>
#include <unordered_map>

namespace mvpn::obs {

namespace {

std::string node_name(const NodeNamer& namer, std::uint32_t node) {
  if (namer) {
    std::string n = namer(node);
    if (!n.empty()) return n;
  }
  return "node" + std::to_string(node);
}

double us(sim::SimTime t) { return static_cast<double>(t) / 1e3; }

/// Most recent hop of `span` still waiting for `field`, or nullptr.
HopSpan* open_hop(PacketSpan& span, sim::SimTime HopSpan::*field) {
  if (span.hops.empty()) return nullptr;
  HopSpan& h = span.hops.back();
  return h.*field == kNoTime ? &h : nullptr;
}

void add_summary_row(stats::Table& t, const char* stage,
                     const stats::LogHistogram& h) {
  if (h.empty()) {
    t.add_row({stage, "0", "-", "-", "-", "-"});
    return;
  }
  t.add_row({stage, stats::Table::num(h.count()),
             stats::Table::num(h.mean() * 1e3, 3),
             stats::Table::num(h.percentile(50) * 1e3, 3),
             stats::Table::num(h.percentile(99) * 1e3, 3),
             stats::Table::num(h.max() * 1e3, 3)});
}

void write_histogram_json(std::ostream& out, const char* key,
                          const stats::LogHistogram& h) {
  out << '"' << key << "\":{\"count\":" << h.count()
      << ",\"mean_ms\":" << h.mean() * 1e3
      << ",\"p50_ms\":" << h.percentile(50) * 1e3
      << ",\"p99_ms\":" << h.percentile(99) * 1e3
      << ",\"max_ms\":" << h.max() * 1e3 << '}';
}

}  // namespace

SpanAnalysis analyze_spans(const std::vector<TraceEvent>& events) {
  SpanAnalysis out;
  std::unordered_map<std::uint64_t, std::size_t> packet_index;
  std::unordered_map<std::uint32_t, std::size_t> lsp_index;
  std::unordered_map<std::uint32_t, sim::SimTime> ldp_announce_at;

  auto packet_span = [&](std::uint64_t id) -> PacketSpan& {
    auto [it, inserted] = packet_index.try_emplace(id, out.packets.size());
    if (inserted) {
      out.packets.emplace_back();
      out.packets.back().packet_id = id;
    }
    return out.packets[it->second];
  };
  auto lsp_timeline = [&](std::uint32_t id) -> LspTimeline& {
    auto [it, inserted] = lsp_index.try_emplace(id, out.lsps.size());
    if (inserted) {
      out.lsps.emplace_back();
      out.lsps.back().lsp = id;
    }
    return out.lsps[it->second];
  };
  auto open_episode = [](LspTimeline& tl) -> LspTimeline::Episode* {
    if (tl.episodes.empty()) return nullptr;
    LspTimeline::Episode& e = tl.episodes.back();
    return (e.restored_at == kNoTime && e.failed_at == kNoTime) ? &e : nullptr;
  };

  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      // --- control plane --------------------------------------------------
      case EventType::kLdpAnnounce:
        ldp_announce_at.try_emplace(ev.b, ev.at);
        continue;
      case EventType::kLdpMapping: {
        ++out.ldp_mappings;
        auto it = ldp_announce_at.find(ev.b);
        if (it != ldp_announce_at.end() && ev.at >= it->second) {
          out.ldp_mapping_s.add(sim::to_seconds(ev.at - it->second));
        } else {
          ++out.ldp_unanchored;
        }
        continue;
      }
      case EventType::kLspSignal: {
        LspTimeline& tl = lsp_timeline(ev.a);
        if (tl.signaled_at == kNoTime) tl.signaled_at = ev.at;
        continue;
      }
      case EventType::kLspUp: {
        LspTimeline& tl = lsp_timeline(ev.a);
        if (LspTimeline::Episode* e = open_episode(tl)) {
          e->restored_at = ev.at;
          out.reroute_convergence_s.add(sim::to_seconds(ev.at - e->reroute_at));
        } else if (tl.first_up_at == kNoTime) {
          tl.first_up_at = ev.at;
          if (tl.signaled_at != kNoTime) {
            out.lsp_setup_s.add(sim::to_seconds(ev.at - tl.signaled_at));
          }
        }
        continue;
      }
      case EventType::kLspReroute: {
        LspTimeline& tl = lsp_timeline(ev.a);
        ++out.reroutes;
        tl.episodes.push_back(
            LspTimeline::Episode{ev.at, kNoTime, kNoTime, ev.b});
        continue;
      }
      case EventType::kLspDown: {
        LspTimeline& tl = lsp_timeline(ev.a);
        if (LspTimeline::Episode* e = open_episode(tl)) {
          e->failed_at = ev.at;
          ++out.reroutes_failed;
        }
        continue;
      }
      default:
        break;
    }

    // --- data plane (packet lifecycle) ------------------------------------
    if (ev.packet_id == 0) continue;
    PacketSpan& span = packet_span(ev.packet_id);
    if (span.first_at == kNoTime) span.first_at = ev.at;
    span.last_at = ev.at;
    if (ev.cls != 0) span.cls = ev.cls;

    switch (ev.type) {
      case EventType::kEnqueue: {
        HopSpan h;
        h.node = ev.node;
        h.link = ev.a;
        h.band = ev.aux;
        h.enqueue_at = ev.at;
        span.hops.push_back(h);
        break;
      }
      case EventType::kDequeue: {
        HopSpan* h = open_hop(span, &HopSpan::dequeue_at);
        if (h != nullptr && h->node == ev.node && h->link == ev.a &&
            h->tx_at == kNoTime) {
          h->dequeue_at = ev.at;
        }
        break;
      }
      case EventType::kLinkTx: {
        HopSpan* h = open_hop(span, &HopSpan::tx_at);
        if (h != nullptr && h->node == ev.node && h->link == ev.a) {
          h->tx_at = ev.at;
        } else {
          // Fast path: no enqueue happened, the hop starts at transmission.
          HopSpan fresh;
          fresh.node = ev.node;
          fresh.link = ev.a;
          fresh.tx_at = ev.at;
          span.hops.push_back(fresh);
        }
        break;
      }
      case EventType::kDeliver: {
        HopSpan* h = open_hop(span, &HopSpan::deliver_at);
        if (h != nullptr && h->tx_at != kNoTime) h->deliver_at = ev.at;
        break;
      }
      case EventType::kDrop:
        span.dropped = true;
        span.drop_reason = ev.reason;
        break;
      case EventType::kVrfDeliver:
      case EventType::kLocalDeliver:
        span.completed = true;
        break;
      default:
        break;  // label ops etc. only refresh first/last timestamps
    }
  }
  return out;
}

SpanAnalysis analyze_spans(const FlightRecorder& recorder) {
  return analyze_spans(recorder.snapshot());
}

void write_span_chrome_trace(const SpanAnalysis& analysis, std::ostream& out,
                             const NodeNamer& namer) {
  out << "[\n";
  bool first = true;
  auto emit = [&](const std::string& name, const char* cat, int pid,
                  const std::string& tid, sim::SimTime begin, sim::SimTime end,
                  const std::string& args) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\":\"" << name << "\",\"cat\":\"" << cat
        << "\",\"ph\":\"X\",\"ts\":" << us(begin)
        << ",\"dur\":" << us(end - begin) << ",\"pid\":" << pid
        << ",\"tid\":\"" << tid << "\",\"args\":{" << args << "}}";
  };
  for (const PacketSpan& p : analysis.packets) {
    for (const HopSpan& h : p.hops) {
      const std::string tid = node_name(namer, h.node);
      const std::string args = "\"packet\":" + std::to_string(p.packet_id) +
                               ",\"link\":" + std::to_string(h.link) +
                               ",\"cls\":" + std::to_string(p.cls);
      if (h.queued()) {
        emit("queued", "latency", 1, tid, h.enqueue_at, h.dequeue_at,
             args + ",\"band\":" + std::to_string(h.band));
      }
      if (h.on_wire()) {
        emit("wire", "latency", 1, tid, h.tx_at, h.deliver_at, args);
      }
    }
  }
  for (const LspTimeline& tl : analysis.lsps) {
    const std::string tid = "lsp" + std::to_string(tl.lsp);
    if (tl.setup_latency() != kNoTime) {
      emit("setup", "signaling", 2, tid, tl.signaled_at, tl.first_up_at,
           "\"lsp\":" + std::to_string(tl.lsp));
    }
    for (const LspTimeline::Episode& e : tl.episodes) {
      const sim::SimTime end =
          e.restored_at != kNoTime ? e.restored_at : e.failed_at;
      if (end == kNoTime) continue;
      emit(e.restored_at != kNoTime ? "outage" : "failed", "signaling", 2,
           tid,
           e.reroute_at, end,
           "\"lsp\":" + std::to_string(tl.lsp) +
               ",\"failed_link\":" + std::to_string(e.failed_link));
    }
  }
  out << "\n]\n";
}

stats::Table control_plane_table(const SpanAnalysis& analysis) {
  stats::Table t{"stage", "events", "mean ms", "p50 ms", "p99 ms", "max ms"};
  add_summary_row(t, "ldp mapping", analysis.ldp_mapping_s);
  add_summary_row(t, "lsp setup", analysis.lsp_setup_s);
  add_summary_row(t, "reroute convergence", analysis.reroute_convergence_s);
  return t;
}

void write_span_summary_json(const SpanAnalysis& analysis, std::ostream& out) {
  out << "{\"packet_spans\":" << analysis.packets.size()
      << ",\"completed_packets\":" << analysis.completed_packets()
      << ",\"lsps\":" << analysis.lsps.size()
      << ",\"ldp_mappings\":" << analysis.ldp_mappings
      << ",\"ldp_unanchored\":" << analysis.ldp_unanchored
      << ",\"reroutes\":" << analysis.reroutes
      << ",\"reroutes_failed\":" << analysis.reroutes_failed << ',';
  write_histogram_json(out, "ldp_mapping", analysis.ldp_mapping_s);
  out << ',';
  write_histogram_json(out, "lsp_setup", analysis.lsp_setup_s);
  out << ',';
  write_histogram_json(out, "reroute_convergence",
                       analysis.reroute_convergence_s);
  out << "}\n";
}

}  // namespace mvpn::obs
