#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mvpn::stats {
class Table;
}  // namespace mvpn::stats

namespace mvpn::obs {

class MetricsRegistry;

/// Compile-time gate for the per-flow accounting hooks, in the spirit of
/// MVPN_TRACE_COMPILED_MASK: building with -DMVPN_FLOWSTATS_COMPILED=0
/// folds every hook to nothing and lets the optimizer delete the call
/// sites. Default keeps the hooks compiled in (the runtime gate is the
/// null table pointer, one predictable branch per hook).
#ifndef MVPN_FLOWSTATS_COMPILED
#define MVPN_FLOWSTATS_COMPILED 1
#endif

/// Per-shard, fixed-capacity flow accounting table — the measurement half
/// of the IPFIX-style telemetry plane (INTERNALS.md §13).
///
/// Memory model, mirroring the sync profiler lanes:
///  * One table per shard (one total in a serial run). Every record_*()
///    call happens on the owning shard's worker thread inside a window —
///    data-plane hooks in Router, Link and QueueDisc — so slot writes need
///    no atomics and never false-share across shards.
///  * drain() runs only on the coordinator thread between windows (the
///    scenario layer drives it from a periodic global action, so it rides
///    the same epoch-barrier release/acquire edges the sync profiler's
///    coordinator reads do) or after the run. It hands every live slot to
///    the exporter and advances the table generation — an O(1) logical
///    clear; slots invalidate lazily on next touch.
///  * Slots are direct-mapped PODs keyed by the packed 5-tuple the Router
///    flow caches use, indexed by a Fibonacci-style hash of that key.
///    A colliding flow displaces the incumbent into a spill map (exact
///    accounting is kept — eviction folds, never loses), so the hot path
///    stays one hash + one compare while correctness never depends on the
///    table size.
class FlowStatsTable {
 public:
  static constexpr std::size_t kDefaultSlots = 4096;  // power of two
  /// log2(delay ns) buckets: bucket b holds delays in [2^(b-1), 2^b) ns,
  /// bucket 0 holds sub-nanosecond (never in practice). 40 covers ~17 min.
  static constexpr std::size_t kDelayBuckets = 40;
  /// DropReason codes retained per flow (kept ahead of the enum for ABI
  /// stability of the binary record format).
  static constexpr std::size_t kDropReasons = 16;
  static constexpr std::uint32_t kUnknownAttr = 0xFFFFFFFFu;
  static constexpr std::uint8_t kUnknownPhb = 0xFFu;
  /// Linear-probe window: a colliding key tries this many consecutive
  /// slots before displacing the home incumbent into the spill map. At
  /// the <= 25% loads the call sites size for, the window practically
  /// never fills, so distinct keys keep distinct slots and spill_free()
  /// holds for whole runs.
  static constexpr std::uint32_t kProbeLimit = 8;
  /// Released-slot marker (see release()): a real key's meta has the low
  /// bit set and 0 means never claimed, so 2 collides with neither. A
  /// probe search continues past tombstones — a key parked beyond one
  /// must stay findable — but a claim may reuse the first one seen.
  static constexpr std::uint64_t kTombstoneMeta = 2;

  /// Packed 5-tuple key, bit-identical to the Router flow caches' FlowKey:
  /// addrs = src<<32 | dst; meta = sport<<48 | dport<<32 | proto<<8 | 1.
  /// meta's low bit marks the key populated, so 0 is the empty sentinel.
  struct Key {
    std::uint64_t addrs = 0;
    std::uint64_t meta = 0;
    [[nodiscard]] bool operator==(const Key& o) const noexcept {
      return addrs == o.addrs && meta == o.meta;
    }
  };
  [[nodiscard]] static Key make_key(std::uint32_t src, std::uint32_t dst,
                                    std::uint16_t sport, std::uint16_t dport,
                                    std::uint8_t proto) noexcept {
    return Key{(std::uint64_t{src} << 32) | dst,
               (std::uint64_t{sport} << 48) | (std::uint64_t{dport} << 32) |
                   (std::uint64_t{proto} << 8) | 1u};
  }

  /// One flow's accounting since the last drain. POD; merge_into() folds
  /// two of them commutatively, so drain order across shards never shows.
  struct Slot {
    Key key;                     ///< meta == 0 -> empty
    std::uint32_t flow_id = 0;
    std::uint32_t gen = 0;       ///< valid iff == table generation
    std::uint32_t ingress_pe = kUnknownAttr;
    std::uint32_t vpn = kUnknownAttr;
    std::uint8_t phb = kUnknownPhb;
    std::uint8_t pad_[3] = {};
    sim::SimTime first_seen = 0;
    sim::SimTime last_seen = 0;
    std::uint64_t offered_packets = 0;
    std::uint64_t offered_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t dropped_bytes = 0;
    std::uint32_t drops[kDropReasons] = {};  ///< packets, by DropReason
    std::uint64_t color[3] = {};             ///< green / yellow / red
    sim::SimTime delay_min = 0;              ///< 0 until a delivery
    sim::SimTime delay_max = 0;
    std::uint64_t delay_sum_ns = 0;
    std::uint32_t delay_log2[kDelayBuckets] = {};

    [[nodiscard]] std::uint64_t dropped_packets() const noexcept {
      std::uint64_t n = 0;
      for (const std::uint32_t d : drops) n += d;
      return n;
    }
  };

  /// `clock` stamps first/last-seen times (the owning shard's scheduler —
  /// the thread every record_*() call arrives on).
  explicit FlowStatsTable(const sim::Scheduler* clock,
                          std::size_t slots = kDefaultSlots);

  // --- hot path (owning shard's worker thread only) -----------------------
  void record_offered(const Key& k, std::uint32_t flow_id,
                      std::uint32_t bytes, std::uint32_t ingress_pe,
                      std::uint32_t vpn, std::uint8_t phb) noexcept;
  void record_delivered(const Key& k, std::uint32_t flow_id,
                        std::uint32_t bytes, sim::SimTime delay) noexcept;
  void record_drop(const Key& k, std::uint32_t flow_id, std::uint32_t bytes,
                   std::uint8_t reason) noexcept;
  void record_color(const Key& k, std::uint32_t flow_id,
                    std::uint8_t color) noexcept;

  // --- drain (coordinator thread, engine quiescent) -----------------------
  /// Hand every live slot (direct-mapped and spilled) to `fn`, then clear
  /// the table by advancing its generation. Counts reset lazily.
  void drain(const std::function<void(const Slot&)>& fn);

  /// Walk every live slot in place — no drain, no generation bump — after
  /// compacting the claim log to unique live indices. Accumulations keep
  /// growing across calls; `fn` may release() a slot it has consumed.
  /// Only exact while spill_free() (spilled halves are invisible here).
  void for_each_live(const std::function<void(Slot&)>& fn);

  /// Free one live slot in place: the flow's next packet re-claims it
  /// with a fresh accumulation, exactly as after a drain. Tombstoned, not
  /// zeroed — keys parked past this slot by probing must stay findable.
  static void release(Slot& s) noexcept { s.key.meta = kTombstoneMeta; }

  /// True while no flow has ever been displaced into the spill map, i.e.
  /// every accumulation ever made lives in its direct-mapped slot. Sticky
  /// by construction (evictions only accumulate), which lets the exporter
  /// commit to cutting records straight out of a single-lane table.
  [[nodiscard]] bool spill_free() const noexcept { return evictions_ == 0; }

  /// Commutative fold of one slot into another (same key). Used by the
  /// spill path and the exporter's cross-shard merge.
  static void merge_into(Slot& dst, const Slot& src) noexcept;

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Flows displaced from their direct-mapped slot into the spill map.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Flows claimed into a slot since construction (first touches).
  [[nodiscard]] std::uint64_t claims() const noexcept { return claims_; }
  /// Current spill-map population (resets at drain).
  [[nodiscard]] std::size_t spilled() const noexcept { return spill_.size(); }
  [[nodiscard]] std::uint64_t drains() const noexcept { return drains_; }

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          (k.addrs ^ (k.meta * 0x9E3779B97F4A7C15ull)) >> 1);
    }
  };

  [[nodiscard]] Slot& touch(const Key& k, std::uint32_t flow_id) noexcept;
  void claim(Slot& s, const Key& k, std::uint32_t flow_id,
             sim::SimTime now) noexcept;

  /// Fibonacci-style mix of the packed key, keeping the top log2(slots)
  /// bits — the start of the key's probe sequence.
  [[nodiscard]] std::uint32_t home(const Key& k) const noexcept {
    return static_cast<std::uint32_t>(
        ((k.addrs ^ (k.meta * 0x9E3779B97F4A7C15ull)) *
         0x9E3779B97F4A7C15ull) >>
        index_shift_);
  }
  /// Live = claimed this generation and neither empty nor tombstoned.
  [[nodiscard]] bool is_live(const Slot& s) const noexcept {
    return s.gen == gen_ && s.key.meta != 0 && s.key.meta != kTombstoneMeta;
  }

  const sim::Scheduler* clock_;
  std::uint32_t gen_ = 1;  ///< slots whose gen differs are logically empty
  unsigned index_shift_;   ///< Fibonacci hash keeps the top log2(slots) bits
  std::vector<Slot> slots_;
  /// Indices claimed since the last drain, in claim order: drain walks
  /// this instead of sweeping the whole slot array, so the between-window
  /// pause costs O(live flows) regardless of capacity. A re-claimed slot
  /// appears twice; drain marks emitted slots empty so duplicates skip.
  std::vector<std::uint32_t> live_;
  std::unordered_map<Key, Slot, KeyHash> spill_;
  std::uint64_t evictions_ = 0;
  std::uint64_t claims_ = 0;
  std::uint64_t drains_ = 0;
};

/// Maps a VPN id to a display name ("corp (RD 64512:1)"); identity when
/// empty. Same contract as NodeNamer in sinks.hpp.
using VpnNamer = std::function<std::string(std::uint32_t)>;
/// Maps a PHB code (qos::Phb cast to its underlying value) to its name.
using PhbNamer = std::function<std::string(std::uint8_t)>;

/// IPFIX-style flow-record exporter: the coordinator-side half.
///
/// merge_table() drains per-shard tables into a master per-flow
/// accumulation; scan() applies the active/idle timeout rules at exact
/// simulation instants and turns expired accumulations into records. Both
/// the expiry decisions and the emission order are pure functions of
/// per-flow event times and the scan instants — never of shard count or
/// drain order — so the record stream is byte-identical across serial and
/// any sharding of the same scenario.
class FlowExporter {
 public:
  struct Options {
    /// A flow accumulating longer than this is cut into a record even
    /// while still active (IPFIX active timeout).
    sim::SimTime active_timeout = 500 * sim::kMillisecond;
    /// A flow silent for this long is expired (IPFIX idle timeout).
    sim::SimTime idle_timeout = 250 * sim::kMillisecond;
  };

  /// Why a record was cut.
  enum class Cause : std::uint8_t { kIdle = 0, kActive = 1, kFinal = 2 };

  struct Record {
    FlowStatsTable::Slot acc;
    Cause cause = Cause::kFinal;
  };

  FlowExporter() = default;
  explicit FlowExporter(Options opt) : opt_(opt) {}

  /// Fold one shard table's live slots into the master accumulation and
  /// clear the table. Call for every table at each scan instant, then
  /// scan(). Engine must be quiescent (between windows / after the run).
  void merge_table(FlowStatsTable& table);

  /// Apply timeout expiry at simulation instant `now`: flows idle past the
  /// idle timeout or accumulating past the active timeout are cut into
  /// records (sorted by flow id then key, so emission order is stable).
  void scan(sim::SimTime now);

  /// End of run: cut every remaining flow (Cause::kFinal).
  void flush();

  /// Serial fastpath for a single-lane run: apply the timeout rules
  /// directly over the table's live slots. Accumulations stay in place
  /// across scans and only due flows are copied out as records, so the
  /// per-scan cost is a walk of the live list instead of a full
  /// drain-and-merge into flows_. Falls back to merge_table()+scan()
  /// permanently the first time a spill appears — the two paths emit
  /// byte-identical record streams, so the mode switch never shows.
  void scan_table(FlowStatsTable& table, sim::SimTime now);

  /// End-of-run counterpart of scan_table(): cut every remaining flow.
  void flush_table(FlowStatsTable& table);

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t active_flows() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] std::uint64_t merged_slots() const noexcept {
    return merged_slots_;
  }

  /// One self-contained JSON object per record, in emission order.
  void write_jsonl(std::ostream& out,
                   const std::function<std::string(std::uint32_t)>& node_namer,
                   const VpnNamer& vpn_namer, const PhbNamer& phb_namer) const;

  /// Compact binary export: "MVFR" magic, version, fixed-size native-endian
  /// records (see flow_stats.cpp for the layout).
  void write_binary(std::ostream& out) const;

  /// Per-VPN × per-class conformance rollup over every record so far.
  struct RollupRow {
    std::uint32_t vpn = FlowStatsTable::kUnknownAttr;
    std::uint8_t phb = FlowStatsTable::kUnknownPhb;
    std::uint64_t flows = 0;  ///< records (one flow may cut several)
    std::uint64_t offered_packets = 0;
    std::uint64_t offered_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t dropped_packets = 0;
    std::uint32_t drops[FlowStatsTable::kDropReasons] = {};
    std::uint64_t color[3] = {};
    sim::SimTime delay_min = 0;
    sim::SimTime delay_max = 0;
    std::uint64_t delay_sum_ns = 0;
    std::uint64_t delay_count = 0;
    std::uint64_t delay_log2[FlowStatsTable::kDelayBuckets] = {};

    [[nodiscard]] double loss_fraction() const noexcept {
      if (offered_packets == 0) return 0.0;
      const std::uint64_t lost = offered_packets > delivered_packets
                                     ? offered_packets - delivered_packets
                                     : 0;
      return static_cast<double>(lost) /
             static_cast<double>(offered_packets);
    }
    [[nodiscard]] double delay_mean_ms() const noexcept {
      return delay_count == 0 ? 0.0
                              : static_cast<double>(delay_sum_ns) /
                                    static_cast<double>(delay_count) / 1e6;
    }
    /// Quantile from the log2 sketch (bucket-resolution approximation).
    [[nodiscard]] double delay_quantile_ms(double q) const noexcept;
  };
  [[nodiscard]] std::vector<RollupRow> rollup() const;

  /// The `--flow-report` conformance table: offered vs delivered vs the
  /// delay/loss figures an SLA audit compares against its targets.
  [[nodiscard]] stats::Table rollup_table(const VpnNamer& vpn_namer,
                                          const PhbNamer& phb_namer) const;

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(
        const FlowStatsTable::Key& k) const noexcept {
      return static_cast<std::size_t>(
          (k.addrs ^ (k.meta * 0x9E3779B97F4A7C15ull)) >> 1);
    }
  };

  using FlowMap =
      std::unordered_map<FlowStatsTable::Key, FlowStatsTable::Slot, KeyHash>;

  /// `due` holds iterators into flows_ (valid until their own erase): the
  /// sort comparator dereferences them directly and the erase is O(1), so
  /// a cut never re-hashes a key it already found during scan().
  void cut(std::vector<FlowMap::iterator>& due, Cause cause);

  /// scan_table()'s emission half: sort due slots by (flow id, key), copy
  /// them into records, release them in place.
  void cut_slots(std::vector<FlowStatsTable::Slot*>& due, Cause cause);

  Options opt_;
  FlowMap flows_;
  std::vector<Record> records_;
  std::uint64_t merged_slots_ = 0;
};

/// Register the telemetry plane's own health counters as gauges behind the
/// usual engine-metrics opt-in (they depend on shard count and drain
/// cadence, so they stay out of byte-identity-checked outputs):
///   engine/flow/{records,active,merged_slots}
///   engine/flow/shard<N>/{evictions,claims,spilled}
void register_flow_metrics(const FlowExporter& exporter,
                           const std::vector<FlowStatsTable*>& tables,
                           MetricsRegistry& registry);

}  // namespace mvpn::obs
