#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine_observer.hpp"
#include "sim/time.hpp"
#include "stats/log_histogram.hpp"

namespace mvpn::obs {

class MetricsRegistry;

/// Epoch-level sync telemetry for the sharded engine.
///
/// The packet-side obs stack decomposes where *latency* goes; this
/// decomposes where the *engine's wall clock* goes — event execution vs
/// barrier wait vs staging drain vs park/wake — so a missing parallel
/// speedup can be attributed to real sync costs instead of guessed at.
///
/// Memory model (INTERNALS.md §12) follows the FlightRecorder discipline:
///  * One Lane per shard, cache-line separated. Its ring (fixed-capacity
///    POD slots, power-of-two mask), cumulative totals and barrier-wait
///    sketch are written ONLY by that shard's worker thread, inside
///    on_worker_epoch() — which the engine calls before arrive(), so every
///    lane write is ordered before the coordinator's post-barrier reads by
///    the epoch barrier's release/acquire edge. No per-record atomics.
///  * Coordinator-owned state (coordinator ring, per-shard epoch rings,
///    batch-size sketch, critical-shard attribution) is written only
///    between windows: record_exchange()/record_batch() inside the
///    exchange hook, then on_coordinator_epoch() — which also reads each
///    lane's freshest slot (legal per the same edge) to attribute the
///    epoch to its slowest shard and samples the flow caches through the
///    cache sampler.
///  * report()/snapshots/JSON run strictly when the engine is idle
///    (between run_until calls or after the run); metric gauges read
///    cumulative totals and are safe from global actions between windows.
///
/// Steady state allocates nothing: rings and scratch are sized at
/// construction, LogHistogram buckets are fixed. When no profiler is
/// installed the engine pays one untaken branch per epoch — the same
/// "~free when disabled" bar the FlightRecorder sets.
class SyncProfiler : public sim::EngineObserver {
 public:
  /// Per-shard ring capacity in epochs (rounded up to a power of two).
  /// Aggregates cover every epoch regardless; rings retain the tail for
  /// the Chrome-trace lanes.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// One worker epoch as retained in the lane ring. POD.
  struct WorkerSlot {
    std::uint64_t epoch = 0;
    sim::SimTime window_start = 0;
    sim::SimTime window_end = 0;
    std::uint64_t begin_ns = 0;  ///< steady-clock, entering the wait
    std::uint64_t wait_ns = 0;
    std::uint64_t exec_ns = 0;
    std::uint64_t events = 0;
    std::uint8_t parked = 0;
  };

  /// One coordinator epoch. POD.
  struct CoordSlot {
    std::uint64_t epoch = 0;
    sim::SimTime window_start = 0;
    sim::SimTime window_end = 0;
    std::uint64_t wait_ns = 0;   ///< in wait_all_arrived()
    std::uint64_t drain_ns = 0;  ///< staging drain + merge in the exchange
    std::uint64_t handoffs = 0;  ///< envelopes merged this epoch
    std::uint8_t parked = 0;
    std::uint8_t widened = 0;
    std::uint8_t idle_jump = 0;
  };

  /// Coordinator-sampled per-shard counters at each epoch boundary
  /// (cumulative, so consumers can difference consecutive slots). POD.
  struct ShardEpochSlot {
    std::uint64_t epoch = 0;
    std::uint64_t handoffs_out = 0;  ///< envelopes this shard staged, total
    std::uint64_t cache_hits = 0;    ///< flow-cache hits, total
    std::uint64_t cache_misses = 0;
  };

  explicit SyncProfiler(std::uint32_t shards,
                        std::size_t capacity = kDefaultCapacity);

  // --- sim::EngineObserver ------------------------------------------------
  void on_worker_epoch(const WorkerEpoch& e) noexcept override;
  void on_coordinator_epoch(const CoordinatorEpoch& e) noexcept override;

  // --- runtime hooks (coordinator thread, inside the exchange) ------------
  /// Drain cost + per-source staged-envelope counts for the epoch being
  /// closed; folded into the coordinator slot by on_coordinator_epoch().
  void record_exchange(std::uint64_t drain_ns, std::uint64_t handoffs,
                       const std::uint64_t* per_src,
                       std::uint32_t n) noexcept;
  /// One delivery run fused (or scheduled singly) at the exchange.
  void record_batch(std::size_t envelopes) noexcept;

  /// Optional per-shard flow-cache sampler, invoked once per shard per
  /// epoch on the coordinator thread between windows. The scenario/bench
  /// layer installs one that sums vpn::Router counters by shard (this
  /// layer cannot see routers).
  using CacheSampler = std::function<void(
      std::uint32_t shard, std::uint64_t& hits, std::uint64_t& misses)>;
  void set_cache_sampler(CacheSampler fn) { cache_sampler_ = std::move(fn); }

  /// Serial-run lane: no epochs, no barrier — record the whole run as one
  /// execution phase so serial and sharded bench passes emit reports of
  /// the same shape (busy fraction 1.0 by construction).
  void record_serial(std::uint64_t exec_ns, std::uint64_t events) noexcept;

  // --- reads (engine idle only) -------------------------------------------
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return coord_count_; }
  /// Oldest-first retained worker epochs for one shard.
  [[nodiscard]] std::vector<WorkerSlot> worker_snapshot(
      std::uint32_t shard) const;
  [[nodiscard]] std::vector<CoordSlot> coordinator_snapshot() const;
  [[nodiscard]] std::vector<ShardEpochSlot> shard_epoch_snapshot(
      std::uint32_t shard) const;

  /// Everything the load-imbalance analysis needs, aggregated over every
  /// epoch (not just the ring tail).
  struct Report {
    struct Lane {
      std::uint32_t shard = 0;
      std::uint64_t epochs = 0;
      std::uint64_t events = 0;
      std::uint64_t exec_ns = 0;
      std::uint64_t wait_ns = 0;
      std::uint64_t parks = 0;  ///< epochs whose wait fell to the condvar
      /// Epochs where this shard had the largest execution phase — the
      /// shard the barrier was effectively waiting on.
      std::uint64_t critical_epochs = 0;
      std::uint64_t handoffs_out = 0;
      std::uint64_t cache_hits = 0;
      std::uint64_t cache_misses = 0;
      double busy_fraction = 0.0;  ///< exec wall / lane wall span
      double wait_p50_us = 0.0;
      double wait_p99_us = 0.0;
      [[nodiscard]] double cache_hit_rate() const noexcept {
        const double total =
            static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
        return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
      }
    };
    bool serial = false;
    std::uint32_t shards = 0;
    std::uint64_t epochs = 0;
    std::uint64_t widened = 0;
    std::uint64_t idle_jumps = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t delivery_batches = 0;  ///< delivery runs incl. singletons
    std::uint64_t coord_wait_ns = 0;
    std::uint64_t coord_parks = 0;
    std::uint64_t drain_ns = 0;
    double wall_s = 0.0;  ///< first wait entry .. last epoch close
    double coord_wait_p50_us = 0.0;
    double coord_wait_p99_us = 0.0;
    double batch_p50 = 0.0;
    double batch_max = 0.0;
    std::vector<Lane> lanes;

    /// Human-readable summary (run_scenario --sync-report, bench output).
    [[nodiscard]] std::string to_table() const;
    /// One JSON object — the block bench_scalability embeds in
    /// BENCH_PR7.json and run_scenario writes for --sync-json.
    void write_json(std::ostream& out) const;
  };
  [[nodiscard]] Report report() const;

 private:
  /// Worker-owned state; cache-line separated so lanes never false-share.
  struct alignas(64) Lane {
    std::vector<WorkerSlot> ring;
    std::uint64_t recorded = 0;  ///< monotonic; ring index = recorded & mask
    std::uint64_t wait_ns = 0;
    std::uint64_t exec_ns = 0;
    std::uint64_t events = 0;
    std::uint64_t parks = 0;
    std::uint64_t first_ns = 0;  ///< steady stamp entering the first wait
    std::uint64_t last_ns = 0;   ///< steady stamp closing the latest epoch
    stats::LogHistogram wait_s;  ///< barrier wait per epoch, seconds
  };
  /// Coordinator-owned per-shard accumulation.
  struct CoordShard {
    std::vector<ShardEpochSlot> ring;
    std::uint64_t recorded = 0;
    std::uint64_t critical_epochs = 0;
    std::uint64_t handoffs_out = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };

  std::size_t mask_;  ///< ring capacity - 1 (power of two)
  std::vector<Lane> lanes_;
  std::vector<CoordShard> coord_shards_;
  std::vector<CoordSlot> coord_ring_;
  std::uint64_t coord_count_ = 0;
  std::uint64_t coord_wait_ns_ = 0;
  std::uint64_t coord_parks_ = 0;
  std::uint64_t drain_ns_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t widened_ = 0;
  std::uint64_t idle_jumps_ = 0;
  stats::LogHistogram coord_wait_s_;
  stats::LogHistogram batch_sizes_;  ///< unit: envelopes per delivery run
  /// Pending drain stats from record_exchange, consumed by the next
  /// on_coordinator_epoch (both coordinator-thread, strictly ordered).
  std::uint64_t pending_drain_ns_ = 0;
  std::uint64_t pending_handoffs_ = 0;
  std::vector<std::uint64_t> pending_per_src_;
  CacheSampler cache_sampler_;
  std::uint64_t serial_exec_ns_ = 0;
  std::uint64_t serial_events_ = 0;
};

/// Register the profiler's aggregate counters as gauges:
///   engine/sync/{epochs,widened,idle_jumps,handoffs,batches}
///   engine/sync/shard<N>/{exec_ns,wait_ns,events,parks}
/// Gauges read coordinator/worker cumulative totals, so snapshots must be
/// taken between windows (PeriodicSnapshots via the engine's global
/// actions already is) or after the run.
void register_sync_metrics(const SyncProfiler& profiler,
                           MetricsRegistry& registry);

}  // namespace mvpn::obs
