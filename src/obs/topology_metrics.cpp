#include "obs/topology_metrics.hpp"

#include <string>

#include "qos/queues.hpp"
#include "vpn/router.hpp"

namespace mvpn::obs {

namespace {

void register_router(const vpn::Router& r, const std::string& prefix,
                     MetricsRegistry& reg) {
  const auto& c = r.counters();
  for (const stats::Counter* counter :
       {&c.forwarded, &c.delivered, &c.no_route, &c.ttl_expired,
        &c.label_miss, &c.no_tunnel, &c.policed, &c.esp_rejected}) {
    reg.add_counter(prefix + "/router/" + counter->name(), counter);
  }
  // Flow fastpath cache health, straight from the router — previously only
  // visible through the sync profiler's injected CacheSampler, which left
  // serial runs (and sharded runs without a profiler) blind to it.
  const vpn::Router* rp = &r;
  reg.add_gauge(prefix + "/router/fastpath/hits", [rp] {
    return static_cast<double>(rp->flowcache_stats().hits);
  });
  reg.add_gauge(prefix + "/router/fastpath/misses", [rp] {
    return static_cast<double>(rp->flowcache_stats().misses);
  });
  reg.add_gauge(prefix + "/router/fastpath/invalidated", [rp] {
    return static_cast<double>(rp->flowcache_stats().invalidated);
  });
  reg.add_gauge(prefix + "/router/fastpath/hit_rate", [rp] {
    const auto& fc = rp->flowcache_stats();
    const double probes = static_cast<double>(fc.hits + fc.misses);
    return probes == 0.0 ? 0.0 : static_cast<double>(fc.hits) / probes;
  });
  for (const vpn::Vrf* vrf : const_cast<vpn::Router&>(r).vrfs()) {
    reg.add_gauge(prefix + "/vrf/" + vrf->config().name + "/routes",
                  [vrf] { return static_cast<double>(vrf->table().size()); });
  }
}

void register_queue(const net::Link& link, ip::NodeId from,
                    const std::string& prefix, MetricsRegistry& reg) {
  const net::Link* l = &link;
  // Gauges re-resolve queue_from() per snapshot: scenario builders may
  // still swap the discipline (set_queue_from) after registration.
  auto q = [l, from]() -> const net::QueueDisc& { return l->queue_from(from); };
  reg.add_gauge(prefix + "/drops/packets",
                [q] { return static_cast<double>(q().dropped().packets.value()); });
  reg.add_gauge(prefix + "/drops/bytes",
                [q] { return static_cast<double>(q().dropped().bytes.value()); });
  reg.add_gauge(prefix + "/enqueued/packets",
                [q] { return static_cast<double>(q().enqueued().packets.value()); });
  reg.add_gauge(prefix + "/depth/packets",
                [q] { return static_cast<double>(q().packet_count()); });
  reg.add_gauge(prefix + "/depth/bytes",
                [q] { return static_cast<double>(q().byte_count()); });

  if (const auto* mb = dynamic_cast<const qos::MultiBandQueue*>(&q())) {
    for (unsigned b = 0; b < mb->band_count(); ++b) {
      reg.add_gauge(prefix + "/band" + std::to_string(b) + "/drops",
                    [q, b]() -> double {
                      const auto* m =
                          dynamic_cast<const qos::MultiBandQueue*>(&q());
                      if (m == nullptr || b >= m->band_count()) return 0.0;
                      return static_cast<double>(m->band_drops(b).packets.value());
                    });
    }
  }
  if (dynamic_cast<const qos::RedQueueDisc*>(&q()) != nullptr) {
    auto red_gauge = [q](bool early) -> double {
      const auto* r = dynamic_cast<const qos::RedQueueDisc*>(&q());
      if (r == nullptr) return 0.0;
      return static_cast<double>(early ? r->early_drops().value()
                                       : r->forced_drops().value());
    };
    reg.add_gauge(prefix + "/red/early_drops",
                  [red_gauge] { return red_gauge(true); });
    reg.add_gauge(prefix + "/red/forced_drops",
                  [red_gauge] { return red_gauge(false); });
  }
}

}  // namespace

void register_topology_metrics(net::Topology& topo, MetricsRegistry& reg) {
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const net::Node& node = topo.node(static_cast<ip::NodeId>(i));
    const std::string prefix = "node/" + node.name();
    for (const net::Interface& ifc : node.interfaces()) {
      const std::string if_prefix =
          prefix + "/if" + std::to_string(ifc.index);
      reg.add_packet_byte(if_prefix + "/rx", &ifc.rx);
      reg.add_packet_byte(if_prefix + "/tx", &ifc.tx);
    }
    if (const auto* r = dynamic_cast<const vpn::Router*>(&node)) {
      register_router(*r, prefix, reg);
    }
  }

  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const net::Link& link = topo.link(static_cast<net::LinkId>(i));
    for (const auto* ep : {&link.end_a(), &link.end_b()}) {
      const ip::NodeId from = ep->node;
      const std::string dir_prefix =
          "link/" + std::to_string(link.id()) + '/' +
          topo.node(from).name() + "->" +
          topo.node(link.peer_of(from).node).name();
      reg.add_packet_byte(dir_prefix + "/tx", &link.tx_from(from));
      reg.add_packet_byte(dir_prefix + "/down_drops",
                          &link.down_drops_from(from));
      register_queue(link, from, dir_prefix + "/queue", reg);
    }
  }
}

void register_engine_metrics(const net::ShardRuntime& runtime,
                             MetricsRegistry& reg) {
  const net::ShardRuntime* rt = &runtime;
  reg.add_gauge("engine/shards",
                [rt] { return static_cast<double>(rt->shard_count()); });
  reg.add_gauge("engine/lookahead_us", [rt] {
    return static_cast<double>(rt->lookahead()) / 1e3;
  });
  reg.add_gauge("engine/windows",
                [rt] { return static_cast<double>(rt->windows()); });
  reg.add_gauge("engine/widened_windows", [rt] {
    return static_cast<double>(rt->widened_windows());
  });
  reg.add_gauge("engine/idle_jumps",
                [rt] { return static_cast<double>(rt->idle_jumps()); });
  reg.add_gauge("engine/handoffs",
                [rt] { return static_cast<double>(rt->handoffs()); });
  reg.add_gauge("engine/delivery_batches", [rt] {
    return static_cast<double>(rt->delivery_batches());
  });
}

void register_control_metrics(const routing::ControlPlane& cp,
                              const routing::Bgp& bgp,
                              const routing::Igp& igp,
                              MetricsRegistry& reg) {
  const routing::ControlPlane* c = &cp;
  const routing::Bgp* b = &bgp;
  const routing::Igp* g = &igp;
  reg.add_gauge("control/messages",
                [c] { return static_cast<double>(c->total_messages()); });
  reg.add_gauge("control/bytes",
                [c] { return static_cast<double>(c->total_bytes()); });
  reg.add_gauge("control/bgp/sessions",
                [b] { return static_cast<double>(b->session_count()); });
  reg.add_gauge("control/bgp/updates", [c] {
    return static_cast<double>(c->message_count("bgp.update"));
  });
  reg.add_gauge("control/bgp/withdraws", [c] {
    return static_cast<double>(c->message_count("bgp.withdraw"));
  });
  reg.add_gauge("control/bgp/nlri_enqueued", [b] {
    return static_cast<double>(b->rib_out().nlri_enqueued());
  });
  reg.add_gauge("control/bgp/nlri_packed", [b] {
    return static_cast<double>(b->rib_out().nlri_packed());
  });
  reg.add_gauge("control/bgp/superseded", [b] {
    return static_cast<double>(b->rib_out().superseded());
  });
  reg.add_gauge("control/bgp/messages_packed", [b] {
    return static_cast<double>(b->rib_out().messages_packed());
  });
  reg.add_gauge("control/bgp/wire_bytes_packed", [b] {
    return static_cast<double>(b->rib_out().wire_bytes_packed());
  });
  reg.add_gauge("control/bgp/flushes", [b] {
    return static_cast<double>(b->rib_out().flushes());
  });
  reg.add_gauge("control/bgp/update_groups", [b] {
    return static_cast<double>(b->rib_out().group_count());
  });
  reg.add_gauge("control/bgp/adj_rib_routes", [b] {
    return static_cast<double>(b->adj_rib_routes());
  });
  reg.add_gauge("control/bgp/adj_rib_bytes", [b] {
    return static_cast<double>(b->adj_rib_bytes());
  });
  reg.add_gauge("control/bgp/rt_pool_sets",
                [b] { return static_cast<double>(b->rt_pool().size()); });
  reg.add_gauge("control/spf/runs",
                [g] { return static_cast<double>(g->spf_runs()); });
  reg.add_gauge("control/spf/full",
                [g] { return static_cast<double>(g->spf_full_runs()); });
  reg.add_gauge("control/spf/incremental", [g] {
    return static_cast<double>(g->spf_incremental_runs());
  });
  reg.add_gauge("control/spf/skipped",
                [g] { return static_cast<double>(g->spf_skipped()); });
  reg.add_gauge("control/spf/te_only_installs", [g] {
    return static_cast<double>(g->te_only_installs());
  });
  reg.add_gauge("control/spf/edges_relaxed",
                [g] { return static_cast<double>(g->edges_relaxed()); });
}

NodeNamer topology_node_namer(const net::Topology& topo) {
  const net::Topology* t = &topo;
  return [t](std::uint32_t id) -> std::string {
    if (id < t->node_count()) return t->node(static_cast<ip::NodeId>(id)).name();
    return "node" + std::to_string(id);
  };
}

}  // namespace mvpn::obs
