#include "sim/parallel_engine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "sim/shard.hpp"

namespace mvpn::sim {

namespace {

inline std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ParallelEngine::ParallelEngine(std::vector<ShardRef> shards,
                               SimTime lookahead, Scheduler* global)
    : shards_(std::move(shards)),
      lookahead_(lookahead),
      global_(global),
      barrier_(static_cast<std::uint32_t>(shards_.size())) {
  if (shards_.empty()) {
    throw std::invalid_argument("ParallelEngine: no shards");
  }
  if (lookahead_ < 1) {
    throw std::invalid_argument(
        "ParallelEngine: lookahead must be at least 1 ns of cross-shard "
        "latency — a zero-delay cut admits same-instant interactions that "
        "conservative windows cannot order");
  }
  frontier_ = shards_.front().scheduler->now();
  for (const ShardRef& s : shards_) {
    if (s.scheduler->now() > frontier_) frontier_ = s.scheduler->now();
  }
}

ParallelEngine::~ParallelEngine() {
  if (workers_running_) {
    barrier_.shutdown();
    for (std::thread& t : threads_) t.join();
  }
}

void ParallelEngine::add_periodic_action(SimTime first, SimTime period,
                                         std::function<void()> fn) {
  if (period < 1) {
    throw std::invalid_argument("ParallelEngine: action period must be >= 1");
  }
  actions_.push_back(Action{first, period, std::move(fn)});
}

void ParallelEngine::start_workers() {
  if (workers_running_) return;
  workers_running_ = true;
  threads_.reserve(shards_.size());
  for (const ShardRef& s : shards_) {
    // Align stragglers so every shard enters the first window at the same
    // instant (run_until on an empty queue just advances the clock).
    if (s.scheduler->now() < frontier_) s.scheduler->run_until(frontier_);
    threads_.emplace_back([this, s] { worker(s); });
  }
}

void ParallelEngine::worker(ShardRef shard) {
  const ShardGuard guard(shard.id);
  std::uint64_t seen_epoch = 0;
  SimTime target = 0;
  if (observer_ == nullptr) {
    while (barrier_.next(seen_epoch, target)) {
      try {
        shard.scheduler->run_until(target);
      } catch (...) {
        const std::lock_guard<std::mutex> g(error_mutex_);
        if (!worker_error_) worker_error_ = std::current_exception();
      }
      barrier_.arrive();
    }
    return;
  }
  // Instrumented loop: two clock reads bracket the wait, one more closes
  // the execution phase. The observer hook runs *before* arrive() so its
  // ring writes are ordered ahead of the coordinator's post-barrier reads
  // by the arrive/wait_all_arrived release/acquire edge.
  SimTime window_start = shard.scheduler->now();
  for (;;) {
    EngineObserver::WorkerEpoch we;
    we.shard = shard.id;
    we.begin_ns = steady_ns();
    if (!barrier_.next(seen_epoch, target, &we.parked)) break;
    const std::uint64_t t_run = steady_ns();
    const std::uint64_t ev0 = shard.scheduler->executed_count();
    try {
      shard.scheduler->run_until(target);
    } catch (...) {
      const std::lock_guard<std::mutex> g(error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    we.epoch = seen_epoch;
    we.window_start = window_start;
    we.window_end = target;
    we.wait_ns = t_run - we.begin_ns;
    we.exec_ns = steady_ns() - t_run;
    we.events = shard.scheduler->executed_count() - ev0;
    observer_->on_worker_epoch(we);
    window_start = target;
    barrier_.arrive();
  }
}

void ParallelEngine::rethrow_worker_error() {
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> g(error_mutex_);
    err = worker_error_;
  }
  if (err) std::rethrow_exception(err);
}

SimTime ParallelEngine::next_global_time() const {
  SimTime t = Scheduler::kNoEventTime;
  for (const Action& a : actions_) {
    if (a.fn && a.at < t) t = a.at;
  }
  if (global_ != nullptr) {
    const SimTime s = global_->next_event_time();
    if (s < t) t = s;
  }
  return t;
}

void ParallelEngine::fire_global(SimTime at) {
  if (global_ != nullptr) global_->run_until(at);
  for (Action& a : actions_) {
    while (a.fn && a.at <= at) {
      a.fn();
      a.at += a.period;
    }
  }
}

void ParallelEngine::run_until(SimTime t_end) {
  start_workers();
  while (frontier_ < t_end) {
    rethrow_worker_error();
    const SimTime global_at = next_global_time();
    // Global work at time G must see every event before G and none at or
    // after it, so windows stop at G-1; with integer time that boundary is
    // exact, not an epsilon.
    SimTime target = t_end;
    if (global_at != Scheduler::kNoEventTime && global_at - 1 < target) {
      target = global_at - 1;
    }
    if (target > frontier_) {
      // Adaptive window sizing. Workers are parked between epochs, so the
      // shard queues are stable and reading them here is race-free. Every
      // pending event sits at u >= next_min, so remote work lands at
      // >= next_min + lookahead and a window ending at next_min +
      // lookahead - 1 is still conservative. next_min >= frontier_ + 1
      // (all shards have finished events <= frontier_), so the adaptive
      // window is never narrower than the static frontier_ + lookahead
      // one; when every shard is idle past the target the window jumps
      // straight to it.
      SimTime next_min = Scheduler::kNoEventTime;
      for (const ShardRef& s : shards_) {
        const SimTime t = s.scheduler->next_event_time();
        if (t < next_min) next_min = t;
      }
      SimTime window_end;
      bool idle_jump = false;
      if (next_min == Scheduler::kNoEventTime || next_min >= target) {
        window_end = target;
        idle_jump = true;
      } else {
        window_end = next_min + (lookahead_ - 1);
        if (window_end > target) window_end = target;
      }
      const bool widened = window_end > frontier_ + lookahead_;
      if (widened) ++widened_windows_;
      if (idle_jump) ++idle_jumps_;
      if (observer_ == nullptr) {
        barrier_.open(window_end);
        barrier_.wait_all_arrived();
        ++windows_;
        rethrow_worker_error();
        if (exchange_) exchange_(window_end);
      } else {
        EngineObserver::CoordinatorEpoch ce;
        ce.window_start = frontier_;
        ce.window_end = window_end;
        ce.widened = widened;
        ce.idle_jump = idle_jump;
        barrier_.open(window_end);
        ce.epoch = barrier_.epoch();
        ce.begin_ns = steady_ns();
        barrier_.wait_all_arrived(&ce.parked);
        ce.wait_ns = steady_ns() - ce.begin_ns;
        ++windows_;
        rethrow_worker_error();
        if (exchange_) exchange_(window_end);
        // After the exchange (drain stats for this epoch are pending in
        // the profiler) and while workers are still parked — per-shard
        // state is stable for the observer to sample.
        observer_->on_coordinator_epoch(ce);
      }
      frontier_ = window_end;
    } else {
      fire_global(global_at);
    }
  }
  rethrow_worker_error();
  // Leave the global clock at t_end (running any residual events exactly at
  // t_end), so post-run reads see the same instant a serial run_until ends.
  if (global_ != nullptr && global_->now() <= t_end) global_->run_until(t_end);
}

}  // namespace mvpn::sim
