#pragma once

#include <array>
#include <cstdint>

namespace mvpn::sim {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// splitmix64 so any 64-bit seed yields a well-mixed state.
///
/// Each traffic source / protocol jitter consumer owns its own Rng stream
/// (derived from a master seed + stream id), so adding a new consumer does
/// not perturb the draws seen by existing ones — a standard trick for
/// variance-controlled simulation experiments.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent stream: same master seed + distinct stream id
  /// gives a reproducible, decorrelated generator.
  [[nodiscard]] static Rng stream(std::uint64_t master_seed,
                                  std::uint64_t stream_id);

  /// Next raw 64 bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept;
  /// Pareto with scale xm and shape alpha (heavy-tailed burst sizes).
  double pareto(double xm, double alpha) noexcept;
  /// Standard normal via Box–Muller.
  double normal(double mean, double stddev) noexcept;

  /// Raw xoshiro256** state, for consumers that keep many streams in
  /// compact storage (e.g. traffic::FlowSet holds one 32-byte state per
  /// flow instead of a full Rng object). A generator rebuilt via
  /// set_state() draws the exact sequence the saved one would have —
  /// the cached Box–Muller half is deliberately dropped, so round-trips
  /// are only bit-exact for consumers that never call normal(), which
  /// holds for every traffic source.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const noexcept { return s_; }
  void set_state(const State& s) noexcept {
    s_ = s;
    have_cached_normal_ = false;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mvpn::sim
