#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mvpn::sim {

/// Opaque handle for a scheduled event; usable with Scheduler::cancel.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

/// Deterministic discrete-event scheduler.
///
/// Events fire in (time, insertion-sequence) order, so simultaneous events
/// execute in the order they were scheduled — runs are bit-reproducible for
/// a given seed. Handlers may schedule further events and may cancel
/// not-yet-fired events.
class Scheduler {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Handler fn);
  /// Schedule `fn` at now() + delay (delay >= 0).
  EventId schedule_in(SimTime delay, Handler fn);
  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Run until the queue drains or stop() is called.
  void run();
  /// Run events with time <= t_end, then set now() = t_end.
  void run_until(SimTime t_end);
  /// Request that run()/run_until() return after the current handler.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_and_execute();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace mvpn::sim
