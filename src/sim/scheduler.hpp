#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_callable.hpp"
#include "sim/time.hpp"

namespace mvpn::sim {

/// Opaque handle for a scheduled event; usable with Scheduler::cancel.
/// `seq` is the event's globally unique sequence number; `slot` names the
/// pooled node it occupies. A handle stays safely cancellable after the
/// event fires: the node's sequence number no longer matches, so the
/// cancel is an exact no-op even if the slot was recycled.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

/// Deterministic discrete-event scheduler.
///
/// Events fire in (time, insertion-sequence) order, so simultaneous events
/// execute in the order they were scheduled — runs are bit-reproducible for
/// a given seed. Handlers may schedule further events and may cancel
/// not-yet-fired events.
///
/// Steady-state operation is allocation-free: handlers live in pooled,
/// recycled event nodes (with small-buffer storage — see InlineCallable),
/// and the priority queue is an in-house 4-ary heap of 24-byte entries
/// that moves values out on pop instead of copying the whole event the way
/// `std::priority_queue::top()` forces.
class Scheduler {
 public:
  using Handler = InlineCallable;

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Handler fn);
  /// Schedule `fn` at now() + delay (delay >= 0).
  EventId schedule_in(SimTime delay, Handler fn);
  /// Cancel a pending event; exact no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Run until the queue drains or stop() is called.
  void run();
  /// Run events with time <= t_end, then set now() = t_end.
  void run_until(SimTime t_end);
  /// Request that run()/run_until() return after the current handler.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Sentinel returned by next_event_time() for an empty queue.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();
  /// Time of the earliest pending event, or kNoEventTime when none. Not
  /// const: cancelled heads are compacted away so the answer is exact.
  [[nodiscard]] SimTime next_event_time();

  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_live_;
  }
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }

  /// Pool introspection (zero-allocation assertions and sizing stats).
  [[nodiscard]] std::size_t node_pool_size() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t heap_capacity() const noexcept {
    return heap_.capacity();
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Pooled event body. The heap orders slim HeapEntry records; the
  /// callable itself stays put in its node until the event fires, so heap
  /// sifts move 24-byte PODs instead of type-erased closures.
  struct Node {
    Handler fn;
    std::uint64_t seq = 0;  ///< matches the handed-out EventId; 0 when free
    std::uint32_t next_free = kNoSlot;
    bool cancelled = false;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool earlier(const HeapEntry& a,
                                    const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  HeapEntry heap_pop_min();

  std::uint32_t acquire_node();
  void release_node(std::uint32_t slot);

  /// Pop cancelled entries off the heap head; returns false when empty.
  bool drop_cancelled_head();
  bool pop_and_execute();

  std::vector<HeapEntry> heap_;  ///< implicit 4-ary min-heap
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t cancelled_live_ = 0;  ///< cancelled entries still in heap_
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace mvpn::sim
