#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "sim/time.hpp"

namespace mvpn::sim {

/// Coordinator/worker rendezvous for conservative time windows.
///
/// The coordinator publishes an epoch — "run your shard up to time T" —
/// and blocks until every worker reports back; workers block between
/// epochs. One mutex + two condition variables, generation-counted so a
/// worker that oversleeps a notify still sees the epoch it missed. This is
/// deliberately the simplest correct thing: the barrier costs microseconds
/// per window while a window executes milliseconds of simulated traffic,
/// so lock-free cleverness here would be tuning the wrong term.
class EpochBarrier {
 public:
  explicit EpochBarrier(std::uint32_t workers) : workers_(workers) {}

  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Coordinator: publish the next window [.., target] and wake workers.
  void open(SimTime target) {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      target_ = target;
      arrived_ = 0;
      ++epoch_;
    }
    cv_open_.notify_all();
  }

  /// Coordinator: block until every worker has arrive()d for this epoch.
  void wait_all_arrived() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return arrived_ == workers_; });
  }

  /// Coordinator: wake all workers with the quit flag; next() returns false.
  void shutdown() {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      quit_ = true;
    }
    cv_open_.notify_all();
  }

  /// Worker: block for an epoch newer than `seen_epoch` (updated on
  /// return), yielding its target time. Returns false on shutdown.
  bool next(std::uint64_t& seen_epoch, SimTime& target) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_open_.wait(lock,
                  [&, this] { return quit_ || epoch_ != seen_epoch; });
    if (quit_) return false;
    seen_epoch = epoch_;
    target = target_;
    return true;
  }

  /// Worker: report this epoch's window complete.
  void arrive() {
    bool all = false;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      all = ++arrived_ == workers_;
    }
    if (all) cv_done_.notify_one();
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_open_;   ///< workers wait here between epochs
  std::condition_variable cv_done_;   ///< coordinator waits here per epoch
  std::uint32_t workers_;
  std::uint32_t arrived_ = 0;
  std::uint64_t epoch_ = 0;
  SimTime target_ = 0;
  bool quit_ = false;
};

}  // namespace mvpn::sim
