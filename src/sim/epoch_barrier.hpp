#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "sim/time.hpp"

namespace mvpn::sim {

/// Coordinator/worker rendezvous for conservative time windows.
///
/// The coordinator publishes an epoch — "run your shard up to time T" —
/// and blocks until every worker reports back; workers block between
/// epochs. The wait fast paths are lock-free: the epoch counter and the
/// arrival count are atomics, and a party expecting its peers within
/// microseconds spins a bounded number of iterations before parking on a
/// mutex/condvar. On a machine with fewer hardware threads than barrier
/// parties the spin phase is disabled outright — burning the core the
/// awaited thread needs would turn every window into a scheduling
/// quantum — which preserves the old always-park behaviour there.
///
/// Wakeups still go through the mutex: the notifier takes (and drops) the
/// lock before notifying, so a parked waiter either re-checks its
/// predicate after the notifier's unlock (mutex order makes the new epoch
/// or arrival visible) or was never parked and sees the atomic in its
/// spin. That empty critical section is once per *epoch*, not once per
/// worker — the per-worker lock round-trips of the previous barrier are
/// what this replaces.
///
/// Memory-order contract (what ShardRuntime's plain staging vectors lean
/// on): a worker's writes before arrive() happen-before the coordinator's
/// reads after wait_all_arrived() (release fetch_add / acquire load on
/// `arrived_`), and the coordinator's writes before open() happen-before
/// a worker's reads after next() (release store / acquire load on
/// `epoch_`). Epoch-counted waits mean a party that oversleeps a notify
/// still sees the epoch it missed.
class EpochBarrier {
 public:
  explicit EpochBarrier(std::uint32_t workers)
      : workers_(workers),
        // Coordinator + N workers each want a core during the rendezvous;
        // with fewer hardware threads, spinning steals cycles from the
        // very thread being waited on.
        spin_limit_(std::thread::hardware_concurrency() > workers ? 2048
                                                                  : 0) {}

  /// Explicit spin budget, overriding the hardware-concurrency heuristic.
  /// Tests use this to force the spin fast path on hosts where the
  /// heuristic would disable it (and vice versa).
  EpochBarrier(std::uint32_t workers, std::uint32_t spin_limit)
      : workers_(workers), spin_limit_(spin_limit) {}

  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Coordinator: publish the next window [.., target] and wake workers.
  void open(SimTime target) {
    target_.store(target, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    // Order the notify after any worker that checked the epoch under the
    // lock and decided to park (a worker holds the mutex from predicate
    // check through blocking, so this cannot interleave between the two).
    { const std::lock_guard<std::mutex> guard(mutex_); }
    cv_open_.notify_all();
  }

  /// Coordinator: block until every worker has arrive()d for this epoch.
  /// `parked` (optional) reports whether the wait outlived the spin budget
  /// and fell through to the condvar.
  void wait_all_arrived(bool* parked = nullptr) {
    if (parked != nullptr) *parked = false;
    for (std::uint32_t i = 0; i < spin_limit_; ++i) {
      if (arrived_.load(std::memory_order_acquire) == workers_) return;
    }
    if (parked != nullptr) *parked = true;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] {
      return arrived_.load(std::memory_order_acquire) == workers_;
    });
  }

  /// Coordinator: wake all workers with the quit flag; next() returns false.
  void shutdown() {
    quit_.store(true, std::memory_order_release);
    { const std::lock_guard<std::mutex> guard(mutex_); }
    cv_open_.notify_all();
  }

  /// Worker: block for an epoch newer than `seen_epoch` (updated on
  /// return), yielding its target time. Returns false on shutdown.
  /// `parked` (optional) reports a fall-through to the condvar path.
  bool next(std::uint64_t& seen_epoch, SimTime& target,
            bool* parked = nullptr) {
    if (parked != nullptr) *parked = false;
    for (std::uint32_t i = 0; i < spin_limit_; ++i) {
      if (quit_.load(std::memory_order_acquire)) return false;
      const std::uint64_t e = epoch_.load(std::memory_order_acquire);
      if (e != seen_epoch) {
        seen_epoch = e;
        target = target_.load(std::memory_order_relaxed);
        return true;
      }
    }
    if (parked != nullptr) *parked = true;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_open_.wait(lock, [&, this] {
      return quit_.load(std::memory_order_acquire) ||
             epoch_.load(std::memory_order_acquire) != seen_epoch;
    });
    if (quit_.load(std::memory_order_acquire)) return false;
    seen_epoch = epoch_.load(std::memory_order_acquire);
    target = target_.load(std::memory_order_relaxed);
    return true;
  }

  /// Worker: report this epoch's window complete. The last arriver wakes
  /// the coordinator (one lock round-trip per epoch).
  void arrive() {
    if (arrived_.fetch_add(1, std::memory_order_release) + 1 == workers_) {
      { const std::lock_guard<std::mutex> guard(mutex_); }
      cv_done_.notify_one();
    }
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t spin_limit() const noexcept {
    return spin_limit_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_open_;  ///< workers park here between epochs
  std::condition_variable cv_done_;  ///< coordinator parks here per epoch
  const std::uint32_t workers_;
  const std::uint32_t spin_limit_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<SimTime> target_{0};
  std::atomic<bool> quit_{false};
};

}  // namespace mvpn::sim
