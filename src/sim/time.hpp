#pragma once

#include <cstdint>

namespace mvpn::sim {

/// Simulation timestamp in integer nanoseconds.
///
/// Integer time makes runs bit-reproducible: there is no accumulation of
/// floating-point error across event scheduling, and event ordering is a
/// total order (time, insertion sequence).
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Convert a SimTime to floating seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Convert floating seconds to SimTime (rounds toward zero).
[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9);
}

/// Time to serialize `bytes` onto a link of `bits_per_second` capacity.
[[nodiscard]] constexpr SimTime transmission_time(std::uint64_t bytes,
                                                  double bits_per_second) noexcept {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              bits_per_second * 1e9);
}

}  // namespace mvpn::sim
