#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mvpn::sim {

/// Instrumentation tap for ParallelEngine. The sim layer cannot see the
/// obs stack (layering: obs links sim, not the reverse), so the engine
/// publishes per-epoch phase records through this interface and
/// obs::SyncProfiler implements it one layer up.
///
/// Threading contract — the half the implementation must honour:
///  - on_worker_epoch() runs on the *worker's* thread, once per epoch,
///    after the shard's window executed but *before* arrive(). Everything
///    the implementation writes there is therefore ordered before the
///    coordinator's reads after wait_all_arrived() by the barrier's
///    release/acquire edge, with no extra synchronization. Per-shard
///    state written here must be owned by that shard (worker-owned rings).
///  - on_coordinator_epoch() runs on the coordinator thread between
///    windows (workers parked), after the exchange hook for the same
///    epoch. Reading shard-owned state there is race-free for the same
///    reason the engine's own adaptive-window reads are.
///
/// All timing fields are raw std::chrono::steady_clock nanoseconds; the
/// consumer normalizes. Hooks must not throw and must not touch the
/// engine or schedulers.
class EngineObserver {
 public:
  /// One worker's view of one epoch.
  struct WorkerEpoch {
    std::uint32_t shard = 0;
    std::uint64_t epoch = 0;       ///< barrier epoch number
    SimTime window_start = 0;      ///< previous frontier (shard clock before)
    SimTime window_end = 0;        ///< target the coordinator published
    std::uint64_t begin_ns = 0;    ///< steady-clock stamp entering next()
    std::uint64_t wait_ns = 0;     ///< blocked in EpochBarrier::next()
    std::uint64_t exec_ns = 0;     ///< inside Scheduler::run_until()
    std::uint64_t events = 0;      ///< events executed this epoch
    bool parked = false;           ///< the wait outlived the spin and parked
  };

  /// The coordinator's view of the same epoch.
  struct CoordinatorEpoch {
    std::uint64_t epoch = 0;
    SimTime window_start = 0;
    SimTime window_end = 0;
    std::uint64_t begin_ns = 0;  ///< steady-clock stamp entering the wait
    std::uint64_t wait_ns = 0;   ///< blocked in wait_all_arrived()
    bool parked = false;
    bool widened = false;    ///< adaptive sizing stretched past the static bound
    bool idle_jump = false;  ///< every shard idle past target; window jumped
  };

  virtual ~EngineObserver() = default;

  virtual void on_worker_epoch(const WorkerEpoch& e) noexcept = 0;
  virtual void on_coordinator_epoch(const CoordinatorEpoch& e) noexcept = 0;
};

}  // namespace mvpn::sim
