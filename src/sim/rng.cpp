#include "sim/rng.hpp"

#include <cmath>

namespace mvpn::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::stream(std::uint64_t master_seed, std::uint64_t stream_id) {
  // Mix the stream id through splitmix64 before combining so consecutive
  // stream ids do not produce correlated seeds.
  std::uint64_t x = stream_id;
  const std::uint64_t mixed = splitmix64(x);
  return Rng(master_seed ^ mixed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace mvpn::sim
