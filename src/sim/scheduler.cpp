#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace mvpn::sim {

EventId Scheduler::schedule_at(SimTime t, Handler fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(fn)});
  return EventId{seq};
}

EventId Scheduler::schedule_in(SimTime delay, Handler fn) {
  if (delay < 0) {
    throw std::invalid_argument("Scheduler::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.seq);
}

bool Scheduler::pop_and_execute() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_execute()) {
  }
}

void Scheduler::run_until(SimTime t_end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Skip cancelled heads so we do not advance time for dead events.
    if (cancelled_.count(queue_.top().seq) != 0) {
      cancelled_.erase(queue_.top().seq);
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t_end) break;
    pop_and_execute();
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
}

std::size_t Scheduler::pending() const noexcept {
  return queue_.size() - cancelled_.size();
}

}  // namespace mvpn::sim
