#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mvpn::sim {

namespace {
/// 4-ary layout: children of i are 4i+1 .. 4i+4. A wider fanout halves the
/// tree depth vs a binary heap, and the four children share cache lines —
/// the classic d-ary trade that favors push/pop-heavy event queues.
constexpr std::size_t kArity = 4;
}  // namespace

void Scheduler::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Scheduler::HeapEntry Scheduler::heap_pop_min() {
  const HeapEntry min = heap_.front();
  HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root, moving holes instead of swapping.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return min;
}

std::uint32_t Scheduler::acquire_node() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = nodes_[slot].next_free;
    nodes_[slot].next_free = kNoSlot;
    return slot;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Scheduler::release_node(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.fn.reset();
  n.seq = 0;
  n.cancelled = false;
  n.next_free = free_head_;
  free_head_ = slot;
}

EventId Scheduler::schedule_at(SimTime t, Handler fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_node();
  Node& n = nodes_[slot];
  n.fn = std::move(fn);
  n.seq = seq;
  heap_push(HeapEntry{t, seq, slot});
  return EventId{seq, slot};
}

EventId Scheduler::schedule_in(SimTime delay, Handler fn) {
  if (delay < 0) {
    throw std::invalid_argument("Scheduler::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (!id.valid() || id.slot >= nodes_.size()) return;
  Node& n = nodes_[id.slot];
  // The node's live sequence number authenticates the handle: after the
  // event fires (or the slot is recycled for a newer event) the numbers no
  // longer match and the cancel is a no-op — a stale handle can neither
  // kill an unrelated event nor skew pending().
  if (n.seq != id.seq || n.cancelled) return;
  n.cancelled = true;
  ++cancelled_live_;
}

bool Scheduler::drop_cancelled_head() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!nodes_[top.slot].cancelled) return true;
    const HeapEntry e = heap_pop_min();
    --cancelled_live_;
    release_node(e.slot);
  }
  return false;
}

bool Scheduler::pop_and_execute() {
  if (!drop_cancelled_head()) return false;
  const HeapEntry e = heap_pop_min();
  // Move the handler out before running it: the handler may schedule new
  // events, which can grow nodes_ and invalidate references into it.
  Handler fn = std::move(nodes_[e.slot].fn);
  release_node(e.slot);
  now_ = e.time;
  ++executed_;
  fn();
  return true;
}

SimTime Scheduler::next_event_time() {
  if (!drop_cancelled_head()) return kNoEventTime;
  return heap_.front().time;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_execute()) {
  }
}

void Scheduler::run_until(SimTime t_end) {
  stopped_ = false;
  // Skip cancelled heads first so we do not advance time for dead events.
  while (!stopped_ && drop_cancelled_head()) {
    if (heap_.front().time > t_end) break;
    pop_and_execute();
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
}

}  // namespace mvpn::sim
