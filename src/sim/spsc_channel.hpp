#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace mvpn::sim {

/// Bounded single-producer / single-consumer FIFO with an unbounded
/// mutex-protected spill list behind it.
///
/// Cross-shard packet handoff pushes from exactly one worker thread per
/// channel and drains from the coordinator at epoch barriers, so the fast
/// path is a classic lock-free ring (acquire/release on head/tail, no CAS).
/// The consumer only drains between windows; a bursty window can therefore
/// produce more than `capacity` items with nobody consuming. Rather than
/// block the worker (deadlock: the consumer is waiting for the barrier the
/// worker would never reach) or drop (determinism), push() spills to a
/// locked vector once the ring fills and keeps spilling until the next
/// drain — spilling only after filling preserves FIFO order, because the
/// consumer empties the ring before the spill and the producer never
/// returns to the ring mid-window.
template <typename T>
class SpscChannel {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscChannel(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// Producer: enqueue unconditionally (ring, else spill). Never blocks.
  void push(T v) {
    if (!spilling_.load(std::memory_order_relaxed)) {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t t = tail_.load(std::memory_order_acquire);
      if (h - t <= mask_) {
        ring_[static_cast<std::size_t>(h) & mask_] = std::move(v);
        head_.store(h + 1, std::memory_order_release);
        return;
      }
      spilling_.store(true, std::memory_order_release);
    }
    const std::lock_guard<std::mutex> guard(spill_mutex_);
    spill_.push_back(std::move(v));
    spilled_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Producer: ring-only push; false when full (unit tests / probes).
  bool try_push(T v) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t > mask_) return false;
    ring_[static_cast<std::size_t>(h) & mask_] = std::move(v);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: pop one item from the ring (ignores the spill list).
  [[nodiscard]] std::optional<T> try_pop() {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t == h) return std::nullopt;
    std::optional<T> out(std::move(ring_[static_cast<std::size_t>(t) & mask_]));
    tail_.store(t + 1, std::memory_order_release);
    return out;
  }

  /// Consumer: feed every queued item to `f` in FIFO order (ring first,
  /// then the spill). Must only run while the producer is quiescent (the
  /// engine calls it inside an epoch barrier); a producer racing with
  /// drain() could re-enter the ring ahead of unspilled items.
  template <typename F>
  void drain(F&& f) {
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    while (t != h) {
      f(std::move(ring_[static_cast<std::size_t>(t) & mask_]));
      ++t;
    }
    tail_.store(t, std::memory_order_release);
    if (spilling_.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> guard(spill_mutex_);
      for (T& v : spill_) f(std::move(v));
      spill_.clear();
      spilling_.store(false, std::memory_order_release);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Items that overflowed into the spill list (cumulative).
  [[nodiscard]] std::uint64_t spilled() const noexcept {
    return spilled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           !spilling_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< consumer-owned
  std::atomic<bool> spilling_{false};
  std::mutex spill_mutex_;
  std::vector<T> spill_;
  std::atomic<std::uint64_t> spilled_{0};  ///< readable while producing
};

}  // namespace mvpn::sim
