#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine_observer.hpp"
#include "sim/epoch_barrier.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mvpn::sim {

/// Conservative parallel discrete-event driver.
///
/// Each shard is one Scheduler advanced by a dedicated worker thread in
/// lock-step windows. The safety argument (INTERNALS.md §9, §11): with
/// every cross-shard interaction delayed by at least `lookahead`, an
/// event executed at time u can only create remote work at times >=
/// u + lookahead, so any window ending before min(u) + lookahead can be
/// exchanged at the barrier — before any shard enters the next window —
/// and the work always lands ahead of its execution time. No shard ever
/// receives an event in its past, which is exactly the serial causality
/// guarantee; combined with each Scheduler's (time, insertion-seq) order
/// and a deterministic exchange order, the parallel run replays the serial
/// event history.
///
/// Window sizing is adaptive: at every barrier the coordinator (workers
/// parked, queues stable) reads each shard's next pending event time and
/// extends the window to next_min + lookahead - 1 — never narrower than
/// the static frontier + lookahead bound, and when every shard is idle
/// past the target the window jumps straight to it. Quiet stretches
/// (converged control plane, sparse flows) therefore cost barriers
/// proportional to *events*, not to elapsed simulated time.
///
/// The engine itself is topology-agnostic: cross-shard traffic moves
/// through the `exchange` hook (net::ShardRuntime drains its channels and
/// schedules deliveries there), and anything that must observe a globally
/// consistent instant — metrics snapshots, leftover events on the serial
/// "global" scheduler — registers as a global action executed between
/// windows, when all shards rest at the same time.
class ParallelEngine {
 public:
  struct ShardRef {
    std::uint32_t id = 0;
    Scheduler* scheduler = nullptr;
  };

  /// `lookahead` must be >= 1 ns (the minimum cross-shard latency).
  /// `global` (optional) is the serial scheduler whose residual events —
  /// anything not owned by a shard — run between windows at exact times.
  ParallelEngine(std::vector<ShardRef> shards, SimTime lookahead,
                 Scheduler* global);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Coordinator-side hook run inside every barrier, after all shards
  /// reached the window end passed in: move cross-shard work now.
  void set_exchange(std::function<void(SimTime window_end)> fn) {
    exchange_ = std::move(fn);
  }

  /// Epoch-level instrumentation tap (obs::SyncProfiler). Must be set
  /// before the first run_until() — workers latch it at thread start.
  /// Null (the default) keeps the hot loop free of clock reads: the only
  /// residual cost is one untaken branch per epoch.
  void set_observer(EngineObserver* obs) { observer_ = obs; }
  [[nodiscard]] EngineObserver* observer() const noexcept {
    return observer_;
  }

  /// Run `fn` between windows at `first`, `first + period`, ... — each
  /// invocation sees every shard past all events before that instant and
  /// none at or after it (the serial tick-before-data convention).
  void add_periodic_action(SimTime first, SimTime period,
                           std::function<void()> fn);

  /// Drive all shards (and global actions) to exactly `t_end`. May be
  /// called repeatedly with increasing times; workers persist in between.
  void run_until(SimTime t_end);

  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// Windows the adaptive sizing stretched past the static frontier +
  /// lookahead bound (quiet shards let the window jump to the next event).
  [[nodiscard]] std::uint64_t widened_windows() const noexcept {
    return widened_windows_;
  }
  /// Windows where every shard was idle past the target and the window
  /// jumped straight to it (the degenerate best case of widening).
  [[nodiscard]] std::uint64_t idle_jumps() const noexcept {
    return idle_jumps_;
  }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Action {
    SimTime at = 0;
    SimTime period = 0;  ///< 0: one-shot
    std::function<void()> fn;
  };

  void worker(ShardRef shard);
  void start_workers();
  [[nodiscard]] SimTime next_global_time() const;
  void fire_global(SimTime at);
  void rethrow_worker_error();

  std::vector<ShardRef> shards_;
  SimTime lookahead_;
  Scheduler* global_;
  EngineObserver* observer_ = nullptr;
  std::function<void(SimTime)> exchange_;
  std::vector<Action> actions_;  ///< small; scanned linearly

  EpochBarrier barrier_;
  std::vector<std::thread> threads_;
  bool workers_running_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t widened_windows_ = 0;
  std::uint64_t idle_jumps_ = 0;
  SimTime frontier_ = 0;  ///< all shards have completed events <= frontier_

  std::mutex error_mutex_;
  std::exception_ptr worker_error_;
};

}  // namespace mvpn::sim
