#pragma once

#include <cstdint>

namespace mvpn::sim {

/// Shard identity of the calling thread.
///
/// The parallel engine partitions a topology into K shards, each driven by
/// its own Scheduler on its own worker thread. Components that were written
/// against one ambient scheduler (links, routers, sources) keep their code
/// shape: Topology's accessors consult the calling thread's shard id and
/// hand back that shard's scheduler / packet factory / recorder. The
/// coordinator thread (and every thread in a plain serial run) carries
/// kNoShard, which routes the accessors to the original serial objects.
inline constexpr std::uint32_t kNoShard = ~std::uint32_t{0};

namespace detail {
inline thread_local std::uint32_t tls_shard_id = kNoShard;
}  // namespace detail

/// Shard id of the calling thread; kNoShard outside shard workers.
[[nodiscard]] inline std::uint32_t current_shard() noexcept {
  return detail::tls_shard_id;
}

/// RAII: mark the calling thread as belonging to shard `id` for the guard's
/// lifetime. Worker threads install one for their whole run; tests may nest.
class ShardGuard {
 public:
  explicit ShardGuard(std::uint32_t id) noexcept
      : previous_(detail::tls_shard_id) {
    detail::tls_shard_id = id;
  }
  ~ShardGuard() { detail::tls_shard_id = previous_; }

  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  std::uint32_t previous_;
};

}  // namespace mvpn::sim
