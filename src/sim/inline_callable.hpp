#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mvpn::sim {

/// Move-only type-erased `void()` callable with small-buffer storage.
///
/// The scheduler's hot path schedules millions of lambdas that capture a
/// couple of pointers (a node, a PacketPtr, an endpoint). `std::function`
/// would heap-allocate most of them (libstdc++'s inline buffer is one
/// pointer wide) and forces copyability, which in turn forces refcount
/// churn on captured smart pointers. This wrapper stores any callable of
/// up to kInlineBytes inline in the event node and merely *moves* it when
/// the event fires; larger callables (rare — tracing hooks, test
/// scaffolding) fall back to a single heap allocation.
class InlineCallable {
 public:
  /// Sized so an event node (callable + time/seq bookkeeping) stays within
  /// one cache line, yet fits every data-plane capture set in the tree
  /// (worst case today: `this` + reference + PacketPtr + endpoint = 32 B,
  /// and a moved-in `std::function` at 32 B).
  static constexpr std::size_t kInlineBytes = 48;

  /// True when F is stored in the inline buffer (no heap allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineCallable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  InlineCallable(InlineCallable&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallable& operator=(InlineCallable&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct into `dst` from `src`, then destroy `src`'s value.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static Fn* as(void* p) noexcept {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops{
        [](void* self) { (*as<Fn>(self))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn(std::move(*as<Fn>(src)));
          as<Fn>(src)->~Fn();
        },
        [](void* self) noexcept { as<Fn>(self)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() noexcept {
    // The stored Fn* is trivially destructible; only the pointee needs
    // explicit lifetime management.
    static constexpr Ops ops{
        [](void* self) { (**as<Fn*>(self))(); },
        [](void* dst, void* src) noexcept { ::new (dst) Fn*(*as<Fn*>(src)); },
        [](void* self) noexcept { delete *as<Fn*>(self); },
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mvpn::sim
