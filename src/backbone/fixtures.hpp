#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpls/rsvp_te.hpp"
#include "vpn/inter_as.hpp"
#include "vpn/ipsec_vpn.hpp"
#include "vpn/overlay.hpp"
#include "vpn/service.hpp"

namespace mvpn::backbone {

/// Parameters of a provider backbone (Fig. 4 of the paper, generalized):
/// a ring of P routers with PEs dual-homed onto it.
struct BackboneConfig {
  std::size_t p_count = 4;
  std::size_t pe_count = 4;
  /// Extra core chords: link P[i] to P[(i+stride) % p_count] for every i
  /// (each chord wired once). 0 disables; the topology generator sets
  /// p_count/2 to turn the ring into a ladder mesh with ~half the diameter.
  std::size_t core_chord_stride = 0;
  double core_bw_bps = 45e6;  ///< DS3-class trunks (paper era)
  double edge_bw_bps = 10e6;  ///< PE–CE access circuits
  sim::SimTime core_delay = 2 * sim::kMillisecond;
  sim::SimTime edge_delay = 1 * sim::kMillisecond;
  routing::Bgp::Mode bgp_mode = routing::Bgp::Mode::kFullMesh;
  std::size_t route_reflector_count = 0;  ///< used in kRouteReflector mode
  net::QueueDiscFactory core_queue;       ///< default: drop-tail(100)
  std::uint64_t seed = 1;
};

/// Owns a complete MPLS VPN provider network: topology, control plane
/// (IGP/LDP/BGP/RSVP-TE) and the VPN service, plus helpers to hang
/// enterprise sites off it. This is the shared substrate of the examples,
/// integration tests and benchmarks.
class MplsBackbone {
 public:
  explicit MplsBackbone(const BackboneConfig& config);

  /// Attach a new CE to the given PE and register its site in `vpn`.
  struct Site {
    vpn::Router* ce = nullptr;
    ip::Prefix prefix;
    std::size_t pe_index = 0;
  };
  Site add_site(vpn::VpnId vpn, std::size_t pe_index,
                const ip::Prefix& site_prefix);

  /// service.start() + drain the control plane.
  void start_and_converge();

  /// For hand-wired cores (p_count == pe_count == 0): register the routers
  /// so pe()/p() accessors work.
  void expose_custom(std::vector<vpn::Router*> ps,
                     std::vector<vpn::Router*> pes) {
    ps_ = std::move(ps);
    pes_ = std::move(pes);
  }

  [[nodiscard]] vpn::Router& pe(std::size_t i) { return *pes_.at(i); }
  [[nodiscard]] vpn::Router& p(std::size_t i) { return *ps_.at(i); }
  [[nodiscard]] const std::vector<vpn::Router*>& pes() const { return pes_; }
  [[nodiscard]] const std::vector<vpn::Router*>& ps() const { return ps_; }
  [[nodiscard]] const std::vector<vpn::Router*>& ces() const { return ces_; }

  net::Topology topo;
  routing::ControlPlane cp;
  routing::Igp igp;
  mpls::MplsDomain domain;
  mpls::Ldp ldp;
  routing::Bgp bgp;
  mpls::RsvpTe rsvp;
  vpn::MplsVpnService service;

 private:
  BackboneConfig config_;
  std::vector<vpn::Router*> ps_;
  std::vector<vpn::Router*> pes_;
  std::vector<vpn::Router*> rrs_;
  std::vector<vpn::Router*> ces_;
};

/// The small Figure-2 scenario: two VPNs, two sites each, across a
/// 3-router provider core. Used by the quickstart example and the
/// figure-level integration tests.
struct Figure2Scenario {
  std::unique_ptr<MplsBackbone> backbone;
  vpn::VpnId vpn1 = 0;
  vpn::VpnId vpn2 = 0;
  MplsBackbone::Site v1_site1, v1_site2, v2_site1, v2_site2;
};
[[nodiscard]] Figure2Scenario make_figure2_scenario(std::uint64_t seed = 1);

/// Diamond topology for the traffic-engineering experiment (E4):
///
///     PE0 ── P0 ──── P1 ── PE1        (short path, cost 2)
///             \      /
///              P2───             (long path, cost 4 via P2)
///
/// Both PE0→PE1 and PE2... shortest paths share P0–P1; CSPF can place one
/// LSP on the P0–P2–P1 detour.
struct DiamondScenario {
  std::unique_ptr<MplsBackbone> backbone;  // built with custom wiring
  net::LinkId hot_link = net::kInvalidLink;  ///< P0–P1
};
[[nodiscard]] DiamondScenario make_diamond_scenario(
    double core_bw_bps = 10e6, std::uint64_t seed = 1,
    net::QueueDiscFactory core_queue = {});

/// Overlay (PVC full-mesh) backbone with the same ring shape, for the E1
/// baseline: plain routers switching virtual circuits.
class OverlayBackbone {
 public:
  OverlayBackbone(std::size_t core_count, std::uint64_t seed = 1);

  vpn::Router& add_ce(std::size_t core_index, const std::string& name);

  net::Topology topo;
  routing::ControlPlane cp;
  vpn::OverlayVpnService service;

  [[nodiscard]] const std::vector<vpn::Router*>& cores() const {
    return cores_;
  }

 private:
  std::vector<vpn::Router*> cores_;
};

/// Random provider backbone: a ring of P routers (guaranteeing
/// connectivity) plus random chords with probability `chord_prob`, PEs
/// attached to one or two random P routers. Used by the property tests to
/// check that the architecture's invariants (isolation, any-to-any
/// reachability, state linearity) hold on arbitrary topologies, not just
/// the hand-built figures.
[[nodiscard]] std::unique_ptr<MplsBackbone> make_random_backbone(
    std::size_t p_count, std::size_t pe_count, double chord_prob,
    std::uint64_t seed);

/// Two cooperating providers (paper §5: "building VPNs using multiple
/// carriers") joined by an inter-AS option-A peering:
///
///   CE ── PE_A ── P_A ── ASBR_A ══ ASBR_B ── P_B ── PE_B ── CE
///
/// Each provider runs its own IGP/LDP/MP-BGP; only the peering crosses
/// the boundary.
class TwoProviderBackbone {
 public:
  explicit TwoProviderBackbone(std::uint64_t seed = 1);

  /// Attach a site in provider A or B (PE index within that provider).
  MplsBackbone::Site add_site_a(vpn::VpnId vpn, const ip::Prefix& prefix);
  MplsBackbone::Site add_site_b(vpn::VpnId vpn, const ip::Prefix& prefix);

  void start_and_converge();

  net::Topology topo;
  routing::ControlPlane cp;
  // Provider A (ASN 65000).
  routing::Igp igp_a;
  mpls::MplsDomain domain_a;
  mpls::Ldp ldp_a;
  routing::Bgp bgp_a;
  vpn::MplsVpnService service_a;
  // Provider B (ASN 65001).
  routing::Igp igp_b;
  mpls::MplsDomain domain_b;
  mpls::Ldp ldp_b;
  routing::Bgp bgp_b;
  vpn::MplsVpnService service_b;

  vpn::Router* pe_a = nullptr;
  vpn::Router* asbr_a = nullptr;
  vpn::Router* pe_b = nullptr;
  vpn::Router* asbr_b = nullptr;
  std::unique_ptr<vpn::InterAsPeering> peering;

 private:
  vpn::Router* p_a_ = nullptr;
  vpn::Router* p_b_ = nullptr;
  std::vector<vpn::Router*> ces_;
};

/// Routed-IP backbone with IPsec gateways at the edge (E5 baseline).
class IpsecBackbone {
 public:
  IpsecBackbone(std::size_t core_count, ipsec::CipherSuite suite,
                std::uint64_t seed = 1, double edge_bw_bps = 10e6);

  vpn::Router& add_gateway(std::size_t core_index, const std::string& name);
  void start_and_converge();

  net::Topology topo;
  routing::ControlPlane cp;
  routing::Igp igp;
  vpn::IpsecVpnService service;

 private:
  std::vector<vpn::Router*> cores_;
  double edge_bw_bps_;
};

}  // namespace mvpn::backbone
