#include "backbone/partition.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <ostream>
#include <set>

#include "vpn/router.hpp"

namespace mvpn::backbone {

namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

/// Small union-find with component sizes (path halving, union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  [[nodiscard]] std::uint32_t size_of(std::uint32_t x) {
    return size_[find(x)];
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace

ShardPlan compute_shard_plan(const net::Topology& topo, std::uint32_t shards) {
  const auto n = static_cast<std::uint32_t>(topo.node_count());
  ShardPlan plan;
  if (shards < 1) shards = 1;
  if (n == 0) {
    plan.shard_count = 1;
    return plan;
  }
  if (shards > n) shards = n;
  plan.node_shard.assign(n, 0);
  if (shards == 1) {
    plan.shard_count = 1;
    return plan;
  }

  // Balance target: the engine's wall clock follows the busiest shard, so
  // no shard should exceed its fair share by more than the rounding node.
  const std::uint32_t cap = (n + shards - 1) / shards;

  // Step 1 — pick the cut-delay threshold D. Only links with delay >= D may
  // cross shards (lookahead = min cut delay >= D), so every component of
  // the sub-D "fast" graph must live inside one shard. Try thresholds from
  // the slowest distinct delay down and keep the largest one whose fast
  // clusters all fit under the cap; the smallest distinct delay always
  // works (its fast graph is empty — every cluster is a single node).
  std::vector<sim::SimTime> thresholds;
  thresholds.reserve(topo.link_count());
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    thresholds.push_back(topo.link(id).config().prop_delay);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::vector<std::uint32_t> cluster_of(n);
  std::uint32_t clusters = n;
  {
    bool found = false;
    for (sim::SimTime d : thresholds) {
      UnionFind uf(n);
      for (net::LinkId id = 0; id < topo.link_count(); ++id) {
        const net::Link& l = topo.link(id);
        if (l.config().prop_delay < d) {
          uf.unite(l.end_a().node, l.end_b().node);
        }
      }
      std::uint32_t largest = 0;
      for (std::uint32_t v = 0; v < n; ++v) {
        largest = std::max(largest, uf.size_of(v));
      }
      if (largest > cap) continue;
      // Number clusters by first appearance (node-id order): deterministic.
      std::vector<std::uint32_t> root_cluster(n, kUnassigned);
      std::uint32_t next = 0;
      for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t r = uf.find(v);
        if (root_cluster[r] == kUnassigned) root_cluster[r] = next++;
        cluster_of[v] = root_cluster[r];
      }
      clusters = next;
      found = true;
      break;
    }
    if (!found) {
      // No links at all: every node is its own cluster.
      std::iota(cluster_of.begin(), cluster_of.end(), std::uint32_t{0});
      clusters = n;
    }
  }

  std::vector<std::uint32_t> weight(clusters, 0);
  for (std::uint32_t v = 0; v < n; ++v) ++weight[cluster_of[v]];
  std::vector<std::set<std::uint32_t>> adj(clusters);
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& l = topo.link(id);
    const std::uint32_t a = cluster_of[l.end_a().node];
    const std::uint32_t b = cluster_of[l.end_b().node];
    if (a != b) {
      adj[a].insert(b);
      adj[b].insert(a);
    }
  }

  // Step 2 — grow up to `shards` capacity-bounded regions over the cluster
  // graph. Each region seeds at the lowest-numbered unassigned cluster and
  // repeatedly absorbs the lowest-numbered frontier cluster that still fits
  // under the cap; when nothing adjacent fits, the next region starts.
  // Frontier-based growth keeps regions contiguous where the cap allows,
  // which keeps cross-shard traffic (not correctness) low.
  std::vector<std::uint32_t> region_of(clusters, kUnassigned);
  std::vector<std::uint32_t> region_weight;
  std::uint32_t seed_scan = 0;
  while (region_weight.size() < shards) {
    while (seed_scan < clusters && region_of[seed_scan] != kUnassigned) {
      ++seed_scan;
    }
    if (seed_scan == clusters) break;  // every cluster already placed
    const auto r = static_cast<std::uint32_t>(region_weight.size());
    region_weight.push_back(0);
    std::set<std::uint32_t> frontier{seed_scan};
    while (!frontier.empty()) {
      std::uint32_t pick = kUnassigned;
      for (std::uint32_t c : frontier) {
        if (region_weight[r] + weight[c] <= cap) {
          pick = c;
          break;
        }
      }
      if (pick == kUnassigned) break;  // region full (nothing fits)
      frontier.erase(pick);
      region_of[pick] = r;
      region_weight[r] += weight[pick];
      for (std::uint32_t nbr : adj[pick]) {
        if (region_of[nbr] == kUnassigned) frontier.insert(nbr);
      }
    }
  }

  // Step 3 — clusters stranded by full neighbourhoods (or disconnected
  // from every seed) pool onto the lightest region, lightest-first: the
  // overflow lands where it hurts the critical path least. These clusters
  // may sit away from the rest of their region; that only adds cut links
  // (all still >= D), never unsafe ones.
  for (std::uint32_t c = 0; c < clusters; ++c) {
    if (region_of[c] != kUnassigned) continue;
    std::uint32_t best = 0;
    for (std::uint32_t r = 1; r < region_weight.size(); ++r) {
      if (region_weight[r] < region_weight[best]) best = r;
    }
    region_of[c] = best;
    region_weight[best] += weight[c];
  }

  // Number shards by each one's smallest node id (deterministic).
  std::vector<std::uint32_t> remap(region_weight.size(), kUnassigned);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t r = region_of[cluster_of[v]];
    if (remap[r] == kUnassigned) remap[r] = next++;
    plan.node_shard[v] = remap[r];
  }
  plan.shard_count = next;

  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& l = topo.link(id);
    if (plan.node_shard[l.end_a().node] != plan.node_shard[l.end_b().node]) {
      plan.cut_links.push_back(id);
      const sim::SimTime d = l.config().prop_delay;
      if (plan.lookahead == 0 || d < plan.lookahead) plan.lookahead = d;
    }
  }
  return plan;
}

void report_shard_plan(const ShardPlan& plan, const net::Topology& topo,
                       std::ostream& out) {
  out << "partition: " << plan.shard_count << " shards, cut "
      << plan.cut_links.size() << "/" << topo.link_count()
      << " links, lookahead " << sim::to_seconds(plan.lookahead) * 1e6
      << " us\n";
  if (!plan.parallel()) return;
  std::vector<std::size_t> nodes(plan.shard_count, 0);
  std::vector<std::size_t> ces(plan.shard_count, 0);
  for (ip::NodeId v = 0; v < topo.node_count(); ++v) {
    const std::uint32_t s = plan.node_shard[v];
    ++nodes[s];
    const auto* r = dynamic_cast<const vpn::Router*>(&topo.node(v));
    if (r != nullptr && r->role() == vpn::Role::kCe) ++ces[s];
  }
  for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
    out << "partition: shard " << s << ": " << nodes[s] << " nodes, "
        << ces[s] << " CE sites\n";
  }
}

}  // namespace mvpn::backbone
