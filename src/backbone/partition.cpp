#include "backbone/partition.hpp"

#include <algorithm>
#include <functional>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "vpn/router.hpp"

namespace mvpn::backbone {

namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

/// Small union-find with component sizes (path halving, union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  [[nodiscard]] std::uint32_t size_of(std::uint32_t x) {
    return size_[find(x)];
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace

ShardPlan compute_shard_plan(const net::Topology& topo, std::uint32_t shards) {
  return compute_shard_plan(topo, shards, {});
}

ShardPlan compute_shard_plan(const net::Topology& topo, std::uint32_t shards,
                             const std::vector<std::uint64_t>& node_weight) {
  const auto n = static_cast<std::uint32_t>(topo.node_count());
  ShardPlan plan;
  if (shards < 1) shards = 1;
  if (n == 0) {
    plan.shard_count = 1;
    return plan;
  }
  if (shards > n) shards = n;
  plan.node_shard.assign(n, 0);
  if (shards == 1) {
    plan.shard_count = 1;
    return plan;
  }

  // Per-node balance weights: all-1 (node counting — the historical plan)
  // unless a measured flow profile supplies real load. Zero weights clamp
  // to 1 so idle nodes still count as occupancy, and so the unweighted
  // call is exactly the all-1 case.
  std::vector<std::uint64_t> w(n, 1);
  for (std::size_t v = 0; v < node_weight.size() && v < w.size(); ++v) {
    w[v] = std::max<std::uint64_t>(node_weight[v], 1);
  }

  // Balance target: the engine's wall clock follows the busiest shard, so
  // no shard should exceed its fair share by more than rounding — but an
  // indivisible heaviest node must still fit somewhere.
  const std::uint64_t total_w = std::accumulate(w.begin(), w.end(),
                                                std::uint64_t{0});
  const std::uint64_t cap = std::max((total_w + shards - 1) / shards,
                                     *std::max_element(w.begin(), w.end()));

  // Step 1 — pick the cut-delay threshold D. Only links with delay >= D may
  // cross shards (lookahead = min cut delay >= D), so every component of
  // the sub-D "fast" graph must live inside one shard. Try thresholds from
  // the slowest distinct delay down and keep the largest one whose fast
  // clusters all fit under the cap; the smallest distinct delay always
  // works (its fast graph is empty — every cluster is a single node).
  std::vector<sim::SimTime> thresholds;
  thresholds.reserve(topo.link_count());
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    thresholds.push_back(topo.link(id).config().prop_delay);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::vector<std::uint32_t> cluster_of(n);
  std::uint32_t clusters = n;
  {
    bool found = false;
    for (sim::SimTime d : thresholds) {
      UnionFind uf(n);
      for (net::LinkId id = 0; id < topo.link_count(); ++id) {
        const net::Link& l = topo.link(id);
        if (l.config().prop_delay < d) {
          uf.unite(l.end_a().node, l.end_b().node);
        }
      }
      std::vector<std::uint64_t> root_w(n, 0);
      for (std::uint32_t v = 0; v < n; ++v) root_w[uf.find(v)] += w[v];
      const std::uint64_t largest =
          *std::max_element(root_w.begin(), root_w.end());
      if (largest > cap) continue;
      // Number clusters by first appearance (node-id order): deterministic.
      std::vector<std::uint32_t> root_cluster(n, kUnassigned);
      std::uint32_t next = 0;
      for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t r = uf.find(v);
        if (root_cluster[r] == kUnassigned) root_cluster[r] = next++;
        cluster_of[v] = root_cluster[r];
      }
      clusters = next;
      found = true;
      break;
    }
    if (!found) {
      // No links at all: every node is its own cluster.
      std::iota(cluster_of.begin(), cluster_of.end(), std::uint32_t{0});
      clusters = n;
    }
  }

  std::vector<std::uint64_t> weight(clusters, 0);
  for (std::uint32_t v = 0; v < n; ++v) weight[cluster_of[v]] += w[v];
  std::vector<std::set<std::uint32_t>> adj(clusters);
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& l = topo.link(id);
    const std::uint32_t a = cluster_of[l.end_a().node];
    const std::uint32_t b = cluster_of[l.end_b().node];
    if (a != b) {
      adj[a].insert(b);
      adj[b].insert(a);
    }
  }

  // Step 2 — grow up to `shards` capacity-bounded regions over the cluster
  // graph. Each region seeds at the lowest-numbered unassigned cluster and
  // repeatedly absorbs the lowest-numbered frontier cluster that still fits
  // under the cap; when nothing adjacent fits, the next region starts.
  // Frontier-based growth keeps regions contiguous where the cap allows,
  // which keeps cross-shard traffic (not correctness) low.
  std::vector<std::uint32_t> region_of(clusters, kUnassigned);
  std::vector<std::uint64_t> region_weight;
  std::uint32_t seed_scan = 0;
  while (region_weight.size() < shards) {
    while (seed_scan < clusters && region_of[seed_scan] != kUnassigned) {
      ++seed_scan;
    }
    if (seed_scan == clusters) break;  // every cluster already placed
    const auto r = static_cast<std::uint32_t>(region_weight.size());
    region_weight.push_back(0);
    std::set<std::uint32_t> frontier{seed_scan};
    while (!frontier.empty()) {
      std::uint32_t pick = kUnassigned;
      for (std::uint32_t c : frontier) {
        if (region_weight[r] + weight[c] <= cap) {
          pick = c;
          break;
        }
      }
      if (pick == kUnassigned) break;  // region full (nothing fits)
      frontier.erase(pick);
      region_of[pick] = r;
      region_weight[r] += weight[pick];
      for (std::uint32_t nbr : adj[pick]) {
        if (region_of[nbr] == kUnassigned) frontier.insert(nbr);
      }
    }
  }

  // Step 3 — clusters stranded by full neighbourhoods (or disconnected
  // from every seed) pool onto the lightest region, lightest-first: the
  // overflow lands where it hurts the critical path least. These clusters
  // may sit away from the rest of their region; that only adds cut links
  // (all still >= D), never unsafe ones.
  for (std::uint32_t c = 0; c < clusters; ++c) {
    if (region_of[c] != kUnassigned) continue;
    std::uint32_t best = 0;
    for (std::uint32_t r = 1; r < region_weight.size(); ++r) {
      if (region_weight[r] < region_weight[best]) best = r;
    }
    region_of[c] = best;
    region_weight[best] += weight[c];
  }

  // Number shards by each one's smallest node id (deterministic).
  std::vector<std::uint32_t> remap(region_weight.size(), kUnassigned);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t r = region_of[cluster_of[v]];
    if (remap[r] == kUnassigned) remap[r] = next++;
    plan.node_shard[v] = remap[r];
  }
  plan.shard_count = next;

  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& l = topo.link(id);
    if (plan.node_shard[l.end_a().node] != plan.node_shard[l.end_b().node]) {
      plan.cut_links.push_back(id);
      const sim::SimTime d = l.config().prop_delay;
      if (plan.lookahead == 0 || d < plan.lookahead) plan.lookahead = d;
    }
  }
  return plan;
}

FlowProfile measure_flow_profile(const net::Topology& topo) {
  FlowProfile p;
  p.node_weight.assign(topo.node_count(), 0);
  p.link_weight.assign(topo.link_count(), 0);
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& l = topo.link(id);
    const ip::NodeId a = l.end_a().node;
    const ip::NodeId b = l.end_b().node;
    const std::uint64_t ab = l.tx_from(a).packets.value();
    const std::uint64_t ba = l.tx_from(b).packets.value();
    p.link_weight[id] = ab + ba;
    // Every packet on the wire is work at both ends: enqueue/serialize at
    // the sender, receive/forward at the receiver.
    p.node_weight[a] += ab + ba;
    p.node_weight[b] += ab + ba;
  }
  return p;
}

void write_flow_profile(const FlowProfile& profile, const net::Topology& topo,
                        std::ostream& out) {
  out << "flowprofile v1\n";
  out << "nodes " << profile.node_weight.size() << "\n";
  for (std::size_t v = 0; v < profile.node_weight.size(); ++v) {
    out << "node " << v << " " << profile.node_weight[v];
    if (v < topo.node_count()) out << " # " << topo.node(v).name();
    out << "\n";
  }
  out << "links " << profile.link_weight.size() << "\n";
  for (std::size_t l = 0; l < profile.link_weight.size(); ++l) {
    out << "link " << l << " " << profile.link_weight[l] << "\n";
  }
}

bool load_flow_profile(std::istream& in, FlowProfile* profile,
                       std::string* err) {
  auto fail = [err](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  std::string line;
  if (!std::getline(in, line) || line.rfind("flowprofile v1", 0) != 0) {
    return fail("flow profile: missing 'flowprofile v1' header");
  }
  FlowProfile p;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank / comment-only line
    if (kind == "nodes" || kind == "links") continue;  // counts are advisory
    std::size_t id = 0;
    std::uint64_t weight = 0;
    if (!(ls >> id >> weight)) {
      return fail("flow profile: malformed line: " + line);
    }
    if (kind != "node" && kind != "link") {
      return fail("flow profile: unknown record '" + kind + "'");
    }
    auto& vec = kind == "node" ? p.node_weight : p.link_weight;
    if (id >= vec.size()) vec.resize(id + 1, 0);
    vec[id] = weight;
  }
  *profile = std::move(p);
  return true;
}

void report_shard_plan(const ShardPlan& plan, const net::Topology& topo,
                       std::ostream& out,
                       const std::vector<std::uint64_t>& node_weight) {
  out << "partition: " << plan.shard_count << " shards, cut "
      << plan.cut_links.size() << "/" << topo.link_count()
      << " links, lookahead " << sim::to_seconds(plan.lookahead) * 1e6
      << " us\n";
  if (!plan.parallel()) return;
  std::vector<std::size_t> nodes(plan.shard_count, 0);
  std::vector<std::size_t> ces(plan.shard_count, 0);
  std::vector<std::uint64_t> flow_w(plan.shard_count, 0);
  std::uint64_t total_w = 0;
  for (ip::NodeId v = 0; v < topo.node_count(); ++v) {
    const std::uint32_t s = plan.node_shard[v];
    ++nodes[s];
    const auto* r = dynamic_cast<const vpn::Router*>(&topo.node(v));
    if (r != nullptr && r->role() == vpn::Role::kCe) ++ces[s];
    if (v < node_weight.size()) {
      flow_w[s] += node_weight[v];
      total_w += node_weight[v];
    }
  }
  for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
    out << "partition: shard " << s << ": " << nodes[s] << " nodes, "
        << ces[s] << " CE sites";
    if (total_w != 0) {
      out << ", flow weight " << flow_w[s] << " ("
          << static_cast<double>(flow_w[s]) * 100.0 /
                 static_cast<double>(total_w)
          << "%)";
    }
    out << "\n";
  }
}

}  // namespace mvpn::backbone
