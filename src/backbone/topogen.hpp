#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backbone/fixtures.hpp"
#include "ip/address.hpp"
#include "qos/dscp.hpp"

namespace mvpn::backbone {

/// Parameters of a generated ISP-scale provider network. Everything the
/// generator emits is a pure function of this struct, so two hosts (or two
/// runs) handed the same parameters build byte-identical scenarios — the
/// determinism tests hash the expanded plan to prove it.
///
/// The shape follows the paper's deployment sketch scaled up: a chorded
/// ring of P routers (the "ladder" — ring plus cross-links at half the
/// circumference, giving diameter ~p/4 instead of ~p/2), PEs dual-homed
/// onto consecutive P routers, and `ce` enterprise sites hanging off every
/// PE. PEs are grouped into pods of `pod` PEs; each pod carries one VPN,
/// so VRF/RT allocation exercises `pods` distinct RD/RT values and flows
/// stay intra-pod (intra-VPN), the way enterprise traffic does.
struct TopogenParams {
  std::size_t p = 16;     ///< core P routers (chorded ring)
  std::size_t pe = 64;    ///< PE routers, dual-homed, grouped into pods
  std::size_t ce = 2;     ///< CE sites per PE
  std::size_t pod = 8;    ///< PEs per pod == per VPN
  std::size_t flows = 20000;  ///< concurrent unidirectional flows
  double core_bw_bps = 622e6;   ///< OC-12-class trunks
  double edge_bw_bps = 100e6;   ///< PE-CE access circuits
  double rate_bps = 96e3;       ///< per-flow offered rate
  std::size_t size = 472;       ///< payload bytes (non-EF flows)
  std::uint64_t seed = 1;
};

/// Apply one "key=value" pair to `params`. Returns false (and leaves
/// `params` untouched) for an unknown key or unparsable value; shared by
/// the scenario directive and the run_scenario --topogen spec string.
bool apply_topogen_param(TopogenParams& params, const std::string& key,
                         const std::string& value);

/// Parse a whole spec string of whitespace-separated key=value pairs
/// ("p=16 pe=64 ce=2 flows=20000"). On failure returns false and names the
/// offending token in `error`.
bool parse_topogen_spec(const std::string& spec, TopogenParams& params,
                        std::string* error);

/// One generated enterprise site: `vpn` indexes GeneratedPlan::vpns, `pe`
/// the backbone's PE array; the /24 prefix is unique across the plan.
struct PlanSite {
  std::size_t vpn = 0;
  std::size_t pe = 0;
  ip::Prefix prefix;
};

/// One generated flow between two sites of the same pod/VPN.
///
/// `rate_bps` carries a per-flow ±10% perturbation of the nominal rate and
/// `start_s` a random phase offset in [0, 100ms): with a shared start
/// instant and identical rates, every same-class CBR/on-off source emits in
/// nanosecond lockstep, and simultaneous same-size arrivals at a shared
/// FIFO are ordered differently (each deterministically) by the serial and
/// sharded engines — the class-level latency multiset is preserved but
/// per-flow jitter swaps, breaking serial-vs-sharded byte identity. The
/// perturbation makes emission instants distinct reals, so ties never
/// arise and identity holds by construction (as it does for hand-written
/// scenarios, whose flows differ in rate/kind).
struct PlanFlow {
  std::string kind;  ///< cbr | poisson | onoff
  std::size_t from = 0, to = 0;  ///< site indices
  double rate_bps = 0;
  double start_s = 0;  ///< emission start offset from traffic start
  qos::Phb phb = qos::Phb::kBe;
  std::uint16_t port = 20000;
  std::size_t size = 472;
};

/// The fully expanded plan: a BackboneConfig plus site and flow lists in
/// exactly the shape Scenario's declaration vectors take, so the scenario
/// layer splices a generated topology in and reuses its entire build/run
/// path (convergence, QoS, sharding, observability) unchanged.
struct GeneratedPlan {
  TopogenParams params;
  BackboneConfig backbone;
  std::vector<std::string> vpns;  ///< one per pod: "pod0", "pod1", ...
  std::vector<PlanSite> sites;
  std::vector<PlanFlow> flows;

  /// FNV-1a over every field that shapes the built network. Two plans with
  /// equal hashes are identical site-for-site and flow-for-flow; the
  /// determinism test compares hashes from independently generated plans.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Expand `params` into a concrete plan. Throws std::invalid_argument on
/// shapes that cannot host flows (no PEs, fewer than two sites in a pod).
[[nodiscard]] GeneratedPlan generate_plan(const TopogenParams& params);

}  // namespace mvpn::backbone
