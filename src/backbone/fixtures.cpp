#include "backbone/fixtures.hpp"

namespace mvpn::backbone {

MplsBackbone::MplsBackbone(const BackboneConfig& config)
    : topo(config.seed),
      cp(topo),
      igp(cp),
      ldp(cp, igp, domain),
      bgp(cp, config.bgp_mode),
      rsvp(cp, igp, domain),
      service(topo, cp, igp, domain, ldp, bgp),
      config_(config) {
  net::LinkConfig core_link;
  core_link.bandwidth_bps = config_.core_bw_bps;
  core_link.prop_delay = config_.core_delay;
  core_link.igp_cost = 1;
  core_link.queue_factory = config_.core_queue;

  for (std::size_t i = 0; i < config_.p_count; ++i) {
    auto& r = topo.add_node<vpn::Router>("P" + std::to_string(i),
                                         vpn::Role::kP);
    ps_.push_back(&r);
    service.add_provider_router(r);
  }
  if (config_.p_count > 1) {
    for (std::size_t i = 0; i < config_.p_count; ++i) {
      const std::size_t j = (i + 1) % config_.p_count;
      if (config_.p_count == 2 && i == 1) break;  // avoid double link
      topo.connect(ps_[i]->id(), ps_[j]->id(), core_link);
    }
  }
  // Chords: each pair wired once (i < j), and strides that would duplicate
  // a ring edge (1 or p-1) are out of range by the `+ 2` bound.
  if (config_.core_chord_stride >= 2 &&
      config_.core_chord_stride + 2 <= config_.p_count) {
    for (std::size_t i = 0; i < config_.p_count; ++i) {
      const std::size_t j =
          (i + config_.core_chord_stride) % config_.p_count;
      if (i < j) topo.connect(ps_[i]->id(), ps_[j]->id(), core_link);
    }
  }

  for (std::size_t i = 0; i < config_.pe_count; ++i) {
    auto& r = topo.add_node<vpn::Router>("PE" + std::to_string(i),
                                         vpn::Role::kPe);
    pes_.push_back(&r);
    service.add_provider_router(r);
    r.set_rsvp(&rsvp);
    if (!ps_.empty()) {
      topo.connect(r.id(), ps_[i % ps_.size()]->id(), core_link);
      if (ps_.size() > 1) {
        // Dual-home for path diversity.
        topo.connect(r.id(), ps_[(i + 1) % ps_.size()]->id(), core_link);
      }
    }
  }
  // PE-PE direct mesh when there is no P core at all.
  if (ps_.empty()) {
    for (std::size_t i = 0; i < pes_.size(); ++i) {
      for (std::size_t j = i + 1; j < pes_.size(); ++j) {
        topo.connect(pes_[i]->id(), pes_[j]->id(), core_link);
      }
    }
  }

  if (config_.bgp_mode == routing::Bgp::Mode::kRouteReflector) {
    for (std::size_t i = 0; i < config_.route_reflector_count; ++i) {
      auto& rr = topo.add_node<vpn::Router>("RR" + std::to_string(i),
                                            vpn::Role::kP);
      rrs_.push_back(&rr);
      if (!ps_.empty()) {
        topo.connect(rr.id(), ps_[i % ps_.size()]->id(), core_link);
      }
      service.add_provider_router(rr);
      bgp.add_route_reflector(rr.id());
    }
  }
}

MplsBackbone::Site MplsBackbone::add_site(vpn::VpnId vpn,
                                          std::size_t pe_index,
                                          const ip::Prefix& site_prefix) {
  vpn::Router& pe_router = *pes_.at(pe_index);
  auto& ce = topo.add_node<vpn::Router>(
      "CE" + std::to_string(ces_.size()), vpn::Role::kCe);
  ces_.push_back(&ce);

  net::LinkConfig edge;
  edge.bandwidth_bps = config_.edge_bw_bps;
  edge.prop_delay = config_.edge_delay;
  topo.connect(ce.id(), pe_router.id(), edge);

  service.add_site(vpn, pe_router, ce, site_prefix);
  return Site{&ce, site_prefix, pe_index};
}

void MplsBackbone::start_and_converge() {
  service.start();
  service.converge();
}

Figure2Scenario make_figure2_scenario(std::uint64_t seed) {
  BackboneConfig cfg;
  cfg.p_count = 1;
  cfg.pe_count = 2;
  cfg.seed = seed;
  Figure2Scenario s;
  s.backbone = std::make_unique<MplsBackbone>(cfg);
  s.vpn1 = s.backbone->service.create_vpn("V1");
  s.vpn2 = s.backbone->service.create_vpn("V2");
  // Overlapping address plans on purpose: both VPNs use 10.1/10.2 space.
  s.v1_site1 =
      s.backbone->add_site(s.vpn1, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  s.v1_site2 =
      s.backbone->add_site(s.vpn1, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  s.v2_site1 =
      s.backbone->add_site(s.vpn2, 0, ip::Prefix::must_parse("10.1.0.0/16"));
  s.v2_site2 =
      s.backbone->add_site(s.vpn2, 1, ip::Prefix::must_parse("10.2.0.0/16"));
  return s;
}

DiamondScenario make_diamond_scenario(double core_bw_bps, std::uint64_t seed,
                                      net::QueueDiscFactory core_queue) {
  BackboneConfig cfg;
  cfg.p_count = 0;   // wire the core by hand below
  cfg.pe_count = 0;
  cfg.seed = seed;
  cfg.core_bw_bps = core_bw_bps;
  cfg.core_queue = std::move(core_queue);

  DiamondScenario s;
  s.backbone = std::make_unique<MplsBackbone>(cfg);
  MplsBackbone& bb = *s.backbone;

  auto& pe0 = bb.topo.add_node<vpn::Router>("PE0", vpn::Role::kPe);
  auto& pe1 = bb.topo.add_node<vpn::Router>("PE1", vpn::Role::kPe);
  auto& p0 = bb.topo.add_node<vpn::Router>("P0", vpn::Role::kP);
  auto& p1 = bb.topo.add_node<vpn::Router>("P1", vpn::Role::kP);
  auto& p2 = bb.topo.add_node<vpn::Router>("P2", vpn::Role::kP);
  for (vpn::Router* r : {&pe0, &pe1, &p0, &p1, &p2}) {
    bb.service.add_provider_router(*r);
  }
  pe0.set_rsvp(&bb.rsvp);
  pe1.set_rsvp(&bb.rsvp);
  bb.expose_custom({&p0, &p1, &p2}, {&pe0, &pe1});

  net::LinkConfig core;
  core.bandwidth_bps = core_bw_bps;
  core.prop_delay = 2 * sim::kMillisecond;
  core.igp_cost = 1;
  core.queue_factory = cfg.core_queue;

  // PE attachment trunks are twice the core size so both TE LSPs can be
  // admitted on the shared access links; the contention is in the core.
  net::LinkConfig trunk = core;
  trunk.bandwidth_bps = 2 * core_bw_bps;
  bb.topo.connect(pe0.id(), p0.id(), trunk);
  s.hot_link = bb.topo.connect(p0.id(), p1.id(), core);  // the short path
  bb.topo.connect(p0.id(), p2.id(), core);               // detour, 2 hops
  bb.topo.connect(p2.id(), p1.id(), core);
  bb.topo.connect(p1.id(), pe1.id(), trunk);
  return s;
}

OverlayBackbone::OverlayBackbone(std::size_t core_count, std::uint64_t seed)
    : topo(seed), cp(topo), service(topo, cp) {
  net::LinkConfig core_link;
  core_link.bandwidth_bps = 45e6;
  core_link.prop_delay = 2 * sim::kMillisecond;
  for (std::size_t i = 0; i < core_count; ++i) {
    auto& r = topo.add_node<vpn::Router>("SW" + std::to_string(i),
                                         vpn::Role::kP);
    cores_.push_back(&r);
  }
  for (std::size_t i = 0; i + 1 < core_count; ++i) {
    topo.connect(cores_[i]->id(), cores_[i + 1]->id(), core_link);
  }
  if (core_count > 2) {
    topo.connect(cores_[core_count - 1]->id(), cores_[0]->id(), core_link);
  }
}

vpn::Router& OverlayBackbone::add_ce(std::size_t core_index,
                                     const std::string& name) {
  auto& ce = topo.add_node<vpn::Router>(name, vpn::Role::kCe);
  net::LinkConfig edge;
  edge.bandwidth_bps = 10e6;
  edge.prop_delay = 1 * sim::kMillisecond;
  topo.connect(ce.id(), cores_.at(core_index)->id(), edge);
  return ce;
}

std::unique_ptr<MplsBackbone> make_random_backbone(std::size_t p_count,
                                                   std::size_t pe_count,
                                                   double chord_prob,
                                                   std::uint64_t seed) {
  BackboneConfig cfg;
  cfg.p_count = 0;  // wired below
  cfg.pe_count = 0;
  cfg.seed = seed;
  auto bb = std::make_unique<MplsBackbone>(cfg);
  sim::Rng rng(seed ^ 0xC0FFEE);

  net::LinkConfig core;
  core.bandwidth_bps = 45e6;
  core.prop_delay = 2 * sim::kMillisecond;

  std::vector<vpn::Router*> ps;
  std::vector<vpn::Router*> pes;
  for (std::size_t i = 0; i < p_count; ++i) {
    auto& r = bb->topo.add_node<vpn::Router>("P" + std::to_string(i),
                                             vpn::Role::kP);
    ps.push_back(&r);
    bb->service.add_provider_router(r);
  }
  // Ring for guaranteed connectivity.
  for (std::size_t i = 0; i < p_count && p_count > 1; ++i) {
    const std::size_t j = (i + 1) % p_count;
    if (p_count == 2 && i == 1) break;
    bb->topo.connect(ps[i]->id(), ps[j]->id(), core);
  }
  // Random chords.
  for (std::size_t i = 0; i < p_count; ++i) {
    for (std::size_t j = i + 2; j < p_count; ++j) {
      if ((i == 0 && j == p_count - 1)) continue;  // already a ring edge
      if (rng.bernoulli(chord_prob)) {
        bb->topo.connect(ps[i]->id(), ps[j]->id(), core);
      }
    }
  }
  // PEs on one or two random attachment points.
  for (std::size_t i = 0; i < pe_count; ++i) {
    auto& pe = bb->topo.add_node<vpn::Router>("PE" + std::to_string(i),
                                              vpn::Role::kPe);
    pes.push_back(&pe);
    bb->service.add_provider_router(pe);
    pe.set_rsvp(&bb->rsvp);
    const auto first = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(p_count) - 1));
    bb->topo.connect(pe.id(), ps[first]->id(), core);
    if (p_count > 1 && rng.bernoulli(0.5)) {
      auto second = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(p_count) - 1));
      if (second == first) second = (second + 1) % p_count;
      bb->topo.connect(pe.id(), ps[second]->id(), core);
    }
  }
  bb->expose_custom(std::move(ps), std::move(pes));
  return bb;
}

TwoProviderBackbone::TwoProviderBackbone(std::uint64_t seed)
    : topo(seed),
      cp(topo),
      igp_a(cp),
      ldp_a(cp, igp_a, domain_a),
      bgp_a(cp, routing::Bgp::Mode::kFullMesh),
      service_a(topo, cp, igp_a, domain_a, ldp_a, bgp_a, 65000),
      igp_b(cp),
      ldp_b(cp, igp_b, domain_b),
      bgp_b(cp, routing::Bgp::Mode::kFullMesh),
      service_b(topo, cp, igp_b, domain_b, ldp_b, bgp_b, 65001) {
  net::LinkConfig core;
  core.bandwidth_bps = 45e6;
  core.prop_delay = 2 * sim::kMillisecond;

  pe_a = &topo.add_node<vpn::Router>("PE_A", vpn::Role::kPe);
  p_a_ = &topo.add_node<vpn::Router>("P_A", vpn::Role::kP);
  asbr_a = &topo.add_node<vpn::Router>("ASBR_A", vpn::Role::kPe);
  pe_b = &topo.add_node<vpn::Router>("PE_B", vpn::Role::kPe);
  p_b_ = &topo.add_node<vpn::Router>("P_B", vpn::Role::kP);
  asbr_b = &topo.add_node<vpn::Router>("ASBR_B", vpn::Role::kPe);

  topo.connect(pe_a->id(), p_a_->id(), core);
  topo.connect(p_a_->id(), asbr_a->id(), core);
  topo.connect(asbr_a->id(), asbr_b->id(), core);  // the NNI
  topo.connect(asbr_b->id(), p_b_->id(), core);
  topo.connect(p_b_->id(), pe_b->id(), core);

  for (vpn::Router* r : {pe_a, p_a_, asbr_a}) {
    service_a.add_provider_router(*r);
  }
  for (vpn::Router* r : {pe_b, p_b_, asbr_b}) {
    service_b.add_provider_router(*r);
  }
  peering =
      std::make_unique<vpn::InterAsPeering>(cp, service_a, *asbr_a,
                                            service_b, *asbr_b);
}

MplsBackbone::Site TwoProviderBackbone::add_site_a(vpn::VpnId vpn,
                                                   const ip::Prefix& prefix) {
  auto& ce = topo.add_node<vpn::Router>("CE" + std::to_string(ces_.size()),
                                        vpn::Role::kCe);
  ces_.push_back(&ce);
  net::LinkConfig edge;
  edge.bandwidth_bps = 10e6;
  edge.prop_delay = sim::kMillisecond;
  topo.connect(ce.id(), pe_a->id(), edge);
  service_a.add_site(vpn, *pe_a, ce, prefix);
  return MplsBackbone::Site{&ce, prefix, 0};
}

MplsBackbone::Site TwoProviderBackbone::add_site_b(vpn::VpnId vpn,
                                                   const ip::Prefix& prefix) {
  auto& ce = topo.add_node<vpn::Router>("CE" + std::to_string(ces_.size()),
                                        vpn::Role::kCe);
  ces_.push_back(&ce);
  net::LinkConfig edge;
  edge.bandwidth_bps = 10e6;
  edge.prop_delay = sim::kMillisecond;
  topo.connect(ce.id(), pe_b->id(), edge);
  service_b.add_site(vpn, *pe_b, ce, prefix);
  return MplsBackbone::Site{&ce, prefix, 0};
}

void TwoProviderBackbone::start_and_converge() {
  service_a.start();
  service_b.start();
  topo.scheduler().run();
}

IpsecBackbone::IpsecBackbone(std::size_t core_count, ipsec::CipherSuite suite,
                             std::uint64_t seed, double edge_bw_bps)
    : topo(seed),
      cp(topo),
      igp(cp),
      service(topo, cp, igp, suite),
      edge_bw_bps_(edge_bw_bps) {
  net::LinkConfig core_link;
  core_link.bandwidth_bps = 45e6;
  core_link.prop_delay = 2 * sim::kMillisecond;
  for (std::size_t i = 0; i < core_count; ++i) {
    auto& r = topo.add_node<vpn::Router>("R" + std::to_string(i),
                                         vpn::Role::kP);
    cores_.push_back(&r);
    service.enroll_router(r);
  }
  for (std::size_t i = 0; i + 1 < core_count; ++i) {
    topo.connect(cores_[i]->id(), cores_[i + 1]->id(), core_link);
  }
  if (core_count > 2) {
    topo.connect(cores_[core_count - 1]->id(), cores_[0]->id(), core_link);
  }
}

vpn::Router& IpsecBackbone::add_gateway(std::size_t core_index,
                                        const std::string& name) {
  auto& gw = topo.add_node<vpn::Router>(name, vpn::Role::kCe);
  net::LinkConfig edge;
  edge.bandwidth_bps = edge_bw_bps_;
  edge.prop_delay = 1 * sim::kMillisecond;
  topo.connect(gw.id(), cores_.at(core_index)->id(), edge);
  service.enroll_router(gw);
  return gw;
}

void IpsecBackbone::start_and_converge() {
  service.establish();
  topo.scheduler().run();
}

}  // namespace mvpn::backbone
