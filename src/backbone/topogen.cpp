#include "backbone/topogen.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"

namespace mvpn::backbone {
namespace {

bool to_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool to_size(const std::string& s, std::size_t& out) {
  double d = 0;
  if (!to_double(s, d) || d < 0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

/// 64-bit FNV-1a, folded incrementally.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void mix(double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  }
};

}  // namespace

bool apply_topogen_param(TopogenParams& params, const std::string& key,
                         const std::string& value) {
  if (key == "p") return to_size(value, params.p);
  if (key == "pe") return to_size(value, params.pe);
  if (key == "ce") return to_size(value, params.ce);
  if (key == "pod") return to_size(value, params.pod);
  if (key == "flows") return to_size(value, params.flows);
  if (key == "core_bw") return to_double(value, params.core_bw_bps);
  if (key == "edge_bw") return to_double(value, params.edge_bw_bps);
  if (key == "rate") return to_double(value, params.rate_bps);
  if (key == "size") return to_size(value, params.size);
  if (key == "seed") {
    std::size_t s = 0;
    if (!to_size(value, s)) return false;
    params.seed = s;
    return true;
  }
  return false;
}

bool parse_topogen_spec(const std::string& spec, TopogenParams& params,
                        std::string* error) {
  std::istringstream in(spec);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos ||
        !apply_topogen_param(params, token.substr(0, eq),
                             token.substr(eq + 1))) {
      if (error != nullptr) *error = "bad topogen token: " + token;
      return false;
    }
  }
  return true;
}

GeneratedPlan generate_plan(const TopogenParams& params) {
  if (params.pe == 0 || params.ce == 0 || params.pod == 0) {
    throw std::invalid_argument("topogen: pe, ce and pod must be >= 1");
  }
  const std::size_t pods = (params.pe + params.pod - 1) / params.pod;
  for (std::size_t g = 0; g < pods; ++g) {
    const std::size_t pe_lo = g * params.pod;
    const std::size_t pe_hi = std::min(pe_lo + params.pod, params.pe);
    if ((pe_hi - pe_lo) * params.ce < 2) {
      throw std::invalid_argument(
          "topogen: every pod needs at least two sites (raise ce= or pe=)");
    }
  }

  GeneratedPlan plan;
  plan.params = params;
  plan.backbone.p_count = params.p;
  plan.backbone.pe_count = params.pe;
  plan.backbone.core_bw_bps = params.core_bw_bps;
  plan.backbone.edge_bw_bps = params.edge_bw_bps;
  plan.backbone.seed = params.seed;
  // Half-circumference chords turn the P ring into the ladder mesh: the
  // diameter drops from ~p/2 to ~p/4 hops, which is what keeps end-to-end
  // delay realistic (and LSP tunnels short) at ISP core sizes.
  if (params.p >= 6) plan.backbone.core_chord_stride = params.p / 2;
  // A full iBGP mesh among hundreds of PEs is the quadratic blowup the
  // paper's deployment section warns about; big generated backbones get
  // route reflectors, exactly as a real ISP would deploy.
  if (params.pe >= 24) {
    plan.backbone.bgp_mode = routing::Bgp::Mode::kRouteReflector;
    plan.backbone.route_reflector_count = 2;
  }

  plan.vpns.reserve(pods);
  for (std::size_t g = 0; g < pods; ++g) {
    plan.vpns.push_back("pod" + std::to_string(g));
  }

  // Site addressing: one /24 per site carved from 10/8 in declaration
  // order — unique by construction, and the +1 host convention of the
  // traffic layer stays inside the /24 for any plan size.
  plan.sites.reserve(params.pe * params.ce);
  for (std::size_t pe_i = 0; pe_i < params.pe; ++pe_i) {
    for (std::size_t c = 0; c < params.ce; ++c) {
      PlanSite site;
      site.vpn = pe_i / params.pod;
      site.pe = pe_i;
      const std::size_t idx = pe_i * params.ce + c;
      site.prefix = ip::Prefix(
          ip::Ipv4Address(static_cast<std::uint32_t>((10u << 24) + idx * 256)),
          24);
      plan.sites.push_back(site);
    }
  }

  // Flows: endpoints and class drawn from one dedicated Rng stream, so the
  // flow list is a pure function of (seed, params) no matter who else
  // consumes randomness. Mix loosely after the paper's traffic taxonomy:
  // ~10% voice-like EF CBR, ~30% bursty AF data, ~60% best-effort.
  sim::Rng rng = sim::Rng::stream(params.seed, 0x746F706F67656EULL);
  plan.flows.reserve(params.flows);
  for (std::size_t f = 0; f < params.flows; ++f) {
    const auto g = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pods) - 1));
    const std::size_t site_lo = g * params.pod * params.ce;
    const std::size_t site_hi =
        std::min((g + 1) * params.pod, params.pe) * params.ce;
    const auto span = static_cast<std::int64_t>(site_hi - site_lo);
    PlanFlow flow;
    flow.from = site_lo + static_cast<std::size_t>(rng.uniform_int(0, span - 1));
    do {
      flow.to = site_lo + static_cast<std::size_t>(rng.uniform_int(0, span - 1));
    } while (flow.to == flow.from);
    const double r = rng.uniform();
    if (r < 0.10) {
      flow.kind = "cbr";
      flow.phb = qos::Phb::kEf;
      flow.port = 16400;
      flow.size = 172;  // voice-like small frames
    } else if (r < 0.25) {
      flow.kind = "onoff";
      flow.phb = qos::Phb::kAf11;
      flow.port = 5001;
      flow.size = params.size;
    } else if (r < 0.40) {
      flow.kind = "onoff";
      flow.phb = qos::Phb::kAf21;
      flow.port = 5004;
      flow.size = params.size;
    } else {
      flow.kind = "poisson";
      flow.phb = qos::Phb::kBe;
      flow.port = 20000;
      flow.size = params.size;
    }
    // De-synchronize (see PlanFlow doc): distinct rates and start phases
    // keep any two flows from ever emitting in the same nanosecond, which
    // is what makes serial and sharded runs byte-identical.
    flow.rate_bps = params.rate_bps * (0.9 + 0.2 * rng.uniform());
    flow.start_s = 0.1 * rng.uniform();
    plan.flows.push_back(flow);
  }
  return plan;
}

std::uint64_t GeneratedPlan::hash() const {
  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(params.p));
  fnv.mix(static_cast<std::uint64_t>(params.pe));
  fnv.mix(static_cast<std::uint64_t>(params.ce));
  fnv.mix(static_cast<std::uint64_t>(params.pod));
  fnv.mix(static_cast<std::uint64_t>(params.flows));
  fnv.mix(params.core_bw_bps);
  fnv.mix(params.edge_bw_bps);
  fnv.mix(params.rate_bps);
  fnv.mix(static_cast<std::uint64_t>(params.size));
  fnv.mix(params.seed);
  fnv.mix(static_cast<std::uint64_t>(backbone.p_count));
  fnv.mix(static_cast<std::uint64_t>(backbone.pe_count));
  fnv.mix(static_cast<std::uint64_t>(backbone.core_chord_stride));
  fnv.mix(static_cast<std::uint64_t>(backbone.route_reflector_count));
  fnv.mix(static_cast<std::uint64_t>(backbone.bgp_mode));
  for (const std::string& v : vpns) fnv.mix(v);
  for (const PlanSite& s : sites) {
    fnv.mix(static_cast<std::uint64_t>(s.vpn));
    fnv.mix(static_cast<std::uint64_t>(s.pe));
    fnv.mix(static_cast<std::uint64_t>(s.prefix.address().value()));
    fnv.mix(static_cast<std::uint64_t>(s.prefix.length()));
  }
  for (const PlanFlow& f : flows) {
    fnv.mix(f.kind);
    fnv.mix(static_cast<std::uint64_t>(f.from));
    fnv.mix(static_cast<std::uint64_t>(f.to));
    fnv.mix(f.rate_bps);
    fnv.mix(f.start_s);
    fnv.mix(static_cast<std::uint64_t>(f.phb));
    fnv.mix(static_cast<std::uint64_t>(f.port));
    fnv.mix(static_cast<std::uint64_t>(f.size));
  }
  return fnv.h;
}

}  // namespace mvpn::backbone
