#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace mvpn::backbone {

/// Output of the topology partitioner: which shard owns each node, which
/// links form the cut, and the conservative lookahead the cut admits.
struct ShardPlan {
  std::uint32_t shard_count = 1;
  std::vector<std::uint32_t> node_shard;  ///< NodeId -> shard id
  std::vector<net::LinkId> cut_links;     ///< links spanning two shards
  sim::SimTime lookahead = 0;             ///< min prop delay over the cut

  [[nodiscard]] bool parallel() const noexcept { return shard_count > 1; }
};

/// Partition the topology into (at most) `shards` balanced components,
/// maximising the minimum propagation delay across the cut.
///
/// Two-level scheme. First pick the cut-delay threshold D: only links with
/// delay >= D are allowed to cross shards (the engine's lookahead is the
/// minimum cut delay, so it ends up >= D), which forces every component of
/// the faster-than-D subgraph — a "fast cluster" — into a single shard.
/// D is the slowest distinct delay whose fast clusters all fit under the
/// balance cap of ceil(N / shards) nodes; the smallest delay always
/// qualifies, since its fast subgraph is empty. Second, grow up to
/// `shards` capacity-bounded regions over the cluster graph: each region
/// seeds at the lowest-numbered unassigned cluster and absorbs the
/// lowest-numbered adjacent cluster that still fits, and clusters stranded
/// by full neighbourhoods pool onto the lightest region. Every choice
/// breaks ties on cluster/node numbering, so the plan is a pure function
/// of the topology.
///
/// In the paper's backbone shape this lands where you'd want it: the 1 ms
/// CE/PE access links are the fast subgraph, so each CE clusters with its
/// PE; the regions then carve the 2 ms core into balanced node groups and
/// the cut is made of core links only — lookahead 2 ms, millions of
/// nanoseconds of conservative window per barrier.
///
/// Degenerate inputs degrade safely: `shards <= 1`, a single node, or a
/// topology with fewer links than needed simply yields fewer (possibly 1)
/// shards; `plan.parallel()` tells the caller whether running parallel is
/// worthwhile.
[[nodiscard]] ShardPlan compute_shard_plan(const net::Topology& topo,
                                           std::uint32_t shards);

/// Flow-weighted variant: identical scheme, but the balance cap bounds the
/// sum of per-node *weights* (one weight per NodeId; a measured flow
/// profile's packet counts) instead of node counts. The engine's wall
/// clock follows the busiest shard, and the sync profiler showed node
/// counts are a poor proxy for busyness at generated scale (one shard
/// critical in 96% of epochs), so balancing measured flow weight is the
/// lever that spreads the critical path. Weights are clamped to >= 1, and
/// the cap to >= the heaviest single node (an indivisible fast cluster
/// must land somewhere). An empty `node_weight` means all-1 and reproduces
/// the node-count plan exactly.
[[nodiscard]] ShardPlan compute_shard_plan(
    const net::Topology& topo, std::uint32_t shards,
    const std::vector<std::uint64_t>& node_weight);

/// Measured per-node / per-link flow-weight vectors — the `--flow-profile`
/// output and the flow-weighted partitioner's input. Weights are link
/// transmit packet counters folded per node, so they are byte-identical
/// across shard counts and engine configurations of the same scenario.
struct FlowProfile {
  std::vector<std::uint64_t> node_weight;  ///< NodeId -> packets touched
  std::vector<std::uint64_t> link_weight;  ///< LinkId -> packets carried
};

/// Read the profile off the (already-run) topology's link counters:
/// link_weight = packets transmitted in both directions, node_weight = sum
/// of transmit counters on every incident link direction (sent + received
/// load, each hop charged to both endpoints).
[[nodiscard]] FlowProfile measure_flow_profile(const net::Topology& topo);

/// Line-oriented text format ("flowprofile v1"), stable across runs of the
/// same scenario: node/link ids with weights, node names as comments.
void write_flow_profile(const FlowProfile& profile, const net::Topology& topo,
                        std::ostream& out);
/// Parse write_flow_profile() output. Returns false (with *err set when
/// non-null) on malformed input; ids beyond the vectors grow them.
[[nodiscard]] bool load_flow_profile(std::istream& in, FlowProfile* profile,
                                     std::string* err);

/// Human-readable partition diagnostics: cut size, the lookahead the cut
/// admits, and per-shard node / CE-site balance (CEs are where traffic
/// sources and sinks live, so their spread predicts flow balance). One
/// line per shard, meant for stderr under a verbose flag. When
/// `node_weight` is non-empty, each shard line also reports its share of
/// the total flow weight — the figure the weighted partitioner balances.
void report_shard_plan(const ShardPlan& plan, const net::Topology& topo,
                       std::ostream& out,
                       const std::vector<std::uint64_t>& node_weight = {});

}  // namespace mvpn::backbone
