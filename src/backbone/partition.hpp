#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace mvpn::backbone {

/// Output of the topology partitioner: which shard owns each node, which
/// links form the cut, and the conservative lookahead the cut admits.
struct ShardPlan {
  std::uint32_t shard_count = 1;
  std::vector<std::uint32_t> node_shard;  ///< NodeId -> shard id
  std::vector<net::LinkId> cut_links;     ///< links spanning two shards
  sim::SimTime lookahead = 0;             ///< min prop delay over the cut

  [[nodiscard]] bool parallel() const noexcept { return shard_count > 1; }
};

/// Partition the topology into (at most) `shards` balanced components,
/// maximising the minimum propagation delay across the cut.
///
/// Two-level scheme. First pick the cut-delay threshold D: only links with
/// delay >= D are allowed to cross shards (the engine's lookahead is the
/// minimum cut delay, so it ends up >= D), which forces every component of
/// the faster-than-D subgraph — a "fast cluster" — into a single shard.
/// D is the slowest distinct delay whose fast clusters all fit under the
/// balance cap of ceil(N / shards) nodes; the smallest delay always
/// qualifies, since its fast subgraph is empty. Second, grow up to
/// `shards` capacity-bounded regions over the cluster graph: each region
/// seeds at the lowest-numbered unassigned cluster and absorbs the
/// lowest-numbered adjacent cluster that still fits, and clusters stranded
/// by full neighbourhoods pool onto the lightest region. Every choice
/// breaks ties on cluster/node numbering, so the plan is a pure function
/// of the topology.
///
/// In the paper's backbone shape this lands where you'd want it: the 1 ms
/// CE/PE access links are the fast subgraph, so each CE clusters with its
/// PE; the regions then carve the 2 ms core into balanced node groups and
/// the cut is made of core links only — lookahead 2 ms, millions of
/// nanoseconds of conservative window per barrier.
///
/// Degenerate inputs degrade safely: `shards <= 1`, a single node, or a
/// topology with fewer links than needed simply yields fewer (possibly 1)
/// shards; `plan.parallel()` tells the caller whether running parallel is
/// worthwhile.
[[nodiscard]] ShardPlan compute_shard_plan(const net::Topology& topo,
                                           std::uint32_t shards);

/// Human-readable partition diagnostics: cut size, the lookahead the cut
/// admits, and per-shard node / CE-site balance (CEs are where traffic
/// sources and sinks live, so their spread predicts flow balance). One
/// line per shard, meant for stderr under a verbose flag.
void report_shard_plan(const ShardPlan& plan, const net::Topology& topo,
                       std::ostream& out);

}  // namespace mvpn::backbone
