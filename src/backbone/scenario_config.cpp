#include "backbone/scenario_config.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "backbone/partition.hpp"
#include "net/shard_runtime.hpp"
#include "obs/flow_stats.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/spans.hpp"
#include "obs/sync_profiler.hpp"
#include "obs/topology_metrics.hpp"
#include "qos/dscp.hpp"
#include "qos/queues.hpp"
#include "qos/sla.hpp"
#include "sim/rng.hpp"
#include "traffic/dispatcher.hpp"
#include "traffic/flowset.hpp"
#include "traffic/tcp_lite.hpp"

namespace mvpn::backbone {
namespace {

/// "key=value" tokens of one line, first token is the directive.
struct Line {
  std::string directive;
  std::vector<std::string> positional;
  std::map<std::string, std::string> kv;
};

Line tokenize(const std::string& raw) {
  Line line;
  std::istringstream in(raw);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    const auto eq = token.find('=');
    if (line.directive.empty()) {
      line.directive = token;
    } else if (eq == std::string::npos) {
      line.positional.push_back(token);
    } else {
      line.kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return line;
}

bool to_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool to_size(const std::string& s, std::size_t& out) {
  double d;
  if (!to_double(s, d) || d < 0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

std::optional<qos::Phb> phb_by_name(const std::string& name) {
  for (int i = 0; i < static_cast<int>(qos::kPhbCount); ++i) {
    const auto phb = static_cast<qos::Phb>(i);
    if (qos::to_string(phb) == name) return phb;
  }
  return std::nullopt;
}

/// Parse "16384-16484" or "16400".
bool parse_port_range(const std::string& s, std::uint16_t& lo,
                      std::uint16_t& hi) {
  const auto dash = s.find('-');
  std::size_t a = 0, b = 0;
  if (dash == std::string::npos) {
    if (!to_size(s, a) || a > 65535) return false;
    lo = hi = static_cast<std::uint16_t>(a);
    return true;
  }
  if (!to_size(s.substr(0, dash), a) || !to_size(s.substr(dash + 1), b) ||
      a > 65535 || b > 65535 || a > b) {
    return false;
  }
  lo = static_cast<std::uint16_t>(a);
  hi = static_cast<std::uint16_t>(b);
  return true;
}

/// RED profile for "red" / "red:min,max,maxp" core specs; nullopt for any
/// other discipline. RED queues are not built through the QueueDiscFactory
/// (it carries no arguments): they need a clock and a per-node RNG, so the
/// scenario swaps them onto the core links after construction.
std::optional<qos::RedParams> red_params_for(const std::string& spec,
                                             double core_bw_bps) {
  if (spec != "red" && spec.rfind("red:", 0) != 0) return std::nullopt;
  qos::RedParams rp;
  rp.bandwidth_bps = core_bw_bps;
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    std::istringstream ws(spec.substr(colon + 1));
    std::string w;
    std::vector<double> v;
    double d = 0;
    while (std::getline(ws, w, ',')) {
      if (to_double(w, d)) v.push_back(d);
    }
    if (!v.empty()) rp.min_th = v[0];
    if (v.size() > 1) rp.max_th = v[1];
    if (v.size() > 2) rp.max_p = v[2];
  }
  return rp;
}

/// Build a core queue factory from "fifo", "prio", "wfq:8,3,1", "drr:8,3,1".
/// ("red" specs return the default factory; see red_params_for.)
net::QueueDiscFactory queue_factory_for(const std::string& spec) {
  if (spec == "fifo" || spec.empty()) return {};
  if (spec == "prio") {
    return [] {
      return std::make_unique<qos::PriorityQueueDisc>(
          3, 100, qos::ef_af_be_selector());
    };
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::vector<double> weights;
  if (colon != std::string::npos) {
    std::istringstream ws(spec.substr(colon + 1));
    std::string w;
    while (std::getline(ws, w, ',')) {
      double v;
      if (to_double(w, v)) weights.push_back(v);
    }
  }
  if (weights.empty()) weights = {8, 3, 1};
  if (kind == "wfq") {
    return [weights] {
      return std::make_unique<qos::WfqQueueDisc>(weights, 100,
                                                 qos::ef_af_be_selector());
    };
  }
  if (kind == "drr") {
    std::vector<std::uint32_t> iw;
    for (double w : weights) iw.push_back(static_cast<std::uint32_t>(w));
    return [iw] {
      return std::make_unique<qos::DrrQueueDisc>(iw, 100,
                                                 qos::ef_af_be_selector());
    };
  }
  return {};
}

/// Expose the SLA probe's per-class figures as gauges under
/// "sla/<class>/...". Classes appear in the probe lazily (first packet of
/// that class), so each gauge re-checks membership at snapshot time.
void register_sla_metrics(obs::MetricsRegistry& registry,
                          const qos::SlaProbe& probe) {
  using Report = qos::SlaProbe::ClassReport;
  for (int c = 0; c < static_cast<int>(qos::kPhbCount); ++c) {
    const auto phb = static_cast<qos::Phb>(c);
    const std::string base = std::string("sla/") + qos::to_string(phb);
    auto add = [&](const char* leaf,
                   std::function<double(const Report&)> fn) {
      registry.add_gauge(
          base + "/" + leaf, [&probe, phb, fn = std::move(fn)] {
            return probe.has_class(phb) ? fn(probe.report(phb)) : 0.0;
          });
    };
    add("sent_packets",
        [](const Report& r) { return static_cast<double>(r.sent_packets); });
    add("delivered_packets", [](const Report& r) {
      return static_cast<double>(r.delivered_packets);
    });
    add("delivered_bytes", [](const Report& r) {
      return static_cast<double>(r.delivered_bytes);
    });
    add("loss_fraction", [](const Report& r) { return r.loss_fraction(); });
    add("latency_ms_mean",
        [](const Report& r) { return r.latency_s.mean() * 1e3; });
    add("latency_ms_p50",
        [](const Report& r) { return r.latency_s.percentile(50.0) * 1e3; });
    add("latency_ms_p99",
        [](const Report& r) { return r.latency_s.percentile(99.0) * 1e3; });
    registry.add_gauge(base + "/jitter_ms_mean", [&probe, phb] {
      return probe.has_class(phb) ? probe.jitter_stats(phb).mean() * 1e3
                                  : 0.0;
    });
    registry.add_gauge(base + "/jitter_rfc3550_ms", [&probe, phb] {
      return probe.has_class(phb) ? probe.rfc3550_jitter_s(phb) * 1e3 : 0.0;
    });
  }
}

/// Delivered packets carry inner class-selector bits (labels popped, ESP
/// stripped), so decomposition classes read as cs0..cs7.
obs::ClassNamer cs_class_namer() {
  return [](std::uint8_t c) { return "cs" + std::to_string(c); };
}

}  // namespace

std::optional<Scenario> Scenario::parse(const std::string& text,
                                        ScenarioError* error) {
  Scenario sc;
  auto fail = [&](std::size_t line_no, std::string msg) {
    if (error != nullptr) *error = ScenarioError{line_no, std::move(msg)};
    return std::optional<Scenario>{};
  };

  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  bool have_backbone = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const Line line = tokenize(raw);
    if (line.directive.empty()) continue;
    auto kv = [&](const char* key) -> std::optional<std::string> {
      auto it = line.kv.find(key);
      if (it == line.kv.end()) return std::nullopt;
      return it->second;
    };

    if (line.directive == "topology") {
      if (line.positional.size() != 1 || line.positional[0] != "generated") {
        return fail(line_no, "topology needs the form: topology generated ...");
      }
      TopogenParams params;
      for (const auto& [key, value] : line.kv) {
        if (!apply_topogen_param(params, key, value)) {
          return fail(line_no, "bad topogen " + key + "=" + value);
        }
      }
      sc.topogen_ = params;
    } else if (line.directive == "backbone") {
      have_backbone = true;
      if (auto v = kv("p")) {
        if (!to_size(*v, sc.backbone_.p_count)) {
          return fail(line_no, "bad p=");
        }
      }
      if (auto v = kv("pe")) {
        if (!to_size(*v, sc.backbone_.pe_count)) {
          return fail(line_no, "bad pe=");
        }
      }
      if (auto v = kv("core_bw")) {
        if (!to_double(*v, sc.backbone_.core_bw_bps)) {
          return fail(line_no, "bad core_bw=");
        }
      }
      if (auto v = kv("edge_bw")) {
        if (!to_double(*v, sc.backbone_.edge_bw_bps)) {
          return fail(line_no, "bad edge_bw=");
        }
      }
      if (auto v = kv("seed")) {
        std::size_t s;
        if (!to_size(*v, s)) return fail(line_no, "bad seed=");
        sc.backbone_.seed = s;
      }
      if (auto v = kv("bgp")) {
        if (*v == "mesh") {
          sc.backbone_.bgp_mode = routing::Bgp::Mode::kFullMesh;
        } else if (*v == "rr") {
          sc.backbone_.bgp_mode = routing::Bgp::Mode::kRouteReflector;
          sc.backbone_.route_reflector_count = 1;
        } else {
          return fail(line_no, "bgp= must be mesh or rr");
        }
      }
      if (auto v = kv("rr")) {
        if (!to_size(*v, sc.backbone_.route_reflector_count)) {
          return fail(line_no, "bad rr=");
        }
      }
      if (auto v = kv("core_queue")) sc.core_queue_spec_ = *v;
    } else if (line.directive == "vpn") {
      if (line.positional.size() != 1) {
        return fail(line_no, "vpn needs exactly one name");
      }
      sc.vpns_.push_back(line.positional[0]);
    } else if (line.directive == "extranet") {
      if (line.positional.size() != 2) {
        return fail(line_no, "extranet needs <importer> <exported>");
      }
      sc.extranets_.emplace_back(line.positional[0], line.positional[1]);
    } else if (line.directive == "site") {
      SiteDecl site;
      if (line.positional.size() != 1) {
        return fail(line_no, "site needs a vpn name");
      }
      site.vpn = line.positional[0];
      if (auto v = kv("pe")) {
        if (!to_size(*v, site.pe)) return fail(line_no, "bad pe=");
      }
      auto v = kv("prefix");
      if (!v) return fail(line_no, "site needs prefix=");
      auto prefix = ip::Prefix::parse(*v);
      if (!prefix) return fail(line_no, "bad prefix= " + *v);
      site.prefix = *prefix;
      if (auto p = kv("pref")) {
        std::size_t pref;
        if (!to_size(*p, pref)) return fail(line_no, "bad pref=");
        site.pref = static_cast<std::uint32_t>(pref);
      }
      sc.sites_.push_back(site);
    } else if (line.directive == "classify") {
      ClassifyDecl c;
      if (auto v = kv("site")) {
        if (!to_size(*v, c.site)) return fail(line_no, "bad site=");
      } else {
        return fail(line_no, "classify needs site=");
      }
      if (auto v = kv("dstport")) {
        if (!parse_port_range(*v, c.port_lo, c.port_hi)) {
          return fail(line_no, "bad dstport=");
        }
      }
      if (auto v = kv("class")) {
        auto phb = phb_by_name(*v);
        if (!phb) return fail(line_no, "unknown class= " + *v);
        c.phb = *phb;
      }
      sc.classifies_.push_back(c);
    } else if (line.directive == "police" || line.directive == "shape") {
      std::size_t site = 0;
      qos::Phb phb = qos::Phb::kBe;
      if (auto v = kv("site")) {
        if (!to_size(*v, site)) return fail(line_no, "bad site=");
      } else {
        return fail(line_no, line.directive + " needs site=");
      }
      if (auto v = kv("class")) {
        auto p = phb_by_name(*v);
        if (!p) return fail(line_no, "unknown class= " + *v);
        phb = *p;
      }
      if (line.directive == "police") {
        PoliceDecl p;
        p.site = site;
        p.phb = phb;
        if (auto v = kv("cir")) to_double(*v, p.cir);
        if (auto v = kv("cbs")) to_double(*v, p.cbs);
        if (auto v = kv("ebs")) to_double(*v, p.ebs);
        if (p.cir <= 0 || p.cbs <= 0 || p.ebs <= 0) {
          return fail(line_no, "police needs cir=, cbs=, ebs= > 0");
        }
        sc.polices_.push_back(p);
      } else {
        ShapeDecl s;
        s.site = site;
        s.phb = phb;
        if (auto v = kv("rate")) to_double(*v, s.rate);
        if (auto v = kv("burst")) to_double(*v, s.burst);
        if (s.rate <= 0) return fail(line_no, "shape needs rate= > 0");
        sc.shapes_.push_back(s);
      }
    } else if (line.directive == "flow") {
      FlowDecl f;
      if (line.positional.size() != 1) {
        return fail(line_no, "flow needs a kind (cbr|poisson|onoff)");
      }
      f.kind = line.positional[0];
      if (f.kind != "cbr" && f.kind != "poisson" && f.kind != "onoff" &&
          f.kind != "tcp") {
        return fail(line_no, "unknown flow kind " + f.kind);
      }
      auto v = kv("vpn");
      if (!v) return fail(line_no, "flow needs vpn=");
      f.vpn = *v;
      if (auto x = kv("from")) {
        if (!to_size(*x, f.from)) return fail(line_no, "bad from=");
      }
      if (auto x = kv("to")) {
        if (!to_size(*x, f.to)) return fail(line_no, "bad to=");
      }
      if (auto x = kv("rate")) {
        if (!to_double(*x, f.rate)) return fail(line_no, "bad rate=");
      }
      if (auto x = kv("on")) to_double(*x, f.on_s);
      if (auto x = kv("off")) to_double(*x, f.off_s);
      if (auto x = kv("class")) {
        auto phb = phb_by_name(*x);
        if (!phb) return fail(line_no, "unknown class= " + *x);
        f.phb = *phb;
      }
      if (auto x = kv("port")) {
        std::size_t p;
        if (!to_size(*x, p) || p > 65535) return fail(line_no, "bad port=");
        f.port = static_cast<std::uint16_t>(p);
      }
      if (auto x = kv("size")) {
        if (!to_size(*x, f.size)) return fail(line_no, "bad size=");
      }
      if (auto x = kv("start")) {
        if (!to_double(*x, f.start_s) || f.start_s < 0) {
          return fail(line_no, "bad start=");
        }
      }
      if (line.kv.count("premark") != 0) f.premark = true;
      sc.flows_.push_back(f);
    } else if (line.directive == "run") {
      if (auto v = kv("for")) {
        if (!to_double(*v, sc.run_for_s_) || sc.run_for_s_ <= 0) {
          return fail(line_no, "bad for=");
        }
      }
      if (auto v = kv("shards")) {
        std::size_t n = 0;
        if (!to_size(*v, n) || n == 0 || n > 64) {
          return fail(line_no, "bad shards= (want 1..64)");
        }
        sc.shards_ = static_cast<std::uint32_t>(n);
      }
      if (auto v = kv("flowcache")) {
        if (*v == "on") {
          sc.flowcache_ = true;
        } else if (*v == "off") {
          sc.flowcache_ = false;
        } else {
          return fail(line_no, "bad flowcache= (want on|off)");
        }
      }
      if (auto v = kv("sources")) {
        if (*v == "legacy") {
          sc.legacy_sources_ = true;
        } else if (*v == "flowset") {
          sc.legacy_sources_ = false;
        } else {
          return fail(line_no, "bad sources= (want flowset|legacy)");
        }
      }
      if (auto v = kv("updates")) {
        if (*v == "legacy") {
          sc.legacy_updates_ = true;
        } else if (*v == "packed") {
          sc.legacy_updates_ = false;
        } else {
          return fail(line_no, "bad updates= (want packed|legacy)");
        }
      }
      if (auto v = kv("spf")) {
        if (*v == "full") {
          sc.full_spf_ = true;
        } else if (*v == "incremental") {
          sc.full_spf_ = false;
        } else {
          return fail(line_no, "bad spf= (want incremental|full)");
        }
      }
    } else {
      return fail(line_no, "unknown directive " + line.directive);
    }
  }
  // A generated topology expands here, before cross-reference validation:
  // the plan's backbone/vpn/site/flow lists take the exact shape of the
  // hand-written declarations, so everything downstream (validation,
  // build, QoS, sharding, observability) is shared with .scn scenarios.
  if (sc.topogen_) {
    if (have_backbone) {
      return fail(0, "topology generated replaces the backbone line");
    }
    if (!sc.vpns_.empty() || !sc.sites_.empty() || !sc.flows_.empty()) {
      return fail(0,
                  "topology generated cannot be mixed with vpn/site/flow "
                  "declarations");
    }
    GeneratedPlan plan;
    try {
      plan = generate_plan(*sc.topogen_);
    } catch (const std::exception& e) {
      return fail(0, e.what());
    }
    sc.backbone_ = plan.backbone;
    sc.vpns_ = plan.vpns;
    sc.sites_.reserve(plan.sites.size());
    for (const PlanSite& s : plan.sites) {
      SiteDecl d;
      d.vpn = plan.vpns[s.vpn];
      d.pe = s.pe;
      d.prefix = s.prefix;
      sc.sites_.push_back(d);
    }
    sc.flows_.reserve(plan.flows.size());
    for (const PlanFlow& f : plan.flows) {
      FlowDecl d;
      d.kind = f.kind;
      d.vpn = plan.vpns[plan.sites[f.from].vpn];
      d.from = f.from;
      d.to = f.to;
      d.rate = f.rate_bps;
      d.phb = f.phb;
      // Generated sites carry no CPE classifiers; non-BE flows mark DSCP
      // at the source so the core's PHB scheduling still differentiates.
      d.premark = f.phb != qos::Phb::kBe;
      d.port = f.port;
      d.size = f.size;
      d.start_s = f.start_s;
      sc.flows_.push_back(d);
    }
    have_backbone = true;
  }
  if (!have_backbone) return fail(0, "scenario needs a backbone line");
  if (sc.sites_.empty()) return fail(0, "scenario needs at least one site");

  // Cross-reference validation.
  auto vpn_known = [&](const std::string& name) {
    for (const auto& v : sc.vpns_) {
      if (v == name) return true;
    }
    return false;
  };
  for (const auto& s : sc.sites_) {
    if (!vpn_known(s.vpn)) return fail(0, "site references unknown vpn " + s.vpn);
    if (s.pe >= sc.backbone_.pe_count) return fail(0, "site pe out of range");
  }
  for (const auto& f : sc.flows_) {
    if (!vpn_known(f.vpn)) return fail(0, "flow references unknown vpn " + f.vpn);
    if (f.from >= sc.sites_.size() || f.to >= sc.sites_.size()) {
      return fail(0, "flow site index out of range");
    }
  }
  for (const auto& [a, b] : sc.extranets_) {
    if (!vpn_known(a) || !vpn_known(b)) {
      return fail(0, "extranet references unknown vpn");
    }
  }
  for (const auto& c : sc.classifies_) {
    if (c.site >= sc.sites_.size()) return fail(0, "classify site out of range");
  }
  return sc;
}

bool Scenario::run(std::ostream& out) const {
  BackboneConfig cfg = backbone_;
  cfg.core_queue = queue_factory_for(core_queue_spec_);
  MplsBackbone bb(cfg);
  net::Topology& topo = bb.topo;

  // Control-plane A/B switches, applied before any protocol starts so the
  // whole convergence runs in the selected mode.
  bb.bgp.set_packing(!legacy_updates_);
  bb.igp.set_full_spf(full_spf_);

  // "red" core spec: swap RED onto the core directions while the links are
  // still idle. The clock reads through the topology's ambient scheduler
  // accessor (a sharded run answers with the shard clock of whichever
  // worker services the queue), and each direction's RNG is seeded from
  // (topology seed, transmitting node, link) so drop decisions never
  // depend on draw order across queues.
  if (auto rp = red_params_for(core_queue_spec_, cfg.core_bw_bps)) {
    std::vector<bool> core_node(topo.node_count(), false);
    for (const auto* p : bb.ps()) core_node[p->id()] = true;
    for (const auto* pe : bb.pes()) core_node[pe->id()] = true;
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      net::Link& link = topo.link(static_cast<net::LinkId>(l));
      if (!core_node[link.end_a().node] || !core_node[link.end_b().node]) {
        continue;
      }
      for (const ip::NodeId from : {link.end_a().node, link.end_b().node}) {
        link.set_queue_from(
            from,
            std::make_unique<qos::RedQueueDisc>(
                *rp, [&topo] { return topo.scheduler().now(); },
                sim::Rng::stream(
                    topo.seed(),
                    0x52ED0000ULL + (std::uint64_t{from} << 20) + l)));
      }
    }
  }

  // Arm the flight recorder before convergence so control-plane events
  // (LDP mappings, LSP signaling) land in the trace alongside the data
  // plane.
  if (obs_.enabled()) {
    if (obs_.ring_capacity != 0) {
      bb.topo.recorder().set_capacity(obs_.ring_capacity);
    }
    bb.topo.recorder().enable(obs_.trace_mask);
  }

  std::map<std::string, vpn::VpnId> vpn_ids;
  for (const auto& name : vpns_) {
    vpn_ids[name] = bb.service.create_vpn(name);
  }
  for (const auto& [importer, exported] : extranets_) {
    bb.service.add_extranet_import(vpn_ids.at(importer),
                                   vpn_ids.at(exported));
  }
  std::vector<MplsBackbone::Site> built;
  for (const auto& s : sites_) {
    // add_site has no pref parameter on the fixture; attach manually for
    // preference-carrying sites via the service.
    auto site = bb.add_site(vpn_ids.at(s.vpn), s.pe, s.prefix);
    built.push_back(site);
    (void)s.pref;  // single-homed declarations: pref is a tie-break no-op
  }

  // flowcache=off: force every router (P, PE, CE) onto the slow path so
  // A/B runs can verify the fastpath changes nothing but speed.
  if (!flowcache_) {
    for (std::size_t i = 0; i < topo.node_count(); ++i) {
      if (auto* r = dynamic_cast<vpn::Router*>(
              &topo.node(static_cast<ip::NodeId>(i)))) {
        r->set_flowcache_enabled(false);
      }
    }
  }

  bb.start_and_converge();

  for (const auto& c : classifies_) {
    vpn::Router& ce = *built[c.site].ce;
    if (ce.classifier() == nullptr) {
      ce.set_classifier(std::make_unique<qos::CbqClassifier>());
    }
    qos::MatchRule rule;
    rule.dst_port = qos::PortRange{c.port_lo, c.port_hi};
    rule.mark = c.phb;
    ce.classifier()->add_rule(rule);
  }
  for (const auto& p : polices_) {
    built[p.site].ce->add_policer(p.phb, p.cir, p.cbs, p.ebs);
  }
  for (const auto& s : shapes_) {
    built[s.site].ce->add_shaper(s.phb, s.rate, s.burst);
  }

  // TCP flows need a dispatcher on each endpoint; the measurement sink
  // handles everything the dispatchers do not claim. They also pin the run
  // to the serial engine: TCP-lite shares congestion state across its two
  // endpoint CEs, which may land on different shards.
  const bool any_tcp =
      std::any_of(flows_.begin(), flows_.end(),
                  [](const FlowDecl& f) { return f.kind == "tcp"; });

  qos::SlaProbe probe("scenario");
  traffic::MeasurementSink sink(probe, topo.scheduler());

  // Per-hop delay decomposition: links/routers stamp DelayAnatomy always;
  // the collector aggregates only when one of the latency outputs is on.
  // The tap reads through the ambient accessor so a sharded run records
  // into the delivering shard's collector (merged into `latency` between
  // windows), and a serial run into `latency` directly.
  obs::LatencyCollector latency;
  if (obs_.latency_enabled()) {
    topo.set_latency_collector(&latency);
    for (const auto& site : built) {
      site.ce->add_delivery_tap([&topo](const net::Packet& p, vpn::VpnId) {
        if (obs::LatencyCollector* lc = topo.latency_collector()) {
          lc->record_delivery(p.trace_class(), p.delay.queue, p.delay.tx,
                              p.delay.prop, p.delay.proc);
        }
      });
    }
  }

  // Parallel engine: partition the converged topology and bring up the
  // shard runtime. Everything before this point ran serially; everything
  // after it that touches the topology from the coordinator thread still
  // resolves to the serial objects (sim::current_shard() is kNoShard).
  std::unique_ptr<net::ShardRuntime> runtime;
  if (shards_ > 1 && !any_tcp) {
    ShardPlan plan = compute_shard_plan(topo, shards_, partition_weights_);
    if (verbose_) {
      report_shard_plan(plan, topo, std::cerr, partition_weights_);
      if (plan.parallel()) {
        // Flow balance: the partitioner only sees topology, so report how
        // the declared traffic sources actually land on the shards.
        std::vector<std::size_t> srcs(plan.shard_count, 0);
        for (const auto& f : flows_) {
          ++srcs[plan.node_shard[built[f.from].ce->id()]];
        }
        for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
          std::cerr << "partition: shard " << s << ": " << srcs[s]
                    << " flow sources\n";
        }
      }
    }
    if (plan.parallel() && plan.lookahead > 0) {
      runtime = std::make_unique<net::ShardRuntime>(
          topo, std::move(plan.node_shard), plan.shard_count, plan.lookahead);
    }
  } else if (shards_ > 1 && any_tcp) {
    out << "shards=" << shards_
        << " requested; tcp flows pin the run to the serial engine\n";
  }

  // Engine sync telemetry: per-epoch phase timings + load-imbalance
  // attribution. Serial runs get a one-lane serial report so profiled
  // bench passes always emit the same JSON shape.
  std::unique_ptr<obs::SyncProfiler> sync_prof;
  if (obs_.sync_enabled()) {
    sync_prof = std::make_unique<obs::SyncProfiler>(
        runtime ? runtime->shard_count() : 1);
    if (runtime) {
      // The profiler layer cannot see routers; sample the per-shard flow
      // caches here, where both the topology and the shard map are known.
      auto by_shard = std::make_shared<
          std::vector<std::vector<const vpn::Router*>>>(
          runtime->shard_count());
      for (std::size_t i = 0; i < topo.node_count(); ++i) {
        const auto id = static_cast<ip::NodeId>(i);
        if (const auto* r = dynamic_cast<const vpn::Router*>(&topo.node(id))) {
          (*by_shard)[topo.shard_of(id)].push_back(r);
        }
      }
      sync_prof->set_cache_sampler(
          [by_shard](std::uint32_t shard, std::uint64_t& hits,
                     std::uint64_t& misses) {
            for (const vpn::Router* r : (*by_shard)[shard]) {
              const vpn::Router::FlowCacheStats fc = r->flowcache_stats();
              hits += fc.hits;
              misses += fc.misses;
            }
          });
      runtime->set_profiler(sync_prof.get());
    }
  }

  // Per-shard SLA observers: each flow's sent-side counters accumulate in
  // the source CE's shard, delivery-side in the destination CE's shard;
  // merge_shard_observers folds them into `probe`/`latency` (whose
  // addresses the metric gauges captured) at every snapshot and at the end.
  std::vector<std::unique_ptr<qos::SlaProbe>> shard_probes;
  std::vector<std::unique_ptr<traffic::MeasurementSink>> shard_sinks;
  if (runtime) {
    for (std::uint32_t s = 0; s < runtime->shard_count(); ++s) {
      shard_probes.push_back(
          std::make_unique<qos::SlaProbe>("shard" + std::to_string(s)));
      shard_sinks.push_back(std::make_unique<traffic::MeasurementSink>(
          *shard_probes.back(), runtime->shard_scheduler(s)));
    }
  }
  auto sink_at = [&](std::size_t site) -> traffic::MeasurementSink& {
    if (!runtime) return sink;
    return *shard_sinks[topo.shard_of(built[site].ce->id())];
  };
  auto probe_at = [&](std::size_t site) -> qos::SlaProbe& {
    if (!runtime) return probe;
    return *shard_probes[topo.shard_of(built[site].ce->id())];
  };
  auto merge_shard_observers = [&] {
    probe = qos::SlaProbe("scenario");
    for (const auto& sp : shard_probes) probe.merge_from(*sp);
    if (obs_.latency_enabled()) {
      latency.reset();
      for (std::uint32_t s = 0; s < runtime->shard_count(); ++s) {
        latency.merge_from(runtime->shard_latency(s));
      }
    }
  };

  // Per-flow telemetry plane: one accounting table per engine lane (the
  // serial scheduler, or each shard's), drained into the exporter at exact
  // scan instants. The sharded driver is a between-window periodic action
  // (every shard rests past all events before the instant, none at or
  // after); the serial driver reproduces that same edge by chunking the
  // run, so the record stream is byte-identical across shard counts. It
  // must register before the metrics action below so coincident instants
  // scan first in both modes.
  std::unique_ptr<obs::FlowExporter> flow_exporter;
  std::vector<std::unique_ptr<obs::FlowStatsTable>> flow_tables;
  sim::SimTime flow_scan_period = 0;
  auto flow_scan = [&](sim::SimTime at) {
    // Single-lane runs cut records straight out of the table (the
    // accumulations never leave their slots); sharded runs must fold the
    // per-shard halves of each flow together first.
    if (flow_tables.size() == 1) {
      flow_exporter->scan_table(*flow_tables.front(), at);
      return;
    }
    for (auto& ft : flow_tables) flow_exporter->merge_table(*ft);
    flow_exporter->scan(at);
  };
  if (obs_.flow_enabled()) {
    obs::FlowExporter::Options fopt;
    fopt.active_timeout = sim::from_seconds(obs_.flow_active_timeout_s);
    fopt.idle_timeout = sim::from_seconds(obs_.flow_idle_timeout_s);
    flow_exporter = std::make_unique<obs::FlowExporter>(fopt);
    if (obs_.flow_scan_period_s > 0) {
      flow_scan_period = sim::from_seconds(obs_.flow_scan_period_s);
    }
    // Size the tables for the declared flow population: at <= 50% load the
    // probe window practically never fills, so the spill path stays off
    // the hot path (and a serial run keeps the table-resident fastpath).
    const std::size_t flow_slots =
        std::max(obs::FlowStatsTable::kDefaultSlots, 2 * flows_.size());
    if (runtime) {
      std::vector<obs::FlowStatsTable*> ptrs;
      for (std::uint32_t s = 0; s < runtime->shard_count(); ++s) {
        flow_tables.push_back(std::make_unique<obs::FlowStatsTable>(
            &runtime->shard_scheduler(s), flow_slots));
        ptrs.push_back(flow_tables.back().get());
      }
      runtime->set_flow_stats(std::move(ptrs));
      if (flow_scan_period > 0) {
        // The action has no instant parameter; track it alongside.
        auto next = std::make_shared<sim::SimTime>(
            topo.base_scheduler().now() + flow_scan_period);
        runtime->add_periodic_action(*next, flow_scan_period, [&, next] {
          flow_scan(*next);
          *next += flow_scan_period;
        });
      }
    } else {
      flow_tables.push_back(std::make_unique<obs::FlowStatsTable>(
          &topo.base_scheduler(), flow_slots));
      topo.set_flow_stats(flow_tables.front().get());
    }
  }

  obs::MetricsRegistry registry;
  std::optional<obs::PeriodicSnapshots> snapshots;
  if (obs_.enabled() && !obs_.metrics_json_path.empty()) {
    obs::register_topology_metrics(topo, registry);
    register_sla_metrics(registry, probe);
    obs::register_latency_metrics(latency, registry, cs_class_namer());
    if (obs_.engine_metrics && runtime) {
      obs::register_engine_metrics(*runtime, registry);
      if (sync_prof) obs::register_sync_metrics(*sync_prof, registry);
    }
    if (obs_.control_metrics) {
      obs::register_control_metrics(bb.cp, bb.bgp, bb.igp, registry);
    }
    if (obs_.engine_metrics && flow_exporter) {
      std::vector<obs::FlowStatsTable*> tptrs;
      tptrs.reserve(flow_tables.size());
      for (const auto& ft : flow_tables) tptrs.push_back(ft.get());
      obs::register_flow_metrics(*flow_exporter, tptrs, registry);
    }
    snapshots.emplace(registry, topo.base_scheduler());
    const sim::SimTime period = sim::from_seconds(obs_.snapshot_period_s);
    if (runtime) {
      // Same capture instants as PeriodicSnapshots::start() (first one a
      // full period in), but as a between-window global action: all shards
      // rest at the capture time, and the fold below makes the serial
      // observers the gauges read consistent before each sample.
      runtime->add_periodic_action(topo.base_scheduler().now() + period,
                                   period, [&] {
                                     merge_shard_observers();
                                     snapshots->capture();
                                   });
    } else {
      snapshots->start(period);
    }
  }

  std::map<std::size_t, std::unique_ptr<traffic::FlowDispatcher>> dispatch;
  auto dispatcher_for = [&](std::size_t site) -> traffic::FlowDispatcher& {
    auto& d = dispatch[site];
    if (!d) {
      d = std::make_unique<traffic::FlowDispatcher>();
      d->attach(*built[site].ce);
    }
    return *d;
  };
  if (any_tcp) {
    for (std::size_t s = 0; s < built.size(); ++s) {
      dispatcher_for(s).set_default(
          [&sink](const net::Packet& p, vpn::VpnId vpn) {
            // A delivery neither a TCP endpoint nor a measured-flow handler
            // claimed. Account it in the sink — it surfaces in the final
            // delivered/leaks/unknown line (and fails the run when nonzero)
            // instead of vanishing from the SLA accounting.
            sink.on_delivery(p, vpn);
          });
    }
  } else {
    for (std::size_t s = 0; s < built.size(); ++s) {
      sink_at(s).bind(*built[s].ce);
    }
  }

  std::vector<std::unique_ptr<traffic::Source>> sources;
  std::vector<double> source_start_s;  // parallel to `sources`
  std::vector<std::unique_ptr<traffic::TcpLiteFlow>> tcp_flows;
  // Default engine: one SoA FlowSet per engine lane (the serial scheduler,
  // or each shard's) holding every cbr/poisson/onoff flow whose source CE
  // lives on that lane — byte-identical to the legacy per-flow Source
  // objects, which `run sources=legacy` brings back for A/B runs.
  std::vector<std::unique_ptr<traffic::FlowSet>> flowsets(
      runtime ? runtime->shard_count() : 1);
  auto flowset_at = [&](std::size_t site) -> traffic::FlowSet& {
    const std::uint32_t lane =
        runtime ? topo.shard_of(built[site].ce->id()) : 0;
    auto& fs = flowsets[lane];
    if (!fs) {
      fs = std::make_unique<traffic::FlowSet>(
          runtime ? runtime->shard_scheduler(lane) : topo.scheduler(),
          runtime ? shard_probes[lane].get() : &probe, topo.seed());
      // Register every site up front so FlowSet site indices coincide with
      // scenario site indices on all lanes (destinations may live on other
      // shards; only their host address is read).
      for (const auto& sb : built) {
        fs->add_site(*sb.ce, ip::Ipv4Address(sb.prefix.address().value() + 1));
      }
    }
    return *fs;
  };
  std::uint32_t flow_id = 1;
  const sim::SimTime t0 = bb.topo.scheduler().now();
  for (const auto& f : flows_) {
    vpn::Router& ce = *built[f.from].ce;
    if (f.kind == "tcp") {
      traffic::TcpLiteFlow::Config tc;
      tc.src = ip::Ipv4Address(built[f.from].prefix.address().value() + 1);
      tc.dst = ip::Ipv4Address(built[f.to].prefix.address().value() + 1);
      tc.dst_port = f.port;
      tc.mss_payload = f.size;
      tc.vpn = vpn_ids.at(f.vpn);
      tc.phb = f.phb;
      tc.premark = f.premark;
      tcp_flows.push_back(std::make_unique<traffic::TcpLiteFlow>(
          ce, dispatcher_for(f.from), *built[f.to].ce,
          dispatcher_for(f.to), flow_id, tc));
      ++flow_id;
      continue;
    }
    const vpn::VpnId flow_vpn = vpn_ids.at(f.vpn);
    if (legacy_sources_) {
      traffic::FlowSpec spec;
      spec.src = ip::Ipv4Address(built[f.from].prefix.address().value() + 1);
      spec.dst = ip::Ipv4Address(built[f.to].prefix.address().value() + 1);
      spec.dst_port = f.port;
      spec.payload_bytes = f.size;
      spec.vpn = flow_vpn;
      spec.phb = f.phb;
      spec.premark = f.premark;
      qos::SlaProbe* flow_probe = &probe_at(f.from);
      if (f.kind == "cbr") {
        sources.push_back(std::make_unique<traffic::CbrSource>(
            ce, spec, flow_id, flow_probe, f.rate));
      } else if (f.kind == "poisson") {
        sources.push_back(std::make_unique<traffic::PoissonSource>(
            ce, spec, flow_id, flow_probe, f.rate));
      } else {
        sources.push_back(std::make_unique<traffic::OnOffSource>(
            ce, spec, flow_id, flow_probe, f.rate, f.on_s, f.off_s));
      }
      source_start_s.push_back(f.start_s);
    } else {
      traffic::FlowSet::FlowDef d;
      d.flow_id = flow_id;
      d.from_site = static_cast<std::uint32_t>(f.from);
      d.to_site = static_cast<std::uint32_t>(f.to);
      d.kind = f.kind == "cbr"       ? traffic::FlowSet::Kind::kCbr
               : f.kind == "poisson" ? traffic::FlowSet::Kind::kPoisson
                                     : traffic::FlowSet::Kind::kOnOff;
      d.rate_bps = f.rate;
      d.on_s = f.on_s;
      d.off_s = f.off_s;
      d.vpn = flow_vpn;
      d.phb = f.phb;
      d.premark = f.premark;
      d.dst_port = f.port;
      d.payload_bytes = static_cast<std::uint32_t>(f.size);
      d.start = t0 + sim::from_seconds(f.start_s);
      flowset_at(f.from).add_flow(d);
    }
    // When dispatchers own the sinks, route measured flows through them.
    if (any_tcp) {
      dispatcher_for(f.to).register_flow(
          flow_id, [&probe, phb = f.phb, &bb](const net::Packet& p,
                                              vpn::VpnId) {
            probe.record_delivered(phb, p.flow_id,
                                   bb.topo.scheduler().now() - p.created_at,
                                   net::kIpv4HeaderBytes +
                                       net::kL4HeaderBytes +
                                       p.payload_bytes);
          });
    } else {
      sink_at(f.to).expect_flow(flow_id, f.phb, flow_vpn);
    }
    ++flow_id;
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i]->run(t0 + sim::from_seconds(source_start_s[i]),
                    t0 + sim::from_seconds(run_for_s_));
  }
  for (auto& fs : flowsets) {
    if (fs) fs->run(t0 + sim::from_seconds(run_for_s_));
  }
  for (auto& t : tcp_flows) {
    t->start(t0);
    bb.topo.scheduler().schedule_at(t0 + sim::from_seconds(run_for_s_),
                                    [flow = t.get()] { flow->stop(); });
  }
  const sim::SimTime t_end = t0 + sim::from_seconds(run_for_s_ + 2.0);
  // Serial runs with the flow exporter armed advance in scan-sized chunks:
  // run every event strictly before the scan instant, scan, continue. This
  // reproduces the edge the sharded periodic action rides, so the two
  // engines cut identical record streams.
  auto serial_run = [&](sim::SimTime until) {
    if (flow_exporter && flow_scan_period > 0) {
      for (sim::SimTime at = t0 + flow_scan_period; at <= until;
           at += flow_scan_period) {
        topo.run_until(at - 1);
        flow_scan(at);
      }
    }
    topo.run_until(until);
  };
  if (runtime) {
    runtime->run_until(t_end);
  } else if (sync_prof) {
    const std::uint64_t ev0 = topo.base_scheduler().executed_count();
    const auto w0 = std::chrono::steady_clock::now();
    serial_run(t_end);
    sync_prof->record_serial(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - w0)
                .count()),
        topo.base_scheduler().executed_count() - ev0);
  } else {
    serial_run(t_end);
  }

  if (flow_exporter) {
    // Whatever is still accumulating after the drain window exports with
    // cause=final; detach the serial table before teardown.
    if (flow_tables.size() == 1) {
      flow_exporter->flush_table(*flow_tables.front());
    } else {
      for (auto& ft : flow_tables) flow_exporter->merge_table(*ft);
      flow_exporter->flush();
    }
    if (!runtime) topo.set_flow_stats(nullptr);
  }

  // Tear the shard runtime down before any report below reads the
  // topology: fold the per-shard observers a final time, then finish()
  // merges shard trace rings into the master recorder and restores the
  // serial view.
  std::uint64_t parallel_windows = 0;
  std::uint64_t parallel_widened = 0;
  std::uint64_t parallel_handoffs = 0;
  std::uint64_t parallel_batches = 0;
  std::uint32_t parallel_shards = 0;
  sim::SimTime parallel_lookahead = 0;
  if (runtime) {
    merge_shard_observers();
    parallel_shards = runtime->shard_count();
    parallel_lookahead = runtime->lookahead();
    parallel_windows = runtime->windows();
    parallel_widened = runtime->widened_windows();
    parallel_handoffs = runtime->handoffs();
    parallel_batches = runtime->delivery_batches();
    runtime->finish();
  }

  out << "converged in "
      << sim::to_seconds(bb.service.last_route_change_at()) * 1e3
      << " ms; ran " << run_for_s_ << " s of traffic";
  if (parallel_shards != 0) {
    out << " on " << parallel_shards << " shards (lookahead "
        << sim::to_seconds(parallel_lookahead) * 1e6 << " us, "
        << parallel_windows << " windows, " << parallel_widened
        << " widened, " << parallel_handoffs << " cross-shard handoffs, "
        << parallel_batches << " batched deliveries)";
  }
  out << "\n\n";
  out << probe.to_table(run_for_s_).render();
  for (std::size_t i = 0; i < tcp_flows.size(); ++i) {
    out << "tcp flow " << tcp_flows[i]->flow_id() << ": goodput "
        << stats::Table::num(tcp_flows[i]->goodput_bps(run_for_s_) / 1e6, 2)
        << " Mb/s, retransmits " << tcp_flows[i]->retransmits() << "\n";
  }
  if (obs_.latency_enabled()) {
    const obs::NodeNamer lnamer = obs::topology_node_namer(bb.topo);
    if (obs_.latency_report) {
      out << "\nlatency anatomy: per-hop decomposition\n"
          << latency.hop_table(lnamer, cs_class_namer()).render()
          << "\nlatency anatomy: per-class delay budget\n"
          << latency.class_table(cs_class_namer()).render();
    }
    if (!obs_.latency_json_path.empty()) {
      std::ofstream lf(obs_.latency_json_path);
      latency.write_json(lf, lnamer, cs_class_namer());
    }
  }
  if (obs_.enabled()) {
    const obs::FlightRecorder& rec = bb.topo.recorder();
    const obs::NodeNamer namer = obs::topology_node_namer(bb.topo);
    if (snapshots) {
      snapshots->stop();
      snapshots->capture();  // final state after the drain
      std::ofstream mf(obs_.metrics_json_path);
      snapshots->write_json(mf);
    }
    if (!obs_.events_jsonl_path.empty()) {
      std::ofstream ef(obs_.events_jsonl_path);
      obs::write_jsonl(rec, ef, namer);
    }
    if (!obs_.chrome_trace_path.empty()) {
      std::ofstream cf(obs_.chrome_trace_path);
      obs::write_chrome_trace(rec, cf, namer, sync_prof.get());
    }
    if (!obs_.spans_trace_path.empty()) {
      const obs::SpanAnalysis spans = obs::analyze_spans(rec);
      std::ofstream sf(obs_.spans_trace_path);
      obs::write_span_chrome_trace(spans, sf, namer);
    }
    out << "\nobs: " << rec.size() << " trace events held ("
        << rec.recorded() << " recorded, " << rec.overwritten()
        << " overwritten)";
    if (snapshots) {
      out << "; " << snapshots->count() << " metrics snapshots ("
          << registry.metric_count() << " metrics)";
    }
    out << "\n";
  }
  if (sync_prof) {
    const obs::SyncProfiler::Report srep = sync_prof->report();
    if (obs_.sync_report) out << '\n' << srep.to_table();
    if (!obs_.sync_json_path.empty()) {
      std::ofstream sf(obs_.sync_json_path);
      srep.write_json(sf);
      sf << '\n';
    }
  }
  if (flow_exporter) {
    std::map<std::uint32_t, std::string> vpn_names;
    for (const auto& [name, id] : vpn_ids) vpn_names[id] = name;
    obs::VpnNamer vnamer = [vpn_names = std::move(vpn_names)](
                               std::uint32_t id) -> std::string {
      const auto it = vpn_names.find(id);
      return it == vpn_names.end() ? "vpn" + std::to_string(id) : it->second;
    };
    obs::PhbNamer pnamer = [](std::uint8_t phb) {
      return qos::to_string(static_cast<qos::Phb>(phb));
    };
    if (obs_.flow_report) {
      out << "\nflow conformance: offered vs delivered per VPN x class ("
          << flow_exporter->records().size() << " flow records)\n"
          << flow_exporter->rollup_table(vnamer, pnamer).render();
    }
    if (!obs_.flow_records_path.empty()) {
      std::ofstream ff(obs_.flow_records_path);
      flow_exporter->write_jsonl(ff, obs::topology_node_namer(bb.topo),
                                 vnamer, pnamer);
    }
    if (!obs_.flow_records_bin_path.empty()) {
      std::ofstream fb(obs_.flow_records_bin_path, std::ios::binary);
      flow_exporter->write_binary(fb);
    }
  }
  if (!obs_.flow_profile_path.empty()) {
    // Measured off link transmit counters, which the run maintains whether
    // or not flow accounting was armed.
    std::ofstream pf(obs_.flow_profile_path);
    write_flow_profile(measure_flow_profile(topo), topo, pf);
  }

  // Isolation / accounting verdict. In dispatcher mode (tcp present) the
  // sink only sees what no handler claimed, so `delivered` there counts
  // strays — and `unknown` nonzero means packets escaped SLA accounting,
  // which used to be silently dropped by the no-op default handler.
  std::uint64_t delivered = sink.delivered();
  std::uint64_t leaks = sink.leaks();
  std::uint64_t unknown = sink.unknown_flows();
  for (const auto& ss : shard_sinks) {
    delivered += ss->delivered();
    leaks += ss->leaks();
    unknown += ss->unknown_flows();
  }
  out << "\ndelivered=" << delivered << " leaks=" << leaks
      << " unknown=" << unknown << "\n";
  return leaks == 0 && unknown == 0;
}

int run_scenario_file(const std::string& path, std::ostream& out) {
  return run_scenario_file(path, out, ObsOptions{});
}

int run_scenario_file(const std::string& path, std::ostream& out,
                      const ObsOptions& obs, std::uint32_t shards,
                      int flowcache, bool verbose,
                      std::vector<std::uint64_t> partition_weights,
                      int legacy_sources, int legacy_updates, int full_spf) {
  std::ifstream in(path);
  if (!in) {
    out << "cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ScenarioError error;
  auto scenario = Scenario::parse(buffer.str(), &error);
  if (!scenario) {
    out << path << ":" << error.line << ": " << error.message << "\n";
    return 2;
  }
  scenario->set_obs(obs);
  if (shards != 0) scenario->set_shards(shards);
  if (flowcache >= 0) scenario->set_flowcache(flowcache != 0);
  if (legacy_sources >= 0) scenario->set_legacy_sources(legacy_sources != 0);
  if (legacy_updates >= 0) scenario->set_legacy_updates(legacy_updates != 0);
  if (full_spf >= 0) scenario->set_full_spf(full_spf != 0);
  scenario->set_verbose(verbose);
  scenario->set_partition_weights(std::move(partition_weights));
  return scenario->run(out) ? 0 : 1;
}

}  // namespace mvpn::backbone
