#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backbone/fixtures.hpp"
#include "backbone/topogen.hpp"
#include "obs/trace.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace mvpn::backbone {

/// Observability hooks for a scenario run: which trace categories to
/// record and where to write the artefacts. Empty paths skip that output;
/// all-empty (the default) leaves the flight recorder disabled so the run
/// costs nothing extra.
struct ObsOptions {
  std::uint32_t trace_mask = obs::kAllCategories;
  std::size_t ring_capacity = 0;      ///< 0: recorder default
  std::string chrome_trace_path;      ///< Chrome trace_event JSON
  std::string events_jsonl_path;      ///< one JSON object per trace event
  std::string metrics_json_path;      ///< periodic metrics snapshot series
  std::string spans_trace_path;       ///< Chrome duration spans (obs/spans)
  double snapshot_period_s = 0.5;

  /// Latency-anatomy outputs. These arm the per-hop delay decomposition
  /// (LatencyCollector), which is independent of the flight recorder.
  bool latency_report = false;        ///< print decomposition tables
  std::string latency_json_path;      ///< decomposition JSON

  /// Engine sync telemetry (obs::SyncProfiler): per-epoch phase timings
  /// and load-imbalance attribution for sharded runs. Independent of the
  /// flight recorder; serial runs print/emit a one-lane serial report.
  bool sync_report = false;           ///< print the sync profile table
  std::string sync_json_path;         ///< machine-readable sync report

  /// Register engine counters (windows, widened, handoffs, ...) with the
  /// metrics registry on sharded runs. Off by default because the values
  /// are engine-configuration-dependent — the cross-shard byte-identity
  /// checks compare metrics snapshots across shard counts.
  bool engine_metrics = false;

  /// Register control-plane counters (SPF full/incremental/skipped runs,
  /// BGP updates sent/packed, wire bytes, Adj-RIB occupancy) under
  /// `control/...`. Off by default for the same reason as engine_metrics:
  /// the values depend on the updates=/spf= mode, and scenario
  /// byte-identity compares metrics snapshots across modes.
  bool control_metrics = false;

  /// Per-flow telemetry plane (obs::FlowStatsTable + FlowExporter): one
  /// accounting table per engine lane, drained into IPFIX-style flow
  /// records at exact scan instants so the record stream is byte-identical
  /// across shard counts. Independent of the flight recorder. The
  /// `engine/flow/...` gauges ride the engine_metrics opt-in above.
  std::string flow_records_path;      ///< flow records, one JSON per line
  std::string flow_records_bin_path;  ///< compact binary records ("MVFR")
  bool flow_report = false;           ///< print per-VPN x class rollup
  std::string flow_profile_path;      ///< measured node/link flow weights
  double flow_active_timeout_s = 0.5;
  double flow_idle_timeout_s = 0.25;
  /// Exporter scan cadence. Defaults to the idle timeout: scanning faster
  /// than the smallest timeout only quantizes cut instants more finely at
  /// the cost of an extra table drain per instant.
  double flow_scan_period_s = 0.25;

  /// Anything here requires the flight recorder.
  [[nodiscard]] bool enabled() const noexcept {
    return !chrome_trace_path.empty() || !events_jsonl_path.empty() ||
           !metrics_json_path.empty() || !spans_trace_path.empty();
  }
  [[nodiscard]] bool latency_enabled() const noexcept {
    return latency_report || !latency_json_path.empty() ||
           !metrics_json_path.empty();
  }
  [[nodiscard]] bool sync_enabled() const noexcept {
    return sync_report || !sync_json_path.empty();
  }
  /// Flow-record outputs arm the accounting tables. The profile does not:
  /// it reads link transmit counters the run maintains anyway.
  [[nodiscard]] bool flow_enabled() const noexcept {
    return !flow_records_path.empty() || !flow_records_bin_path.empty() ||
           flow_report;
  }
};

/// Line-oriented scenario description language, so experiments can be run
/// from a text file instead of C++ ('#' starts a comment):
///
///   backbone p=2 pe=2 core_bw=4e6 edge_bw=20e6 seed=7 bgp=mesh
///            core_queue=wfq:8,3,1          # fifo | prio | wfq:w,... | drr:w,...
///
/// Or, instead of hand-written backbone/vpn/site/flow lines, a generated
/// ISP-scale topology (see backbone/topogen.hpp for the parameters):
///
///   topology generated p=64 pe=256 ce=4 flows=200000 seed=3
///   vpn corp
///   extranet corp partner                  # corp imports partner's routes
///   site corp pe=0 prefix=10.1.0.0/16      # site index = declaration order
///   site corp pe=1 prefix=10.2.0.0/16 pref=200
///   classify site=0 dstport=16384-16484 class=EF
///   police  site=0 class=EF cir=62500 cbs=4000 ebs=4000   # bytes/s, bytes
///   shape   site=0 class=AF11 rate=125000 burst=3000
///   flow cbr     vpn=corp from=0 to=1 rate=200e3 class=EF port=16400 size=172
///   flow poisson vpn=corp from=0 to=1 rate=1e6 size=1472
///   flow onoff   vpn=corp from=0 to=1 rate=2e6 on=0.3 off=0.2 class=AF21 port=5004
///   flow tcp     vpn=corp from=0 to=1 class=BE port=80 size=1432   # greedy elastic
///   run for=5 shards=4 flowcache=off       # seconds of traffic (+2 s drain);
///                                          # shards>1 = parallel engine;
///                                          # flowcache=off: slow path only;
///                                          # sources=legacy: per-flow Source
///                                          # objects instead of the FlowSet
///                                          # engine (A/B, byte-identical)
///                                          # updates=legacy: per-route BGP
///                                          # messages instead of packed
///                                          # update groups (A/B)
///                                          # spf=full: full Dijkstra per
///                                          # LSA install instead of
///                                          # incremental SPF (A/B)
///
/// Flows start when the control plane has converged — together by default,
/// or offset by `start=SECONDS` on a flow line (generated topologies set
/// per-flow offsets to keep same-class sources out of nanosecond lockstep;
/// see PlanFlow in backbone/topogen.hpp). Source and destination hosts are
/// derived from the sites' prefixes.
struct ScenarioError {
  std::size_t line = 0;
  std::string message;
};

/// Parsed scenario, buildable into a live MplsBackbone.
class Scenario {
 public:
  /// Parse; on failure returns nullopt and fills `error`.
  static std::optional<Scenario> parse(const std::string& text,
                                       ScenarioError* error);

  /// Build the network, run the traffic, and print the SLA report (and
  /// isolation accounting) to `out`. Returns false if any isolation
  /// violation was observed.
  bool run(std::ostream& out) const;

  /// Attach observability outputs to the next run() (flight-recorder
  /// traces, metrics snapshots).
  void set_obs(ObsOptions obs) { obs_ = std::move(obs); }
  [[nodiscard]] const ObsOptions& obs() const noexcept { return obs_; }

  /// Partition the topology into `n` shards and run the traffic phase on
  /// the parallel engine (1 = serial, the default; also settable from the
  /// scenario file via `run shards=N`). Scenarios with tcp flows fall back
  /// to serial — TCP-lite endpoints share congestion state across sites.
  void set_shards(std::uint32_t n) { shards_ = n == 0 ? 1 : n; }
  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// Enable/disable the per-router flow fastpath caches for the run (also
  /// settable from the scenario file via `run flowcache=off`). Results are
  /// identical either way — the toggle exists for A/B verification and
  /// benchmarking of the fastpath.
  void set_flowcache(bool on) { flowcache_ = on; }
  [[nodiscard]] bool flowcache() const noexcept { return flowcache_; }

  /// Print partition diagnostics (cut size, per-shard node / CE / flow
  /// balance, lookahead) to stderr when the run goes parallel.
  void set_verbose(bool on) { verbose_ = on; }
  [[nodiscard]] bool verbose() const noexcept { return verbose_; }

  /// Build cbr/poisson/onoff flows as per-flow Source objects instead of
  /// the SoA FlowSet engine (also settable via `run sources=legacy`).
  /// Results are byte-identical either way — the toggle exists for A/B
  /// verification and benchmarking of the megaflow engine.
  void set_legacy_sources(bool on) { legacy_sources_ = on; }
  [[nodiscard]] bool legacy_sources() const noexcept {
    return legacy_sources_;
  }

  /// Send one BGP message per (route, peer) instead of packed per-peer
  /// update groups (also settable via `run updates=legacy`). Final RIBs
  /// and traffic results are byte-identical either way — the toggle is
  /// the control-plane fastpath's A/B guard.
  void set_legacy_updates(bool on) { legacy_updates_ = on; }
  [[nodiscard]] bool legacy_updates() const noexcept {
    return legacy_updates_;
  }

  /// Run a full Dijkstra on every LSA install instead of incremental SPF
  /// (also settable via `run spf=full`). Identical next-hop tables either
  /// way; the toggle exists for A/B verification and SPF-work accounting.
  void set_full_spf(bool on) { full_spf_ = on; }
  [[nodiscard]] bool full_spf() const noexcept { return full_spf_; }

  /// Per-node flow weights for the partitioner (a measured FlowProfile's
  /// node_weight vector, typically from a prior run's --flow-profile).
  /// Empty (the default) keeps the node-count plan. Sharding is
  /// result-transparent, so a different plan changes wall-clock balance
  /// but never the reports.
  void set_partition_weights(std::vector<std::uint64_t> w) {
    partition_weights_ = std::move(w);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& partition_weights()
      const noexcept {
    return partition_weights_;
  }

  /// True when the scenario came from a `topology generated` directive.
  [[nodiscard]] bool generated() const noexcept {
    return topogen_.has_value();
  }
  [[nodiscard]] const std::optional<TopogenParams>& topogen() const noexcept {
    return topogen_;
  }

  /// --- introspection (mostly for tests) ---------------------------------
  [[nodiscard]] std::size_t vpn_count() const noexcept {
    return vpns_.size();
  }
  [[nodiscard]] std::size_t site_count() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] double run_seconds() const noexcept { return run_for_s_; }

 private:
  struct SiteDecl {
    std::string vpn;
    std::size_t pe = 0;
    ip::Prefix prefix;
    std::uint32_t pref = 100;
  };
  struct ClassifyDecl {
    std::size_t site = 0;
    std::uint16_t port_lo = 0;
    std::uint16_t port_hi = 65535;
    qos::Phb phb = qos::Phb::kBe;
  };
  struct PoliceDecl {
    std::size_t site = 0;
    qos::Phb phb = qos::Phb::kBe;
    double cir = 0, cbs = 0, ebs = 0;
  };
  struct ShapeDecl {
    std::size_t site = 0;
    qos::Phb phb = qos::Phb::kBe;
    double rate = 0, burst = 0;
  };
  struct FlowDecl {
    std::string kind;  // cbr | poisson | onoff
    std::string vpn;
    std::size_t from = 0, to = 0;
    double rate = 1e6;
    double on_s = 0.2, off_s = 0.2;
    qos::Phb phb = qos::Phb::kBe;
    bool premark = false;
    std::uint16_t port = 20000;
    std::size_t size = 472;
    double start_s = 0;  ///< start= : emission begins this long after t0
  };

  BackboneConfig backbone_;
  std::string core_queue_spec_ = "fifo";
  std::vector<std::string> vpns_;
  std::vector<std::pair<std::string, std::string>> extranets_;
  std::vector<SiteDecl> sites_;
  std::vector<ClassifyDecl> classifies_;
  std::vector<PoliceDecl> polices_;
  std::vector<ShapeDecl> shapes_;
  std::vector<FlowDecl> flows_;
  double run_for_s_ = 2.0;
  std::uint32_t shards_ = 1;
  bool flowcache_ = true;
  bool verbose_ = false;
  bool legacy_sources_ = false;
  bool legacy_updates_ = false;
  bool full_spf_ = false;
  std::vector<std::uint64_t> partition_weights_;
  std::optional<TopogenParams> topogen_;
  ObsOptions obs_;
};

/// Convenience: parse + run from a file path. Returns process-style exit
/// code (0 ok, 1 isolation violation, 2 parse/usage error).
/// `shards` != 0 overrides the scenario file's `run shards=` setting;
/// `flowcache` 0/1 overrides `run flowcache=` (-1 leaves the file's choice);
/// `verbose` prints partition diagnostics to stderr.
/// `partition_weights` feeds the flow-weighted partitioner (see
/// Scenario::set_partition_weights).
/// `legacy_sources` 0/1 overrides `run sources=` (-1 leaves the file's
/// choice); `legacy_updates` and `full_spf` likewise override
/// `run updates=` / `run spf=`.
int run_scenario_file(const std::string& path, std::ostream& out);
int run_scenario_file(const std::string& path, std::ostream& out,
                      const ObsOptions& obs, std::uint32_t shards = 0,
                      int flowcache = -1, bool verbose = false,
                      std::vector<std::uint64_t> partition_weights = {},
                      int legacy_sources = -1, int legacy_updates = -1,
                      int full_spf = -1);

}  // namespace mvpn::backbone
