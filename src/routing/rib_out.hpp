#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ip/route_table.hpp"
#include "routing/bgp_types.hpp"
#include "routing/rib.hpp"

namespace mvpn::routing {

/// Per-speaker MP-BGP update staging: the RibOut.
///
/// Instead of one scheduler event + one heap closure per (route, peer),
/// every advertisement or withdraw is enqueued ONCE into the update group
/// for its export-policy peer set (contrail's RibOut update aggregation
/// shape). A single flush event per speaker then drains all groups, packs
/// queued NLRI into MTU-bounded update messages — shared path attributes
/// written once per distinct attribute set — and emits one session message
/// per (peer, packed message).
///
/// Supersede rule: re-advertising (or withdrawing) a key that is already
/// queued kills the queued entry in place — the flap never reaches the wire
/// (flap damping for free). When the superseded entry targeted peers the
/// new one does not (an RR whose best path moved to a different sender),
/// its payload is re-queued for exactly that residual peer set, so no peer
/// is starved of the update it was owed. Invariant: per key, the peer sets
/// of live queued entries are pairwise disjoint — each peer sees at most
/// one queued action per key, making the flush order across groups
/// irrelevant to the receiver's final state.
class RibOut {
 public:
  /// Packed-message byte budget (a conventional MTU-ish bound; real BGP
  /// caps messages at 4096 B).
  static constexpr std::size_t kMaxMessageBytes = 4096;

  struct Entry {
    VpnRouteKey key;
    CompactRoute route;    ///< meaningful when !withdraw
    bool withdraw = false;
    bool dead = false;     ///< superseded while queued; never hits the wire
  };

  /// One packed update message bound for every peer of its group. The
  /// entry vector is shared across those peers — the attribute/NLRI block
  /// is materialized once, not per receiver.
  struct Message {
    std::shared_ptr<const std::vector<ip::NodeId>> peers;
    std::shared_ptr<std::vector<Entry>> entries;
    std::size_t wire_bytes = 0;
    std::size_t reach = 0;    ///< advertised NLRI in this message
    std::size_t unreach = 0;  ///< withdrawn NLRI in this message
  };

  /// Queue an advertisement (`route` non-null) or withdraw (`route` null)
  /// of `key` from `node` toward `peers`. Returns true when the caller
  /// must arm a flush event for `node` (i.e. none was pending).
  bool enqueue(ip::NodeId node, std::vector<ip::NodeId> peers,
               const VpnRouteKey& key, const CompactRoute* route);

  /// Pack and return every queued live entry for `node`, clearing its
  /// queues and disarming the flush. `pool` resolves RT-set sizes for
  /// attribute byte accounting.
  std::vector<Message> drain(ip::NodeId node, const RtSetPool& pool);

  /// Forget everything queued at `node` (speaker death: queued updates die
  /// with the TCP sessions).
  void drop_node(ip::NodeId node);

  [[nodiscard]] bool armed(ip::NodeId node) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && it->second.armed;
  }

  /// --- counters ---------------------------------------------------------
  [[nodiscard]] std::uint64_t nlri_enqueued() const noexcept {
    return nlri_enqueued_;
  }
  [[nodiscard]] std::uint64_t superseded() const noexcept {
    return superseded_;
  }
  [[nodiscard]] std::uint64_t messages_packed() const noexcept {
    return messages_packed_;
  }
  [[nodiscard]] std::uint64_t nlri_packed() const noexcept {
    return nlri_packed_;
  }
  [[nodiscard]] std::uint64_t wire_bytes_packed() const noexcept {
    return wire_bytes_packed_;
  }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
  [[nodiscard]] std::uint64_t group_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [node, ns] : nodes_) n += ns.groups.size();
    return n;
  }

 private:
  struct Group {
    std::vector<ip::NodeId> peers;  ///< sorted; the group identity
    std::vector<Entry> queue;
  };
  struct NodeState {
    std::vector<Group> groups;
    std::map<std::vector<ip::NodeId>, std::uint32_t> group_of;
    /// Live queued entries per key: (group id, queue slot) pairs whose
    /// peer sets are pairwise disjoint.
    std::map<VpnRouteKey, std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        queued;
    bool armed = false;
  };

  void append(NodeState& ns, std::vector<ip::NodeId> peers, Entry entry);

  std::map<ip::NodeId, NodeState> nodes_;
  std::uint64_t nlri_enqueued_ = 0;
  std::uint64_t superseded_ = 0;
  std::uint64_t messages_packed_ = 0;
  std::uint64_t nlri_packed_ = 0;
  std::uint64_t wire_bytes_packed_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace mvpn::routing
