#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ip/address.hpp"
#include "ip/route_table.hpp"
#include "routing/bgp_types.hpp"
#include "routing/control_plane.hpp"
#include "routing/rib.hpp"
#include "routing/rib_out.hpp"

namespace mvpn::routing {

/// MP-BGP mesh distributing VPN-IPv4 routes among PE routers, in either
/// full-mesh iBGP or route-reflector topology — the control-plane half of
/// the scalability story (experiments E1/E7 count its sessions, messages
/// and per-node state).
///
/// Two emission paths, byte-identical in final routing state:
///  * packed (default) — advertisements and withdraws stage through a
///    per-speaker RibOut (update groups keyed by export-policy peer set),
///    flushed by one scheduled event per speaker per flush instant into
///    MTU-bounded multi-NLRI messages (INTERNALS.md §15);
///  * legacy (`set_packing(false)`) — one session event and one message
///    per (route, peer), the pre-packing baseline the A/B guards compare
///    against.
class Bgp {
 public:
  enum class Mode { kFullMesh, kRouteReflector };

  explicit Bgp(ControlPlane& cp, Mode mode = Mode::kFullMesh);

  /// Enroll a PE speaker (a route-reflector client in RR mode).
  void add_speaker(ip::NodeId pe);
  /// Enroll a route reflector (RR mode only; RRs full-mesh among
  /// themselves and serve every speaker as a client).
  void add_route_reflector(ip::NodeId rr);

  /// Establish all sessions per the mode (counts OPEN exchanges).
  void start();

  /// Inject a locally-originated route at `pe` (e.g. learned from an
  /// attached CE) and propagate.
  void originate(ip::NodeId pe, VpnRoute route);
  /// Withdraw a locally-originated route.
  void withdraw(ip::NodeId pe, const RouteDistinguisher& rd,
                const ip::Prefix& prefix);

  /// Simulate a speaker crash: every peer tears down its session with
  /// `pe`, flushes the routes learned from it and re-runs best-path
  /// selection — the mechanism behind PE-failure failover for multihomed
  /// sites. Updates `pe` had queued but not yet flushed die with its
  /// sessions. (`pe` itself goes silent; its RIB state is untouched so a
  /// later restart could be modeled on top.)
  void fail_speaker(ip::NodeId pe);

  /// Fired whenever a speaker's Loc-RIB best path for some key changes.
  /// `withdrawn` means the key now has no route at that speaker.
  using RouteObserver =
      std::function<void(ip::NodeId at, const VpnRoute& route, bool withdrawn)>;
  void on_route(RouteObserver cb) { observers_.push_back(std::move(cb)); }

  /// A/B switch: packed update groups (default) vs one message per
  /// (route, peer). Same final RIBs either way; only event/message counts
  /// and wire-byte accounting differ.
  void set_packing(bool on) noexcept { packing_ = on; }
  [[nodiscard]] bool packing() const noexcept { return packing_; }

  /// --- introspection -----------------------------------------------------
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::size_t loc_rib_size(ip::NodeId node) const;
  [[nodiscard]] std::size_t adj_rib_in_size(ip::NodeId node) const;
  [[nodiscard]] const VpnRoute* best(ip::NodeId node, const VpnRouteKey& key)
      const;
  [[nodiscard]] std::vector<VpnRoute> loc_rib(ip::NodeId node) const;
  [[nodiscard]] bool is_reflector(ip::NodeId node) const;
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const std::vector<ip::NodeId>& speakers() const noexcept {
    return speakers_;
  }
  /// Update-group staging counters (packed path only).
  [[nodiscard]] const RibOut& rib_out() const noexcept { return ribout_; }
  /// Interned route-target set pool shared by every speaker's RIB.
  [[nodiscard]] const RtSetPool& rt_pool() const noexcept { return pool_; }
  /// Total Adj-RIB-In footprint across speakers (table + arena capacity,
  /// plus the shared RT pool) — the B/route the churn bench budgets.
  [[nodiscard]] std::size_t adj_rib_bytes() const;
  [[nodiscard]] std::size_t adj_rib_routes() const;

 private:
  struct SpeakerState {
    bool reflector = false;
    std::vector<ip::NodeId> peers;
    /// Adj-RIB-In: per key, the route each sender currently offers, in a
    /// compact open-addressed table. Sender kInvalidNode marks
    /// locally-originated routes.
    AdjRibIn adj_rib_in;
    std::map<VpnRouteKey, VpnRoute> loc_rib;
    /// Which peer (or local) supplied the current best, for reflection.
    std::map<VpnRouteKey, ip::NodeId> best_sender;
  };

  void add_session(ip::NodeId a, ip::NodeId b);
  void receive_update(ip::NodeId at, ip::NodeId from, VpnRoute route);
  void receive_withdraw(ip::NodeId at, ip::NodeId from, VpnRouteKey key);
  /// Re-run best-path selection for `key` at `node`; propagate on change.
  void decide(ip::NodeId node, const VpnRouteKey& key);
  /// Peers `node` must advertise to when its best for a key came from
  /// `sender` (kInvalidNode = locally originated).
  [[nodiscard]] std::vector<ip::NodeId> advertise_targets(
      ip::NodeId node, ip::NodeId sender) const;
  /// Route the (re-)advertisement or withdraw (`route` null) of `key`
  /// through the RibOut (packed) or straight to per-peer messages (legacy).
  void propagate(ip::NodeId node, ip::NodeId sender, const VpnRouteKey& key,
                 const VpnRoute* route);
  /// Drain `node`'s update groups into packed session messages.
  void flush(ip::NodeId node);
  void apply_packed(ip::NodeId at, ip::NodeId from,
                    const std::vector<RibOut::Entry>& entries);
  void send_update(ip::NodeId from, ip::NodeId to, const VpnRoute& route);
  void send_withdraw(ip::NodeId from, ip::NodeId to, const VpnRouteKey& key);

  static bool better(const VpnRoute& a, const VpnRoute& b) noexcept;
  static bool better_compact(const CompactRoute& a,
                             const CompactRoute& b) noexcept;

  ControlPlane& cp_;
  Mode mode_;
  std::vector<ip::NodeId> speakers_;
  std::vector<ip::NodeId> reflectors_;
  std::map<ip::NodeId, SpeakerState> state_;
  std::vector<std::pair<ip::NodeId, ip::NodeId>> sessions_;
  std::vector<RouteObserver> observers_;
  RtSetPool pool_;
  RibOut ribout_;
  bool packing_ = true;
  bool started_ = false;
};

}  // namespace mvpn::routing
