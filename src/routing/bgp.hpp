#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ip/address.hpp"
#include "ip/route_table.hpp"
#include "routing/control_plane.hpp"

namespace mvpn::routing {

/// Type-0 route distinguisher "asn:assigned" (RFC 2547 §4.1): prepended to
/// customer prefixes so overlapping VPN address spaces stay distinct inside
/// one BGP routing system — the paper's "identifiers allow a single routing
/// system to support multiple VPNs whose internal address spaces overlap".
struct RouteDistinguisher {
  std::uint32_t asn = 0;
  std::uint32_t assigned = 0;

  friend constexpr auto operator<=>(const RouteDistinguisher&,
                                    const RouteDistinguisher&) = default;
  [[nodiscard]] std::string to_string() const {
    return std::to_string(asn) + ":" + std::to_string(assigned);
  }
};

/// Route-target extended community controlling VRF import/export policy.
struct RouteTarget {
  std::uint32_t asn = 0;
  std::uint32_t assigned = 0;

  friend constexpr auto operator<=>(const RouteTarget&,
                                    const RouteTarget&) = default;
  [[nodiscard]] std::string to_string() const {
    return std::to_string(asn) + ":" + std::to_string(assigned);
  }
};

/// A VPN-IPv4 NLRI with its attributes: the unit MP-BGP distributes among
/// PEs ("piggybacking labels in the routing protocol updates", paper §4).
struct VpnRoute {
  RouteDistinguisher rd;
  ip::Prefix prefix;
  ip::Ipv4Address next_hop;          ///< egress PE loopback
  ip::NodeId next_hop_node = ip::kInvalidNode;
  std::uint32_t vpn_label = ip::kNoLabel;
  std::vector<RouteTarget> route_targets;
  std::uint32_t local_pref = 100;
  ip::NodeId originator = ip::kInvalidNode;

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return 48 + 8 * route_targets.size();
  }
  [[nodiscard]] bool has_target(const RouteTarget& rt) const noexcept {
    for (const auto& t : route_targets) {
      if (t == rt) return true;
    }
    return false;
  }
};

/// Loc-RIB / Adj-RIB key.
using VpnRouteKey = std::pair<RouteDistinguisher, ip::Prefix>;

/// MP-BGP mesh distributing VPN-IPv4 routes among PE routers, in either
/// full-mesh iBGP or route-reflector topology — the control-plane half of
/// the scalability story (experiments E1/E7 count its sessions, messages
/// and per-node state).
class Bgp {
 public:
  enum class Mode { kFullMesh, kRouteReflector };

  explicit Bgp(ControlPlane& cp, Mode mode = Mode::kFullMesh);

  /// Enroll a PE speaker (a route-reflector client in RR mode).
  void add_speaker(ip::NodeId pe);
  /// Enroll a route reflector (RR mode only; RRs full-mesh among
  /// themselves and serve every speaker as a client).
  void add_route_reflector(ip::NodeId rr);

  /// Establish all sessions per the mode (counts OPEN exchanges).
  void start();

  /// Inject a locally-originated route at `pe` (e.g. learned from an
  /// attached CE) and propagate.
  void originate(ip::NodeId pe, VpnRoute route);
  /// Withdraw a locally-originated route.
  void withdraw(ip::NodeId pe, const RouteDistinguisher& rd,
                const ip::Prefix& prefix);

  /// Simulate a speaker crash: every peer tears down its session with
  /// `pe`, flushes the routes learned from it and re-runs best-path
  /// selection — the mechanism behind PE-failure failover for multihomed
  /// sites. (`pe` itself goes silent; its local state is untouched so a
  /// later restart could be modeled on top.)
  void fail_speaker(ip::NodeId pe);

  /// Fired whenever a speaker's Loc-RIB best path for some key changes.
  /// `withdrawn` means the key now has no route at that speaker.
  using RouteObserver =
      std::function<void(ip::NodeId at, const VpnRoute& route, bool withdrawn)>;
  void on_route(RouteObserver cb) { observers_.push_back(std::move(cb)); }

  /// --- introspection -----------------------------------------------------
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::size_t loc_rib_size(ip::NodeId node) const;
  [[nodiscard]] std::size_t adj_rib_in_size(ip::NodeId node) const;
  [[nodiscard]] const VpnRoute* best(ip::NodeId node, const VpnRouteKey& key)
      const;
  [[nodiscard]] std::vector<VpnRoute> loc_rib(ip::NodeId node) const;
  [[nodiscard]] bool is_reflector(ip::NodeId node) const;
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const std::vector<ip::NodeId>& speakers() const noexcept {
    return speakers_;
  }

 private:
  struct SpeakerState {
    bool reflector = false;
    std::vector<ip::NodeId> peers;
    /// Adj-RIB-In: per key, the route each sender currently offers.
    /// Sender kInvalidNode marks locally-originated routes.
    std::map<VpnRouteKey, std::map<ip::NodeId, VpnRoute>> adj_rib_in;
    std::map<VpnRouteKey, VpnRoute> loc_rib;
    /// Which peer (or local) supplied the current best, for reflection.
    std::map<VpnRouteKey, ip::NodeId> best_sender;
  };

  void add_session(ip::NodeId a, ip::NodeId b);
  void receive_update(ip::NodeId at, ip::NodeId from, VpnRoute route);
  void receive_withdraw(ip::NodeId at, ip::NodeId from, VpnRouteKey key);
  /// Re-run best-path selection for `key` at `node`; propagate on change.
  void decide(ip::NodeId node, const VpnRouteKey& key);
  /// Peers `node` must advertise to when its best for a key came from
  /// `sender` (kInvalidNode = locally originated).
  [[nodiscard]] std::vector<ip::NodeId> advertise_targets(
      ip::NodeId node, ip::NodeId sender) const;
  void send_update(ip::NodeId from, ip::NodeId to, const VpnRoute& route);
  void send_withdraw(ip::NodeId from, ip::NodeId to, const VpnRouteKey& key);

  static bool better(const VpnRoute& a, const VpnRoute& b) noexcept;

  ControlPlane& cp_;
  Mode mode_;
  std::vector<ip::NodeId> speakers_;
  std::vector<ip::NodeId> reflectors_;
  std::map<ip::NodeId, SpeakerState> state_;
  std::vector<std::pair<ip::NodeId, ip::NodeId>> sessions_;
  std::vector<RouteObserver> observers_;
  bool started_ = false;
};

}  // namespace mvpn::routing
