#include "routing/link_state.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace mvpn::routing {

bool LinkStateDb::install(const Lsa& lsa) {
  auto it = db_.find(lsa.origin);
  if (it != db_.end() && it->second.sequence >= lsa.sequence) return false;
  db_[lsa.origin] = lsa;
  return true;
}

const Lsa* LinkStateDb::find(ip::NodeId origin) const {
  auto it = db_.find(origin);
  return it == db_.end() ? nullptr : &it->second;
}

ComputedPath shortest_path(const LinkStateDb& db, ip::NodeId from,
                           ip::NodeId to, double min_reservable,
                           const std::vector<net::LinkId>& excluded) {
  struct Candidate {
    std::uint32_t cost;
    std::uint32_t hops;
    ip::NodeId node;
    bool operator>(const Candidate& o) const noexcept {
      if (cost != o.cost) return cost > o.cost;
      if (hops != o.hops) return hops > o.hops;
      return node > o.node;
    }
  };

  std::map<ip::NodeId, std::pair<std::uint32_t, std::uint32_t>> best;
  std::map<ip::NodeId, ip::NodeId> parent;
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;

  pq.push(Candidate{0, 0, from});
  best[from] = {0, 0};

  auto is_excluded = [&](net::LinkId l) {
    return std::find(excluded.begin(), excluded.end(), l) != excluded.end();
  };

  while (!pq.empty()) {
    const Candidate c = pq.top();
    pq.pop();
    auto found = best.find(c.node);
    if (found == best.end() || found->second.first < c.cost ||
        (found->second.first == c.cost && found->second.second < c.hops)) {
      continue;  // stale entry
    }
    if (c.node == to) break;

    const Lsa* lsa = db.find(c.node);
    if (lsa == nullptr) continue;
    for (const LsaLink& l : lsa->links) {
      if (l.reservable_bps + 1e-6 < min_reservable) continue;
      if (is_excluded(l.link)) continue;
      // Require the neighbor to advertise the reverse adjacency: two-way
      // connectivity check, as in real link-state protocols.
      const Lsa* back = db.find(l.neighbor);
      if (back == nullptr) continue;
      const bool two_way =
          std::any_of(back->links.begin(), back->links.end(),
                      [&](const LsaLink& bl) { return bl.link == l.link; });
      if (!two_way) continue;

      const std::uint32_t ncost = c.cost + l.cost;
      const std::uint32_t nhops = c.hops + 1;
      auto it = best.find(l.neighbor);
      if (it == best.end() || ncost < it->second.first ||
          (ncost == it->second.first && nhops < it->second.second)) {
        best[l.neighbor] = {ncost, nhops};
        parent[l.neighbor] = c.node;
        pq.push(Candidate{ncost, nhops, l.neighbor});
      }
    }
  }

  ComputedPath path;
  if (best.find(to) == best.end()) return path;
  path.cost = best[to].first;
  for (ip::NodeId n = to;; n = parent[n]) {
    path.nodes.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

}  // namespace mvpn::routing
