#include "routing/hello.hpp"

namespace mvpn::routing {

HelloProtocol::HelloProtocol(ControlPlane& cp) : cp_(cp) {}

void HelloProtocol::enroll_link(net::LinkId link) {
  const net::Link& l = cp_.topology().link(link);
  Watch w;
  w.link = link;
  w.a = l.end_a().node;
  w.b = l.end_b().node;
  watches_.push_back(w);
}

void HelloProtocol::start(sim::SimTime interval,
                          std::uint32_t miss_threshold) {
  interval_ = interval;
  threshold_ = miss_threshold;
  running_ = true;
  tick();
}

void HelloProtocol::declare_down(net::LinkId link) {
  auto [it, fresh] = down_links_.emplace(link, true);
  if (!fresh) return;  // already declared
  for (const auto& cb : callbacks_) cb(link);
}

void HelloProtocol::tick() {
  if (!running_) return;
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    Watch& w = watches_[i];
    if (down_links_.count(w.link) != 0) continue;
    // Each side sends a hello; send_adjacent fails (returns false) when
    // the link is down — that IS the missed hello. (Index capture: the
    // watch vector may grow between tick and delivery.)
    ++hellos_sent_;
    if (!cp_.send_adjacent(w.a, w.b, "hello", 16,
                           [this, i] { watches_[i].misses_at_b = 0; })) {
      ++w.misses_at_b;
    }
    ++hellos_sent_;
    if (!cp_.send_adjacent(w.b, w.a, "hello", 16,
                           [this, i] { watches_[i].misses_at_a = 0; })) {
      ++w.misses_at_a;
    }
    if (w.misses_at_a >= threshold_ || w.misses_at_b >= threshold_) {
      declare_down(w.link);
    }
  }
  cp_.topology().scheduler().schedule_in(interval_, [this] { tick(); });
}

}  // namespace mvpn::routing
