#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "routing/control_plane.hpp"

namespace mvpn::routing {

/// Adjacency liveness via periodic hellos (the OSPF hello / BFD role):
/// each router sends a hello over every enrolled link per interval; a
/// side that misses `threshold` consecutive hellos declares the link down
/// and fires the callback — which scenarios wire to
/// Igp::notify_link_change / RsvpTe::notify_link_failure, replacing the
/// manual failure notifications.
///
/// Detection time is therefore interval x threshold, the classic
/// trade-off between failure detection speed and false positives.
class HelloProtocol {
 public:
  explicit HelloProtocol(ControlPlane& cp);

  /// Watch `link` (both directions).
  void enroll_link(net::LinkId link);
  /// Start the periodic hellos.
  void start(sim::SimTime interval, std::uint32_t miss_threshold);

  /// Fired once per link when it is declared dead (from either side).
  using DownCallback = std::function<void(net::LinkId)>;
  void on_link_down(DownCallback cb) { callbacks_.push_back(std::move(cb)); }

  [[nodiscard]] std::uint64_t hellos_sent() const noexcept {
    return hellos_sent_;
  }
  [[nodiscard]] std::size_t links_declared_down() const noexcept {
    return down_links_.size();
  }
  [[nodiscard]] bool is_down(net::LinkId link) const {
    return down_links_.count(link) != 0;
  }

 private:
  struct Watch {
    net::LinkId link = net::kInvalidLink;
    ip::NodeId a = ip::kInvalidNode;
    ip::NodeId b = ip::kInvalidNode;
    std::uint32_t misses_at_a = 0;  ///< hellos from b that a missed
    std::uint32_t misses_at_b = 0;
  };

  void tick();
  void declare_down(net::LinkId link);

  ControlPlane& cp_;
  std::vector<Watch> watches_;
  std::map<net::LinkId, bool> down_links_;
  std::vector<DownCallback> callbacks_;
  sim::SimTime interval_ = 0;
  std::uint32_t threshold_ = 3;
  bool running_ = false;
  std::uint64_t hellos_sent_ = 0;
};

}  // namespace mvpn::routing
