#include "routing/bgp.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvpn::routing {

Bgp::Bgp(ControlPlane& cp, Mode mode) : cp_(cp), mode_(mode) {}

void Bgp::add_speaker(ip::NodeId pe) {
  if (started_) throw std::logic_error("Bgp: add_speaker after start");
  if (state_.count(pe) != 0) return;
  state_[pe];  // default-construct
  speakers_.push_back(pe);
}

void Bgp::add_route_reflector(ip::NodeId rr) {
  if (started_) throw std::logic_error("Bgp: add_route_reflector after start");
  if (mode_ != Mode::kRouteReflector) {
    throw std::logic_error("Bgp: reflectors require kRouteReflector mode");
  }
  auto& st = state_[rr];
  if (st.reflector) return;
  st.reflector = true;
  reflectors_.push_back(rr);
}

bool Bgp::is_reflector(ip::NodeId node) const {
  auto it = state_.find(node);
  return it != state_.end() && it->second.reflector;
}

void Bgp::add_session(ip::NodeId a, ip::NodeId b) {
  state_.at(a).peers.push_back(b);
  state_.at(b).peers.push_back(a);
  sessions_.emplace_back(a, b);
  // OPEN exchange, one message each way.
  cp_.send_session(a, b, "bgp.open", 29, [] {});
  cp_.send_session(b, a, "bgp.open", 29, [] {});
}

void Bgp::start() {
  if (started_) return;
  started_ = true;
  if (mode_ == Mode::kFullMesh) {
    for (std::size_t i = 0; i < speakers_.size(); ++i) {
      for (std::size_t j = i + 1; j < speakers_.size(); ++j) {
        add_session(speakers_[i], speakers_[j]);
      }
    }
    return;
  }
  if (reflectors_.empty()) {
    throw std::logic_error("Bgp: kRouteReflector mode with no reflectors");
  }
  // Clients session to every RR; RRs full-mesh among themselves.
  for (ip::NodeId pe : speakers_) {
    for (ip::NodeId rr : reflectors_) add_session(pe, rr);
  }
  for (std::size_t i = 0; i < reflectors_.size(); ++i) {
    for (std::size_t j = i + 1; j < reflectors_.size(); ++j) {
      add_session(reflectors_[i], reflectors_[j]);
    }
  }
}

bool Bgp::better(const VpnRoute& a, const VpnRoute& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.originator != b.originator) return a.originator < b.originator;
  return a.next_hop.value() < b.next_hop.value();
}

bool Bgp::better_compact(const CompactRoute& a, const CompactRoute& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.originator != b.originator) return a.originator < b.originator;
  return a.next_hop < b.next_hop;
}

std::vector<ip::NodeId> Bgp::advertise_targets(ip::NodeId node,
                                               ip::NodeId sender) const {
  const SpeakerState& st = state_.at(node);
  std::vector<ip::NodeId> out;
  if (sender == ip::kInvalidNode) {
    // Locally originated: advertise to every peer.
    out = st.peers;
    return out;
  }
  if (!st.reflector) return out;  // plain iBGP: never re-advertise
  const bool from_client = !is_reflector(sender);
  for (ip::NodeId peer : st.peers) {
    if (peer == sender) continue;
    const bool peer_is_client = !is_reflector(peer);
    // RR rules: client routes reflect everywhere else; non-client routes
    // reflect to clients only.
    if (from_client || peer_is_client) out.push_back(peer);
  }
  return out;
}

void Bgp::send_update(ip::NodeId from, ip::NodeId to, const VpnRoute& route) {
  VpnRoute copy = route;
  cp_.send_session(from, to, "bgp.update", route.wire_bytes(),
                   [this, to, from, copy = std::move(copy)] {
                     receive_update(to, from, copy);
                   });
}

void Bgp::send_withdraw(ip::NodeId from, ip::NodeId to,
                        const VpnRouteKey& key) {
  cp_.send_session(from, to, "bgp.withdraw", withdraw_wire_bytes(key),
                   [this, to, from, key] { receive_withdraw(to, from, key); });
}

void Bgp::propagate(ip::NodeId node, ip::NodeId sender, const VpnRouteKey& key,
                    const VpnRoute* route) {
  std::vector<ip::NodeId> targets = advertise_targets(node, sender);
  if (targets.empty()) return;
  if (!packing_) {
    for (ip::NodeId peer : targets) {
      if (route != nullptr) {
        send_update(node, peer, *route);
      } else {
        send_withdraw(node, peer, key);
      }
    }
    return;
  }
  CompactRoute compact;
  const CompactRoute* payload = nullptr;
  if (route != nullptr) {
    compact = compress(*route, pool_);
    payload = &compact;
  }
  if (ribout_.enqueue(node, std::move(targets), key, payload)) {
    // Zero-delay flush: the packed message leaves at the same tick the
    // per-route messages would have, so session-delay arrival instants —
    // and therefore the whole decision cascade — match the legacy path.
    cp_.topology().scheduler().schedule_in(0, [this, node] { flush(node); });
  }
}

void Bgp::flush(ip::NodeId node) {
  SpeakerState& st = state_.at(node);
  for (RibOut::Message& m : ribout_.drain(node, pool_)) {
    // Withdraw-only messages keep their own wire type so session-teardown
    // and convergence experiments can still count withdraws.
    const char* type = m.reach > 0 ? "bgp.update" : "bgp.withdraw";
    for (ip::NodeId peer : *m.peers) {
      // A peer that vanished between enqueue and flush (session teardown)
      // silently loses the queued update — its TCP session is gone.
      if (std::find(st.peers.begin(), st.peers.end(), peer) ==
          st.peers.end()) {
        continue;
      }
      cp_.send_session(node, peer, type, m.wire_bytes,
                       [this, node, peer, entries = m.entries] {
                         apply_packed(peer, node, *entries);
                       });
    }
  }
}

void Bgp::apply_packed(ip::NodeId at, ip::NodeId from,
                       const std::vector<RibOut::Entry>& entries) {
  for (const RibOut::Entry& e : entries) {
    if (e.withdraw) {
      receive_withdraw(at, from, e.key);
    } else {
      receive_update(at, from, materialize(e.key, e.route, pool_));
    }
  }
}

void Bgp::originate(ip::NodeId pe, VpnRoute route) {
  route.originator = pe;
  SpeakerState& st = state_.at(pe);
  const VpnRouteKey key{route.rd, route.prefix};
  st.adj_rib_in.upsert(key, ip::kInvalidNode, compress(route, pool_));
  decide(pe, key);
}

void Bgp::withdraw(ip::NodeId pe, const RouteDistinguisher& rd,
                   const ip::Prefix& prefix) {
  SpeakerState& st = state_.at(pe);
  const VpnRouteKey key{rd, prefix};
  if (!st.adj_rib_in.erase(key, ip::kInvalidNode)) return;
  decide(pe, key);
}

void Bgp::receive_update(ip::NodeId at, ip::NodeId from, VpnRoute route) {
  SpeakerState& st = state_.at(at);
  if (route.originator == at) return;  // originator loop guard
  const VpnRouteKey key{route.rd, route.prefix};
  st.adj_rib_in.upsert(key, from, compress(route, pool_));
  decide(at, key);
}

void Bgp::receive_withdraw(ip::NodeId at, ip::NodeId from, VpnRouteKey key) {
  SpeakerState& st = state_.at(at);
  if (!st.adj_rib_in.erase(key, from)) return;
  decide(at, key);
}

void Bgp::decide(ip::NodeId node, const VpnRouteKey& key) {
  SpeakerState& st = state_.at(node);
  const CompactRoute* new_best = nullptr;
  ip::NodeId new_sender = ip::kInvalidNode;
  st.adj_rib_in.for_each(key, [&](ip::NodeId sender, const CompactRoute& r) {
    // Chain order is insertion-dependent, so the tie-break the old
    // std::map sweep got implicitly — lowest sender wins a full attribute
    // tie — is explicit here.
    if (new_best == nullptr || better_compact(r, *new_best) ||
        (!better_compact(*new_best, r) && sender < new_sender)) {
      new_best = &r;
      new_sender = sender;
    }
  });

  auto loc_it = st.loc_rib.find(key);
  if (new_best == nullptr) {
    if (loc_it == st.loc_rib.end()) return;  // nothing changed
    // Best path lost: withdraw downstream, notify observers.
    const ip::NodeId old_sender = st.best_sender[key];
    st.loc_rib.erase(loc_it);
    st.best_sender.erase(key);
    VpnRoute gone;
    gone.rd = key.first;
    gone.prefix = key.second;
    for (const auto& cb : observers_) cb(node, gone, true);
    propagate(node, old_sender, key, nullptr);
    return;
  }

  VpnRoute best_route = materialize(key, *new_best, pool_);
  const bool changed =
      loc_it == st.loc_rib.end() ||
      loc_it->second.next_hop != best_route.next_hop ||
      loc_it->second.vpn_label != best_route.vpn_label ||
      loc_it->second.originator != best_route.originator ||
      loc_it->second.route_targets != best_route.route_targets;
  if (!changed) return;

  VpnRoute& stored = st.loc_rib[key] = std::move(best_route);
  st.best_sender[key] = new_sender;
  for (const auto& cb : observers_) cb(node, stored, false);
  propagate(node, new_sender, key, &stored);
}

void Bgp::fail_speaker(ip::NodeId pe) {
  // Drop sessions touching `pe`.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->first == pe || it->second == pe) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  // Updates the dead speaker staged but never flushed die with its
  // sessions.
  ribout_.drop_node(pe);
  for (auto& [node, st] : state_) {
    if (node == pe) continue;
    auto& peers = st.peers;
    peers.erase(std::remove(peers.begin(), peers.end(), pe), peers.end());
    // Flush Adj-RIB-In entries learned from the dead peer and re-decide
    // the affected keys (sorted, matching the legacy sweep order).
    for (const VpnRouteKey& key : st.adj_rib_in.erase_sender(pe)) {
      decide(node, key);
    }
  }
}

std::size_t Bgp::loc_rib_size(ip::NodeId node) const {
  return state_.at(node).loc_rib.size();
}

std::size_t Bgp::adj_rib_in_size(ip::NodeId node) const {
  return state_.at(node).adj_rib_in.route_count();
}

std::size_t Bgp::adj_rib_bytes() const {
  std::size_t n = pool_.bytes();
  for (const auto& [node, st] : state_) n += st.adj_rib_in.bytes();
  return n;
}

std::size_t Bgp::adj_rib_routes() const {
  std::size_t n = 0;
  for (const auto& [node, st] : state_) n += st.adj_rib_in.route_count();
  return n;
}

const VpnRoute* Bgp::best(ip::NodeId node, const VpnRouteKey& key) const {
  const SpeakerState& st = state_.at(node);
  auto it = st.loc_rib.find(key);
  return it == st.loc_rib.end() ? nullptr : &it->second;
}

std::vector<VpnRoute> Bgp::loc_rib(ip::NodeId node) const {
  std::vector<VpnRoute> out;
  const SpeakerState& st = state_.at(node);
  out.reserve(st.loc_rib.size());
  for (const auto& [key, route] : st.loc_rib) out.push_back(route);
  return out;
}

}  // namespace mvpn::routing
