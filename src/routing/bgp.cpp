#include "routing/bgp.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvpn::routing {

Bgp::Bgp(ControlPlane& cp, Mode mode) : cp_(cp), mode_(mode) {}

void Bgp::add_speaker(ip::NodeId pe) {
  if (started_) throw std::logic_error("Bgp: add_speaker after start");
  if (state_.count(pe) != 0) return;
  state_[pe] = SpeakerState{};
  speakers_.push_back(pe);
}

void Bgp::add_route_reflector(ip::NodeId rr) {
  if (started_) throw std::logic_error("Bgp: add_route_reflector after start");
  if (mode_ != Mode::kRouteReflector) {
    throw std::logic_error("Bgp: reflectors require kRouteReflector mode");
  }
  auto& st = state_[rr];
  if (st.reflector) return;
  st.reflector = true;
  reflectors_.push_back(rr);
}

bool Bgp::is_reflector(ip::NodeId node) const {
  auto it = state_.find(node);
  return it != state_.end() && it->second.reflector;
}

void Bgp::add_session(ip::NodeId a, ip::NodeId b) {
  state_.at(a).peers.push_back(b);
  state_.at(b).peers.push_back(a);
  sessions_.emplace_back(a, b);
  // OPEN exchange, one message each way.
  cp_.send_session(a, b, "bgp.open", 29, [] {});
  cp_.send_session(b, a, "bgp.open", 29, [] {});
}

void Bgp::start() {
  if (started_) return;
  started_ = true;
  if (mode_ == Mode::kFullMesh) {
    for (std::size_t i = 0; i < speakers_.size(); ++i) {
      for (std::size_t j = i + 1; j < speakers_.size(); ++j) {
        add_session(speakers_[i], speakers_[j]);
      }
    }
    return;
  }
  if (reflectors_.empty()) {
    throw std::logic_error("Bgp: kRouteReflector mode with no reflectors");
  }
  // Clients session to every RR; RRs full-mesh among themselves.
  for (ip::NodeId pe : speakers_) {
    for (ip::NodeId rr : reflectors_) add_session(pe, rr);
  }
  for (std::size_t i = 0; i < reflectors_.size(); ++i) {
    for (std::size_t j = i + 1; j < reflectors_.size(); ++j) {
      add_session(reflectors_[i], reflectors_[j]);
    }
  }
}

bool Bgp::better(const VpnRoute& a, const VpnRoute& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.originator != b.originator) return a.originator < b.originator;
  return a.next_hop.value() < b.next_hop.value();
}

std::vector<ip::NodeId> Bgp::advertise_targets(ip::NodeId node,
                                               ip::NodeId sender) const {
  const SpeakerState& st = state_.at(node);
  std::vector<ip::NodeId> out;
  if (sender == ip::kInvalidNode) {
    // Locally originated: advertise to every peer.
    out = st.peers;
    return out;
  }
  if (!st.reflector) return out;  // plain iBGP: never re-advertise
  const bool from_client = !is_reflector(sender);
  for (ip::NodeId peer : st.peers) {
    if (peer == sender) continue;
    const bool peer_is_client = !is_reflector(peer);
    // RR rules: client routes reflect everywhere else; non-client routes
    // reflect to clients only.
    if (from_client || peer_is_client) out.push_back(peer);
  }
  return out;
}

void Bgp::send_update(ip::NodeId from, ip::NodeId to, const VpnRoute& route) {
  VpnRoute copy = route;
  cp_.send_session(from, to, "bgp.update", route.wire_bytes(),
                   [this, to, from, copy = std::move(copy)] {
                     receive_update(to, from, copy);
                   });
}

void Bgp::send_withdraw(ip::NodeId from, ip::NodeId to,
                        const VpnRouteKey& key) {
  cp_.send_session(from, to, "bgp.withdraw", 27,
                   [this, to, from, key] { receive_withdraw(to, from, key); });
}

void Bgp::originate(ip::NodeId pe, VpnRoute route) {
  route.originator = pe;
  SpeakerState& st = state_.at(pe);
  const VpnRouteKey key{route.rd, route.prefix};
  st.adj_rib_in[key][ip::kInvalidNode] = std::move(route);
  decide(pe, key);
}

void Bgp::withdraw(ip::NodeId pe, const RouteDistinguisher& rd,
                   const ip::Prefix& prefix) {
  SpeakerState& st = state_.at(pe);
  const VpnRouteKey key{rd, prefix};
  auto it = st.adj_rib_in.find(key);
  if (it == st.adj_rib_in.end()) return;
  if (it->second.erase(ip::kInvalidNode) == 0) return;
  decide(pe, key);
}

void Bgp::receive_update(ip::NodeId at, ip::NodeId from, VpnRoute route) {
  SpeakerState& st = state_.at(at);
  if (route.originator == at) return;  // originator loop guard
  const VpnRouteKey key{route.rd, route.prefix};
  st.adj_rib_in[key][from] = std::move(route);
  decide(at, key);
}

void Bgp::receive_withdraw(ip::NodeId at, ip::NodeId from, VpnRouteKey key) {
  SpeakerState& st = state_.at(at);
  auto it = st.adj_rib_in.find(key);
  if (it == st.adj_rib_in.end()) return;
  if (it->second.erase(from) == 0) return;
  decide(at, key);
}

void Bgp::decide(ip::NodeId node, const VpnRouteKey& key) {
  SpeakerState& st = state_.at(node);
  const VpnRoute* new_best = nullptr;
  ip::NodeId new_sender = ip::kInvalidNode;
  auto rib_it = st.adj_rib_in.find(key);
  if (rib_it != st.adj_rib_in.end()) {
    for (const auto& [sender, route] : rib_it->second) {
      if (new_best == nullptr || better(route, *new_best)) {
        new_best = &route;
        new_sender = sender;
      }
    }
  }

  auto loc_it = st.loc_rib.find(key);
  if (new_best == nullptr) {
    if (loc_it == st.loc_rib.end()) return;  // nothing changed
    // Best path lost: withdraw downstream, notify observers.
    const ip::NodeId old_sender = st.best_sender[key];
    st.loc_rib.erase(loc_it);
    st.best_sender.erase(key);
    VpnRoute gone;
    gone.rd = key.first;
    gone.prefix = key.second;
    for (const auto& cb : observers_) cb(node, gone, true);
    for (ip::NodeId peer : advertise_targets(node, old_sender)) {
      send_withdraw(node, peer, key);
    }
    return;
  }

  const bool changed =
      loc_it == st.loc_rib.end() ||
      loc_it->second.next_hop != new_best->next_hop ||
      loc_it->second.vpn_label != new_best->vpn_label ||
      loc_it->second.originator != new_best->originator ||
      loc_it->second.route_targets != new_best->route_targets;
  if (!changed) return;

  st.loc_rib[key] = *new_best;
  st.best_sender[key] = new_sender;
  for (const auto& cb : observers_) cb(node, *new_best, false);
  for (ip::NodeId peer : advertise_targets(node, new_sender)) {
    send_update(node, peer, *new_best);
  }
}

void Bgp::fail_speaker(ip::NodeId pe) {
  // Drop sessions touching `pe`.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->first == pe || it->second == pe) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [node, st] : state_) {
    if (node == pe) continue;
    auto& peers = st.peers;
    peers.erase(std::remove(peers.begin(), peers.end(), pe), peers.end());
    // Flush Adj-RIB-In entries learned from the dead peer and re-decide
    // the affected keys.
    std::vector<VpnRouteKey> affected;
    for (auto& [key, senders] : st.adj_rib_in) {
      if (senders.erase(pe) > 0) affected.push_back(key);
    }
    for (const VpnRouteKey& key : affected) decide(node, key);
  }
}

std::size_t Bgp::loc_rib_size(ip::NodeId node) const {
  return state_.at(node).loc_rib.size();
}

std::size_t Bgp::adj_rib_in_size(ip::NodeId node) const {
  std::size_t n = 0;
  for (const auto& [key, senders] : state_.at(node).adj_rib_in) {
    n += senders.size();
  }
  return n;
}

const VpnRoute* Bgp::best(ip::NodeId node, const VpnRouteKey& key) const {
  const SpeakerState& st = state_.at(node);
  auto it = st.loc_rib.find(key);
  return it == st.loc_rib.end() ? nullptr : &it->second;
}

std::vector<VpnRoute> Bgp::loc_rib(ip::NodeId node) const {
  std::vector<VpnRoute> out;
  const SpeakerState& st = state_.at(node);
  out.reserve(st.loc_rib.size());
  for (const auto& [key, route] : st.loc_rib) out.push_back(route);
  return out;
}

}  // namespace mvpn::routing
