#include "routing/rib_out.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace mvpn::routing {

void RibOut::append(NodeState& ns, std::vector<ip::NodeId> peers,
                    Entry entry) {
  auto git = ns.group_of.find(peers);
  std::uint32_t gid;
  if (git != ns.group_of.end()) {
    gid = git->second;
  } else {
    gid = static_cast<std::uint32_t>(ns.groups.size());
    ns.group_of.emplace(peers, gid);
    ns.groups.push_back(Group{std::move(peers), {}});
  }
  Group& g = ns.groups[gid];
  const auto slot = static_cast<std::uint32_t>(g.queue.size());
  const VpnRouteKey key = entry.key;
  g.queue.push_back(std::move(entry));
  ns.queued[key].emplace_back(gid, slot);
}

bool RibOut::enqueue(ip::NodeId node, std::vector<ip::NodeId> peers,
                     const VpnRouteKey& key, const CompactRoute* route) {
  NodeState& ns = nodes_[node];
  std::sort(peers.begin(), peers.end());
  ++nlri_enqueued_;

  // Supersede anything already queued for this key. Peers covered by the
  // new entry simply see the newer action; peers the new entry does NOT
  // cover keep the old payload via a residual-group re-queue, preserving
  // the disjointness invariant (residuals are subsets of pairwise-disjoint
  // old sets, all disjoint from the new set).
  auto qit = ns.queued.find(key);
  if (qit != ns.queued.end()) {
    const auto old_refs = std::move(qit->second);
    ns.queued.erase(qit);
    for (const auto& [gid, slot] : old_refs) {
      Entry& old = ns.groups[gid].queue[slot];
      if (old.dead) continue;
      old.dead = true;
      ++superseded_;
      std::vector<ip::NodeId> residual;
      std::set_difference(ns.groups[gid].peers.begin(),
                          ns.groups[gid].peers.end(), peers.begin(),
                          peers.end(), std::back_inserter(residual));
      if (!residual.empty()) {
        Entry carry{old.key, old.route, old.withdraw, false};
        append(ns, std::move(residual), std::move(carry));
      }
    }
  }

  Entry e;
  e.key = key;
  e.withdraw = route == nullptr;
  if (route != nullptr) e.route = *route;
  append(ns, std::move(peers), std::move(e));

  const bool need_arm = !ns.armed;
  ns.armed = true;
  return need_arm;
}

std::vector<RibOut::Message> RibOut::drain(ip::NodeId node,
                                           const RtSetPool& pool) {
  std::vector<Message> out;
  auto nit = nodes_.find(node);
  if (nit == nodes_.end()) return out;
  NodeState& ns = nit->second;
  ns.armed = false;
  ++flushes_;

  // Distinct attribute sets already priced into the current message. The
  // piggybacked label and next-hop node ride in the NLRI, not here.
  using AttrKey = std::tuple<std::uint32_t, std::uint32_t, ip::NodeId,
                             std::uint16_t>;

  for (Group& g : ns.groups) {
    if (g.queue.empty()) continue;
    auto peers = std::make_shared<const std::vector<ip::NodeId>>(g.peers);

    auto entries = std::make_shared<std::vector<Entry>>();
    std::set<AttrKey> attrs;
    std::size_t bytes = kBgpHeaderBytes;
    std::size_t reach = 0;
    std::size_t unreach = 0;

    auto cut = [&] {
      if (entries->empty()) return;
      Message m;
      m.peers = peers;
      m.entries = std::move(entries);
      m.wire_bytes = bytes;
      m.reach = reach;
      m.unreach = unreach;
      ++messages_packed_;
      nlri_packed_ += reach + unreach;
      wire_bytes_packed_ += bytes;
      out.push_back(std::move(m));
      entries = std::make_shared<std::vector<Entry>>();
      attrs.clear();
      bytes = kBgpHeaderBytes;
      reach = 0;
      unreach = 0;
    };

    for (Entry& e : g.queue) {
      if (e.dead) continue;
      auto cost_of = [&]() -> std::size_t {
        std::size_t c = vpn_nlri_wire_bytes(e.key);
        if (!e.withdraw) {
          const AttrKey a{e.route.next_hop, e.route.local_pref,
                          e.route.originator, e.route.rt_set};
          if (attrs.find(a) == attrs.end()) {
            c += 32 + 8 * pool.get(e.route.rt_set).size();
          }
        }
        return c;
      };
      if (!entries->empty() && bytes + cost_of() > kMaxMessageBytes) cut();
      bytes += cost_of();  // re-priced: a fresh message shares no attrs yet
      if (e.withdraw) {
        ++unreach;
      } else {
        ++reach;
        attrs.insert(AttrKey{e.route.next_hop, e.route.local_pref,
                             e.route.originator, e.route.rt_set});
      }
      entries->push_back(std::move(e));
    }
    cut();
    g.queue.clear();
  }
  ns.queued.clear();
  return out;
}

void RibOut::drop_node(ip::NodeId node) { nodes_.erase(node); }

}  // namespace mvpn::routing
