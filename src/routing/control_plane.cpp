#include "routing/control_plane.hpp"

namespace mvpn::routing {

ControlPlane::ControlPlane(net::Topology& topo) : topo_(topo) {}

void ControlPlane::count(std::string_view type, std::size_t bytes) {
  auto& entry = counts_[std::string(type)];
  ++entry.first;
  entry.second += bytes;
  ++total_messages_;
  total_bytes_ += bytes;
}

bool ControlPlane::send_adjacent(ip::NodeId from, ip::NodeId to,
                                 std::string_view type, std::size_t bytes,
                                 std::function<void()> deliver) {
  const net::Node& sender = topo_.node(from);
  const ip::IfIndex iface = sender.interface_to(to);
  if (iface == ip::kInvalidIf) return false;
  const net::Link& link = topo_.link(sender.interface(iface).link);
  if (!link.up()) return false;

  count(type, bytes);
  topo_.scheduler().schedule_in(link.config().prop_delay + processing_delay_,
                                std::move(deliver));
  return true;
}

void ControlPlane::send_session(ip::NodeId from, ip::NodeId to,
                                std::string_view type, std::size_t bytes,
                                std::function<void()> deliver) {
  (void)from;
  (void)to;
  count(type, bytes);
  topo_.scheduler().schedule_in(session_delay_ + processing_delay_,
                                std::move(deliver));
}

std::uint64_t ControlPlane::message_count(std::string_view type) const {
  auto it = counts_.find(std::string(type));
  return it == counts_.end() ? 0 : it->second.first;
}

std::uint64_t ControlPlane::byte_count(std::string_view type) const {
  auto it = counts_.find(std::string(type));
  return it == counts_.end() ? 0 : it->second.second;
}

void ControlPlane::reset_counters() {
  counts_.clear();
  total_messages_ = 0;
  total_bytes_ = 0;
}

}  // namespace mvpn::routing
