#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "ip/address.hpp"
#include "ip/route_table.hpp"
#include "routing/bgp_types.hpp"

namespace mvpn::routing {

/// Interned route-target sets. VPN routes carry the same handful of export
/// RT sets over and over (one per VPN, typically), so the Adj-RIB-In stores
/// a u16 pool index instead of a heap vector per route — the same trick the
/// FlowSet engine plays with its Template table. Pool ids are assigned in
/// first-intern order, which is deterministic for a deterministic event
/// sequence.
class RtSetPool {
 public:
  [[nodiscard]] std::uint16_t intern(const std::vector<RouteTarget>& rts) {
    auto it = index_.find(rts);
    if (it != index_.end()) return it->second;
    if (sets_.size() > 0xFFFF) {
      throw std::length_error("RtSetPool: more than 65536 distinct RT sets");
    }
    const auto id = static_cast<std::uint16_t>(sets_.size());
    auto [ins, ok] = index_.emplace(rts, id);
    (void)ok;
    sets_.push_back(&ins->first);
    return id;
  }

  [[nodiscard]] const std::vector<RouteTarget>& get(std::uint16_t id) const {
    return *sets_.at(id);
  }

  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

  /// Approximate heap footprint (pool contents, not the index overhead).
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t n = sets_.capacity() * sizeof(void*);
    for (const auto* s : sets_) n += sizeof(*s) + s->capacity() * sizeof(RouteTarget);
    return n;
  }

 private:
  std::map<std::vector<RouteTarget>, std::uint16_t> index_;
  std::vector<const std::vector<RouteTarget>*> sets_;
};

/// Fixed-size (24 B) attribute block for one VPN-IPv4 route: everything a
/// `VpnRoute` carries, with the RT vector replaced by a pool index. The
/// (RD, prefix) key lives in the table slot, not here.
struct CompactRoute {
  std::uint32_t next_hop = 0;  ///< Ipv4Address::value() of the egress PE
  ip::NodeId next_hop_node = ip::kInvalidNode;
  std::uint32_t vpn_label = ip::kNoLabel;
  std::uint32_t local_pref = 100;
  ip::NodeId originator = ip::kInvalidNode;
  std::uint16_t rt_set = 0;

  friend bool operator==(const CompactRoute&, const CompactRoute&) = default;
};

[[nodiscard]] inline CompactRoute compress(const VpnRoute& r, RtSetPool& pool) {
  CompactRoute c;
  c.next_hop = r.next_hop.value();
  c.next_hop_node = r.next_hop_node;
  c.vpn_label = r.vpn_label;
  c.local_pref = r.local_pref;
  c.originator = r.originator;
  c.rt_set = pool.intern(r.route_targets);
  return c;
}

[[nodiscard]] inline VpnRoute materialize(const VpnRouteKey& key,
                                          const CompactRoute& c,
                                          const RtSetPool& pool) {
  VpnRoute r;
  r.rd = key.first;
  r.prefix = key.second;
  r.next_hop = ip::Ipv4Address(c.next_hop);
  r.next_hop_node = c.next_hop_node;
  r.vpn_label = c.vpn_label;
  r.route_targets = pool.get(c.rt_set);
  r.local_pref = c.local_pref;
  r.originator = c.originator;
  return r;
}

/// Open-addressed Adj-RIB-In: (RD, prefix) keys in a linear-probe slot
/// array, per-key sender chains in a free-listed arena of 32 B offer nodes.
/// Replaces the per-speaker `std::map<key, std::map<sender, VpnRoute>>`
/// whose node + vector overhead dominated control-plane memory at 10⁵–10⁶
/// routes. Iteration order within a chain is most-recent-first; callers
/// needing the legacy lowest-sender tie-break make it explicit.
class AdjRibIn {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  AdjRibIn() { slots_.resize(kInitialSlots); }

  /// Insert or replace the offer from `sender` for `key`.
  void upsert(const VpnRouteKey& key, ip::NodeId sender,
              const CompactRoute& route) {
    maybe_grow();
    std::size_t idx = find_or_claim(key);
    Slot& s = slots_[idx];
    for (std::uint32_t o = s.head; o != kNil; o = arena_[o].next) {
      if (arena_[o].sender == sender) {
        arena_[o].route = route;
        return;
      }
    }
    const std::uint32_t node = alloc_offer();
    arena_[node].sender = sender;
    arena_[node].route = route;
    arena_[node].next = s.head;
    s.head = node;
    ++route_count_;
  }

  /// Remove the offer from `sender`; returns false when absent.
  bool erase(const VpnRouteKey& key, ip::NodeId sender) {
    const std::size_t idx = find(key);
    if (idx == kNotFound) return false;
    Slot& s = slots_[idx];
    std::uint32_t* link = &s.head;
    for (std::uint32_t o = s.head; o != kNil; o = arena_[o].next) {
      if (arena_[o].sender == sender) {
        *link = arena_[o].next;
        free_offer(o);
        --route_count_;
        if (s.head == kNil) bury(idx);
        return true;
      }
      link = &arena_[o].next;
    }
    return false;
  }

  /// Visit every (sender, route) offer for `key`.
  template <typename F>
  void for_each(const VpnRouteKey& key, F&& fn) const {
    const std::size_t idx = find(key);
    if (idx == kNotFound) return;
    for (std::uint32_t o = slots_[idx].head; o != kNil; o = arena_[o].next) {
      fn(arena_[o].sender, arena_[o].route);
    }
  }

  /// Drop every offer learned from `sender`; returns the affected keys in
  /// sorted order (matching the legacy std::map sweep, so downstream
  /// decision order — and therefore message order — stays deterministic).
  std::vector<VpnRouteKey> erase_sender(ip::NodeId sender) {
    std::vector<VpnRouteKey> affected;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.state != kUsed) continue;
      std::uint32_t* link = &s.head;
      bool hit = false;
      for (std::uint32_t o = s.head; o != kNil;) {
        const std::uint32_t nxt = arena_[o].next;
        if (arena_[o].sender == sender) {
          *link = nxt;
          free_offer(o);
          --route_count_;
          hit = true;
        } else {
          link = &arena_[o].next;
        }
        o = nxt;
      }
      if (hit) affected.push_back(key_of(s));
      if (s.head == kNil) bury(i);
    }
    std::sort(affected.begin(), affected.end());
    return affected;
  }

  [[nodiscard]] std::size_t route_count() const noexcept {
    return route_count_;
  }
  [[nodiscard]] std::size_t key_count() const noexcept { return key_count_; }

  /// Table + arena footprint (capacity, not occupancy — what the process
  /// actually pays).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) + arena_.capacity() * sizeof(Offer);
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::uint8_t kEmpty = 0, kUsed = 1, kTombstone = 2;

  struct Slot {
    std::uint32_t rd_asn = 0;
    std::uint32_t rd_assigned = 0;
    std::uint32_t addr = 0;
    std::uint8_t plen = 0;
    std::uint8_t state = kEmpty;
    std::uint32_t head = kNil;
  };
  struct Offer {
    ip::NodeId sender = ip::kInvalidNode;
    std::uint32_t next = kNil;
    CompactRoute route;
  };

  static std::uint64_t hash_key(std::uint32_t rd_asn, std::uint32_t rd_assigned,
                                std::uint32_t addr, std::uint8_t plen) noexcept {
    std::uint64_t a = (std::uint64_t{rd_asn} << 32) | rd_assigned;
    std::uint64_t b = (std::uint64_t{addr} << 8) | plen;
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull ^ (b + 0xD1B54A32D192ED03ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  static bool matches(const Slot& s, const VpnRouteKey& key) noexcept {
    return s.rd_asn == key.first.asn && s.rd_assigned == key.first.assigned &&
           s.addr == key.second.address().value() &&
           s.plen == key.second.length();
  }

  static VpnRouteKey key_of(const Slot& s) {
    return {RouteDistinguisher{s.rd_asn, s.rd_assigned},
            ip::Prefix(ip::Ipv4Address(s.addr), s.plen)};
  }

  [[nodiscard]] std::size_t find(const VpnRouteKey& key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_key(key.first.asn, key.first.assigned,
                             key.second.address().value(),
                             key.second.length()) &
                    mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.state == kEmpty) return kNotFound;
      if (s.state == kUsed && matches(s, key)) return i;
      i = (i + 1) & mask;
    }
  }

  std::size_t find_or_claim(const VpnRouteKey& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_key(key.first.asn, key.first.assigned,
                             key.second.address().value(),
                             key.second.length()) &
                    mask;
    std::size_t grave = kNotFound;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == kUsed && matches(s, key)) return i;
      if (s.state == kTombstone && grave == kNotFound) grave = i;
      if (s.state == kEmpty) {
        const std::size_t at = grave != kNotFound ? grave : i;
        Slot& t = slots_[at];
        t.rd_asn = key.first.asn;
        t.rd_assigned = key.first.assigned;
        t.addr = key.second.address().value();
        t.plen = key.second.length();
        t.state = kUsed;
        t.head = kNil;
        if (at == i) ++occupied_;  // fresh slot, not a recycled tombstone
        ++key_count_;
        return at;
      }
      i = (i + 1) & mask;
    }
  }

  void bury(std::size_t idx) {
    slots_[idx].state = kTombstone;
    --key_count_;
  }

  void maybe_grow() {
    // Grow when live keys + tombstones pass 70% — keeps probe chains short
    // and sweeps tombstones out in the rehash.
    if (occupied_ * 10 < slots_.size() * 7) return;
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    occupied_ = 0;
    key_count_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.state != kUsed) continue;
      std::size_t i = hash_key(s.rd_asn, s.rd_assigned, s.addr, s.plen) & mask;
      while (slots_[i].state == kUsed) i = (i + 1) & mask;
      slots_[i] = s;
      ++occupied_;
      ++key_count_;
    }
  }

  std::uint32_t alloc_offer() {
    if (free_head_ != kNil) {
      const std::uint32_t o = free_head_;
      free_head_ = arena_[o].next;
      return o;
    }
    arena_.emplace_back();
    return static_cast<std::uint32_t>(arena_.size() - 1);
  }

  void free_offer(std::uint32_t o) {
    arena_[o].next = free_head_;
    free_head_ = o;
  }

  std::vector<Slot> slots_;
  std::vector<Offer> arena_;
  std::uint32_t free_head_ = kNil;
  std::size_t occupied_ = 0;    ///< used + never-buried slots (probe load)
  std::size_t key_count_ = 0;   ///< live keys
  std::size_t route_count_ = 0; ///< live (key, sender) offers
};

}  // namespace mvpn::routing
