#include "routing/igp.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>
#include <stdexcept>

namespace mvpn::routing {

namespace {

/// Min-heap candidate shared by the full and incremental Dijkstra runs.
struct Candidate {
  std::uint32_t cost;
  ip::NodeId node;
  bool operator>(const Candidate& o) const noexcept {
    if (cost != o.cost) return cost > o.cost;
    return node > o.node;
  }
};
using CandidateQueue =
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>;

}  // namespace

Igp::Igp(ControlPlane& cp) : cp_(cp) {}

void Igp::add_router(ip::NodeId router) {
  if (routers_[router].active) return;
  routers_[router].active = true;
  members_.push_back(router);
}

bool Igp::is_member(ip::NodeId router) const {
  auto it = routers_.find(router);
  return it != routers_.end() && it->second.active;
}

Igp::RouterState& Igp::state(ip::NodeId router) {
  auto it = routers_.find(router);
  if (it == routers_.end() || !it->second.active) {
    throw std::invalid_argument("Igp: node is not a member router");
  }
  return it->second;
}

const Igp::RouterState& Igp::state(ip::NodeId router) const {
  auto it = routers_.find(router);
  if (it == routers_.end() || !it->second.active) {
    throw std::invalid_argument("Igp: node is not a member router");
  }
  return it->second;
}

void Igp::start() {
  for (ip::NodeId r : members_) originate_and_flood(r);
}

Lsa Igp::build_lsa(ip::NodeId router) {
  RouterState& st = state(router);
  Lsa lsa;
  lsa.origin = router;
  lsa.sequence = ++st.lsa_seq;
  for (const net::Adjacency& adj : cp_.topology().adjacencies(router)) {
    if (!is_member(adj.neighbor)) continue;  // IGP covers provider core only
    const net::Link& link = cp_.topology().link(adj.link);
    LsaLink l;
    l.neighbor = adj.neighbor;
    l.link = adj.link;
    l.cost = link.config().igp_cost;
    l.capacity_bps = link.config().bandwidth_bps;
    l.reservable_bps = te_reservable(router, adj.link);
    lsa.links.push_back(l);
  }
  return lsa;
}

bool Igp::install_classified(RouterState& st, const Lsa& lsa,
                             bool* spf_needed) {
  const Lsa* prev = st.lsdb.find(lsa.origin);
  const bool had_prev = prev != nullptr;
  std::vector<LsaLink> old_links;
  if (had_prev) old_links = prev->links;
  if (!st.lsdb.install(lsa)) return false;  // not newer

  if (full_spf_) {
    // Legacy semantics: every newer install schedules a full rebuild; no
    // diff bookkeeping needed.
    *spf_needed = true;
    return true;
  }
  if (!had_prev) {
    // First copy of this origin: no diff base — next run rebuilds fully.
    st.dirty_full = true;
    *spf_needed = true;
    return true;
  }

  // Diff adjacency sets keyed by (neighbor, link). Cost changes and
  // edge add/removals dirty the graph; pure TE attribute refreshes
  // (reservable/capacity) do not alter shortest paths and skip SPF
  // scheduling entirely.
  bool topo_change = false;
  std::map<std::pair<ip::NodeId, net::LinkId>, std::uint32_t> old_cost;
  for (const LsaLink& l : old_links) old_cost[{l.neighbor, l.link}] = l.cost;
  for (const LsaLink& l : lsa.links) {
    auto it = old_cost.find({l.neighbor, l.link});
    if (it == old_cost.end()) {
      st.dirty.push_back({lsa.origin, l.neighbor, kInfCost, l.cost});
      topo_change = true;
    } else {
      if (it->second != l.cost) {
        st.dirty.push_back({lsa.origin, l.neighbor, it->second, l.cost});
        topo_change = true;
      }
      old_cost.erase(it);
    }
  }
  for (const auto& [nl, cost] : old_cost) {
    st.dirty.push_back({lsa.origin, nl.first, cost, kInfCost});
    topo_change = true;
  }
  if (!topo_change) ++te_only_installs_;
  *spf_needed = topo_change;
  return true;
}

void Igp::originate_and_flood(ip::NodeId router) {
  const Lsa lsa = build_lsa(router);
  RouterState& st = state(router);
  bool spf_needed = false;
  if (!install_classified(st, lsa, &spf_needed)) return;
  if (spf_needed) schedule_spf(router);
  flood(router, lsa, ip::kInvalidNode);
}

void Igp::flood(ip::NodeId at, const Lsa& lsa, ip::NodeId except) {
  for (const net::Adjacency& adj : cp_.topology().adjacencies(at)) {
    if (adj.neighbor == except || !is_member(adj.neighbor)) continue;
    const ip::NodeId to = adj.neighbor;
    Lsa copy = lsa;
    cp_.send_adjacent(at, to, "igp.lsa", lsa.wire_bytes(),
                      [this, to, copy = std::move(copy), at] {
                        receive_lsa(to, copy, at);
                      });
  }
}

void Igp::receive_lsa(ip::NodeId at, Lsa lsa, ip::NodeId from) {
  RouterState& st = state(at);
  bool spf_needed = false;
  if (!install_classified(st, lsa, &spf_needed)) return;  // stop the flood
  if (spf_needed) schedule_spf(at);
  flood(at, lsa, from);
}

void Igp::schedule_spf(ip::NodeId router) {
  RouterState& st = state(router);
  if (st.spf_scheduled) return;
  st.spf_scheduled = true;
  cp_.topology().scheduler().schedule_in(spf_delay_,
                                         [this, router] { run_spf(router); });
}

void Igp::classify_dirty(const RouterState& st,
                         const std::vector<DirtyEdge>& dirty,
                         std::set<ip::NodeId>* seeds,
                         bool* increase_affected) const {
  auto dist = [&](ip::NodeId n) {
    auto it = st.best.find(n);
    return it == st.best.end() ? kInfCost : it->second;
  };
  auto is_parent = [&](ip::NodeId child, ip::NodeId parent) {
    auto it = st.parents.find(child);
    return it != st.parents.end() && it->second.count(parent) > 0;
  };
  constexpr std::uint64_t kInf64 = ~std::uint64_t{0};
  for (const DirtyEdge& e : dirty) {
    const std::uint32_t du = dist(e.u);
    const std::uint32_t dv = dist(e.v);
    if (e.new_cost < e.old_cost) {
      // Decrease (or edge add). The incremental-run safety argument needs
      // strictly positive costs; a zero-cost edge bails to a full run.
      if (e.new_cost == 0) {
        *increase_affected = true;
        continue;
      }
      if (du == kInfCost && dv == kInfCost) continue;  // detached island
      const std::uint64_t via_u =
          du == kInfCost ? kInf64 : std::uint64_t{du} + e.new_cost;
      const std::uint64_t via_v =
          dv == kInfCost ? kInf64 : std::uint64_t{dv} + e.new_cost;
      // <= (not <) so a new equal-cost parent still triggers a run — ECMP
      // sets are part of the solution.
      if (via_u <= dv || via_v <= du) {
        if (du != kInfCost) seeds->insert(e.u);
        if (dv != kInfCost) seeds->insert(e.v);
      }
    } else {
      // Increase or removal: affects paths only when the edge lies on the
      // current shortest-path DAG. A full-SPF invariant makes the parent
      // check redundant with the distance equality except for parallel
      // links, where it correctly disambiguates.
      bool on_dag = e.old_cost == 0;  // conservative, mirrors the above
      if (du != kInfCost && dv != kInfCost && e.old_cost != kInfCost) {
        if (std::uint64_t{du} + e.old_cost == dv && is_parent(e.v, e.u)) {
          on_dag = true;
        }
        if (std::uint64_t{dv} + e.old_cost == du && is_parent(e.u, e.v)) {
          on_dag = true;
        }
      }
      if (on_dag) *increase_affected = true;
    }
  }
}

void Igp::full_spf_run(ip::NodeId router, RouterState& st) {
  // Single-source Dijkstra over the router's LSDB with multi-parent
  // bookkeeping: every equal-cost predecessor is retained so the ECMP
  // first-hop set can be derived afterwards.
  std::map<ip::NodeId, std::uint32_t> best;
  std::map<ip::NodeId, std::set<ip::NodeId>> parents;
  CandidateQueue pq;
  pq.push(Candidate{0, router});
  best[router] = 0;

  while (!pq.empty()) {
    const Candidate c = pq.top();
    pq.pop();
    const auto cur = best.find(c.node);
    if (cur == best.end() || c.cost > cur->second) continue;  // stale
    const Lsa* lsa = st.lsdb.find(c.node);
    if (lsa == nullptr) continue;
    for (const LsaLink& l : lsa->links) {
      const Lsa* back = st.lsdb.find(l.neighbor);
      if (back == nullptr) continue;
      const bool two_way =
          std::any_of(back->links.begin(), back->links.end(),
                      [&](const LsaLink& bl) { return bl.link == l.link; });
      if (!two_way) continue;
      ++edges_relaxed_;
      const std::uint32_t ncost = c.cost + l.cost;
      auto it = best.find(l.neighbor);
      if (it == best.end() || ncost < it->second) {
        best[l.neighbor] = ncost;
        parents[l.neighbor] = {c.node};
        pq.push(Candidate{ncost, l.neighbor});
      } else if (ncost == it->second) {
        parents[l.neighbor].insert(c.node);  // equal-cost alternate
      }
    }
  }
  st.best = std::move(best);
  st.parents = std::move(parents);
}

void Igp::incremental_spf_run(RouterState& st,
                              const std::set<ip::NodeId>& seeds) {
  // Seeded re-relaxation: every path changed by a decrease-only dirty set
  // crosses one of the changed edges, so pushing the (still finitely
  // distanced) endpoints re-explores exactly the affected cone. Distances
  // only decrease; pops settle in nondecreasing cost order, which is what
  // makes the reverse-parent completion below sound (INTERNALS.md §15).
  auto& best = st.best;
  auto& parents = st.parents;
  CandidateQueue pq;
  for (ip::NodeId s : seeds) pq.push(Candidate{best.at(s), s});

  while (!pq.empty()) {
    const Candidate c = pq.top();
    pq.pop();
    const auto cur = best.find(c.node);
    if (cur == best.end() || c.cost > cur->second) continue;  // stale
    const Lsa* lsa = st.lsdb.find(c.node);
    if (lsa == nullptr) continue;
    for (const LsaLink& l : lsa->links) {
      const Lsa* back = st.lsdb.find(l.neighbor);
      if (back == nullptr) continue;
      const bool two_way =
          std::any_of(back->links.begin(), back->links.end(),
                      [&](const LsaLink& bl) { return bl.link == l.link; });
      if (!two_way) continue;
      ++edges_relaxed_;
      const std::uint32_t ncost = c.cost + l.cost;
      auto it = best.find(l.neighbor);
      if (it == best.end() || ncost < it->second) {
        best[l.neighbor] = ncost;
        parents[l.neighbor] = {c.node};
        pq.push(Candidate{ncost, l.neighbor});
      } else {
        if (ncost == it->second) {
          parents[l.neighbor].insert(c.node);  // equal-cost alternate
        }
        // Reverse-parent completion: when this pop improved c.node, a
        // settled unchanged neighbor that is now an equal-cost predecessor
        // would never forward-relax into us — pick it up here. Any such
        // neighbor's distance (c.cost - l.cost < c.cost) is final by the
        // nondecreasing-pop invariant, so the equality test is exact.
        if (l.cost > 0 && it->second + l.cost == c.cost) {
          parents[c.node].insert(l.neighbor);
        }
      }
    }
  }
}

void Igp::rebuild_next_hops(ip::NodeId router, RouterState& st) {
  st.next_hops.clear();
  static const std::set<ip::NodeId> kNoParents;
  auto parents_of = [&](ip::NodeId n) -> const std::set<ip::NodeId>& {
    auto it = st.parents.find(n);
    return it == st.parents.end() ? kNoParents : it->second;
  };

  // Memoized first-hop-set computation over the parent DAG.
  std::map<ip::NodeId, std::set<ip::NodeId>> first_hops;
  std::function<const std::set<ip::NodeId>&(ip::NodeId)> fh =
      [&](ip::NodeId dest) -> const std::set<ip::NodeId>& {
    auto memo = first_hops.find(dest);
    if (memo != first_hops.end()) return memo->second;
    std::set<ip::NodeId> hops;
    for (ip::NodeId p : parents_of(dest)) {
      if (p == router) {
        hops.insert(dest);
      } else {
        const auto& up = fh(p);
        hops.insert(up.begin(), up.end());
      }
    }
    return first_hops.emplace(dest, std::move(hops)).first->second;
  };

  for (const auto& [dest, cost] : st.best) {
    if (dest == router) continue;
    std::vector<NextHopEntry> entries;
    for (ip::NodeId hop : fh(dest)) {  // std::set: sorted by id
      NextHopEntry entry;
      entry.via = hop;
      entry.iface = cp_.topology().node(router).interface_to(hop);
      entry.cost = cost;
      entries.push_back(entry);
    }
    if (!entries.empty()) st.next_hops[dest] = std::move(entries);
  }
}

void Igp::run_spf(ip::NodeId router) {
  RouterState& st = state(router);
  st.spf_scheduled = false;
  std::vector<DirtyEdge> dirty = std::move(st.dirty);
  st.dirty.clear();
  const bool force_full = full_spf_ || !st.spf_valid || st.dirty_full;
  st.dirty_full = false;

  std::set<ip::NodeId> seeds;
  bool increase_affected = false;
  if (!force_full) {
    classify_dirty(st, dirty, &seeds, &increase_affected);
    if (seeds.empty() && !increase_affected) {
      // Provably no path or ECMP-set change: keep the stored solution,
      // fire nothing. (Unaffected routers across the network land here —
      // the counter the churn bench asserts on.)
      ++st.spf.skipped;
      ++spf_skipped_;
      return;
    }
  }

  if (force_full || increase_affected) {
    // Increases/removals invalidate an unknown subtree — rebuilding is
    // both simpler and, for on-DAG changes, close to the work a
    // tear-down/re-descend incremental variant would do anyway.
    full_spf_run(router, st);
    ++st.spf.full;
    ++spf_full_runs_;
  } else {
    incremental_spf_run(st, seeds);
    ++st.spf.incremental;
    ++spf_incremental_runs_;
  }
  rebuild_next_hops(router, st);
  st.spf_valid = true;

  last_spf_at_ = cp_.now();
  ++spf_runs_;
  for (const auto& cb : spf_callbacks_) cb(router);
}

void Igp::notify_link_change(net::LinkId link) {
  const net::Link& l = cp_.topology().link(link);
  for (ip::NodeId end : {l.end_a().node, l.end_b().node}) {
    if (is_member(end)) originate_and_flood(end);
  }
}

bool Igp::te_reserve(ip::NodeId from, net::LinkId link, double bps) {
  if (te_reservable(from, link) + 1e-6 < bps) return false;
  te_reserved_[{link, from}] += bps;
  originate_and_flood(from);
  return true;
}

void Igp::te_release(ip::NodeId from, net::LinkId link, double bps) {
  auto it = te_reserved_.find({link, from});
  if (it == te_reserved_.end()) return;
  it->second = std::max(0.0, it->second - bps);
  originate_and_flood(from);
}

double Igp::te_reserved(ip::NodeId from, net::LinkId link) const {
  auto it = te_reserved_.find({link, from});
  return it == te_reserved_.end() ? 0.0 : it->second;
}

double Igp::te_reservable(ip::NodeId from, net::LinkId link) const {
  const net::Link& l = cp_.topology().link(link);
  return l.config().bandwidth_bps * te_factor_ - te_reserved(from, link);
}

const Igp::NextHopEntry* Igp::next_hop(ip::NodeId router,
                                       ip::NodeId dest) const {
  const RouterState& st = state(router);
  auto it = st.next_hops.find(dest);
  if (it == st.next_hops.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

std::vector<Igp::NextHopEntry> Igp::next_hops_ecmp(ip::NodeId router,
                                                   ip::NodeId dest) const {
  const RouterState& st = state(router);
  auto it = st.next_hops.find(dest);
  return it == st.next_hops.end() ? std::vector<NextHopEntry>{}
                                  : it->second;
}

Igp::SpfCounters Igp::router_spf_counters(ip::NodeId router) const {
  return state(router).spf;
}

ComputedPath Igp::path(ip::NodeId router, ip::NodeId dest) const {
  return shortest_path(state(router).lsdb, router, dest);
}

ComputedPath Igp::cspf(ip::NodeId router, ip::NodeId dest,
                       double bandwidth_bps,
                       const std::vector<net::LinkId>& excluded) const {
  return shortest_path(state(router).lsdb, router, dest, bandwidth_bps,
                       excluded);
}

const LinkStateDb& Igp::lsdb(ip::NodeId router) const {
  return state(router).lsdb;
}

bool Igp::synchronized() const {
  for (ip::NodeId a : members_) {
    const RouterState& st = routers_.at(a);
    for (ip::NodeId b : members_) {
      const RouterState& origin = routers_.at(b);
      const Lsa* have = st.lsdb.find(b);
      if (have == nullptr || have->sequence != origin.lsa_seq) return false;
    }
  }
  return true;
}

}  // namespace mvpn::routing
