#include "routing/igp.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>
#include <stdexcept>

namespace mvpn::routing {

Igp::Igp(ControlPlane& cp) : cp_(cp) {}

void Igp::add_router(ip::NodeId router) {
  if (routers_[router].active) return;
  routers_[router].active = true;
  members_.push_back(router);
}

bool Igp::is_member(ip::NodeId router) const {
  auto it = routers_.find(router);
  return it != routers_.end() && it->second.active;
}

Igp::RouterState& Igp::state(ip::NodeId router) {
  auto it = routers_.find(router);
  if (it == routers_.end() || !it->second.active) {
    throw std::invalid_argument("Igp: node is not a member router");
  }
  return it->second;
}

const Igp::RouterState& Igp::state(ip::NodeId router) const {
  auto it = routers_.find(router);
  if (it == routers_.end() || !it->second.active) {
    throw std::invalid_argument("Igp: node is not a member router");
  }
  return it->second;
}

void Igp::start() {
  for (ip::NodeId r : members_) originate_and_flood(r);
}

Lsa Igp::build_lsa(ip::NodeId router) {
  RouterState& st = state(router);
  Lsa lsa;
  lsa.origin = router;
  lsa.sequence = ++st.lsa_seq;
  for (const net::Adjacency& adj : cp_.topology().adjacencies(router)) {
    if (!is_member(adj.neighbor)) continue;  // IGP covers provider core only
    const net::Link& link = cp_.topology().link(adj.link);
    LsaLink l;
    l.neighbor = adj.neighbor;
    l.link = adj.link;
    l.cost = link.config().igp_cost;
    l.capacity_bps = link.config().bandwidth_bps;
    l.reservable_bps = te_reservable(router, adj.link);
    lsa.links.push_back(l);
  }
  return lsa;
}

void Igp::originate_and_flood(ip::NodeId router) {
  const Lsa lsa = build_lsa(router);
  RouterState& st = state(router);
  st.lsdb.install(lsa);
  schedule_spf(router);
  flood(router, lsa, ip::kInvalidNode);
}

void Igp::flood(ip::NodeId at, const Lsa& lsa, ip::NodeId except) {
  for (const net::Adjacency& adj : cp_.topology().adjacencies(at)) {
    if (adj.neighbor == except || !is_member(adj.neighbor)) continue;
    const ip::NodeId to = adj.neighbor;
    Lsa copy = lsa;
    cp_.send_adjacent(at, to, "igp.lsa", lsa.wire_bytes(),
                      [this, to, copy = std::move(copy), at] {
                        receive_lsa(to, copy, at);
                      });
  }
}

void Igp::receive_lsa(ip::NodeId at, Lsa lsa, ip::NodeId from) {
  RouterState& st = state(at);
  if (!st.lsdb.install(lsa)) return;  // not newer: stop the flood
  schedule_spf(at);
  flood(at, lsa, from);
}

void Igp::schedule_spf(ip::NodeId router) {
  RouterState& st = state(router);
  if (st.spf_scheduled) return;
  st.spf_scheduled = true;
  cp_.topology().scheduler().schedule_in(spf_delay_,
                                         [this, router] { run_spf(router); });
}

void Igp::run_spf(ip::NodeId router) {
  RouterState& st = state(router);
  st.spf_scheduled = false;
  st.next_hops.clear();

  // Single-source Dijkstra over the router's LSDB with multi-parent
  // bookkeeping: every equal-cost predecessor is retained so the ECMP
  // first-hop set can be derived afterwards.
  struct Candidate {
    std::uint32_t cost;
    ip::NodeId node;
    bool operator>(const Candidate& o) const noexcept {
      if (cost != o.cost) return cost > o.cost;
      return node > o.node;
    }
  };
  std::map<ip::NodeId, std::uint32_t> best;
  std::map<ip::NodeId, std::set<ip::NodeId>> parents;
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;
  pq.push(Candidate{0, router});
  best[router] = 0;

  while (!pq.empty()) {
    const Candidate c = pq.top();
    pq.pop();
    const auto cur = best.find(c.node);
    if (cur == best.end() || c.cost > cur->second) continue;  // stale
    const Lsa* lsa = st.lsdb.find(c.node);
    if (lsa == nullptr) continue;
    for (const LsaLink& l : lsa->links) {
      const Lsa* back = st.lsdb.find(l.neighbor);
      if (back == nullptr) continue;
      const bool two_way =
          std::any_of(back->links.begin(), back->links.end(),
                      [&](const LsaLink& bl) { return bl.link == l.link; });
      if (!two_way) continue;
      const std::uint32_t ncost = c.cost + l.cost;
      auto it = best.find(l.neighbor);
      if (it == best.end() || ncost < it->second) {
        best[l.neighbor] = ncost;
        parents[l.neighbor] = {c.node};
        pq.push(Candidate{ncost, l.neighbor});
      } else if (ncost == it->second) {
        parents[l.neighbor].insert(c.node);  // equal-cost alternate
      }
    }
  }

  // Memoized first-hop-set computation over the parent DAG.
  std::map<ip::NodeId, std::set<ip::NodeId>> first_hops;
  std::function<const std::set<ip::NodeId>&(ip::NodeId)> fh =
      [&](ip::NodeId dest) -> const std::set<ip::NodeId>& {
    auto memo = first_hops.find(dest);
    if (memo != first_hops.end()) return memo->second;
    std::set<ip::NodeId> hops;
    for (ip::NodeId p : parents[dest]) {
      if (p == router) {
        hops.insert(dest);
      } else {
        const auto& up = fh(p);
        hops.insert(up.begin(), up.end());
      }
    }
    return first_hops.emplace(dest, std::move(hops)).first->second;
  };

  for (const auto& [dest, cost] : best) {
    if (dest == router) continue;
    std::vector<NextHopEntry> entries;
    for (ip::NodeId hop : fh(dest)) {  // std::set: sorted by id
      NextHopEntry entry;
      entry.via = hop;
      entry.iface = cp_.topology().node(router).interface_to(hop);
      entry.cost = cost;
      entries.push_back(entry);
    }
    if (!entries.empty()) st.next_hops[dest] = std::move(entries);
  }

  last_spf_at_ = cp_.now();
  ++spf_runs_;
  for (const auto& cb : spf_callbacks_) cb(router);
}

void Igp::notify_link_change(net::LinkId link) {
  const net::Link& l = cp_.topology().link(link);
  for (ip::NodeId end : {l.end_a().node, l.end_b().node}) {
    if (is_member(end)) originate_and_flood(end);
  }
}

bool Igp::te_reserve(ip::NodeId from, net::LinkId link, double bps) {
  if (te_reservable(from, link) + 1e-6 < bps) return false;
  te_reserved_[{link, from}] += bps;
  originate_and_flood(from);
  return true;
}

void Igp::te_release(ip::NodeId from, net::LinkId link, double bps) {
  auto it = te_reserved_.find({link, from});
  if (it == te_reserved_.end()) return;
  it->second = std::max(0.0, it->second - bps);
  originate_and_flood(from);
}

double Igp::te_reserved(ip::NodeId from, net::LinkId link) const {
  auto it = te_reserved_.find({link, from});
  return it == te_reserved_.end() ? 0.0 : it->second;
}

double Igp::te_reservable(ip::NodeId from, net::LinkId link) const {
  const net::Link& l = cp_.topology().link(link);
  return l.config().bandwidth_bps * te_factor_ - te_reserved(from, link);
}

const Igp::NextHopEntry* Igp::next_hop(ip::NodeId router,
                                       ip::NodeId dest) const {
  const RouterState& st = state(router);
  auto it = st.next_hops.find(dest);
  if (it == st.next_hops.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

std::vector<Igp::NextHopEntry> Igp::next_hops_ecmp(ip::NodeId router,
                                                   ip::NodeId dest) const {
  const RouterState& st = state(router);
  auto it = st.next_hops.find(dest);
  return it == st.next_hops.end() ? std::vector<NextHopEntry>{}
                                  : it->second;
}

ComputedPath Igp::path(ip::NodeId router, ip::NodeId dest) const {
  return shortest_path(state(router).lsdb, router, dest);
}

ComputedPath Igp::cspf(ip::NodeId router, ip::NodeId dest,
                       double bandwidth_bps,
                       const std::vector<net::LinkId>& excluded) const {
  return shortest_path(state(router).lsdb, router, dest, bandwidth_bps,
                       excluded);
}

const LinkStateDb& Igp::lsdb(ip::NodeId router) const {
  return state(router).lsdb;
}

bool Igp::synchronized() const {
  for (ip::NodeId a : members_) {
    const RouterState& st = routers_.at(a);
    for (ip::NodeId b : members_) {
      const RouterState& origin = routers_.at(b);
      const Lsa* have = st.lsdb.find(b);
      if (have == nullptr || have->sequence != origin.lsa_seq) return false;
    }
  }
  return true;
}

}  // namespace mvpn::routing
