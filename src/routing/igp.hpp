#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "routing/control_plane.hpp"
#include "routing/link_state.hpp"

namespace mvpn::routing {

/// Link-state interior gateway protocol (OSPF-like) with traffic-
/// engineering extensions, running across the provider routers (PEs + Ps).
///
/// Mechanics modeled:
///  * each participating router originates a router LSA describing its
///    adjacencies (cost, capacity, reservable bandwidth) and floods it;
///  * receivers install strictly-newer LSAs, re-flood to other neighbors,
///    and schedule an SPF run after a hold-down delay;
///  * SPF builds each router's next-hop table toward every other router;
///  * the TE database tracks per-link-direction bandwidth reservations
///    (fed by RSVP-TE) and re-advertises reservable bandwidth, which CSPF
///    constrains on (the paper's §3.1/§5 traffic-engineering machinery).
class Igp {
 public:
  struct NextHopEntry {
    ip::NodeId via = ip::kInvalidNode;
    ip::IfIndex iface = ip::kInvalidIf;
    std::uint32_t cost = 0;
  };

  explicit Igp(ControlPlane& cp);

  /// Enroll a router; call before start().
  void add_router(ip::NodeId router);
  [[nodiscard]] bool is_member(ip::NodeId router) const;
  [[nodiscard]] const std::vector<ip::NodeId>& members() const noexcept {
    return members_;
  }

  /// Originate and flood the initial LSAs; SPFs follow automatically.
  void start();

  /// Notify that `link`'s state changed (failure/restore/TE update): both
  /// endpoints re-originate and flood.
  void notify_link_change(net::LinkId link);

  /// --- TE reservation database -----------------------------------------
  /// Reserve `bps` on the direction of `link` leaving `from`. Fails when
  /// reservable bandwidth is insufficient. On success, re-advertises.
  bool te_reserve(ip::NodeId from, net::LinkId link, double bps);
  void te_release(ip::NodeId from, net::LinkId link, double bps);
  [[nodiscard]] double te_reserved(ip::NodeId from, net::LinkId link) const;
  [[nodiscard]] double te_reservable(ip::NodeId from, net::LinkId link) const;
  /// Fraction of link capacity open to reservations (default 1.0).
  void set_te_subscription_factor(double f) noexcept { te_factor_ = f; }

  /// --- per-router queries (answered from that router's own LSDB) -------
  /// Primary next hop (lowest neighbor id among equal-cost candidates).
  [[nodiscard]] const NextHopEntry* next_hop(ip::NodeId router,
                                             ip::NodeId dest) const;
  /// All equal-cost next hops (ECMP set), sorted by neighbor id.
  [[nodiscard]] std::vector<NextHopEntry> next_hops_ecmp(
      ip::NodeId router, ip::NodeId dest) const;
  [[nodiscard]] ComputedPath path(ip::NodeId router, ip::NodeId dest) const;
  /// Constrained SPF for TE LSP placement.
  [[nodiscard]] ComputedPath cspf(ip::NodeId router, ip::NodeId dest,
                                  double bandwidth_bps,
                                  const std::vector<net::LinkId>& excluded =
                                      {}) const;
  [[nodiscard]] const LinkStateDb& lsdb(ip::NodeId router) const;

  /// True when every member's LSDB holds every member's newest LSA.
  [[nodiscard]] bool synchronized() const;
  /// Time of the last SPF run anywhere (convergence instant measurement).
  [[nodiscard]] sim::SimTime last_spf_at() const noexcept {
    return last_spf_at_;
  }
  [[nodiscard]] std::uint64_t spf_runs() const noexcept { return spf_runs_; }

  /// Subscribe to SPF completion at a router (LDP and the routers' FIB
  /// sync hook in from here).
  void on_spf(std::function<void(ip::NodeId router)> cb) {
    spf_callbacks_.push_back(std::move(cb));
  }

  void set_spf_delay(sim::SimTime d) noexcept { spf_delay_ = d; }

 private:
  struct RouterState {
    bool active = false;
    LinkStateDb lsdb;
    /// Per destination: the ECMP next-hop set (element 0 is primary).
    std::unordered_map<ip::NodeId, std::vector<NextHopEntry>> next_hops;
    bool spf_scheduled = false;
    std::uint32_t lsa_seq = 0;
  };

  RouterState& state(ip::NodeId router);
  const RouterState& state(ip::NodeId router) const;
  Lsa build_lsa(ip::NodeId router);
  void originate_and_flood(ip::NodeId router);
  void flood(ip::NodeId at, const Lsa& lsa, ip::NodeId except);
  void receive_lsa(ip::NodeId at, Lsa lsa, ip::NodeId from);
  void schedule_spf(ip::NodeId router);
  void run_spf(ip::NodeId router);

  ControlPlane& cp_;
  std::vector<ip::NodeId> members_;
  std::map<ip::NodeId, RouterState> routers_;
  std::map<std::pair<net::LinkId, ip::NodeId>, double> te_reserved_;
  double te_factor_ = 1.0;
  sim::SimTime spf_delay_ = 30 * sim::kMillisecond;
  sim::SimTime last_spf_at_ = 0;
  std::uint64_t spf_runs_ = 0;
  std::vector<std::function<void(ip::NodeId)>> spf_callbacks_;
};

}  // namespace mvpn::routing
